package turnmodel_test

import (
	"fmt"

	"turnmodel"
)

// The turn model's core loop: pick turns to prohibit, verify deadlock
// freedom on the channel dependency graph, and route.
func ExampleCheckDeadlockFree() {
	mesh := turnmodel.NewMesh(8, 8)
	fmt.Println(turnmodel.CheckDeadlockFree(turnmodel.NewWestFirst(mesh)).DeadlockFree)
	fmt.Println(turnmodel.CheckDeadlockFree(turnmodel.NewFullyAdaptive(mesh)).DeadlockFree)
	// Output:
	// true
	// false
}

func ExampleWalk() {
	mesh := turnmodel.NewMesh(8, 8)
	wf := turnmodel.NewWestFirst(mesh)
	path, _ := turnmodel.Walk(wf, mesh.ID([]int{3, 1}), mesh.ID([]int{1, 2}), nil)
	fmt.Println(turnmodel.FormatPath(mesh, path))
	// Output:
	// [3 1] -> [2 1] -> [1 1] -> [1 2]
}

func ExampleCountShortestPaths() {
	cube := turnmodel.NewHypercube(10)
	src := turnmodel.NodeID(0b1011010100)
	dst := turnmodel.NodeID(0b0010111001)
	fmt.Println(turnmodel.CountShortestPaths(turnmodel.NewPCube(cube), src, dst))
	fmt.Println(turnmodel.CountShortestPaths(turnmodel.NewFullyAdaptive(cube), src, dst))
	// Output:
	// 36
	// 720
}

func ExampleNewTurnSetRouting() {
	mesh := turnmodel.NewMesh(6, 6)
	// Prohibit one turn from each abstract cycle (an "east-last" choice)
	// and check it the way Section 2 prescribes.
	east := turnmodel.Direction{Dim: 0, Pos: true}
	north := turnmodel.Direction{Dim: 1, Pos: true}
	south := turnmodel.Direction{Dim: 1}
	set := turnmodel.NewTurnSet(2).WithName("east-last")
	set.Prohibit(turnmodel.Turn{From: east, To: south})
	set.Prohibit(turnmodel.Turn{From: east, To: north})
	ok, _ := set.BreaksAllAbstractCycles()
	fmt.Println(ok)
	fmt.Println(turnmodel.CheckTurnSetDeadlockFree(mesh, set).DeadlockFree)
	alg := turnmodel.NewTurnSetRouting(mesh, set, true)
	path, _ := turnmodel.Walk(alg, mesh.ID([]int{0, 0}), mesh.ID([]int{2, 1}), nil)
	fmt.Println(turnmodel.FormatPath(mesh, path))
	// Output:
	// true
	// true
	// [0 0] -> [0 1] -> [1 1] -> [2 1]
}

func ExampleSummarizeTopology() {
	fmt.Println(turnmodel.SummarizeTopology(turnmodel.NewMesh(16, 16)))
	fmt.Println(turnmodel.SummarizeTopology(turnmodel.NewHypercube(8)))
	// Output:
	// nodes=256 channels=960 bisection=32 avg-hops=10.67 diameter=30
	// nodes=256 channels=2048 bisection=256 avg-hops=4.02 diameter=8
}

func ExampleSaturationBound() {
	mesh := turnmodel.NewMesh(16, 16)
	pat := turnmodel.NewMeshTranspose(mesh)
	xyMax, _ := turnmodel.MaxChannelLoad(mesh, turnmodel.ChannelLoads(turnmodel.NewDimensionOrder(mesh), pat))
	nfMax, _ := turnmodel.MaxChannelLoad(mesh, turnmodel.ChannelLoads(turnmodel.NewNegativeFirst(mesh), pat))
	fmt.Printf("xy bound:             %.2f flits/us/node\n", turnmodel.SaturationBound(xyMax))
	fmt.Printf("negative-first bound: %.2f flits/us/node\n", turnmodel.SaturationBound(nfMax))
	// Output:
	// xy bound:             1.33 flits/us/node
	// negative-first bound: 3.11 flits/us/node
}

func ExampleRecordWorkload() {
	mesh := turnmodel.NewMesh(8, 8)
	// Record the stochastic workload once...
	workload, _ := turnmodel.RecordWorkload(turnmodel.SimConfig{
		Algorithm:   turnmodel.NewDimensionOrder(mesh),
		Pattern:     turnmodel.NewMeshTranspose(mesh),
		OfferedLoad: 1.0, WarmupCycles: 1, MeasureCycles: 1, Seed: 7,
	}, 2000)
	// ...then replay the identical traffic against two algorithms.
	for _, alg := range []turnmodel.Algorithm{
		turnmodel.NewDimensionOrder(mesh),
		turnmodel.NewNegativeFirst(mesh),
	} {
		res, _ := turnmodel.Simulate(turnmodel.SimConfig{Algorithm: alg, Script: workload})
		fmt.Printf("%s delivered %d of %d\n", alg.Name(), res.PacketsDelivered, len(workload))
	}
	// Output:
	// xy delivered 49 of 49
	// negative-first delivered 49 of 49
}

func ExampleRenderPath() {
	mesh := turnmodel.NewMesh(5, 4)
	nl := turnmodel.NewNorthLast(mesh)
	path, _ := turnmodel.Walk(nl, mesh.ID([]int{3, 0}), mesh.ID([]int{1, 3}), nil)
	fmt.Print(turnmodel.RenderPath(mesh, path))
	// Output:
	// . D . . .
	// . ^ . . .
	// . ^ . . .
	// . ^ < S .
}
