// Faulty: nonminimal turn-model routing around a broken channel. The
// paper argues that nonminimal routing "provides better fault tolerance"
// (Sections 1-3): a turn set keeps its deadlock freedom whether or not
// routes are minimal, so a router may legally misroute a packet around a
// failed channel as long as it only uses allowed turns. This example
// disables a channel on an 8x8 mesh and routes through the failure with
// the nonminimal west-first relation.
package main

import (
	"fmt"
	"log"

	"turnmodel"
)

func main() {
	mesh := turnmodel.NewMesh(8, 8)
	src := mesh.ID([]int{1, 3})
	dst := mesh.ID([]int{6, 3})

	// Minimal west-first has a unique row path for this pair; trace it.
	minimal := turnmodel.NewTurnSetRouting(mesh, turnmodel.WestFirstTurns(), true)
	path, err := turnmodel.Walk(minimal, src, dst, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("healthy mesh, minimal west-first:\n  %s\n\n", turnmodel.FormatPath(mesh, path))

	// Break an eastward channel on that row.
	broken := turnmodel.Channel{From: mesh.ID([]int{3, 3}), Dir: turnmodel.Direction{Dim: 0, Pos: true}}
	if err := mesh.DisableChannel(broken); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("disabling channel %v\n\n", broken)

	// The minimal relation is now stuck on this pair...
	if _, err := turnmodel.Walk(minimal, src, dst, nil); err != nil {
		fmt.Printf("minimal west-first fails: %v\n\n", err)
	}

	// ...but the nonminimal relation routes around the fault, still
	// using only the six west-first turns, so deadlock freedom holds.
	nonminimal := turnmodel.NewTurnSetRouting(mesh, turnmodel.WestFirstTurns(), false)
	path, err = turnmodel.Walk(nonminimal, src, dst, turnmodel.GreedySelector(mesh))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("nonminimal west-first detours around the fault:\n  %s\n", turnmodel.FormatPath(mesh, path))
	fmt.Printf("(%d hops; the minimal distance was %d)\n", len(path)-1, mesh.Distance(src, dst))
}
