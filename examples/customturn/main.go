// Customturn: use the turn-model toolkit the way Section 2 prescribes —
// pick turns to prohibit, check that every abstract cycle is broken,
// verify deadlock freedom on the channel dependency graph, and only then
// route with the derived relation. Also shows the Figure 4 trap: a
// prohibition that breaks both abstract cycles yet still deadlocks.
package main

import (
	"fmt"
	"log"

	"turnmodel"
)

func main() {
	mesh := turnmodel.NewMesh(8, 8)
	east := turnmodel.Direction{Dim: 0, Pos: true}
	west := turnmodel.Direction{Dim: 0}
	north := turnmodel.Direction{Dim: 1, Pos: true}
	south := turnmodel.Direction{Dim: 1}

	// Step 4 of the model: prohibit one turn from each abstract cycle.
	// Take east->south (clockwise cycle) and east->north (the
	// counterclockwise cycle): an "east-last" style algorithm.
	good := turnmodel.NewTurnSet(2).WithName("east-last")
	good.Prohibit(turnmodel.Turn{From: east, To: south})
	good.Prohibit(turnmodel.Turn{From: east, To: north})

	ok, intact := good.BreaksAllAbstractCycles()
	fmt.Printf("%v\nbreaks all abstract cycles: %v %v\n", good, ok, intact)
	res := turnmodel.CheckTurnSetDeadlockFree(mesh, good)
	fmt.Printf("dependency-graph check: %v\n\n", res)

	// Route with the derived minimal relation.
	alg := turnmodel.NewTurnSetRouting(mesh, good, true)
	src, dst := mesh.ID([]int{6, 1}), mesh.ID([]int{0, 5})
	path, err := turnmodel.Walk(alg, src, dst, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("example route: %s\n\n", turnmodel.FormatPath(mesh, path))

	// The trap: prohibiting a reverse pair also breaks one turn per
	// cycle, but the three remaining left turns compose to the
	// prohibited right turn (Figure 4) and the network can deadlock.
	bad := turnmodel.NewTurnSet(2).WithName("figure-4 trap")
	bad.Prohibit(turnmodel.Turn{From: south, To: west}) // right turn, cw cycle
	bad.Prohibit(turnmodel.Turn{From: west, To: south}) // left turn, ccw cycle
	ok, _ = bad.BreaksAllAbstractCycles()
	fmt.Printf("%v\nbreaks all abstract cycles: %v — but:\n", bad, ok)
	fmt.Printf("dependency-graph check: %v\n", turnmodel.CheckTurnSetDeadlockFree(mesh, bad))
	fmt.Println("\nmoral: breaking the abstract cycles is necessary, not sufficient;")
	fmt.Println("always verify the channel dependency graph (Step 4's fine print).")
}
