// Pcube: the Section 5 walkthrough. The p-cube algorithm is the
// negative-first algorithm specialized to hypercubes, computed with two
// bitwise operations per phase (Figures 11 and 12). This example routes
// the paper's 10-cube message from 1011010100 to 0010111001 and prints
// the table of routing choices at every hop, then compares the
// adaptiveness of p-cube and e-cube routing.
package main

import (
	"fmt"
	"log"

	"turnmodel"
)

func main() {
	cube := turnmodel.NewHypercube(10)
	src := turnmodel.NodeID(0b1011010100)
	dst := turnmodel.NodeID(0b0010111001)

	pcube := turnmodel.NewPCube(cube)
	path, err := turnmodel.Walk(pcube, src, dst, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("p-cube route from %010b to %010b (%d hops):\n", uint(src), uint(dst), len(path)-1)
	for _, node := range path {
		fmt.Printf("  %010b\n", uint(node))
	}

	// The paper's table: number of shortest paths each algorithm allows.
	sp := turnmodel.CountShortestPaths(pcube, src, dst)
	ec := turnmodel.CountShortestPaths(turnmodel.NewDimensionOrder(cube), src, dst)
	full := turnmodel.CountShortestPaths(turnmodel.NewFullyAdaptive(cube), src, dst)
	fmt.Printf("\nshortest paths allowed: e-cube=%d, p-cube=%d (h1!*h0! = 3!*3!), fully adaptive=%d (h! = 6!)\n",
		ec, sp, full)

	// Deadlock freedom of p-cube versus the cyclic fully adaptive
	// relation on a smaller cube (the verifier is exhaustive).
	small := turnmodel.NewHypercube(6)
	fmt.Printf("\n%v\n", turnmodel.CheckDeadlockFree(turnmodel.NewPCube(small)))
	fmt.Printf("fully adaptive, for contrast: %v\n",
		turnmodel.CheckDeadlockFree(turnmodel.NewFullyAdaptive(small)))
}
