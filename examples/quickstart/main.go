// Quickstart: build a 2D mesh, route packets with the west-first
// partially adaptive algorithm, verify deadlock freedom, and run a small
// wormhole simulation — the library's core loop in one page.
package main

import (
	"fmt"
	"log"

	"turnmodel"
)

func main() {
	// An 8x8 mesh, as in the example-path figures of the paper.
	mesh := turnmodel.NewMesh(8, 8)

	// West-first routing: packets travel west first, then adaptively
	// south, east and north (Section 3.1).
	wf := turnmodel.NewWestFirst(mesh)

	// The turn model's promise is deadlock freedom; check it by building
	// the channel dependency graph and looking for cycles.
	res := turnmodel.CheckDeadlockFree(wf)
	fmt.Printf("%s on %v: %v\n\n", wf.Name(), mesh, res)

	// Trace a few example paths (compare Figure 5b).
	pairs := [][2][2]int{
		{{6, 1}, {1, 6}}, // must head west first
		{{1, 2}, {6, 6}}, // fully adaptive northeast quadrant
		{{5, 6}, {2, 0}},
	}
	for _, pr := range pairs {
		src := mesh.ID([]int{pr[0][0], pr[0][1]})
		dst := mesh.ID([]int{pr[1][0], pr[1][1]})
		path, err := turnmodel.Walk(wf, src, dst, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("path %v\n%s", turnmodel.FormatPath(mesh, path), turnmodel.RenderPath(mesh, path))
	}

	// A small simulation: uniform traffic at a moderate load.
	fmt.Println()
	result, err := turnmodel.Simulate(turnmodel.SimConfig{
		Algorithm:     wf,
		Pattern:       turnmodel.NewUniform(mesh),
		OfferedLoad:   1.0, // flits per microsecond per node
		WarmupCycles:  2000,
		MeasureCycles: 10000,
		Seed:          42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(result)
}
