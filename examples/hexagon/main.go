// Hexagon: the paper's future-work claim, realized. Section 7: "Another
// obvious extension of our work is to apply the turn model to other
// topologies, such as hexagonal ... networks ... In such topologies, the
// turns are not necessarily 90-degrees and the abstract cycles are not
// necessarily formed by four turns."
//
// On the hexagonal (triangular-lattice) mesh the turns are 60 and 120
// degrees and the abstract cycles are triangles of three turns and
// hexagons of six — yet the turn model's bookkeeping survives intact:
// the cycles partition the 24 turns, a quarter of them is the
// prohibition minimum, and the negative-first construction (with the
// very numbering from the proof of Theorem 5) gives a deadlock-free
// partially adaptive algorithm.
//
// This example uses the internal hexmesh package directly: hexagonal
// adjacency does not fit the orthogonal public API.
package main

import (
	"fmt"
	"log"

	"turnmodel/internal/hexmesh"
)

func main() {
	fmt.Printf("turns: %d; abstract cycles: %d (4 triangles + 2 hexagons); minimum prohibited: %d\n\n",
		hexmesh.NumTurns(), hexmesh.NumAbstractCycles(), hexmesh.MinimumProhibited())
	for _, c := range hexmesh.AbstractCycles() {
		fmt.Printf("  %v\n", c)
	}

	set := hexmesh.NegativeFirstSet()
	ok, _ := set.BreaksAllAbstractCycles()
	fmt.Printf("\nhex negative-first prohibits %v (exactly the minimum)\nbreaks all abstract cycles: %v\n\n",
		set.Prohibited(), ok)

	m := hexmesh.NewMesh(8, 8)
	nf := hexmesh.NewNegativeFirst(m)
	g := hexmesh.BuildCDG(nf)
	fmt.Printf("8x8 hexagonal mesh, negative-first: %d dependency edges, acyclic=%v, numbering violations=%d\n",
		g.NumEdges(), g.Acyclic(), g.VerifyMonotone(m.NegativeFirstNumber))

	bad := hexmesh.BuildCDG(hexmesh.NewFullyAdaptive(m))
	fmt.Printf("unrestricted fully adaptive, for contrast: acyclic=%v (the triangle cycles live)\n\n", bad.Acyclic())

	// Trace one route.
	src, dst := m.ID(6, 1), m.ID(1, 6)
	path, err := hexmesh.Walk(nf, src, dst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("route (%d,%d) -> (%d,%d), %d hops (hex distance %d):\n  ", 6, 1, 1, 6, len(path)-1, m.Distance(src, dst))
	for i, id := range path {
		if i > 0 {
			fmt.Print(" -> ")
		}
		q, r := m.Coord(id)
		fmt.Printf("(%d,%d)", q, r)
	}
	fmt.Println()
}
