// Transpose: the paper's headline comparison. Matrix-transpose traffic
// is the worst case for nonadaptive xy routing — every packet turns at
// the diagonal — while the negative-first algorithm routes every
// transpose packet with full adaptiveness. This example sweeps the
// offered load on a 16x16 mesh and prints both latency curves, the shape
// of Figure 14.
package main

import (
	"fmt"
	"log"

	"turnmodel"
)

func main() {
	mesh := turnmodel.NewMesh(16, 16)
	pattern := turnmodel.NewMeshTranspose(mesh)
	loads := []float64{0.5, 1.0, 1.5, 2.0, 2.5}

	for _, alg := range []turnmodel.Algorithm{
		turnmodel.NewDimensionOrder(mesh), // xy
		turnmodel.NewNegativeFirst(mesh),
	} {
		fmt.Printf("%s routing, %s traffic on %v\n", alg.Name(), pattern.Name(), mesh)
		fmt.Printf("  %-28s %-24s %s\n", "offered (flits/us/node)", "throughput (flits/us)", "latency (us)")
		for _, load := range loads {
			res, err := turnmodel.Simulate(turnmodel.SimConfig{
				Algorithm:     alg,
				Pattern:       pattern,
				OfferedLoad:   load,
				WarmupCycles:  5000,
				MeasureCycles: 20000,
				Seed:          7,
			})
			if err != nil {
				log.Fatal(err)
			}
			marker := ""
			if !res.Sustainable {
				marker = "  (beyond saturation)"
			}
			fmt.Printf("  %-28.2f %-24.1f %.2f%s\n", load, res.Throughput, res.AvgLatency, marker)
		}
		fmt.Println()
	}
	fmt.Println("negative-first keeps latency flat well past the load where xy saturates:")
	fmt.Println("its phase structure makes every transpose packet fully adaptive, while")
	fmt.Println("xy forces all of them through the diagonal (compare Figure 14).")
}
