// Torus: the Section 4.2 story on k-ary n-cubes. Minimal routing that
// uses wraparound channels deadlocks without extra channels — the ring
// channels form cycles involving no turns at all — so the paper extends
// its mesh algorithms nonminimally (wraparound on the first hop, or
// wraparound channels classified by direction), while the alternative
// school (Dally-Seitz) buys minimal routing with a second virtual
// channel per physical channel. This example verifies all four and
// measures the hop-count price of staying nonminimal.
package main

import (
	"fmt"
	"log"

	"turnmodel"
)

func main() {
	torus := turnmodel.NewTorus(8, 2) // an 8-ary 2-cube

	// Minimal DOR over the wraparounds: the verifier finds the ring cycle.
	bad := turnmodel.NewTorusDOR(torus)
	fmt.Printf("%s: %v\n\n", bad.Name(), turnmodel.CheckDeadlockFree(bad))

	// The paper's extensions are deadlock free without extra channels.
	wrapFirst := turnmodel.NewWrapFirstHop(turnmodel.NewNegativeFirst(torus))
	classified := turnmodel.NewNegativeFirstTorus(torus)
	fmt.Printf("%s: %v\n", wrapFirst.Name(), turnmodel.CheckDeadlockFree(wrapFirst))
	fmt.Printf("%s: %v\n\n", classified.Name(), turnmodel.CheckDeadlockFree(classified))

	// The virtual-channel alternative: minimal AND deadlock free.
	dateline := turnmodel.NewDatelineDOR(torus)
	fmt.Printf("%s: %v\n\n", dateline.Name(), turnmodel.CheckVCDeadlockFree(dateline))

	// The price of each approach, measured: average hops under uniform
	// traffic at a light load.
	for _, cfg := range []turnmodel.SimConfig{
		{Algorithm: wrapFirst},
		{Algorithm: classified},
		{VCAlgorithm: dateline},
	} {
		cfg.Pattern = turnmodel.NewUniform(torus)
		cfg.OfferedLoad = 1.0
		cfg.WarmupCycles = 2000
		cfg.MeasureCycles = 10000
		cfg.Seed = 3
		res, err := turnmodel.Simulate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s avg hops %.2f, latency %.2f us\n", res.Algorithm, res.AvgHops, res.AvgLatency)
	}
	fmt.Println("\nminimal average distance on this torus is 4.06 hops: the dateline")
	fmt.Println("scheme achieves it at the cost of twice the buffer space, while the")
	fmt.Println("paper's extensions stay at one channel per direction and pay extra")
	fmt.Println("hops instead — wrap-first-hop only shortcuts the first dimension, and")
	fmt.Println("classified negative-first is strictly nonminimal by construction.")
}
