package turnmodel_test

import (
	"testing"

	"turnmodel"
)

// TestPublicAPIRoundTrip exercises the whole facade: topology, turn
// sets, deadlock verification, routing walks, traffic and simulation.
func TestPublicAPIRoundTrip(t *testing.T) {
	mesh := turnmodel.NewMesh(8, 8)
	if mesh.Nodes() != 64 {
		t.Fatalf("nodes = %d", mesh.Nodes())
	}

	algs := []turnmodel.Algorithm{
		turnmodel.NewDimensionOrder(mesh),
		turnmodel.NewWestFirst(mesh),
		turnmodel.NewNorthLast(mesh),
		turnmodel.NewNegativeFirst(mesh),
	}
	for _, alg := range algs {
		res := turnmodel.CheckDeadlockFree(alg)
		if !res.DeadlockFree {
			t.Errorf("%s: %v", alg.Name(), res)
		}
		path, err := turnmodel.Walk(alg, mesh.ID([]int{6, 1}), mesh.ID([]int{1, 6}), nil)
		if err != nil {
			t.Errorf("%s: %v", alg.Name(), err)
		}
		if want := mesh.Distance(mesh.ID([]int{6, 1}), mesh.ID([]int{1, 6})); len(path)-1 != want {
			t.Errorf("%s: %d hops, want %d", alg.Name(), len(path)-1, want)
		}
	}

	if turnmodel.CheckDeadlockFree(turnmodel.NewFullyAdaptive(mesh)).DeadlockFree {
		t.Error("fully adaptive must not be deadlock free")
	}

	set := turnmodel.WestFirstTurns()
	if ok, _ := set.BreaksAllAbstractCycles(); !ok {
		t.Error("west-first set should break both abstract cycles")
	}
	custom := turnmodel.NewTurnSetRouting(mesh, set, true)
	if res := turnmodel.CheckDeadlockFree(custom); !res.DeadlockFree {
		t.Errorf("turn-set west-first: %v", res)
	}

	if n := turnmodel.CountShortestPaths(turnmodel.NewWestFirst(mesh),
		mesh.ID([]int{1, 1}), mesh.ID([]int{4, 4})); n != 20 {
		t.Errorf("west-first NE-quadrant paths = %d, want C(6,3)=20", n)
	}

	result, err := turnmodel.Simulate(turnmodel.SimConfig{
		Algorithm:     turnmodel.NewNegativeFirst(mesh),
		Pattern:       turnmodel.NewMeshTranspose(mesh),
		OfferedLoad:   1.0,
		WarmupCycles:  500,
		MeasureCycles: 2000,
		Seed:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if result.PacketsDelivered == 0 || result.Deadlocked {
		t.Errorf("simulation produced nothing: %+v", result)
	}
}

// TestHypercubeFacade covers the hypercube-specific surface.
func TestHypercubeFacade(t *testing.T) {
	cube := turnmodel.NewHypercube(6)
	pc := turnmodel.NewPCube(cube)
	if pc.Name() != "p-cube" {
		t.Errorf("name = %q", pc.Name())
	}
	if res := turnmodel.CheckDeadlockFree(pc); !res.DeadlockFree {
		t.Errorf("p-cube: %v", res)
	}
	for _, pat := range []turnmodel.Pattern{
		turnmodel.NewReverseFlip(cube),
		turnmodel.NewHypercubeTranspose(cube),
		turnmodel.NewBitComplement(cube),
		turnmodel.NewUniform(cube),
		turnmodel.NewHotspot(cube, 0, 0.2),
	} {
		if pat.Name() == "" {
			t.Error("pattern without a name")
		}
	}
	if len(turnmodel.AbstractCycles(6)) != 30 {
		t.Error("6-cube should have 30 abstract cycles")
	}
}

// TestTorusFacade covers the Section 4.2 extensions.
func TestTorusFacade(t *testing.T) {
	torus := turnmodel.NewTorus(5, 2)
	for _, alg := range []turnmodel.Algorithm{
		turnmodel.NewNegativeFirstTorus(torus),
		turnmodel.NewWrapFirstHop(turnmodel.NewNegativeFirst(torus)),
	} {
		if res := turnmodel.CheckDeadlockFree(alg); !res.DeadlockFree {
			t.Errorf("%s: %v", alg.Name(), res)
		}
	}
}

// TestFaultFacade: disable a channel and detour with a nonminimal
// relation via the public API (the faulty example's flow).
func TestFaultFacade(t *testing.T) {
	mesh := turnmodel.NewMesh(6, 6)
	broken := turnmodel.Channel{From: mesh.ID([]int{2, 3}), Dir: turnmodel.Direction{Dim: 0, Pos: true}}
	mesh.DisableChannel(broken)
	nonmin := turnmodel.NewTurnSetRouting(mesh, turnmodel.WestFirstTurns(), false)
	path, err := turnmodel.Walk(nonmin, mesh.ID([]int{0, 3}), mesh.ID([]int{5, 3}), turnmodel.GreedySelector(mesh))
	if err != nil {
		t.Fatal(err)
	}
	if len(path)-1 <= 5 {
		t.Errorf("detour should exceed the 5-hop minimal distance, took %d", len(path)-1)
	}
	if turnmodel.FormatPath(mesh, path) == "" {
		t.Error("empty formatted path")
	}
}
