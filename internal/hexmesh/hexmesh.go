// Package hexmesh applies the turn model to hexagonal meshes, the first
// topology on the paper's future-work list: "another obvious extension
// of our work is to apply the turn model to other topologies, such as
// hexagonal ... networks ... In such topologies, the turns are not
// necessarily 90-degrees and the abstract cycles are not necessarily
// formed by four turns."
//
// A hexagonal mesh is a triangular lattice: each interior node has six
// neighbors along the directions E, NE, NW, W, SW, SE (axial
// coordinates). The turn structure differs from the orthogonal case
// exactly as the paper predicts:
//
//   - each direction admits four turns (two 60-degree, two 120-degree),
//     24 turns in all;
//   - the abstract cycles are four triangles of three 120-degree turns
//     and two hexagons of six 60-degree turns — and these six cycles
//     PARTITION the 24 turns, so at least 6 turns (again exactly a
//     quarter) must be prohibited to prevent deadlock, mirroring
//     Theorem 1;
//   - the negative-first construction carries over verbatim: classify
//     each direction by the sign of a generic linear functional of its
//     displacement; prohibiting every positive-to-negative turn breaks
//     every cycle (any closed walk's directions sum to zero, so it uses
//     both signs), costs exactly 6 turns (the Theorem 1 minimum), and
//     the Theorem 5 numbering proof — channels ordered by the
//     functional, negative channels before positive — applies unchanged.
//
// The package is self-contained (hexagonal adjacency does not fit the
// orthogonal topology package) and brings its own channel dependency
// analysis to verify the claims exhaustively.
package hexmesh

import (
	"fmt"
)

// Direction is one of the six lattice directions, in counterclockwise
// order starting east.
type Direction int

// The six hexagonal directions in axial coordinates (q, r): E = (1,0),
// NE = (0,1), NW = (-1,1), W = (-1,0), SW = (0,-1), SE = (1,-1).
const (
	E Direction = iota
	NE
	NW
	W
	SW
	SE
	numDirections
)

var dirNames = [...]string{"E", "NE", "NW", "W", "SW", "SE"}

func (d Direction) String() string { return dirNames[d] }

// Delta returns the axial displacement of the direction.
func (d Direction) Delta() (dq, dr int) {
	switch d {
	case E:
		return 1, 0
	case NE:
		return 0, 1
	case NW:
		return -1, 1
	case W:
		return -1, 0
	case SW:
		return 0, -1
	default: // SE
		return 1, -1
	}
}

// Opposite returns the 180-degree reverse.
func (d Direction) Opposite() Direction { return (d + 3) % numDirections }

// Directions lists all six directions.
func Directions() []Direction {
	return []Direction{E, NE, NW, W, SW, SE}
}

// Turn is an ordered pair of directions.
type Turn struct {
	From, To Direction
}

func (t Turn) String() string { return fmt.Sprintf("%s->%s", t.From, t.To) }

// Degree returns the turn angle in degrees: 0, 60, 120 or 180.
func (t Turn) Degree() int {
	diff := int(t.To-t.From+numDirections) % int(numDirections)
	switch diff {
	case 0:
		return 0
	case 1, 5:
		return 60
	case 2, 4:
		return 120
	default:
		return 180
	}
}

// AllTurns enumerates the 24 turns of the hexagonal mesh (both 60- and
// 120-degree; 0- and 180-degree transitions excluded as in Step 2 of
// the model).
func AllTurns() []Turn {
	var turns []Turn
	for _, from := range Directions() {
		for _, to := range Directions() {
			t := Turn{from, to}
			if deg := t.Degree(); deg == 60 || deg == 120 {
				turns = append(turns, t)
			}
		}
	}
	return turns
}

// Cycle is one abstract cycle of turns; the To of each turn is the From
// of the next.
type Cycle struct {
	Kind  string // "triangle" or "hexagon"
	Turns []Turn
}

func (c Cycle) String() string { return fmt.Sprintf("%s cycle %v", c.Kind, c.Turns) }

// AbstractCycles enumerates the six abstract cycles of the hexagonal
// mesh: four triangles of 120-degree turns and two hexagons of
// 60-degree turns. Together they partition the 24 turns (verified in
// tests), the hexagonal analogue of Theorem 1's partition.
func AbstractCycles() []Cycle {
	var cycles []Cycle
	// Triangles: direction triples at mutual 120 degrees (d, d+2, d+4),
	// traversed in both cyclic orders. Starting points d = E, NE give
	// all four distinct cycles.
	for _, start := range []Direction{E, NE} {
		a, b, c := start, (start+2)%numDirections, (start+4)%numDirections
		cycles = append(cycles,
			Cycle{Kind: "triangle", Turns: []Turn{{a, b}, {b, c}, {c, a}}},
			Cycle{Kind: "triangle", Turns: []Turn{{a, c}, {c, b}, {b, a}}},
		)
	}
	// Hexagons: the all-left-turns ring (directions ascending E, NE, NW,
	// W, SW, SE) and the all-right-turns ring (the same directions
	// descending).
	var left, right []Turn
	for i := Direction(0); i < numDirections; i++ {
		left = append(left, Turn{i, (i + 1) % numDirections})
		d := (numDirections - i) % numDirections
		right = append(right, Turn{d, (d + numDirections - 1) % numDirections})
	}
	cycles = append(cycles,
		Cycle{Kind: "hexagon", Turns: left},
		Cycle{Kind: "hexagon", Turns: right},
	)
	return cycles
}

// NumTurns and related counts, after Theorem 1's pattern.
func NumTurns() int { return 24 }

// NumAbstractCycles returns 6: four triangles plus two hexagons.
func NumAbstractCycles() int { return 6 }

// MinimumProhibited returns the minimum number of turns whose
// prohibition can break every abstract cycle: one per cycle, and the
// cycles partition the turns, so exactly 6 — a quarter of the turns,
// exactly as in the orthogonal meshes of Theorem 1.
func MinimumProhibited() int { return 6 }

// Positive reports the sign classification used by the negative-first
// construction: the sign of the displacement under the generic
// functional f(dq, dr) = 2*dq + dr, nonzero on all six directions.
func Positive(d Direction) bool {
	dq, dr := d.Delta()
	return 2*dq+dr > 0
}

// Set records allowed turns.
type Set struct {
	name    string
	allowed map[Turn]bool
}

// NewSet returns a set with all 24 turns allowed.
func NewSet(name string) *Set {
	s := &Set{name: name, allowed: make(map[Turn]bool)}
	for _, t := range AllTurns() {
		s.allowed[t] = true
	}
	return s
}

// NegativeFirstSet prohibits every turn from a positive direction to a
// negative one — exactly 6 turns, the minimum.
func NegativeFirstSet() *Set {
	s := NewSet("hex-negative-first")
	for _, t := range AllTurns() {
		if Positive(t.From) && !Positive(t.To) {
			s.allowed[t] = false
		}
	}
	return s
}

// Name returns the set's name.
func (s *Set) Name() string { return s.name }

// Prohibit marks turns as prohibited.
func (s *Set) Prohibit(turns ...Turn) *Set {
	for _, t := range turns {
		if deg := t.Degree(); deg != 60 && deg != 120 {
			panic(fmt.Sprintf("hexmesh: %v is not a 60- or 120-degree turn", t))
		}
		s.allowed[t] = false
	}
	return s
}

// Allowed reports whether a transition is allowed: 0-degree always,
// 180-degree never, others per the set.
func (s *Set) Allowed(t Turn) bool {
	switch t.Degree() {
	case 0:
		return true
	case 180:
		return false
	}
	return s.allowed[t]
}

// Prohibited returns the prohibited turns.
func (s *Set) Prohibited() []Turn {
	var out []Turn
	for _, t := range AllTurns() {
		if !s.allowed[t] {
			out = append(out, t)
		}
	}
	return out
}

// BreaksAllAbstractCycles reports whether at least one turn of every
// abstract cycle is prohibited, returning intact cycles.
func (s *Set) BreaksAllAbstractCycles() (bool, []Cycle) {
	var intact []Cycle
	for _, c := range AbstractCycles() {
		broken := false
		for _, t := range c.Turns {
			if !s.allowed[t] {
				broken = true
				break
			}
		}
		if !broken {
			intact = append(intact, c)
		}
	}
	return len(intact) == 0, intact
}
