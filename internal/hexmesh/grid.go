package hexmesh

import (
	"fmt"
)

// Mesh is a parallelogram-shaped region of the triangular lattice in
// axial coordinates: nodes (q, r) with 0 <= q < Q and 0 <= r < R, each
// connected to its in-region neighbors along the six directions by a
// pair of opposite unidirectional channels.
type Mesh struct {
	Q, R int
}

// NewMesh returns a Q x R hexagonal mesh.
func NewMesh(q, r int) *Mesh {
	if q < 2 || r < 2 {
		panic("hexmesh: dimensions must be at least 2")
	}
	return &Mesh{Q: q, R: r}
}

// NodeID identifies a node; IDs are dense in [0, Nodes()).
type NodeID int

// Nodes returns the node count.
func (m *Mesh) Nodes() int { return m.Q * m.R }

// ID returns the node at (q, r).
func (m *Mesh) ID(q, r int) NodeID {
	if q < 0 || q >= m.Q || r < 0 || r >= m.R {
		panic(fmt.Sprintf("hexmesh: (%d,%d) out of range", q, r))
	}
	return NodeID(r*m.Q + q)
}

// Coord returns the axial coordinates of id.
func (m *Mesh) Coord(id NodeID) (q, r int) {
	return int(id) % m.Q, int(id) / m.Q
}

// Neighbor returns the node one step along d, if it is in the region.
func (m *Mesh) Neighbor(id NodeID, d Direction) (NodeID, bool) {
	q, r := m.Coord(id)
	dq, dr := d.Delta()
	q, r = q+dq, r+dr
	if q < 0 || q >= m.Q || r < 0 || r >= m.R {
		return id, false
	}
	return m.ID(q, r), true
}

// Distance returns the hexagonal (lattice) distance between two nodes:
// for axial displacement (dq, dr) it is (|dq| + |dr| + |dq+dr|) / 2.
func (m *Mesh) Distance(a, b NodeID) int {
	qa, ra := m.Coord(a)
	qb, rb := m.Coord(b)
	dq, dr := qb-qa, rb-ra
	return (abs(dq) + abs(dr) + abs(dq+dr)) / 2
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Channel is a unidirectional hexagonal channel.
type Channel struct {
	From NodeID
	Dir  Direction
}

func (c Channel) String() string { return fmt.Sprintf("hex(%d %s)", c.From, c.Dir) }

// channelID returns a dense index for CDG arrays.
func (m *Mesh) channelID(c Channel) int { return int(c.From)*int(numDirections) + int(c.Dir) }

func (m *Mesh) channelFromID(id int) Channel {
	return Channel{From: NodeID(id / int(numDirections)), Dir: Direction(id % int(numDirections))}
}

// Profitable returns the directions that reduce the distance to dst and
// stay in the region — the fully adaptive minimal relation.
func (m *Mesh) Profitable(cur, dst NodeID) []Direction {
	if cur == dst {
		return nil
	}
	var out []Direction
	d := m.Distance(cur, dst)
	for _, dir := range Directions() {
		if next, ok := m.Neighbor(cur, dir); ok && m.Distance(next, dst) == d-1 {
			out = append(out, dir)
		}
	}
	return out
}

// Algorithm is a minimal hexagonal routing relation.
type Algorithm struct {
	mesh *Mesh
	name string
	// candidates returns the permitted profitable directions.
	candidates func(cur, dst NodeID) []Direction
}

// Name identifies the algorithm.
func (a *Algorithm) Name() string { return a.name }

// Mesh returns the mesh routed on.
func (a *Algorithm) Mesh() *Mesh { return a.mesh }

// Candidates returns the permitted directions for a packet at cur bound
// for dst.
func (a *Algorithm) Candidates(cur, dst NodeID) []Direction { return a.candidates(cur, dst) }

// NewFullyAdaptive returns the unrestricted minimal relation — not
// deadlock free (the triangle cycles remain), the hexagonal analogue of
// the orthogonal case.
func NewFullyAdaptive(m *Mesh) *Algorithm {
	return &Algorithm{mesh: m, name: "hex-fully-adaptive", candidates: func(cur, dst NodeID) []Direction {
		return m.Profitable(cur, dst)
	}}
}

// NewNegativeFirst returns the hexagonal negative-first algorithm:
// route first adaptively along profitable negative directions (under
// the 2q+r functional), then adaptively along positive ones. It
// prohibits exactly the 6 positive-to-negative turns — the minimum —
// and is deadlock free by the same strictly-increasing numbering as
// Theorem 5.
func NewNegativeFirst(m *Mesh) *Algorithm {
	return &Algorithm{mesh: m, name: "hex-negative-first", candidates: func(cur, dst NodeID) []Direction {
		prof := m.Profitable(cur, dst)
		var neg []Direction
		for _, d := range prof {
			if !Positive(d) {
				neg = append(neg, d)
			}
		}
		if len(neg) > 0 {
			return neg
		}
		var pos []Direction
		for _, d := range prof {
			if Positive(d) {
				pos = append(pos, d)
			}
		}
		return pos
	}}
}

// Walk traces one packet taking the first candidate at each hop.
func Walk(a *Algorithm, src, dst NodeID) ([]NodeID, error) {
	path := []NodeID{src}
	cur := src
	limit := a.mesh.Nodes() * int(numDirections)
	for cur != dst {
		if len(path) > limit {
			return path, fmt.Errorf("hexmesh: %s walk exceeded %d hops", a.name, limit)
		}
		cands := a.Candidates(cur, dst)
		if len(cands) == 0 {
			return path, fmt.Errorf("hexmesh: %s stuck at %d for dst %d", a.name, cur, dst)
		}
		next, ok := a.mesh.Neighbor(cur, cands[0])
		if !ok {
			return path, fmt.Errorf("hexmesh: %s chose an out-of-region direction", a.name)
		}
		cur = next
		path = append(path, cur)
	}
	return path, nil
}

// BuildCDG constructs the channel dependency graph of a relation,
// propagating only feasible states as in the orthogonal analyzer. Turn
// legality is implicit in the relation (the phase structure), so the
// graph records every (arrive, depart) pair the relation can realize.
func BuildCDG(a *Algorithm) *Graph {
	m := a.mesh
	n := m.Nodes() * int(numDirections)
	g := &Graph{mesh: m, adj: make([][]int32, n), present: make([]bool, n)}
	for id := NodeID(0); id < NodeID(m.Nodes()); id++ {
		for _, d := range Directions() {
			if _, ok := m.Neighbor(id, d); ok {
				g.present[m.channelID(Channel{id, d})] = true
			}
		}
	}
	addEdge := func(c1, c2 int) {
		for _, e := range g.adj[c1] {
			if int(e) == c2 {
				return
			}
		}
		g.adj[c1] = append(g.adj[c1], int32(c2))
		g.edges++
	}
	reachable := make([]bool, n)
	var queue []int
	for dst := NodeID(0); dst < NodeID(m.Nodes()); dst++ {
		for i := range reachable {
			reachable[i] = false
		}
		queue = queue[:0]
		for src := NodeID(0); src < NodeID(m.Nodes()); src++ {
			if src == dst {
				continue
			}
			for _, d := range a.Candidates(src, dst) {
				id := m.channelID(Channel{src, d})
				if !reachable[id] {
					reachable[id] = true
					queue = append(queue, id)
				}
			}
		}
		for len(queue) > 0 {
			id := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			c := m.channelFromID(id)
			node, _ := m.Neighbor(c.From, c.Dir)
			if node == dst {
				continue
			}
			for _, d := range a.Candidates(node, dst) {
				id2 := m.channelID(Channel{node, d})
				addEdge(id, id2)
				if !reachable[id2] {
					reachable[id2] = true
					queue = append(queue, id2)
				}
			}
		}
	}
	return g
}

// Graph is a hexagonal channel dependency graph.
type Graph struct {
	mesh    *Mesh
	adj     [][]int32
	present []bool
	edges   int
}

// NumEdges returns the dependency edge count.
func (g *Graph) NumEdges() int { return g.edges }

// FindCycle returns a dependency cycle, or nil if the graph is acyclic.
func (g *Graph) FindCycle() []Channel {
	const (
		white = iota
		gray
		black
	)
	n := len(g.adj)
	color := make([]int8, n)
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = -1
	}
	type frame struct{ node, edge int }
	var stack []frame
	for start := 0; start < n; start++ {
		if color[start] != white || !g.present[start] {
			continue
		}
		color[start] = gray
		stack = append(stack[:0], frame{node: start})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.edge < len(g.adj[f.node]) {
				next := int(g.adj[f.node][f.edge])
				f.edge++
				switch color[next] {
				case white:
					color[next] = gray
					parent[next] = int32(f.node)
					stack = append(stack, frame{node: next})
				case gray:
					var cyc []Channel
					for v := f.node; ; v = int(parent[v]) {
						cyc = append(cyc, g.mesh.channelFromID(v))
						if v == next {
							break
						}
					}
					for i, j := 0, len(cyc)-1; i < j; i, j = i+1, j-1 {
						cyc[i], cyc[j] = cyc[j], cyc[i]
					}
					return cyc
				}
			} else {
				color[f.node] = black
				stack = stack[:len(stack)-1]
			}
		}
	}
	return nil
}

// Acyclic reports whether the graph has no cycles.
func (g *Graph) Acyclic() bool { return g.FindCycle() == nil }

// NegativeFirstNumber is the Theorem 5 numbering transplanted to the
// hexagonal mesh: with F(q, r) = 2q + r the coordinate functional and C
// a constant larger than any |F|, positive channels leaving a node are
// numbered C + F and negative channels C - F; the negative-first
// relation routes along strictly increasing numbers.
func (m *Mesh) NegativeFirstNumber(c Channel) int {
	q, r := m.Coord(c.From)
	f := 2*q + r
	base := 2 * (2*m.Q + m.R) // larger than any |F|
	if Positive(c.Dir) {
		return base + f
	}
	return base - f
}

// VerifyMonotone checks that every dependency edge strictly increases
// the numbering, returning the number of violations.
func (g *Graph) VerifyMonotone(num func(Channel) int) int {
	violations := 0
	for id, outs := range g.adj {
		from := g.mesh.channelFromID(id)
		for _, out := range outs {
			to := g.mesh.channelFromID(int(out))
			if num(to) <= num(from) {
				violations++
			}
		}
	}
	return violations
}

// CountMinimalPaths exhaustively counts the shortest paths from src to
// dst that the relation permits — the hexagonal S_algorithm, mirroring
// the Section 3.4 analysis. Counts fit int64 comfortably on the mesh
// sizes here.
func CountMinimalPaths(a *Algorithm, src, dst NodeID) int64 {
	memo := make(map[NodeID]int64)
	var count func(cur NodeID) int64
	count = func(cur NodeID) int64 {
		if cur == dst {
			return 1
		}
		if v, ok := memo[cur]; ok {
			return v
		}
		var total int64
		for _, d := range a.Candidates(cur, dst) {
			next, ok := a.mesh.Neighbor(cur, d)
			if !ok {
				continue
			}
			total += count(next)
		}
		memo[cur] = total
		return total
	}
	return count(src)
}

// AdaptivenessRatio returns the mean S_p/S_f over all ordered pairs of
// distinct nodes, the hexagonal analogue of the Section 3.4 degree of
// adaptiveness.
func AdaptivenessRatio(m *Mesh, p *Algorithm) float64 {
	full := NewFullyAdaptive(m)
	var sum float64
	var pairs int
	for src := NodeID(0); src < NodeID(m.Nodes()); src++ {
		for dst := NodeID(0); dst < NodeID(m.Nodes()); dst++ {
			if src == dst {
				continue
			}
			pairs++
			sp := CountMinimalPaths(p, src, dst)
			sf := CountMinimalPaths(full, src, dst)
			sum += float64(sp) / float64(sf)
		}
	}
	return sum / float64(pairs)
}
