package hexmesh

import (
	"testing"
	"testing/quick"
)

// TestTurnCounting: the hexagonal analogue of Theorem 1's bookkeeping —
// 24 turns, 6 abstract cycles (4 triangles + 2 hexagons) that partition
// the turns, so a quarter of the turns is the prohibition minimum.
func TestTurnCounting(t *testing.T) {
	turns := AllTurns()
	if len(turns) != NumTurns() || len(turns) != 24 {
		t.Fatalf("%d turns, want 24", len(turns))
	}
	deg60, deg120 := 0, 0
	for _, turn := range turns {
		switch turn.Degree() {
		case 60:
			deg60++
		case 120:
			deg120++
		default:
			t.Fatalf("turn %v has degree %d", turn, turn.Degree())
		}
	}
	if deg60 != 12 || deg120 != 12 {
		t.Errorf("60/120 split = %d/%d, want 12/12", deg60, deg120)
	}
	cycles := AbstractCycles()
	if len(cycles) != NumAbstractCycles() || len(cycles) != 6 {
		t.Fatalf("%d cycles, want 6", len(cycles))
	}
	triangles, hexagons := 0, 0
	seen := map[Turn]int{}
	for _, c := range cycles {
		switch c.Kind {
		case "triangle":
			triangles++
			if len(c.Turns) != 3 {
				t.Errorf("triangle with %d turns", len(c.Turns))
			}
		case "hexagon":
			hexagons++
			if len(c.Turns) != 6 {
				t.Errorf("hexagon with %d turns", len(c.Turns))
			}
		}
		for i, turn := range c.Turns {
			next := c.Turns[(i+1)%len(c.Turns)]
			if turn.To != next.From {
				t.Errorf("%v: turn %d does not chain", c, i)
			}
			seen[turn]++
		}
	}
	if triangles != 4 || hexagons != 2 {
		t.Errorf("%d triangles, %d hexagons; want 4 and 2", triangles, hexagons)
	}
	// The partition property, exactly as in Theorem 1's proof.
	if len(seen) != 24 {
		t.Errorf("cycles cover %d turns, want 24", len(seen))
	}
	for turn, n := range seen {
		if n != 1 {
			t.Errorf("turn %v appears %d times", turn, n)
		}
	}
	if MinimumProhibited() != NumTurns()/4 {
		t.Error("the minimum is a quarter of the turns")
	}
}

// TestTriangleCyclesAreGeometric: each triangle's displacement sums to
// zero — the cycles close on the lattice.
func TestTriangleCyclesAreGeometric(t *testing.T) {
	for _, c := range AbstractCycles() {
		var sq, sr int
		for _, turn := range c.Turns {
			dq, dr := turn.From.Delta()
			sq += dq
			sr += dr
		}
		if sq != 0 || sr != 0 {
			t.Errorf("%v does not close: displacement (%d,%d)", c, sq, sr)
		}
	}
}

// TestNegativeFirstSetMinimal: the hexagonal negative-first set
// prohibits exactly 6 turns (the minimum) and breaks every abstract
// cycle.
func TestNegativeFirstSetMinimal(t *testing.T) {
	s := NegativeFirstSet()
	if got := len(s.Prohibited()); got != MinimumProhibited() {
		t.Errorf("prohibits %d turns, want %d", got, MinimumProhibited())
	}
	ok, intact := s.BreaksAllAbstractCycles()
	if !ok {
		t.Errorf("cycles left intact: %v", intact)
	}
	for _, turn := range s.Prohibited() {
		if !Positive(turn.From) || Positive(turn.To) {
			t.Errorf("prohibited %v is not a positive-to-negative turn", turn)
		}
	}
}

// TestSignClassification: three positive, three negative directions;
// opposites have opposite signs.
func TestSignClassification(t *testing.T) {
	pos := 0
	for _, d := range Directions() {
		if Positive(d) {
			pos++
		}
		if Positive(d) == Positive(d.Opposite()) {
			t.Errorf("%v and %v share a sign", d, d.Opposite())
		}
	}
	if pos != 3 {
		t.Errorf("%d positive directions, want 3", pos)
	}
}

// TestDirectionGeometry: opposites cancel; Degree is symmetric under
// reversal of both directions.
func TestDirectionGeometry(t *testing.T) {
	for _, d := range Directions() {
		dq, dr := d.Delta()
		oq, or := d.Opposite().Delta()
		if dq+oq != 0 || dr+or != 0 {
			t.Errorf("%v and %v do not cancel", d, d.Opposite())
		}
	}
	f := func(a, b uint8) bool {
		x := Direction(a % 6)
		y := Direction(b % 6)
		return Turn{x, y}.Degree() == Turn{y, x}.Degree()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestDistance: known values on the lattice.
func TestDistance(t *testing.T) {
	m := NewMesh(8, 8)
	cases := []struct {
		a, b [2]int
		want int
	}{
		{[2]int{0, 0}, [2]int{3, 0}, 3},
		{[2]int{0, 0}, [2]int{0, 3}, 3},
		{[2]int{0, 0}, [2]int{3, 3}, 6}, // same-sign axial offsets add
		{[2]int{3, 0}, [2]int{0, 3}, 3}, // opposite-sign offsets share NW moves
		{[2]int{2, 2}, [2]int{2, 2}, 0},
	}
	for _, c := range cases {
		got := m.Distance(m.ID(c.a[0], c.a[1]), m.ID(c.b[0], c.b[1]))
		if got != c.want {
			t.Errorf("distance %v->%v = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// TestAllPairsDelivery: both relations deliver every pair minimally.
func TestAllPairsDelivery(t *testing.T) {
	m := NewMesh(6, 5)
	for _, alg := range []*Algorithm{NewFullyAdaptive(m), NewNegativeFirst(m)} {
		for src := NodeID(0); src < NodeID(m.Nodes()); src++ {
			for dst := NodeID(0); dst < NodeID(m.Nodes()); dst++ {
				if src == dst {
					continue
				}
				path, err := Walk(alg, src, dst)
				if err != nil {
					t.Fatalf("%s %d->%d: %v", alg.Name(), src, dst, err)
				}
				if len(path)-1 != m.Distance(src, dst) {
					t.Fatalf("%s %d->%d: %d hops, want %d", alg.Name(), src, dst, len(path)-1, m.Distance(src, dst))
				}
			}
		}
	}
}

// TestNegativeFirstHexDeadlockFree: the future-work claim, verified —
// the negative-first construction transplants to the hexagonal mesh
// with an acyclic dependency graph and a strictly increasing numbering,
// while the unrestricted relation is cyclic (the triangle cycles are
// live).
func TestNegativeFirstHexDeadlockFree(t *testing.T) {
	for _, dims := range [][2]int{{4, 4}, {6, 5}, {8, 8}} {
		m := NewMesh(dims[0], dims[1])
		g := BuildCDG(NewNegativeFirst(m))
		if !g.Acyclic() {
			t.Errorf("hex negative-first cyclic on %dx%d", dims[0], dims[1])
		}
		if v := g.VerifyMonotone(m.NegativeFirstNumber); v != 0 {
			t.Errorf("numbering violations: %d on %dx%d", v, dims[0], dims[1])
		}
		bad := BuildCDG(NewFullyAdaptive(m))
		if bad.Acyclic() {
			t.Errorf("hex fully adaptive should be cyclic on %dx%d", dims[0], dims[1])
		}
		if bad.NumEdges() <= g.NumEdges() {
			t.Errorf("fully adaptive should have more dependencies")
		}
	}
}

// TestCycleWitnessValid: the fully adaptive witness cycle is connected
// on the lattice.
func TestCycleWitnessValid(t *testing.T) {
	m := NewMesh(5, 5)
	g := BuildCDG(NewFullyAdaptive(m))
	cyc := g.FindCycle()
	if cyc == nil {
		t.Fatal("expected a cycle")
	}
	for i, c := range cyc {
		to, ok := m.Neighbor(c.From, c.Dir)
		if !ok {
			t.Fatalf("cycle channel %v leaves the region", c)
		}
		next := cyc[(i+1)%len(cyc)]
		if to != next.From {
			t.Fatalf("cycle not connected at %d", i)
		}
	}
}

// TestNegativeFirstPhaseOrder: along hex negative-first walks, no
// positive move precedes a negative one.
func TestNegativeFirstPhaseOrder(t *testing.T) {
	m := NewMesh(7, 7)
	alg := NewNegativeFirst(m)
	for src := NodeID(0); src < NodeID(m.Nodes()); src += 3 {
		for dst := NodeID(0); dst < NodeID(m.Nodes()); dst += 5 {
			if src == dst {
				continue
			}
			path, err := Walk(alg, src, dst)
			if err != nil {
				t.Fatal(err)
			}
			positiveSeen := false
			for i := 1; i < len(path); i++ {
				qa, ra := m.Coord(path[i-1])
				qb, rb := m.Coord(path[i])
				pos := 2*(qb-qa)+(rb-ra) > 0
				if pos {
					positiveSeen = true
				} else if positiveSeen {
					t.Fatalf("negative move after positive on %v", path)
				}
			}
		}
	}
}

// TestMeshBasics covers bounds and panics.
func TestMeshBasics(t *testing.T) {
	m := NewMesh(4, 3)
	if m.Nodes() != 12 {
		t.Errorf("nodes = %d", m.Nodes())
	}
	if _, ok := m.Neighbor(m.ID(0, 0), W); ok {
		t.Error("west edge should have no west neighbor")
	}
	if _, ok := m.Neighbor(m.ID(3, 2), NE); ok {
		t.Error("top corner should have no NE neighbor")
	}
	q, r := m.Coord(m.ID(2, 1))
	if q != 2 || r != 1 {
		t.Errorf("coord round trip failed: (%d,%d)", q, r)
	}
	for name, fn := range map[string]func(){
		"small":     func() { NewMesh(1, 5) },
		"bad coord": func() { m.ID(4, 0) },
		"bad turn":  func() { NewSet("x").Prohibit(Turn{E, E}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestHexAdaptiveness: hex negative-first keeps a substantial fraction
// of the fully adaptive path diversity (Section 3.4's measure carried
// over), with 1 <= S_nf <= S_f on every pair.
func TestHexAdaptiveness(t *testing.T) {
	m := NewMesh(6, 6)
	nf := NewNegativeFirst(m)
	full := NewFullyAdaptive(m)
	for src := NodeID(0); src < NodeID(m.Nodes()); src++ {
		for dst := NodeID(0); dst < NodeID(m.Nodes()); dst++ {
			if src == dst {
				continue
			}
			sp := CountMinimalPaths(nf, src, dst)
			sf := CountMinimalPaths(full, src, dst)
			if sp < 1 || sp > sf {
				t.Fatalf("%d->%d: S_nf=%d S_f=%d", src, dst, sp, sf)
			}
		}
	}
	r := AdaptivenessRatio(m, nf)
	if r <= 0.3 || r > 1 {
		t.Errorf("mean S_nf/S_f = %.4f, expected a substantial fraction", r)
	}
	if rf := AdaptivenessRatio(m, full); rf != 1 {
		t.Errorf("fully adaptive ratio = %v, want 1", rf)
	}
}
