package core

// The symmetry group of the 2D mesh. A square mesh is invariant under
// the eight isometries of the square (four rotations, four reflections),
// and each isometry acts on turn sets by relabeling directions. Two turn
// sets related by an isometry induce isomorphic channel dependency
// graphs and isomorphic routing relations, so they share every
// structural property — deadlock freedom, connectivity, adaptiveness —
// and, on symmetric workloads, the same performance figures. The paper
// counts its "12 of 16" one-turn-per-cycle prohibitions as "three unique
// if symmetry is taken into account" with exactly this group; the
// exhaustive exploration screens and simulates one representative per
// orbit and maps every raw set to it.

import (
	"fmt"

	"turnmodel/internal/topology"
)

// Symmetry is one isometry of the square acting on 2D mesh directions
// (and through them on turns and turn sets). Obtain the eight group
// elements from Symmetries2D.
type Symmetry struct {
	name string
	// img[i] is the image of topology.DirectionFromIndex(i).
	img [4]topology.Direction
	// turnPerm[i] is the AllTurns(2) index of the image of the i-th turn.
	turnPerm [8]int
}

// Name identifies the group element ("identity", "rot90", "reflect-x",
// ...).
func (sy Symmetry) Name() string { return sy.name }

// Direction returns the image of d under the isometry.
func (sy Symmetry) Direction(d topology.Direction) topology.Direction {
	return sy.img[d.Index()]
}

// Turn returns the image of t under the isometry: both legs of the turn
// are relabeled.
func (sy Symmetry) Turn(t Turn) Turn {
	return Turn{From: sy.Direction(t.From), To: sy.Direction(t.To)}
}

// PermuteKey returns the key of the image set: bit i of key moves to
// the bit of the i-th turn's image. Prohibitions map to prohibitions,
// so the image of a set's key is the key of the image set.
func (sy Symmetry) PermuteKey(key uint16) uint16 {
	var out uint16
	for i := 0; i < 8; i++ {
		if key&(1<<i) != 0 {
			out |= 1 << sy.turnPerm[i]
		}
	}
	return out
}

// Set returns the image of s under the isometry as a fresh set, named
// "<name>(<original name>)". Incorporated 180-degree turns are
// relabeled along with the 90-degree prohibitions.
func (sy Symmetry) Set(s *Set) *Set {
	if s.n != 2 {
		panic(fmt.Sprintf("core: 2D symmetries act on 2D sets only, got %d dims", s.n))
	}
	out := NewSet(2).WithName(fmt.Sprintf("%s(%s)", sy.name, s.name))
	for _, t := range s.Prohibited() {
		out.Prohibit(sy.Turn(t))
	}
	for t, ok := range s.allowed180 {
		if ok {
			out.Allow180(sy.Turn(t))
		}
	}
	return out
}

// symmetries2D is built once: the group is small and fixed.
var symmetries2D = buildSymmetries2D()

// Symmetries2D returns the eight isometries of the square: the identity,
// the three nontrivial rotations, and four reflections. The identity is
// first. Callers must not modify the returned slice.
func Symmetries2D() []Symmetry { return symmetries2D }

func buildSymmetries2D() []Symmetry {
	e := topology.Direction{Dim: 0, Pos: true}
	w := topology.Direction{Dim: 0}
	n := topology.Direction{Dim: 1, Pos: true}
	s := topology.Direction{Dim: 1}
	// img arrays are indexed by Direction.Index(): [west east south north].
	id := [4]topology.Direction{w, e, s, n}
	// 90-degree counterclockwise rotation: e->n, n->w, w->s, s->e.
	rot := [4]topology.Direction{s, n, e, w}
	// Reflection across the x axis: n<->s.
	refl := [4]topology.Direction{w, e, n, s}
	compose := func(a, b [4]topology.Direction) [4]topology.Direction {
		var c [4]topology.Direction
		for i := range c {
			c[i] = a[b[i].Index()]
		}
		return c
	}
	imgs := [][4]topology.Direction{id}
	names := []string{"identity", "rot90", "rot180", "rot270"}
	cur := id
	for i := 0; i < 3; i++ {
		cur = compose(rot, cur)
		imgs = append(imgs, cur)
	}
	for i := 0; i < 4; i++ {
		imgs = append(imgs, compose(refl, imgs[i]))
		if i == 0 {
			names = append(names, "reflect")
		} else {
			names = append(names, "reflect-"+names[i])
		}
	}
	turns := AllTurns(2)
	index := make(map[Turn]int, len(turns))
	for i, t := range turns {
		index[t] = i
	}
	out := make([]Symmetry, len(imgs))
	for k, img := range imgs {
		sy := Symmetry{name: names[k], img: img}
		for i, t := range turns {
			sy.turnPerm[i] = index[Turn{From: img[t.From.Index()], To: img[t.To.Index()]}]
		}
		out[k] = sy
	}
	return out
}

// CanonicalKey2D returns the representative of key's orbit under the
// mesh symmetry group: the smallest key among the eight images. Two 2D
// sets are isomorphic (equal up to relabeling the mesh axes) exactly
// when their canonical keys are equal, so screening or simulating one
// set per canonical key covers the whole design space.
func CanonicalKey2D(key uint16) uint16 {
	best := key
	for _, sy := range symmetries2D {
		if img := sy.PermuteKey(key); img < best {
			best = img
		}
	}
	return best
}
