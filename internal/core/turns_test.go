package core

import (
	"testing"
	"testing/quick"

	"turnmodel/internal/topology"
)

func dirOf(dim int, pos bool) topology.Direction { return topology.Direction{Dim: dim, Pos: pos} }

func TestTurnDegree(t *testing.T) {
	e, w := dirOf(0, true), dirOf(0, false)
	n := dirOf(1, true)
	cases := []struct {
		turn Turn
		want Degree
	}{
		{Turn{e, e}, Deg0},
		{Turn{e, w}, Deg180},
		{Turn{e, n}, Deg90},
		{Turn{n, w}, Deg90},
	}
	for _, c := range cases {
		if got := TurnDegree(c.turn); got != c.want {
			t.Errorf("TurnDegree(%v) = %v, want %v", c.turn, got, c.want)
		}
	}
}

func TestTheorem1Counting(t *testing.T) {
	// "In an n-dimensional mesh ... 4n(n-1) total turns. These turns form
	// two abstract cycles in each of the n(n-1)/2 planes, making n(n-1)
	// total cycles of four turns."
	for n := 2; n <= 7; n++ {
		if got := len(AllTurns(n)); got != NumTurns(n) || got != 4*n*(n-1) {
			t.Errorf("n=%d: %d turns, want %d", n, got, 4*n*(n-1))
		}
		cycles := AbstractCycles(n)
		if len(cycles) != NumAbstractCycles(n) || len(cycles) != n*(n-1) {
			t.Errorf("n=%d: %d cycles, want %d", n, len(cycles), n*(n-1))
		}
		if MinimumProhibited(n) != NumTurns(n)/4 {
			t.Errorf("n=%d: minimum prohibited should be a quarter of the turns", n)
		}
	}
}

func TestAbstractCyclesPartitionTurns(t *testing.T) {
	// The proof of Theorem 1 partitions the 4n(n-1) turns into n(n-1)
	// cycles of four turns each.
	for n := 2; n <= 6; n++ {
		seen := make(map[Turn]int)
		for _, c := range AbstractCycles(n) {
			for _, turn := range c.Turns {
				seen[turn]++
			}
		}
		if len(seen) != NumTurns(n) {
			t.Errorf("n=%d: cycles cover %d distinct turns, want %d", n, len(seen), NumTurns(n))
		}
		for turn, count := range seen {
			if count != 1 {
				t.Errorf("n=%d: turn %v appears in %d cycles, want 1", n, turn, count)
			}
		}
	}
}

func TestAbstractCyclesChain(t *testing.T) {
	// Each cycle's turns chain: the To direction of each turn is the
	// From direction of the next, wrapping around.
	for n := 2; n <= 5; n++ {
		for _, c := range AbstractCycles(n) {
			for i, turn := range c.Turns {
				next := c.Turns[(i+1)%4]
				if turn.To != next.From {
					t.Errorf("n=%d cycle %v: turn %d does not chain", n, c, i)
				}
				if TurnDegree(turn) != Deg90 {
					t.Errorf("cycle turn %v is not 90 degrees", turn)
				}
			}
		}
	}
}

func TestAbstractCycles2D(t *testing.T) {
	// Figure 2: eight turns forming two cycles in the 2D mesh.
	cycles := AbstractCycles(2)
	if len(cycles) != 2 {
		t.Fatalf("2D mesh has %d abstract cycles, want 2", len(cycles))
	}
	if !cycles[0].Clockwise || cycles[1].Clockwise {
		t.Error("expected one clockwise and one counterclockwise cycle")
	}
	if len(AllTurns(2)) != 8 {
		t.Errorf("2D mesh has %d turns, want 8", len(AllTurns(2)))
	}
}

func TestNamedSets(t *testing.T) {
	cases := []struct {
		set        *Set
		prohibited int
	}{
		{WestFirstSet(), 2},
		{NorthLastSet(), 2},
		{NegativeFirstSet(2), 2},
		{DimensionOrderSet(2), 4},
		{Figure4Set(), 2},
		// Every phase-based partially adaptive set prohibits exactly
		// n(n-1) turns, the Theorem 1 minimum.
		{NegativeFirstSet(3), 6},
		{AllButOneNegativeFirstSet(3, 2), 6},
		{AllButOnePositiveLastSet(3, 0), 6},
		{AllButOneNegativeFirstSet(4, 3), 12},
		{AllButOnePositiveLastSet(4, 0), 12},
		{DimensionOrderSet(3), 12},
		{FullyAdaptiveSet(3), 0},
	}
	for _, c := range cases {
		if got := len(c.set.Prohibited()); got != c.prohibited {
			t.Errorf("%v prohibits %d turns, want %d", c.set, got, c.prohibited)
		}
		if got := c.set.NumAllowed(); got != NumTurns(c.set.Dims())-c.prohibited {
			t.Errorf("%v allows %d turns, want %d", c.set, got, NumTurns(c.set.Dims())-c.prohibited)
		}
	}
}

func TestWestFirstSetTurns(t *testing.T) {
	// Figure 5a: the two turns TO the west are prohibited.
	s := WestFirstSet()
	w := dirOf(0, false)
	n, sDir := dirOf(1, true), dirOf(1, false)
	for _, turn := range []Turn{{n, w}, {sDir, w}} {
		if s.Allowed(turn) {
			t.Errorf("west-first should prohibit %v", turn)
		}
	}
	for _, turn := range []Turn{{w, n}, {w, sDir}, {dirOf(0, true), n}, {dirOf(0, true), sDir}, {n, dirOf(0, true)}, {sDir, dirOf(0, true)}} {
		if !s.Allowed(turn) {
			t.Errorf("west-first should allow %v", turn)
		}
	}
}

func TestNorthLastSetTurns(t *testing.T) {
	// Figure 9a: the two turns when travelling north are prohibited.
	s := NorthLastSet()
	n := dirOf(1, true)
	e, w := dirOf(0, true), dirOf(0, false)
	for _, turn := range []Turn{{n, e}, {n, w}} {
		if s.Allowed(turn) {
			t.Errorf("north-last should prohibit %v", turn)
		}
	}
	for _, turn := range []Turn{{e, n}, {w, n}} {
		if !s.Allowed(turn) {
			t.Errorf("north-last should allow %v", turn)
		}
	}
}

func TestNegativeFirstSetTurns(t *testing.T) {
	// Figure 10a: the two turns from a positive direction to a negative
	// direction are prohibited.
	s := NegativeFirstSet(2)
	e, w := dirOf(0, true), dirOf(0, false)
	n, sd := dirOf(1, true), dirOf(1, false)
	for _, turn := range []Turn{{e, sd}, {n, w}} {
		if s.Allowed(turn) {
			t.Errorf("negative-first should prohibit %v", turn)
		}
	}
	for _, turn := range []Turn{{w, n}, {sd, e}, {w, sd}, {sd, w}, {e, n}, {n, e}} {
		if !s.Allowed(turn) {
			t.Errorf("negative-first should allow %v", turn)
		}
	}
}

func TestXYTurnSet(t *testing.T) {
	// Figure 3: only four turns are allowed by the xy algorithm — those
	// from the x dimension into the y dimension.
	s := DimensionOrderSet(2)
	if s.NumAllowed() != 4 {
		t.Fatalf("xy allows %d turns, want 4", s.NumAllowed())
	}
	for _, turn := range AllTurns(2) {
		want := turn.From.Dim == 0 && turn.To.Dim == 1
		if s.Allowed(turn) != want {
			t.Errorf("xy Allowed(%v) = %v, want %v", turn, s.Allowed(turn), want)
		}
	}
}

func TestBreaksAllAbstractCycles(t *testing.T) {
	for _, s := range []*Set{WestFirstSet(), NorthLastSet(), NegativeFirstSet(2), DimensionOrderSet(2), Figure4Set(), NegativeFirstSet(4)} {
		if ok, intact := s.BreaksAllAbstractCycles(); !ok {
			t.Errorf("%v leaves cycles intact: %v", s, intact)
		}
	}
	if ok, _ := FullyAdaptiveSet(2).BreaksAllAbstractCycles(); ok {
		t.Error("the fully adaptive set cannot break any cycle")
	}
	// Prohibiting two turns from the SAME cycle leaves the other whole.
	cyc := AbstractCycles(2)[0]
	s := NewSet(2).Prohibit(cyc.Turns[0], cyc.Turns[1])
	if ok, intact := s.BreaksAllAbstractCycles(); ok || len(intact) != 1 {
		t.Errorf("same-cycle prohibition should leave one cycle intact, got ok=%v intact=%v", ok, intact)
	}
}

func TestSetBasics(t *testing.T) {
	s := NewSet(2)
	e := dirOf(0, true)
	n := dirOf(1, true)
	turn := Turn{e, n}
	if !s.Allowed(turn) {
		t.Fatal("fresh set should allow all 90-degree turns")
	}
	s.Prohibit(turn)
	if s.Allowed(turn) {
		t.Fatal("prohibited turn still allowed")
	}
	s.Permit(turn)
	if !s.Allowed(turn) {
		t.Fatal("permitted turn still prohibited")
	}
	// 0-degree "turns" (continuing straight) are always allowed.
	if !s.Allowed(Turn{e, e}) {
		t.Error("0-degree turn should be allowed")
	}
	// 180-degree turns only after Allow180 (Step 6).
	rev := Turn{e, dirOf(0, false)}
	if s.Allowed(rev) {
		t.Error("180-degree turn should start prohibited")
	}
	s.Allow180(rev)
	if !s.Allowed(rev) {
		t.Error("Allow180 did not take effect")
	}
}

func TestSetClone(t *testing.T) {
	s := WestFirstSet()
	c := s.Clone()
	turn := Turn{dirOf(0, true), dirOf(1, true)}
	c.Prohibit(turn)
	if !s.Allowed(turn) {
		t.Error("mutating a clone changed the original")
	}
	if c.Name() != s.Name() {
		t.Error("clone lost the name")
	}
}

func TestSetPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"prohibit 180":     func() { NewSet(2).Prohibit(Turn{dirOf(0, true), dirOf(0, false)}) },
		"prohibit 0":       func() { NewSet(2).Prohibit(Turn{dirOf(0, true), dirOf(0, true)}) },
		"out of range":     func() { NewSet(2).Prohibit(Turn{dirOf(0, true), dirOf(5, true)}) },
		"allow180 not 180": func() { NewSet(2).Allow180(Turn{dirOf(0, true), dirOf(1, true)}) },
		"abonf bad dim":    func() { AllButOneNegativeFirstSet(2, 5) },
		"abopl bad dim":    func() { AllButOnePositiveLastSet(2, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestOneTurnPerCyclePairs(t *testing.T) {
	sets := OneTurnPerCyclePairs2D()
	if len(sets) != 16 {
		t.Fatalf("got %d pairs, want 16", len(sets))
	}
	cycles := AbstractCycles(2)
	for _, s := range sets {
		p := s.Prohibited()
		if len(p) != 2 {
			t.Fatalf("%v prohibits %d turns, want 2", s, len(p))
		}
		if ok, _ := s.BreaksAllAbstractCycles(); !ok {
			t.Errorf("%v should break both abstract cycles", s)
		}
		// One prohibited turn from each cycle.
		for _, c := range cycles {
			found := 0
			for _, turn := range c.Turns {
				if !s.Allowed(turn) {
					found++
				}
			}
			if found != 1 {
				t.Errorf("%v prohibits %d turns of %v, want 1", s, found, c)
			}
		}
	}
}

func TestPhaseSetsProhibitPhase2ToPhase1Only(t *testing.T) {
	// Property: for every n and every turn, negative-first prohibits
	// exactly the positive-to-negative turns.
	f := func(rawN uint8, rawFrom, rawTo uint8) bool {
		n := 2 + int(rawN)%4
		s := NegativeFirstSet(n)
		from := topology.DirectionFromIndex(int(rawFrom) % (2 * n))
		to := topology.DirectionFromIndex(int(rawTo) % (2 * n))
		turn := Turn{from, to}
		if TurnDegree(turn) != Deg90 {
			return true
		}
		want := !(from.Pos && !to.Pos)
		return s.Allowed(turn) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestStringOutputs(t *testing.T) {
	if s := WestFirstSet().String(); s == "" {
		t.Error("empty String for west-first set")
	}
	if s := AbstractCycles(2)[0].String(); s == "" {
		t.Error("empty String for cycle")
	}
	if s := (Turn{dirOf(0, true), dirOf(1, true)}).String(); s != "east->north" {
		t.Errorf("turn string = %q", s)
	}
}
