package core

import (
	"testing"

	"turnmodel/internal/topology"
)

// TestSymmetryGroup: the eight isometries are distinct permutations of
// the directions, closed under the turn action (every image turn is a
// 90-degree turn), and include the identity first.
func TestSymmetryGroup(t *testing.T) {
	syms := Symmetries2D()
	if len(syms) != 8 {
		t.Fatalf("%d symmetries, want 8", len(syms))
	}
	if syms[0].Name() != "identity" {
		t.Errorf("first element is %q, want identity", syms[0].Name())
	}
	seen := map[[4]int]bool{}
	for _, sy := range syms {
		var perm [4]int
		for i := 0; i < 4; i++ {
			d := sy.Direction(topology.DirectionFromIndex(i))
			perm[i] = d.Index()
		}
		if seen[perm] {
			t.Errorf("%s duplicates another element", sy.Name())
		}
		seen[perm] = true
		for _, turn := range AllTurns(2) {
			if TurnDegree(sy.Turn(turn)) != Deg90 {
				t.Errorf("%s maps %v to the non-90-degree %v", sy.Name(), turn, sy.Turn(turn))
			}
		}
	}
	if syms[0].Turn(Turn{From: topology.Direction{Dim: 0, Pos: true}, To: topology.Direction{Dim: 1}}) !=
		(Turn{From: topology.Direction{Dim: 0, Pos: true}, To: topology.Direction{Dim: 1}}) {
		t.Error("identity moved a turn")
	}
}

// TestPermuteKeyMatchesSetAction: permuting a key agrees with
// transforming the set and re-keying it, for every key and symmetry.
func TestPermuteKeyMatchesSetAction(t *testing.T) {
	for key := uint16(0); key < NumSets2D; key++ {
		s := SetFromKey2D(key)
		for _, sy := range Symmetries2D() {
			if got, want := sy.PermuteKey(key), sy.Set(s).Key(); got != want {
				t.Fatalf("%s on %#02x: PermuteKey %#02x, Set().Key() %#02x", sy.Name(), key, got, want)
			}
		}
	}
}

// TestCanonicalKeyIsOrbitInvariant: every member of an orbit shares the
// canonical key, the canonical key is a member of the orbit, and
// canonicalization is idempotent.
func TestCanonicalKeyIsOrbitInvariant(t *testing.T) {
	classes := map[uint16]bool{}
	for key := uint16(0); key < NumSets2D; key++ {
		canon := CanonicalKey2D(key)
		if canon > key {
			t.Errorf("canonical key %#02x exceeds member %#02x", canon, key)
		}
		if CanonicalKey2D(canon) != canon {
			t.Errorf("canonicalization not idempotent at %#02x", key)
		}
		inOrbit := false
		for _, sy := range Symmetries2D() {
			if sy.PermuteKey(key) == canon {
				inOrbit = true
			}
			if CanonicalKey2D(sy.PermuteKey(key)) != canon {
				t.Errorf("orbit of %#02x has inconsistent canonical keys", key)
			}
		}
		if !inOrbit {
			t.Errorf("canonical key of %#02x is outside its orbit", key)
		}
		classes[canon] = true
	}
	// Burnside count for the D4 action on 8 turns: the orbit count of
	// the full 256-set space is a fixed structural constant.
	if len(classes) != 43 {
		t.Errorf("%d orbits over the 256 sets, want 43 (Burnside count)", len(classes))
	}
}

// TestNamedFamiliesAreDistinctOrbits: the paper's three unique
// one-turn-per-cycle classes — west-first, north-last, negative-first —
// have pairwise distinct canonical keys, and each orbit has the
// expected size (4 for west-first and north-last, 4 for negative-first).
func TestNamedFamiliesAreDistinctOrbits(t *testing.T) {
	wf := CanonicalKey2D(WestFirstSet().Key())
	nl := CanonicalKey2D(NorthLastSet().Key())
	nf := CanonicalKey2D(NegativeFirstSet(2).Key())
	if wf == nl || wf == nf || nl == nf {
		t.Errorf("named families collide: wf=%#02x nl=%#02x nf=%#02x", wf, nl, nf)
	}
	for _, c := range []struct {
		name string
		key  uint16
	}{{"west-first", WestFirstSet().Key()}, {"north-last", NorthLastSet().Key()}, {"negative-first", NegativeFirstSet(2).Key()}} {
		orbit := map[uint16]bool{}
		for _, sy := range Symmetries2D() {
			orbit[sy.PermuteKey(c.key)] = true
		}
		if len(orbit) != 4 {
			t.Errorf("%s orbit has %d members, want 4", c.name, len(orbit))
		}
	}
}
