package core

import (
	"fmt"

	"turnmodel/internal/topology"
)

// This file constructs the allowed-turn sets of the paper's named routing
// algorithms. Each is derived from the algorithm's phase structure: a
// turn from direction a to direction b is allowed exactly when the
// algorithm may travel b at some point after travelling a.

func dir(dim int, pos bool) topology.Direction { return topology.Direction{Dim: dim, Pos: pos} }

// DimensionOrderSet returns the allowed-turn set of dimension-order (xy /
// e-cube) routing on an n-dimensional mesh: a turn from dimension i to
// dimension j is allowed only when i < j. For n = 2 this is exactly the
// four allowed turns of Figure 3.
func DimensionOrderSet(n int) *Set {
	s := NewSet(n).WithName("dimension-order")
	for _, t := range AllTurns(n) {
		if t.From.Dim >= t.To.Dim {
			s.Prohibit(t)
		}
	}
	return s
}

// phaseSet builds a turn set from a two-phase direction partition:
// directions in phase1 may be used first, adaptively; directions in
// phase2 may be used after, adaptively; returning from a phase-2
// direction to a phase-1 direction is prohibited. Directions within one
// phase may turn to each other freely.
func phaseSet(n int, name string, phase1 map[topology.Direction]bool) *Set {
	s := NewSet(n).WithName(name)
	for _, t := range AllTurns(n) {
		if !phase1[t.From] && phase1[t.To] {
			s.Prohibit(t)
		}
	}
	return s
}

// NegativeFirstSet returns the allowed-turn set of the negative-first
// algorithm for an n-dimensional mesh: the turns from a positive
// direction to a negative direction are prohibited (Figure 10a for n=2).
// Exactly n(n-1) turns — one per abstract cycle, the minimum of
// Theorem 1 — are prohibited.
func NegativeFirstSet(n int) *Set {
	phase1 := make(map[topology.Direction]bool)
	for i := 0; i < n; i++ {
		phase1[dir(i, false)] = true
	}
	return phaseSet(n, "negative-first", phase1)
}

// AllButOneNegativeFirstSet returns the turn set of the
// all-but-one-negative-first (ABONF) algorithm: packets route first
// adaptively in the negative directions of all dimensions except
// excluded, then adaptively in the remaining directions. The paper's
// canonical choice excludes dimension n-1; with n=2 and excluded=1 this
// is the west-first algorithm of Figure 5a.
func AllButOneNegativeFirstSet(n, excluded int) *Set {
	if excluded < 0 || excluded >= n {
		panic(fmt.Sprintf("core: excluded dimension %d out of range for %d dims", excluded, n))
	}
	phase1 := make(map[topology.Direction]bool)
	for i := 0; i < n; i++ {
		if i != excluded {
			phase1[dir(i, false)] = true
		}
	}
	return phaseSet(n, fmt.Sprintf("abonf(excl %d)", excluded), phase1)
}

// WestFirstSet returns the west-first turn set for a 2D mesh (Figure 5a):
// the two turns to the west are prohibited.
func WestFirstSet() *Set {
	return AllButOneNegativeFirstSet(2, 1).WithName("west-first")
}

// AllButOnePositiveLastSet returns the turn set of the
// all-but-one-positive-last (ABOPL) algorithm: packets route first
// adaptively in all negative directions plus the positive direction of
// dimension special, then adaptively in the remaining positive
// directions. With n=2 and special=0 this is the north-last algorithm of
// Figure 9a.
func AllButOnePositiveLastSet(n, special int) *Set {
	if special < 0 || special >= n {
		panic(fmt.Sprintf("core: special dimension %d out of range for %d dims", special, n))
	}
	phase1 := make(map[topology.Direction]bool)
	for i := 0; i < n; i++ {
		phase1[dir(i, false)] = true
	}
	phase1[dir(special, true)] = true
	return phaseSet(n, fmt.Sprintf("abopl(dim %d)", special), phase1)
}

// NorthLastSet returns the north-last turn set for a 2D mesh (Figure 9a):
// the two turns when travelling north are prohibited.
func NorthLastSet() *Set {
	return AllButOnePositiveLastSet(2, 0).WithName("north-last")
}

// FullyAdaptiveSet returns the set with every 90-degree turn allowed.
// Without extra channels this set does NOT prevent deadlock; it is the
// reference point for maximal adaptiveness.
func FullyAdaptiveSet(n int) *Set {
	return NewSet(n).WithName("fully-adaptive")
}

// Figure4Set returns a turn set that prohibits exactly one turn from each
// of the two abstract cycles of the 2D mesh yet still permits deadlock
// (Figure 4). It prohibits the right turn south->west (from the
// clockwise cycle) and the left turn west->south (from the
// counterclockwise cycle). Three consecutive left turns rotate a packet
// the same net 90 degrees as one right turn, so the three allowed left
// turns (west->south excepted) are equivalent to the prohibited right
// turn and vice versa: both cycles still exist and deadlock is possible.
//
// In general, prohibiting the reverse pair {x->y (right), y->x (left)}
// is exactly what fails; the other 12 of the 16 one-turn-per-cycle
// choices prevent deadlock (Section 3). The deadlock package verifies
// this computationally.
func Figure4Set() *Set {
	w := dir(0, false)
	s := dir(1, false)
	return NewSet(2).WithName("figure-4").
		Prohibit(Turn{s, w}). // right turn, from the clockwise cycle
		Prohibit(Turn{w, s})  // left turn, from the counterclockwise cycle
}

// OneTurnPerCyclePairs2D enumerates the 16 ways to prohibit one turn from
// each of the two abstract cycles of a 2D mesh (Section 3: "Of the 16
// different ways to prohibit these two turns, 12 prevent deadlock and
// three are unique if symmetry is taken into account"). Each returned
// set prohibits exactly two turns.
func OneTurnPerCyclePairs2D() []*Set {
	cycles := AbstractCycles(2)
	if len(cycles) != 2 {
		panic("core: expected two abstract cycles in 2D")
	}
	var sets []*Set
	for i, t1 := range cycles[0].Turns {
		for j, t2 := range cycles[1].Turns {
			s := NewSet(2).WithName(fmt.Sprintf("pair(%d,%d): %v,%v", i, j, t1, t2))
			s.Prohibit(t1, t2)
			sets = append(sets, s)
		}
	}
	return sets
}
