// Package core implements the turn model, the paper's primary
// contribution: analyzing the directions in which packets can turn in a
// network and the abstract cycles those turns can form, then prohibiting
// just enough turns to break every cycle.
//
// The package provides the turn calculus for n-dimensional meshes and
// k-ary n-cubes: enumeration of 90-degree turns, the abstract cycles of
// Figure 2, turn sets with prohibition bookkeeping, the counting results
// of Theorem 1, and the allowed-turn sets induced by the paper's routing
// algorithms (Figures 3, 5a, 9a and 10a).
package core

import (
	"fmt"
	"sort"

	"turnmodel/internal/topology"
)

// Turn is an ordered pair of directions: a packet travelling From turns
// to travel To.
type Turn struct {
	From, To topology.Direction
}

func (t Turn) String() string {
	return fmt.Sprintf("%s->%s", t.From, t.To)
}

// Degree classifies a turn by its angle.
type Degree int

const (
	// Deg0 is a transition between two virtual directions sharing one
	// physical direction (only possible with multiple channels per
	// direction, which the base topologies here do not have).
	Deg0 Degree = 0
	// Deg90 is a turn between two distinct, non-opposite directions.
	Deg90 Degree = 90
	// Deg180 is a reversal.
	Deg180 Degree = 180
)

// TurnDegree classifies t.
func TurnDegree(t Turn) Degree {
	if t.From == t.To {
		return Deg0
	}
	if t.From.Dim == t.To.Dim {
		return Deg180
	}
	return Deg90
}

// AllTurns returns every 90-degree turn in an n-dimensional mesh, in a
// deterministic order. Per the counting in Section 2 there are 4n(n-1)
// of them.
func AllTurns(n int) []Turn {
	var turns []Turn
	for fi := 0; fi < 2*n; fi++ {
		from := topology.DirectionFromIndex(fi)
		for ti := 0; ti < 2*n; ti++ {
			to := topology.DirectionFromIndex(ti)
			if TurnDegree(Turn{from, to}) == Deg90 {
				turns = append(turns, Turn{from, to})
			}
		}
	}
	return turns
}

// NumTurns returns 4n(n-1), the number of 90-degree turns in an
// n-dimensional mesh (Section 2).
func NumTurns(n int) int { return 4 * n * (n - 1) }

// NumAbstractCycles returns n(n-1), the number of abstract cycles of four
// turns (two per plane, Section 2).
func NumAbstractCycles(n int) int { return n * (n - 1) }

// MinimumProhibited returns the minimum number of turns that must be
// prohibited to prevent deadlock in an n-dimensional mesh: n(n-1), a
// quarter of the turns (Theorem 1).
func MinimumProhibited(n int) int { return n * (n - 1) }

// Cycle is one abstract cycle of four turns (Figure 2). The turns are
// listed in traversal order; the To direction of each turn equals the
// From direction of the next.
type Cycle struct {
	// Plane identifies the two dimensions [i, j] (i < j) the cycle lies in.
	Plane [2]int
	// Clockwise distinguishes the two cycles of the plane. With dimension
	// i drawn as x (east positive) and j as y (north positive), the
	// clockwise cycle is the one made of right turns.
	Clockwise bool
	Turns     [4]Turn
}

func (c Cycle) String() string {
	rot := "ccw"
	if c.Clockwise {
		rot = "cw"
	}
	return fmt.Sprintf("cycle(plane %d-%d %s: %v %v %v %v)", c.Plane[0], c.Plane[1], rot,
		c.Turns[0], c.Turns[1], c.Turns[2], c.Turns[3])
}

// AbstractCycles enumerates the n(n-1) abstract cycles of an
// n-dimensional mesh: two per plane, each consisting of four 90-degree
// turns. The cycles partition the 4n(n-1) turns (Theorem 1's proof).
func AbstractCycles(n int) []Cycle {
	var cycles []Cycle
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			pi, ni := topology.Direction{Dim: i, Pos: true}, topology.Direction{Dim: i}
			pj, nj := topology.Direction{Dim: j, Pos: true}, topology.Direction{Dim: j}
			// Clockwise (right turns): east->south, south->west,
			// west->north, north->east.
			cycles = append(cycles, Cycle{
				Plane:     [2]int{i, j},
				Clockwise: true,
				Turns:     [4]Turn{{pi, nj}, {nj, ni}, {ni, pj}, {pj, pi}},
			})
			// Counterclockwise (left turns): east->north, north->west,
			// west->south, south->east.
			cycles = append(cycles, Cycle{
				Plane:     [2]int{i, j},
				Clockwise: false,
				Turns:     [4]Turn{{pi, pj}, {pj, ni}, {ni, nj}, {nj, pi}},
			})
		}
	}
	return cycles
}

// Set records which turns of an n-dimensional mesh are allowed. A fresh
// Set allows every 90-degree turn and no 180-degree turns; use Prohibit
// and Allow180 to shape it. The zero value is not usable; construct with
// NewSet.
type Set struct {
	n          int
	allowed    map[Turn]bool
	allowed180 map[Turn]bool
	name       string
}

// NewSet returns a Set for an n-dimensional mesh with all 90-degree
// turns allowed.
func NewSet(n int) *Set {
	s := &Set{
		n:          n,
		allowed:    make(map[Turn]bool),
		allowed180: make(map[Turn]bool),
		name:       "custom",
	}
	for _, t := range AllTurns(n) {
		s.allowed[t] = true
	}
	return s
}

// WithName sets a descriptive name and returns s.
func (s *Set) WithName(name string) *Set {
	s.name = name
	return s
}

// Name returns the descriptive name of the set.
func (s *Set) Name() string { return s.name }

// Dims returns the number of mesh dimensions the set is defined over.
func (s *Set) Dims() int { return s.n }

// Prohibit marks 90-degree turns as prohibited. It panics on turns that
// are not 90 degrees or that involve out-of-range dimensions.
func (s *Set) Prohibit(turns ...Turn) *Set {
	for _, t := range turns {
		s.check(t)
		s.allowed[t] = false
	}
	return s
}

// Permit re-allows previously prohibited 90-degree turns.
func (s *Set) Permit(turns ...Turn) *Set {
	for _, t := range turns {
		s.check(t)
		s.allowed[t] = true
	}
	return s
}

// Allow180 incorporates a 180-degree turn (Step 6 of the model). The
// turn must be a reversal.
func (s *Set) Allow180(turns ...Turn) *Set {
	for _, t := range turns {
		if TurnDegree(t) != Deg180 {
			panic(fmt.Sprintf("core: %v is not a 180-degree turn", t))
		}
		s.allowed180[t] = true
	}
	return s
}

func (s *Set) check(t Turn) {
	if TurnDegree(t) != Deg90 {
		panic(fmt.Sprintf("core: %v is not a 90-degree turn", t))
	}
	if t.From.Dim >= s.n || t.To.Dim >= s.n {
		panic(fmt.Sprintf("core: turn %v out of range for %d dims", t, s.n))
	}
}

// Allowed reports whether the turn is allowed. 0-degree turns (same
// direction, i.e. continuing straight) are always allowed; 90-degree
// turns follow the prohibition bookkeeping; 180-degree turns are allowed
// only if incorporated with Allow180.
func (s *Set) Allowed(t Turn) bool {
	switch TurnDegree(t) {
	case Deg0:
		return true
	case Deg180:
		return s.allowed180[t]
	default:
		return s.allowed[t]
	}
}

// Prohibited returns the prohibited 90-degree turns in deterministic
// order.
func (s *Set) Prohibited() []Turn {
	var out []Turn
	for _, t := range AllTurns(s.n) {
		if !s.allowed[t] {
			out = append(out, t)
		}
	}
	return out
}

// NumAllowed returns the number of allowed 90-degree turns.
func (s *Set) NumAllowed() int {
	n := 0
	for _, ok := range s.allowed {
		if ok {
			n++
		}
	}
	return n
}

// Clone returns a deep copy of s.
func (s *Set) Clone() *Set {
	c := &Set{n: s.n, name: s.name,
		allowed:    make(map[Turn]bool, len(s.allowed)),
		allowed180: make(map[Turn]bool, len(s.allowed180)),
	}
	for k, v := range s.allowed {
		c.allowed[k] = v
	}
	for k, v := range s.allowed180 {
		c.allowed180[k] = v
	}
	return c
}

// BreaksAllAbstractCycles reports whether at least one turn of every
// abstract cycle is prohibited (Step 4's necessary condition), returning
// any fully allowed cycles. This is necessary but NOT sufficient for
// deadlock freedom: Figure 4 exhibits a set that breaks both abstract
// cycles of the 2D mesh yet still deadlocks through complex cycles. Use
// the deadlock package's channel dependency analysis for a sufficient
// check.
func (s *Set) BreaksAllAbstractCycles() (bool, []Cycle) {
	var intact []Cycle
	for _, c := range AbstractCycles(s.n) {
		broken := false
		for _, t := range c.Turns {
			if !s.allowed[t] {
				broken = true
				break
			}
		}
		if !broken {
			intact = append(intact, c)
		}
	}
	return len(intact) == 0, intact
}

// String lists the prohibited turns.
func (s *Set) String() string {
	p := s.Prohibited()
	strs := make([]string, len(p))
	for i, t := range p {
		strs[i] = t.String()
	}
	sort.Strings(strs)
	return fmt.Sprintf("turnset %s (prohibited: %v)", s.name, strs)
}
