package core

import (
	"testing"

	"turnmodel/internal/topology"
)

// TestKeyRoundTrip: Key and SetFromKey2D are inverse over the whole
// design space, and AllSets2D enumerates exactly the 256 keys in order.
func TestKeyRoundTrip(t *testing.T) {
	sets := AllSets2D()
	if len(sets) != NumSets2D {
		t.Fatalf("AllSets2D returned %d sets, want %d", len(sets), NumSets2D)
	}
	for key, s := range sets {
		if got := s.Key(); got != uint16(key) {
			t.Errorf("set %d round-trips to key %#x", key, got)
		}
		if want := NumTurns(2) - popcount8(uint16(key)); s.NumAllowed() != want {
			t.Errorf("key %#x allows %d turns, want %d", key, s.NumAllowed(), want)
		}
	}
}

func popcount8(k uint16) int {
	n := 0
	for ; k != 0; k &= k - 1 {
		n++
	}
	return n
}

// TestKeyOfNamedSets: the canonical algorithms land on the expected
// bitmasks given AllTurns(2)'s order (w->s, w->n, e->s, e->n, s->w,
// s->e, n->w, n->e).
func TestKeyOfNamedSets(t *testing.T) {
	cases := []struct {
		set  *Set
		want uint16
	}{
		{FullyAdaptiveSet(2), 0x00},
		{WestFirstSet(), 0x50},       // s->w, n->w
		{NorthLastSet(), 0xc0},       // n->w, n->e
		{NegativeFirstSet(2), 0x44},  // e->s, n->w
		{DimensionOrderSet(2), 0xf0}, // all four turns out of dimension 1
		{Figure4Set(), 0x11},         // w->s, s->w (the deadlocking reverse pair)
	}
	for _, c := range cases {
		if got := c.set.Key(); got != c.want {
			t.Errorf("%s: key %#02x, want %#02x", c.set.Name(), got, c.want)
		}
	}
}

// TestKeyPanics: keys are 2D-only and reject 180-degree incorporation.
func TestKeyPanics(t *testing.T) {
	expectPanic(t, "3D set", func() { NewSet(3).Key() })
	s := NewSet(2)
	s.Allow180(Turn{From: topology.Direction{Dim: 0, Pos: true}, To: topology.Direction{Dim: 0}})
	expectPanic(t, "180-degree set", func() { s.Key() })
	expectPanic(t, "key out of range", func() { SetFromKey2D(NumSets2D) })
	expectPanic(t, "gray index out of range", func() { GrayKey2D(NumSets2D) })
}

func expectPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected a panic", what)
		}
	}()
	fn()
}

// TestGrayWalk: the Gray walk visits every key exactly once and flips
// exactly one turn per step.
func TestGrayWalk(t *testing.T) {
	seen := make(map[uint16]bool, NumSets2D)
	prev := GrayKey2D(0)
	if prev != 0 {
		t.Fatalf("walk starts at %#x, want 0", prev)
	}
	seen[prev] = true
	for i := 1; i < NumSets2D; i++ {
		key := GrayKey2D(i)
		if seen[key] {
			t.Fatalf("key %#x visited twice", key)
		}
		seen[key] = true
		if diff := key ^ prev; popcount8(diff) != 1 {
			t.Fatalf("step %d flips %d bits (%#x -> %#x)", i, popcount8(diff), prev, key)
		}
		prev = key
	}
}
