package core

// This file gives 2D turn sets a canonical machine identity: a uint16
// bitmask over the eight 90-degree turns. The exhaustive design-space
// exploration (internal/explore) enumerates, deduplicates and
// content-addresses sets by key instead of by formatted prohibition
// lists, and the Gray-code screening walk flips one key bit per step.

import "fmt"

// NumSets2D is the size of the 2D design space: every subset of the
// eight 90-degree turns may be prohibited, 2^8 = 256 sets in all.
const NumSets2D = 256

// Key returns the canonical identity of a 2D turn set as a bitmask over
// AllTurns(2): bit i is set exactly when the i-th turn is prohibited.
// Key 0 is the fully adaptive set; 0xff prohibits every 90-degree turn.
// Two 2D sets are the same relation if and only if their keys are equal,
// which makes the key the right map key and content address wherever
// sets are compared (the formatted Prohibited() list that used to play
// this role is neither compact nor order-canonical by construction).
//
// Key panics on sets of more than two dimensions (whose 4n(n-1) turns
// do not fit 16 bits) and on sets with incorporated 180-degree turns
// (which the bitmask does not cover and would therefore alias).
func (s *Set) Key() uint16 {
	if s.n != 2 {
		panic(fmt.Sprintf("core: Key is defined for 2D sets only, got %d dims", s.n))
	}
	if len(s.allowed180) != 0 {
		panic("core: Key does not cover sets with 180-degree turns incorporated")
	}
	var key uint16
	for i, t := range AllTurns(2) {
		if !s.allowed[t] {
			key |= 1 << i
		}
	}
	return key
}

// SetFromKey2D reconstructs the 2D turn set identified by key: bit i of
// key prohibits the i-th turn of AllTurns(2). It is the inverse of Key,
// and names the set after the key ("set-0x44").
func SetFromKey2D(key uint16) *Set {
	if key >= NumSets2D {
		panic(fmt.Sprintf("core: 2D set key %#x out of range [0, %#x)", key, NumSets2D))
	}
	s := NewSet(2).WithName(fmt.Sprintf("set-0x%02x", key))
	for i, t := range AllTurns(2) {
		if key&(1<<i) != 0 {
			s.Prohibit(t)
		}
	}
	return s
}

// AllSets2D enumerates the full 2D design space: one set per key in
// ascending key order, NumSets2D sets in all. The slice is freshly
// allocated; callers may mutate the sets.
func AllSets2D() []*Set {
	sets := make([]*Set, NumSets2D)
	for key := range sets {
		sets[key] = SetFromKey2D(uint16(key))
	}
	return sets
}

// GrayKey2D returns the i-th key of the binary-reflected Gray-code walk
// over the 2D design space: consecutive keys differ in exactly one bit,
// i.e. consecutive sets differ by exactly one turn prohibition. The
// incremental screening walk (internal/explore) visits sets in this
// order so each step is a single add- or remove-prohibition delta.
func GrayKey2D(i int) uint16 {
	if i < 0 || i >= NumSets2D {
		panic(fmt.Sprintf("core: Gray index %d out of range [0, %d)", i, NumSets2D))
	}
	return uint16(i ^ (i >> 1))
}
