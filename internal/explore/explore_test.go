package explore

import (
	"math/big"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"turnmodel/internal/adapt"
	"turnmodel/internal/core"
	"turnmodel/internal/exp"
	"turnmodel/internal/routing"
	"turnmodel/internal/topology"
)

// TestScreenCounts pins the design-space structure: the class count is
// the Burnside orbit count, the deadlock-free frontier matches the
// theory (everything prohibiting at least one turn per abstract cycle
// is acyclic except the four bad reverse pairs), and the counts are
// mesh independent.
func TestScreenCounts(t *testing.T) {
	want := Counts{Sets: 256, Classes: 43, FreeSets: 221, FreeClasses: 36, Survivors: 9}
	for _, dims := range [][]int{{6, 6}, {5, 4}} {
		s := Screen(topology.NewMesh(dims...))
		if got := s.Counts(); got != want {
			t.Errorf("mesh %v: counts %+v, want %+v", dims, got, want)
		}
		if err := s.SelfCheck(); err != nil {
			t.Errorf("mesh %v: self-check: %v", dims, err)
		}
	}
}

// TestCanonicalizationSound is the satellite property test: screening
// one representative per class loses nothing, because every raw set's
// verdict equals its canonical representative's.
func TestCanonicalizationSound(t *testing.T) {
	s := Screen(topology.NewMesh(6, 6))
	for key := 0; key < core.NumSets2D; key++ {
		if s.DeadlockFree[key] != s.DeadlockFree[s.Canon[key]] {
			t.Errorf("set %#02x and its representative %#02x disagree on deadlock freedom",
				key, s.Canon[key])
		}
	}
	for _, c := range s.Classes {
		for _, m := range c.Members {
			if s.Canon[m] != c.Canon {
				t.Errorf("member %#02x of class %#02x maps to %#02x", m, c.Canon, s.Canon[m])
			}
		}
	}
}

// TestSymmetricMetricsInvariant: deterministic figures — adaptivity
// degree and minimal-relation connectivity — are identical for a set
// and every symmetry image of it, the property that justifies reusing
// the representative's benchmark figures for the whole class.
func TestSymmetricMetricsInvariant(t *testing.T) {
	topo := topology.NewMesh(5, 5)
	ratio := func(key uint16) float64 {
		alg := routing.NewTurnGraphRouting(topo, core.SetFromKey2D(key), true)
		return adapt.AverageRatio(topo, func(src, dst topology.NodeID) *big.Int {
			return adapt.CountShortestPaths(alg, src, dst)
		}).MeanRatio
	}
	for _, key := range []uint16{
		core.WestFirstSet().Key(),
		core.NorthLastSet().Key(),
		core.NegativeFirstSet(2).Key(),
		0x07,
	} {
		want := ratio(key)
		conn := minimalConnected(topo, key)
		for _, sy := range core.Symmetries2D() {
			img := sy.PermuteKey(key)
			// The per-pair ratios are identical multisets; only the
			// floating-point accumulation order differs under relabeling.
			if got := ratio(img); got < want-1e-9 || got > want+1e-9 {
				t.Errorf("set %#02x image %#02x (%s): adaptivity %v, want %v", key, img, sy.Name(), got, want)
			}
			if minimalConnected(topo, img) != conn {
				t.Errorf("set %#02x image %#02x (%s): connectivity differs", key, img, sy.Name())
			}
		}
	}
}

// campaignFor builds a small, fast campaign over a shared screening.
func campaignFor(t *testing.T, s *Screening, dir, name string) *Campaign {
	t.Helper()
	return &Campaign{
		Screen:   s,
		Patterns: []string{"transpose"},
		Opts: exp.Options{
			Quick: true, Seed: 7,
			Loads:   []float64{0.5, 2.0},
			Warmup:  300,
			Measure: 700,
		},
		LogPath: filepath.Join(dir, name+".jsonl"),
		OutPath: filepath.Join(dir, name+".md"),
	}
}

// TestCampaignResume is the kill-and-resume contract: cancel a
// campaign after a few completed figures, rerun it against the same
// checkpoint log, and the finished leaderboard must be byte identical
// to an uninterrupted campaign's.
func TestCampaignResume(t *testing.T) {
	dir := t.TempDir()
	s := Screen(topology.NewMesh(5, 5))

	// Killed run: stop after 3 checkpointed figures.
	killed := campaignFor(t, s, dir, "resumed")
	killed.StopAfter = 3
	killed.Opts.Workers = 1
	if err := killed.Run(); err != exp.ErrCanceled {
		t.Fatalf("killed run returned %v, want exp.ErrCanceled", err)
	}
	logged, err := loadLog(killed.LogPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(logged) < killed.StopAfter {
		t.Fatalf("killed run checkpointed %d figures, want >= %d", len(logged), killed.StopAfter)
	}
	specs, err := killed.specs()
	if err != nil {
		t.Fatal(err)
	}
	if len(logged) >= len(specs) {
		t.Fatalf("killed run checkpointed all %d figures; the resume path is untested", len(specs))
	}

	// Resume: same log, no stop. Must finish the remaining figures.
	resumed := campaignFor(t, s, dir, "resumed")
	if err := resumed.Run(); err != nil {
		t.Fatalf("resumed run: %v", err)
	}

	// Reference: the same campaign uninterrupted, fresh log.
	fresh := campaignFor(t, s, dir, "fresh")
	if err := fresh.Run(); err != nil {
		t.Fatalf("fresh run: %v", err)
	}

	got, err := os.ReadFile(resumed.OutPath)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(fresh.OutPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("resumed leaderboard differs from uninterrupted run:\n--- resumed ---\n%s\n--- fresh ---\n%s", got, want)
	}
	if !strings.Contains(string(got), "| rank |") {
		t.Error("leaderboard missing the ranking table")
	}
}

// TestCampaignLogTolerance: a torn trailing line (killed mid-write)
// is skipped on load instead of poisoning the resume.
func TestCampaignLogTolerance(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "torn.jsonl")
	full := `{"cache_key":"k1","figure":"f1","set":"0x03","pattern":"uniform","points":[]}` + "\n"
	torn := `{"cache_key":"k2","figure":"f2","set":"0x05","pat`
	if err := os.WriteFile(path, []byte(full+torn), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := loadLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("loaded %d records, want 1 (torn line skipped)", len(recs))
	}
	if _, ok := recs["k1"]; !ok {
		t.Error("intact record missing")
	}
}
