package explore

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math/big"
	"os"
	"sort"
	"strconv"
	"strings"

	"turnmodel/internal/adapt"
	"turnmodel/internal/core"
	"turnmodel/internal/exp"
	"turnmodel/internal/routing"
	"turnmodel/internal/topology"
	"turnmodel/internal/traffic"
)

// CampaignLoads is the default offered-load sweep of the campaign, in
// flits/us/node, bracketing every turn set's saturation point on the
// campaign meshes.
var CampaignLoads = []float64{0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0, 2.5, 3.0}

// Campaign benchmarks every surviving symmetry-class representative of
// a screening across a workload suite, checkpointing each completed
// figure to a JSONL log keyed by exp.CacheKey. Killing the campaign
// and rerunning it resumes from the log: figures whose records are
// present are skipped, and the final leaderboard — rebuilt from the
// log alone — is byte-identical to an uninterrupted run.
type Campaign struct {
	// Screen is the screening to draw survivors from. Its mesh is also
	// the simulation mesh.
	Screen *Screening
	// Patterns names the workload suite; recognized values are
	// "uniform" and "transpose". Empty means both.
	Patterns []string
	// Opts forwards fidelity and concurrency knobs to the exp sweeps.
	// Opts.Loads empty means CampaignLoads.
	Opts exp.Options
	// LogPath is the JSONL checkpoint log, created if absent and
	// appended to on resume.
	LogPath string
	// OutPath, when non-empty, receives the rendered leaderboard after
	// every figure has a record.
	OutPath string
	// AdaptDims is the mesh for the deterministic adaptivity-degree
	// column (nil means 6x6). It is separate from the simulation mesh:
	// exhaustive path counting is exponential-ish in mesh size.
	AdaptDims []int
	// StopAfter, when positive, cancels the run after that many figures
	// have completed and been logged — the kill half of the
	// kill-and-resume contract, used by tests and demos.
	StopAfter int
	// Verbose, when non-nil, receives one line per completed figure.
	Verbose io.Writer
}

// PointRecord is one load point of a campaign record.
type PointRecord struct {
	// Offered is the applied load in flits/us/node.
	Offered float64 `json:"offered"`
	// Throughput is the measured network throughput in flits/us.
	Throughput float64 `json:"throughput"`
	// AvgLatency and LatencyP99 are message latencies in us.
	AvgLatency float64 `json:"avg_latency"`
	// LatencyP99 is the 99th-percentile message latency in us.
	LatencyP99 float64 `json:"p99"`
	// Sustainable is the paper's bounded-source-queue criterion.
	Sustainable bool `json:"sustainable"`
}

// Record is one completed figure in the campaign log: one turn-set
// representative under one traffic pattern, swept over the offered
// loads.
type Record struct {
	// CacheKey is exp.CacheKey of the figure run — the content address
	// that makes the log a resumable checkpoint.
	CacheKey string `json:"cache_key"`
	// Figure is the figure spec ID, "turnscan/<mesh>/<set>/<pattern>".
	Figure string `json:"figure"`
	// Set is the canonical key of the class, e.g. "0x12".
	Set string `json:"set"`
	// Pattern names the traffic pattern.
	Pattern string `json:"pattern"`
	// Points are the sweep measurements in offered-load order.
	Points []PointRecord `json:"points"`
}

// MaxSustainable returns the record's highest sustainable throughput
// and the p99 latency at that point. Zeros when nothing is
// sustainable.
func (r Record) MaxSustainable() (thr, p99 float64) {
	for _, p := range r.Points {
		if p.Sustainable && p.Throughput > thr {
			thr, p99 = p.Throughput, p.LatencyP99
		}
	}
	return thr, p99
}

func (c *Campaign) patterns() []string {
	if len(c.Patterns) == 0 {
		return []string{"uniform", "transpose"}
	}
	return c.Patterns
}

func patternFor(name string) (func(*topology.Topology) traffic.Pattern, error) {
	switch name {
	case "uniform":
		return func(t *topology.Topology) traffic.Pattern { return traffic.NewUniform(t) }, nil
	case "transpose":
		return func(t *topology.Topology) traffic.Pattern { return traffic.NewMeshTranspose(t) }, nil
	}
	return nil, fmt.Errorf("explore: unknown pattern %q (want uniform or transpose)", name)
}

func dimsLabel(dims []int) string {
	parts := make([]string, len(dims))
	for i, d := range dims {
		parts[i] = strconv.Itoa(d)
	}
	return strings.Join(parts, "x")
}

// specs builds one figure per (survivor, pattern), in deterministic
// order: survivors by canonical key, patterns in suite order.
func (c *Campaign) specs() ([]exp.FigureSpec, error) {
	mesh := dimsLabel(c.Screen.Dims)
	dims := append([]int(nil), c.Screen.Dims...)
	var out []exp.FigureSpec
	for _, cl := range c.Screen.Survivors() {
		canon := cl.Canon
		for _, pat := range c.patterns() {
			mk, err := patternFor(pat)
			if err != nil {
				return nil, err
			}
			out = append(out, exp.FigureSpec{
				ID:    fmt.Sprintf("turnscan/%s/0x%02x/%s", mesh, canon, pat),
				Title: fmt.Sprintf("turn set 0x%02x under %s traffic on a %s mesh", canon, pat, mesh),
				Topology: func() *topology.Topology {
					return topology.NewMesh(dims...)
				},
				Pattern: mk,
				Algs: func(t *topology.Topology) []routing.Algorithm {
					return []routing.Algorithm{
						routing.NewTurnGraphRouting(t, core.SetFromKey2D(canon), true),
					}
				},
				Loads: CampaignLoads,
			})
		}
	}
	return out, nil
}

// loadLog parses the checkpoint log into records keyed by cache key.
// A missing file is an empty checkpoint; a torn final line (the
// process died mid-write) is skipped, re-running that figure.
func loadLog(path string) (map[string]Record, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return map[string]Record{}, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]Record{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var r Record
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			continue // torn write from a killed run
		}
		out[r.CacheKey] = r
	}
	return out, sc.Err()
}

// record flattens a completed figure's sweeps (always a single
// algorithm line) into a log record.
func record(key string, f exp.FigureSpec, sweeps []exp.Sweep) Record {
	parts := strings.Split(f.ID, "/")
	r := Record{CacheKey: key, Figure: f.ID, Set: parts[2], Pattern: parts[3]}
	for _, p := range sweeps[0].Points {
		r.Points = append(r.Points, PointRecord{
			Offered:     p.Offered,
			Throughput:  p.Result.Throughput,
			AvgLatency:  p.Result.AvgLatency,
			LatencyP99:  p.Result.LatencyP99,
			Sustainable: p.Result.Sustainable,
		})
	}
	return r
}

// Run executes the campaign: self-check, resume from the log, sweep
// the missing figures, and (when every figure has a record) render the
// leaderboard. A run canceled by Opts.Cancel or StopAfter returns
// exp.ErrCanceled after checkpointing everything that completed.
func (c *Campaign) Run() error {
	if err := c.Screen.SelfCheck(); err != nil {
		return err
	}
	specs, err := c.specs()
	if err != nil {
		return err
	}
	o := c.Opts
	if len(o.Loads) == 0 {
		o.Loads = CampaignLoads
	}
	done, err := loadLog(c.LogPath)
	if err != nil {
		return err
	}
	var todo []exp.FigureSpec
	for _, f := range specs {
		if _, ok := done[exp.CacheKey(f, o)]; !ok {
			todo = append(todo, f)
		}
	}
	if c.Verbose != nil {
		fmt.Fprintf(c.Verbose, "turnscan: %d figures (%d checkpointed, %d to run)\n",
			len(specs), len(specs)-len(todo), len(todo))
	}
	if len(todo) > 0 {
		logf, err := os.OpenFile(c.LogPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer logf.Close()
		stop := make(chan struct{})
		o.Cancel = mergeCancel(c.Opts.Cancel, stop)
		completed := 0
		stopped := false
		runErr := exp.RunFigureSet(todo, o, func(f exp.FigureSpec, sweeps []exp.Sweep) {
			r := record(exp.CacheKey(f, o), f, sweeps)
			b, err := json.Marshal(r)
			if err != nil {
				panic(fmt.Sprintf("explore: record not serializable: %v", err))
			}
			if _, err := logf.Write(append(b, '\n')); err != nil && c.Verbose != nil {
				fmt.Fprintf(c.Verbose, "turnscan: checkpoint write failed: %v\n", err)
			}
			done[r.CacheKey] = r
			completed++
			if c.Verbose != nil {
				fmt.Fprintf(c.Verbose, "turnscan: %s done (%d/%d)\n", f.ID, len(specs)-len(todo)+completed, len(specs))
			}
			if c.StopAfter > 0 && completed >= c.StopAfter && !stopped {
				stopped = true
				close(stop)
			}
		})
		if runErr != nil {
			return runErr
		}
	}
	for _, f := range specs {
		if _, ok := done[exp.CacheKey(f, o)]; !ok {
			return fmt.Errorf("explore: figure %s completed without a checkpoint record", f.ID)
		}
	}
	if c.OutPath != "" {
		var buf strings.Builder
		if err := c.WriteLeaderboard(&buf, done, o); err != nil {
			return err
		}
		return os.WriteFile(c.OutPath, []byte(buf.String()), 0o644)
	}
	return nil
}

// mergeCancel returns a channel closed when either input closes.
func mergeCancel(a, b <-chan struct{}) <-chan struct{} {
	if a == nil {
		return b
	}
	out := make(chan struct{})
	go func() {
		select {
		case <-a:
		case <-b:
		}
		close(out)
	}()
	return out
}

// adaptivity computes the deterministic adaptivity-degree column: the
// mean ratio of the set's minimal shortest-path count to the fully
// adaptive count over all pairs of a small mesh.
func (c *Campaign) adaptivity(canon uint16) adapt.RatioStats {
	dims := c.AdaptDims
	if len(dims) == 0 {
		dims = []int{6, 6}
	}
	t := topology.NewMesh(dims...)
	alg := routing.NewTurnGraphRouting(t, core.SetFromKey2D(canon), true)
	return adapt.AverageRatio(t, func(src, dst topology.NodeID) *big.Int {
		return adapt.CountShortestPaths(alg, src, dst)
	})
}

// lbRow is one leaderboard line: a survivor class with its per-pattern
// saturation figures.
type lbRow struct {
	class Class
	adapt adapt.RatioStats
	// thr and p99 are indexed like the pattern suite.
	thr, p99 []float64
	total    float64
}

// WriteLeaderboard renders the ranked leaderboard from checkpoint
// records. It is a pure function of the records, the screening and the
// options, so every resume of the same campaign renders byte-identical
// output.
func (c *Campaign) WriteLeaderboard(w io.Writer, done map[string]Record, o exp.Options) error {
	specs, err := c.specs()
	if err != nil {
		return err
	}
	recOf := map[string]Record{} // figure ID -> record
	for _, f := range specs {
		r, ok := done[exp.CacheKey(f, o)]
		if !ok {
			return fmt.Errorf("explore: no checkpoint record for %s", f.ID)
		}
		recOf[f.ID] = r
	}
	pats := c.patterns()
	mesh := dimsLabel(c.Screen.Dims)
	var rows []lbRow
	for _, cl := range c.Screen.Survivors() {
		row := lbRow{class: cl, adapt: c.adaptivity(cl.Canon)}
		for _, pat := range pats {
			r := recOf[fmt.Sprintf("turnscan/%s/0x%02x/%s", mesh, cl.Canon, pat)]
			thr, p99 := r.MaxSustainable()
			row.thr = append(row.thr, thr)
			row.p99 = append(row.p99, p99)
			row.total += thr
		}
		rows = append(rows, row)
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].total != rows[j].total {
			return rows[i].total > rows[j].total
		}
		return rows[i].class.Canon < rows[j].class.Canon
	})

	cnt := c.Screen.Counts()
	fmt.Fprintf(w, "# turnscan: exhaustive 2D turn-set exploration\n\n")
	fmt.Fprintf(w, "Mesh %s, seed %d, quick=%v, loads %v (flits/us/node).\n\n", mesh, o.Seed, o.Quick, o.Loads)
	fmt.Fprintf(w, "Screening: %d turn sets fold into %d symmetry classes; %d deadlock-free sets\n",
		cnt.Sets, cnt.Classes, cnt.FreeSets)
	fmt.Fprintf(w, "fold into %d classes (%.1fx symmetry dedup); %d of those are connected under\n",
		cnt.FreeClasses, cnt.DedupRatio(), cnt.Survivors)
	fmt.Fprintf(w, "the minimal relation and were simulated.\n\n")
	fmt.Fprintf(w, "Self-check: 12 of the 16 one-turn-per-cycle prohibitions are deadlock free,\n")
	fmt.Fprintf(w, "folding into 3 classes (west-first, north-last, negative-first) — matches the paper.\n\n")
	fmt.Fprintf(w, "Throughput is the highest sustainable measured throughput (flits/us); p99 is\n")
	fmt.Fprintf(w, "the 99th-percentile message latency (us) at that point. Adaptivity is the mean\n")
	fmt.Fprintf(w, "S_p/S_f shortest-path ratio on a %s mesh.\n\n", dimsLabel(func() []int {
		if len(c.AdaptDims) > 0 {
			return c.AdaptDims
		}
		return []int{6, 6}
	}()))
	fmt.Fprintf(w, "| rank | set | family | class size | turns allowed | adaptivity |")
	for _, pat := range pats {
		fmt.Fprintf(w, " %s thr | %s p99 |", pat, pat)
	}
	fmt.Fprintf(w, "\n|---|---|---|---|---|---|")
	for range pats {
		fmt.Fprintf(w, "---|---|")
	}
	fmt.Fprintf(w, "\n")
	for i, row := range rows {
		name := row.class.Name
		if name == "" {
			name = "-"
		}
		fmt.Fprintf(w, "| %d | 0x%02x | %s | %d | %d | %.3f |",
			i+1, row.class.Canon, name, len(row.class.Members),
			core.SetFromKey2D(row.class.Canon).NumAllowed(), row.adapt.MeanRatio)
		for k := range pats {
			fmt.Fprintf(w, " %.3f | %.2f |", row.thr[k], row.p99[k])
		}
		fmt.Fprintf(w, "\n")
	}
	fmt.Fprintf(w, "\nEvery raw set maps to its class representative via the witness table\n")
	fmt.Fprintf(w, "(core.CanonicalKey2D); a symmetric workload's figures for any raw set are the\n")
	fmt.Fprintf(w, "representative's figures. The JSONL log next to this file is the campaign's\n")
	fmt.Fprintf(w, "checkpoint: rerunning turnscan resumes from it and reproduces this file\n")
	fmt.Fprintf(w, "byte for byte.\n")
	return nil
}
