// Package explore exhaustively explores the 2D turn-set design space:
// it enumerates all 256 subsets of the eight 90-degree turns, folds
// them into symmetry classes under the mesh isometry group, screens
// every class for deadlock freedom with an incrementally maintained
// channel dependency graph, and benchmarks the surviving
// representatives through the exp sweep machinery with a streamed,
// resumable checkpoint log. The cmd/turnscan binary is a thin wrapper.
package explore

import (
	"fmt"
	"sort"

	"turnmodel/internal/core"
	"turnmodel/internal/deadlock"
	"turnmodel/internal/routing"
	"turnmodel/internal/topology"
)

// Class is one symmetry class of 2D turn sets: the sets reachable from
// one another by rotating or reflecting the mesh. All members share
// every structural property, so the class is screened once through its
// canonical representative.
type Class struct {
	// Canon is the representative key (core.CanonicalKey2D of every
	// member).
	Canon uint16
	// Members lists the raw keys of the class in ascending order,
	// including Canon itself.
	Members []uint16
	// DeadlockFree reports that the class's destination-free turn CDG
	// is acyclic on the screening mesh.
	DeadlockFree bool
	// Connected reports that the minimal turn-graph relation of the
	// representative delivers between every ordered pair of the
	// screening mesh's nodes. Deadlock-free but disconnected classes
	// (e.g. the all-prohibited set) are screened out of simulation.
	Connected bool
	// Name labels the classes of the paper's named algorithms
	// (west-first, north-last, negative-first, dimension-order,
	// fully-adaptive); empty otherwise.
	Name string
}

// Screening is the result of exhaustively screening the 2D design
// space on one mesh.
type Screening struct {
	// Dims are the screening mesh's dimensions.
	Dims []int
	// DeadlockFree[key] is the per-set verdict for all 256 raw keys.
	DeadlockFree [core.NumSets2D]bool
	// Canon[key] maps every raw key to its class representative, the
	// witness that key was covered by screening Canon[key] once.
	Canon [core.NumSets2D]uint16
	// Classes lists the symmetry classes in ascending canonical-key
	// order.
	Classes []Class
}

// namedClasses labels the canonical keys of the paper's named sets.
func namedClasses() map[uint16]string {
	return map[uint16]string{
		core.CanonicalKey2D(core.FullyAdaptiveSet(2).Key()):  "fully-adaptive",
		core.CanonicalKey2D(core.WestFirstSet().Key()):       "west-first",
		core.CanonicalKey2D(core.NorthLastSet().Key()):       "north-last",
		core.CanonicalKey2D(core.NegativeFirstSet(2).Key()):  "negative-first",
		core.CanonicalKey2D(core.DimensionOrderSet(2).Key()): "dimension-order",
	}
}

// Screen screens all 256 turn sets on t. The per-set verdicts come
// from one Gray-code walk over the design space — consecutive sets
// differ by a single turn, so each step is one incremental CDG delta
// (deadlock.IncrementalTurn) instead of a rebuild. Connectivity is
// then checked once per class representative.
func Screen(t *topology.Topology) *Screening {
	if t.NumDims() != 2 {
		panic(fmt.Sprintf("explore: 2D design space needs a 2D mesh, got %d dims", t.NumDims()))
	}
	s := &Screening{Dims: t.Dims()}
	turns := core.AllTurns(2)
	ic := deadlock.NewIncrementalTurn(t, core.SetFromKey2D(core.GrayKey2D(0)))
	prev := core.GrayKey2D(0)
	s.DeadlockFree[prev] = ic.Acyclic()
	for i := 1; i < core.NumSets2D; i++ {
		key := core.GrayKey2D(i)
		bit := 0
		for (key^prev)>>uint(bit) != 1 {
			bit++
		}
		ic.SetAllowed(turns[bit], key&(1<<uint(bit)) == 0)
		s.DeadlockFree[key] = ic.Acyclic()
		prev = key
	}

	members := map[uint16][]uint16{}
	for key := 0; key < core.NumSets2D; key++ {
		canon := core.CanonicalKey2D(uint16(key))
		s.Canon[key] = canon
		members[canon] = append(members[canon], uint16(key))
	}
	names := namedClasses()
	canons := make([]uint16, 0, len(members))
	for canon := range members {
		canons = append(canons, canon)
	}
	sort.Slice(canons, func(i, j int) bool { return canons[i] < canons[j] })
	for _, canon := range canons {
		ms := members[canon]
		sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
		c := Class{
			Canon:        canon,
			Members:      ms,
			DeadlockFree: s.DeadlockFree[canon],
			Name:         names[canon],
		}
		if c.DeadlockFree {
			c.Connected = minimalConnected(t, canon)
		}
		s.Classes = append(s.Classes, c)
	}
	return s
}

// minimalConnected reports whether the minimal turn-graph relation of
// key delivers between every ordered pair of t's nodes.
func minimalConnected(t *topology.Topology, key uint16) bool {
	alg := routing.NewTurnGraphRouting(t, core.SetFromKey2D(key), true)
	n := topology.NodeID(t.Nodes())
	for src := topology.NodeID(0); src < n; src++ {
		for dst := topology.NodeID(0); dst < n; dst++ {
			if src != dst && !alg.CanRoute(src, dst) {
				return false
			}
		}
	}
	return true
}

// Survivors returns the classes worth simulating: deadlock free and
// connected under the minimal relation, in canonical-key order.
func (s *Screening) Survivors() []Class {
	var out []Class
	for _, c := range s.Classes {
		if c.DeadlockFree && c.Connected {
			out = append(out, c)
		}
	}
	return out
}

// Counts summarizes a screening for reports and smoke checks.
type Counts struct {
	// Sets and Classes are the design-space totals (256 and the orbit
	// count of the symmetry group).
	Sets, Classes int
	// FreeSets and FreeClasses count the deadlock-free raw sets and
	// symmetry classes.
	FreeSets, FreeClasses int
	// Survivors counts the deadlock-free classes that are also
	// connected under the minimal relation.
	Survivors int
}

// DedupRatio is the symmetry saving on the deadlock-free frontier: raw
// deadlock-free sets per deadlock-free class.
func (c Counts) DedupRatio() float64 { return float64(c.FreeSets) / float64(c.FreeClasses) }

// Counts tallies the screening.
func (s *Screening) Counts() Counts {
	c := Counts{Sets: core.NumSets2D, Classes: len(s.Classes)}
	for _, v := range s.DeadlockFree {
		if v {
			c.FreeSets++
		}
	}
	for _, cl := range s.Classes {
		if cl.DeadlockFree {
			c.FreeClasses++
			if cl.Connected {
				c.Survivors++
			}
		}
	}
	return c
}

// SelfCheck verifies the screening against the paper's Section 3
// ground truth before anything expensive runs: of the 16 ways to
// prohibit one turn from each abstract cycle, exactly 12 are deadlock
// free, and the 12 fold into exactly 3 symmetry classes (west-first,
// north-last, negative-first). A mismatch voids the whole screening.
func (s *Screening) SelfCheck() error {
	pairs := core.OneTurnPerCyclePairs2D()
	if len(pairs) != 16 {
		return fmt.Errorf("explore: %d one-turn-per-cycle sets, want 16", len(pairs))
	}
	free := 0
	classes := map[uint16]bool{}
	for _, set := range pairs {
		if s.DeadlockFree[set.Key()] {
			free++
			classes[s.Canon[set.Key()]] = true
		}
	}
	if free != 12 {
		return fmt.Errorf("explore: %d of 16 one-turn-per-cycle sets deadlock free, paper says 12", free)
	}
	if len(classes) != 3 {
		return fmt.Errorf("explore: 12 deadlock-free pair sets fold into %d classes, paper says 3", len(classes))
	}
	for canon := range classes {
		switch s.Classes[classIndex(s.Classes, canon)].Name {
		case "west-first", "north-last", "negative-first":
		default:
			return fmt.Errorf("explore: pair-set class %#02x is not a named family", canon)
		}
	}
	return nil
}

// classIndex locates canon in the sorted class list.
func classIndex(classes []Class, canon uint16) int {
	i := sort.Search(len(classes), func(i int) bool { return classes[i].Canon >= canon })
	if i == len(classes) || classes[i].Canon != canon {
		panic(fmt.Sprintf("explore: class %#02x not found", canon))
	}
	return i
}
