package analytic

import (
	"math"
	"testing"

	"turnmodel/internal/routing"
	"turnmodel/internal/sim"
	"turnmodel/internal/topology"
	"turnmodel/internal/traffic"
)

func TestBisectionChannels(t *testing.T) {
	cases := []struct {
		topo *topology.Topology
		want int
	}{
		// 16x16 mesh: 16 channel pairs cross the vertical cut.
		{topology.NewMesh(16, 16), 32},
		// 8-ary 2-cube: wraparounds double it.
		{topology.NewTorus(8, 2), 32},
		// Binary 8-cube: 2^(n-1) pairs.
		{topology.NewHypercube(8), 256},
		{topology.NewMesh(4, 8), 8}, // cut the length-8 dimension: 4 pairs
	}
	for _, c := range cases {
		if got := BisectionChannels(c.topo); got != c.want {
			t.Errorf("%v: bisection %d, want %d", c.topo, got, c.want)
		}
	}
}

func TestZeroLoadLatency(t *testing.T) {
	if got := ZeroLoadLatencyCycles(sim.Wormhole, 10, 100); got != 110 {
		t.Errorf("wormhole zero-load = %v, want 110", got)
	}
	if got := ZeroLoadLatencyCycles(sim.VirtualCutThrough, 10, 100); got != 110 {
		t.Errorf("vct zero-load = %v", got)
	}
	if got := ZeroLoadLatencyCycles(sim.StoreAndForward, 10, 100); got != 1100 {
		t.Errorf("saf zero-load = %v, want 1100", got)
	}
}

// TestUniformChannelLoadsDOR: the classic result for dimension-order
// routing on a k x k mesh under uniform traffic: the busiest channels
// are the central ones with load about k/4 (exactly k^2/(4(k-1)) per
// generated flit... verified against the direct computation).
func TestUniformChannelLoadsDOR(t *testing.T) {
	k := 8
	topo := topology.NewMesh(k, k)
	loads := UniformChannelLoads(routing.NewDimensionOrder(topo))
	maxLoad, ch := MaxLoad(topo, loads)
	// The busiest x-channel crosses the vertical center cut: flits from
	// the k/2 columns on one side to the k/2 on the other, divided by
	// the k rows... the closed form for the center channel of one row:
	// (k/2)*(k/2)/(k-1) per source... just sanity-bound it.
	if maxLoad < float64(k)/4/1.2 || maxLoad > float64(k)/2 {
		t.Errorf("max load %.3f out of the expected k/4-ish range", maxLoad)
	}
	// DOR's busiest channels are x channels (dimension 0).
	if ch.Dir.Dim != 0 {
		t.Errorf("busiest DOR channel should be in x, got %v", ch)
	}
	// Flow conservation: the loads sum to nodes * average path length
	// (every node's unit flit contributes one traversal per hop).
	var total float64
	for _, l := range loads {
		total += l
	}
	wantHops := float64(topo.Nodes()) * traffic.AverageUniformPathLength(topo)
	if math.Abs(total-wantHops) > 1e-6 {
		t.Errorf("total load %.4f != nodes*avg hops %.4f", total, wantHops)
	}
}

// TestFlowConservationAdaptive: the even-split flow of adaptive
// relations also sums to the average path length.
func TestFlowConservationAdaptive(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	for _, alg := range []routing.Algorithm{
		routing.NewWestFirst(topo),
		routing.NewNegativeFirst(topo),
		routing.NewFullyAdaptive(topo),
	} {
		loads := UniformChannelLoads(alg)
		var total float64
		for _, l := range loads {
			total += l
		}
		want := float64(topo.Nodes()) * traffic.AverageUniformPathLength(topo)
		if math.Abs(total-want) > 1e-6 {
			t.Errorf("%s: total load %.4f != nodes*avg hops %.4f", alg.Name(), total, want)
		}
	}
}

// TestTransposeLoads: under the paper's transpose pattern, xy's busiest
// channel is far more loaded than negative-first's — the analytic
// explanation of Figure 14.
func TestTransposeLoads(t *testing.T) {
	topo := topology.NewMesh(16, 16)
	pat := traffic.NewMeshTranspose(topo)
	xyMax, _ := MaxLoad(topo, ChannelLoads(routing.NewDimensionOrder(topo), pat))
	nfMax, _ := MaxLoad(topo, ChannelLoads(routing.NewNegativeFirst(topo), pat))
	if nfMax >= xyMax {
		t.Errorf("negative-first max load %.3f should be below xy's %.3f", nfMax, xyMax)
	}
	if xyMax/nfMax < 1.5 {
		t.Errorf("xy should be at least 1.5x more loaded on transpose: %.3f vs %.3f", xyMax, nfMax)
	}
	// The saturation bounds order accordingly.
	if SaturationBound(nfMax) <= SaturationBound(xyMax) {
		t.Error("saturation bounds should favor negative-first")
	}
}

// TestSaturationBoundVsSimulation: measured sustainable throughput stays
// below the channel-load bound (it is an upper bound) yet within a
// wormhole-typical factor of it.
func TestSaturationBoundVsSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	topo := topology.NewMesh(16, 16)
	alg := routing.NewDimensionOrder(topo)
	bound := SaturationBound(func() float64 {
		m, _ := MaxLoad(topo, UniformChannelLoads(alg))
		return m
	}())
	// Find the measured sustainable edge with a short sweep.
	var best float64
	for _, load := range []float64{0.5, 1.0, 1.5, 2.0, 2.5, 3.0} {
		res, err := sim.Run(sim.Config{
			Algorithm: alg, Pattern: traffic.NewUniform(topo),
			OfferedLoad: load, WarmupCycles: 3000, MeasureCycles: 10000, Seed: 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Sustainable {
			best = load
		}
	}
	if best > bound*1.1 {
		t.Errorf("measured sustainable %.2f exceeds the analytic bound %.2f", best, bound)
	}
	if best < bound*0.2 {
		t.Errorf("measured sustainable %.2f implausibly far below the bound %.2f", best, bound)
	}
}

// TestBisectionBound: for uniform traffic on the paper's mesh the
// bisection bound lands near the classic 2*B*Bc/N.
func TestBisectionBound(t *testing.T) {
	topo := topology.NewMesh(16, 16)
	got := BisectionBound(topo, 0.5)
	// 32 channels * 20 flits/us / 0.5 / 256 nodes = 5 flits/us/node.
	if math.Abs(got-5.0) > 1e-9 {
		t.Errorf("bisection bound = %v, want 5.0", got)
	}
	if !math.IsInf(BisectionBound(topo, 0), 1) {
		t.Error("zero crossing fraction should give an unbounded rate")
	}
}

// TestSummarize reproduces the Section 1 comparison directionally:
// the hypercube has a lower diameter and more bisection channels; the
// mesh has fewer channels per node.
func TestSummarize(t *testing.T) {
	mesh := Summarize(topology.NewMesh(16, 16))
	cube := Summarize(topology.NewHypercube(8))
	if mesh.Nodes != 256 || cube.Nodes != 256 {
		t.Fatal("both have 256 nodes")
	}
	if cube.Diameter >= mesh.Diameter {
		t.Errorf("hypercube diameter %d should be below mesh %d", cube.Diameter, mesh.Diameter)
	}
	if cube.BisectionChannels <= mesh.BisectionChannels {
		t.Error("hypercube should have the larger bisection")
	}
	if cube.Channels <= mesh.Channels {
		t.Error("hypercube has more channels")
	}
	if mesh.String() == "" || cube.String() == "" {
		t.Error("empty summaries")
	}
	torus := Summarize(topology.NewTorus(16, 2))
	if torus.Diameter != 16 {
		t.Errorf("16-ary 2-cube diameter = %d, want 16", torus.Diameter)
	}
}

// TestChannelLoadsPanicsOnStochastic.
func TestChannelLoadsPanicsOnStochastic(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	ChannelLoads(routing.NewDimensionOrder(topo), traffic.NewUniform(topo))
}

// TestMeasuredHotChannelMatchesAnalytic: the simulator's measured
// hottest channel under the transpose pattern carries the load the flow
// analysis predicts is maximal (same dimension class and a matching
// utilization ordering across algorithms).
func TestMeasuredHotChannelMatchesAnalytic(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	topo := topology.NewMesh(16, 16)
	pat := traffic.NewMeshTranspose(topo)
	type obs struct {
		name                string
		analyticMax         float64
		measuredUtilization float64
	}
	var results []obs
	for _, alg := range []routing.Algorithm{routing.NewDimensionOrder(topo), routing.NewNegativeFirst(topo)} {
		maxLoad, _ := MaxLoad(topo, ChannelLoads(alg, pat))
		res, err := sim.Run(sim.Config{
			Algorithm: alg, Pattern: pat,
			OfferedLoad: 1.0, WarmupCycles: 2000, MeasureCycles: 8000, Seed: 71,
		})
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, obs{alg.Name(), maxLoad, res.MaxChannelUtilization})
	}
	// xy's analytic max load is much higher than negative-first's, and
	// the measured utilizations must order the same way.
	if results[0].analyticMax <= results[1].analyticMax {
		t.Fatalf("analytic loads out of order: %+v", results)
	}
	if results[0].measuredUtilization <= results[1].measuredUtilization {
		t.Errorf("measured utilizations should match the analytic ordering: %+v", results)
	}
	// At equal offered load, measured utilization scales with analytic
	// load: the ratio of utilizations should be within 2x of the ratio
	// of loads (slack for blocking effects).
	loadRatio := results[0].analyticMax / results[1].analyticMax
	utilRatio := results[0].measuredUtilization / results[1].measuredUtilization
	if utilRatio < loadRatio/2 || utilRatio > loadRatio*2 {
		t.Errorf("utilization ratio %.2f too far from analytic load ratio %.2f", utilRatio, loadRatio)
	}
}
