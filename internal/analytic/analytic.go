// Package analytic provides closed-form and flow-based performance
// analysis of the studied networks, after Dally's k-ary n-cube analysis
// (the paper's reference [8], which Section 1's low-dimension arguments
// — "fewer channels and higher channel bandwidth per bisection density"
// — lean on): channel counts, bisection widths, zero-load latencies, and
// channel-load saturation bounds for any routing relation and traffic
// pattern. The simulator tests validate measured saturation against
// these bounds.
package analytic

import (
	"fmt"
	"math"

	"turnmodel/internal/routing"
	"turnmodel/internal/sim"
	"turnmodel/internal/topology"
	"turnmodel/internal/traffic"
)

// BisectionChannels returns the number of unidirectional network
// channels crossing a minimal bisection of the topology (both
// directions counted), cutting the longest dimension in half.
func BisectionChannels(t *topology.Topology) int {
	dims := t.Dims()
	// Cut the largest dimension; the cross-section is the product of the
	// other dimensions.
	cut, cross := 0, 1
	for i, k := range dims {
		if k > dims[cut] {
			cut = i
		}
	}
	for i, k := range dims {
		if i != cut {
			cross *= k
		}
	}
	pairs := cross // one channel pair per cross-section node
	if t.Kind() == topology.KindTorus && dims[cut] > 2 {
		pairs *= 2 // the wraparound channels also cross the cut
	}
	return 2 * pairs
}

// ZeroLoadLatencyCycles returns the uncontended latency in cycles of an
// length-flit packet travelling hops channels under the given switching
// technique: hops + length for wormhole and virtual cut-through,
// approximately hops*length for store-and-forward (the introduction's
// comparison).
func ZeroLoadLatencyCycles(sw sim.Switching, hops, length int) float64 {
	if sw == sim.StoreAndForward {
		return float64((hops + 1) * length)
	}
	return float64(hops + length)
}

// BisectionBound returns an upper bound on sustainable throughput in
// flits/us/node under a traffic pattern, from bisection bandwidth: no
// more traffic can cross the bisection than its channels carry.
// crossFraction is the fraction of traffic crossing the bisection
// (about 1/2 for uniform traffic).
func BisectionBound(t *topology.Topology, crossFraction float64) float64 {
	if crossFraction <= 0 {
		return math.Inf(1)
	}
	bisectionFlits := float64(BisectionChannels(t)) * sim.CyclesPerMicrosecond
	return bisectionFlits / crossFraction / float64(t.Nodes())
}

// ChannelLoads computes each channel's expected traversal rate when
// every traffic-generating node injects one flit: with per-node
// injection rate lambda, channel c carries lambda*loads[c] flits per
// unit time. Flow splits evenly among a relation's candidates at each
// hop (the idealization of adaptive selection; exact for deterministic
// relations). The result is indexed by dense channel ID.
//
// Only minimal relations make sense here: flow conservation requires
// routes to terminate, which the per-hop distance decrease guarantees.
func ChannelLoads(alg routing.Algorithm, pat traffic.Pattern) []float64 {
	if !pat.Deterministic() {
		panic("analytic: ChannelLoads requires a deterministic pattern; use UniformChannelLoads")
	}
	t := alg.Topology()
	loads := make([]float64, t.NumChannelIDs())
	for src := topology.NodeID(0); src < topology.NodeID(t.Nodes()); src++ {
		dst := pat.Dest(src, nil)
		if dst == src {
			continue
		}
		addFlow(alg, src, dst, 1, loads)
	}
	return loads
}

// UniformChannelLoads is ChannelLoads for the uniform pattern: each
// node's unit injection spreads evenly over the other destinations.
func UniformChannelLoads(alg routing.Algorithm) []float64 {
	t := alg.Topology()
	loads := make([]float64, t.NumChannelIDs())
	n := t.Nodes()
	w := 1.0 / float64(n-1)
	for src := topology.NodeID(0); src < topology.NodeID(n); src++ {
		for dst := topology.NodeID(0); dst < topology.NodeID(n); dst++ {
			if src != dst {
				addFlow(alg, src, dst, w, loads)
			}
		}
	}
	return loads
}

// addFlow routes `flow` units from src to dst through the relation,
// splitting evenly at every node among the minimal candidates, and
// accumulates per-channel flow. Flow at a (node, inDir) state is pooled
// per node: candidates of phase algorithms here do not depend on the
// input port, and turn-derived relations are handled conservatively by
// pooling (the split approximates the adaptive selection anyway).
func addFlow(alg routing.Algorithm, src, dst topology.NodeID, flow float64, loads []float64) {
	t := alg.Topology()
	// Process nodes in decreasing distance from dst so each node's
	// accumulated inflow is final before it is distributed.
	pending := map[topology.NodeID]float64{src: flow}
	// A simple worklist ordered by distance: collect nodes by distance
	// level.
	maxD := t.Distance(src, dst)
	levels := make([]map[topology.NodeID]float64, maxD+1)
	levels[maxD] = pending
	for d := maxD; d > 0; d-- {
		for node, f := range levels[d] {
			cands := routing.CandidateList(alg, node, dst, routing.Injected)
			// Keep minimal candidates only.
			var minimal []topology.Direction
			for _, dir := range cands {
				if next, ok := t.Neighbor(node, dir); ok && t.Distance(next, dst) == d-1 {
					minimal = append(minimal, dir)
				}
			}
			if len(minimal) == 0 {
				continue // stranded flow (e.g. faults); drop it
			}
			share := f / float64(len(minimal))
			for _, dir := range minimal {
				ch := topology.Channel{From: node, Dir: dir}
				loads[t.ChannelID(ch)] += share
				next := t.ChannelTo(ch)
				if next == dst {
					continue
				}
				if levels[d-1] == nil {
					levels[d-1] = make(map[topology.NodeID]float64)
				}
				levels[d-1][next] += share
			}
		}
	}
}

// MaxLoad returns the largest channel load and the channel carrying it.
func MaxLoad(t *topology.Topology, loads []float64) (float64, topology.Channel) {
	best, bestID := 0.0, 0
	for id, l := range loads {
		if l > best {
			best, bestID = l, id
		}
	}
	return best, t.ChannelFromID(bestID)
}

// SaturationBound converts a maximum channel load into an upper bound on
// sustainable injection in flits/us/node: the busiest channel cannot
// carry more than the channel bandwidth.
func SaturationBound(maxLoad float64) float64 {
	if maxLoad <= 0 {
		return math.Inf(1)
	}
	return sim.CyclesPerMicrosecond / maxLoad
}

// Summary describes a topology's static figures of merit (the Section 1
// comparison between low- and high-dimensional networks).
type Summary struct {
	Nodes             int
	Channels          int
	BisectionChannels int
	AvgMinimalHops    float64
	Diameter          int
}

// Summarize computes a topology's Summary.
func Summarize(t *topology.Topology) Summary {
	diameter := 0
	for dim, k := range t.Dims() {
		span := k - 1
		if t.Kind() == topology.KindTorus && k > 2 {
			span = k / 2
		}
		_ = dim
		diameter += span
	}
	return Summary{
		Nodes:             t.Nodes(),
		Channels:          t.NumChannels(),
		BisectionChannels: BisectionChannels(t),
		AvgMinimalHops:    traffic.AverageUniformPathLength(t),
		Diameter:          diameter,
	}
}

func (s Summary) String() string {
	return fmt.Sprintf("nodes=%d channels=%d bisection=%d avg-hops=%.2f diameter=%d",
		s.Nodes, s.Channels, s.BisectionChannels, s.AvgMinimalHops, s.Diameter)
}
