// Package prof wires the standard runtime/pprof CPU and heap profilers
// into the command-line tools, without pulling in net/http/pprof.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins a CPU profile to path and returns a stop function. With
// an empty path it is a no-op returning a no-op stop. Callers must run
// the stop function before exiting (and before writing a heap profile).
func Start(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("prof: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("prof: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeap writes an allocation profile to path after a final GC, so
// the numbers reflect live steady-state memory. With an empty path it
// is a no-op.
func WriteHeap(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("prof: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("prof: %w", err)
	}
	return nil
}
