package routing

import (
	"strings"
	"testing"

	"turnmodel/internal/core"
	"turnmodel/internal/topology"
)

func TestRenderPathGrid(t *testing.T) {
	topo := topology.NewMesh(4, 3)
	alg := NewWestFirst(topo)
	path, err := Walk(alg, topo.ID(topology.Coord{3, 0}), topo.ID(topology.Coord{0, 2}), nil)
	if err != nil {
		t.Fatal(err)
	}
	got := RenderPathGrid(topo, path)
	// West-first: all west first along y=0, then north at x=0. North is
	// up: row 0 is y=2.
	want := "" +
		"D . . .\n" +
		"^ . . .\n" +
		"^ < < S\n"
	if got != want {
		t.Errorf("grid mismatch:\n%s\nwant:\n%s", got, want)
	}
}

func TestRenderPathGridSingleNode(t *testing.T) {
	topo := topology.NewMesh(3, 3)
	got := RenderPathGrid(topo, []topology.NodeID{topo.ID(topology.Coord{1, 1})})
	if !strings.Contains(got, "D") {
		t.Errorf("single-node path should still mark the node:\n%s", got)
	}
	if RenderPathGrid(topo, nil) != "" {
		t.Error("empty path should render empty")
	}
}

func TestRenderPathGridTorusWrap(t *testing.T) {
	topo := topology.NewTorus(5, 2)
	alg := NewWrapFirstHop(NewNegativeFirst(topo))
	path, err := Walk(alg, topo.ID(topology.Coord{4, 0}), topo.ID(topology.Coord{0, 0}), GreedySelector(topo))
	if err != nil {
		t.Fatal(err)
	}
	got := RenderPathGrid(topo, path)
	// The single wraparound hop renders as an eastward departure.
	if !strings.Contains(got, "S") || !strings.Contains(got, "D") {
		t.Errorf("missing endpoints:\n%s", got)
	}
	rows := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if !strings.Contains(rows[len(rows)-1], "S") || !strings.Contains(rows[len(rows)-1], "D") {
		t.Errorf("endpoints should be on the y=0 (bottom) row:\n%s", got)
	}
	// The 1-hop wraparound leaves no intermediate arrows.
	if len(path)-1 != 1 {
		t.Errorf("expected the single wraparound hop, got %d hops", len(path)-1)
	}
}

func TestRenderPathGridPanicsOn3D(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	RenderPathGrid(topology.NewMesh(3, 3, 3), nil)
}

func TestRenderTurns(t *testing.T) {
	set := core.WestFirstSet()
	out := RenderTurns(func(from, to topology.Direction) bool {
		return set.Allowed(core.Turn{From: from, To: to})
	})
	if strings.Count(out, "PROHIBITED") != 2 {
		t.Errorf("west-first should prohibit exactly 2 turns:\n%s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "PROHIBITED") && !strings.Contains(line, "-> west") {
			t.Errorf("prohibited turn should be a turn to the west: %q", line)
		}
	}
	if strings.Count(out, "allowed") != 6 {
		t.Errorf("six turns should be allowed:\n%s", out)
	}
}
