package routing

import (
	"fmt"
	"sync"

	"turnmodel/internal/core"
	"turnmodel/internal/topology"
)

// TurnGraphRouting is the routing relation derived from an arbitrary
// turn set, the general construction of the turn model (Section 2,
// Steps 1-6): a packet that arrived travelling direction a may leave in
// direction b exactly when the turn a->b is allowed by the set, the
// channel exists and is not faulty, and the destination remains
// reachable afterward without ever needing a prohibited turn.
//
// In minimal mode only shortest-path moves are offered; in nonminimal
// mode any move that keeps the destination reachable is offered, which
// is more adaptive and fault tolerant (Section 2). Reachability is
// computed over the turn graph — nodes paired with arrival directions —
// and honors disabled channels, so the relation routes around faults
// when the turn set permits.
type TurnGraphRouting struct {
	base
	set     *core.Set
	minimal bool

	mu sync.Mutex
	// reach[dst] maps arrival states to reachability of dst. States are
	// indexed node*(2n+1) + dirIndex, with dirIndex 2n meaning "injected".
	reach map[topology.NodeID][]bool
	// reachEpoch is the topology fault epoch the cache was built at;
	// fault changes invalidate the cache.
	reachEpoch int
}

// NewTurnGraphRouting returns the routing relation induced by set on
// mesh (or torus) t. The set's dimensionality must match the topology's.
func NewTurnGraphRouting(t *topology.Topology, set *core.Set, minimal bool) *TurnGraphRouting {
	if set.Dims() != t.NumDims() {
		panic(fmt.Sprintf("routing: turn set has %d dims, topology has %d", set.Dims(), t.NumDims()))
	}
	mode := "nonminimal"
	if minimal {
		mode = "minimal"
	}
	return &TurnGraphRouting{
		base:    base{topo: t, name: fmt.Sprintf("turns(%s,%s)", set.Name(), mode)},
		set:     set,
		minimal: minimal,
		reach:   make(map[topology.NodeID][]bool),
	}
}

// Set returns the turn set defining the relation.
func (a *TurnGraphRouting) Set() *core.Set { return a.set }

// Minimal reports whether the relation is restricted to shortest paths.
func (a *TurnGraphRouting) Minimal() bool { return a.minimal }

func (a *TurnGraphRouting) stateIndex(node topology.NodeID, in InPort) int {
	w := 2*a.topo.NumDims() + 1
	if in.Injected {
		return int(node)*w + w - 1
	}
	return int(node)*w + in.Dir.Index()
}

// reachable reports whether a packet at cur that arrived via in can
// still reach dst using only allowed turns over enabled channels
// (and, in minimal mode, only shortest-path moves).
func (a *TurnGraphRouting) reachable(dst topology.NodeID) []bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if e := a.topo.FaultEpoch(); e != a.reachEpoch {
		a.reach = make(map[topology.NodeID][]bool)
		a.reachEpoch = e
	}
	if r, ok := a.reach[dst]; ok {
		return r
	}
	r := a.compute(dst)
	a.reach[dst] = r
	return r
}

// compute runs a reverse traversal from dst over the state graph
// (node, arrival direction). State (v, d) can reach dst if v == dst, or
// some allowed move from (v, d) leads to a state that can.
//
// In nonminimal mode the state graph may contain cycles, so a reverse
// BFS from the accepting states is used. In minimal mode moves strictly
// decrease the distance to dst, so the same traversal terminates
// trivially.
func (a *TurnGraphRouting) compute(dst topology.NodeID) []bool {
	t := a.topo
	w := 2*t.NumDims() + 1
	r := make([]bool, t.Nodes()*w)
	// Accepting states: any arrival state at dst.
	queue := make([]int, 0, w)
	for i := 0; i < w; i++ {
		r[int(dst)*w+i] = true
	}
	// Reverse edges: state (u, d_in) -> (v, d) where v = u + move d.
	// We search backward: seed with dst states and propagate to
	// predecessors. Predecessor of (v, d): any (u, d_in) with
	// neighbor(u, d) == v, turn d_in->d allowed (or u injected), channel
	// (u, d) enabled, and in minimal mode distance(u) == distance(v)+1.
	for i := 0; i < w; i++ {
		queue = append(queue, int(dst)*w+i)
	}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		v := topology.NodeID(s / w)
		di := s % w
		if di == w-1 {
			continue // injected states have no incoming moves
		}
		d := topology.DirectionFromIndex(di)
		// The packet arrived at v travelling d, so it came from the
		// neighbor of v in the opposite direction... except across
		// wraparounds, where Neighbor handles the modular arithmetic.
		u, ok := t.Neighbor(v, d.Opposite())
		if !ok {
			continue
		}
		ch := topology.Channel{From: u, Dir: d}
		// Careful with tori: the channel from u travelling d must lead
		// to v. On a two-node ring both directions lead to the same
		// neighbor and this holds automatically.
		if !t.Enabled(ch) || t.ChannelTo(ch) != v {
			continue
		}
		if a.minimal && t.Distance(u, dst) != t.Distance(v, dst)+1 {
			continue
		}
		for pi := 0; pi < w; pi++ {
			ps := int(u)*w + pi
			if r[ps] {
				continue
			}
			if pi < w-1 {
				in := topology.DirectionFromIndex(pi)
				if !a.set.Allowed(core.Turn{From: in, To: d}) {
					continue
				}
			}
			r[ps] = true
			queue = append(queue, ps)
		}
	}
	return r
}

// CanRoute reports whether the relation can deliver a packet injected at
// src to dst at all. A turn set that breaks connectivity (possible for
// prohibitions beyond one per cycle, or for the deadlocking reverse
// pairs in minimal mode) yields false for some pairs.
func (a *TurnGraphRouting) CanRoute(src, dst topology.NodeID) bool {
	if src == dst {
		return true
	}
	return a.reachable(dst)[a.stateIndex(src, Injected)]
}

// Candidates implements Algorithm.
func (a *TurnGraphRouting) Candidates(cur, dst topology.NodeID, in InPort, buf []topology.Direction) []topology.Direction {
	a.checkDistinct(cur, dst)
	t := a.topo
	reach := a.reachable(dst)
	for i := 0; i < 2*t.NumDims(); i++ {
		d := topology.DirectionFromIndex(i)
		if !in.Injected && !a.set.Allowed(core.Turn{From: in.Dir, To: d}) {
			continue
		}
		ch := topology.Channel{From: cur, Dir: d}
		if !t.Enabled(ch) {
			continue
		}
		next := t.ChannelTo(ch)
		if a.minimal && t.Distance(next, dst) != t.Distance(cur, dst)-1 {
			continue
		}
		if next != dst && !reach[a.stateIndex(next, Arrived(d))] {
			continue
		}
		buf = append(buf, d)
	}
	return buf
}
