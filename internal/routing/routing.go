// Package routing implements the routing algorithms studied in the
// paper: the nonadaptive dimension-order baselines (xy, e-cube), the
// turn-model partially adaptive algorithms for 2D meshes (west-first,
// north-last, negative-first), n-dimensional meshes (ABONF, ABOPL,
// negative-first), hypercubes (p-cube), and k-ary n-cubes (wraparound
// extensions), plus a fully adaptive reference relation and routing
// relations derived from arbitrary turn sets.
//
// An Algorithm is a routing relation: given a packet's current node, its
// destination, and the direction it arrived from, it returns the set of
// output directions the algorithm permits. Adaptiveness is the size of
// that set; the simulator's output selection policy picks among them.
package routing

import (
	"fmt"

	"turnmodel/internal/topology"
)

// InPort describes how a packet arrived at the current router.
type InPort struct {
	// Injected is true when the packet is at its source and has not yet
	// taken a network channel.
	Injected bool
	// Dir is the direction the packet was travelling when it arrived;
	// meaningful only when Injected is false.
	Dir topology.Direction
}

// Injected is the InPort of a packet at its source.
var Injected = InPort{Injected: true}

// Arrived returns the InPort of a packet that arrived travelling d.
func Arrived(d topology.Direction) InPort { return InPort{Dir: d} }

// Algorithm is a wormhole routing relation bound to a topology.
//
// Implementations must be safe for concurrent use by multiple
// goroutines; they are pure functions of their inputs.
type Algorithm interface {
	// Name identifies the algorithm, e.g. "west-first".
	Name() string
	// Topology returns the network the algorithm routes on.
	Topology() *topology.Topology
	// Candidates appends to buf the output directions permitted for a
	// packet at cur destined for dst that arrived via in, and returns the
	// extended slice. It must return at least one direction whenever
	// cur != dst and the packet arrived by a move the relation itself
	// permits (the relation is connected), and must not be called with
	// cur == dst. Directions are returned in ascending dimension order,
	// negative before positive, so that deterministic output selection
	// policies see a stable order.
	Candidates(cur, dst topology.NodeID, in InPort, buf []topology.Direction) []topology.Direction
}

// CandidateList collects candidates with a fresh buffer; a convenience
// for tests and analysis code (the simulator reuses buffers instead).
func CandidateList(a Algorithm, cur, dst topology.NodeID, in InPort) []topology.Direction {
	return a.Candidates(cur, dst, in, nil)
}

// base carries the topology shared by all algorithm implementations.
type base struct {
	topo *topology.Topology
	name string
}

func (b *base) Name() string                 { return b.name }
func (b *base) Topology() *topology.Topology { return b.topo }
func (b *base) checkDistinct(cur, dst topology.NodeID) {
	if cur == dst {
		panic(fmt.Sprintf("routing: %s asked to route a packet already at its destination (node %d)", b.name, cur))
	}
}

// profitable appends the minimal ("profitable") directions from cur
// toward dst: for every dimension with a nonzero shortest-path offset,
// the direction that reduces it. Wraparound channels are used when they
// are on a shortest path.
func profitable(t *topology.Topology, cur, dst topology.NodeID, buf []topology.Direction) []topology.Direction {
	for dim := 0; dim < t.NumDims(); dim++ {
		d := t.MinDelta(cur, dst, dim)
		if d < 0 {
			buf = append(buf, topology.Direction{Dim: dim})
		} else if d > 0 {
			buf = append(buf, topology.Direction{Dim: dim, Pos: true})
		}
	}
	return buf
}

// DimensionOrder is the nonadaptive dimension-order routing algorithm:
// xy routing on a 2D mesh, e-cube on a hypercube. It routes each packet
// completely in dimension 0, then dimension 1, and so on. It is
// deadlock free on meshes (and hypercubes) but offers no adaptiveness.
type DimensionOrder struct{ base }

// NewDimensionOrder returns dimension-order routing on t. On a torus it
// routes over the mesh sub-network only (wraparound channels are never
// used): with k > 2, routing that uses wraparound channels is not
// deadlock free without extra channels (Section 4.2).
func NewDimensionOrder(t *topology.Topology) *DimensionOrder {
	name := "dimension-order"
	switch {
	case t.IsHypercube():
		name = "e-cube"
	case t.NumDims() == 2:
		name = "xy"
	}
	return &DimensionOrder{base{topo: t, name: name}}
}

// ArrivalInvariant marks the relation compilable: Candidates ignores
// the arrival port. (Defined per concrete type, not on base: embedding
// base does not imply invariance — see TurnGraphRouting.)
func (a *DimensionOrder) ArrivalInvariant() bool { return true }

// Candidates implements Algorithm: the single profitable direction in
// the lowest unresolved dimension.
func (a *DimensionOrder) Candidates(cur, dst topology.NodeID, _ InPort, buf []topology.Direction) []topology.Direction {
	a.checkDistinct(cur, dst)
	for dim := 0; dim < a.topo.NumDims(); dim++ {
		d := a.topo.Delta(cur, dst, dim)
		if d < 0 {
			return append(buf, topology.Direction{Dim: dim})
		}
		if d > 0 {
			return append(buf, topology.Direction{Dim: dim, Pos: true})
		}
	}
	panic("routing: unreachable: cur == dst")
}

// NegativeFirst is the minimal negative-first algorithm for
// n-dimensional meshes (and, on hypercubes, the p-cube algorithm of
// Section 5): route first adaptively in all needed negative directions,
// then adaptively in all needed positive directions. Deadlock free by
// Theorem 5.
type NegativeFirst struct{ base }

// NewNegativeFirst returns minimal negative-first routing on mesh t. On
// a torus it routes over the mesh sub-network only; NewNegativeFirstTorus
// adds classified wraparound channels (Section 4.2).
func NewNegativeFirst(t *topology.Topology) *NegativeFirst {
	name := "negative-first"
	if t.IsHypercube() {
		name = "p-cube"
	}
	return &NegativeFirst{base{topo: t, name: name}}
}

// ArrivalInvariant marks the relation compilable: Candidates ignores
// the arrival port.
func (a *NegativeFirst) ArrivalInvariant() bool { return true }

// Candidates implements Algorithm.
func (a *NegativeFirst) Candidates(cur, dst topology.NodeID, _ InPort, buf []topology.Direction) []topology.Direction {
	a.checkDistinct(cur, dst)
	start := len(buf)
	for dim := 0; dim < a.topo.NumDims(); dim++ {
		if a.topo.Delta(cur, dst, dim) < 0 {
			buf = append(buf, topology.Direction{Dim: dim})
		}
	}
	if len(buf) > start {
		return buf // phase 1: negative moves remain
	}
	for dim := 0; dim < a.topo.NumDims(); dim++ {
		if a.topo.Delta(cur, dst, dim) > 0 {
			buf = append(buf, topology.Direction{Dim: dim, Pos: true})
		}
	}
	return buf
}

// ABONF is the minimal all-but-one-negative-first algorithm for
// n-dimensional meshes: route first adaptively in the negative
// directions of all dimensions except Excluded, then adaptively in the
// remaining directions. With a 2D mesh and Excluded = 1 it is the
// west-first algorithm.
type ABONF struct {
	base
	// Excluded is the dimension whose negative direction is deferred to
	// the second phase.
	Excluded int
}

// NewABONF returns minimal ABONF routing on mesh t, excluding dimension
// excluded from the first phase. On a torus the wraparound channels are
// ignored; see NewWrapFirstHop to incorporate them.
func NewABONF(t *topology.Topology, excluded int) *ABONF {
	if excluded < 0 || excluded >= t.NumDims() {
		panic(fmt.Sprintf("routing: excluded dimension %d out of range", excluded))
	}
	name := fmt.Sprintf("abonf(excl %d)", excluded)
	if t.NumDims() == 2 && excluded == 1 {
		name = "west-first"
	}
	return &ABONF{base: base{topo: t, name: name}, Excluded: excluded}
}

// NewWestFirst returns the west-first algorithm for a 2D mesh
// (Section 3.1): route a packet first west, if necessary, and then
// adaptively south, east, and north.
func NewWestFirst(t *topology.Topology) *ABONF {
	if t.NumDims() != 2 {
		panic("routing: west-first is defined for 2D meshes; use NewABONF for higher dimensions")
	}
	return NewABONF(t, 1)
}

// ArrivalInvariant marks the relation compilable: Candidates ignores
// the arrival port.
func (a *ABONF) ArrivalInvariant() bool { return true }

// Candidates implements Algorithm.
func (a *ABONF) Candidates(cur, dst topology.NodeID, _ InPort, buf []topology.Direction) []topology.Direction {
	a.checkDistinct(cur, dst)
	start := len(buf)
	for dim := 0; dim < a.topo.NumDims(); dim++ {
		if dim != a.Excluded && a.topo.Delta(cur, dst, dim) < 0 {
			buf = append(buf, topology.Direction{Dim: dim})
		}
	}
	if len(buf) > start {
		return buf // phase 1: non-excluded negative moves remain
	}
	for dim := 0; dim < a.topo.NumDims(); dim++ {
		d := a.topo.Delta(cur, dst, dim)
		if d < 0 {
			buf = append(buf, topology.Direction{Dim: dim})
		} else if d > 0 {
			buf = append(buf, topology.Direction{Dim: dim, Pos: true})
		}
	}
	return buf
}

// ABOPL is the minimal all-but-one-positive-last algorithm for
// n-dimensional meshes: route first adaptively in the negative
// directions and the positive direction of dimension Special, then
// adaptively in the remaining positive directions. With a 2D mesh and
// Special = 0 it is the north-last algorithm.
type ABOPL struct {
	base
	// Special is the dimension whose positive direction joins the first
	// phase.
	Special int
}

// NewABOPL returns minimal ABOPL routing on mesh t with the given
// special dimension. On a torus the wraparound channels are ignored; see
// NewWrapFirstHop to incorporate them.
func NewABOPL(t *topology.Topology, special int) *ABOPL {
	if special < 0 || special >= t.NumDims() {
		panic(fmt.Sprintf("routing: special dimension %d out of range", special))
	}
	name := fmt.Sprintf("abopl(dim %d)", special)
	if t.NumDims() == 2 && special == 0 {
		name = "north-last"
	}
	return &ABOPL{base: base{topo: t, name: name}, Special: special}
}

// NewNorthLast returns the north-last algorithm for a 2D mesh
// (Section 3.2): route a packet first adaptively west, south, and east,
// and then north.
func NewNorthLast(t *topology.Topology) *ABOPL {
	if t.NumDims() != 2 {
		panic("routing: north-last is defined for 2D meshes; use NewABOPL for higher dimensions")
	}
	return NewABOPL(t, 0)
}

// ArrivalInvariant marks the relation compilable: Candidates ignores
// the arrival port.
func (a *ABOPL) ArrivalInvariant() bool { return true }

// Candidates implements Algorithm.
func (a *ABOPL) Candidates(cur, dst topology.NodeID, _ InPort, buf []topology.Direction) []topology.Direction {
	a.checkDistinct(cur, dst)
	start := len(buf)
	for dim := 0; dim < a.topo.NumDims(); dim++ {
		d := a.topo.Delta(cur, dst, dim)
		if d < 0 {
			buf = append(buf, topology.Direction{Dim: dim})
		} else if d > 0 && dim == a.Special {
			buf = append(buf, topology.Direction{Dim: dim, Pos: true})
		}
	}
	if len(buf) > start {
		return buf // phase 1: negative or special-positive moves remain
	}
	for dim := 0; dim < a.topo.NumDims(); dim++ {
		if dim != a.Special && a.topo.Delta(cur, dst, dim) > 0 {
			buf = append(buf, topology.Direction{Dim: dim, Pos: true})
		}
	}
	return buf
}

// FullyAdaptive is the minimal fully adaptive relation: every profitable
// direction is permitted. Without extra physical or virtual channels it
// is NOT deadlock free (its channel dependency graph is cyclic); it
// exists as the S_f reference for adaptiveness measurements and as a
// deadlock demonstration.
type FullyAdaptive struct{ base }

// NewFullyAdaptive returns the fully adaptive minimal relation on t.
func NewFullyAdaptive(t *topology.Topology) *FullyAdaptive {
	return &FullyAdaptive{base{topo: t, name: "fully-adaptive"}}
}

// ArrivalInvariant marks the relation compilable: Candidates ignores
// the arrival port.
func (a *FullyAdaptive) ArrivalInvariant() bool { return true }

// Candidates implements Algorithm.
func (a *FullyAdaptive) Candidates(cur, dst topology.NodeID, _ InPort, buf []topology.Direction) []topology.Direction {
	a.checkDistinct(cur, dst)
	return profitable(a.topo, cur, dst, buf)
}
