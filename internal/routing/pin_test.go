package routing

import (
	"testing"

	"turnmodel/internal/topology"
)

// TestPinnedTableSurvivesEviction: the table cache's size-cap eviction
// picks an arbitrary unpinned victim, so churning far more than
// maxCachedTables short-lived relations through TableFor must leave a
// pinned entry's table untouched — same pointer, no recompilation.
// After release the entry is evictable again (exercised only for the
// release path's bookkeeping; eviction of any particular entry is
// never deterministic).
func TestPinnedTableSurvivesEviction(t *testing.T) {
	mesh := topology.NewMesh(2, 2)
	pinned := NewDimensionOrder(mesh)
	release := PinTable(AsVC(pinned))
	defer release()
	tab1 := TableFor(AsVC(pinned))
	if tab1 == nil {
		t.Fatal("pinned relation did not compile")
	}
	for i := 0; i < 3*maxCachedTables; i++ {
		churn := NewDimensionOrder(topology.NewMesh(2, 2))
		if TableFor(AsVC(churn)) == nil {
			t.Fatal("churn relation did not compile")
		}
	}
	tab2 := TableFor(AsVC(pinned))
	if tab2 != tab1 {
		t.Errorf("pinned table was evicted and recompiled (got %p, want %p)", tab2, tab1)
	}
	release()
	release() // idempotent: a double release must not underflow the pin count
	tableCacheMu.Lock()
	e := tableCache[AsVC(pinned)]
	tableCacheMu.Unlock()
	if e == nil {
		t.Fatal("pinned entry vanished while pinned-then-released")
	}
	tableCacheMu.Lock()
	pins := e.pins
	tableCacheMu.Unlock()
	if pins != 0 {
		t.Errorf("pin count after release = %d, want 0", pins)
	}
}

// TestPinTableUncomparable: pinning a relation that cannot be a map key
// must be a harmless no-op, mirroring TableFor's refusal to cache it.
func TestPinTableUncomparable(t *testing.T) {
	release := PinTable(nil)
	release()
}
