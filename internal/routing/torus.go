package routing

import (
	"fmt"

	"turnmodel/internal/topology"
)

// This file implements the two k-ary n-cube extensions of Section 4.2:
// allowing a wraparound channel only on a packet's first hop, and the
// negative-first algorithm with wraparound channels classified by the
// direction in which they route packets.

// WrapFirstHop extends a mesh routing algorithm to a k-ary n-cube by
// permitting wraparound channels only on a packet's first hop
// (Section 4.2). After a first-hop wraparound (or immediately, if none
// is taken) the packet is routed by the inner mesh algorithm over the
// mesh sub-network.
//
// Deadlock freedom: wraparound channels are used only directly from
// injection, so no network channel ever waits on one; assigning them
// numbers above (or below) all mesh channel numbers preserves the inner
// algorithm's strictly monotone numbering.
type WrapFirstHop struct {
	base
	inner Algorithm
}

// NewWrapFirstHop wraps inner, whose topology must be a torus with at
// least one wrapping dimension.
func NewWrapFirstHop(inner Algorithm) *WrapFirstHop {
	t := inner.Topology()
	if t.Kind() != topology.KindTorus {
		panic("routing: WrapFirstHop requires a torus topology")
	}
	return &WrapFirstHop{
		base:  base{topo: t, name: fmt.Sprintf("wrap-first-hop(%s)", inner.Name())},
		inner: inner,
	}
}

// Inner returns the wrapped mesh algorithm.
func (a *WrapFirstHop) Inner() Algorithm { return a.inner }

// ArrivalInvariant forwards the inner algorithm's marker. WrapFirstHop
// itself branches only on Injected — wraparounds are offered on the
// first hop alone — so its arrived-header candidates are as invariant
// as the inner relation's (the injected and arrived lists still differ,
// which the compiled table's separate spans capture).
func (a *WrapFirstHop) ArrivalInvariant() bool {
	inner, ok := a.inner.(ArrivalInvariant)
	return ok && inner.ArrivalInvariant()
}

// Candidates implements Algorithm. On the first hop it offers, before
// the inner algorithm's candidates, every wraparound channel that lies
// on a shortest torus path to the destination; a wraparound is only
// offered when it is strictly shorter than the mesh route, so listing it
// first makes deterministic first-candidate policies take the shortcut.
func (a *WrapFirstHop) Candidates(cur, dst topology.NodeID, in InPort, buf []topology.Direction) []topology.Direction {
	a.checkDistinct(cur, dst)
	if in.Injected {
		for dim := 0; dim < a.topo.NumDims(); dim++ {
			mesh := a.topo.Delta(cur, dst, dim)
			min := a.topo.MinDelta(cur, dst, dim)
			if mesh == min {
				continue // the wraparound is not on a shortest path in this dimension
			}
			d := topology.Direction{Dim: dim, Pos: min > 0}
			if a.topo.IsWraparound(topology.Channel{From: cur, Dir: d}) {
				buf = append(buf, d)
			}
		}
	}
	return a.inner.Candidates(cur, dst, in, buf)
}

// NegativeFirstTorus is the negative-first algorithm extended to k-ary
// n-cubes by classifying each wraparound channel according to the
// direction in which it routes packets (Section 4.2): the wraparound
// channel from the high edge (x_i = k-1) to the low edge (x_i = 0) moves
// packets to a lower coordinate and so is classified as a negative
// ("west") channel, and the one from the low edge to the high edge as a
// positive channel. A node at the east edge thus has two channels to the
// west: the mesh channel to its immediate western neighbor and the
// wraparound channel to the west edge.
//
// The algorithm routes first adaptively along negatively classified
// channels in dimensions whose coordinate exceeds the destination's,
// then adaptively along positive mesh channels. As the paper notes, the
// resulting routing is strictly nonminimal: a packet may take the
// wraparound even when the direct mesh path is shorter.
type NegativeFirstTorus struct{ base }

// NewNegativeFirstTorus returns classified-wraparound negative-first
// routing on torus t.
func NewNegativeFirstTorus(t *topology.Topology) *NegativeFirstTorus {
	if t.Kind() != topology.KindTorus {
		panic("routing: NegativeFirstTorus requires a torus topology")
	}
	return &NegativeFirstTorus{base{topo: t, name: "negative-first-torus"}}
}

// ArrivalInvariant marks the relation compilable: Candidates ignores
// the arrival port.
func (a *NegativeFirstTorus) ArrivalInvariant() bool { return true }

// Candidates implements Algorithm. Phase 1 (some coordinate exceeds the
// destination's): all negatively classified channels in such dimensions,
// including the high-to-low wraparound. Phase 2: positive mesh channels
// toward the destination. Every phase-1 move strictly decreases the
// coordinate sum, so routing terminates.
func (a *NegativeFirstTorus) Candidates(cur, dst topology.NodeID, _ InPort, buf []topology.Direction) []topology.Direction {
	a.checkDistinct(cur, dst)
	start := len(buf)
	for dim := 0; dim < a.topo.NumDims(); dim++ {
		if a.topo.Delta(cur, dst, dim) >= 0 {
			continue
		}
		// The mesh channel one step down is always present when the
		// coordinate is positive, which it is (it exceeds dst's, which
		// is at least 0). In dimensions of length 2 there is no distinct
		// wraparound; the single channel is the mesh channel.
		buf = append(buf, topology.Direction{Dim: dim})
		down := topology.Channel{From: cur, Dir: topology.Direction{Dim: dim, Pos: true}}
		if a.topo.IsWraparound(down) {
			// At the high edge the physically positive channel wraps to
			// coordinate 0 and is classified negative.
			buf = append(buf, down.Dir)
		}
	}
	if len(buf) > start {
		return buf
	}
	for dim := 0; dim < a.topo.NumDims(); dim++ {
		if a.topo.Delta(cur, dst, dim) > 0 {
			buf = append(buf, topology.Direction{Dim: dim, Pos: true})
		}
	}
	return buf
}
