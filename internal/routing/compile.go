package routing

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"

	"turnmodel/internal/topology"
)

// Route-table compilation. A routing relation over a fixed topology is
// a pure function of (current node, destination, arrival port), so for
// the simulator's steady state it can be evaluated once per (node,
// destination) pair and stored in a flat candidate arena — the same
// "routing logic as a lookup table" move hardware routers make. The
// simulator then serves every header's candidate list as a slice into
// the arena instead of re-running the turn-model calculus per packet
// per router.
//
// Arrival ports are folded away: every relation in this package except
// TurnGraphRouting produces the same candidates for every non-injected
// arrival port (most ignore the port entirely; WrapFirstHop branches
// only on Injected). Such relations declare it via the ArrivalInvariant
// marker, and the table keeps just two candidate lists per (node,
// destination) pair — one for injected headers, one for arrived ones.
// Relations without the marker are verified exhaustively at compile
// time; a relation that genuinely depends on the arrival port fails
// compilation and the simulator falls back to direct evaluation.

// MaxTableNodes bounds the topologies worth compiling: a table is
// quadratic in the node count (two spans per node pair), so beyond this
// size compilation is refused and callers fall back to direct
// evaluation.
const MaxTableNodes = 1024

// ArrivalInvariant marks a VCAlgorithm whose CandidatesVC result is
// independent of the arrival port: for fixed (cur, dst), every VCInPort
// with Injected == false yields the same candidate list. (The injected
// case may still differ, as in WrapFirstHop.) Declaring it lets Compile
// evaluate one representative arrival port per node pair instead of
// verifying all of them.
type ArrivalInvariant interface {
	ArrivalInvariant() bool
}

func isArrivalInvariant(alg VCAlgorithm) bool {
	a, ok := alg.(ArrivalInvariant)
	return ok && a.ArrivalInvariant()
}

// Candidate is one precompiled, pre-filtered routing candidate: the
// virtual direction packed into two bytes, its profitability, and its
// resolved output index in the canonical simulator port layout (see
// OutIndex). Only the per-cycle output-busy check remains for the
// simulator to do.
type Candidate struct {
	// Out is OutIndex(cur, Dir, VC) for the node the candidate was
	// compiled at.
	Out int32
	// Dir is topology.Direction.Index() of the output direction.
	Dir uint8
	// VC is the virtual channel.
	VC uint8
	// Prof records whether the hop reduces the distance to the
	// destination (a "profitable" move in the paper's terms).
	Prof bool
}

// Direction unpacks the candidate's output direction.
func (c Candidate) Direction() topology.Direction {
	return topology.DirectionFromIndex(int(c.Dir))
}

// OutIndex returns the canonical dense output index shared between
// compiled tables and the simulator: routers are laid out consecutively
// with 2n*vcs+1 virtual ports each (the last being the
// injection/ejection port), and direction d's virtual channel vc
// occupies port d.Index()*vcs + vc within its router.
func OutIndex(v topology.NodeID, d topology.Direction, vc, ndim, vcs int) int32 {
	vport := 2*ndim*vcs + 1
	return int32(int(v)*vport + d.Index()*vcs + vc)
}

// span is a half-open range into Table.cands.
type span struct{ start, end int32 }

// Table is a compiled routing relation: per (node, destination) pair,
// the filtered candidate lists for injected and arrived headers, stored
// in one flat arena. A table is immutable after compilation and safe
// for concurrent readers; it is valid only at the fault epoch it was
// compiled at (see Epoch and TableFor).
type Table struct {
	alg   VCAlgorithm
	topo  *topology.Topology
	epoch int
	n     int
	// spans holds two entries per (cur, dst) pair at (cur*n+dst)*2:
	// the injected list, then the arrived list. When the two lists are
	// equal (every relation but WrapFirstHop) the spans alias.
	spans []span
	cands []Candidate
}

// Algorithm returns the relation the table was compiled from.
func (t *Table) Algorithm() VCAlgorithm { return t.alg }

// Epoch returns the topology fault epoch the table was compiled at.
// A table is stale once Topology.FaultEpoch moves past it.
func (t *Table) Epoch() int { return t.epoch }

// Lookup returns the compiled candidates for a header at cur destined
// for dst, injected or arrived. The returned slice aliases the table's
// arena with its capacity clipped to its length; callers must treat it
// as read-only.
func (t *Table) Lookup(cur, dst topology.NodeID, injected bool) []Candidate {
	i := (int(cur)*t.n + int(dst)) * 2
	if !injected {
		i++
	}
	s := t.spans[i]
	return t.cands[s.start:s.end:s.end]
}

// MemoryBytes estimates the table's footprint, for capacity planning
// and the DESIGN.md numbers.
func (t *Table) MemoryBytes() int {
	return len(t.spans)*8 + len(t.cands)*8
}

// compileCands evaluates the relation once and applies the simulator's
// candidate filter: virtual channel in range, channel existing and not
// faulty. Profitability is computed unconditionally — the simulator
// reads it only under misroute patience or metrics, so precomputing it
// is behavior-neutral.
func compileCands(alg VCAlgorithm, t *topology.Topology, cur, dst topology.NodeID,
	in VCInPort, vcs int, raw []VirtualDirection, out []Candidate) ([]Candidate, []VirtualDirection) {
	raw = alg.CandidatesVC(cur, dst, in, raw[:0])
	ndim := t.NumDims()
	baseDist := t.Distance(cur, dst)
	for _, vd := range raw {
		if vd.VC < 0 || vd.VC >= vcs {
			continue
		}
		if !t.Enabled(topology.Channel{From: cur, Dir: vd.Dir}) {
			continue
		}
		prof := false
		if next, ok := t.Neighbor(cur, vd.Dir); ok && t.Distance(next, dst) < baseDist {
			prof = true
		}
		out = append(out, Candidate{
			Out:  OutIndex(cur, vd.Dir, vd.VC, ndim, vcs),
			Dir:  uint8(vd.Dir.Index()),
			VC:   uint8(vd.VC),
			Prof: prof,
		})
	}
	return out, raw
}

func candsEqual(a, b []Candidate) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// compileCount tallies every compilation attempt (successes and the
// sticky failures, which cost nearly as much: arrival-dependence is
// detected mid-verification). CompileCount exposes it so sweep-level
// tests and benchmarks can assert cross-leaf sharing: a sweep whose
// leaves share relations compiles once per distinct (topology,
// algorithm, fault epoch), not once per leaf.
var compileCount atomic.Int64

// CompileCount returns the number of route-table compilations this
// process has attempted.
func CompileCount() int64 { return compileCount.Load() }

// Compile builds the routing table for alg at its topology's current
// fault epoch. It returns an error — and the caller falls back to
// direct evaluation — when the topology is too large or the relation's
// candidates depend on the arrival port (verified exhaustively unless
// the relation declares ArrivalInvariant).
func Compile(alg VCAlgorithm) (*Table, error) {
	compileCount.Add(1)
	t := alg.Topology()
	n := t.Nodes()
	if n > MaxTableNodes {
		return nil, fmt.Errorf("routing: %s: %d nodes exceed the %d-node table limit", alg.Name(), n, MaxTableNodes)
	}
	vcs := alg.NumVCs()
	if vcs < 1 || vcs > 256 {
		return nil, fmt.Errorf("routing: %s: %d virtual channels not compilable", alg.Name(), vcs)
	}
	ndim2 := 2 * t.NumDims()
	if ndim2 > 256 {
		return nil, fmt.Errorf("routing: %s: direction index does not fit the packed candidate", alg.Name())
	}
	invariant := isArrivalInvariant(alg)
	tab := &Table{
		alg:   alg,
		topo:  t,
		epoch: t.FaultEpoch(),
		n:     n,
		spans: make([]span, n*n*2),
	}
	var raw []VirtualDirection
	var injList, arrList, probe []Candidate
	for cur := 0; cur < n; cur++ {
		curID := topology.NodeID(cur)
		for dst := 0; dst < n; dst++ {
			if dst == cur {
				continue // headers at their destination eject; both spans stay empty
			}
			dstID := topology.NodeID(dst)
			injList, raw = compileCands(alg, t, curID, dstID, VCInjected, vcs, raw, injList[:0])
			if invariant {
				arrList, raw = compileCands(alg, t, curID, dstID,
					VCInPort{Dir: topology.Direction{}}, vcs, raw, arrList[:0])
			} else {
				// Verify arrival invariance over every port a packet can
				// actually arrive on: travelling d means it came over the
				// channel paired with cur's d.Opposite() channel.
				first := true
				for di := 0; di < ndim2; di++ {
					d := topology.DirectionFromIndex(di)
					if !t.HasChannel(curID, d.Opposite()) {
						continue
					}
					for vc := 0; vc < vcs; vc++ {
						probe, raw = compileCands(alg, t, curID, dstID,
							VCInPort{Dir: d, VC: vc}, vcs, raw, probe[:0])
						if first {
							arrList = append(arrList[:0], probe...)
							first = false
						} else if !candsEqual(arrList, probe) {
							return nil, fmt.Errorf("routing: %s depends on the arrival port at node %d (dst %d); not compilable",
								alg.Name(), cur, dst)
						}
					}
				}
				if first {
					// No network input can reach cur (isolated by faults);
					// only the injected list matters.
					arrList = append(arrList[:0], injList...)
				}
			}
			si := (cur*n + dst) * 2
			tab.spans[si] = appendSpan(tab, injList)
			if candsEqual(injList, arrList) {
				tab.spans[si+1] = tab.spans[si]
			} else {
				tab.spans[si+1] = appendSpan(tab, arrList)
			}
		}
	}
	return tab, nil
}

func appendSpan(tab *Table, cands []Candidate) span {
	start := int32(len(tab.cands))
	tab.cands = append(tab.cands, cands...)
	return span{start: start, end: int32(len(tab.cands))}
}

// tableEntry is one cached compilation: the table at its current epoch,
// or a sticky failure (a relation that is not compilable at one epoch
// will not become compilable at another). pins counts PinTable holds
// and is guarded by tableCacheMu (not e.mu), like the cache map itself.
type tableEntry struct {
	mu     sync.Mutex
	table  *Table
	failed bool
	hooked bool
	pins   int
}

// maxCachedTables caps the process-wide table cache. Tables are a few
// megabytes on the largest figure topologies, and test suites churn
// through many short-lived algorithm instances; beyond the cap an
// arbitrary entry is evicted (its topology hook stays registered but
// only clears a dead entry).
const maxCachedTables = 32

var (
	tableCacheMu sync.Mutex
	tableCache   = map[VCAlgorithm]*tableEntry{}
)

// TableFor returns the compiled routing table for alg at its topology's
// current fault epoch, compiling on first use and caching per algorithm
// value. Repeated calls — e.g. one simulation per load point sharing
// one algorithm instance — reuse the compilation. It returns nil when
// alg is not compilable (arrival-dependent relations, oversized
// topologies, algorithm values that cannot be map keys); callers fall
// back to direct CandidatesVC evaluation.
//
// When the topology's fault set changes, the cached table is dropped by
// the fault-change hook and recompiled at the new epoch on the next
// call.
func TableFor(alg VCAlgorithm) *Table {
	if alg == nil || !reflect.TypeOf(alg).Comparable() {
		return nil
	}
	tableCacheMu.Lock()
	e := cacheEntryLocked(alg)
	tableCacheMu.Unlock()

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.failed {
		return nil
	}
	topo := alg.Topology()
	if e.table != nil && e.table.epoch == topo.FaultEpoch() {
		return e.table
	}
	if !e.hooked {
		e.hooked = true
		// Drop the stale table as soon as the fault set changes; the
		// epoch check above is the correctness mechanism, the hook just
		// releases the memory eagerly. notifyFaultChange runs hooks
		// outside the topology's own lock, so taking e.mu here is safe.
		topo.OnFaultChange(func() {
			e.mu.Lock()
			e.table = nil
			e.mu.Unlock()
		})
	}
	tab, err := Compile(alg)
	if err != nil {
		e.failed = true
		return nil
	}
	e.table = tab
	return tab
}

// cacheEntryLocked returns alg's cache entry, creating it (and evicting
// an unpinned entry if the cache is at its cap) when absent. Callers
// hold tableCacheMu. Pinned entries never count as eviction victims;
// when every entry is pinned the cache simply grows past the cap — the
// cap protects against churn through short-lived algorithm instances,
// while pins mark the long-lived shared relations the sweep layer
// deliberately keeps.
func cacheEntryLocked(alg VCAlgorithm) *tableEntry {
	e, ok := tableCache[alg]
	if !ok {
		if len(tableCache) >= maxCachedTables {
			for k, v := range tableCache {
				if v.pins > 0 {
					continue
				}
				delete(tableCache, k)
				break
			}
		}
		e = &tableEntry{}
		tableCache[alg] = e
	}
	return e
}

// PinTable marks alg's compiled-table cache entry as exempt from the
// size-cap eviction, so a long-lived shared relation (internal/exp's
// cross-leaf compile cache) never loses its table to the arbitrary
// eviction that protects against test-suite churn. It does not compile
// anything — the first TableFor call still does that. The returned
// release drops the pin (idempotent); pinning a non-comparable relation
// is a no-op, matching TableFor's refusal to cache it.
func PinTable(alg VCAlgorithm) (release func()) {
	if alg == nil || !reflect.TypeOf(alg).Comparable() {
		return func() {}
	}
	tableCacheMu.Lock()
	e := cacheEntryLocked(alg)
	e.pins++
	tableCacheMu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			tableCacheMu.Lock()
			e.pins--
			tableCacheMu.Unlock()
		})
	}
}
