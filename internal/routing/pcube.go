package routing

import (
	"math/bits"

	"turnmodel/internal/topology"
)

// This file implements the p-cube routing algorithm of Section 5 in its
// published bitwise form (Figures 11 and 12). The minimal p-cube
// algorithm is semantically identical to NegativeFirst on a hypercube —
// dimensions where the current bit is 1 and the destination bit is 0 are
// negative moves, and 0->1 flips are positive moves — but the bitwise
// formulation is the paper's compact router expression and is exposed
// both for fidelity and for the Section 5 example table.

// Addr is a hypercube node address treated as a bit vector; bit i is
// coordinate x_i.
type Addr uint64

// AddrOf converts a topology node ID of a hypercube to its address.
// Node IDs in this package place coordinate x_0 in bit 0.
func AddrOf(id topology.NodeID) Addr { return Addr(id) }

// NodeOf converts an address back to a node ID.
func (a Addr) NodeOf() topology.NodeID { return topology.NodeID(a) }

// PCubeMinimalSteps computes the routable dimensions of the minimal
// p-cube algorithm (Figure 11) for current address c and destination d:
//
//  1. If C = D, route the packet to the local processor (returns 0).
//  2. R = C AND (NOT D).
//  3. If R = 0, then R = (NOT C) AND D.
//  4. Route the packet along any dimension i for which r_i = 1.
//
// The returned mask has bit i set for each permitted dimension.
func PCubeMinimalSteps(c, d Addr, n int) Addr {
	mask := Addr(1)<<uint(n) - 1
	if c == d {
		return 0
	}
	r := c &^ d & mask
	if r == 0 {
		r = ^c & d & mask
	}
	return r
}

// PCubeNonminimalSteps computes the routable dimensions of the
// nonminimal p-cube algorithm (Figure 12). The phase flag p is 1 while
// the packet is still in its first (descending) phase; it depends on
// which input buffer the header flits occupy in a hardware router, and
// here is passed explicitly:
//
//  1. If C = D, route to the local processor.
//  2. R = C AND (NOT D).
//  3. If p = 1, R = R OR (C AND D)   (may also descend unprofitably).
//  4. If R = 0, then R = (NOT C) AND D.
//  5. Route along any dimension i for which r_i = 1.
//
// In the first phase the packet may thus route along any dimension whose
// current bit is 1, profitable or not; descending moves are exactly the
// negative directions of the negative-first algorithm, so deadlock
// freedom is preserved (Theorem 5) and livelock freedom follows from the
// strictly increasing channel numbering.
func PCubeNonminimalSteps(c, d Addr, n int, phase1 bool) Addr {
	mask := Addr(1)<<uint(n) - 1
	if c == d {
		return 0
	}
	r := c &^ d & mask
	if phase1 {
		r |= c & d & mask
	}
	if r == 0 {
		r = ^c & d & mask
	}
	return r
}

// PCube is the minimal p-cube algorithm implemented with the bitwise
// steps of Figure 11. Its routing relation equals NegativeFirst on the
// same hypercube.
type PCube struct{ base }

// NewPCube returns minimal p-cube routing on hypercube t.
func NewPCube(t *topology.Topology) *PCube {
	if !t.IsHypercube() {
		panic("routing: p-cube requires a hypercube")
	}
	if t.NumDims() > 64 {
		panic("routing: p-cube supports at most 64 dimensions")
	}
	return &PCube{base{topo: t, name: "p-cube"}}
}

// ArrivalInvariant marks the relation compilable: Candidates ignores
// the arrival port.
func (a *PCube) ArrivalInvariant() bool { return true }

// Candidates implements Algorithm.
func (a *PCube) Candidates(cur, dst topology.NodeID, _ InPort, buf []topology.Direction) []topology.Direction {
	a.checkDistinct(cur, dst)
	n := a.topo.NumDims()
	c, d := AddrOf(cur), AddrOf(dst)
	r := PCubeMinimalSteps(c, d, n)
	descending := c&^d != 0
	for m := r; m != 0; m &= m - 1 {
		dim := bits.TrailingZeros64(uint64(m))
		// Moving along dim flips bit dim of c: 1->0 is the negative
		// direction, 0->1 positive.
		buf = append(buf, topology.Direction{Dim: dim, Pos: !descending})
	}
	return buf
}

// NumShortestPCube returns the number of shortest paths the p-cube
// algorithm allows from src to dst: h1! * h0!, where h1 = |src AND dst..|
// — precisely, h1 counts dimensions routed in phase 1 (bits 1 in src and
// 0 in dst) and h0 those routed in phase 2 (bits 0 in src, 1 in dst)
// (Section 5).
func NumShortestPCube(src, dst Addr) int64 {
	h1 := bits.OnesCount64(uint64(src &^ dst))
	h0 := bits.OnesCount64(uint64(^src & dst))
	return factorial(h1) * factorial(h0)
}

// NumShortestFullHypercube returns h! with h the Hamming distance, the
// fully adaptive shortest-path count S_f of Section 5.
func NumShortestFullHypercube(src, dst Addr) int64 {
	return factorial(bits.OnesCount64(uint64(src ^ dst)))
}

func factorial(n int) int64 {
	f := int64(1)
	for i := 2; i <= n; i++ {
		f *= int64(i)
	}
	return f
}
