package routing

import (
	"testing"

	"turnmodel/internal/topology"
)

// TestDoubleYFullyAdaptive: the relation offers every profitable
// physical direction at every state — S_double-y equals S_f.
func TestDoubleYFullyAdaptive(t *testing.T) {
	topo := topology.NewMesh(6, 6)
	dy := NewDoubleY(topo)
	full := NewFullyAdaptive(topo)
	for src := topology.NodeID(0); src < topology.NodeID(topo.Nodes()); src++ {
		for dst := topology.NodeID(0); dst < topology.NodeID(topo.Nodes()); dst++ {
			if src == dst {
				continue
			}
			want := CandidateList(full, src, dst, Injected)
			got := dy.CandidatesVC(src, dst, VCInjected, nil)
			if len(got) != len(want) {
				t.Fatalf("%d->%d: %v vs %v", src, dst, got, want)
			}
			for i := range want {
				if got[i].Dir != want[i] {
					t.Fatalf("%d->%d: %v vs %v", src, dst, got, want)
				}
			}
		}
	}
}

// TestDoubleYClassDiscipline: y moves use class 0 exactly while the
// packet still needs to travel west; x moves always class 0.
func TestDoubleYClassDiscipline(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	dy := NewDoubleY(topo)
	for src := topology.NodeID(0); src < topology.NodeID(topo.Nodes()); src++ {
		for dst := topology.NodeID(0); dst < topology.NodeID(topo.Nodes()); dst++ {
			if src == dst {
				continue
			}
			needWest := topo.Delta(src, dst, 0) < 0
			for _, vd := range dy.CandidatesVC(src, dst, VCInjected, nil) {
				if vd.Dir.Dim == 0 && vd.VC != 0 {
					t.Fatalf("x move on class %d", vd.VC)
				}
				if vd.Dir.Dim == 1 {
					wantClass := 1
					if needWest {
						wantClass = 0
					}
					if vd.VC != wantClass {
						t.Fatalf("%d->%d: y move on class %d, want %d", src, dst, vd.VC, wantClass)
					}
				}
			}
		}
	}
}

// TestDoubleYDelivery: VC walks reach every destination minimally.
func TestDoubleYDelivery(t *testing.T) {
	topo := topology.NewMesh(7, 5)
	dy := NewDoubleY(topo)
	for src := topology.NodeID(0); src < topology.NodeID(topo.Nodes()); src++ {
		for dst := topology.NodeID(0); dst < topology.NodeID(topo.Nodes()); dst++ {
			if src == dst {
				continue
			}
			path, err := WalkVC(dy, src, dst)
			if err != nil {
				t.Fatalf("%d->%d: %v", src, dst, err)
			}
			if len(path)-1 != topo.Distance(src, dst) {
				t.Fatalf("%d->%d: %d hops", src, dst, len(path)-1)
			}
		}
	}
}

func TestDoubleYPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"3D":    func() { NewDoubleY(topology.NewMesh(3, 3, 3)) },
		"torus": func() { NewDoubleY(topology.NewTorus(4, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
