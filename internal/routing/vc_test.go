package routing

import (
	"testing"

	"turnmodel/internal/topology"
)

// TestDatelineDORDelivery: minimal dimension-order torus routing with
// two virtual channels delivers every pair along shortest torus paths.
func TestDatelineDORDelivery(t *testing.T) {
	for _, topo := range []*topology.Topology{topology.NewTorus(5, 2), topology.NewTorus(4, 3)} {
		alg := NewDatelineDOR(topo)
		for src := topology.NodeID(0); src < topology.NodeID(topo.Nodes()); src++ {
			for dst := topology.NodeID(0); dst < topology.NodeID(topo.Nodes()); dst++ {
				if src == dst {
					continue
				}
				path, err := WalkVC(alg, src, dst)
				if err != nil {
					t.Fatalf("%v %d->%d: %v", topo, src, dst, err)
				}
				if got, want := len(path)-1, topo.Distance(src, dst); got != want {
					t.Fatalf("%v %d->%d: %d hops, want %d", topo, src, dst, got, want)
				}
			}
		}
	}
}

// TestDatelineVCTransition: a wrapping route uses VC 1 up to and
// including the wraparound hop, VC 0 after; a non-wrapping route stays
// on VC 0.
func TestDatelineVCTransition(t *testing.T) {
	topo := topology.NewTorus(8, 1)
	alg := NewDatelineDOR(topo)
	// From 6 to 1 the shortest way is +: 6 -> 7 -> (wrap) 0 -> 1.
	cases := []struct {
		cur    topology.NodeID
		wantVC int
	}{
		{6, 1}, // dateline (7 -> 0) ahead
		{7, 1}, // the wraparound hop itself
		{0, 0}, // crossed; class 0
	}
	for _, c := range cases {
		cands := alg.CandidatesVC(c.cur, 1, VCInjected, nil)
		if len(cands) != 1 {
			t.Fatalf("dimension-order must offer one candidate, got %v", cands)
		}
		if cands[0].VC != c.wantVC {
			t.Errorf("at node %d: vc %d, want %d", c.cur, cands[0].VC, c.wantVC)
		}
	}
	// Non-wrapping route 1 -> 3 stays on class 0.
	cands := alg.CandidatesVC(1, 3, VCInjected, nil)
	if cands[0].VC != 0 {
		t.Errorf("non-wrapping hop on vc %d, want 0", cands[0].VC)
	}
}

// TestTorusDORUsesWraparounds: the (deadlock-prone) torus DOR takes the
// shorter way around each ring.
func TestTorusDORUsesWraparounds(t *testing.T) {
	topo := topology.NewTorus(8, 2)
	alg := NewTorusDOR(topo)
	src := topo.ID(topology.Coord{7, 0})
	dst := topo.ID(topology.Coord{1, 0})
	path, err := Walk(alg, src, dst, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(path)-1 != 2 {
		t.Errorf("path took %d hops, want 2 via wraparound", len(path)-1)
	}
}

// TestAsVCAdapter: a plain algorithm adapts to one virtual channel with
// identical candidates.
func TestAsVCAdapter(t *testing.T) {
	topo := topology.NewMesh(5, 5)
	plain := NewWestFirst(topo)
	vc := AsVC(plain)
	if vc.NumVCs() != 1 {
		t.Fatalf("NumVCs = %d", vc.NumVCs())
	}
	if vc.Name() != plain.Name() {
		t.Fatalf("name mismatch")
	}
	for src := topology.NodeID(0); src < topology.NodeID(topo.Nodes()); src++ {
		for dst := topology.NodeID(0); dst < topology.NodeID(topo.Nodes()); dst++ {
			if src == dst {
				continue
			}
			a := CandidateList(plain, src, dst, Injected)
			b := vc.CandidatesVC(src, dst, VCInjected, nil)
			if len(a) != len(b) {
				t.Fatalf("%d->%d: %v vs %v", src, dst, a, b)
			}
			for i := range a {
				if b[i].Dir != a[i] || b[i].VC != 0 {
					t.Fatalf("%d->%d: %v vs %v", src, dst, a, b)
				}
			}
		}
	}
	// AsVC of something already VC-aware returns it unchanged: the
	// adapter itself still implements Algorithm, so wrapping twice must
	// not nest.
	if again := AsVC(vc.(Algorithm)); again != vc {
		t.Error("AsVC re-wrapped an existing VCAlgorithm")
	}
}

// TestDatelineDORPanics on a mesh.
func TestDatelineDORPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewDatelineDOR(topology.NewMesh(4, 4))
}
