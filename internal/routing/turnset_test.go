package routing

import (
	"math/rand"
	"testing"

	"turnmodel/internal/core"
	"turnmodel/internal/topology"
)

// TestTurnSetRoutingMatchesPhaseAlgorithms: the general turn-graph
// construction instantiated with the Figure 5a/9a/10a sets must offer
// exactly the same candidate sets as the dedicated phase implementations
// on every feasible state.
func TestTurnSetRoutingMatchesPhaseAlgorithms(t *testing.T) {
	topo := topology.NewMesh(5, 5)
	cases := []struct {
		phase Algorithm
		turns Algorithm
	}{
		{NewWestFirst(topo), NewTurnGraphRouting(topo, core.WestFirstSet(), true)},
		{NewNorthLast(topo), NewTurnGraphRouting(topo, core.NorthLastSet(), true)},
		{NewNegativeFirst(topo), NewTurnGraphRouting(topo, core.NegativeFirstSet(2), true)},
		{NewDimensionOrder(topo), NewTurnGraphRouting(topo, core.DimensionOrderSet(2), true)},
	}
	for _, c := range cases {
		for src := topology.NodeID(0); src < topology.NodeID(topo.Nodes()); src++ {
			for dst := topology.NodeID(0); dst < topology.NodeID(topo.Nodes()); dst++ {
				if src == dst {
					continue
				}
				var walkStates func(cur topology.NodeID, in InPort, seen map[[2]int]bool)
				walkStates = func(cur topology.NodeID, in InPort, seen map[[2]int]bool) {
					if cur == dst {
						return
					}
					a := CandidateList(c.phase, cur, dst, in)
					b := CandidateList(c.turns, cur, dst, in)
					if len(a) != len(b) {
						t.Fatalf("%s vs %s at %d->%d in=%v: %v vs %v",
							c.phase.Name(), c.turns.Name(), src, dst, in, a, b)
					}
					for i := range a {
						if a[i] != b[i] {
							t.Fatalf("%s vs %s at %d->%d in=%v: %v vs %v",
								c.phase.Name(), c.turns.Name(), src, dst, in, a, b)
						}
					}
					for _, d := range a {
						next, _ := topo.Neighbor(cur, d)
						key := [2]int{int(next), d.Index()}
						if !seen[key] {
							seen[key] = true
							walkStates(next, Arrived(d), seen)
						}
					}
				}
				walkStates(src, Injected, map[[2]int]bool{})
			}
		}
	}
}

// TestTurnSetRoutingConnectivity: each of the 12 deadlock-free
// one-turn-per-cycle prohibitions leaves every pair minimally routable;
// the four reverse-pair prohibitions disconnect some pairs in minimal
// mode (their deadlock, in minimal form, manifests as unroutability).
func TestTurnSetRoutingConnectivity(t *testing.T) {
	topo := topology.NewMesh(5, 5)
	reversePairs := 0
	for _, set := range core.OneTurnPerCyclePairs2D() {
		alg := NewTurnGraphRouting(topo, set, true)
		p := set.Prohibited()
		isReverse := len(p) == 2 && p[0].From == p[1].To && p[0].To == p[1].From
		if isReverse {
			reversePairs++
		}
		allRoutable := true
		for src := topology.NodeID(0); src < topology.NodeID(topo.Nodes()) && allRoutable; src++ {
			for dst := topology.NodeID(0); dst < topology.NodeID(topo.Nodes()); dst++ {
				if src != dst && !alg.CanRoute(src, dst) {
					allRoutable = false
					break
				}
			}
		}
		if isReverse && allRoutable {
			t.Errorf("%v: reverse pair should break minimal connectivity", set)
		}
		if !isReverse && !allRoutable {
			t.Errorf("%v: non-reverse pair should keep all pairs routable", set)
		}
	}
	if reversePairs != 4 {
		t.Errorf("found %d reverse pairs among the 16, want 4", reversePairs)
	}
}

// TestTurnSetRoutingNonminimalConnectivity: in nonminimal mode the 12
// deadlock-free one-turn-per-cycle sets route every pair. (The four
// reverse-pair sets break connectivity even nonminimally on a mesh —
// the boundary leaves no room for the three-left-turns detour — while
// still admitting waiting cycles in the interior, the Figure 4
// deadlock.)
func TestTurnSetRoutingNonminimalConnectivity(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	for _, set := range core.OneTurnPerCyclePairs2D() {
		p := set.Prohibited()
		if len(p) == 2 && p[0].From == p[1].To && p[0].To == p[1].From {
			continue // reverse pair: connectivity not guaranteed
		}
		alg := NewTurnGraphRouting(topo, set, false)
		for src := topology.NodeID(0); src < topology.NodeID(topo.Nodes()); src++ {
			for dst := topology.NodeID(0); dst < topology.NodeID(topo.Nodes()); dst++ {
				if src != dst && !alg.CanRoute(src, dst) {
					t.Fatalf("%v: nonminimal relation cannot route %d->%d", set, src, dst)
				}
			}
		}
	}
}

// TestTurnSetNonminimalWalksTerminate: greedy walks over nonminimal
// relations reach the destination.
func TestTurnSetNonminimalWalksTerminate(t *testing.T) {
	topo := topology.NewMesh(6, 6)
	alg := NewTurnGraphRouting(topo, core.WestFirstSet(), false)
	sel := GreedySelector(topo)
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 300; trial++ {
		src := topology.NodeID(rng.Intn(topo.Nodes()))
		dst := topology.NodeID(rng.Intn(topo.Nodes()))
		if src == dst {
			continue
		}
		path, err := Walk(alg, src, dst, sel)
		if err != nil {
			t.Fatalf("%d->%d: %v", src, dst, err)
		}
		if path[len(path)-1] != dst {
			t.Fatalf("walk ended at %d, want %d", path[len(path)-1], dst)
		}
	}
}

// TestTurnSetRoutingHonorsFaults: disabling a channel removes routes
// through it; the nonminimal relation detours; re-enabling restores the
// minimal route (cache invalidation).
func TestTurnSetRoutingHonorsFaults(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	src := topo.ID(topology.Coord{1, 3})
	dst := topo.ID(topology.Coord{6, 3})
	minimal := NewTurnGraphRouting(topo, core.WestFirstSet(), true)
	nonmin := NewTurnGraphRouting(topo, core.WestFirstSet(), false)

	if _, err := Walk(minimal, src, dst, nil); err != nil {
		t.Fatalf("healthy walk failed: %v", err)
	}
	broken := topology.Channel{From: topo.ID(topology.Coord{3, 3}), Dir: topology.Direction{Dim: 0, Pos: true}}
	topo.DisableChannel(broken)
	defer topo.EnableChannel(broken)

	if minimal.CanRoute(src, dst) {
		t.Error("minimal west-first should be disconnected by the row fault")
	}
	path, err := Walk(nonmin, src, dst, GreedySelector(topo))
	if err != nil {
		t.Fatalf("nonminimal detour failed: %v", err)
	}
	for i := 1; i < len(path); i++ {
		if path[i-1] == broken.From && path[i] == topo.ChannelTo(broken) {
			t.Fatal("detour used the disabled channel")
		}
	}

	topo.EnableChannel(broken)
	if !minimal.CanRoute(src, dst) {
		t.Error("re-enabling the channel should restore minimal routability")
	}
}

// TestTurnSetRoutingRespectsItsSet: no walk transition uses a prohibited
// turn, minimal or not.
func TestTurnSetRoutingRespectsItsSet(t *testing.T) {
	topo := topology.NewMesh(6, 6)
	rng := rand.New(rand.NewSource(11))
	for _, minimal := range []bool{true, false} {
		set := core.NorthLastSet()
		alg := NewTurnGraphRouting(topo, set, minimal)
		sel := GreedySelector(topo)
		for trial := 0; trial < 200; trial++ {
			src := topology.NodeID(rng.Intn(topo.Nodes()))
			dst := topology.NodeID(rng.Intn(topo.Nodes()))
			if src == dst {
				continue
			}
			path, err := Walk(alg, src, dst, sel)
			if err != nil {
				t.Fatal(err)
			}
			var prev *topology.Direction
			for i := 1; i < len(path); i++ {
				var d topology.Direction
				for dim := 0; dim < 2; dim++ {
					diff := topo.CoordOf(path[i], dim) - topo.CoordOf(path[i-1], dim)
					if diff != 0 {
						d = topology.Direction{Dim: dim, Pos: diff > 0}
					}
				}
				if prev != nil && !set.Allowed(core.Turn{From: *prev, To: d}) {
					t.Fatalf("walk used prohibited turn %v->%v on %v", *prev, d, path)
				}
				dd := d
				prev = &dd
			}
		}
	}
}

// TestCanRouteSelf: trivially true.
func TestCanRouteSelf(t *testing.T) {
	topo := topology.NewMesh(3, 3)
	alg := NewTurnGraphRouting(topo, core.WestFirstSet(), true)
	if !alg.CanRoute(4, 4) {
		t.Error("CanRoute(self) should be true")
	}
}

func TestTurnSetRoutingDimsMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for dims mismatch")
		}
	}()
	NewTurnGraphRouting(topology.NewMesh(4, 4, 4), core.WestFirstSet(), true)
}
