package routing

import (
	"fmt"
	"strings"

	"turnmodel/internal/topology"
)

// RenderPathGrid draws one route on a 2D mesh as ASCII art in the style
// of the paper's example-path figures (5b, 9b, 10b): north is up, 'S'
// marks the source, 'D' the destination, and each intermediate node
// shows the direction the packet left it ('>', '<', '^', 'v'). Faulty
// channels' endpoints show '#' when the fault touches the path's row or
// column; unvisited nodes are '.'.
func RenderPathGrid(t *topology.Topology, path []topology.NodeID) string {
	if t.NumDims() != 2 {
		panic("routing: RenderPathGrid requires a 2D mesh")
	}
	if len(path) == 0 {
		return ""
	}
	w, h := t.Dims()[0], t.Dims()[1]
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(". ", w))
	}
	put := func(id topology.NodeID, c byte) {
		x := t.CoordOf(id, 0)
		y := t.CoordOf(id, 1)
		grid[h-1-y][2*x] = c
	}
	for i := 0; i < len(path)-1; i++ {
		cur, next := path[i], path[i+1]
		var glyph byte = '?'
		for dim := 0; dim < 2; dim++ {
			d := t.CoordOf(next, dim) - t.CoordOf(cur, dim)
			if d == 0 {
				continue
			}
			// Normalize wraparound moves to their travel direction.
			if d > 1 {
				d = -1
			} else if d < -1 {
				d = 1
			}
			switch {
			case dim == 0 && d > 0:
				glyph = '>'
			case dim == 0:
				glyph = '<'
			case d > 0:
				glyph = '^'
			default:
				glyph = 'v'
			}
		}
		put(cur, glyph)
	}
	put(path[0], 'S')
	put(path[len(path)-1], 'D')
	var b strings.Builder
	for _, row := range grid {
		b.WriteString(strings.TrimRight(string(row), " "))
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderTurns draws the eight 90-degree turns of a 2D mesh grouped by
// abstract cycle, marking each as allowed or prohibited by the set —
// the content of Figures 3, 5a, 9a and 10a in text form. The caller
// provides the Allowed predicate so this file does not import core.
func RenderTurns(allowed func(from, to topology.Direction) bool) string {
	e := topology.Direction{Dim: 0, Pos: true}
	w := topology.Direction{Dim: 0}
	n := topology.Direction{Dim: 1, Pos: true}
	s := topology.Direction{Dim: 1}
	mark := func(from, to topology.Direction) string {
		if allowed(from, to) {
			return fmt.Sprintf("%-5s -> %-5s  allowed", from, to)
		}
		return fmt.Sprintf("%-5s -> %-5s  PROHIBITED", from, to)
	}
	var b strings.Builder
	b.WriteString("clockwise cycle (right turns):\n")
	for _, t := range [][2]topology.Direction{{e, s}, {s, w}, {w, n}, {n, e}} {
		fmt.Fprintf(&b, "  %s\n", mark(t[0], t[1]))
	}
	b.WriteString("counterclockwise cycle (left turns):\n")
	for _, t := range [][2]topology.Direction{{e, n}, {n, w}, {w, s}, {s, e}} {
		fmt.Fprintf(&b, "  %s\n", mark(t[0], t[1]))
	}
	return b.String()
}
