package routing

import (
	"turnmodel/internal/topology"
)

// CanRouter is implemented by relations that can answer source-to-
// destination reachability directly (e.g. TurnGraphRouting's cached
// turn-graph reachability). UnroutablePairs uses it as a fast path.
type CanRouter interface {
	// CanRoute reports whether a packet injected at src can reach dst
	// under the topology's current fault set.
	CanRoute(src, dst topology.NodeID) bool
}

// UnroutablePairs counts the ordered (src, dst) pairs, src != dst, that
// alg cannot serve under its topology's current fault set — the pairs a
// fault campaign must expect to drop (or to deadlock on, for relations
// that lose connectivity non-gracefully). Relations implementing
// CanRouter answer directly; for the rest, reachability is computed by
// a per-destination reverse search over (router, arrival-port) states
// of the routing relation, honoring disabled channels exactly as the
// simulator's allocation does.
func UnroutablePairs(alg Algorithm) int {
	if cr, ok := alg.(CanRouter); ok {
		t := alg.Topology()
		n := t.Nodes()
		bad := 0
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				if s != d && !cr.CanRoute(topology.NodeID(s), topology.NodeID(d)) {
					bad++
				}
			}
		}
		return bad
	}
	return unroutableGeneric(alg)
}

// UnroutablePairsVC is UnroutablePairs lifted to virtual-channel
// relations: the reverse search runs over (router, arrival virtual
// direction) states, so a pair counts as routable only when a VC-valid
// path exists — projecting the relation onto physical directions would
// overcount, since a VC transition permitted from one arrival channel
// may be forbidden from another (the dateline scheme's whole point).
func UnroutablePairsVC(alg VCAlgorithm) int {
	t := alg.Topology()
	n := t.Nodes()
	ndirs := 2 * t.NumDims()
	vcs := alg.NumVCs()
	ports := ndirs*vcs + 1 // arrival virtual directions plus injected
	nstates := n * ports
	rev := make([][]int32, nstates)
	reach := make([]bool, nstates)
	queue := make([]int32, 0, nstates)
	var buf []VirtualDirection
	bad := 0
	for dsti := 0; dsti < n; dsti++ {
		dst := topology.NodeID(dsti)
		for i := range rev {
			rev[i] = rev[i][:0]
			reach[i] = false
		}
		queue = queue[:0]
		for v := 0; v < n; v++ {
			if v == dsti {
				for ip := 0; ip < ports; ip++ {
					s := int32(v*ports + ip)
					reach[s] = true
					queue = append(queue, s)
				}
				continue
			}
			cur := topology.NodeID(v)
			for ip := 0; ip < ports; ip++ {
				in := VCInjected
				if ip < ndirs*vcs {
					in = VCArrived(VirtualDirection{Dir: topology.DirectionFromIndex(ip / vcs), VC: ip % vcs})
				}
				buf = alg.CandidatesVC(cur, dst, in, buf[:0])
				for _, vd := range buf {
					if !t.Enabled(topology.Channel{From: cur, Dir: vd.Dir}) {
						continue
					}
					u, ok := t.Neighbor(cur, vd.Dir)
					if !ok {
						continue
					}
					to := int32(int(u)*ports + vd.Dir.Index()*vcs + vd.VC)
					rev[to] = append(rev[to], int32(v*ports+ip))
				}
			}
		}
		for len(queue) > 0 {
			s := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, from := range rev[s] {
				if !reach[from] {
					reach[from] = true
					queue = append(queue, from)
				}
			}
		}
		for v := 0; v < n; v++ {
			if v != dsti && !reach[v*ports+ndirs*vcs] {
				bad++
			}
		}
	}
	return bad
}

// unroutableGeneric computes UnroutablePairs for an arbitrary relation.
// For each destination it builds the state graph whose nodes are
// (router, arrival port) pairs — arrival ports are the 2n incoming
// directions plus "injected" — and whose edges are the relation's
// candidate moves over enabled channels, then runs one reverse BFS from
// the destination's states. A source is routable iff its injected
// state reaches the destination.
func unroutableGeneric(alg Algorithm) int {
	t := alg.Topology()
	n := t.Nodes()
	ndirs := 2 * t.NumDims()
	ports := ndirs + 1 // arrival directions plus injected
	nstates := n * ports
	rev := make([][]int32, nstates)
	reach := make([]bool, nstates)
	queue := make([]int32, 0, nstates)
	var buf []topology.Direction
	bad := 0
	for dsti := 0; dsti < n; dsti++ {
		dst := topology.NodeID(dsti)
		for i := range rev {
			rev[i] = rev[i][:0]
			reach[i] = false
		}
		queue = queue[:0]
		for v := 0; v < n; v++ {
			if v == dsti {
				// The relation must not be asked for candidates at the
				// destination; its states are the accepting set.
				for ip := 0; ip < ports; ip++ {
					s := int32(v*ports + ip)
					reach[s] = true
					queue = append(queue, s)
				}
				continue
			}
			cur := topology.NodeID(v)
			for ip := 0; ip < ports; ip++ {
				in := Injected
				if ip < ndirs {
					in = Arrived(topology.DirectionFromIndex(ip))
				}
				buf = alg.Candidates(cur, dst, in, buf[:0])
				for _, d := range buf {
					if !t.Enabled(topology.Channel{From: cur, Dir: d}) {
						continue
					}
					u, ok := t.Neighbor(cur, d)
					if !ok {
						continue
					}
					to := int32(int(u)*ports + d.Index())
					rev[to] = append(rev[to], int32(v*ports+ip))
				}
			}
		}
		for len(queue) > 0 {
			s := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, from := range rev[s] {
				if !reach[from] {
					reach[from] = true
					queue = append(queue, from)
				}
			}
		}
		for v := 0; v < n; v++ {
			if v != dsti && !reach[v*ports+ndirs] {
				bad++
			}
		}
	}
	return bad
}
