package routing

import (
	"testing"

	"turnmodel/internal/core"
	"turnmodel/internal/topology"
)

// directCands is the reference the compiled table must match: one
// CandidatesVC evaluation pushed through the same filter the simulator
// applies per packet.
func directCands(alg VCAlgorithm, cur, dst topology.NodeID, in VCInPort) []Candidate {
	out, _ := compileCands(alg, alg.Topology(), cur, dst, in, alg.NumVCs(), nil, nil)
	return out
}

// arrivalPorts enumerates every (direction, vc) a packet can arrive at
// cur on.
func arrivalPorts(t *topology.Topology, cur topology.NodeID, vcs int) []VCInPort {
	var ports []VCInPort
	for di := 0; di < 2*t.NumDims(); di++ {
		d := topology.DirectionFromIndex(di)
		if !t.HasChannel(cur, d.Opposite()) {
			continue
		}
		for vc := 0; vc < vcs; vc++ {
			ports = append(ports, VCInPort{Dir: d, VC: vc})
		}
	}
	return ports
}

// TestCompileMatchesDirect: for every built-in relation, topology pair
// and arrival port, Table.Lookup returns exactly the filtered list a
// direct evaluation produces.
func TestCompileMatchesDirect(t *testing.T) {
	mesh := topology.NewMesh(5, 4)
	cube := topology.NewHypercube(4)
	torus := topology.NewTorus(5, 2)
	algs := []VCAlgorithm{
		AsVC(NewDimensionOrder(mesh)),
		AsVC(NewWestFirst(mesh)),
		AsVC(NewNorthLast(mesh)),
		AsVC(NewNegativeFirst(mesh)),
		AsVC(NewFullyAdaptive(mesh)),
		AsVC(NewPCube(cube)),
		AsVC(NewTorusDOR(torus)),
		NewDatelineDOR(torus),
		AsVC(NewWrapFirstHop(NewNegativeFirst(torus))),
		AsVC(NewNegativeFirstTorus(torus)),
		NewDoubleY(mesh),
	}
	for _, alg := range algs {
		tab, err := Compile(alg)
		if err != nil {
			t.Errorf("%s: compile failed: %v", alg.Name(), err)
			continue
		}
		topo := alg.Topology()
		n := topo.Nodes()
		for cur := topology.NodeID(0); cur < topology.NodeID(n); cur++ {
			for dst := topology.NodeID(0); dst < topology.NodeID(n); dst++ {
				if cur == dst {
					continue
				}
				want := directCands(alg, cur, dst, VCInjected)
				if got := tab.Lookup(cur, dst, true); !candsEqual(got, want) {
					t.Fatalf("%s: injected lookup %d->%d = %v, want %v", alg.Name(), cur, dst, got, want)
				}
				arr := tab.Lookup(cur, dst, false)
				for _, in := range arrivalPorts(topo, cur, alg.NumVCs()) {
					want := directCands(alg, cur, dst, in)
					if !candsEqual(arr, want) {
						t.Fatalf("%s: arrived lookup %d->%d via %v = %v, want %v", alg.Name(), cur, dst, in, arr, want)
					}
				}
			}
		}
	}
}

// TestCompileWrapFirstHopSpans: WrapFirstHop offers wraparounds only to
// injected headers, so the table's injected and arrived spans must
// genuinely differ where a wraparound is on a shortest path.
func TestCompileWrapFirstHopSpans(t *testing.T) {
	torus := topology.NewTorus(6, 2)
	alg := AsVC(NewWrapFirstHop(NewNegativeFirst(torus)))
	tab, err := Compile(alg)
	if err != nil {
		t.Fatal(err)
	}
	// Node (0,0) to (5,0): the -x wraparound is the shortest way, offered
	// when injected only.
	cur := torus.ID(topology.Coord{0, 0})
	dst := torus.ID(topology.Coord{5, 0})
	inj := tab.Lookup(cur, dst, true)
	arr := tab.Lookup(cur, dst, false)
	if candsEqual(inj, arr) {
		t.Fatalf("injected and arrived candidates should differ at %d->%d: both %v", cur, dst, inj)
	}
	hasNegX := func(cs []Candidate) bool {
		for _, c := range cs {
			if c.Direction() == (topology.Direction{Dim: 0, Pos: false}) {
				return true
			}
		}
		return false
	}
	if !hasNegX(inj) {
		t.Errorf("injected candidates %v should offer the -x wraparound", inj)
	}
	if hasNegX(arr) {
		t.Errorf("arrived candidates %v should not offer the -x wraparound", arr)
	}
}

// plainVC ignores the arrival port but does not declare
// ArrivalInvariant, exercising the exhaustive verification path.
type plainVC struct{ inner VCAlgorithm }

func (p plainVC) Name() string                 { return "plain-" + p.inner.Name() }
func (p plainVC) Topology() *topology.Topology { return p.inner.Topology() }
func (p plainVC) NumVCs() int                  { return p.inner.NumVCs() }
func (p plainVC) CandidatesVC(cur, dst topology.NodeID, _ VCInPort, buf []VirtualDirection) []VirtualDirection {
	return p.inner.CandidatesVC(cur, dst, VCInjected, buf)
}

func TestCompileVerifiesUnmarkedRelations(t *testing.T) {
	mesh := topology.NewMesh(4, 4)
	alg := plainVC{AsVC(NewNegativeFirst(mesh))}
	if _, ok := VCAlgorithm(alg).(ArrivalInvariant); ok {
		t.Fatal("plainVC must not implement ArrivalInvariant for this test to exercise verification")
	}
	tab, err := Compile(alg)
	if err != nil {
		t.Fatalf("verification should accept an arrival-invariant relation: %v", err)
	}
	cur, dst := topology.NodeID(5), topology.NodeID(10)
	if got, want := tab.Lookup(cur, dst, false), directCands(alg, cur, dst, VCInjected); !candsEqual(got, want) {
		t.Errorf("verified table lookup %v, want %v", got, want)
	}
}

// TestCompileArrivalDependentFails: turn-graph routing genuinely
// consults the arrival direction (it forbids turns), so compilation
// must refuse it and TableFor must report it as uncompilable.
func TestCompileArrivalDependentFails(t *testing.T) {
	mesh := topology.NewMesh(4, 4)
	alg := AsVC(NewTurnGraphRouting(mesh, core.WestFirstSet(), false))
	if _, err := Compile(alg); err == nil {
		t.Fatal("Compile accepted an arrival-dependent relation")
	}
	if tab := TableFor(alg); tab != nil {
		t.Fatal("TableFor returned a table for an arrival-dependent relation")
	}
	// The failure is sticky: a second call short-circuits to nil.
	if tab := TableFor(alg); tab != nil {
		t.Fatal("sticky failure not honored")
	}
}

// TestTableForCacheAndFaultInvalidation: TableFor reuses compilations
// per algorithm value and recompiles when the fault set changes, with
// faulty channels filtered out of the new table.
func TestTableForCacheAndFaultInvalidation(t *testing.T) {
	mesh := topology.NewMesh(4, 4)
	alg := AsVC(NewNegativeFirst(mesh))
	t1 := TableFor(alg)
	if t1 == nil {
		t.Fatal("TableFor failed for a compilable relation")
	}
	if t2 := TableFor(alg); t2 != t1 {
		t.Fatal("TableFor did not reuse the cached table")
	}
	broken := topology.Channel{From: mesh.ID(topology.Coord{1, 1}), Dir: topology.Direction{Dim: 0, Pos: false}}
	mesh.DisableChannel(broken)
	defer mesh.EnableChannel(broken)
	t3 := TableFor(alg)
	if t3 == nil || t3 == t1 {
		t.Fatal("TableFor did not recompile after a fault change")
	}
	if t3.Epoch() != mesh.FaultEpoch() {
		t.Errorf("recompiled table epoch %d, want %d", t3.Epoch(), mesh.FaultEpoch())
	}
	// Every lookup at the faulty node must exclude the disabled channel.
	for dst := topology.NodeID(0); dst < topology.NodeID(mesh.Nodes()); dst++ {
		if dst == broken.From {
			continue
		}
		for _, injected := range []bool{true, false} {
			for _, c := range t3.Lookup(broken.From, dst, injected) {
				if c.Direction() == broken.Dir {
					t.Fatalf("table offers the disabled channel %v for dst %d", broken, dst)
				}
			}
		}
	}
}

// TestCandidateOutIndex: the packed output index matches the canonical
// simulator layout formula for a multi-VC relation.
func TestCandidateOutIndex(t *testing.T) {
	torus := topology.NewTorus(5, 2)
	alg := VCAlgorithm(NewDatelineDOR(torus))
	tab, err := Compile(alg)
	if err != nil {
		t.Fatal(err)
	}
	vcs, ndim := alg.NumVCs(), torus.NumDims()
	vport := 2*ndim*vcs + 1
	for cur := topology.NodeID(0); cur < topology.NodeID(torus.Nodes()); cur++ {
		for dst := topology.NodeID(0); dst < topology.NodeID(torus.Nodes()); dst++ {
			if cur == dst {
				continue
			}
			for _, c := range tab.Lookup(cur, dst, true) {
				want := int32(int(cur)*vport + c.Direction().Index()*vcs + int(c.VC))
				if c.Out != want {
					t.Fatalf("candidate %+v at node %d: out %d, want %d", c, cur, c.Out, want)
				}
			}
		}
	}
}
