package routing

import (
	"fmt"

	"turnmodel/internal/topology"
)

// Selector chooses one output direction among an algorithm's candidates.
// It is the "output selection policy" of Section 6 applied outside the
// simulator, e.g. for path tracing.
type Selector func(cur, dst topology.NodeID, cands []topology.Direction) topology.Direction

// LowestDimensionSelector is the paper's "xy" output selection policy:
// prefer the candidate along the lowest dimension, negative before
// positive. Candidates are already emitted in that order, so it simply
// returns the first.
func LowestDimensionSelector(_, _ topology.NodeID, cands []topology.Direction) topology.Direction {
	return cands[0]
}

// GreedySelector prefers profitable candidates (those reducing the
// distance to the destination), falling back to the first candidate.
// Useful when walking nonminimal relations.
func GreedySelector(t *topology.Topology) Selector {
	return func(cur, dst topology.NodeID, cands []topology.Direction) topology.Direction {
		base := t.Distance(cur, dst)
		for _, d := range cands {
			if next, ok := t.Neighbor(cur, d); ok && t.Distance(next, dst) < base {
				return d
			}
		}
		return cands[0]
	}
}

// Walk routes a single packet from src to dst with alg, selecting one
// candidate per hop with sel (LowestDimensionSelector if nil), and
// returns the sequence of nodes visited, src first and dst last.
//
// Walk enforces the hop bound that makes turn-model routing livelock
// free: because every algorithm here routes along channels in strictly
// monotone numbering order, a packet can traverse each channel at most
// once, so a walk longer than the number of channels indicates a broken
// relation and returns an error. An error is also returned if the
// relation offers no candidates before reaching dst.
func Walk(alg Algorithm, src, dst topology.NodeID, sel Selector) ([]topology.NodeID, error) {
	if sel == nil {
		sel = LowestDimensionSelector
	}
	t := alg.Topology()
	path := []topology.NodeID{src}
	cur, in := src, Injected
	maxHops := t.NumChannelIDs() + 1
	var buf []topology.Direction
	for cur != dst {
		if len(path) > maxHops {
			return path, fmt.Errorf("routing: %s walk from %d to %d exceeded %d hops (livelock?)",
				alg.Name(), src, dst, maxHops)
		}
		buf = alg.Candidates(cur, dst, in, buf[:0])
		if len(buf) == 0 {
			return path, fmt.Errorf("routing: %s has no candidates at node %d (in %v) for destination %d",
				alg.Name(), cur, in, dst)
		}
		d := sel(cur, dst, buf)
		next, ok := t.Neighbor(cur, d)
		if !ok {
			return path, fmt.Errorf("routing: %s chose nonexistent channel %v at node %d", alg.Name(), d, cur)
		}
		cur, in = next, Arrived(d)
		path = append(path, cur)
	}
	return path, nil
}

// FormatPath renders a node path with coordinates, in the style of the
// example-path figures (5b, 9b, 10b).
func FormatPath(t *topology.Topology, path []topology.NodeID) string {
	s := ""
	for i, id := range path {
		if i > 0 {
			s += " -> "
		}
		s += fmt.Sprintf("%v", []int(t.Coord(id)))
	}
	return s
}
