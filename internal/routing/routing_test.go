package routing

import (
	"math/rand"
	"testing"
	"testing/quick"

	"turnmodel/internal/core"
	"turnmodel/internal/topology"
)

// allMeshAlgorithms returns every mesh algorithm under test on t.
func allMeshAlgorithms(t *topology.Topology) []Algorithm {
	algs := []Algorithm{
		NewDimensionOrder(t),
		NewNegativeFirst(t),
		NewFullyAdaptive(t),
	}
	for d := 0; d < t.NumDims(); d++ {
		algs = append(algs, NewABONF(t, d), NewABOPL(t, d))
	}
	if t.NumDims() == 2 {
		algs = append(algs, NewWestFirst(t), NewNorthLast(t))
	}
	if t.IsHypercube() {
		algs = append(algs, NewPCube(t))
	}
	return algs
}

// TestAllPairsDelivery exhaustively walks every source-destination pair
// under every algorithm on several topologies: the walk must terminate
// at the destination in exactly the minimal number of hops (all these
// relations are minimal).
func TestAllPairsDelivery(t *testing.T) {
	tops := []*topology.Topology{
		topology.NewMesh(5, 5),
		topology.NewMesh(3, 4),
		topology.NewMesh(3, 3, 3),
		topology.NewHypercube(5),
	}
	for _, topo := range tops {
		for _, alg := range allMeshAlgorithms(topo) {
			for src := topology.NodeID(0); src < topology.NodeID(topo.Nodes()); src++ {
				for dst := topology.NodeID(0); dst < topology.NodeID(topo.Nodes()); dst++ {
					if src == dst {
						continue
					}
					path, err := Walk(alg, src, dst, nil)
					if err != nil {
						t.Fatalf("%s on %v: %v", alg.Name(), topo, err)
					}
					if path[len(path)-1] != dst {
						t.Fatalf("%s on %v: walk %d->%d ended at %d", alg.Name(), topo, src, dst, path[len(path)-1])
					}
					if got, want := len(path)-1, topo.Distance(src, dst); got != want {
						t.Fatalf("%s on %v: walk %d->%d took %d hops, want %d", alg.Name(), topo, src, dst, got, want)
					}
				}
			}
		}
	}
}

// TestDeliveryProperty16x16 samples random pairs on the paper's 16x16
// mesh and checks minimal delivery under every algorithm and random
// selection among candidates.
func TestDeliveryProperty16x16(t *testing.T) {
	topo := topology.NewMesh(16, 16)
	rng := rand.New(rand.NewSource(3))
	randomSel := func(_, _ topology.NodeID, cands []topology.Direction) topology.Direction {
		return cands[rng.Intn(len(cands))]
	}
	for _, alg := range allMeshAlgorithms(topo) {
		f := func(a, b uint16) bool {
			src := topology.NodeID(int(a) % topo.Nodes())
			dst := topology.NodeID(int(b) % topo.Nodes())
			if src == dst {
				return true
			}
			path, err := Walk(alg, src, dst, randomSel)
			return err == nil && len(path)-1 == topo.Distance(src, dst)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: %v", alg.Name(), err)
		}
	}
}

// TestCandidatesRespectTurnSets verifies that every transition a phase
// algorithm offers along minimal walks is allowed by its published turn
// set (Figures 5a, 9a, 10a).
func TestCandidatesRespectTurnSets(t *testing.T) {
	topo := topology.NewMesh(6, 6)
	cases := []struct {
		alg Algorithm
		set *core.Set
	}{
		{NewWestFirst(topo), core.WestFirstSet()},
		{NewNorthLast(topo), core.NorthLastSet()},
		{NewNegativeFirst(topo), core.NegativeFirstSet(2)},
		{NewDimensionOrder(topo), core.DimensionOrderSet(2)},
	}
	// Check every feasible (in, out) transition: enumerate the states a
	// packet can actually be in by following the relation from injection
	// (infeasible arrival/destination combinations never arise in a
	// network and carry no turn-set obligation).
	for _, c := range cases {
		for src := topology.NodeID(0); src < topology.NodeID(topo.Nodes()); src++ {
			for dst := topology.NodeID(0); dst < topology.NodeID(topo.Nodes()); dst++ {
				if src == dst {
					continue
				}
				type state struct {
					node topology.NodeID
					in   topology.Direction
				}
				seen := map[state]bool{}
				var visit func(cur topology.NodeID, in InPort)
				visit = func(cur topology.NodeID, in InPort) {
					if cur == dst {
						return
					}
					for _, out := range CandidateList(c.alg, cur, dst, in) {
						if !in.Injected {
							turn := core.Turn{From: in.Dir, To: out}
							switch core.TurnDegree(turn) {
							case core.Deg90:
								if !c.set.Allowed(turn) {
									t.Fatalf("%s offers prohibited turn %v at node %d for dst %d", c.alg.Name(), turn, cur, dst)
								}
							case core.Deg180:
								t.Fatalf("%s offers a 180-degree turn at node %d", c.alg.Name(), cur)
							}
						}
						next, ok := topo.Neighbor(cur, out)
						if !ok {
							t.Fatalf("%s offered nonexistent channel %v at %d", c.alg.Name(), out, cur)
						}
						s := state{next, out}
						if !seen[s] {
							seen[s] = true
							visit(next, Arrived(out))
						}
					}
				}
				visit(src, Injected)
			}
		}
	}
}

// TestNegativeFirstPhaseInvariant: along any negative-first walk, no
// positive move ever precedes a negative move.
func TestNegativeFirstPhaseInvariant(t *testing.T) {
	topo := topology.NewMesh(7, 7)
	alg := NewNegativeFirst(topo)
	rng := rand.New(rand.NewSource(4))
	sel := func(_, _ topology.NodeID, cands []topology.Direction) topology.Direction {
		return cands[rng.Intn(len(cands))]
	}
	for trial := 0; trial < 500; trial++ {
		src := topology.NodeID(rng.Intn(topo.Nodes()))
		dst := topology.NodeID(rng.Intn(topo.Nodes()))
		if src == dst {
			continue
		}
		path, err := Walk(alg, src, dst, sel)
		if err != nil {
			t.Fatal(err)
		}
		seenPositive := false
		for i := 1; i < len(path); i++ {
			delta := int(path[i]) - int(path[i-1])
			if delta > 0 {
				seenPositive = true
			} else if seenPositive {
				t.Fatalf("negative move after positive move on path %v", path)
			}
		}
	}
}

// TestWestFirstGoesWestFirst: every westward hop precedes all others.
func TestWestFirstGoesWestFirst(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	alg := NewWestFirst(topo)
	rng := rand.New(rand.NewSource(5))
	sel := func(_, _ topology.NodeID, cands []topology.Direction) topology.Direction {
		return cands[rng.Intn(len(cands))]
	}
	for trial := 0; trial < 500; trial++ {
		src := topology.NodeID(rng.Intn(topo.Nodes()))
		dst := topology.NodeID(rng.Intn(topo.Nodes()))
		if src == dst {
			continue
		}
		path, err := Walk(alg, src, dst, sel)
		if err != nil {
			t.Fatal(err)
		}
		nonWest := false
		for i := 1; i < len(path); i++ {
			isWest := topo.CoordOf(path[i], 0) == topo.CoordOf(path[i-1], 0)-1
			if !isWest {
				nonWest = true
			} else if nonWest {
				t.Fatalf("westward move after non-west move on path %v", path)
			}
		}
	}
}

// TestNorthLastGoesNorthLast: once a packet moves north it only moves
// north.
func TestNorthLastGoesNorthLast(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	alg := NewNorthLast(topo)
	rng := rand.New(rand.NewSource(6))
	sel := func(_, _ topology.NodeID, cands []topology.Direction) topology.Direction {
		return cands[rng.Intn(len(cands))]
	}
	for trial := 0; trial < 500; trial++ {
		src := topology.NodeID(rng.Intn(topo.Nodes()))
		dst := topology.NodeID(rng.Intn(topo.Nodes()))
		if src == dst {
			continue
		}
		path, err := Walk(alg, src, dst, sel)
		if err != nil {
			t.Fatal(err)
		}
		goneNorth := false
		for i := 1; i < len(path); i++ {
			isNorth := topo.CoordOf(path[i], 1) == topo.CoordOf(path[i-1], 1)+1
			if isNorth {
				goneNorth = true
			} else if goneNorth {
				t.Fatalf("non-north move after north move on path %v", path)
			}
		}
	}
}

// TestDimensionOrderDeterministic: xy/e-cube offers exactly one
// candidate everywhere and resolves dimensions in ascending order.
func TestDimensionOrderDeterministic(t *testing.T) {
	for _, topo := range []*topology.Topology{topology.NewMesh(6, 6), topology.NewHypercube(5)} {
		alg := NewDimensionOrder(topo)
		for src := topology.NodeID(0); src < topology.NodeID(topo.Nodes()); src++ {
			for dst := topology.NodeID(0); dst < topology.NodeID(topo.Nodes()); dst++ {
				if src == dst {
					continue
				}
				cands := CandidateList(alg, src, dst, Injected)
				if len(cands) != 1 {
					t.Fatalf("dimension-order offered %d candidates", len(cands))
				}
				for dim := 0; dim < cands[0].Dim; dim++ {
					if topo.Delta(src, dst, dim) != 0 {
						t.Fatalf("dimension-order skipped unresolved dimension %d", dim)
					}
				}
			}
		}
	}
}

// TestPCubeEqualsNegativeFirst: the bitwise Figure 11 implementation and
// the phase-based negative-first relation agree on every state of a
// hypercube.
func TestPCubeEqualsNegativeFirst(t *testing.T) {
	topo := topology.NewHypercube(6)
	pc := NewPCube(topo)
	nf := NewNegativeFirst(topo)
	for src := topology.NodeID(0); src < topology.NodeID(topo.Nodes()); src++ {
		for dst := topology.NodeID(0); dst < topology.NodeID(topo.Nodes()); dst++ {
			if src == dst {
				continue
			}
			a := CandidateList(pc, src, dst, Injected)
			b := CandidateList(nf, src, dst, Injected)
			if len(a) != len(b) {
				t.Fatalf("candidate counts differ at %d->%d: %v vs %v", src, dst, a, b)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("candidates differ at %d->%d: %v vs %v", src, dst, a, b)
				}
			}
		}
	}
}

// TestPCubeBitwiseSteps checks the Figure 11/12 step computations
// against the Section 5 example.
func TestPCubeMinimalBitwise(t *testing.T) {
	c := Addr(0b1011010100)
	d := Addr(0b0010111001)
	r := PCubeMinimalSteps(c, d, 10)
	if r != 0b1001000100 {
		t.Errorf("phase-1 mask = %010b, want 1001000100", uint(r))
	}
	// After all descending moves: phase 2.
	c2 := Addr(0b0010010000)
	r2 := PCubeMinimalSteps(c2, d, 10)
	if r2 != 0b0000101001 {
		t.Errorf("phase-2 mask = %010b, want 0000101001", uint(r2))
	}
	if PCubeMinimalSteps(d, d, 10) != 0 {
		t.Error("at destination the mask must be 0")
	}
}

func TestPCubeNonminimalBitwise(t *testing.T) {
	c := Addr(0b1011010100)
	d := Addr(0b0010111001)
	// Figure 12: in phase 1 the packet may also route along any
	// dimension with c_i = 1 and d_i = 1.
	r := PCubeNonminimalSteps(c, d, 10, true)
	if r != (0b1001000100 | 0b0010010000) {
		t.Errorf("nonminimal phase-1 mask = %010b", uint(r))
	}
	// Out of phase 1 the extra moves disappear.
	r2 := PCubeNonminimalSteps(c, d, 10, false)
	if r2 != 0b1001000100 {
		t.Errorf("nonminimal phase-2 mask = %010b", uint(r2))
	}
}

func TestNumShortestPCube(t *testing.T) {
	src := Addr(0b1011010100)
	dst := Addr(0b0010111001)
	if got := NumShortestPCube(src, dst); got != 36 {
		t.Errorf("S_p-cube = %d, want 36 (3!*3!)", got)
	}
	if got := NumShortestFullHypercube(src, dst); got != 720 {
		t.Errorf("S_f = %d, want 720 (6!)", got)
	}
	if got := NumShortestPCube(5, 5); got != 1 {
		t.Errorf("S_p-cube(self) = %d, want 1", got)
	}
}

// TestCandidateOrdering: candidates must arrive in ascending dimension
// order with negative before positive (the contract deterministic
// policies rely on).
func TestCandidateOrdering(t *testing.T) {
	topo := topology.NewMesh(4, 4, 4)
	rng := rand.New(rand.NewSource(7))
	for _, alg := range allMeshAlgorithms(topo) {
		for trial := 0; trial < 200; trial++ {
			src := topology.NodeID(rng.Intn(topo.Nodes()))
			dst := topology.NodeID(rng.Intn(topo.Nodes()))
			if src == dst {
				continue
			}
			cands := CandidateList(alg, src, dst, Injected)
			for i := 1; i < len(cands); i++ {
				if cands[i-1].Index() >= cands[i].Index() {
					t.Fatalf("%s: candidates out of order: %v", alg.Name(), cands)
				}
			}
		}
	}
}

// TestRouteToSelfPanics: algorithms must not be asked to route a packet
// already at its destination.
func TestRouteToSelfPanics(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for cur == dst")
		}
	}()
	NewWestFirst(topo).Candidates(3, 3, Injected, nil)
}

func TestConstructorPanics(t *testing.T) {
	mesh3 := topology.NewMesh(3, 3, 3)
	for name, fn := range map[string]func(){
		"west-first 3D":   func() { NewWestFirst(mesh3) },
		"north-last 3D":   func() { NewNorthLast(mesh3) },
		"abonf range":     func() { NewABONF(mesh3, 3) },
		"abopl range":     func() { NewABOPL(mesh3, -1) },
		"pcube non-cube":  func() { NewPCube(topology.NewMesh(4, 4)) },
		"nf-torus mesh":   func() { NewNegativeFirstTorus(topology.NewMesh(4, 4)) },
		"wrap-first mesh": func() { NewWrapFirstHop(NewNegativeFirst(topology.NewMesh(4, 4))) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestAlgorithmNames(t *testing.T) {
	mesh := topology.NewMesh(8, 8)
	cube := topology.NewHypercube(6)
	cases := map[string]Algorithm{
		"xy":             NewDimensionOrder(mesh),
		"e-cube":         NewDimensionOrder(cube),
		"west-first":     NewWestFirst(mesh),
		"north-last":     NewNorthLast(mesh),
		"negative-first": NewNegativeFirst(mesh),
		"p-cube":         NewNegativeFirst(cube),
		"fully-adaptive": NewFullyAdaptive(mesh),
	}
	for want, alg := range cases {
		if alg.Name() != want {
			t.Errorf("Name() = %q, want %q", alg.Name(), want)
		}
		if alg.Topology() == nil {
			t.Errorf("%s: nil topology", want)
		}
	}
}
