package routing

import (
	"turnmodel/internal/topology"
)

// DoubleY is a maximally (fully) adaptive routing algorithm for 2D
// meshes with one extra channel in the y direction — the application of
// the turn model to networks with extra channels that the paper defers
// to its companion work [18] ("Adding extra physical or virtual channels
// to the topologies allows the model to produce fully adaptive routing
// algorithms").
//
// Construction (Step 1 of the model: treat the two y channels as two
// virtual directions, then prohibit turns between the enlarged direction
// set): y moves travel on class 0 while the packet still needs to travel
// west and on class 1 once it only travels east (or is done with x);
// x moves use their single channel. Every profitable physical direction
// is always offered — the relation is minimal fully adaptive — yet the
// virtual channel dependency graph is acyclic:
//
//   - the class-0 sub-network {west, north0, south0} contains no
//     eastward channels, so its plane cycles are broken at the turns
//     into east;
//   - the class-1 sub-network {east, north1, south1} contains no
//     westward channels, so its cycles are broken at the turns into
//     west;
//   - transitions go only from class 0 to class 1 (a minimal packet's
//     remaining westward distance never increases), never back.
//
// CheckVC verifies the acyclicity exhaustively in the tests. On the
// simulator the second y channel costs one extra buffer per y input —
// the "expense of adding virtual channels" the paper weighs against its
// extra-channel-free algorithms.
type DoubleY struct{ base }

// NewDoubleY returns fully adaptive double-y-channel routing on 2D
// mesh t.
func NewDoubleY(t *topology.Topology) *DoubleY {
	if t.NumDims() != 2 || t.Kind() != topology.KindMesh {
		panic("routing: double-y routing requires a 2D mesh")
	}
	return &DoubleY{base{topo: t, name: "double-y"}}
}

// NumVCs implements VCAlgorithm. Both physical directions get two
// virtual channels in the simulator's uniform layout; the x channels
// simply never use class 1.
func (a *DoubleY) NumVCs() int { return 2 }

// ArrivalInvariant marks the relation compilable: the y-channel class
// depends only on the remaining x offset, never on the arrival port.
func (a *DoubleY) ArrivalInvariant() bool { return true }

// CandidatesVC implements VCAlgorithm: all profitable directions, with
// y moves classed by the remaining westward need.
func (a *DoubleY) CandidatesVC(cur, dst topology.NodeID, _ VCInPort, buf []VirtualDirection) []VirtualDirection {
	a.checkDistinct(cur, dst)
	dx := a.topo.Delta(cur, dst, 0)
	dy := a.topo.Delta(cur, dst, 1)
	yClass := 1
	if dx < 0 {
		yClass = 0
	}
	if dx < 0 {
		buf = append(buf, VirtualDirection{Dir: topology.Direction{Dim: 0}})
	} else if dx > 0 {
		buf = append(buf, VirtualDirection{Dir: topology.Direction{Dim: 0, Pos: true}})
	}
	if dy < 0 {
		buf = append(buf, VirtualDirection{Dir: topology.Direction{Dim: 1}, VC: yClass})
	} else if dy > 0 {
		buf = append(buf, VirtualDirection{Dir: topology.Direction{Dim: 1, Pos: true}, VC: yClass})
	}
	return buf
}
