package routing

import (
	"math/rand"
	"testing"

	"turnmodel/internal/topology"
)

// TestWrapFirstHopDelivery: every pair is delivered; a wraparound is
// only ever taken on the first hop.
func TestWrapFirstHopDelivery(t *testing.T) {
	topo := topology.NewTorus(6, 2)
	alg := NewWrapFirstHop(NewNegativeFirst(topo))
	rng := rand.New(rand.NewSource(8))
	sel := func(_, _ topology.NodeID, cands []topology.Direction) topology.Direction {
		return cands[rng.Intn(len(cands))]
	}
	wrapUsed := 0
	for src := topology.NodeID(0); src < topology.NodeID(topo.Nodes()); src++ {
		for dst := topology.NodeID(0); dst < topology.NodeID(topo.Nodes()); dst++ {
			if src == dst {
				continue
			}
			path, err := Walk(alg, src, dst, sel)
			if err != nil {
				t.Fatalf("%d->%d: %v", src, dst, err)
			}
			for i := 1; i < len(path); i++ {
				cross := false
				for dim := 0; dim < 2; dim++ {
					a, b := topo.CoordOf(path[i-1], dim), topo.CoordOf(path[i], dim)
					if a != b && abs(a-b) != 1 {
						cross = true
					}
				}
				if cross {
					wrapUsed++
					if i != 1 {
						t.Fatalf("wraparound used on hop %d of %v", i, path)
					}
				}
			}
		}
	}
	if wrapUsed == 0 {
		t.Error("no pair ever used a wraparound channel; the extension is inert")
	}
}

// TestWrapFirstHopShortensPaths: for nodes on opposite edges the
// wraparound must make paths shorter than the pure mesh route.
func TestWrapFirstHopShortensPaths(t *testing.T) {
	topo := topology.NewTorus(8, 2)
	alg := NewWrapFirstHop(NewNegativeFirst(topo))
	src := topo.ID(topology.Coord{7, 3})
	dst := topo.ID(topology.Coord{0, 3})
	cands := CandidateList(alg, src, dst, Injected)
	hasWrap := false
	for _, d := range cands {
		if topo.IsWraparound(topology.Channel{From: src, Dir: d}) {
			hasWrap = true
		}
	}
	if !hasWrap {
		t.Fatalf("first hop candidates %v lack the wraparound", cands)
	}
	// The greedy selector prefers distance-reducing moves, so it takes
	// the wraparound (the default lowest-dimension policy would walk the
	// mesh).
	path, err := Walk(alg, src, dst, GreedySelector(topo))
	if err != nil {
		t.Fatal(err)
	}
	if len(path)-1 != 1 {
		t.Errorf("edge-to-edge path took %d hops, want 1 via wraparound", len(path)-1)
	}
}

// TestNegativeFirstTorusDelivery: strictly nonminimal classified-channel
// negative-first reaches every destination, and phase 1 (negative moves,
// including high-to-low wraparounds) always precedes phase 2.
func TestNegativeFirstTorusDelivery(t *testing.T) {
	topo := topology.NewTorus(5, 2)
	alg := NewNegativeFirstTorus(topo)
	rng := rand.New(rand.NewSource(9))
	sel := func(_, _ topology.NodeID, cands []topology.Direction) topology.Direction {
		return cands[rng.Intn(len(cands))]
	}
	for src := topology.NodeID(0); src < topology.NodeID(topo.Nodes()); src++ {
		for dst := topology.NodeID(0); dst < topology.NodeID(topo.Nodes()); dst++ {
			if src == dst {
				continue
			}
			path, err := Walk(alg, src, dst, sel)
			if err != nil {
				t.Fatalf("%d->%d: %v", src, dst, err)
			}
			// Classified direction of each hop: negative when the
			// coordinate decreased (including a wrap from k-1 to 0).
			positiveSeen := false
			for i := 1; i < len(path); i++ {
				var negative bool
				for dim := 0; dim < 2; dim++ {
					a, b := topo.CoordOf(path[i-1], dim), topo.CoordOf(path[i], dim)
					if a == b {
						continue
					}
					negative = b < a
				}
				if negative && positiveSeen {
					t.Fatalf("negative classified move after positive on %v", path)
				}
				if !negative {
					positiveSeen = true
				}
			}
		}
	}
}

// TestNegativeFirstTorusUsesWraparound: a packet at the high edge headed
// to a much lower coordinate may take the classified-negative
// wraparound.
func TestNegativeFirstTorusUsesWraparound(t *testing.T) {
	topo := topology.NewTorus(8, 2)
	alg := NewNegativeFirstTorus(topo)
	src := topo.ID(topology.Coord{7, 0})
	dst := topo.ID(topology.Coord{1, 0})
	cands := CandidateList(alg, src, dst, Injected)
	var hasMeshWest, hasWrap bool
	for _, d := range cands {
		if topo.IsWraparound(topology.Channel{From: src, Dir: d}) {
			hasWrap = true
		} else if d.Dim == 0 && !d.Pos {
			hasMeshWest = true
		}
	}
	if !hasMeshWest || !hasWrap {
		t.Errorf("east-edge node should offer both channels to the west (mesh and wraparound), got %v", cands)
	}
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}
