package routing

import (
	"fmt"

	"turnmodel/internal/topology"
)

// This file adds virtual channels, Step 1 of the turn model: "If each
// node has v channels in a physical direction, treat these channels as
// being in v distinct virtual directions and divide them into v distinct
// sets accordingly." The paper's own algorithms need no extra channels;
// virtual channels are what its Section 4.2 identifies as the price of
// MINIMAL deadlock-free routing on k-ary n-cubes (k > 4), implemented
// here as the classic Dally-Seitz dateline scheme for comparison with
// the paper's strictly nonminimal extensions.

// VirtualDirection is one virtual channel of a physical direction.
type VirtualDirection struct {
	Dir topology.Direction
	VC  int
}

func (v VirtualDirection) String() string {
	return fmt.Sprintf("%s/vc%d", v.Dir, v.VC)
}

// VCInPort describes how a packet arrived at a router in a
// virtual-channel network.
type VCInPort struct {
	Injected bool
	Dir      topology.Direction
	VC       int
}

// VCInjected is the VCInPort of a packet at its source.
var VCInjected = VCInPort{Injected: true}

// VCArrived returns the VCInPort of a packet that arrived on vd.
func VCArrived(vd VirtualDirection) VCInPort {
	return VCInPort{Dir: vd.Dir, VC: vd.VC}
}

// VCAlgorithm is a routing relation over virtual channels. Every
// Algorithm is a VCAlgorithm with one virtual channel per direction via
// AsVC.
type VCAlgorithm interface {
	// Name identifies the algorithm.
	Name() string
	// Topology returns the network routed on.
	Topology() *topology.Topology
	// NumVCs returns the number of virtual channels multiplexed on each
	// physical channel.
	NumVCs() int
	// CandidatesVC appends the permitted virtual output directions for a
	// packet at cur destined for dst that arrived via in. The same
	// contract as Algorithm.Candidates, lifted to virtual directions.
	CandidatesVC(cur, dst topology.NodeID, in VCInPort, buf []VirtualDirection) []VirtualDirection
}

// singleVC adapts a plain Algorithm to the VCAlgorithm interface with
// one virtual channel.
type singleVC struct {
	Algorithm
}

// AsVC returns alg viewed as a VCAlgorithm with a single virtual
// channel. If alg already implements VCAlgorithm it is returned as is.
func AsVC(alg Algorithm) VCAlgorithm {
	if v, ok := alg.(VCAlgorithm); ok {
		return v
	}
	return singleVC{alg}
}

func (s singleVC) NumVCs() int { return 1 }

// ArrivalInvariant forwards the wrapped algorithm's marker: the adapter
// adds no arrival dependence of its own.
func (s singleVC) ArrivalInvariant() bool {
	a, ok := s.Algorithm.(ArrivalInvariant)
	return ok && a.ArrivalInvariant()
}

func (s singleVC) CandidatesVC(cur, dst topology.NodeID, in VCInPort, buf []VirtualDirection) []VirtualDirection {
	var ip InPort
	if in.Injected {
		ip = Injected
	} else {
		ip = Arrived(in.Dir)
	}
	var tmp [16]topology.Direction
	for _, d := range s.Algorithm.Candidates(cur, dst, ip, tmp[:0]) {
		buf = append(buf, VirtualDirection{Dir: d})
	}
	return buf
}

// TorusDOR is minimal dimension-order routing on a k-ary n-cube USING
// wraparound channels but WITHOUT virtual channels. Per Section 4.2 it
// is not deadlock free for k > 4 (rings have channel cycles that
// involve no turns at all); it exists as the demonstration subject for
// that impossibility, the torus counterpart of FullyAdaptive.
type TorusDOR struct{ base }

// NewTorusDOR returns the (deadlock-prone) minimal dimension-order
// relation on torus t.
func NewTorusDOR(t *topology.Topology) *TorusDOR {
	if t.Kind() != topology.KindTorus {
		panic("routing: TorusDOR requires a torus")
	}
	return &TorusDOR{base{topo: t, name: "torus-dor"}}
}

// ArrivalInvariant marks the relation compilable: Candidates ignores
// the arrival port.
func (a *TorusDOR) ArrivalInvariant() bool { return true }

// Candidates implements Algorithm: the shortest-way direction in the
// lowest unresolved dimension, wrapping when shorter.
func (a *TorusDOR) Candidates(cur, dst topology.NodeID, _ InPort, buf []topology.Direction) []topology.Direction {
	a.checkDistinct(cur, dst)
	for dim := 0; dim < a.topo.NumDims(); dim++ {
		d := a.topo.MinDelta(cur, dst, dim)
		if d != 0 {
			return append(buf, topology.Direction{Dim: dim, Pos: d > 0})
		}
	}
	panic("routing: unreachable: cur == dst")
}

// DatelineDOR is minimal dimension-order routing on a k-ary n-cube with
// two virtual channels per physical channel, deadlock free by the
// Dally-Seitz dateline argument: within each dimension a packet travels
// on VC 1 while it still has the wraparound ("dateline") crossing ahead
// of it and on VC 0 afterwards, so virtual channel numbers strictly
// increase around each ring. This is the extra-channel approach the
// paper contrasts the turn model with.
type DatelineDOR struct{ base }

// NewDatelineDOR returns dateline dimension-order routing on torus t.
func NewDatelineDOR(t *topology.Topology) *DatelineDOR {
	if t.Kind() != topology.KindTorus {
		panic("routing: DatelineDOR requires a torus")
	}
	return &DatelineDOR{base{topo: t, name: "dateline-dor"}}
}

// NumVCs implements VCAlgorithm.
func (a *DatelineDOR) NumVCs() int { return 2 }

// ArrivalInvariant marks the relation compilable: the dateline class is
// a function of position alone, never of the arrival port.
func (a *DatelineDOR) ArrivalInvariant() bool { return true }

// Topology implements VCAlgorithm (promoted from base).

// vcFor returns the virtual channel class for a hop from cur moving s
// in dimension dim toward coordinate dstC: class 1 while the dateline
// (the wraparound edge) is still ahead, class 0 after crossing it. The
// decision is stateless: a packet that must wrap has not crossed yet
// exactly when its remaining movement passes the edge.
func (a *DatelineDOR) vcFor(cur topology.NodeID, dim int, pos bool, dstC int) int {
	x := a.topo.CoordOf(cur, dim)
	if pos {
		if dstC < x {
			return 1 // will cross k-1 -> 0 ahead
		}
		return 0
	}
	if dstC > x {
		return 1 // will cross 0 -> k-1 ahead
	}
	return 0
}

// CandidatesVC implements VCAlgorithm.
func (a *DatelineDOR) CandidatesVC(cur, dst topology.NodeID, _ VCInPort, buf []VirtualDirection) []VirtualDirection {
	a.checkDistinct(cur, dst)
	for dim := 0; dim < a.topo.NumDims(); dim++ {
		d := a.topo.MinDelta(cur, dst, dim)
		if d == 0 {
			continue
		}
		pos := d > 0
		vc := a.vcFor(cur, dim, pos, a.topo.CoordOf(dst, dim))
		return append(buf, VirtualDirection{Dir: topology.Direction{Dim: dim, Pos: pos}, VC: vc})
	}
	panic("routing: unreachable: cur == dst")
}

// WalkVC traces one packet under a VC-aware relation, returning the
// nodes visited. It follows the first candidate at each hop.
func WalkVC(alg VCAlgorithm, src, dst topology.NodeID) ([]topology.NodeID, error) {
	t := alg.Topology()
	path := []topology.NodeID{src}
	cur, in := src, VCInjected
	maxHops := t.NumChannelIDs()*alg.NumVCs() + 1
	var buf []VirtualDirection
	for cur != dst {
		if len(path) > maxHops {
			return path, fmt.Errorf("routing: %s VC walk exceeded %d hops", alg.Name(), maxHops)
		}
		buf = alg.CandidatesVC(cur, dst, in, buf[:0])
		if len(buf) == 0 {
			return path, fmt.Errorf("routing: %s has no VC candidates at node %d for destination %d", alg.Name(), cur, dst)
		}
		vd := buf[0]
		next, ok := t.Neighbor(cur, vd.Dir)
		if !ok {
			return path, fmt.Errorf("routing: %s chose nonexistent channel %v at node %d", alg.Name(), vd, cur)
		}
		cur, in = next, VCArrived(vd)
		path = append(path, cur)
	}
	return path, nil
}
