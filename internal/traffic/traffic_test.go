package traffic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"turnmodel/internal/topology"
)

// TestAveragePathLengths reproduces the Section 6 path-length figures:
// 10.61/11.34 hops in the 16x16 mesh (uniform/transpose) and 4.01/4.27
// in the 8-cube (uniform/reverse-flip). The uniform figures are exact
// expectations (the paper's 10.61 and 4.01 carry sampling noise; the
// closed forms give 10.67 and 4.02).
func TestAveragePathLengths(t *testing.T) {
	mesh := topology.NewMesh(16, 16)
	cube := topology.NewHypercube(8)
	cases := []struct {
		name string
		got  float64
		want float64
		tol  float64
	}{
		{"mesh uniform", AverageUniformPathLength(mesh), 10.625, 0.06},
		{"mesh transpose", AveragePathLength(mesh, NewMeshTranspose(mesh)), 11.333, 0.01},
		{"cube uniform", AverageUniformPathLength(cube), 4.0157, 0.01},
		{"cube transpose", AveragePathLength(cube, NewHypercubeTranspose(cube)), 4.2667, 0.01},
		{"cube reverse-flip", AveragePathLength(cube, NewReverseFlip(cube)), 4.2667, 0.01},
	}
	for _, c := range cases {
		if math.Abs(c.got-c.want) > c.tol {
			t.Errorf("%s: %.4f, want %.4f", c.name, c.got, c.want)
		}
	}
}

// TestMeshTransposeInvolution: applying the transpose twice returns the
// source; the silent diagonal has exactly k nodes.
func TestMeshTransposeInvolution(t *testing.T) {
	mesh := topology.NewMesh(16, 16)
	p := NewMeshTranspose(mesh)
	silent := 0
	for src := topology.NodeID(0); src < topology.NodeID(mesh.Nodes()); src++ {
		d := p.Dest(src, nil)
		if d == src {
			silent++
			continue
		}
		if back := p.Dest(d, nil); back != src {
			t.Fatalf("transpose not an involution at %d: %d -> %d", src, d, back)
		}
	}
	if silent != 16 {
		t.Errorf("%d silent nodes, want 16 (the diagonal)", silent)
	}
}

// TestMeshTransposeSignStructure: every transpose message has equal
// per-dimension offsets — the property that places all transpose pairs
// in the multinomial branch of the negative-first adaptiveness formula
// and underlies the Figure 14 result.
func TestMeshTransposeSignStructure(t *testing.T) {
	mesh := topology.NewMesh(16, 16)
	p := NewMeshTranspose(mesh)
	for src := topology.NodeID(0); src < topology.NodeID(mesh.Nodes()); src++ {
		d := p.Dest(src, nil)
		if d == src {
			continue
		}
		dx := mesh.Delta(src, d, 0)
		dy := mesh.Delta(src, d, 1)
		if dx != dy {
			t.Fatalf("node %d: offsets (%d, %d) not equal", src, dx, dy)
		}
	}
}

// TestHypercubeTransposeFormula checks the paper's explicit n=8 bit
// mapping: (x0..x7) -> (^x4, x5, x6, x7, ^x0, x1, x2, x3).
func TestHypercubeTransposeFormula(t *testing.T) {
	cube := topology.NewHypercube(8)
	p := NewHypercubeTranspose(cube)
	for src := topology.NodeID(0); src < 256; src++ {
		got := uint(p.Dest(src, nil))
		x := func(i int) uint { return uint(src) >> i & 1 }
		var want uint
		bits := []uint{x(4) ^ 1, x(5), x(6), x(7), x(0) ^ 1, x(1), x(2), x(3)}
		for i, b := range bits {
			want |= b << i
		}
		if got != want {
			t.Fatalf("node %08b: got %08b, want %08b", uint(src), got, want)
		}
	}
}

// TestHypercubeTransposeEmbedding: the pattern is the mesh transpose
// under an embedding where mesh neighbors are hypercube neighbors, so it
// must be an involution with 16 fixed points (like the mesh diagonal).
func TestHypercubeTransposeEmbedding(t *testing.T) {
	cube := topology.NewHypercube(8)
	p := NewHypercubeTranspose(cube)
	fixed := 0
	for src := topology.NodeID(0); src < 256; src++ {
		d := p.Dest(src, nil)
		if d == src {
			fixed++
			continue
		}
		if p.Dest(d, nil) != src {
			t.Fatalf("not an involution at %d", src)
		}
	}
	if fixed != 16 {
		t.Errorf("%d fixed points, want 16", fixed)
	}
}

// TestReverseFlip: y_i = ^x_{n-1-i}; involution; 16 fixed points in the
// 8-cube.
func TestReverseFlip(t *testing.T) {
	cube := topology.NewHypercube(8)
	p := NewReverseFlip(cube)
	fixed := 0
	for src := topology.NodeID(0); src < 256; src++ {
		got := uint(p.Dest(src, nil))
		var want uint
		for i := 0; i < 8; i++ {
			bit := uint(src) >> i & 1
			want |= (bit ^ 1) << (7 - i)
		}
		if got != want {
			t.Fatalf("node %08b: got %08b, want %08b", uint(src), got, want)
		}
		if got == uint(src) {
			fixed++
		} else if uint(p.Dest(topology.NodeID(got), nil)) != uint(src) {
			t.Fatalf("not an involution at %d", src)
		}
	}
	if fixed != 16 {
		t.Errorf("%d fixed points, want 16", fixed)
	}
	// The paper's example: reverse-flip of (x0..x7).
	src := topology.NodeID(0b00000000)
	if p.Dest(src, nil) != topology.NodeID(0b11111111) {
		t.Error("reverse-flip of all-zeros should be all-ones")
	}
}

// TestUniformNeverSelf and covers all destinations.
func TestUniformNeverSelf(t *testing.T) {
	mesh := topology.NewMesh(4, 4)
	p := NewUniform(mesh)
	rng := rand.New(rand.NewSource(1))
	f := func(raw uint8) bool {
		src := topology.NodeID(int(raw) % mesh.Nodes())
		return p.Dest(src, rng) != src
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	// Coverage: over many draws every other node appears.
	seen := map[topology.NodeID]bool{}
	for i := 0; i < 5000; i++ {
		seen[p.Dest(0, rng)] = true
	}
	if len(seen) != mesh.Nodes()-1 {
		t.Errorf("uniform covered %d destinations, want %d", len(seen), mesh.Nodes()-1)
	}
}

// TestBitComplement: involution, never self (every k_i even here), and
// maximal distance.
func TestBitComplement(t *testing.T) {
	mesh := topology.NewMesh(8, 8)
	p := NewBitComplement(mesh)
	for src := topology.NodeID(0); src < topology.NodeID(mesh.Nodes()); src++ {
		d := p.Dest(src, nil)
		if d == src {
			t.Fatalf("complement fixed point at %d", src)
		}
		if p.Dest(d, nil) != src {
			t.Fatalf("complement not an involution at %d", src)
		}
	}
	// Corner goes to opposite corner.
	if p.Dest(mesh.ID(topology.Coord{0, 0}), nil) != mesh.ID(topology.Coord{7, 7}) {
		t.Error("complement of the origin should be the far corner")
	}
}

// TestHotspot: roughly fraction p of messages hit the hot node.
func TestHotspot(t *testing.T) {
	mesh := topology.NewMesh(8, 8)
	hot := mesh.ID(topology.Coord{3, 3})
	p := NewHotspot(mesh, hot, 0.3)
	rng := rand.New(rand.NewSource(2))
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if p.Dest(0, rng) == hot {
			hits++
		}
	}
	got := float64(hits) / n
	// 30% direct plus ~1/255 of the uniform remainder.
	if math.Abs(got-0.3) > 0.02 {
		t.Errorf("hotspot fraction %.3f, want about 0.30", got)
	}
	// The hot node itself sends uniformly.
	if p.Dest(hot, rng) == hot {
		t.Error("hot node should not send to itself")
	}
}

// TestDeterministicFlags.
func TestDeterministicFlags(t *testing.T) {
	mesh := topology.NewMesh(16, 16)
	cube := topology.NewHypercube(8)
	if NewUniform(mesh).Deterministic() || NewHotspot(mesh, 0, 0.1).Deterministic() {
		t.Error("stochastic patterns misreport Deterministic")
	}
	for _, p := range []Pattern{NewMeshTranspose(mesh), NewHypercubeTranspose(cube), NewReverseFlip(cube), NewBitComplement(mesh)} {
		if !p.Deterministic() {
			t.Errorf("%s should be deterministic", p.Name())
		}
	}
}

// TestConstructorPanics.
func TestConstructorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"transpose non-square":  func() { NewMeshTranspose(topology.NewMesh(4, 5)) },
		"transpose 3D":          func() { NewMeshTranspose(topology.NewMesh(4, 4, 4)) },
		"cube transpose odd":    func() { NewHypercubeTranspose(topology.NewHypercube(7)) },
		"cube transpose mesh":   func() { NewHypercubeTranspose(topology.NewMesh(4, 4)) },
		"reverse-flip non-cube": func() { NewReverseFlip(topology.NewMesh(4, 4)) },
		"hotspot bad p":         func() { NewHotspot(topology.NewMesh(4, 4), 0, 1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestAveragePathLengthPanicsOnStochastic.
func TestAveragePathLengthPanicsOnStochastic(t *testing.T) {
	mesh := topology.NewMesh(4, 4)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	AveragePathLength(mesh, NewUniform(mesh))
}

// TestTornado: permutation-like offsets; on a torus every message has
// the same per-dimension offset just under half way.
func TestTornado(t *testing.T) {
	tor := topology.NewTorus(8, 2)
	p := NewTornado(tor)
	for src := topology.NodeID(0); src < topology.NodeID(tor.Nodes()); src++ {
		d := p.Dest(src, nil)
		if d == src {
			t.Fatalf("tornado fixed point at %d", src)
		}
		for dim := 0; dim < 2; dim++ {
			off := (tor.CoordOf(d, dim) - tor.CoordOf(src, dim) + 8) % 8
			if off != 3 {
				t.Fatalf("tornado offset %d, want 3", off)
			}
		}
		// Distance is the near-half-ring distance in each dimension.
		if tor.Distance(src, d) != 6 {
			t.Fatalf("tornado distance %d, want 6", tor.Distance(src, d))
		}
	}
	if !p.Deterministic() || p.Name() != "tornado" {
		t.Error("metadata wrong")
	}
}

// TestBitReversalAndShuffle: involutions/permutations on the hypercube.
func TestBitReversalAndShuffle(t *testing.T) {
	cube := topology.NewHypercube(8)
	rev := NewBitReversal(cube)
	seen := map[topology.NodeID]bool{}
	for src := topology.NodeID(0); src < 256; src++ {
		d := rev.Dest(src, nil)
		if rev.Dest(d, nil) != src {
			t.Fatalf("bit reversal not an involution at %d", src)
		}
		seen[d] = true
	}
	if len(seen) != 256 {
		t.Errorf("bit reversal not a permutation: %d images", len(seen))
	}
	sh := NewShuffle(cube)
	if sh.Dest(0b00000001, nil) != 0b00000010 {
		t.Error("shuffle should rotate left")
	}
	if sh.Dest(0b10000000, nil) != 0b00000001 {
		t.Error("shuffle should wrap the top bit")
	}
	// Applying shuffle n times is the identity.
	x := topology.NodeID(0b10110010)
	y := x
	for i := 0; i < 8; i++ {
		y = sh.Dest(y, nil)
	}
	if y != x {
		t.Errorf("shuffle^8 should be identity, got %08b", uint(y))
	}
	for name, fn := range map[string]func(){
		"bit-reversal on mesh": func() { NewBitReversal(topology.NewMesh(4, 4)) },
		"shuffle on mesh":      func() { NewShuffle(topology.NewMesh(4, 4)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
