// Package traffic provides the message traffic patterns of Section 6 —
// uniform, matrix-transpose (for meshes and, via the paper's mesh
// embedding, for hypercubes), and reverse-flip — plus bit-complement and
// hotspot extensions.
//
// A pattern maps a source node to a destination. Patterns may be
// deterministic (transpose, reverse-flip) or stochastic (uniform,
// hotspot). A pattern returning the source itself means the node
// generates no traffic: the diagonal of a matrix transpose and the fixed
// points of reverse-flip send no messages, which is what produces the
// paper's average path lengths of 11.34 hops (mesh transpose) and 4.27
// hops (cube reverse-flip).
package traffic

import (
	"fmt"
	"math/rand"

	"turnmodel/internal/topology"
)

// Pattern selects a destination for each message.
type Pattern interface {
	// Name identifies the pattern.
	Name() string
	// Dest returns the destination of a message generated at src, or src
	// itself to indicate that src generates no traffic. rng is used by
	// stochastic patterns and must not be retained.
	Dest(src topology.NodeID, rng *rand.Rand) topology.NodeID
	// Deterministic reports whether Dest ignores rng.
	Deterministic() bool
}

// Uniform sends each message to any of the other nodes with equal
// probability.
type Uniform struct {
	t *topology.Topology
}

// NewUniform returns the uniform pattern on t.
func NewUniform(t *topology.Topology) *Uniform { return &Uniform{t: t} }

// Name implements Pattern.
func (u *Uniform) Name() string { return "uniform" }

// Deterministic implements Pattern.
func (u *Uniform) Deterministic() bool { return false }

// Dest implements Pattern.
func (u *Uniform) Dest(src topology.NodeID, rng *rand.Rand) topology.NodeID {
	d := topology.NodeID(rng.Intn(u.t.Nodes() - 1))
	if d >= src {
		d++
	}
	return d
}

// MeshTranspose sends each message from the node at row i, column j of a
// square 2D mesh to the node at row j, column i. Diagonal nodes (i == j)
// generate no traffic.
//
// Rows follow matrix convention and grow southward: row i, column j is
// the node (x, y) = (j, k-1-i) in mesh coordinates (north = +y). The
// transpose destination is therefore (k-1-y, k-1-x): both coordinate
// offsets have the same sign for every message. This orientation is what
// the paper's results imply: it makes every transpose message fall in
// the multinomial branch of the Section 3.4 S_negative-first formula
// (fully adaptive under negative-first), which is why negative-first
// posts the highest sustainable mesh throughput in Figure 14. The
// opposite orientation would make every transpose pair mixed-sign,
// leaving negative-first a single path and indistinguishable from xy.
// The average path length (11.34 hops excluding the silent diagonal) is
// the same either way.
type MeshTranspose struct {
	t *topology.Topology
}

// NewMeshTranspose returns the matrix-transpose pattern on square 2D
// mesh t.
func NewMeshTranspose(t *topology.Topology) *MeshTranspose {
	if t.NumDims() != 2 || t.Dims()[0] != t.Dims()[1] {
		panic("traffic: matrix transpose requires a square 2D mesh")
	}
	return &MeshTranspose{t: t}
}

// Name implements Pattern.
func (m *MeshTranspose) Name() string { return "matrix-transpose" }

// Deterministic implements Pattern.
func (m *MeshTranspose) Deterministic() bool { return true }

// Dest implements Pattern.
func (m *MeshTranspose) Dest(src topology.NodeID, _ *rand.Rand) topology.NodeID {
	k := m.t.Dims()[0]
	x := m.t.CoordOf(src, 0)
	y := m.t.CoordOf(src, 1)
	return m.t.ID(topology.Coord{k - 1 - y, k - 1 - x})
}

// HypercubeTranspose is the paper's matrix-transpose pattern for a
// binary n-cube with even n: a 2^(n/2) x 2^(n/2) mesh is mapped to the
// hypercube so that mesh neighbors are hypercube neighbors, and messages
// follow the mesh transpose. For n = 8 the resulting pattern sends each
// message from (x0,...,x7) to (^x4, x5, x6, x7, ^x0, x1, x2, x3): the
// two address halves swap, each with its leading bit complemented.
// Fixed points generate no traffic.
type HypercubeTranspose struct {
	t *topology.Topology
}

// NewHypercubeTranspose returns the embedded transpose pattern on
// hypercube t, which must have an even number of dimensions.
func NewHypercubeTranspose(t *topology.Topology) *HypercubeTranspose {
	if !t.IsHypercube() || t.NumDims()%2 != 0 {
		panic("traffic: hypercube transpose requires a hypercube with even dimension count")
	}
	return &HypercubeTranspose{t: t}
}

// Name implements Pattern.
func (h *HypercubeTranspose) Name() string { return "matrix-transpose" }

// Deterministic implements Pattern.
func (h *HypercubeTranspose) Deterministic() bool { return true }

// Dest implements Pattern.
func (h *HypercubeTranspose) Dest(src topology.NodeID, _ *rand.Rand) topology.NodeID {
	n := h.t.NumDims()
	half := n / 2
	x := uint64(src)
	lo := x & (1<<uint(half) - 1)
	hi := x >> uint(half)
	// Swap halves; complement the leading (lowest-index) bit of each.
	y := (lo<<uint(half) | hi) ^ 1 ^ (1 << uint(half))
	return topology.NodeID(y)
}

// ReverseFlip sends each message from (x_0, ..., x_{n-1}) to
// (^x_{n-1}, ..., ^x_0): the address reversed and complemented. Fixed
// points (for even n there are 2^(n/2)) generate no traffic.
type ReverseFlip struct {
	t *topology.Topology
}

// NewReverseFlip returns the reverse-flip pattern on hypercube t.
func NewReverseFlip(t *topology.Topology) *ReverseFlip {
	if !t.IsHypercube() {
		panic("traffic: reverse-flip requires a hypercube")
	}
	return &ReverseFlip{t: t}
}

// Name implements Pattern.
func (r *ReverseFlip) Name() string { return "reverse-flip" }

// Deterministic implements Pattern.
func (r *ReverseFlip) Deterministic() bool { return true }

// Dest implements Pattern.
func (r *ReverseFlip) Dest(src topology.NodeID, _ *rand.Rand) topology.NodeID {
	n := r.t.NumDims()
	x := uint64(src)
	var y uint64
	for i := 0; i < n; i++ {
		bit := x >> uint(i) & 1
		y |= (bit ^ 1) << uint(n-1-i)
	}
	return topology.NodeID(y)
}

// BitComplement sends each message from x to ^x (all coordinates
// mirrored), a classic adversarial pattern for meshes and hypercubes.
type BitComplement struct {
	t *topology.Topology
}

// NewBitComplement returns the complement pattern on t: each coordinate
// x_i maps to k_i - 1 - x_i.
func NewBitComplement(t *topology.Topology) *BitComplement { return &BitComplement{t: t} }

// Name implements Pattern.
func (b *BitComplement) Name() string { return "bit-complement" }

// Deterministic implements Pattern.
func (b *BitComplement) Deterministic() bool { return true }

// Dest implements Pattern.
func (b *BitComplement) Dest(src topology.NodeID, _ *rand.Rand) topology.NodeID {
	c := b.t.Coord(src)
	for i, k := range b.t.Dims() {
		c[i] = k - 1 - c[i]
	}
	return b.t.ID(c)
}

// Hotspot sends each message to a fixed hot node with probability P and
// uniformly otherwise, modeling the hot-spot traffic the paper's
// introduction motivates adaptive routing with.
type Hotspot struct {
	t   *topology.Topology
	hot topology.NodeID
	p   float64
	uni *Uniform
}

// NewHotspot returns a hotspot pattern directing fraction p of traffic
// at node hot.
func NewHotspot(t *topology.Topology, hot topology.NodeID, p float64) *Hotspot {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("traffic: hotspot probability %v out of [0,1]", p))
	}
	return &Hotspot{t: t, hot: hot, p: p, uni: NewUniform(t)}
}

// Name implements Pattern.
func (h *Hotspot) Name() string { return fmt.Sprintf("hotspot(%.0f%%@%d)", h.p*100, h.hot) }

// Deterministic implements Pattern.
func (h *Hotspot) Deterministic() bool { return false }

// Dest implements Pattern.
func (h *Hotspot) Dest(src topology.NodeID, rng *rand.Rand) topology.NodeID {
	if src != h.hot && rng.Float64() < h.p {
		return h.hot
	}
	return h.uni.Dest(src, rng)
}

// AveragePathLength returns the mean minimal hop count of messages under
// a deterministic pattern, excluding nodes that generate no traffic.
// This reproduces the paper's reported averages: 11.34 hops for the
// 16x16 mesh transpose and 4.27 for the 8-cube reverse-flip.
func AveragePathLength(t *topology.Topology, p Pattern) float64 {
	if !p.Deterministic() {
		panic("traffic: AveragePathLength requires a deterministic pattern")
	}
	var sum, count float64
	for src := topology.NodeID(0); src < topology.NodeID(t.Nodes()); src++ {
		dst := p.Dest(src, nil)
		if dst == src {
			continue
		}
		sum += float64(t.Distance(src, dst))
		count++
	}
	if count == 0 {
		return 0
	}
	return sum / count
}

// AverageUniformPathLength returns the mean minimal hop count over all
// ordered pairs of distinct nodes, the uniform pattern's expected path
// length (10.61 hops for the 16x16 mesh, 4.01 for the 8-cube, within
// rounding).
func AverageUniformPathLength(t *topology.Topology) float64 {
	var sum float64
	n := t.Nodes()
	for src := topology.NodeID(0); src < topology.NodeID(n); src++ {
		for dst := topology.NodeID(0); dst < topology.NodeID(n); dst++ {
			if src != dst {
				sum += float64(t.Distance(src, dst))
			}
		}
	}
	return sum / float64(n*(n-1))
}

// Tornado sends each message from x to the node offset by just under
// half the ring in every dimension: dst_i = (x_i + ceil(k_i/2) - 1)
// mod k_i. On k-ary n-cubes it is the classic adversary that drives all
// traffic the same way around each ring; on meshes the modular offset
// spreads sources across the far half.
type Tornado struct {
	t *topology.Topology
}

// NewTornado returns the tornado pattern on t.
func NewTornado(t *topology.Topology) *Tornado { return &Tornado{t: t} }

// Name implements Pattern.
func (p *Tornado) Name() string { return "tornado" }

// Deterministic implements Pattern.
func (p *Tornado) Deterministic() bool { return true }

// Dest implements Pattern.
func (p *Tornado) Dest(src topology.NodeID, _ *rand.Rand) topology.NodeID {
	c := p.t.Coord(src)
	for i, k := range p.t.Dims() {
		c[i] = (c[i] + (k+1)/2 - 1) % k
	}
	return p.t.ID(c)
}

// BitReversal sends each message from the node whose binary address is
// b_{n-1}...b_0 to the node b_0...b_{n-1} — the classic FFT
// communication pattern. Hypercubes only.
type BitReversal struct {
	t *topology.Topology
}

// NewBitReversal returns the bit-reversal pattern on hypercube t.
func NewBitReversal(t *topology.Topology) *BitReversal {
	if !t.IsHypercube() {
		panic("traffic: bit-reversal requires a hypercube")
	}
	return &BitReversal{t: t}
}

// Name implements Pattern.
func (p *BitReversal) Name() string { return "bit-reversal" }

// Deterministic implements Pattern.
func (p *BitReversal) Deterministic() bool { return true }

// Dest implements Pattern.
func (p *BitReversal) Dest(src topology.NodeID, _ *rand.Rand) topology.NodeID {
	n := p.t.NumDims()
	x := uint64(src)
	var y uint64
	for i := 0; i < n; i++ {
		y |= (x >> uint(i) & 1) << uint(n-1-i)
	}
	return topology.NodeID(y)
}

// Shuffle sends each message from address b_{n-1}...b_0 to the perfect
// shuffle b_{n-2}...b_0 b_{n-1} (rotate left). Hypercubes only.
type Shuffle struct {
	t *topology.Topology
}

// NewShuffle returns the perfect-shuffle pattern on hypercube t.
func NewShuffle(t *topology.Topology) *Shuffle {
	if !t.IsHypercube() {
		panic("traffic: shuffle requires a hypercube")
	}
	return &Shuffle{t: t}
}

// Name implements Pattern.
func (p *Shuffle) Name() string { return "shuffle" }

// Deterministic implements Pattern.
func (p *Shuffle) Deterministic() bool { return true }

// Dest implements Pattern.
func (p *Shuffle) Dest(src topology.NodeID, _ *rand.Rand) topology.NodeID {
	n := p.t.NumDims()
	x := uint64(src)
	top := x >> uint(n-1) & 1
	y := (x<<1 | top) & (1<<uint(n) - 1)
	return topology.NodeID(y)
}
