// Package metrics is the simulator's low-overhead observability layer:
// per-router and per-channel counters, windowed time-series samples and
// latency histograms, collected by cheap inline counter increments on
// the engine's hot path (the callback Observer in internal/sim remains
// the tracing interface; this package is the counting one).
//
// A Collector is attached to a run through sim.Config.Metrics. The
// engine binds it at construction and then increments the exported
// counter slices directly — no interface dispatch, no per-event
// closures, no allocation in steady state. When no Collector is
// attached the engine's hot path pays exactly one nil check per hook,
// preserving the zero-overhead-when-disabled invariant guarded by
// TestAllocateZeroAllocs.
//
// All quantities are in simulator cycles and flits; exporters report
// the raw units and leave unit conversion to consumers.
package metrics

import (
	"turnmodel/internal/stats"
	"turnmodel/internal/topology"
)

// Config parameterizes a Collector.
type Config struct {
	// Interval is the time-series sampling cadence in cycles. Zero
	// disables sampling; counters are still collected.
	Interval int64
	// ExactLatencies additionally records every delivered packet's
	// latency exactly (unbounded memory on long runs — a debugging
	// flag). The bucketed histogram is always maintained.
	ExactLatencies bool
	// HistogramBucket is the latency histogram bucket width in cycles
	// (default 1).
	HistogramBucket float64
}

// Sample is one windowed time-series observation, taken every
// Config.Interval cycles.
type Sample struct {
	// Cycle is the sample time.
	Cycle int64 `json:"cycle"`
	// DeliveredFlits is the cumulative flit deliveries at the sample.
	DeliveredFlits int64 `json:"delivered_flits"`
	// WindowThroughput is flits delivered per cycle since the previous
	// sample.
	WindowThroughput float64 `json:"window_throughput_flits_per_cycle"`
	// InFlight is the number of packets generated but not yet fully
	// delivered.
	InFlight int64 `json:"in_flight_packets"`
	// BacklogFlits is the flits waiting in source queues.
	BacklogFlits int64 `json:"backlog_flits"`
}

// Collector accumulates one run's metrics. The exported slice fields
// are the engine-facing counters, indexed as documented; everything
// else is accessed through methods. A Collector must not be shared
// between concurrent runs.
type Collector struct {
	cfg Config

	// Per-router counters, indexed by router (node) id.

	// RouterFlits counts flits forwarded out of each router, including
	// ejections to the local processor.
	RouterFlits []int64
	// Grants counts output-channel allocations granted at each router
	// (one per packet per router traversed, ejection included).
	Grants []int64
	// Denials counts allocation attempts that found every permitted
	// output busy. Attempt-based: a sleeping router (off the
	// event-driven allocation worklist) is not re-counted every cycle.
	Denials []int64
	// Misroutes counts granted outputs that did not reduce the distance
	// to the packet's destination.
	Misroutes []int64
	// WaitCycles integrates, over granted headers, the cycles spent
	// between head arrival at the router and allocation. Headers still
	// blocked at the end of the run are not included.
	WaitCycles []int64
	// Occupancy is the current number of buffered flits at each router
	// (all input buffers, injection included); OccIntegral is its
	// per-cycle time integral.
	Occupancy   []int32
	OccIntegral []int64

	// ChannelFlits counts flits per physical output channel, indexed
	// router*nphys+phys exactly like the engine's linkUsed array; slot
	// nphys-1 of each router is the ejection channel.
	ChannelFlits []int64

	// InjectedFlits and DeliveredFlits are network-wide flit totals.
	InjectedFlits  int64
	DeliveredFlits int64

	// Recovery counters, network-wide, incremented by the engine when
	// deadlock recovery is enabled (sim.Config.RecoveryThreshold > 0):
	// Recoveries counts regressive worm aborts, Retries source-level
	// re-injections, PacketsDropped retry-budget exhaustions, and
	// DrainedFlits the flits aborts removed from network buffers.
	Recoveries     int64
	Retries        int64
	PacketsDropped int64
	DrainedFlits   int64

	topo       *topology.Topology
	nphys      int
	cycles     int64
	nextSample int64
	samples    []Sample
	lastDel    int64
	latencies  *stats.Histogram
	epochLats  []stats.Accumulator
	exact      []float64
	bound      bool
}

// New returns an unbound Collector; the engine binds it to a topology
// when the run is constructed.
func New(cfg Config) *Collector {
	if cfg.HistogramBucket <= 0 {
		cfg.HistogramBucket = 1
	}
	return &Collector{cfg: cfg, latencies: stats.NewHistogram(cfg.HistogramBucket)}
}

// Bind sizes the counters for a run on topology t with nphys physical
// output slots per router (2*dims + 1, the last being ejection). The
// engine calls it from New; rebinding resets all counters.
func (m *Collector) Bind(t *topology.Topology, nphys int) {
	n := t.Nodes()
	m.topo = t
	m.nphys = nphys
	m.RouterFlits = make([]int64, n)
	m.Grants = make([]int64, n)
	m.Denials = make([]int64, n)
	m.Misroutes = make([]int64, n)
	m.WaitCycles = make([]int64, n)
	m.Occupancy = make([]int32, n)
	m.OccIntegral = make([]int64, n)
	m.ChannelFlits = make([]int64, n*nphys)
	m.InjectedFlits = 0
	m.DeliveredFlits = 0
	m.Recoveries = 0
	m.Retries = 0
	m.PacketsDropped = 0
	m.DrainedFlits = 0
	m.epochLats = m.epochLats[:0]
	m.cycles = 0
	m.nextSample = m.cfg.Interval
	m.samples = m.samples[:0]
	m.lastDel = 0
	m.latencies = stats.NewHistogram(m.cfg.HistogramBucket)
	m.exact = m.exact[:0]
	m.bound = true
}

// Bound reports whether the collector has been attached to a run.
func (m *Collector) Bound() bool { return m.bound }

// EndCycle accumulates the per-cycle time integrals. The engine calls
// it once per simulated cycle.
func (m *Collector) EndCycle() {
	for i, occ := range m.Occupancy {
		m.OccIntegral[i] += int64(occ)
	}
	m.cycles++
}

// SampleDue reports whether a time-series sample is due at cycle; the
// engine then computes the (more expensive) sampled quantities and
// calls TakeSample. Split so the backlog scan runs only at the
// sampling cadence.
func (m *Collector) SampleDue(cycle int64) bool {
	return m.cfg.Interval > 0 && cycle >= m.nextSample
}

// TakeSample records one time-series sample at cycle.
func (m *Collector) TakeSample(cycle, inFlight, backlogFlits int64) {
	window := m.cfg.Interval
	if len(m.samples) > 0 {
		window = cycle - m.samples[len(m.samples)-1].Cycle
	} else if cycle > 0 {
		window = cycle
	}
	thr := 0.0
	if window > 0 {
		thr = float64(m.DeliveredFlits-m.lastDel) / float64(window)
	}
	m.samples = append(m.samples, Sample{
		Cycle:            cycle,
		DeliveredFlits:   m.DeliveredFlits,
		WindowThroughput: thr,
		InFlight:         inFlight,
		BacklogFlits:     backlogFlits,
	})
	m.lastDel = m.DeliveredFlits
	for m.nextSample <= cycle {
		m.nextSample += m.cfg.Interval
	}
}

// RecordLatency records one delivered packet's latency in cycles.
func (m *Collector) RecordLatency(cycles float64) {
	m.latencies.Add(cycles)
	if m.cfg.ExactLatencies {
		m.exact = append(m.exact, cycles)
	}
}

// RecordEpochLatency attributes one delivered packet's latency to the
// fault epoch the delivery happened in, so fault campaigns can compare
// latency across fault-set changes. Epochs are small dense integers
// (the topology's fault epoch counter); the accumulator slice grows to
// the highest epoch seen.
func (m *Collector) RecordEpochLatency(epoch int, cycles float64) {
	if epoch < 0 {
		return
	}
	for len(m.epochLats) <= epoch {
		m.epochLats = append(m.epochLats, stats.Accumulator{})
	}
	m.epochLats[epoch].Add(cycles)
}

// EpochLatencies returns the per-fault-epoch latency accumulators,
// indexed by epoch. Epochs with no deliveries have zero-count
// accumulators; the slice is empty when RecordEpochLatency was never
// called (no fault plan, or no metrics-attached deliveries).
func (m *Collector) EpochLatencies() []stats.Accumulator { return m.epochLats }

// Samples returns the recorded time series.
func (m *Collector) Samples() []Sample { return m.samples }

// Latencies returns the latency histogram (cycles).
func (m *Collector) Latencies() *stats.Histogram { return m.latencies }

// ExactLatencies returns the per-packet latency record, empty unless
// Config.ExactLatencies was set.
func (m *Collector) ExactLatencies() []float64 { return m.exact }

// Cycles returns the number of cycles the collector observed.
func (m *Collector) Cycles() int64 { return m.cycles }

// Topology returns the bound topology (nil before Bind).
func (m *Collector) Topology() *topology.Topology { return m.topo }

// channelUtilization returns flits/cycle for channel slot i, guarding
// against an unstarted run.
func (m *Collector) channelUtilization(i int) float64 {
	if m.cycles == 0 {
		return 0
	}
	return float64(m.ChannelFlits[i]) / float64(m.cycles)
}

// isEjection reports whether channel slot i is a router's ejection
// channel rather than a network link.
func (m *Collector) isEjection(i int) bool { return i%m.nphys == m.nphys-1 }

// channelOf maps a non-ejection channel slot to its topology channel.
func (m *Collector) channelOf(i int) topology.Channel {
	return topology.Channel{
		From: topology.NodeID(i / m.nphys),
		Dir:  topology.DirectionFromIndex(i % m.nphys),
	}
}

// Summary condenses a run's metrics into network-wide totals, for
// per-figure dumps where full per-router arrays would drown the
// output.
type Summary struct {
	// Cycles observed by the collector.
	Cycles int64 `json:"cycles"`
	// FlitsForwarded is the network-wide flit-forward total (ejections
	// included).
	FlitsForwarded int64 `json:"flits_forwarded"`
	// InjectedFlits and DeliveredFlits are the network-wide totals.
	InjectedFlits  int64 `json:"injected_flits"`
	DeliveredFlits int64 `json:"delivered_flits"`
	// Grants, Denials, Misroutes and WaitCycles are the per-router
	// counters summed over all routers.
	Grants     int64 `json:"allocation_grants"`
	Denials    int64 `json:"allocation_denials"`
	Misroutes  int64 `json:"misroutes"`
	WaitCycles int64 `json:"allocation_wait_cycles"`
	// MeanOccupancy is the mean buffered flits per router per cycle.
	MeanOccupancy float64 `json:"mean_buffer_occupancy_flits"`
	// MaxChannelUtilization is the busiest network channel's flits per
	// cycle, and HottestChannel names it.
	MaxChannelUtilization float64 `json:"max_channel_utilization"`
	HottestChannel        string  `json:"hottest_channel"`
	// LatencyP50Cycles etc. summarize the latency histogram, in cycles.
	LatencyCount      int64   `json:"latency_count"`
	LatencyMeanCycles float64 `json:"latency_mean_cycles"`
	LatencyP50Cycles  float64 `json:"latency_p50_cycles"`
	LatencyP95Cycles  float64 `json:"latency_p95_cycles"`
	LatencyP99Cycles  float64 `json:"latency_p99_cycles"`
	// Samples counts the recorded time-series points.
	Samples int `json:"samples"`
	// Recovery totals; all zero when deadlock recovery was disabled.
	Recoveries     int64 `json:"recoveries,omitempty"`
	Retries        int64 `json:"retries,omitempty"`
	PacketsDropped int64 `json:"packets_dropped,omitempty"`
	DrainedFlits   int64 `json:"drained_flits,omitempty"`
	// FaultEpochs is the highest fault epoch that recorded a delivery
	// via RecordEpochLatency, plus one (0 when per-epoch attribution
	// never ran).
	FaultEpochs int `json:"fault_epochs,omitempty"`
}

// Summarize computes the run's Summary.
func (m *Collector) Summarize() Summary {
	s := Summary{
		Cycles:         m.cycles,
		InjectedFlits:  m.InjectedFlits,
		DeliveredFlits: m.DeliveredFlits,
		Samples:        len(m.samples),
		Recoveries:     m.Recoveries,
		Retries:        m.Retries,
		PacketsDropped: m.PacketsDropped,
		DrainedFlits:   m.DrainedFlits,
		FaultEpochs:    len(m.epochLats),
	}
	for i := range m.RouterFlits {
		s.FlitsForwarded += m.RouterFlits[i]
		s.Grants += m.Grants[i]
		s.Denials += m.Denials[i]
		s.Misroutes += m.Misroutes[i]
		s.WaitCycles += m.WaitCycles[i]
	}
	var occ int64
	for _, o := range m.OccIntegral {
		occ += o
	}
	if m.cycles > 0 && len(m.OccIntegral) > 0 {
		s.MeanOccupancy = float64(occ) / float64(m.cycles) / float64(len(m.OccIntegral))
	}
	best, bestIdx := int64(-1), -1
	for i, f := range m.ChannelFlits {
		if m.isEjection(i) {
			continue
		}
		if f > best {
			best, bestIdx = f, i
		}
	}
	if bestIdx >= 0 {
		s.MaxChannelUtilization = m.channelUtilization(bestIdx)
		s.HottestChannel = m.channelOf(bestIdx).String()
	}
	if n := m.latencies.N(); n > 0 {
		s.LatencyCount = n
		s.LatencyMeanCycles = m.latencies.Mean()
		s.LatencyP50Cycles = m.latencies.Percentile(0.50)
		s.LatencyP95Cycles = m.latencies.Percentile(0.95)
		s.LatencyP99Cycles = m.latencies.Percentile(0.99)
	}
	return s
}
