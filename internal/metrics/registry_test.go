package metrics

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
)

// TestRegistryScrapeOrder: exporters emit in registration order, so
// each subsystem's block stays contiguous.
func TestRegistryScrapeOrder(t *testing.T) {
	r := NewRegistry()
	r.Register(func(w io.Writer) error { fmt.Fprintln(w, "a_total 1"); return nil })
	r.Register(func(w io.Writer) error { fmt.Fprintln(w, "b_total 2"); return nil })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if got, want := b.String(), "a_total 1\nb_total 2\n"; got != want {
		t.Fatalf("scrape = %q, want %q", got, want)
	}
}

// TestRegistryFirstError: a failing exporter stops the scrape and
// surfaces its error.
func TestRegistryFirstError(t *testing.T) {
	r := NewRegistry()
	boom := errors.New("boom")
	r.Register(func(w io.Writer) error { return boom })
	called := false
	r.Register(func(w io.Writer) error { called = true; return nil })
	if err := r.WritePrometheus(io.Discard); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if called {
		t.Fatal("exporter after the failing one still ran")
	}
}

// TestRegistryNoTornScrape: an exporter that emits partial output and
// then fails must leave the destination writer untouched — including
// the output of exporters that already succeeded — so the scrape is
// all-or-nothing.
func TestRegistryNoTornScrape(t *testing.T) {
	r := NewRegistry()
	boom := errors.New("boom")
	r.Register(func(w io.Writer) error { fmt.Fprintln(w, "ok_total 1"); return nil })
	r.Register(func(w io.Writer) error {
		fmt.Fprintln(w, "torn_total 2") // partial output before the failure
		return boom
	})
	var b strings.Builder
	if err := r.WritePrometheus(&b); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if b.Len() != 0 {
		t.Fatalf("failed scrape leaked %q to the writer; want nothing", b.String())
	}
}

// TestRegistryConcurrent: concurrent Register and scrape calls must
// not race (run under -race in CI).
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			r.Register(func(w io.Writer) error { return nil })
		}()
		go func() {
			defer wg.Done()
			_ = r.WritePrometheus(io.Discard)
		}()
	}
	wg.Wait()
}
