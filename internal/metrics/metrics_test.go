package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"regexp"
	"strings"
	"testing"

	"turnmodel/internal/topology"
)

// fill binds a collector to a 4x4 mesh and loads it with a small
// synthetic run: 10 cycles, traffic on two channels, three delivered
// packets.
func fill(cfg Config) *Collector {
	m := New(cfg)
	topo := topology.NewMesh(4, 4)
	m.Bind(topo, 2*topo.NumDims()+1)
	m.ChannelFlits[0*m.nphys+1] = 30        // router 0, east
	m.ChannelFlits[1*m.nphys+3] = 12        // router 1, north
	m.ChannelFlits[2*m.nphys+m.nphys-1] = 9 // router 2, ejection
	m.RouterFlits[0] = 30
	m.RouterFlits[1] = 12
	m.Grants[0] = 5
	m.Denials[1] = 2
	m.Misroutes[1] = 1
	m.WaitCycles[0] = 7
	m.InjectedFlits = 42
	m.Occupancy[3] = 2
	for c := int64(0); c < 10; c++ {
		m.EndCycle()
		m.DeliveredFlits += 3
		if m.SampleDue(c) {
			m.TakeSample(c, 1, 4)
		}
	}
	for _, lat := range []float64{10, 20, 30} {
		m.RecordLatency(lat)
	}
	return m
}

func TestCollectorAccumulates(t *testing.T) {
	m := fill(Config{Interval: 4})
	if m.Cycles() != 10 {
		t.Errorf("cycles = %d, want 10", m.Cycles())
	}
	if m.OccIntegral[3] != 20 {
		t.Errorf("occupancy integral = %d, want 2 flits x 10 cycles = 20", m.OccIntegral[3])
	}
	// Samples at cycles 4 and 8 (interval 4, first due at cycle 4).
	s := m.Samples()
	if len(s) != 2 || s[0].Cycle != 4 || s[1].Cycle != 8 {
		t.Fatalf("samples = %+v, want cycles 4 and 8", s)
	}
	// 3 flits/cycle delivered throughout.
	if math.Abs(s[1].WindowThroughput-3) > 1e-9 {
		t.Errorf("window throughput = %v, want 3", s[1].WindowThroughput)
	}
	sum := m.Summarize()
	if sum.FlitsForwarded != 42 || sum.Grants != 5 || sum.Denials != 2 || sum.Misroutes != 1 || sum.WaitCycles != 7 {
		t.Errorf("summary totals wrong: %+v", sum)
	}
	if sum.MaxChannelUtilization != 3.0 {
		t.Errorf("max utilization = %v, want 30 flits / 10 cycles = 3", sum.MaxChannelUtilization)
	}
	if sum.HottestChannel == "" || strings.Contains(sum.HottestChannel, "ejection") {
		t.Errorf("hottest channel %q should name a network channel", sum.HottestChannel)
	}
	if sum.LatencyCount != 3 || sum.LatencyMeanCycles != 20 {
		t.Errorf("latency summary wrong: %+v", sum)
	}
}

func TestExactLatenciesFlag(t *testing.T) {
	with := fill(Config{ExactLatencies: true})
	if got := with.ExactLatencies(); len(got) != 3 || got[1] != 20 {
		t.Errorf("exact latencies = %v, want [10 20 30]", got)
	}
	without := fill(Config{})
	if len(without.ExactLatencies()) != 0 {
		t.Error("exact latencies recorded without the flag")
	}
	// The histogram is maintained either way.
	if without.Latencies().N() != 3 {
		t.Errorf("histogram N = %d, want 3", without.Latencies().N())
	}
}

func TestManifestJSONRoundTrip(t *testing.T) {
	m := fill(Config{Interval: 4, ExactLatencies: true})
	var buf bytes.Buffer
	if err := m.WriteManifest(&buf); err != nil {
		t.Fatal(err)
	}
	var man Manifest
	if err := json.Unmarshal(buf.Bytes(), &man); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if len(man.Routers) != 16 {
		t.Errorf("manifest has %d routers, want 16", len(man.Routers))
	}
	// Channels are sorted hottest first and only carry nonzero entries.
	if len(man.Channels) != 3 || man.Channels[0].Flits != 30 {
		t.Errorf("channels = %+v, want 3 entries, hottest first", man.Channels)
	}
	if man.Summary.DeliveredFlits != 30 {
		t.Errorf("summary delivered = %d, want 30", man.Summary.DeliveredFlits)
	}
	if len(man.ExactLatencies) != 3 {
		t.Errorf("exact latencies missing from manifest: %+v", man.ExactLatencies)
	}
	if len(man.Samples) != 2 {
		t.Errorf("samples missing from manifest")
	}
}

// promLine matches one Prometheus text-format sample line.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|NaN)$`)

func TestPrometheusFormat(t *testing.T) {
	m := fill(Config{Interval: 4})
	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	typed := map[string]bool{}
	for i, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("line %d: malformed TYPE: %q", i+1, line)
			}
			typed[f[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("line %d does not parse as a Prometheus sample: %q", i+1, line)
		}
		name := line
		if j := strings.IndexAny(line, "{ "); j >= 0 {
			name = line[:j]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(name, "_sum"), "_count")
		if base == "turnsim_packet_latency_cycles_count" {
			base = "turnsim_packet_latency_cycles"
		}
		if !typed[name] && !typed[base] {
			t.Errorf("line %d: sample %q has no preceding TYPE", i+1, name)
		}
	}
	for _, want := range []string{
		"turnsim_router_flits_forwarded_total",
		"turnsim_channel_flits_total",
		"turnsim_flits_delivered_total",
		"turnsim_packet_latency_cycles",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %s", want)
		}
	}
}

func TestHeatmapMesh(t *testing.T) {
	m := fill(Config{})
	hm := m.Heatmap()
	if !strings.Contains(hm, "east") || !strings.Contains(hm, "scale:") {
		t.Errorf("mesh heatmap missing direction panels or scale:\n%s", hm)
	}
	// The hottest cell renders with the densest ramp character.
	if !strings.Contains(hm, "@") {
		t.Errorf("heatmap has no saturated cell:\n%s", hm)
	}
}

func TestHeatmapFallbackNonMesh(t *testing.T) {
	m := New(Config{})
	topo := topology.NewHypercube(4)
	m.Bind(topo, 2*topo.NumDims()+1)
	m.ChannelFlits[3] = 5
	m.EndCycle()
	hm := m.Heatmap()
	if !strings.Contains(hm, "busiest channels") {
		t.Errorf("non-mesh topology should fall back to a channel table:\n%s", hm)
	}
}

func TestBindResets(t *testing.T) {
	m := fill(Config{Interval: 4})
	topo := topology.NewMesh(4, 4)
	m.Bind(topo, 2*topo.NumDims()+1)
	if m.Cycles() != 0 || m.DeliveredFlits != 0 || len(m.Samples()) != 0 || m.Latencies().N() != 0 {
		t.Error("Bind should reset all counters")
	}
}
