package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"turnmodel/internal/stats"
	"turnmodel/internal/topology"
)

// Manifest is the machine-readable run record written by WriteManifest.
// All times are cycles and all traffic quantities flits.
type Manifest struct {
	// Summary repeats the network-wide totals.
	Summary Summary `json:"summary"`
	// SampleInterval echoes the configured cadence (0 = disabled).
	SampleInterval int64 `json:"sample_interval_cycles"`
	// Routers holds per-router counters, indexed by node id.
	Routers []RouterMetrics `json:"routers"`
	// Channels holds per-channel flit counts for channels that carried
	// traffic, hottest first.
	Channels []ChannelMetrics `json:"channels"`
	// Samples is the windowed time series.
	Samples []Sample `json:"samples"`
	// ExactLatencies is the per-packet latency record in cycles, only
	// present when exact recording was enabled.
	ExactLatencies []float64 `json:"exact_latencies_cycles,omitempty"`
	// EpochLatencies breaks delivered-packet latency down by fault
	// epoch, present when per-epoch attribution ran (fault campaigns).
	EpochLatencies []EpochLatencyMetrics `json:"epoch_latencies,omitempty"`
}

// EpochLatencyMetrics summarizes delivered-packet latency within one
// fault epoch.
type EpochLatencyMetrics struct {
	// Epoch is the topology fault-epoch number.
	Epoch int `json:"epoch"`
	// Count, MeanCycles and MaxCycles summarize the epoch's deliveries.
	Count      int64   `json:"count"`
	MeanCycles float64 `json:"mean_cycles"`
	MaxCycles  float64 `json:"max_cycles"`
}

// RouterMetrics is one router's counter block.
type RouterMetrics struct {
	// Router is the node id; Coord its coordinate vector.
	Router int   `json:"router"`
	Coord  []int `json:"coord"`
	// FlitsForwarded etc. mirror the Collector's per-router counters.
	FlitsForwarded    int64   `json:"flits_forwarded"`
	Grants            int64   `json:"allocation_grants"`
	Denials           int64   `json:"allocation_denials"`
	Misroutes         int64   `json:"misroutes"`
	WaitCycles        int64   `json:"allocation_wait_cycles"`
	MeanOccupancy     float64 `json:"mean_buffer_occupancy_flits"`
	OccupancyIntegral int64   `json:"buffer_occupancy_integral_flit_cycles"`
}

// ChannelMetrics is one channel's counter block.
type ChannelMetrics struct {
	// Channel names the channel, e.g. "(3,2)->+x"; Ejection marks a
	// router-to-processor channel.
	Channel  string `json:"channel"`
	Ejection bool   `json:"ejection,omitempty"`
	// Flits carried and the resulting utilization in flits/cycle.
	Flits       int64   `json:"flits"`
	Utilization float64 `json:"utilization"`
}

// BuildManifest assembles the manifest struct.
func (m *Collector) BuildManifest() Manifest {
	man := Manifest{
		Summary:        m.Summarize(),
		SampleInterval: m.cfg.Interval,
		Samples:        m.samples,
		ExactLatencies: m.exact,
	}
	for v := range m.RouterFlits {
		r := RouterMetrics{
			Router:            v,
			Coord:             m.topo.Coord(topology.NodeID(v)),
			FlitsForwarded:    m.RouterFlits[v],
			Grants:            m.Grants[v],
			Denials:           m.Denials[v],
			Misroutes:         m.Misroutes[v],
			WaitCycles:        m.WaitCycles[v],
			OccupancyIntegral: m.OccIntegral[v],
		}
		if m.cycles > 0 {
			r.MeanOccupancy = float64(m.OccIntegral[v]) / float64(m.cycles)
		}
		man.Routers = append(man.Routers, r)
	}
	for i, f := range m.ChannelFlits {
		if f == 0 {
			continue
		}
		c := ChannelMetrics{Flits: f, Utilization: m.channelUtilization(i)}
		if m.isEjection(i) {
			c.Channel = fmt.Sprintf("%v->ejection", m.topo.Coord(topology.NodeID(i/m.nphys)))
			c.Ejection = true
		} else {
			c.Channel = m.channelOf(i).String()
		}
		man.Channels = append(man.Channels, c)
	}
	sort.SliceStable(man.Channels, func(i, j int) bool {
		return man.Channels[i].Flits > man.Channels[j].Flits
	})
	for epoch := range m.epochLats {
		a := &m.epochLats[epoch]
		if a.N() == 0 {
			continue
		}
		man.EpochLatencies = append(man.EpochLatencies, EpochLatencyMetrics{
			Epoch:      epoch,
			Count:      a.N(),
			MeanCycles: a.Mean(),
			MaxCycles:  a.Max(),
		})
	}
	return man
}

// WriteManifest writes the run manifest as indented JSON.
func (m *Collector) WriteManifest(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m.BuildManifest())
}

// promEscape escapes a Prometheus label value.
func promEscape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// WritePrometheus writes the counters in the Prometheus text exposition
// format (version 0.0.4). Metric names carry the turnsim_ prefix;
// routers are labeled by id and coordinate, channels by source router
// and direction.
func (m *Collector) WritePrometheus(w io.Writer) error {
	bw := &errWriter{w: w}
	counter := func(name, help string, emit func()) {
		fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		emit()
	}
	routerLabel := func(v int) string {
		return fmt.Sprintf(`router="%d",coord="%s"`, v, promEscape(coordString(m.topo.Coord(topology.NodeID(v)))))
	}
	perRouter := func(name, help string, vals []int64) {
		counter(name, help, func() {
			for v, x := range vals {
				fmt.Fprintf(bw, "%s{%s} %d\n", name, routerLabel(v), x)
			}
		})
	}
	perRouter("turnsim_router_flits_forwarded_total", "Flits forwarded by the router, ejections included.", m.RouterFlits)
	perRouter("turnsim_router_allocation_grants_total", "Output-channel allocations granted.", m.Grants)
	perRouter("turnsim_router_allocation_denials_total", "Allocation attempts with every permitted output busy.", m.Denials)
	perRouter("turnsim_router_misroutes_total", "Granted outputs that did not reduce distance to the destination.", m.Misroutes)
	perRouter("turnsim_router_allocation_wait_cycles_total", "Cycles granted headers spent waiting for allocation.", m.WaitCycles)
	perRouter("turnsim_router_buffer_occupancy_flit_cycles_total", "Time integral of buffered flits.", m.OccIntegral)
	counter("turnsim_channel_flits_total", "Flits carried per physical channel.", func() {
		for i, f := range m.ChannelFlits {
			if f == 0 {
				continue
			}
			v := i / m.nphys
			dir := "ejection"
			if !m.isEjection(i) {
				dir = m.channelOf(i).Dir.String()
			}
			fmt.Fprintf(bw, "turnsim_channel_flits_total{%s,dir=%q} %d\n", routerLabel(v), dir, f)
		}
	})
	counter("turnsim_flits_injected_total", "Flits injected into the network.", func() {
		fmt.Fprintf(bw, "turnsim_flits_injected_total %d\n", m.InjectedFlits)
	})
	counter("turnsim_flits_delivered_total", "Flits delivered to destination processors.", func() {
		fmt.Fprintf(bw, "turnsim_flits_delivered_total %d\n", m.DeliveredFlits)
	})
	counter("turnsim_cycles_total", "Simulated cycles observed by the collector.", func() {
		fmt.Fprintf(bw, "turnsim_cycles_total %d\n", m.cycles)
	})
	counter("turnsim_recoveries_total", "Worms aborted regressively by deadlock recovery.", func() {
		fmt.Fprintf(bw, "turnsim_recoveries_total %d\n", m.Recoveries)
	})
	counter("turnsim_retries_total", "Source-level packet re-injections after recovery aborts.", func() {
		fmt.Fprintf(bw, "turnsim_retries_total %d\n", m.Retries)
	})
	counter("turnsim_packets_dropped_total", "Packets dropped after exhausting the recovery retry budget.", func() {
		fmt.Fprintf(bw, "turnsim_packets_dropped_total %d\n", m.PacketsDropped)
	})
	counter("turnsim_drained_flits_total", "Flits removed from network buffers by recovery aborts.", func() {
		fmt.Fprintf(bw, "turnsim_drained_flits_total %d\n", m.DrainedFlits)
	})
	fmt.Fprintf(bw, "# HELP turnsim_packet_latency_cycles Delivered-packet latency distribution.\n# TYPE turnsim_packet_latency_cycles summary\n")
	if n := m.latencies.N(); n > 0 {
		for _, q := range []float64{0.5, 0.95, 0.99} {
			fmt.Fprintf(bw, "turnsim_packet_latency_cycles{quantile=\"%g\"} %g\n", q, m.latencies.Percentile(q))
		}
		fmt.Fprintf(bw, "turnsim_packet_latency_cycles_sum %g\n", m.latencies.Mean()*float64(n))
		fmt.Fprintf(bw, "turnsim_packet_latency_cycles_count %d\n", n)
	} else {
		fmt.Fprintf(bw, "turnsim_packet_latency_cycles_count 0\n")
	}
	return bw.err
}

// coordString renders a coordinate vector as "x,y,...".
func coordString(c []int) string {
	parts := make([]string, len(c))
	for i, x := range c {
		parts[i] = fmt.Sprint(x)
	}
	return strings.Join(parts, ",")
}

// errWriter folds write errors so the exporter can use Fprintf freely.
type errWriter struct {
	w   io.Writer
	err error
}

// Write implements io.Writer, dropping writes after the first error.
func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return len(p), nil
	}
	n, err := e.w.Write(p)
	e.err = err
	return n, nil
}

// Heatmap renders the channel-utilization heat of the run. For
// two-dimensional meshes and tori it draws one ASCII density map per
// direction (stats.Heatmap), each cell the utilization of that router's
// outgoing channel; for other topologies it falls back to a table of
// the busiest channels.
func (m *Collector) Heatmap() string {
	var b strings.Builder
	if len(m.topo.Dims()) == 2 && !m.topo.IsHypercube() {
		w, h := m.topo.Dims()[0], m.topo.Dims()[1]
		for di := 0; di < m.nphys-1; di++ {
			dir := topology.DirectionFromIndex(di)
			fmt.Fprintf(&b, "channel utilization %v (flits/cycle):\n", dir)
			b.WriteString(stats.Heatmap(h, w, func(r, c int) float64 {
				v := int(m.topo.ID(topology.Coord{c, r}))
				return m.channelUtilization(v*m.nphys + di)
			}))
			b.WriteByte('\n')
		}
		return b.String()
	}
	man := m.BuildManifest()
	fmt.Fprintf(&b, "busiest channels (flits/cycle):\n")
	tbl := stats.NewTable("channel", "flits", "utilization")
	top := man.Channels
	if len(top) > 16 {
		top = top[:16]
	}
	for _, c := range top {
		if c.Ejection {
			continue
		}
		tbl.AddRow(c.Channel, c.Flits, fmt.Sprintf("%.3f", c.Utilization))
	}
	b.WriteString(tbl.String())
	return b.String()
}
