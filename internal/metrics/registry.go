package metrics

import (
	"bytes"
	"io"
	"sync"
)

// Exporter writes metrics in the Prometheus text exposition format.
// Collector.WritePrometheus is the per-run instance; long-running
// processes contribute additional exporters for their own counters.
type Exporter func(io.Writer) error

// Registry aggregates Prometheus text exporters for a long-running
// process. A Collector covers exactly one simulation run; a service
// hosting many runs (the turnserver) registers one exporter per
// subsystem — its job counters, aggregate simulation totals, and
// whatever else it tracks — and serves them all from a single /metrics
// endpoint. Registration and scraping are safe for concurrent use;
// each exporter is responsible for its own internal synchronization.
type Registry struct {
	mu        sync.Mutex
	exporters []Exporter
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register appends an exporter. Exporters are scraped in registration
// order, so a subsystem's metrics stay contiguous in the exposition.
func (r *Registry) Register(e Exporter) {
	r.mu.Lock()
	r.exporters = append(r.exporters, e)
	r.mu.Unlock()
}

// WritePrometheus scrapes every registered exporter, stopping at the
// first error. The whole exposition is buffered before any byte
// reaches w: an exporter failing mid-write (even after emitting
// partial output) leaves w untouched, so HTTP callers can return a
// clean 500 instead of a torn scrape.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	exps := append([]Exporter(nil), r.exporters...)
	r.mu.Unlock()
	var buf bytes.Buffer
	for _, e := range exps {
		if err := e(&buf); err != nil {
			return err
		}
	}
	_, err := w.Write(buf.Bytes())
	return err
}
