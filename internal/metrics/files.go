package metrics

import (
	"fmt"
	"os"
	"path/filepath"
)

// Standard file names written by WriteFiles and consumed by
// cmd/metricscheck.
const (
	// ManifestFile is the JSON run manifest.
	ManifestFile = "manifest.json"
	// PrometheusFile is the Prometheus text-format dump.
	PrometheusFile = "metrics.prom"
	// HeatmapFile is the ASCII channel-utilization heatmap.
	HeatmapFile = "heatmap.txt"
)

// WriteFiles writes the run's full metric dump — JSON manifest,
// Prometheus text format and channel heatmap — into dir, creating it if
// needed.
func (m *Collector) WriteFiles(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, ManifestFile))
	if err != nil {
		return err
	}
	if err := m.WriteManifest(f); err != nil {
		f.Close()
		return fmt.Errorf("metrics: manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	f, err = os.Create(filepath.Join(dir, PrometheusFile))
	if err != nil {
		return err
	}
	if err := m.WritePrometheus(f); err != nil {
		f.Close()
		return fmt.Errorf("metrics: prometheus: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, HeatmapFile), []byte(m.Heatmap()), 0o644)
}
