// Package fault schedules deterministic channel-fault campaigns for the
// simulator: a Plan is an explicit list of fault onsets and repairs on
// simulated-cycle timestamps, built by hand (AddChannelFault,
// AddRouterFault) or generated from a seeded random Campaign (target
// fault rate and mean time to repair). A Driver replays a Plan against a
// topology as simulation time advances, going through the ordinary
// DisableChannel/EnableChannel fault-epoch path so routing tables and
// candidate caches recompile exactly as they do for static faults —
// and, new with repairs, re-enable channels when their fault heals.
//
// Everything here is deterministic: the same seed and parameters always
// produce the same Plan, and a Driver applies events in a fixed order
// (ascending cycle, insertion order within a cycle), so fault campaigns
// compose with the engine's seeded determinism and sharded A/B tests.
package fault

import (
	"fmt"
	"math/rand"
	"sort"

	"turnmodel/internal/topology"
)

// Event is one scheduled fault transition: at Cycle, channel Ch either
// fails (Up == false) or is repaired (Up == true).
type Event struct {
	// Cycle is the simulated cycle the transition takes effect, applied
	// before that cycle's generation and allocation phases.
	Cycle int64
	// Ch is the affected unidirectional channel.
	Ch topology.Channel
	// Up distinguishes repair (true) from onset (false).
	Up bool
}

// Plan is a deterministic fault schedule. The zero value is an empty
// plan. Events may be appended in any order; drivers and validators
// sort a copy by cycle (stably, so same-cycle events keep insertion
// order) before use. A Plan is immutable once a run starts and may be
// shared between runs — the Driver keeps all replay state.
type Plan struct {
	// Events is the schedule. Callers normally build it through
	// AddChannelFault/AddRouterFault or NewCampaign rather than directly.
	Events []Event
}

// AddChannelFault schedules channel ch to fail at cycle onset and, when
// repair >= 0, to be repaired at cycle repair. A negative repair makes
// the fault permanent.
func (p *Plan) AddChannelFault(ch topology.Channel, onset, repair int64) {
	p.Events = append(p.Events, Event{Cycle: onset, Ch: ch})
	if repair >= 0 {
		p.Events = append(p.Events, Event{Cycle: repair, Ch: ch, Up: true})
	}
}

// AddRouterFault schedules a whole-router fault on node v of t: every
// existing channel entering or leaving v fails at onset and, when
// repair >= 0, heals at repair. Traffic terminating at v can still be
// consumed (the processor ejection channel is not a network channel);
// nothing can route through v while the fault holds.
func (p *Plan) AddRouterFault(t *topology.Topology, v topology.NodeID, onset, repair int64) error {
	if err := t.CheckNode(v); err != nil {
		return err
	}
	for i := 0; i < 2*t.NumDims(); i++ {
		d := topology.DirectionFromIndex(i)
		if t.HasChannel(v, d) {
			p.AddChannelFault(topology.Channel{From: v, Dir: d}, onset, repair)
		}
		if u, ok := t.Neighbor(v, d); ok {
			p.AddChannelFault(topology.Channel{From: u, Dir: d.Opposite()}, onset, repair)
		}
	}
	return nil
}

// Validate checks every event against t: the channel must exist, the
// cycle must be nonnegative, and no repair may precede its fault's
// onset. It reports the first problem found, so malformed plans fail at
// configuration time instead of mid-run.
func (p *Plan) Validate(t *topology.Topology) error {
	for i, ev := range p.Events {
		if ev.Cycle < 0 {
			return fmt.Errorf("fault: event %d: negative cycle %d", i, ev.Cycle)
		}
		if err := t.CheckNode(ev.Ch.From); err != nil {
			return fmt.Errorf("fault: event %d: %w", i, err)
		}
		if ev.Ch.Dir.Dim < 0 || ev.Ch.Dir.Dim >= t.NumDims() || !t.HasChannel(ev.Ch.From, ev.Ch.Dir) {
			return fmt.Errorf("fault: event %d: channel %v does not exist", i, ev.Ch)
		}
	}
	// Replay the schedule's per-channel fault counts: a repair landing on
	// a channel with no active fault means a repair was scheduled before
	// its onset (AddChannelFault with repair < onset), which would strand
	// the channel disabled forever.
	down := make(map[int]int)
	for _, ev := range p.sorted() {
		id := t.ChannelID(ev.Ch)
		if ev.Up {
			if down[id] == 0 {
				return fmt.Errorf("fault: channel %v repaired at cycle %d before any fault onset", ev.Ch, ev.Cycle)
			}
			down[id]--
		} else {
			down[id]++
		}
	}
	return nil
}

// sorted returns a stably cycle-sorted copy of the plan's events.
func (p *Plan) sorted() []Event {
	evs := append([]Event(nil), p.Events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Cycle < evs[j].Cycle })
	return evs
}

// Campaign parameterizes a random fault campaign: transient channel
// faults arriving as a Poisson process over a horizon, each healing
// after an exponentially distributed repair time.
type Campaign struct {
	// Seed makes the generated plan reproducible.
	Seed int64
	// Horizon is the cycle span faults may start in, (0, Horizon].
	Horizon int64
	// Rate is the target fault arrival rate in onsets per 1000 cycles,
	// network-wide.
	Rate float64
	// MTTR is the mean time to repair in cycles. Zero makes every fault
	// permanent.
	MTTR int64
}

// NewCampaign generates a deterministic random plan for topology t:
// fault onsets arrive with exponential interarrival times at the target
// rate, each picking a uniformly random currently-healthy channel, with
// a repair scheduled MTTR-mean exponentially later (or never, when MTTR
// is zero). The same seed and parameters always yield the same plan.
func NewCampaign(t *topology.Topology, c Campaign) (*Plan, error) {
	if c.Horizon <= 0 {
		return nil, fmt.Errorf("fault: campaign horizon must be positive, got %d", c.Horizon)
	}
	if c.Rate < 0 {
		return nil, fmt.Errorf("fault: negative campaign rate %v", c.Rate)
	}
	if c.MTTR < 0 {
		return nil, fmt.Errorf("fault: negative MTTR %d", c.MTTR)
	}
	p := &Plan{}
	if c.Rate == 0 {
		return p, nil
	}
	var chans []topology.Channel
	t.Channels(func(ch topology.Channel) { chans = append(chans, ch) })
	if len(chans) == 0 {
		return nil, fmt.Errorf("fault: topology has no channels")
	}
	rng := rand.New(rand.NewSource(c.Seed))
	// downUntil tracks when each channel heals, so a new onset never
	// lands on an already-faulty channel (the driver's refcounting would
	// handle it, but distinct targets make campaigns easier to reason
	// about). -1 means healthy; a permanent fault stores Horizon+1.
	downUntil := make(map[int]int64, 8)
	mean := 1000.0 / c.Rate // cycles between onsets
	at := int64(0)
	for {
		at += max64(1, int64(rng.ExpFloat64()*mean))
		if at > c.Horizon {
			break
		}
		ch, ok := pickHealthy(rng, t, chans, downUntil, at)
		if !ok {
			continue // every channel is down; skip this onset
		}
		repair := int64(-1)
		healed := c.Horizon + 1
		if c.MTTR > 0 {
			repair = at + max64(1, int64(rng.ExpFloat64()*float64(c.MTTR)))
			healed = repair
		}
		downUntil[t.ChannelID(ch)] = healed
		p.AddChannelFault(ch, at, repair)
	}
	return p, nil
}

// pickHealthy draws uniformly among channels healthy at cycle at,
// consuming a bounded number of random draws so generation stays
// deterministic and terminates even when most channels are down.
func pickHealthy(rng *rand.Rand, t *topology.Topology, chans []topology.Channel, downUntil map[int]int64, at int64) (topology.Channel, bool) {
	for tries := 0; tries < 4*len(chans); tries++ {
		ch := chans[rng.Intn(len(chans))]
		if until, down := downUntil[t.ChannelID(ch)]; !down || until <= at {
			return ch, true
		}
	}
	return topology.Channel{}, false
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Driver replays a Plan against a topology as simulation time advances.
// It refcounts per-channel faults, so overlapping faults on the same
// channel compose: the channel heals only when every overlapping fault
// has been repaired. Reset undoes whatever the driver disabled,
// restoring the topology's pre-campaign fault state.
type Driver struct {
	t      *topology.Topology
	events []Event
	at     int
	down   []int16 // per channel ID: active faults the driver holds
	active int     // channels currently disabled by this driver
}

// NewDriver validates p against t and returns a driver positioned
// before the first event.
func NewDriver(t *topology.Topology, p *Plan) (*Driver, error) {
	if err := p.Validate(t); err != nil {
		return nil, err
	}
	return &Driver{
		t:      t,
		events: p.sorted(),
		down:   make([]int16, t.NumChannelIDs()),
	}, nil
}

// Advance applies every event scheduled at or before cycle, in order,
// and returns how many were applied. The caller runs it before a
// cycle's generation and allocation phases; the fault epoch advances
// with each underlying Disable/EnableChannel, which is what triggers
// route-table recompilation downstream.
func (d *Driver) Advance(cycle int64) (int, error) {
	applied := 0
	for d.at < len(d.events) && d.events[d.at].Cycle <= cycle {
		ev := d.events[d.at]
		d.at++
		id := d.t.ChannelID(ev.Ch)
		if ev.Up {
			if d.down[id] == 0 {
				continue // repair of a fault this driver never applied
			}
			d.down[id]--
			if d.down[id] == 0 {
				if err := d.t.EnableChannel(ev.Ch); err != nil {
					return applied, err
				}
				d.active--
			}
		} else {
			d.down[id]++
			if d.down[id] == 1 {
				if err := d.t.DisableChannel(ev.Ch); err != nil {
					return applied, err
				}
				d.active++
			}
		}
		applied++
	}
	return applied, nil
}

// ActiveFaults returns the number of channels the driver currently
// holds disabled.
func (d *Driver) ActiveFaults() int { return d.active }

// Done reports whether every event has been applied.
func (d *Driver) Done() bool { return d.at >= len(d.events) }

// Reset re-enables every channel the driver still holds disabled and
// rewinds the event cursor, restoring the topology's pre-campaign fault
// state so the same topology can host further runs.
func (d *Driver) Reset() error {
	for id := range d.down {
		if d.down[id] > 0 {
			d.down[id] = 0
			if err := d.t.EnableChannel(d.t.ChannelFromID(id)); err != nil {
				return err
			}
		}
	}
	d.active = 0
	d.at = 0
	return nil
}
