package fault

import (
	"testing"

	"turnmodel/internal/topology"
)

func TestPlanValidate(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	good := topology.Channel{From: topo.ID(topology.Coord{1, 1}), Dir: topology.Direction{Dim: 0, Pos: true}}
	var p Plan
	p.AddChannelFault(good, 10, 50)
	if err := p.Validate(topo); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	var bad Plan
	bad.AddChannelFault(topology.Channel{From: topo.ID(topology.Coord{0, 0}), Dir: topology.Direction{Dim: 0}}, 10, 50)
	if err := bad.Validate(topo); err == nil {
		t.Error("plan with a nonexistent boundary channel validated")
	}
	var neg Plan
	neg.AddChannelFault(good, -5, 50)
	if err := neg.Validate(topo); err == nil {
		t.Error("plan with a negative onset validated")
	}
	var backwards Plan
	backwards.AddChannelFault(good, 50, 10)
	if err := backwards.Validate(topo); err == nil {
		t.Error("plan with repair before onset validated")
	}
}

func TestAddRouterFault(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	var p Plan
	// An interior router of a 2D mesh has four incident links, each with
	// both directions: 8 channels, so 16 events for a transient fault.
	if err := p.AddRouterFault(topo, topo.ID(topology.Coord{1, 1}), 10, 100); err != nil {
		t.Fatal(err)
	}
	if got := len(p.Events); got != 16 {
		t.Fatalf("interior router fault produced %d events, want 16", got)
	}
	if err := p.Validate(topo); err != nil {
		t.Fatalf("router fault plan invalid: %v", err)
	}
	// A corner router has two incident links: 4 channels, permanent
	// fault = 4 down events only.
	var c Plan
	if err := c.AddRouterFault(topo, topo.ID(topology.Coord{0, 0}), 10, -1); err != nil {
		t.Fatal(err)
	}
	if got := len(c.Events); got != 4 {
		t.Fatalf("corner router fault produced %d events, want 4", got)
	}
	var bad Plan
	if err := bad.AddRouterFault(topo, topology.NodeID(99), 10, 100); err == nil {
		t.Error("router fault on an out-of-range node accepted")
	}
}

func TestCampaignDeterministicAndBounded(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	c := Campaign{Seed: 42, Horizon: 10000, Rate: 3, MTTR: 500}
	a, err := NewCampaign(topo, c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewCampaign(topo, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("same seed produced %d vs %d events", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("same seed diverged at event %d: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
	if len(a.Events) == 0 {
		t.Fatal("campaign generated no events at rate 3 over 10000 cycles")
	}
	for _, ev := range a.Events {
		if ev.Cycle < 0 || (!ev.Up && ev.Cycle > c.Horizon) {
			t.Fatalf("onset outside [0, horizon]: %+v", ev)
		}
	}
	other, err := NewCampaign(topo, Campaign{Seed: 43, Horizon: 10000, Rate: 3, MTTR: 500})
	if err != nil {
		t.Fatal(err)
	}
	same := len(other.Events) == len(a.Events)
	if same {
		for i := range a.Events {
			if a.Events[i] != other.Events[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical campaigns")
	}
	// Permanent-fault campaigns (MTTR 0) emit no repair events.
	perm, err := NewCampaign(topo, Campaign{Seed: 1, Horizon: 10000, Rate: 2, MTTR: 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range perm.Events {
		if ev.Up {
			t.Fatalf("permanent campaign emitted a repair event: %+v", ev)
		}
	}
	if _, err := NewCampaign(topo, Campaign{Seed: 1, Horizon: 1000, Rate: -1}); err == nil {
		t.Error("negative rate accepted")
	}
	if _, err := NewCampaign(topo, Campaign{Seed: 1, Horizon: 0, Rate: 1}); err == nil {
		t.Error("zero horizon accepted")
	}
}

func TestDriverAdvanceAndReset(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	ch := topology.Channel{From: topo.ID(topology.Coord{1, 1}), Dir: topology.Direction{Dim: 0, Pos: true}}
	ch2 := topology.Channel{From: topo.ID(topology.Coord{2, 2}), Dir: topology.Direction{Dim: 1, Pos: true}}
	var p Plan
	p.AddChannelFault(ch, 10, 50)
	p.AddChannelFault(ch, 20, 60) // overlapping fault on the same channel
	p.AddChannelFault(ch2, 30, -1)
	d, err := NewDriver(topo, &p)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := d.Advance(9); n != 0 || !topo.Enabled(ch) {
		t.Fatal("driver applied events before their onset")
	}
	if _, err := d.Advance(15); err != nil {
		t.Fatal(err)
	}
	if topo.Enabled(ch) {
		t.Fatal("channel still enabled after onset")
	}
	// The first repair at 50 must not re-enable: the overlapping second
	// fault (20..60) still holds the channel down.
	if _, err := d.Advance(55); err != nil {
		t.Fatal(err)
	}
	if topo.Enabled(ch) {
		t.Error("overlapping faults: channel repaired while one fault still active")
	}
	if d.ActiveFaults() != 2 {
		t.Errorf("ActiveFaults = %d, want 2 (overlapped channel + permanent)", d.ActiveFaults())
	}
	if _, err := d.Advance(60); err != nil {
		t.Fatal(err)
	}
	if !topo.Enabled(ch) {
		t.Error("channel not repaired after both faults ended")
	}
	if topo.Enabled(ch2) {
		t.Error("permanent fault healed spontaneously")
	}
	if !d.Done() {
		t.Error("driver not done after the last event")
	}
	// Reset heals everything the driver still holds down and rewinds.
	if err := d.Reset(); err != nil {
		t.Fatal(err)
	}
	if !topo.Enabled(ch) || !topo.Enabled(ch2) {
		t.Error("Reset left channels disabled")
	}
	if n, _ := d.Advance(15); n == 0 || topo.Enabled(ch) {
		t.Error("driver did not replay events after Reset")
	}
	if err := d.Reset(); err != nil {
		t.Fatal(err)
	}
	if !topo.Enabled(ch) {
		t.Error("second Reset left the channel disabled")
	}
}

func TestDriverRejectsBadPlan(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	var p Plan
	p.AddChannelFault(topology.Channel{From: 99, Dir: topology.Direction{Dim: 0, Pos: true}}, 10, 50)
	if _, err := NewDriver(topo, &p); err == nil {
		t.Error("driver accepted a plan naming an out-of-range node")
	}
}
