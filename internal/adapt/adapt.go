// Package adapt quantifies the degree of adaptiveness of routing
// algorithms (Sections 3.4, 4.1 and 5): S_algorithm, the number of
// shortest paths an algorithm allows between a source and destination,
// in both closed form and by exhaustive enumeration over the routing
// relation, together with the S_p/S_f ratios the paper reports.
package adapt

import (
	"math/big"

	"turnmodel/internal/routing"
	"turnmodel/internal/topology"
)

// Multinomial returns (sum deltas)! / prod(delta_i!), the number of
// shortest paths of a fully adaptive algorithm in a mesh: S_f of
// Section 3.4 generalized to n dimensions.
func Multinomial(deltas []int) *big.Int {
	total := 0
	for _, d := range deltas {
		if d < 0 {
			d = -d
		}
		total += d
	}
	r := factorial(total)
	for _, d := range deltas {
		if d < 0 {
			d = -d
		}
		r.Div(r, factorial(d))
	}
	return r
}

func factorial(n int) *big.Int {
	return new(big.Int).MulRange(1, int64(max(n, 1)))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// SFull returns S_f for a source/destination pair in mesh t.
func SFull(t *topology.Topology, src, dst topology.NodeID) *big.Int {
	deltas := make([]int, t.NumDims())
	for i := range deltas {
		deltas[i] = t.Delta(src, dst, i)
	}
	return Multinomial(deltas)
}

// SWestFirst returns the Section 3.4 closed form for the west-first
// algorithm on a 2D mesh: the full multinomial when the destination is
// not to the west, otherwise 1 (all westward hops must come first, in a
// single order).
func SWestFirst(t *topology.Topology, src, dst topology.NodeID) *big.Int {
	if t.Delta(src, dst, 0) >= 0 {
		return SFull(t, src, dst)
	}
	return big.NewInt(1)
}

// SNorthLast returns the Section 3.4 closed form for the north-last
// algorithm: the full multinomial when the destination is not to the
// north, otherwise 1.
func SNorthLast(t *topology.Topology, src, dst topology.NodeID) *big.Int {
	if t.Delta(src, dst, 1) <= 0 {
		return SFull(t, src, dst)
	}
	return big.NewInt(1)
}

// SNegativeFirst returns the Section 3.4 closed form for the
// negative-first algorithm, generalized to n dimensions: the full
// multinomial when all nonzero offsets share one sign (the whole route
// lies in a single phase), otherwise the product of the phase
// multinomials — for the 2D case, 1 on mixed-sign pairs, as the paper's
// table states (the paper's "0 otherwise" is a typographical slip: the
// algorithm always has at least one minimal path, and the exhaustive
// count in this package's tests confirms the value 1).
func SNegativeFirst(t *topology.Topology, src, dst topology.NodeID) *big.Int {
	var neg, pos []int
	for i := 0; i < t.NumDims(); i++ {
		d := t.Delta(src, dst, i)
		if d < 0 {
			neg = append(neg, d)
		} else if d > 0 {
			pos = append(pos, d)
		}
	}
	// Phase 1 routes the negative offsets adaptively, phase 2 the
	// positive ones; orderings never interleave across phases.
	r := Multinomial(neg)
	return r.Mul(r, Multinomial(pos))
}

// SABONF returns the shortest-path count of the all-but-one-negative-
// first algorithm with the given excluded dimension: phase 1 routes the
// negative offsets of the non-excluded dimensions adaptively; phase 2
// routes everything else adaptively.
func SABONF(t *topology.Topology, src, dst topology.NodeID, excluded int) *big.Int {
	var phase1, phase2 []int
	for i := 0; i < t.NumDims(); i++ {
		d := t.Delta(src, dst, i)
		if d == 0 {
			continue
		}
		if d < 0 && i != excluded {
			phase1 = append(phase1, d)
		} else {
			phase2 = append(phase2, d)
		}
	}
	r := Multinomial(phase1)
	return r.Mul(r, Multinomial(phase2))
}

// SABOPL returns the shortest-path count of the all-but-one-positive-
// last algorithm with the given special dimension: phase 1 routes the
// negative offsets plus the special dimension's positive offset
// adaptively; phase 2 routes the remaining positive offsets adaptively.
func SABOPL(t *topology.Topology, src, dst topology.NodeID, special int) *big.Int {
	var phase1, phase2 []int
	for i := 0; i < t.NumDims(); i++ {
		d := t.Delta(src, dst, i)
		if d == 0 {
			continue
		}
		if d < 0 || i == special {
			phase1 = append(phase1, d)
		} else {
			phase2 = append(phase2, d)
		}
	}
	r := Multinomial(phase1)
	return r.Mul(r, Multinomial(phase2))
}

// CountShortestPaths exhaustively counts the shortest paths from src to
// dst that the routing relation permits, by dynamic programming over
// (node, arrival direction) states. It works for any Algorithm whose
// candidates on shortest paths are themselves minimal (all algorithms in
// this repository when walked minimally).
func CountShortestPaths(alg routing.Algorithm, src, dst topology.NodeID) *big.Int {
	t := alg.Topology()
	if src == dst {
		return big.NewInt(1)
	}
	type state struct {
		node topology.NodeID
		in   int // direction index, 2n for injected
	}
	memo := make(map[state]*big.Int)
	w := 2 * t.NumDims()
	var count func(cur topology.NodeID, in routing.InPort) *big.Int
	count = func(cur topology.NodeID, in routing.InPort) *big.Int {
		if cur == dst {
			return big.NewInt(1)
		}
		key := state{node: cur, in: w}
		if !in.Injected {
			key.in = in.Dir.Index()
		}
		if v, ok := memo[key]; ok {
			return v
		}
		total := new(big.Int)
		dist := t.Distance(cur, dst)
		for _, d := range routing.CandidateList(alg, cur, dst, in) {
			next, ok := t.Neighbor(cur, d)
			if !ok {
				continue
			}
			if t.Distance(next, dst) != dist-1 {
				continue // ignore nonminimal candidates
			}
			total.Add(total, count(next, routing.Arrived(d)))
		}
		memo[key] = total
		return total
	}
	return count(src, routing.Injected)
}

// RatioStats summarizes S_p/S_f over source-destination pairs.
type RatioStats struct {
	// MeanRatio is the average of S_p/S_f across all ordered pairs of
	// distinct nodes.
	MeanRatio float64
	// FractionSingle is the fraction of pairs with S_p = 1.
	FractionSingle float64
	// Pairs is the number of pairs examined.
	Pairs int
}

// SFunc computes a shortest-path count for a pair.
type SFunc func(src, dst topology.NodeID) *big.Int

// AverageRatio computes RatioStats for sp against the fully adaptive
// count over every ordered pair of distinct nodes in t. Section 3.4
// reports that the mean ratio exceeds 1/2 for the 2D partially adaptive
// algorithms, and Section 4.1 that it exceeds 1/2^(n-1) in n dimensions.
func AverageRatio(t *topology.Topology, sp SFunc) RatioStats {
	var sumRatio float64
	var single, pairs int
	one := big.NewInt(1)
	for src := topology.NodeID(0); src < topology.NodeID(t.Nodes()); src++ {
		for dst := topology.NodeID(0); dst < topology.NodeID(t.Nodes()); dst++ {
			if src == dst {
				continue
			}
			pairs++
			p := sp(src, dst)
			f := SFull(t, src, dst)
			r, _ := new(big.Rat).SetFrac(p, f).Float64()
			sumRatio += r
			if p.Cmp(one) == 0 {
				single++
			}
		}
	}
	return RatioStats{
		MeanRatio:      sumRatio / float64(pairs),
		FractionSingle: float64(single) / float64(pairs),
		Pairs:          pairs,
	}
}

// HopChoice records one row of the Section 5 table: the node the header
// occupies, the number of minimal choices the p-cube algorithm offers
// there, the extra nonminimal choices, and the dimension the listed
// path takes.
type HopChoice struct {
	Node              topology.NodeID
	Choices           int
	NonminimalChoices int
	DimensionTaken    int
	Phase             int // 1 or 2; 0 for the destination row
}

// PCubeWalkChoices reproduces the Section 5 table: it walks the given
// dimension sequence from src to dst under minimal p-cube routing and,
// at each hop, reports how many minimal choices were available and how
// many more the nonminimal variant (Figure 12) would add.
func PCubeWalkChoices(t *topology.Topology, src, dst topology.NodeID, dims []int) []HopChoice {
	if !t.IsHypercube() {
		panic("adapt: PCubeWalkChoices requires a hypercube")
	}
	n := t.NumDims()
	cur := routing.AddrOf(src)
	d := routing.AddrOf(dst)
	var rows []HopChoice
	for _, dim := range dims {
		minimal := routing.PCubeMinimalSteps(cur, d, n)
		phase1 := cur&^d != 0
		nonminimal := routing.PCubeNonminimalSteps(cur, d, n, phase1)
		phase := 2
		if phase1 {
			phase = 1
		}
		rows = append(rows, HopChoice{
			Node:              cur.NodeOf(),
			Choices:           popcount(minimal),
			NonminimalChoices: popcount(nonminimal) - popcount(minimal),
			DimensionTaken:    dim,
			Phase:             phase,
		})
		if minimal&(1<<uint(dim)) == 0 {
			panic("adapt: listed path takes a dimension p-cube does not offer")
		}
		cur ^= 1 << uint(dim)
	}
	if cur != d {
		panic("adapt: dimension sequence does not reach the destination")
	}
	rows = append(rows, HopChoice{Node: cur.NodeOf()})
	return rows
}

func popcount(a routing.Addr) int {
	n := 0
	for ; a != 0; a &= a - 1 {
		n++
	}
	return n
}
