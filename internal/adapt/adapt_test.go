package adapt

import (
	"math/big"
	"testing"
	"testing/quick"

	"turnmodel/internal/routing"
	"turnmodel/internal/topology"
)

// TestAdaptivenessFormulasMatchEnumeration verifies every Section 3.4
// closed form against exhaustive path counting over the actual routing
// relations, for all pairs of a 5x5 mesh.
func TestAdaptivenessFormulasMatchEnumeration2D(t *testing.T) {
	topo := topology.NewMesh(5, 5)
	cases := []struct {
		alg routing.Algorithm
		fn  SFunc
	}{
		{routing.NewFullyAdaptive(topo), func(s, d topology.NodeID) *big.Int { return SFull(topo, s, d) }},
		{routing.NewWestFirst(topo), func(s, d topology.NodeID) *big.Int { return SWestFirst(topo, s, d) }},
		{routing.NewNorthLast(topo), func(s, d topology.NodeID) *big.Int { return SNorthLast(topo, s, d) }},
		{routing.NewNegativeFirst(topo), func(s, d topology.NodeID) *big.Int { return SNegativeFirst(topo, s, d) }},
	}
	for _, c := range cases {
		for src := topology.NodeID(0); src < topology.NodeID(topo.Nodes()); src++ {
			for dst := topology.NodeID(0); dst < topology.NodeID(topo.Nodes()); dst++ {
				if src == dst {
					continue
				}
				want := c.fn(src, dst)
				got := CountShortestPaths(c.alg, src, dst)
				if got.Cmp(want) != 0 {
					t.Fatalf("%s %v->%v: enumerated %v, formula %v",
						c.alg.Name(), topo.Coord(src), topo.Coord(dst), got, want)
				}
			}
		}
	}
}

// TestPaperNegativeFirstZeroIsTypo: the paper's S_negative-first table
// prints "0 otherwise", but a deadlock-free connected algorithm always
// has at least one path; the enumeration shows the value is 1 on every
// mixed-sign pair.
func TestPaperNegativeFirstZeroIsTypo(t *testing.T) {
	topo := topology.NewMesh(6, 6)
	alg := routing.NewNegativeFirst(topo)
	one := big.NewInt(1)
	src := topo.ID(topology.Coord{1, 4})
	dst := topo.ID(topology.Coord{4, 1}) // east-south: mixed signs
	if got := CountShortestPaths(alg, src, dst); got.Cmp(one) != 0 {
		t.Fatalf("mixed-sign pair has %v paths, want exactly 1", got)
	}
}

// TestABONFABOPLFormulas: the n-dimensional phase formulas match
// enumeration on a 3D mesh.
func TestABONFABOPLFormulas(t *testing.T) {
	topo := topology.NewMesh(3, 3, 3)
	for e := 0; e < 3; e++ {
		alg := routing.NewABONF(topo, e)
		for src := topology.NodeID(0); src < topology.NodeID(topo.Nodes()); src++ {
			for dst := topology.NodeID(0); dst < topology.NodeID(topo.Nodes()); dst++ {
				if src == dst {
					continue
				}
				want := SABONF(topo, src, dst, e)
				if got := CountShortestPaths(alg, src, dst); got.Cmp(want) != 0 {
					t.Fatalf("abonf(%d) %d->%d: enumerated %v, formula %v", e, src, dst, got, want)
				}
			}
		}
	}
	for s := 0; s < 3; s++ {
		alg := routing.NewABOPL(topo, s)
		for src := topology.NodeID(0); src < topology.NodeID(topo.Nodes()); src++ {
			for dst := topology.NodeID(0); dst < topology.NodeID(topo.Nodes()); dst++ {
				if src == dst {
					continue
				}
				want := SABOPL(topo, src, dst, s)
				if got := CountShortestPaths(alg, src, dst); got.Cmp(want) != 0 {
					t.Fatalf("abopl(%d) %d->%d: enumerated %v, formula %v", s, src, dst, got, want)
				}
			}
		}
	}
}

// TestPCubeCountFormula: S_p-cube = h1!h0! matches enumeration on a
// 5-cube, and S_f = h!.
func TestPCubeCountFormula(t *testing.T) {
	topo := topology.NewHypercube(5)
	pc := routing.NewPCube(topo)
	full := routing.NewFullyAdaptive(topo)
	for src := topology.NodeID(0); src < 32; src++ {
		for dst := topology.NodeID(0); dst < 32; dst++ {
			if src == dst {
				continue
			}
			want := routing.NumShortestPCube(routing.AddrOf(src), routing.AddrOf(dst))
			if got := CountShortestPaths(pc, src, dst); got.Int64() != want {
				t.Fatalf("p-cube %d->%d: enumerated %v, formula %d", src, dst, got, want)
			}
			wantF := routing.NumShortestFullHypercube(routing.AddrOf(src), routing.AddrOf(dst))
			if got := CountShortestPaths(full, src, dst); got.Int64() != wantF {
				t.Fatalf("full %d->%d: enumerated %v, formula %d", src, dst, got, wantF)
			}
		}
	}
}

// TestMultinomial basics and symmetry.
func TestMultinomial(t *testing.T) {
	if got := Multinomial([]int{3, 2}); got.Int64() != 10 {
		t.Errorf("C(5,2) = %v, want 10", got)
	}
	if got := Multinomial([]int{-3, 2}); got.Int64() != 10 {
		t.Errorf("sign should not matter: %v", got)
	}
	if got := Multinomial([]int{0, 0}); got.Int64() != 1 {
		t.Errorf("empty multinomial = %v, want 1", got)
	}
	if got := Multinomial([]int{2, 3, 4}); got.Int64() != 1260 {
		t.Errorf("9!/(2!3!4!) = %v, want 1260", got)
	}
}

// TestMultinomialProperty: multinomial(a,b) = C(a+b, a).
func TestMultinomialProperty(t *testing.T) {
	f := func(ra, rb uint8) bool {
		a, b := int(ra)%12, int(rb)%12
		m := Multinomial([]int{a, b})
		binom := new(big.Int).Binomial(int64(a+b), int64(a))
		return m.Cmp(binom) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestSRatioBounds: 1 <= S_p <= S_f for every pair (property).
func TestSRatioBounds(t *testing.T) {
	topo := topology.NewMesh(9, 9)
	one := big.NewInt(1)
	f := func(ra, rb uint8) bool {
		src := topology.NodeID(int(ra) % topo.Nodes())
		dst := topology.NodeID(int(rb) % topo.Nodes())
		if src == dst {
			return true
		}
		full := SFull(topo, src, dst)
		for _, sp := range []*big.Int{
			SWestFirst(topo, src, dst),
			SNorthLast(topo, src, dst),
			SNegativeFirst(topo, src, dst),
		} {
			if sp.Cmp(one) < 0 || sp.Cmp(full) > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestAverageRatioClaims: Section 3.4's quantitative statements on the
// 16x16 mesh: S_p = 1 for at least half of the pairs, yet the mean
// S_p/S_f exceeds 1/2.
func TestAverageRatioClaims(t *testing.T) {
	topo := topology.NewMesh(16, 16)
	for _, c := range []struct {
		name string
		fn   SFunc
	}{
		{"west-first", func(s, d topology.NodeID) *big.Int { return SWestFirst(topo, s, d) }},
		{"north-last", func(s, d topology.NodeID) *big.Int { return SNorthLast(topo, s, d) }},
		{"negative-first", func(s, d topology.NodeID) *big.Int { return SNegativeFirst(topo, s, d) }},
	} {
		r := AverageRatio(topo, c.fn)
		if r.MeanRatio <= 0.5 {
			t.Errorf("%s: mean S_p/S_f = %.4f, paper claims > 1/2", c.name, r.MeanRatio)
		}
		if r.FractionSingle < 0.5 {
			t.Errorf("%s: fraction with S_p=1 = %.4f, paper claims at least half", c.name, r.FractionSingle)
		}
		if r.Pairs != 256*255 {
			t.Errorf("%s: %d pairs", c.name, r.Pairs)
		}
	}
	// The fully adaptive ratio is exactly 1.
	full := AverageRatio(topo, func(s, d topology.NodeID) *big.Int { return SFull(topo, s, d) })
	if full.MeanRatio != 1 {
		t.Errorf("fully adaptive mean ratio = %v, want 1", full.MeanRatio)
	}
}

// TestHypercubeRatioBound: Section 4.1: the mean ratio stays above
// 1/2^(n-1) in an n-cube.
func TestHypercubeRatioBound(t *testing.T) {
	topo := topology.NewHypercube(8)
	r := AverageRatio(topo, func(s, d topology.NodeID) *big.Int { return SNegativeFirst(topo, s, d) })
	lower := 1.0 / float64(int(1)<<7)
	if r.MeanRatio <= lower {
		t.Errorf("mean ratio %.6f should exceed 1/2^(n-1) = %.6f", r.MeanRatio, lower)
	}
	if r.MeanRatio >= 1 {
		t.Errorf("mean ratio %.6f should be below 1 (partially adaptive)", r.MeanRatio)
	}
}

// TestSection5TenCubeTable reproduces the paper's Section 5 table
// exactly: choices 3(+2), 2(+2), 1(+2), 3, 2, 1 along the printed path.
func TestSection5TenCubeTable(t *testing.T) {
	topo := topology.NewHypercube(10)
	src := topology.NodeID(0b1011010100)
	dst := topology.NodeID(0b0010111001)
	rows := PCubeWalkChoices(topo, src, dst, []int{2, 9, 6, 5, 0, 3})
	wantChoices := []int{3, 2, 1, 3, 2, 1}
	wantExtra := []int{2, 2, 2, 0, 0, 0}
	wantAddr := []topology.NodeID{
		0b1011010100, 0b1011010000, 0b0011010000,
		0b0010010000, 0b0010110000, 0b0010110001, 0b0010111001,
	}
	if len(rows) != 7 {
		t.Fatalf("%d rows, want 7", len(rows))
	}
	for i, r := range rows {
		if r.Node != wantAddr[i] {
			t.Errorf("row %d: address %010b, want %010b", i, uint(r.Node), uint(wantAddr[i]))
		}
		if i == len(rows)-1 {
			continue
		}
		if r.Choices != wantChoices[i] || r.NonminimalChoices != wantExtra[i] {
			t.Errorf("row %d: choices %d(+%d), want %d(+%d)", i, r.Choices, r.NonminimalChoices, wantChoices[i], wantExtra[i])
		}
		wantPhase := 1
		if i >= 3 {
			wantPhase = 2
		}
		if r.Phase != wantPhase {
			t.Errorf("row %d: phase %d, want %d", i, r.Phase, wantPhase)
		}
	}
}

// TestPCubeWalkChoicesPanics on bad walks.
func TestPCubeWalkChoicesPanics(t *testing.T) {
	topo := topology.NewHypercube(4)
	for name, fn := range map[string]func(){
		"not reaching": func() { PCubeWalkChoices(topo, 0, 0b1111, []int{0}) },
		"illegal dim":  func() { PCubeWalkChoices(topo, 0b0001, 0b0011, []int{0}) }, // dim 0 is 0->? c0=1,d0=1: not offered minimally
		"non-cube":     func() { PCubeWalkChoices(topology.NewMesh(4, 4), 0, 1, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestCountShortestPathsSelf.
func TestCountShortestPathsSelf(t *testing.T) {
	topo := topology.NewMesh(3, 3)
	if got := CountShortestPaths(routing.NewWestFirst(topo), 4, 4); got.Int64() != 1 {
		t.Errorf("self count = %v, want 1", got)
	}
}

// TestDimensionOrderSinglePath: the nonadaptive baseline has exactly one
// path everywhere — the "no adaptiveness" statement under Figure 3.
func TestDimensionOrderSinglePath(t *testing.T) {
	topo := topology.NewMesh(6, 6)
	alg := routing.NewDimensionOrder(topo)
	one := big.NewInt(1)
	for src := topology.NodeID(0); src < topology.NodeID(topo.Nodes()); src++ {
		for dst := topology.NodeID(0); dst < topology.NodeID(topo.Nodes()); dst++ {
			if src == dst {
				continue
			}
			if CountShortestPaths(alg, src, dst).Cmp(one) != 0 {
				t.Fatalf("xy has multiple paths %d->%d", src, dst)
			}
		}
	}
}
