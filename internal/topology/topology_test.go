package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCoordRoundTrip(t *testing.T) {
	tops := []*Topology{
		NewMesh(16, 16),
		NewMesh(3, 4, 5),
		NewHypercube(8),
		NewTorus(8, 2),
		NewMesh(2, 2),
	}
	for _, topo := range tops {
		for id := NodeID(0); id < NodeID(topo.Nodes()); id++ {
			c := topo.Coord(id)
			if got := topo.ID(c); got != id {
				t.Errorf("%v: ID(Coord(%d)) = %d", topo, id, got)
			}
			for dim := 0; dim < topo.NumDims(); dim++ {
				if c[dim] != topo.CoordOf(id, dim) {
					t.Errorf("%v: CoordOf(%d,%d) = %d, want %d", topo, id, dim, topo.CoordOf(id, dim), c[dim])
				}
			}
		}
	}
}

func TestCoordRoundTripProperty(t *testing.T) {
	topo := NewMesh(7, 3, 5, 2)
	f := func(raw uint32) bool {
		id := NodeID(int(raw) % topo.Nodes())
		return topo.ID(topo.Coord(id)) == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNeighborSymmetry(t *testing.T) {
	for _, topo := range []*Topology{NewMesh(5, 7), NewTorus(6, 2), NewHypercube(5), NewMesh(3, 3, 3)} {
		topo.Channels(func(c Channel) {
			to := topo.ChannelTo(c)
			back, ok := topo.Neighbor(to, c.Dir.Opposite())
			if !ok || back != c.From {
				t.Errorf("%v: channel %v not symmetric: back=%d ok=%v", topo, c, back, ok)
			}
		})
	}
}

func TestChannelCounts(t *testing.T) {
	cases := []struct {
		topo *Topology
		want int
	}{
		// An m x n mesh has 2(m-1)n + 2m(n-1) unidirectional channels.
		{NewMesh(16, 16), 2*15*16 + 2*16*15},
		{NewMesh(4, 3), 2*3*3 + 2*4*2},
		// A binary n-cube has n * 2^n.
		{NewHypercube(8), 8 * 256},
		// A k-ary n-cube (k>2) has 2n * k^n.
		{NewTorus(8, 2), 4 * 64},
		{NewTorus(4, 3), 6 * 64},
		// A 2-ary n-cube degenerates to the hypercube.
		{NewTorus(2, 4), 4 * 16},
	}
	for _, c := range cases {
		if got := c.topo.NumChannels(); got != c.want {
			t.Errorf("%v: NumChannels = %d, want %d", c.topo, got, c.want)
		}
	}
}

func TestChannelIDRoundTrip(t *testing.T) {
	for _, topo := range []*Topology{NewMesh(5, 7), NewTorus(4, 3), NewHypercube(6)} {
		seen := make(map[int]bool)
		topo.Channels(func(c Channel) {
			id := topo.ChannelID(c)
			if id < 0 || id >= topo.NumChannelIDs() {
				t.Fatalf("%v: channel ID %d out of range", topo, id)
			}
			if seen[id] {
				t.Fatalf("%v: duplicate channel ID %d", topo, id)
			}
			seen[id] = true
			if got := topo.ChannelFromID(id); got != c {
				t.Fatalf("%v: ChannelFromID(ChannelID(%v)) = %v", topo, c, got)
			}
		})
	}
}

func TestMeshBoundaries(t *testing.T) {
	m := NewMesh(4, 4)
	west := Direction{Dim: 0}
	east := Direction{Dim: 0, Pos: true}
	if m.HasChannel(m.ID(Coord{0, 2}), west) {
		t.Error("mesh west edge should have no west channel")
	}
	if m.HasChannel(m.ID(Coord{3, 2}), east) {
		t.Error("mesh east edge should have no east channel")
	}
	if !m.HasChannel(m.ID(Coord{1, 2}), west) || !m.HasChannel(m.ID(Coord{1, 2}), east) {
		t.Error("interior node missing channels")
	}
}

func TestTorusWraparound(t *testing.T) {
	k := 5
	tor := NewTorus(k, 2)
	east := Direction{Dim: 0, Pos: true}
	west := Direction{Dim: 0}
	edge := tor.ID(Coord{k - 1, 2})
	to, ok := tor.Neighbor(edge, east)
	if !ok || tor.CoordOf(to, 0) != 0 {
		t.Fatalf("torus east wrap: got %d ok=%v", to, ok)
	}
	if !tor.IsWraparound(Channel{From: edge, Dir: east}) {
		t.Error("east channel from the east edge should be a wraparound")
	}
	if tor.IsWraparound(Channel{From: edge, Dir: west}) {
		t.Error("west channel from the east edge is a mesh channel")
	}
	low := tor.ID(Coord{0, 2})
	if !tor.IsWraparound(Channel{From: low, Dir: west}) {
		t.Error("west channel from the west edge should be a wraparound")
	}
}

func TestDistanceMesh(t *testing.T) {
	m := NewMesh(8, 8)
	if d := m.Distance(m.ID(Coord{0, 0}), m.ID(Coord{7, 7})); d != 14 {
		t.Errorf("corner distance = %d, want 14", d)
	}
	if d := m.Distance(m.ID(Coord{3, 4}), m.ID(Coord{3, 4})); d != 0 {
		t.Errorf("self distance = %d, want 0", d)
	}
}

func TestDistanceTorus(t *testing.T) {
	tor := NewTorus(8, 2)
	// Opposite corners are 4+4 away via wraparound, not 7+7.
	if d := tor.Distance(tor.ID(Coord{0, 0}), tor.ID(Coord{7, 7})); d != 2 {
		t.Errorf("torus corner distance = %d, want 2 (wraps)", d)
	}
	if d := tor.Distance(tor.ID(Coord{0, 0}), tor.ID(Coord{4, 0})); d != 4 {
		t.Errorf("torus half-way distance = %d, want 4", d)
	}
}

func TestDistanceTriangleInequalityProperty(t *testing.T) {
	topo := NewTorus(6, 2)
	rng := rand.New(rand.NewSource(1))
	f := func() bool {
		a := NodeID(rng.Intn(topo.Nodes()))
		b := NodeID(rng.Intn(topo.Nodes()))
		c := NodeID(rng.Intn(topo.Nodes()))
		return topo.Distance(a, c) <= topo.Distance(a, b)+topo.Distance(b, c) &&
			topo.Distance(a, b) == topo.Distance(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestMinDeltaMovesCloser(t *testing.T) {
	for _, topo := range []*Topology{NewMesh(7, 7), NewTorus(7, 2), NewHypercube(6)} {
		rng := rand.New(rand.NewSource(2))
		f := func() bool {
			src := NodeID(rng.Intn(topo.Nodes()))
			dst := NodeID(rng.Intn(topo.Nodes()))
			if src == dst {
				return true
			}
			for dim := 0; dim < topo.NumDims(); dim++ {
				d := topo.MinDelta(src, dst, dim)
				if d == 0 {
					continue
				}
				next, ok := topo.Neighbor(src, Direction{Dim: dim, Pos: d > 0})
				if !ok || topo.Distance(next, dst) != topo.Distance(src, dst)-1 {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
			t.Errorf("%v: %v", topo, err)
		}
	}
}

func TestFaults(t *testing.T) {
	m := NewMesh(4, 4)
	ch := Channel{From: m.ID(Coord{1, 1}), Dir: Direction{Dim: 0, Pos: true}}
	if !m.Enabled(ch) {
		t.Fatal("channel should start enabled")
	}
	epoch := m.FaultEpoch()
	m.DisableChannel(ch)
	if m.Enabled(ch) {
		t.Error("disabled channel reported enabled")
	}
	if !m.HasFaults() {
		t.Error("HasFaults should be true")
	}
	if m.FaultEpoch() == epoch {
		t.Error("fault epoch should change on disable")
	}
	m.EnableChannel(ch)
	if !m.Enabled(ch) || m.HasFaults() {
		t.Error("re-enabled channel should be healthy")
	}
}

func TestOnFaultChange(t *testing.T) {
	m := NewMesh(4, 4)
	ch := Channel{From: m.ID(Coord{1, 1}), Dir: Direction{Dim: 0, Pos: true}}
	calls := 0
	var epochSeen int
	m.OnFaultChange(func() {
		calls++
		// The epoch must already have advanced when the hook fires, so a
		// cache that recompiles inside the callback sees fresh state.
		epochSeen = m.FaultEpoch()
	})
	m.DisableChannel(ch)
	if calls != 1 {
		t.Fatalf("hook fired %d times after one disable, want 1", calls)
	}
	if epochSeen != m.FaultEpoch() {
		t.Errorf("hook saw epoch %d, current is %d", epochSeen, m.FaultEpoch())
	}
	m.EnableChannel(ch)
	if calls != 2 {
		t.Errorf("hook fired %d times after disable+enable, want 2", calls)
	}
	// A second hook and the first must both fire.
	m.OnFaultChange(func() { calls += 10 })
	m.DisableChannel(ch)
	if calls != 13 {
		t.Errorf("calls = %d after second hook fired, want 13", calls)
	}
}

func TestDisableNonexistentChannelErrors(t *testing.T) {
	m := NewMesh(4, 4)
	epoch := m.FaultEpoch()
	if err := m.DisableChannel(Channel{From: m.ID(Coord{0, 0}), Dir: Direction{Dim: 0}}); err == nil {
		t.Error("expected error disabling a boundary channel")
	}
	if err := m.DisableChannel(Channel{From: NodeID(99), Dir: Direction{Dim: 0, Pos: true}}); err == nil {
		t.Error("expected error disabling a channel at an out-of-range node")
	}
	if err := m.DisableChannel(Channel{From: 0, Dir: Direction{Dim: 5, Pos: true}}); err == nil {
		t.Error("expected error disabling a channel in an out-of-range dimension")
	}
	if err := m.EnableChannel(Channel{From: m.ID(Coord{0, 0}), Dir: Direction{Dim: 0}}); err == nil {
		t.Error("expected error enabling a boundary channel")
	}
	if m.FaultEpoch() != epoch {
		t.Error("failed disable/enable calls must not advance the fault epoch")
	}
}

func TestIDCheckedAndCheckNode(t *testing.T) {
	m := NewMesh(4, 4)
	if _, err := m.IDChecked(Coord{1, 2}); err != nil {
		t.Errorf("IDChecked rejected an in-range coordinate: %v", err)
	}
	if _, err := m.IDChecked(Coord{4, 0}); err == nil {
		t.Error("IDChecked accepted an out-of-range coordinate")
	}
	if _, err := m.IDChecked(Coord{1}); err == nil {
		t.Error("IDChecked accepted a coordinate with wrong arity")
	}
	if err := m.CheckNode(15); err != nil {
		t.Errorf("CheckNode rejected a valid node: %v", err)
	}
	if err := m.CheckNode(16); err == nil {
		t.Error("CheckNode accepted an out-of-range node")
	}
	if err := m.CheckNode(-1); err == nil {
		t.Error("CheckNode accepted a negative node")
	}
}

func TestDirectionEncoding(t *testing.T) {
	for i := 0; i < 12; i++ {
		d := DirectionFromIndex(i)
		if d.Index() != i {
			t.Errorf("direction index round trip failed for %d", i)
		}
		if d.Opposite().Opposite() != d {
			t.Errorf("double opposite of %v changed it", d)
		}
		if d.Opposite().Dim != d.Dim || d.Opposite().Pos == d.Pos {
			t.Errorf("opposite of %v wrong: %v", d, d.Opposite())
		}
	}
}

func TestDirectionNames(t *testing.T) {
	cases := map[Direction]string{
		{Dim: 0, Pos: true}:  "east",
		{Dim: 0, Pos: false}: "west",
		{Dim: 1, Pos: true}:  "north",
		{Dim: 1, Pos: false}: "south",
		{Dim: 2, Pos: true}:  "+2",
		{Dim: 3, Pos: false}: "-3",
	}
	for d, want := range cases {
		if d.String() != want {
			t.Errorf("%#v.String() = %q, want %q", d, d.String(), want)
		}
	}
}

func TestTopologyStrings(t *testing.T) {
	cases := map[string]*Topology{
		"16x16 mesh":    NewMesh(16, 16),
		"binary 8-cube": NewHypercube(8),
		"8-ary 2-cube":  NewTorus(8, 2),
		"3x4x5 mesh":    NewMesh(3, 4, 5),
	}
	for want, topo := range cases {
		if topo.String() != want {
			t.Errorf("String() = %q, want %q", topo.String(), want)
		}
	}
}

func TestHypercubeIsMeshAndTorus(t *testing.T) {
	// "A hypercube is an n-dimensional mesh in which k_i = 2 ... or a
	// 2-ary n-cube" — both constructions must agree on the channel set.
	asMesh := NewHypercube(4)
	asTorus := NewTorus(2, 4)
	if !asMesh.IsHypercube() || !asTorus.IsHypercube() {
		t.Fatal("both should report hypercube")
	}
	if asMesh.NumChannels() != asTorus.NumChannels() {
		t.Errorf("channel counts differ: %d vs %d", asMesh.NumChannels(), asTorus.NumChannels())
	}
	for id := NodeID(0); id < NodeID(asMesh.Nodes()); id++ {
		for i := 0; i < 8; i++ {
			d := DirectionFromIndex(i)
			n1, ok1 := asMesh.Neighbor(id, d)
			n2, ok2 := asTorus.Neighbor(id, d)
			if ok1 != ok2 || (ok1 && n1 != n2) {
				t.Fatalf("node %d dir %v: mesh (%d,%v) vs torus (%d,%v)", id, d, n1, ok1, n2, ok2)
			}
		}
	}
}

func TestBadConstructionPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty dims":  func() { NewMesh() },
		"dim too low": func() { NewMesh(4, 1) },
		"bad coord":   func() { NewMesh(4, 4).ID(Coord{4, 0}) },
		"coord dims":  func() { NewMesh(4, 4).ID(Coord{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
