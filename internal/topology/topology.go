// Package topology models the direct-network topologies studied in the
// turn-model paper: n-dimensional meshes, k-ary n-cubes (tori), and
// hypercubes (the k=2 special case of both).
//
// A topology is a set of nodes identified by dense integer IDs, each with
// a coordinate vector, connected by unidirectional channels. Every pair of
// neighboring nodes is connected by a pair of opposite unidirectional
// channels, exactly as in the paper's simulation setup. Channels may be
// disabled to model faults.
package topology

import (
	"fmt"
	"strings"
	"sync"
)

// NodeID identifies a node. IDs are dense in [0, Nodes()).
type NodeID int

// Coord is a coordinate vector (x_0, x_1, ..., x_{n-1}).
type Coord []int

// Direction identifies movement along one dimension, either toward higher
// coordinates (positive) or lower coordinates (negative). In the 2D mesh
// terminology of the paper, -x is west, +x is east, -y is south and +y is
// north.
type Direction struct {
	Dim int
	Pos bool
}

// Index returns a dense encoding of the direction in [0, 2n):
// 2*Dim for the negative direction and 2*Dim+1 for the positive one.
func (d Direction) Index() int {
	i := 2 * d.Dim
	if d.Pos {
		i++
	}
	return i
}

// DirectionFromIndex is the inverse of Direction.Index.
func DirectionFromIndex(i int) Direction {
	return Direction{Dim: i / 2, Pos: i%2 == 1}
}

// Opposite returns the 180-degree reverse of d.
func (d Direction) Opposite() Direction { return Direction{Dim: d.Dim, Pos: !d.Pos} }

// String renders directions using the paper's compass names for the first
// two dimensions and +i/-i beyond.
func (d Direction) String() string {
	if d.Dim < 2 {
		switch {
		case d.Dim == 0 && d.Pos:
			return "east"
		case d.Dim == 0:
			return "west"
		case d.Pos:
			return "north"
		default:
			return "south"
		}
	}
	if d.Pos {
		return fmt.Sprintf("+%d", d.Dim)
	}
	return fmt.Sprintf("-%d", d.Dim)
}

// Channel is a unidirectional network channel leaving node From in
// direction Dir. The destination node is determined by the topology
// (see Topology.ChannelTo).
type Channel struct {
	From NodeID
	Dir  Direction
}

func (c Channel) String() string {
	return fmt.Sprintf("ch(%d %s)", c.From, c.Dir)
}

// Kind distinguishes the topology families supported.
type Kind int

const (
	// KindMesh is an n-dimensional mesh without wraparound channels.
	KindMesh Kind = iota
	// KindTorus is a k-ary n-cube: a mesh plus wraparound channels in
	// every dimension with k > 2.
	KindTorus
)

func (k Kind) String() string {
	if k == KindTorus {
		return "torus"
	}
	return "mesh"
}

// Topology is an n-dimensional mesh or k-ary n-cube.
//
// The zero value is not usable; construct with NewMesh, NewTorus, or
// NewHypercube.
type Topology struct {
	kind    Kind
	dims    []int
	strides []int
	nodes   int
	// disabled marks faulty channels by dense channel ID.
	disabled []bool
	// faultEpoch increments whenever the fault set changes, so routing
	// layers can invalidate reachability caches.
	faultEpoch int

	// hookMu guards onFault. Registrations may race (e.g. several
	// simulations compiling route tables for algorithms that share one
	// topology), while fault changes themselves happen on whichever
	// goroutine drives the run.
	hookMu  sync.Mutex
	onFault []func()
}

// NewMesh returns an n-dimensional mesh with the given dimension lengths,
// k_i nodes along dimension i. Every k_i must be at least 2.
func NewMesh(dims ...int) *Topology {
	return build(KindMesh, dims)
}

// NewTorus returns a k-ary n-cube. In dimensions of length 2 the
// wraparound channel coincides with the mesh channel (the definition's
// (x±1) mod 2 reaches the same neighbor), so such dimensions behave
// exactly like mesh dimensions, matching the paper's observation that a
// hypercube is both a mesh and a 2-ary n-cube.
func NewTorus(k, n int) *Topology {
	dims := make([]int, n)
	for i := range dims {
		dims[i] = k
	}
	return build(KindTorus, dims)
}

// NewHypercube returns a binary n-cube: an n-dimensional mesh in which
// every k_i = 2.
func NewHypercube(n int) *Topology {
	dims := make([]int, n)
	for i := range dims {
		dims[i] = 2
	}
	return build(KindMesh, dims)
}

func build(kind Kind, dims []int) *Topology {
	if len(dims) == 0 {
		panic("topology: at least one dimension required")
	}
	n := 1
	strides := make([]int, len(dims))
	for i, k := range dims {
		if k < 2 {
			panic(fmt.Sprintf("topology: dimension %d has length %d; need >= 2", i, k))
		}
		strides[i] = n
		n *= k
	}
	t := &Topology{
		kind:    kind,
		dims:    append([]int(nil), dims...),
		strides: strides,
		nodes:   n,
	}
	t.disabled = make([]bool, t.NumChannelIDs())
	return t
}

// Kind reports whether the topology is a mesh or a torus.
func (t *Topology) Kind() Kind { return t.kind }

// Dims returns the dimension lengths k_0..k_{n-1}. The caller must not
// modify the returned slice.
func (t *Topology) Dims() []int { return t.dims }

// NumDims returns the number of dimensions n.
func (t *Topology) NumDims() int { return len(t.dims) }

// Nodes returns the total number of nodes.
func (t *Topology) Nodes() int { return t.nodes }

// IsHypercube reports whether every dimension has length 2.
func (t *Topology) IsHypercube() bool {
	for _, k := range t.dims {
		if k != 2 {
			return false
		}
	}
	return true
}

// wraps reports whether dimension dim has wraparound channels distinct
// from mesh channels.
func (t *Topology) wraps(dim int) bool {
	return t.kind == KindTorus && t.dims[dim] > 2
}

// Coord returns the coordinate vector of id, allocating a new slice.
func (t *Topology) Coord(id NodeID) Coord {
	c := make(Coord, len(t.dims))
	t.CoordInto(id, c)
	return c
}

// CoordInto writes the coordinate vector of id into dst, which must have
// length NumDims.
func (t *Topology) CoordInto(id NodeID, dst Coord) {
	v := int(id)
	for i, k := range t.dims {
		dst[i] = v % k
		v /= k
	}
}

// CoordOf returns the coordinate of node id along dimension dim without
// allocating.
func (t *Topology) CoordOf(id NodeID, dim int) int {
	return int(id) / t.strides[dim] % t.dims[dim]
}

// ID returns the node at coordinate c. It panics on a malformed
// coordinate; use IDChecked to receive an error instead.
func (t *Topology) ID(c Coord) NodeID {
	id, err := t.IDChecked(c)
	if err != nil {
		panic(err.Error())
	}
	return id
}

// IDChecked returns the node at coordinate c, or an error when the
// coordinate has the wrong arity or a component out of range. It is the
// non-panicking form of ID, for validating externally supplied
// coordinates (configuration files, command-line flags, fault plans).
func (t *Topology) IDChecked(c Coord) (NodeID, error) {
	if len(c) != len(t.dims) {
		return 0, fmt.Errorf("topology: coordinate has %d dims, topology has %d", len(c), len(t.dims))
	}
	v := 0
	for i := len(c) - 1; i >= 0; i-- {
		if c[i] < 0 || c[i] >= t.dims[i] {
			return 0, fmt.Errorf("topology: coordinate %v out of range in dim %d", c, i)
		}
		v = v*t.dims[i] + c[i]
	}
	return NodeID(v), nil
}

// CheckNode reports whether id names a node of the topology, returning
// an error otherwise. Callers validating externally supplied node IDs
// (scripts, fault plans) use it to fail at configuration time instead
// of corrupting state mid-run.
func (t *Topology) CheckNode(id NodeID) error {
	if id < 0 || int(id) >= t.nodes {
		return fmt.Errorf("topology: node %d out of range [0, %d)", id, t.nodes)
	}
	return nil
}

// HasChannel reports whether the channel leaving node from in direction
// dir exists in the topology (ignoring faults). In a mesh, channels off
// the boundary do not exist; in a torus they wrap around.
func (t *Topology) HasChannel(from NodeID, dir Direction) bool {
	x := t.CoordOf(from, dir.Dim)
	k := t.dims[dir.Dim]
	if t.wraps(dir.Dim) {
		return true
	}
	if dir.Pos {
		return x < k-1
	}
	return x > 0
}

// Neighbor returns the node reached by following dir from node from, and
// whether such a channel exists.
func (t *Topology) Neighbor(from NodeID, dir Direction) (NodeID, bool) {
	if !t.HasChannel(from, dir) {
		return from, false
	}
	x := t.CoordOf(from, dir.Dim)
	k := t.dims[dir.Dim]
	stride := t.strides[dir.Dim]
	var nx int
	if dir.Pos {
		nx = x + 1
		if nx == k {
			nx = 0
		}
	} else {
		nx = x - 1
		if nx < 0 {
			nx = k - 1
		}
	}
	return from + NodeID((nx-x)*stride), true
}

// ChannelTo returns the destination node of channel c. It panics if the
// channel does not exist.
func (t *Topology) ChannelTo(c Channel) NodeID {
	to, ok := t.Neighbor(c.From, c.Dir)
	if !ok {
		panic(fmt.Sprintf("topology: channel %v does not exist", c))
	}
	return to
}

// IsWraparound reports whether channel c crosses the torus boundary.
func (t *Topology) IsWraparound(c Channel) bool {
	if !t.wraps(c.Dir.Dim) {
		return false
	}
	x := t.CoordOf(c.From, c.Dir.Dim)
	if c.Dir.Pos {
		return x == t.dims[c.Dir.Dim]-1
	}
	return x == 0
}

// NumChannelIDs returns the size of the dense channel ID space,
// Nodes() * 2*NumDims(). Not every ID corresponds to an existing channel
// (mesh boundaries); use HasChannel or Channels to enumerate real ones.
func (t *Topology) NumChannelIDs() int { return t.nodes * 2 * len(t.dims) }

// ChannelID returns a dense integer ID for channel c, suitable for array
// indexing. IDs are in [0, NumChannelIDs()).
func (t *Topology) ChannelID(c Channel) int {
	return int(c.From)*2*len(t.dims) + c.Dir.Index()
}

// ChannelFromID is the inverse of ChannelID.
func (t *Topology) ChannelFromID(id int) Channel {
	w := 2 * len(t.dims)
	return Channel{From: NodeID(id / w), Dir: DirectionFromIndex(id % w)}
}

// Channels calls fn for every existing channel in the topology,
// including disabled (faulty) ones.
func (t *Topology) Channels(fn func(Channel)) {
	for v := NodeID(0); v < NodeID(t.nodes); v++ {
		for i := 0; i < 2*len(t.dims); i++ {
			c := Channel{From: v, Dir: DirectionFromIndex(i)}
			if t.HasChannel(v, c.Dir) {
				fn(c)
			}
		}
	}
}

// NumChannels returns the number of existing channels.
func (t *Topology) NumChannels() int {
	n := 0
	t.Channels(func(Channel) { n++ })
	return n
}

// DisableChannel marks channel c as faulty. Faulty channels remain part
// of the topology but Enabled reports false for them; routing layers that
// honor faults will not use them. Disabling a channel that does not
// exist (a node out of range, or a direction off a mesh boundary)
// returns an error and changes nothing.
func (t *Topology) DisableChannel(c Channel) error {
	if err := t.checkChannel(c); err != nil {
		return fmt.Errorf("topology: cannot disable %v: %w", c, err)
	}
	t.disabled[t.ChannelID(c)] = true
	t.faultEpoch++
	t.notifyFaultChange()
	return nil
}

// EnableChannel clears the fault on channel c (repairing it). Like
// DisableChannel it returns an error for a channel that does not exist.
// Enabling an already healthy channel is a no-op that still advances the
// fault epoch.
func (t *Topology) EnableChannel(c Channel) error {
	if err := t.checkChannel(c); err != nil {
		return fmt.Errorf("topology: cannot enable %v: %w", c, err)
	}
	t.disabled[t.ChannelID(c)] = false
	t.faultEpoch++
	t.notifyFaultChange()
	return nil
}

// checkChannel validates that c names an existing channel, including the
// node-range check that ChannelID's dense arithmetic would otherwise
// turn into an out-of-bounds index.
func (t *Topology) checkChannel(c Channel) error {
	if err := t.CheckNode(c.From); err != nil {
		return err
	}
	if c.Dir.Dim < 0 || c.Dir.Dim >= len(t.dims) {
		return fmt.Errorf("direction dimension %d out of range [0, %d)", c.Dir.Dim, len(t.dims))
	}
	if !t.HasChannel(c.From, c.Dir) {
		return fmt.Errorf("channel does not exist")
	}
	return nil
}

// OnFaultChange registers fn to be called after every DisableChannel or
// EnableChannel, once the fault epoch has already advanced. Derived
// caches (e.g. compiled routing tables) use it to drop stale state
// eagerly instead of holding it until the next epoch comparison.
// Callbacks cannot be unregistered; keep them small and idempotent.
func (t *Topology) OnFaultChange(fn func()) {
	t.hookMu.Lock()
	t.onFault = append(t.onFault, fn)
	t.hookMu.Unlock()
}

// notifyFaultChange invokes the registered callbacks outside the hook
// lock, so a callback may itself register further hooks or take locks
// that are held while registering.
func (t *Topology) notifyFaultChange() {
	t.hookMu.Lock()
	hooks := t.onFault
	t.hookMu.Unlock()
	for _, fn := range hooks {
		fn()
	}
}

// FaultEpoch increments whenever DisableChannel or EnableChannel is
// called. Derived caches (e.g. turn-graph reachability) use it to
// detect stale state.
func (t *Topology) FaultEpoch() int { return t.faultEpoch }

// Enabled reports whether channel c exists and is not faulty.
func (t *Topology) Enabled(c Channel) bool {
	return t.HasChannel(c.From, c.Dir) && !t.disabled[t.ChannelID(c)]
}

// HasFaults reports whether any channel is disabled.
func (t *Topology) HasFaults() bool {
	for _, d := range t.disabled {
		if d {
			return true
		}
	}
	return false
}

// Delta returns dst_i - src_i for dimension dim, without considering
// wraparound. A positive value means dst is in the positive direction.
func (t *Topology) Delta(src, dst NodeID, dim int) int {
	return t.CoordOf(dst, dim) - t.CoordOf(src, dim)
}

// MinDelta returns the signed per-dimension offset of the shortest route
// from src to dst along dimension dim. In a mesh this is Delta; in a
// torus the wraparound direction is used when strictly shorter, and the
// non-wrap direction on ties.
func (t *Topology) MinDelta(src, dst NodeID, dim int) int {
	d := t.Delta(src, dst, dim)
	if !t.wraps(dim) {
		return d
	}
	k := t.dims[dim]
	if d > k/2 {
		return d - k
	}
	if -d > k/2 {
		return d + k
	}
	return d
}

// Distance returns the minimal hop count from src to dst.
func (t *Topology) Distance(src, dst NodeID) int {
	h := 0
	for dim := range t.dims {
		d := t.MinDelta(src, dst, dim)
		if d < 0 {
			d = -d
		}
		h += d
	}
	return h
}

// String describes the topology, e.g. "16x16 mesh" or "8-ary 3-cube".
func (t *Topology) String() string {
	if t.IsHypercube() {
		return fmt.Sprintf("binary %d-cube", len(t.dims))
	}
	if t.kind == KindTorus {
		return fmt.Sprintf("%d-ary %d-cube", t.dims[0], len(t.dims))
	}
	parts := make([]string, len(t.dims))
	for i, k := range t.dims {
		parts[i] = fmt.Sprint(k)
	}
	return strings.Join(parts, "x") + " mesh"
}
