package sim

import (
	"bytes"
	"strings"
	"testing"

	"turnmodel/internal/routing"
	"turnmodel/internal/topology"
	"turnmodel/internal/traffic"
)

// TestTraceRoundTrip: write/read preserves messages.
func TestTraceRoundTrip(t *testing.T) {
	msgs := []ScriptedMessage{
		{Cycle: 0, Src: 1, Dst: 2, Length: 10},
		{Cycle: 5, Src: 3, Dst: 0, Length: 200},
		{Cycle: 5, Src: 2, Dst: 1, Length: 1},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, msgs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(msgs) {
		t.Fatalf("got %d messages, want %d", len(got), len(msgs))
	}
	for i := range msgs {
		if got[i] != msgs[i] {
			t.Errorf("message %d: %+v != %+v", i, got[i], msgs[i])
		}
	}
}

// TestTraceRejectsGarbage.
func TestTraceRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"1 2 3", // too few fields
		"a b c d",
		"0 4 4 10", // src == dst
		"0 1 2 0",  // zero length
	} {
		if _, err := ReadTrace(strings.NewReader(bad)); err == nil {
			t.Errorf("trace %q should fail", bad)
		}
	}
	// Blank lines are fine.
	got, err := ReadTrace(strings.NewReader("\n0 1 2 10\n\n"))
	if err != nil || len(got) != 1 {
		t.Errorf("blank lines should be skipped: %v %v", got, err)
	}
}

// TestRecordWorkloadDeterministic: the same configuration records the
// same workload, and different seeds differ.
func TestRecordWorkloadDeterministic(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	cfg := Config{
		Algorithm:   routing.NewDimensionOrder(topo),
		Pattern:     traffic.NewUniform(topo),
		OfferedLoad: 1.0, WarmupCycles: 1, MeasureCycles: 1, Seed: 44,
	}
	a, err := RecordWorkload(cfg, 2000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RecordWorkload(cfg, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("message %d differs", i)
		}
	}
	cfg.Seed = 45
	c, err := RecordWorkload(cfg, 2000)
	if err != nil {
		t.Fatal(err)
	}
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical workloads")
	}
}

// TestCommonWorkloadComparison: replaying one recorded workload against
// two algorithms pins the traffic exactly — both runs deliver the same
// packet population, so throughput differences are purely algorithmic.
func TestCommonWorkloadComparison(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	workload, err := RecordWorkload(Config{
		Algorithm:   routing.NewDimensionOrder(topo),
		Pattern:     traffic.NewMeshTranspose(topo),
		OfferedLoad: 1.0, WarmupCycles: 1, MeasureCycles: 1, Seed: 46,
	}, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if len(workload) == 0 {
		t.Fatal("empty workload")
	}
	var delivered []int64
	for _, alg := range []routing.Algorithm{routing.NewDimensionOrder(topo), routing.NewNegativeFirst(topo)} {
		res, err := Run(Config{
			Algorithm: alg, Script: workload,
			DrainDeadline: 1 << 20, DeadlockThreshold: 100000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Deadlocked {
			t.Fatalf("%s deadlocked on replay", alg.Name())
		}
		delivered = append(delivered, res.PacketsDelivered)
	}
	if delivered[0] != int64(len(workload)) || delivered[1] != int64(len(workload)) {
		t.Errorf("both algorithms must deliver the whole workload: %v of %d", delivered, len(workload))
	}
}

// TestRecordWorkloadRejectsScript.
func TestRecordWorkloadRejectsScript(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	_, err := RecordWorkload(Config{
		Algorithm: routing.NewDimensionOrder(topo),
		Script:    []ScriptedMessage{{Src: 0, Dst: 1, Length: 5}},
	}, 100)
	if err == nil {
		t.Error("expected error for scripted config")
	}
}
