package sim

import (
	"testing"

	"turnmodel/internal/core"
	"turnmodel/internal/routing"
	"turnmodel/internal/topology"
	"turnmodel/internal/traffic"
)

// livePackets walks every container that can hold a packet reference —
// the per-source queue rings and every input buffer's flits — and
// returns the id->pointer map of in-flight packets. Two distinct
// pointers sharing an id, or one pointer carrying two ids, is aliasing:
// a recycled packet handed out while still referenced.
func livePackets(t *testing.T, e *Engine) map[int64]*packet {
	t.Helper()
	live := map[int64]*packet{}
	byPtr := map[*packet]int64{}
	note := func(p *packet, where string) {
		if p == nil {
			t.Fatalf("cycle %d: nil packet in %s", e.cycle, where)
		}
		if prev, ok := live[p.id]; ok && prev != p {
			t.Fatalf("cycle %d: id %d held by two distinct packets (%s)", e.cycle, p.id, where)
		}
		if prevID, ok := byPtr[p]; ok && prevID != p.id {
			t.Fatalf("cycle %d: packet %p changed id %d -> %d while live (%s)", e.cycle, p, prevID, p.id, where)
		}
		live[p.id] = p
		byPtr[p] = p.id
	}
	for v := range e.queues {
		q := &e.queues[v]
		for j := 0; j < q.len(); j++ {
			note(q.at(j), "source queue")
		}
	}
	for i := range e.inbufs {
		for _, f := range e.inbufs[i].q {
			note(f.p, "input buffer")
		}
	}
	return live
}

// checkRecycling asserts the freelist invariants at one instant:
// nothing on the freelist is still referenced by a live container, and
// every genuinely delivered packet on it (length > 0 distinguishes it
// from never-used chunk spares) retired with all flits accounted for.
func checkRecycling(t *testing.T, e *Engine, live map[int64]*packet, released map[*packet]int64) {
	t.Helper()
	liveSet := map[*packet]bool{}
	for _, p := range live {
		liveSet[p] = true
	}
	for _, p := range e.freePkts {
		if liveSet[p] {
			t.Fatalf("cycle %d: freelist packet id %d still referenced by a live container", e.cycle, p.id)
		}
		if p.length > 0 {
			if p.flitsDelivered != p.length {
				t.Fatalf("cycle %d: released packet id %d delivered %d of %d flits",
					e.cycle, p.id, p.flitsDelivered, p.length)
			}
			if p.deliverCycle < p.injectCycle || p.injectCycle < p.genCycle {
				t.Fatalf("cycle %d: released packet id %d has inconsistent lifetime gen=%d inject=%d deliver=%d",
					e.cycle, p.id, p.genCycle, p.injectCycle, p.deliverCycle)
			}
		}
		released[p] = p.id
	}
	// A reacquired pointer must have been reset and renumbered: ids are
	// assigned from a monotone counter, so a live id at or below the id
	// the pointer retired with means stale state leaked back out.
	for _, p := range live {
		if prevID, ok := released[p]; ok {
			if p.id <= prevID {
				t.Fatalf("cycle %d: recycled packet reappeared live with stale id %d (retired as %d)",
					e.cycle, p.id, prevID)
			}
			delete(released, p)
		}
	}
}

// TestPacketRecyclingProperty: across all three switching modes and
// both routing paths (compiled table and direct fallback), with a
// channel failing mid-run, recycled packets never alias live ones.
func TestPacketRecyclingProperty(t *testing.T) {
	const (
		cycles     = 1200
		faultCycle = 400
	)
	for _, sw := range []Switching{Wormhole, StoreAndForward, VirtualCutThrough} {
		for _, tc := range []struct {
			name string
			cfg  func(topo *topology.Topology) Config
		}{
			{"table-west-first", func(topo *topology.Topology) Config {
				return Config{Algorithm: routing.NewWestFirst(topo)}
			}},
			{"fallback-turn-graph", func(topo *topology.Topology) Config {
				return Config{
					Algorithm:     routing.NewTurnGraphRouting(topo, core.WestFirstSet(), false),
					MisrouteAfter: 4,
				}
			}},
		} {
			t.Run(sw.String()+"/"+tc.name, func(t *testing.T) {
				topo := topology.NewMesh(6, 6)
				broken := topology.Channel{From: topo.ID(topology.Coord{2, 2}), Dir: topology.Direction{Dim: 0, Pos: true}}
				defer topo.EnableChannel(broken)

				cfg := tc.cfg(topo)
				cfg.Pattern = traffic.NewUniform(topo)
				cfg.OfferedLoad = 2.0
				cfg.Switching = sw
				cfg.WarmupCycles = 1 << 30 // hand-stepped; never flips measuring
				cfg.MeasureCycles = 1
				cfg.Seed = 7
				e, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if tc.name == "table-west-first" && e.table == nil {
					t.Fatal("west-first should run on a compiled table")
				}
				if tc.name == "fallback-turn-graph" && e.table != nil {
					t.Fatal("turn-graph routing is arrival-dependent and must fall back")
				}

				released := map[*packet]int64{}
				recycledOnce := false
				for i := 0; i < cycles; i++ {
					if e.cycle == faultCycle {
						topo.DisableChannel(broken)
					}
					e.step()
					e.cycle++
					live := livePackets(t, e)
					checkRecycling(t, e, live, released)
					if !recycledOnce {
						for _, p := range e.freePkts {
							if p.length > 0 {
								recycledOnce = true
								break
							}
						}
					}
				}
				if e.inFlight == 0 {
					t.Fatal("no traffic in flight; test would be vacuous")
				}
				if !recycledOnce {
					t.Fatal("no packet was ever released to the freelist; property never exercised")
				}
			})
		}
	}
}

// TestPacketFreelistReset: a released packet comes back from newPacket
// fully zeroed, and the freelist hands back the same storage.
func TestPacketFreelistReset(t *testing.T) {
	topo := topology.NewMesh(3, 3)
	e, err := New(Config{
		Algorithm: routing.NewDimensionOrder(topo),
		Script:    []ScriptedMessage{{Cycle: 0, Src: 0, Dst: 8, Length: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := e.newPacket()
	dir := topology.Direction{Dim: 1, Pos: true}
	*p = packet{
		id: 42, src: 1, dst: 2, length: 7, firstDir: &dir,
		genCycle: 3, injectCycle: 4, deliverCycle: 5,
		flitsSent: 7, flitsDelivered: 7, hops: 6,
	}
	e.releasePacket(p)
	q := e.newPacket()
	if q != p {
		t.Fatalf("freelist did not recycle the released packet: got %p, want %p", q, p)
	}
	if *q != (packet{}) {
		t.Errorf("recycled packet not reset: %+v", *q)
	}
}
