package sim

import (
	"testing"

	"turnmodel/internal/routing"
	"turnmodel/internal/topology"
	"turnmodel/internal/traffic"
)

// latencyAt measures a single uncontended packet's latency in cycles
// for a given switching mode and travel distance along a mesh row.
func latencyAt(t *testing.T, sw Switching, dist, length int) int64 {
	t.Helper()
	topo := topology.NewMesh(16, 2)
	src := topo.ID(topology.Coord{0, 0})
	dst := topo.ID(topology.Coord{dist, 0})
	e, err := New(Config{
		Algorithm: routing.NewDimensionOrder(topo),
		Script:    []ScriptedMessage{{Cycle: 0, Src: src, Dst: dst, Length: length}},
		Switching: sw,
	})
	if err != nil {
		t.Fatal(err)
	}
	var lat int64 = -1
	e.onDeliver = func(p *packet) { lat = p.deliverCycle - p.genCycle }
	if res := e.run(); res.Deadlocked || lat < 0 {
		t.Fatalf("%v: packet not delivered", sw)
	}
	return lat
}

// TestSwitchingLatencyScaling reproduces the introduction's comparison:
// store-and-forward latency is proportional to the product of packet
// length and distance; wormhole and virtual cut-through to their sum.
func TestSwitchingLatencyScaling(t *testing.T) {
	const length = 24
	for _, sw := range []Switching{Wormhole, VirtualCutThrough} {
		d6 := latencyAt(t, sw, 6, length)
		d12 := latencyAt(t, sw, 12, length)
		// Six extra hops cost six extra cycles.
		if got := d12 - d6; got != 6 {
			t.Errorf("%v: 6 extra hops cost %d cycles, want 6", sw, got)
		}
		ideal := int64(6 + length)
		if d6 < ideal || d6 > ideal+6 {
			t.Errorf("%v: latency at distance 6 = %d, want about %d", sw, d6, ideal)
		}
	}
	d6 := latencyAt(t, StoreAndForward, 6, length)
	d12 := latencyAt(t, StoreAndForward, 12, length)
	// Six extra hops cost about six more packet times.
	if got := d12 - d6; got < 6*(length-2) || got > 6*(length+2) {
		t.Errorf("store-and-forward: 6 extra hops cost %d cycles, want about %d", got, 6*length)
	}
	if d6 < int64(6*length) {
		t.Errorf("store-and-forward latency %d below the L*D floor %d", d6, 6*length)
	}
}

// TestVirtualCutThroughCompressesBlockedPackets: a blocked packet
// collapses into the blocking router's buffer under VCT, releasing the
// channels behind it; under wormhole its worm keeps them allocated.
func TestVirtualCutThroughCompression(t *testing.T) {
	topo := topology.NewMesh(8, 4)
	at := func(x, y int) topology.NodeID { return topo.ID(topology.Coord{x, y}) }
	// P0 arrives at (3,0) from the north and occupies its ejection
	// channel for 200 cycles. P1's 60-flit packet from (0,0) blocks
	// behind it, entering from the west. P2 then wants the east channels
	// of row 0, which P1's worm holds under wormhole but has released
	// under VCT (its flits all fit in (3,0)'s packet-sized buffer).
	script := []ScriptedMessage{
		{Cycle: 0, Src: at(3, 1), Dst: at(3, 0), Length: 200},
		{Cycle: 3, Src: at(0, 0), Dst: at(3, 0), Length: 60},
		{Cycle: 80, Src: at(1, 0), Dst: at(2, 1), Length: 10},
	}
	finish := func(sw Switching) int64 {
		e, err := New(Config{
			Algorithm: routing.NewDimensionOrder(topo),
			Script:    script,
			Switching: sw,
		})
		if err != nil {
			t.Fatal(err)
		}
		var p2done int64 = -1
		e.onDeliver = func(p *packet) {
			if p.src == at(1, 0) {
				p2done = p.deliverCycle
			}
		}
		if res := e.run(); res.Deadlocked || p2done < 0 {
			t.Fatalf("%v: p2 not delivered", sw)
		}
		return p2done
	}
	wh := finish(Wormhole)
	vct := finish(VirtualCutThrough)
	if vct+50 > wh {
		t.Errorf("VCT should deliver P2 much earlier than wormhole: vct=%d wormhole=%d", vct, wh)
	}
}

// TestSwitchingModesDeliverStochastic: all three modes run the standard
// workload to completion with sensible results.
func TestSwitchingModesDeliverStochastic(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	for _, sw := range []Switching{Wormhole, StoreAndForward, VirtualCutThrough} {
		res, err := Run(Config{
			Algorithm: routing.NewDimensionOrder(topo),
			Pattern:   traffic.NewUniform(topo),
			// Short packets keep store-and-forward's product latency
			// inside the test budget.
			Lengths:       []int{8},
			OfferedLoad:   0.5,
			WarmupCycles:  1000,
			MeasureCycles: 5000,
			Seed:          13,
			Switching:     sw,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.PacketsDelivered == 0 || res.Deadlocked {
			t.Errorf("%v: bad run %+v", sw, res)
		}
		if sw.String() == "" {
			t.Error("empty switching name")
		}
	}
}

// TestWormholeBlockingSpansRouters: the defining wormhole behaviour —
// when the header blocks, "all of the flits in the packet wait where
// they are", spread across the routers along the path.
func TestWormholeBlockingSpansRouters(t *testing.T) {
	topo := topology.NewMesh(8, 2)
	at := func(x, y int) topology.NodeID { return topo.ID(topology.Coord{x, y}) }
	e, err := New(Config{
		Algorithm: routing.NewDimensionOrder(topo),
		Script: []ScriptedMessage{
			{Cycle: 0, Src: at(5, 0), Dst: at(6, 0), Length: 400}, // blocker on ejection
			{Cycle: 3, Src: at(0, 0), Dst: at(6, 0), Length: 40},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Run 120 cycles, then inspect buffer occupancy: with one-flit
	// buffers the blocked worm must occupy one flit in each of several
	// consecutive routers.
	for i := 0; i < 120; i++ {
		e.step()
		e.cycle++
	}
	occupied := 0
	for i := range e.inbufs {
		for _, f := range e.inbufs[i].q {
			if f.p.src == at(0, 0) {
				occupied++
				break
			}
		}
	}
	if occupied < 4 {
		t.Errorf("blocked worm occupies %d buffers, want several routers' worth", occupied)
	}
}
