package sim

import (
	"turnmodel/internal/topology"
)

// Observer receives simulation events, for debugging, visualization and
// custom measurement. All callbacks run synchronously on the simulation
// goroutine; implementations must not retain the arguments beyond the
// call. A nil observer costs one branch per event.
type Observer interface {
	// Inject fires when a packet's header flit enters its source router.
	Inject(cycle int64, src, dst topology.NodeID, length int)
	// Allocate fires when a header is granted an output channel; vc is
	// the virtual channel (0 for single-channel relations) and eject
	// marks the destination's ejection channel (dir is meaningless then).
	Allocate(cycle int64, at topology.NodeID, dir topology.Direction, vc int, eject bool)
	// Forward fires for every flit crossing a network channel.
	Forward(cycle int64, ch topology.Channel, vc int, head, tail bool)
	// Deliver fires when a packet's tail flit is consumed.
	Deliver(cycle int64, src, dst topology.NodeID, latencyCycles int64, hops int)
}

// ObserverFuncs adapts individual callbacks to the Observer interface
// (and, via AbortFn, to RecoveryObserver); nil fields are skipped.
type ObserverFuncs struct {
	InjectFn   func(cycle int64, src, dst topology.NodeID, length int)
	AllocateFn func(cycle int64, at topology.NodeID, dir topology.Direction, vc int, eject bool)
	ForwardFn  func(cycle int64, ch topology.Channel, vc int, head, tail bool)
	DeliverFn  func(cycle int64, src, dst topology.NodeID, latencyCycles int64, hops int)
	AbortFn    func(cycle int64, src, dst topology.NodeID, flitsDrained, channelsReleased, retry int, dropped bool)
}

// Inject implements Observer.
func (o ObserverFuncs) Inject(cycle int64, src, dst topology.NodeID, length int) {
	if o.InjectFn != nil {
		o.InjectFn(cycle, src, dst, length)
	}
}

// Allocate implements Observer.
func (o ObserverFuncs) Allocate(cycle int64, at topology.NodeID, dir topology.Direction, vc int, eject bool) {
	if o.AllocateFn != nil {
		o.AllocateFn(cycle, at, dir, vc, eject)
	}
}

// Forward implements Observer.
func (o ObserverFuncs) Forward(cycle int64, ch topology.Channel, vc int, head, tail bool) {
	if o.ForwardFn != nil {
		o.ForwardFn(cycle, ch, vc, head, tail)
	}
}

// Deliver implements Observer.
func (o ObserverFuncs) Deliver(cycle int64, src, dst topology.NodeID, latencyCycles int64, hops int) {
	if o.DeliverFn != nil {
		o.DeliverFn(cycle, src, dst, latencyCycles, hops)
	}
}

// Abort implements RecoveryObserver.
func (o ObserverFuncs) Abort(cycle int64, src, dst topology.NodeID, flitsDrained, channelsReleased, retry int, dropped bool) {
	if o.AbortFn != nil {
		o.AbortFn(cycle, src, dst, flitsDrained, channelsReleased, retry, dropped)
	}
}

// ChannelOccupancy accumulates per-channel flit counts from Forward
// events — a ready-made observer for heat-map style analysis and for
// validating the analytic channel-load model against a live run.
type ChannelOccupancy struct {
	topo   *topology.Topology
	counts []int64
	total  int64
}

// NewChannelOccupancy returns an occupancy recorder for t.
func NewChannelOccupancy(t *topology.Topology) *ChannelOccupancy {
	return &ChannelOccupancy{topo: t, counts: make([]int64, t.NumChannelIDs())}
}

// Observer returns the recorder as an Observer.
func (c *ChannelOccupancy) Observer() Observer {
	return ObserverFuncs{ForwardFn: func(_ int64, ch topology.Channel, _ int, _, _ bool) {
		c.counts[c.topo.ChannelID(ch)]++
		c.total++
	}}
}

// Count returns the flits that crossed ch.
func (c *ChannelOccupancy) Count(ch topology.Channel) int64 { return c.counts[c.topo.ChannelID(ch)] }

// Total returns all network flit crossings observed.
func (c *ChannelOccupancy) Total() int64 { return c.total }

// Hottest returns the busiest channel and its count.
func (c *ChannelOccupancy) Hottest() (topology.Channel, int64) {
	best, idx := int64(-1), 0
	for i, n := range c.counts {
		if n > best {
			best, idx = n, i
		}
	}
	return c.topo.ChannelFromID(idx), best
}
