package sim

// pktRing is a growable FIFO of packet pointers backing one source
// queue. Unlike the previous append-and-reslice slices, pushes and pops
// reuse the same storage in steady state, so an arbitrarily long run
// allocates only while a queue reaches a new high-water mark. Popped
// slots are nilled so the ring never pins delivered (recycled) packets.
// The zero value is an empty ring.
type pktRing struct {
	buf  []*packet
	head int
	n    int
}

func (r *pktRing) len() int { return r.n }

// front returns the oldest queued packet; the ring must be nonempty.
func (r *pktRing) front() *packet { return r.buf[r.head] }

// at returns the i-th queued packet, 0 being the front.
func (r *pktRing) at(i int) *packet {
	j := r.head + i
	if j >= len(r.buf) {
		j -= len(r.buf)
	}
	return r.buf[j]
}

func (r *pktRing) push(p *packet) {
	if r.n == len(r.buf) {
		r.grow()
	}
	i := r.head + r.n
	if i >= len(r.buf) {
		i -= len(r.buf)
	}
	r.buf[i] = p
	r.n++
}

func (r *pktRing) pop() *packet {
	p := r.buf[r.head]
	r.buf[r.head] = nil
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.n--
	return p
}

func (r *pktRing) grow() {
	nc := 2 * len(r.buf)
	if nc == 0 {
		nc = 4
	}
	nb := make([]*packet, nc)
	for i := 0; i < r.n; i++ {
		nb[i] = r.at(i)
	}
	r.buf, r.head = nb, 0
}
