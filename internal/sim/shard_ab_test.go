package sim

import (
	"bytes"
	"runtime"
	"testing"

	"turnmodel/internal/fault"
	"turnmodel/internal/metrics"
	"turnmodel/internal/routing"
	"turnmodel/internal/topology"
	"turnmodel/internal/traffic"
)

// shardCounts is the A/B matrix: serial, an even split, and a count
// that does not divide the router grids used below, so the contiguous
// partition is uneven and a shard boundary falls mid-word in the
// worklist bitsets.
var shardCounts = []int{0, 2, 5}

// runShardAB runs the same configuration at every shard count and
// asserts bit-identical Results, delivery event streams and metrics
// manifests against the serial run.
func runShardAB(t *testing.T, mk func() Config) {
	t.Helper()
	type outcome struct {
		events   []deliveryEvent
		res      Result
		manifest []byte
	}
	var base outcome
	for i, shards := range shardCounts {
		cfg := mk()
		cfg.Shards = shards
		var o outcome
		cfg.Observer = recordDeliveries(&o.events)
		m := metrics.New(metrics.Config{Interval: 100})
		cfg.Metrics = m
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		o.res = res
		var buf bytes.Buffer
		if err := m.WriteManifest(&buf); err != nil {
			t.Fatal(err)
		}
		o.manifest = buf.Bytes()
		if i == 0 {
			if len(o.events) == 0 {
				t.Fatal("no deliveries; test would be vacuous")
			}
			base = o
			continue
		}
		if o.res != base.res {
			t.Errorf("shards=%d: results differ:\n serial: %+v\n sharded: %+v", shards, base.res, o.res)
		}
		if len(o.events) != len(base.events) {
			t.Fatalf("shards=%d: delivery counts differ: serial %d, sharded %d", shards, len(base.events), len(o.events))
		}
		for j := range o.events {
			if o.events[j] != base.events[j] {
				t.Fatalf("shards=%d: delivery %d differs: serial %+v, sharded %+v", shards, j, base.events[j], o.events[j])
			}
		}
		if !bytes.Equal(o.manifest, base.manifest) {
			t.Errorf("shards=%d: metrics manifests differ", shards)
		}
	}
}

// TestShardABDeterminism: sharded allocation is an execution strategy,
// not a behavior change — every configuration class the propose/commit
// split distinguishes (plain wormhole, store-and-forward with the
// readiness memo, strict advance with the snapshot pre-pass, multi-VC
// dateline routing, direct candidate evaluation under concurrency)
// produces results bit-identical to the serial engine, including full
// metrics dumps.
func TestShardABDeterminism(t *testing.T) {
	t.Run("stochastic-mesh", func(t *testing.T) {
		runShardAB(t, func() Config {
			topo := topology.NewMesh(8, 8)
			return Config{
				Algorithm:     routing.NewWestFirst(topo),
				Pattern:       traffic.NewUniform(topo),
				OfferedLoad:   3.0,
				WarmupCycles:  500,
				MeasureCycles: 1500,
				Seed:          11,
			}
		})
	})
	// Deep wormhole buffers under heavy load keep chains of full buffers
	// alive, exercising long feeder chains in the conflict components
	// (and, transiently, full-buffer rings).
	t.Run("wormhole-deep-buffers", func(t *testing.T) {
		runShardAB(t, func() Config {
			topo := topology.NewMesh(8, 8)
			return Config{
				Algorithm:     routing.NewWestFirst(topo),
				Pattern:       traffic.NewMeshTranspose(topo),
				OfferedLoad:   6.0,
				BufferDepth:   4,
				Lengths:       []int{8, 20},
				WarmupCycles:  500,
				MeasureCycles: 1500,
				Seed:          21,
			}
		})
	})
	// Virtual cut-through: whole-packet buffers without the
	// store-and-forward hold, so the sharded move phase stays on for the
	// chained schedule.
	t.Run("virtual-cut-through-chained", func(t *testing.T) {
		runShardAB(t, func() Config {
			topo := topology.NewMesh(6, 6)
			return Config{
				Algorithm:     routing.NewNorthLast(topo),
				Pattern:       traffic.NewUniform(topo),
				OfferedLoad:   3.5,
				Lengths:       []int{4, 10},
				Switching:     VirtualCutThrough,
				WarmupCycles:  500,
				MeasureCycles: 1500,
				Seed:          19,
			}
		})
	})
	// Chained store-and-forward: readiness flips mid-drain when a
	// cascade lands a same-cycle tail, so the drain order inside each
	// conflict component must replay the serial schedule exactly.
	t.Run("store-and-forward-chained", func(t *testing.T) {
		runShardAB(t, func() Config {
			topo := topology.NewMesh(6, 6)
			return Config{
				Algorithm:     routing.NewWestFirst(topo),
				Pattern:       traffic.NewUniform(topo),
				OfferedLoad:   2.0,
				Lengths:       []int{6, 12},
				Switching:     StoreAndForward,
				WarmupCycles:  500,
				MeasureCycles: 1500,
				Seed:          23,
			}
		})
	})
	// Store-and-forward exercises the sharded readyToForward memo, and
	// strict advance the parallel buffer-length snapshot.
	t.Run("store-and-forward-strict", func(t *testing.T) {
		runShardAB(t, func() Config {
			topo := topology.NewMesh(6, 6)
			return Config{
				Algorithm:     routing.NewNegativeFirst(topo),
				Pattern:       traffic.NewMeshTranspose(topo),
				OfferedLoad:   2.0,
				Lengths:       []int{6, 12},
				Switching:     StoreAndForward,
				StrictAdvance: true,
				WarmupCycles:  500,
				MeasureCycles: 1500,
				Seed:          5,
			}
		})
	})
	t.Run("dateline-torus-vc", func(t *testing.T) {
		runShardAB(t, func() Config {
			topo := topology.NewTorus(6, 2)
			return Config{
				VCAlgorithm:   routing.NewDatelineDOR(topo),
				Pattern:       traffic.NewUniform(topo),
				OfferedLoad:   3.0,
				WarmupCycles:  500,
				MeasureCycles: 1500,
				Seed:          9,
			}
		})
	})
	// Without compiled route tables the workers evaluate the routing
	// relation directly and concurrently; misroute patience reads the
	// profitability bits those evaluations compute.
	t.Run("direct-eval-misroute", func(t *testing.T) {
		runShardAB(t, func() Config {
			topo := topology.NewMesh(6, 6)
			return Config{
				Algorithm:         routing.NewFullyAdaptive(topo),
				Pattern:           traffic.NewMeshTranspose(topo),
				OfferedLoad:       2.5,
				MisrouteAfter:     3,
				DisableRouteTable: true,
				WarmupCycles:      500,
				MeasureCycles:     1500,
				Seed:              7,
			}
		})
	})
}

// TestShardABDeterminismWithRecovery: a transient-fault campaign with
// deadlock recovery armed — the fault driver and recovery watchdog run
// serially at the top of each cycle, so the sharded propose/commit split
// must reproduce the serial engine's aborts, retries and drains exactly,
// down to the full metrics manifest (which now includes per-fault-epoch
// latency).
func TestShardABDeterminismWithRecovery(t *testing.T) {
	runShardAB(t, func() Config {
		topo := topology.NewMesh(8, 8)
		plan, err := fault.NewCampaign(topo, fault.Campaign{Seed: 13, Horizon: 2000, Rate: 5, MTTR: 400})
		if err != nil {
			t.Fatal(err)
		}
		if len(plan.Events) == 0 {
			t.Fatal("campaign generated no events; the A/B case would be vacuous")
		}
		return Config{
			Algorithm:         routing.NewWestFirst(topo),
			Pattern:           traffic.NewUniform(topo),
			OfferedLoad:       3.0,
			WarmupCycles:      500,
			MeasureCycles:     1500,
			Seed:              13,
			FaultPlan:         plan,
			RecoveryThreshold: 128,
			RetryLimit:        8,
			CheckInvariants:   true,
		}
	})
}

// TestShardSerialFallback: configurations whose allocation consumes the
// shared random stream per visited router cannot shard without
// reordering the stream, so the engine silently runs them serially —
// and still produces identical results when Shards is set.
func TestShardSerialFallback(t *testing.T) {
	topo := topology.NewMesh(6, 6)
	mkRandom := func() Config {
		return Config{
			Algorithm:     routing.NewFullyAdaptive(topo),
			Pattern:       traffic.NewUniform(topo),
			OfferedLoad:   2.0,
			Policy:        RandomPolicy,
			WarmupCycles:  400,
			MeasureCycles: 1200,
			Seed:          3,
		}
	}
	cfg := mkRandom()
	cfg.Shards = 4
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e.nshards != 1 {
		t.Fatalf("RandomPolicy with Shards=4 got %d shards, want serial fallback", e.nshards)
	}
	cfg2 := mkRandom()
	cfg2.Input = RandomInput
	cfg2.Policy = LowestDimension
	cfg2.Shards = 4
	e2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if e2.nshards != 1 {
		t.Fatalf("RandomInput with Shards=4 got %d shards, want serial fallback", e2.nshards)
	}
	serial, err := Run(mkRandom())
	if err != nil {
		t.Fatal(err)
	}
	sharded := mkRandom()
	sharded.Shards = 4
	got, err := Run(sharded)
	if err != nil {
		t.Fatal(err)
	}
	if got != serial {
		t.Errorf("fallback results differ:\n serial: %+v\n shards=4: %+v", serial, got)
	}
}

// TestShardPartition: the effective shard count is clamped to the
// router count and the contiguous partition covers every router, with
// uneven remainders spread across shards.
func TestShardPartition(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	e, err := New(Config{
		Algorithm:     routing.NewWestFirst(topo),
		Pattern:       traffic.NewUniform(topo),
		OfferedLoad:   1.0,
		WarmupCycles:  1,
		MeasureCycles: 1,
		Shards:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.nshards != 5 {
		t.Fatalf("got %d shards, want 5", e.nshards)
	}
	if got, want := e.shardLo[0], int32(0); got != want {
		t.Errorf("partition starts at %d, want 0", got)
	}
	if got, want := e.shardLo[5], int32(64); got != want {
		t.Errorf("partition ends at %d, want 64", got)
	}
	for s := 0; s < 5; s++ {
		size := e.shardLo[s+1] - e.shardLo[s]
		if size < 12 || size > 13 {
			t.Errorf("shard %d has %d routers, want 12 or 13", s, size)
		}
	}
	// Shard counts beyond the router count clamp.
	big, err := New(Config{
		Algorithm:     routing.NewWestFirst(topology.NewMesh(2, 2)),
		Pattern:       traffic.NewUniform(topology.NewMesh(2, 2)),
		OfferedLoad:   1.0,
		WarmupCycles:  1,
		MeasureCycles: 1,
		Shards:        64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer big.Close()
	if big.nshards != 4 {
		t.Fatalf("2x2 mesh with Shards=64 got %d shards, want 4", big.nshards)
	}
}

// TestShardAutoResolve: Shards = ShardsAuto sizes the pool as
// min(GOMAXPROCS, routers/64), and an auto-sharded run is bit-identical
// to serial like any other shard count.
func TestShardAutoResolve(t *testing.T) {
	mk := func(shards int) Config {
		topo := topology.NewMesh(16, 16)
		return Config{
			Algorithm:     routing.NewWestFirst(topo),
			Pattern:       traffic.NewUniform(topo),
			OfferedLoad:   2.0,
			WarmupCycles:  200,
			MeasureCycles: 600,
			Seed:          29,
			Shards:        shards,
		}
	}
	e, err := New(mk(ShardsAuto))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	want := runtime.GOMAXPROCS(0)
	if coarse := 256 / 64; want > coarse {
		want = coarse
	}
	if want < 1 {
		want = 1
	}
	if e.nshards != want {
		t.Fatalf("auto shards resolved to %d, want %d (GOMAXPROCS=%d)", e.nshards, want, runtime.GOMAXPROCS(0))
	}
	// A small mesh is coarser than one shard per 64 routers: auto falls
	// back to serial rather than paying the barrier for tiny slices.
	small, err := New(Config{
		Algorithm:     routing.NewWestFirst(topology.NewMesh(4, 4)),
		Pattern:       traffic.NewUniform(topology.NewMesh(4, 4)),
		OfferedLoad:   1.0,
		WarmupCycles:  1,
		MeasureCycles: 1,
		Shards:        ShardsAuto,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer small.Close()
	if small.nshards != 1 {
		t.Fatalf("auto shards on a 16-router mesh resolved to %d, want 1", small.nshards)
	}
	serial, err := Run(mk(0))
	if err != nil {
		t.Fatal(err)
	}
	auto, err := Run(mk(ShardsAuto))
	if err != nil {
		t.Fatal(err)
	}
	if auto != serial {
		t.Errorf("auto-sharded results differ:\n serial: %+v\n auto: %+v", serial, auto)
	}
}

// TestShardMoveEligibility: the conflict-partitioned move drain engages
// for every switching class once the engine is sharded — wormhole,
// chained and strict store-and-forward, and multi-VC alike — and never
// for serial engines.
func TestShardMoveEligibility(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	mk := func(mut func(*Config)) *Engine {
		cfg := Config{
			Algorithm:     routing.NewWestFirst(topo),
			Pattern:       traffic.NewUniform(topo),
			OfferedLoad:   1.0,
			WarmupCycles:  1,
			MeasureCycles: 1,
			Shards:        4,
		}
		if mut != nil {
			mut(&cfg)
		}
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(e.Close)
		return e
	}
	if e := mk(nil); !e.moveSharded {
		t.Error("wormhole single-VC engine did not enable the sharded move phase")
	}
	if e := mk(func(c *Config) { c.Switching = StoreAndForward }); !e.moveSharded {
		t.Error("chained store-and-forward engine did not enable the sharded move phase")
	}
	if e := mk(func(c *Config) { c.Switching = StoreAndForward; c.StrictAdvance = true }); !e.moveSharded {
		t.Error("strict store-and-forward engine did not enable the sharded move phase")
	}
	if e := mk(func(c *Config) {
		c.Algorithm = nil
		c.VCAlgorithm = routing.NewDatelineDOR(topology.NewTorus(8, 2))
		c.Pattern = traffic.NewUniform(topology.NewTorus(8, 2))
	}); !e.moveSharded {
		t.Error("multi-VC engine did not enable the sharded move phase")
	}
	if e := mk(func(c *Config) { c.Shards = 0 }); e.moveSharded {
		t.Error("serial engine enabled the sharded move phase")
	}
}

// TestShardGateStress hammers the spin/park barrier: a small mesh gives
// each region almost no work, so cycles degenerate into barrier
// traffic, and thousands of them probe the release/join windows (the
// straggling-finish case needs a preemption landing inside a later
// region's park). Run under -race this is the gate's main correctness
// test; the step loop also re-closes and restarts the pool mid-run to
// cover the warm-pool lifecycle.
func TestShardGateStress(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	e, err := New(Config{
		Algorithm:     routing.NewWestFirst(topo),
		Pattern:       traffic.NewUniform(topo),
		OfferedLoad:   1.5,
		WarmupCycles:  1 << 30,
		MeasureCycles: 1,
		Seed:          31,
		Shards:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for i := 0; i < 12000; i++ {
		if i == 6000 {
			// Mid-run Close: the next sharded cycle must transparently
			// restart the pool with a fresh gate.
			e.Close()
		}
		e.step()
		e.cycle++
	}
	if e.stats.totalDeliveredEver == 0 {
		t.Fatal("no deliveries; stress would be vacuous")
	}
}

// TestShardABDeterminismUnderFault: a channel failure mid-run triggers
// the fault-epoch rescan and route-table recompile inside the sharded
// allocate; the propose/commit split must still agree with the serial
// engine cycle for cycle, before, during and after the fault window.
func TestShardABDeterminismUnderFault(t *testing.T) {
	const (
		cycles       = 2000
		faultCycle   = 300
		restoreCycle = 1100
	)
	var events [][]deliveryEvent
	var delivered []int64
	for _, shards := range shardCounts {
		topo := topology.NewMesh(8, 8)
		broken := topology.Channel{From: topo.ID(topology.Coord{4, 4}), Dir: topology.Direction{Dim: 1, Pos: true}}
		var evs []deliveryEvent
		e, err := New(Config{
			Algorithm:     routing.NewNegativeFirst(topo),
			Pattern:       traffic.NewUniform(topo),
			OfferedLoad:   2.0,
			WarmupCycles:  1 << 30,
			MeasureCycles: 1,
			Seed:          17,
			Shards:        shards,
			Observer:      recordDeliveries(&evs),
		})
		if err != nil {
			t.Fatal(err)
		}
		for e.cycle < cycles {
			switch e.cycle {
			case faultCycle:
				topo.DisableChannel(broken)
			case restoreCycle:
				topo.EnableChannel(broken)
			}
			e.step()
			e.cycle++
		}
		e.Close()
		events = append(events, evs)
		delivered = append(delivered, e.stats.totalDeliveredEver)
	}
	if delivered[0] == 0 {
		t.Fatal("no deliveries; test would be vacuous")
	}
	for i := 1; i < len(shardCounts); i++ {
		if delivered[i] != delivered[0] {
			t.Fatalf("shards=%d delivered %d packets, serial %d", shardCounts[i], delivered[i], delivered[0])
		}
		if len(events[i]) != len(events[0]) {
			t.Fatalf("shards=%d delivery stream length %d, serial %d", shardCounts[i], len(events[i]), len(events[0]))
		}
		for j := range events[i] {
			if events[i][j] != events[0][j] {
				t.Fatalf("shards=%d delivery %d differs: serial %+v, sharded %+v",
					shardCounts[i], j, events[0][j], events[i][j])
			}
		}
	}
}

// TestShardABDeterminismParallelMoveUnderFault: the two switching
// classes whose move phase was serial before the conflict-partitioned
// drain — multi-VC (dateline torus) and chained store-and-forward —
// stepped cycle for cycle through a mid-run DisableChannel fault and
// its repair, with the recovery watchdog armed. Delivery streams and
// totals must be identical to the serial engine at every shard count,
// before, during and after the fault window.
func TestShardABDeterminismParallelMoveUnderFault(t *testing.T) {
	const (
		cycles       = 2000
		faultCycle   = 300
		restoreCycle = 1100
	)
	cases := []struct {
		name string
		mk   func() (Config, *topology.Topology, topology.Channel)
	}{
		{"dateline-torus-vc", func() (Config, *topology.Topology, topology.Channel) {
			topo := topology.NewTorus(6, 2)
			broken := topology.Channel{From: topo.ID(topology.Coord{3, 3}), Dir: topology.Direction{Dim: 0, Pos: true}}
			return Config{
				VCAlgorithm:       routing.NewDatelineDOR(topo),
				Pattern:           traffic.NewUniform(topo),
				OfferedLoad:       2.5,
				WarmupCycles:      1 << 30,
				MeasureCycles:     1,
				Seed:              31,
				RecoveryThreshold: 128,
				RetryLimit:        8,
				CheckInvariants:   true,
			}, topo, broken
		}},
		{"store-and-forward-chained", func() (Config, *topology.Topology, topology.Channel) {
			topo := topology.NewMesh(6, 6)
			broken := topology.Channel{From: topo.ID(topology.Coord{3, 3}), Dir: topology.Direction{Dim: 1, Pos: true}}
			return Config{
				Algorithm:         routing.NewWestFirst(topo),
				Pattern:           traffic.NewUniform(topo),
				OfferedLoad:       2.0,
				Lengths:           []int{6, 12},
				Switching:         StoreAndForward,
				WarmupCycles:      1 << 30,
				MeasureCycles:     1,
				Seed:              37,
				RecoveryThreshold: 128,
				RetryLimit:        8,
				CheckInvariants:   true,
			}, topo, broken
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var events [][]deliveryEvent
			var delivered []int64
			for _, shards := range shardCounts {
				cfg, topo, broken := tc.mk()
				var evs []deliveryEvent
				cfg.Shards = shards
				cfg.Observer = recordDeliveries(&evs)
				e, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				for e.cycle < cycles {
					switch e.cycle {
					case faultCycle:
						topo.DisableChannel(broken)
					case restoreCycle:
						topo.EnableChannel(broken)
					}
					e.step()
					e.cycle++
				}
				e.Close()
				if e.invariantErr != "" {
					t.Fatalf("shards=%d invariant violation: %s", shards, e.invariantErr)
				}
				events = append(events, evs)
				delivered = append(delivered, e.stats.totalDeliveredEver)
			}
			if delivered[0] == 0 {
				t.Fatal("no deliveries; test would be vacuous")
			}
			for i := 1; i < len(shardCounts); i++ {
				if delivered[i] != delivered[0] {
					t.Fatalf("shards=%d delivered %d packets, serial %d", shardCounts[i], delivered[i], delivered[0])
				}
				if len(events[i]) != len(events[0]) {
					t.Fatalf("shards=%d delivery stream length %d, serial %d", shardCounts[i], len(events[i]), len(events[0]))
				}
				for j := range events[i] {
					if events[i][j] != events[0][j] {
						t.Fatalf("shards=%d delivery %d differs: serial %+v, sharded %+v",
							shardCounts[i], j, events[0][j], events[i][j])
					}
				}
			}
		})
	}
}

// TestShardScalingSmoke: a genuine multi-core shard run — workers on
// distinct cores, not time-sharing one — stays bit-identical to the
// serial engine. This is the only test in the suite that requires
// real parallelism, so it skips on single-core machines rather than
// silently degrading into another gomaxprocs=1 run. It deliberately
// asserts identity, not speedup: CI boxes are too noisy for timing
// thresholds, and the determinism contract is the part a scheduling
// change can silently break.
func TestShardScalingSmoke(t *testing.T) {
	if runtime.NumCPU() < 2 {
		t.Skipf("NumCPU=%d: multi-core scheduling cannot occur", runtime.NumCPU())
	}
	procs := runtime.NumCPU()
	if procs > 4 {
		procs = 4
	}
	old := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(old)
	mk := func() Config {
		topo := topology.NewMesh(16, 16)
		return Config{
			Algorithm:     routing.NewNorthLast(topo),
			Pattern:       traffic.NewUniform(topo),
			OfferedLoad:   2.0,
			WarmupCycles:  500,
			MeasureCycles: 3000,
			Lengths:       []int{4, 12},
			Seed:          29,
		}
	}
	serial := mk()
	want, err := Run(serial)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, ShardsAuto} {
		cfg := mk()
		cfg.Shards = shards
		got, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("shards=%d at GOMAXPROCS=%d diverges from serial:\n serial: %+v\n sharded: %+v",
				shards, procs, want, got)
		}
	}
}
