// Package sim is a deterministic, cycle-accurate flit-level simulator
// for wormhole-routed direct networks, reproducing the simulation model
// of Section 6:
//
//   - a pair of unidirectional channels connects each pair of
//     neighboring routers and each router to its local processor;
//   - all channels have the same bandwidth, 20 flits/microsecond — one
//     simulator cycle transfers one flit, so a cycle is 0.05 us;
//   - each input channel has a buffer of a configurable number of flits
//     (one, in the paper);
//   - the routers "operate asynchronously and synchronize to
//     simultaneously transmit the flits in a packet": when a worm's head
//     advances, trailing flits follow into the freed buffers in the same
//     cycle (chained advance; an ablation mode disables it);
//   - when multiple input channels hold header flits waiting for the
//     same output channel, the local first-come-first-served input
//     selection policy grants the header that arrived first;
//   - when a header has several output channels available, an output
//     selection policy picks one; the paper's policy ("xy") prefers the
//     lowest dimension;
//   - processors generate messages at exponentially distributed
//     intervals; each message is one packet of 10 or 200 flits with
//     equal probability; blocked messages queue at the source; arriving
//     messages are consumed immediately.
package sim

import (
	"fmt"
	"math/rand"

	"turnmodel/internal/fault"
	"turnmodel/internal/metrics"
	"turnmodel/internal/routing"
	"turnmodel/internal/topology"
	"turnmodel/internal/traffic"
)

// CyclesPerMicrosecond converts simulator cycles to the paper's time
// unit: channels carry 20 flits/us and a cycle moves one flit.
const CyclesPerMicrosecond = 20.0

// OutputPolicy selects one output direction when a header flit has
// several available (Section 6's output selection policy).
type OutputPolicy int

const (
	// LowestDimension is the paper's "xy" policy: the available output
	// channel along the lowest dimension wins, negative before positive.
	LowestDimension OutputPolicy = iota
	// HighestDimension prefers the highest dimension, an ablation foil
	// for LowestDimension.
	HighestDimension
	// RandomPolicy picks uniformly among the available candidates.
	RandomPolicy
)

func (p OutputPolicy) String() string {
	switch p {
	case LowestDimension:
		return "xy(lowest-dimension)"
	case HighestDimension:
		return "highest-dimension"
	default:
		return "random"
	}
}

func (p OutputPolicy) choose(cands []topology.Direction, rng *rand.Rand) topology.Direction {
	switch p {
	case LowestDimension:
		return cands[0] // candidates arrive in ascending dimension order
	case HighestDimension:
		return cands[len(cands)-1]
	default:
		return cands[rng.Intn(len(cands))]
	}
}

// InputPolicy arbitrates when multiple input channels hold header flits
// waiting for the same output channel (Section 6's input selection
// policy). The paper uses local first-come-first-served and defers the
// study of alternatives to its companion paper [19]; the alternatives
// here are provided for that ablation.
type InputPolicy int

const (
	// LocalFCFS grants the header that arrived at the router first,
	// breaking ties by port index. Fair, so it prevents indefinite
	// postponement (the paper's choice).
	LocalFCFS InputPolicy = iota
	// PortOrder grants the lowest-numbered input port, an unfair policy
	// that can postpone high-numbered ports indefinitely.
	PortOrder
	// RandomInput grants a uniformly random waiting header.
	RandomInput
)

func (p InputPolicy) String() string {
	switch p {
	case LocalFCFS:
		return "local-fcfs"
	case PortOrder:
		return "port-order"
	default:
		return "random-input"
	}
}

// ScriptedMessage injects one specific message, for constructing exact
// scenarios such as the four-packet deadlock of Figure 1.
type ScriptedMessage struct {
	// Cycle is the generation time.
	Cycle int64
	// Src and Dst are the endpoints; Dst must differ from Src.
	Src, Dst topology.NodeID
	// Length is the packet length in flits.
	Length int
	// FirstDir, if non-nil, restricts the packet's first hop to the
	// given direction when the routing relation offers it (it is ignored
	// if the relation does not offer that direction, so deadlock-free
	// algorithms keep their guarantees).
	FirstDir *topology.Direction
}

// Config parameterizes a simulation run.
type Config struct {
	// Algorithm is the routing relation under test (it carries the
	// topology). Exactly one of Algorithm and VCAlgorithm must be set.
	Algorithm routing.Algorithm

	// VCAlgorithm is a virtual-channel routing relation (e.g. dateline
	// dimension-order torus routing). When set, the simulator multiplexes
	// NumVCs virtual channels onto every physical channel, each with its
	// own input buffer, sharing the physical link's one-flit-per-cycle
	// bandwidth.
	VCAlgorithm routing.VCAlgorithm

	// Pattern generates message destinations. Sources whose destination
	// under the pattern equals the source (e.g. the diagonal of a matrix
	// transpose) generate no traffic, as in the paper.
	Pattern traffic.Pattern

	// OfferedLoad is the applied load in flits per microsecond per node.
	// Message interarrival times are exponential with mean
	// MeanLength / (OfferedLoad/20) cycles.
	OfferedLoad float64

	// Lengths and LengthWeights give the packet length distribution in
	// flits; defaults to {10, 200} with equal probability.
	Lengths       []int
	LengthWeights []float64

	// BufferDepth is the per-input-channel buffer size in flits
	// (default 1, the paper's value).
	BufferDepth int

	// Policy is the output selection policy (default LowestDimension).
	Policy OutputPolicy

	// Input is the input selection policy (default LocalFCFS).
	Input InputPolicy

	// Switching selects wormhole (default), store-and-forward, or
	// virtual cut-through flow control.
	Switching Switching

	// RouterDelay adds extra cycles of route-computation latency beyond
	// the baseline one-cycle routing pipeline: a header flit becomes
	// eligible for output allocation only 1+RouterDelay cycles after
	// arriving at a router. The paper's Section 7 warns that
	// "adaptive routing can require more complex control logic for route
	// selection ... and this may increase node delay"; setting a larger
	// delay for adaptive algorithms quantifies that trade-off.
	RouterDelay int64

	// MisrouteAfter tunes nonminimal routing. Zero (default) follows the
	// routing relation as-is: the output policy picks among whatever the
	// relation offers, minimal or not. A positive value makes headers
	// prefer distance-reducing ("profitable") outputs and take a detour
	// only after waiting that many cycles — the discipline that routes
	// around faults and congestion with a nonminimal relation (e.g.
	// turn-set routing with minimal=false) without inflating paths at
	// low load. Livelock freedom holds for every turn-model relation
	// either way: their routes follow strictly monotone channel numbers,
	// so a packet can never revisit a channel (Section 2).
	MisrouteAfter int64

	// Shards splits the parallelizable phases of every cycle — the
	// allocation propose (with the move pre-pass) and the
	// conflict-partitioned move drain — across that many worker
	// goroutines (routers statically partitioned into contiguous
	// shards; the move phase instead partitions by conflict component,
	// so every switching class shards, multi-VC and chained
	// store-and-forward included). 0 or 1 runs serially, preserving the
	// single-threaded behavior exactly; ShardsAuto (-1) sizes the count
	// automatically as min(GOMAXPROCS, routers/64). Results are
	// bit-identical for any value, including auto: workers mutate only
	// shard-owned (or component-owned) state, and a serial commit
	// applies grants, worklist updates, shared counters and observer
	// events in the serial engine's order. Configurations whose
	// allocation consumes the shared random stream in router-visit
	// order (Input == RandomInput or Policy == RandomPolicy) silently
	// fall back to serial execution, since any partition of those draws
	// would change the stream. See DESIGN.md, "Deterministic sharded
	// execution" and "Conflict-partitioned movement".
	Shards int

	// StrictAdvance disables chained advance: by default (false) a
	// worm's trailing flits may move into buffers freed in the same
	// cycle — the paper's synchronized-worm behaviour — while in strict
	// mode a flit may only enter a buffer that had space at the start of
	// the cycle. Strict mode exists as an ablation.
	StrictAdvance bool

	// WarmupCycles and MeasureCycles set the measurement window. Both
	// must be positive unless a Script is given.
	WarmupCycles, MeasureCycles int64

	// DrainDeadline caps the post-measurement drain when Script is set:
	// the run ends when all scripted packets are delivered, deadlock is
	// detected, or the deadline passes.
	DrainDeadline int64

	// Seed makes the run reproducible.
	Seed int64

	// DeadlockThreshold is the number of consecutive cycles without any
	// flit movement, while flits are in flight, after which the run is
	// declared deadlocked (default 10000).
	DeadlockThreshold int64

	// Script, if non-nil, replaces stochastic generation with the given
	// messages.
	Script []ScriptedMessage

	// Observer, if non-nil, receives simulation events (injections,
	// allocations, flit forwards, deliveries).
	Observer Observer

	// DisableRouteTable turns off compiled route tables, forcing direct
	// CandidatesVC evaluation for every header. Results are bit-
	// identical either way (the determinism tests assert it); the switch
	// exists for those A/B tests and for diagnosing table issues.
	DisableRouteTable bool

	// FaultPlan, if non-nil, schedules channel faults and repairs on
	// simulated-cycle timestamps: the engine applies due events at the
	// top of every cycle through the topology's DisableChannel/
	// EnableChannel fault-epoch path, so routing tables recompile and
	// candidate caches invalidate exactly as for static faults. The plan
	// is validated against the topology at construction. Run restores
	// the topology's pre-run fault state on exit, so the same topology
	// can host further runs.
	FaultPlan *fault.Plan

	// RecoveryThreshold, when positive, arms the per-worm progress
	// watchdog: a packet none of whose flits advanced for this many
	// cycles while its header sits unallocated is aborted regressively —
	// its in-network flits are drained, its held output channels
	// released — and re-injected at the source after a backoff, up to
	// RetryLimit times. Zero (the default) disables recovery entirely;
	// the engine is then bit-identical to earlier versions. Must exceed
	// RouterDelay when set (a header is not even eligible for allocation
	// before that).
	RecoveryThreshold int64

	// RetryLimit bounds source-level re-injections per packet when
	// recovery is enabled: a packet aborted more than RetryLimit times
	// is dropped (counted in Result.PacketsDropped). Zero picks the
	// default of 8; a negative value drops on the first abort.
	RetryLimit int

	// RetryBackoff is the base re-injection delay in cycles after an
	// abort; the actual delay doubles with each retry of the same packet
	// (capped at 8x the base). Zero picks RecoveryThreshold.
	RetryBackoff int64

	// CheckInvariants runs the engine's structural invariant checker
	// (flit conservation, channel-hold bijection, buffer bounds; see
	// Engine.CheckInvariants) periodically during the run and once at
	// the end, recording the first violation in
	// Result.InvariantViolation. Intended for tests and the -check
	// flags; it scans every buffer, so leave it off in benchmarks.
	CheckInvariants bool

	// Metrics, if non-nil, attaches a counter collector to the run: the
	// engine binds it at construction and fills its per-router and
	// per-channel counters, time series and latency histogram over the
	// whole run (cycle zero onward). Attaching a collector never
	// changes simulation results; leaving it nil costs one branch per
	// hook. The Observer interface remains the tracing path.
	Metrics *metrics.Collector

	// Stop, if non-nil, is polled once every 1024 cycles; when it
	// returns true the run ends early with Result.Stopped set. It is
	// the cooperative cancellation hook for callers that host
	// long-running simulations (the turnserver's per-job cancellation):
	// the engine still tears down normally — worker pools released,
	// fault state restored — and a stopped run's measurements cover
	// only the cycles that actually ran, so callers should treat the
	// result as partial. Leaving it nil costs nothing.
	Stop func() bool
}

func (c *Config) withDefaults() (Config, error) {
	cfg := *c
	if cfg.Algorithm == nil && cfg.VCAlgorithm == nil {
		return cfg, fmt.Errorf("sim: config requires an Algorithm or a VCAlgorithm")
	}
	if cfg.Algorithm != nil && cfg.VCAlgorithm != nil {
		return cfg, fmt.Errorf("sim: set only one of Algorithm and VCAlgorithm")
	}
	if len(cfg.Lengths) == 0 {
		cfg.Lengths = []int{10, 200}
		cfg.LengthWeights = []float64{0.5, 0.5}
	}
	if len(cfg.LengthWeights) == 0 {
		cfg.LengthWeights = make([]float64, len(cfg.Lengths))
		for i := range cfg.LengthWeights {
			cfg.LengthWeights[i] = 1
		}
	}
	if len(cfg.LengthWeights) != len(cfg.Lengths) {
		return cfg, fmt.Errorf("sim: %d lengths but %d weights", len(cfg.Lengths), len(cfg.LengthWeights))
	}
	for _, l := range cfg.Lengths {
		if l < 1 {
			return cfg, fmt.Errorf("sim: packet length %d < 1", l)
		}
	}
	if cfg.BufferDepth == 0 {
		cfg.BufferDepth = 1
	}
	if cfg.BufferDepth < 0 {
		return cfg, fmt.Errorf("sim: negative buffer depth")
	}
	if cfg.DeadlockThreshold == 0 {
		cfg.DeadlockThreshold = 10000
	}
	if cfg.Shards < 0 && cfg.Shards != ShardsAuto {
		return cfg, fmt.Errorf("sim: negative shard count %d (use %d for auto)", cfg.Shards, ShardsAuto)
	}
	if cfg.RecoveryThreshold < 0 {
		return cfg, fmt.Errorf("sim: negative recovery threshold %d", cfg.RecoveryThreshold)
	}
	if cfg.RecoveryThreshold > 0 {
		if cfg.RecoveryThreshold <= cfg.RouterDelay {
			return cfg, fmt.Errorf("sim: recovery threshold %d must exceed router delay %d",
				cfg.RecoveryThreshold, cfg.RouterDelay)
		}
		if cfg.RetryLimit == 0 {
			cfg.RetryLimit = 8
		}
		if cfg.RetryBackoff < 0 {
			return cfg, fmt.Errorf("sim: negative retry backoff %d", cfg.RetryBackoff)
		}
		if cfg.RetryBackoff == 0 {
			cfg.RetryBackoff = cfg.RecoveryThreshold
		}
	}
	if cfg.Script == nil {
		if cfg.Pattern == nil {
			return cfg, fmt.Errorf("sim: config requires a Pattern or a Script")
		}
		if cfg.OfferedLoad <= 0 {
			return cfg, fmt.Errorf("sim: OfferedLoad must be positive, got %v", cfg.OfferedLoad)
		}
		if cfg.WarmupCycles <= 0 || cfg.MeasureCycles <= 0 {
			return cfg, fmt.Errorf("sim: warmup and measure cycles must be positive")
		}
	} else if cfg.DrainDeadline == 0 {
		cfg.DrainDeadline = 1 << 20
	}
	return cfg, nil
}

// validateAgainst runs the validation that needs the resolved topology:
// scripted endpoints must name real, distinct nodes and the fault
// plan's channels must exist. New calls it so malformed configurations
// fail at construction time with an error instead of panicking (or
// corrupting flat-array state) mid-run.
func (c *Config) validateAgainst(t *topology.Topology) error {
	for i, m := range c.Script {
		if err := t.CheckNode(m.Src); err != nil {
			return fmt.Errorf("sim: script message %d: src: %w", i, err)
		}
		if err := t.CheckNode(m.Dst); err != nil {
			return fmt.Errorf("sim: script message %d: dst: %w", i, err)
		}
		if m.Src == m.Dst {
			return fmt.Errorf("sim: script message %d: src == dst (%d)", i, m.Src)
		}
		if m.Length < 1 {
			return fmt.Errorf("sim: script message %d: length %d < 1", i, m.Length)
		}
	}
	if c.FaultPlan != nil {
		if err := c.FaultPlan.Validate(t); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
	}
	return nil
}

// vcAlgorithm returns the routing relation in virtual-channel form.
func (c *Config) vcAlgorithm() routing.VCAlgorithm {
	if c.VCAlgorithm != nil {
		return c.VCAlgorithm
	}
	return routing.AsVC(c.Algorithm)
}

// MeanLength returns the expected packet length in flits under the
// configured distribution.
func (c *Config) MeanLength() float64 {
	lengths := c.Lengths
	weights := c.LengthWeights
	if len(lengths) == 0 {
		lengths = []int{10, 200}
		weights = []float64{0.5, 0.5}
	}
	var sum, wsum float64
	for i, l := range lengths {
		w := 1.0
		if i < len(weights) {
			w = weights[i]
		}
		sum += w * float64(l)
		wsum += w
	}
	return sum / wsum
}
