package sim

import (
	"testing"

	"turnmodel/internal/routing"
	"turnmodel/internal/topology"
	"turnmodel/internal/traffic"
)

// TestRouterDelayAddsPerHopLatency: an uncontended packet pays the
// configured route-computation delay at every router it enters.
func TestRouterDelayAddsPerHopLatency(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	src := topo.ID(topology.Coord{0, 0})
	dst := topo.ID(topology.Coord{6, 0})
	lat := func(delay int64) int64 {
		e, err := New(Config{
			Algorithm:   routing.NewDimensionOrder(topo),
			Script:      []ScriptedMessage{{Cycle: 0, Src: src, Dst: dst, Length: 10}},
			RouterDelay: delay,
		})
		if err != nil {
			t.Fatal(err)
		}
		var got int64
		e.onDeliver = func(p *packet) { got = p.deliverCycle - p.genCycle }
		if res := e.run(); res.Deadlocked {
			t.Fatal("deadlock")
		}
		return got
	}
	base := lat(0)
	delayed := lat(2)
	// The head visits 7 routers (6 network hops + the destination) plus
	// the injection decision: 2 extra cycles at each.
	extra := delayed - base
	if extra < 12 || extra > 16 {
		t.Errorf("router delay 2 added %d cycles over %d hops, want about 14", extra, 6)
	}
}

// TestRouterDelayAblation: Section 7's caveat quantified — if adaptive
// routers pay extra node delay, their advantage shrinks but survives on
// transpose traffic at moderate load.
func TestRouterDelayAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	topo := topology.NewMesh(16, 16)
	run := func(alg routing.Algorithm, delay int64) Result {
		res, err := Run(Config{
			Algorithm: alg, Pattern: traffic.NewMeshTranspose(topo),
			OfferedLoad: 1.5, WarmupCycles: 3000, MeasureCycles: 10000,
			Seed: 61, RouterDelay: delay,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	xy := run(routing.NewDimensionOrder(topo), 0)
	nfSlow := run(routing.NewNegativeFirst(topo), 1)
	if nfSlow.AvgLatency > xy.AvgLatency*1.5 {
		t.Errorf("negative-first with +1 cycle node delay should stay competitive on transpose: nf=%.2f xy=%.2f",
			nfSlow.AvgLatency, xy.AvgLatency)
	}
}

// TestChannelUtilizationReporting: the hottest channel is a real network
// channel with utilization in (0, 1].
func TestChannelUtilizationReporting(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	res, err := Run(Config{
		Algorithm:   routing.NewDimensionOrder(topo),
		Pattern:     traffic.NewMeshTranspose(topo),
		OfferedLoad: 1.5, WarmupCycles: 1000, MeasureCycles: 6000, Seed: 62,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxChannelUtilization <= 0 || res.MaxChannelUtilization > 1 {
		t.Errorf("utilization %v out of (0,1]", res.MaxChannelUtilization)
	}
	if !topo.HasChannel(res.HottestChannel.From, res.HottestChannel.Dir) {
		t.Errorf("hottest channel %v does not exist", res.HottestChannel)
	}
	// At saturation the hottest channel approaches full utilization.
	sat, err := Run(Config{
		Algorithm:   routing.NewDimensionOrder(topo),
		Pattern:     traffic.NewMeshTranspose(topo),
		OfferedLoad: 6, WarmupCycles: 1000, MeasureCycles: 6000, Seed: 62,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sat.MaxChannelUtilization < 0.8 {
		t.Errorf("saturated hottest channel at %.2f utilization, want near 1", sat.MaxChannelUtilization)
	}
}
