package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"turnmodel/internal/routing"
	"turnmodel/internal/topology"
)

// TestPropertyRandomScriptsConserve: random finite workloads under a
// deadlock-free algorithm always drain completely, each packet on a
// minimal path, with all flits accounted for — regardless of buffer
// depth, switching mode or policies.
func TestPropertyRandomScriptsConserve(t *testing.T) {
	topo := topology.NewMesh(5, 5)
	rng := rand.New(rand.NewSource(202))
	algs := []routing.Algorithm{
		routing.NewDimensionOrder(topo),
		routing.NewWestFirst(topo),
		routing.NewNegativeFirst(topo),
	}
	f := func(seed uint16) bool {
		r := rand.New(rand.NewSource(int64(seed)))
		var script []ScriptedMessage
		totalFlits := 0
		n := 5 + r.Intn(30)
		for i := 0; i < n; i++ {
			src := topology.NodeID(r.Intn(topo.Nodes()))
			dst := topology.NodeID(r.Intn(topo.Nodes()))
			if src == dst {
				continue
			}
			l := 1 + r.Intn(40)
			totalFlits += l
			script = append(script, ScriptedMessage{
				Cycle: int64(r.Intn(100)), Src: src, Dst: dst, Length: l,
			})
		}
		if len(script) == 0 {
			return true
		}
		cfg := Config{
			Algorithm:         algs[r.Intn(len(algs))],
			Script:            script,
			BufferDepth:       1 + r.Intn(3),
			StrictAdvance:     r.Intn(2) == 1,
			Policy:            OutputPolicy(r.Intn(3)),
			Input:             InputPolicy(r.Intn(3)),
			Seed:              int64(rng.Int31()),
			DeadlockThreshold: 5000,
			DrainDeadline:     1 << 20,
		}
		e, err := New(cfg)
		if err != nil {
			return false
		}
		flits := 0
		minimal := true
		e.onDeliver = func(p *packet) {
			flits += p.flitsDelivered
			if p.hops != topo.Distance(p.src, p.dst) {
				minimal = false
			}
		}
		res := e.run()
		return !res.Deadlocked && res.PacketsDelivered == int64(len(script)) &&
			flits == totalFlits && minimal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestPropertyBufferDepthPreservesDelivery: varying buffer depth changes
// timing but never correctness: the same script delivers the same
// packet set at every depth.
func TestPropertyBufferDepthPreservesDelivery(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	var script []ScriptedMessage
	r := rand.New(rand.NewSource(203))
	for i := 0; i < 25; i++ {
		src := topology.NodeID(r.Intn(topo.Nodes()))
		dst := topology.NodeID(r.Intn(topo.Nodes()))
		if src == dst {
			continue
		}
		script = append(script, ScriptedMessage{Cycle: int64(i), Src: src, Dst: dst, Length: 5 + r.Intn(20)})
	}
	var last int64 = -1
	for depth := 1; depth <= 8; depth *= 2 {
		res, err := Run(Config{
			Algorithm: routing.NewWestFirst(topo), Script: script,
			BufferDepth: depth, DeadlockThreshold: 5000, DrainDeadline: 1 << 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Deadlocked || res.PacketsDelivered != int64(len(script)) {
			t.Fatalf("depth %d: %+v", depth, res)
		}
		if last >= 0 && res.Cycles > last*2+100 {
			t.Errorf("depth %d much slower than depth %d: %d vs %d cycles", depth, depth/2, res.Cycles, last)
		}
		last = res.Cycles
	}
}
