package sim

import (
	"testing"

	"turnmodel/internal/routing"
	"turnmodel/internal/topology"
	"turnmodel/internal/traffic"
)

// TestDatelineDORSimulation: live simulation of the two-virtual-channel
// dateline torus routing: no deadlock at saturating load, minimal hop
// counts, deterministic.
func TestDatelineDORSimulation(t *testing.T) {
	topo := topology.NewTorus(8, 2)
	cfg := Config{
		VCAlgorithm:   routing.NewDatelineDOR(topo),
		Pattern:       traffic.NewUniform(topo),
		OfferedLoad:   4,
		WarmupCycles:  2000,
		MeasureCycles: 8000,
		Seed:          21,
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.onDeliver = func(p *packet) {
		if p.hops != topo.Distance(p.src, p.dst) {
			t.Errorf("packet %d->%d took %d hops, want %d", p.src, p.dst, p.hops, topo.Distance(p.src, p.dst))
		}
	}
	res := e.run()
	if res.Deadlocked || res.PacketsDelivered == 0 {
		t.Fatalf("bad run: %+v", res)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if b != c {
		t.Error("VC simulation not deterministic")
	}
}

// TestTorusDORDeadlocksLive: the no-virtual-channel torus DOR deadlocks
// in live simulation on a ring under sustained pressure — the Section
// 4.2 impossibility, observed rather than proved.
func TestTorusDORDeadlocksLive(t *testing.T) {
	topo := topology.NewTorus(5, 1)
	// Every node floods its clockwise neighbor's neighbor: all traffic
	// moves +x around the ring, so the five channels fill and the
	// all-wait cycle closes.
	var script []ScriptedMessage
	for round := 0; round < 20; round++ {
		for v := 0; v < topo.Nodes(); v++ {
			script = append(script, ScriptedMessage{
				Cycle:  int64(round),
				Src:    topology.NodeID(v),
				Dst:    topology.NodeID((v + 2) % topo.Nodes()),
				Length: 50,
			})
		}
	}
	res, err := Run(Config{
		Algorithm:         routing.NewTorusDOR(topo),
		Script:            script,
		DeadlockThreshold: 1000,
		DrainDeadline:     200000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deadlocked {
		t.Errorf("torus DOR should deadlock on the flooded ring: %+v", res)
	}
	// Same pressure, two virtual channels with the dateline: no deadlock.
	res2, err := Run(Config{
		VCAlgorithm:       routing.NewDatelineDOR(topo),
		Script:            script,
		DeadlockThreshold: 1000,
		DrainDeadline:     200000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Deadlocked || res2.PacketsDelivered != int64(len(script)) {
		t.Errorf("dateline DOR should deliver everything: %+v", res2)
	}
}

// TestVCLinkSharing: two worms travelling the same physical links on
// different virtual channel classes interleave flits under the rotating
// link arbitration — both finish, in about the time one link needs to
// carry both packets, rather than one starving behind the other.
func TestVCLinkSharing(t *testing.T) {
	topo := topology.NewTorus(8, 1)
	// Packet A goes 1 -> 4 directly (class 0 on links 2->3->4). Packet B
	// goes 6 -> 2 the +x way, crossing the dateline (class 1 on 0->1->2
	// after wrapping; on 1->2 it shares the physical link with A's
	// 1->2... A starts at 1 so its first link is 1->2 as well).
	const length = 80
	script := []ScriptedMessage{
		{Cycle: 0, Src: 1, Dst: 4, Length: length},
		{Cycle: 0, Src: 6, Dst: 2, Length: length},
	}
	e, err := New(Config{
		VCAlgorithm: routing.NewDatelineDOR(topo),
		Script:      script,
	})
	if err != nil {
		t.Fatal(err)
	}
	var done []int64
	e.onDeliver = func(p *packet) { done = append(done, p.deliverCycle) }
	res := e.run()
	if res.Deadlocked || len(done) != 2 {
		t.Fatalf("bad run: %+v", res)
	}
	// Both share the 1->2 physical link (one flit per cycle total), so
	// each is slowed, but neither starves: completion times within a
	// couple of packet times of each other.
	gap := done[1] - done[0]
	if gap < 0 {
		gap = -gap
	}
	if gap > 3*length {
		t.Errorf("delivery gap %d cycles suggests starvation", gap)
	}
}

// TestConfigBothAlgorithmsRejected.
func TestConfigBothAlgorithmsRejected(t *testing.T) {
	topo := topology.NewTorus(4, 2)
	_, err := Run(Config{
		Algorithm:   routing.NewNegativeFirstTorus(topo),
		VCAlgorithm: routing.NewDatelineDOR(topo),
		Pattern:     traffic.NewUniform(topo),
		OfferedLoad: 1, WarmupCycles: 10, MeasureCycles: 10,
	})
	if err == nil {
		t.Error("setting both Algorithm and VCAlgorithm should fail")
	}
}

// TestDoubleYSimulation: the fully adaptive double-y relation survives
// saturating transpose traffic (where plain fully adaptive deadlocks)
// and delivers minimal paths.
func TestDoubleYSimulation(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	e, err := New(Config{
		VCAlgorithm:   routing.NewDoubleY(topo),
		Pattern:       traffic.NewMeshTranspose(topo),
		OfferedLoad:   3,
		WarmupCycles:  2000,
		MeasureCycles: 8000,
		Seed:          81,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.onDeliver = func(p *packet) {
		if p.hops != topo.Distance(p.src, p.dst) {
			t.Errorf("double-y packet %d->%d took %d hops", p.src, p.dst, p.hops)
		}
	}
	res := e.run()
	if res.Deadlocked || res.PacketsDelivered == 0 {
		t.Fatalf("bad run: %+v", res)
	}
}
