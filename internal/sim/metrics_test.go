package sim

import (
	"math"
	"testing"

	"turnmodel/internal/metrics"
	"turnmodel/internal/routing"
	"turnmodel/internal/topology"
	"turnmodel/internal/traffic"
)

// TestMetricsDoNotPerturbResults: attaching a collector must leave the
// simulation bit-identical — same rng stream, same schedule, same
// Result — with metrics both disabled and enabled (the golden-figure
// invariant, at single-run granularity).
func TestMetricsDoNotPerturbResults(t *testing.T) {
	run := func(m *metrics.Collector) Result {
		topo := topology.NewMesh(8, 8)
		res, err := Run(Config{
			Algorithm:     routing.NewWestFirst(topo),
			Pattern:       traffic.NewMeshTranspose(topo),
			OfferedLoad:   1.5,
			WarmupCycles:  1000,
			MeasureCycles: 4000,
			Seed:          7,
			Metrics:       m,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(nil)
	withMetrics := run(metrics.New(metrics.Config{Interval: 250, ExactLatencies: true}))
	if base != withMetrics {
		t.Errorf("metrics perturbed the run:\n  off: %+v\n  on:  %+v", base, withMetrics)
	}
	// And a misroute-capable config, which shares the profitability
	// computation between the patience discipline and the counter.
	runMis := func(m *metrics.Collector) Result {
		topo := topology.NewMesh(8, 8)
		res, err := Run(Config{
			Algorithm:     routing.NewWestFirst(topo),
			Pattern:       traffic.NewUniform(topo),
			OfferedLoad:   2.0,
			MisrouteAfter: 8,
			WarmupCycles:  800,
			MeasureCycles: 2000,
			Seed:          11,
			Metrics:       m,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if a, b := runMis(nil), runMis(metrics.New(metrics.Config{})); a != b {
		t.Errorf("metrics perturbed the misroute run:\n  off: %+v\n  on:  %+v", a, b)
	}
}

// TestMetricsCounterConsistency: the collector's totals reconcile with
// the run's own accounting — injected equals delivered flits on a
// drained scripted run, grants count one allocation per router visited
// (hops + ejection), and the channel counters agree with the
// Observer-based occupancy recorder.
func TestMetricsCounterConsistency(t *testing.T) {
	topo := topology.NewMesh(6, 6)
	m := metrics.New(metrics.Config{Interval: 50})
	occ := NewChannelOccupancy(topo)
	var script []ScriptedMessage
	flits := 0
	for i := 0; i < 24; i++ {
		src := topology.NodeID((i * 5) % topo.Nodes())
		dst := topology.NodeID((i*13 + 7) % topo.Nodes())
		if src == dst {
			continue
		}
		script = append(script, ScriptedMessage{Cycle: int64(2 * i), Src: src, Dst: dst, Length: 8})
		flits += 8
	}
	e, err := New(Config{
		Algorithm: routing.NewNegativeFirst(topo),
		Script:    script,
		Metrics:   m,
		Observer:  occ.Observer(),
	})
	if err != nil {
		t.Fatal(err)
	}
	var hopSum int
	e.onDeliver = func(p *packet) { hopSum += p.hops }
	res := e.run()
	if res.Deadlocked || res.PacketsDelivered != int64(len(script)) {
		t.Fatalf("bad run: %+v", res)
	}
	if m.InjectedFlits != int64(flits) || m.DeliveredFlits != int64(flits) {
		t.Errorf("injected/delivered = %d/%d, want %d/%d", m.InjectedFlits, m.DeliveredFlits, flits, flits)
	}
	var grants, denials int64
	for v := range m.Grants {
		grants += m.Grants[v]
		denials += m.Denials[v]
	}
	// One grant per router traversed: hops network outputs plus the
	// destination's ejection channel.
	if want := int64(hopSum + len(script)); grants != want {
		t.Errorf("grants = %d, want hops+deliveries = %d", grants, want)
	}
	if denials < 0 {
		t.Errorf("negative denial count %d", denials)
	}
	// Per-channel flit counts must agree with the Forward-event
	// recorder: same total, same per-channel values.
	var chanTotal int64
	for i, f := range m.ChannelFlits {
		if i%(2*topo.NumDims()+1) == 2*topo.NumDims() {
			continue // ejection slot
		}
		chanTotal += f
	}
	if chanTotal != occ.Total() {
		t.Errorf("metrics network flits %d != observer total %d", chanTotal, occ.Total())
	}
	hot, hotCount := occ.Hottest()
	nphys := 2*topo.NumDims() + 1
	if got := m.ChannelFlits[int(hot.From)*nphys+hot.Dir.Index()]; got != hotCount {
		t.Errorf("hottest channel %v: metrics %d != observer %d", hot, got, hotCount)
	}
	// All buffers drained: the occupancy gauges are back to zero and
	// the latency histogram saw every packet.
	for v, o := range m.Occupancy {
		if o != 0 {
			t.Errorf("router %d occupancy %d after drain, want 0", v, o)
		}
	}
	if m.Latencies().N() != int64(len(script)) {
		t.Errorf("latency histogram N = %d, want %d", m.Latencies().N(), len(script))
	}
	if m.Cycles() != res.Cycles {
		t.Errorf("collector cycles %d != run cycles %d", m.Cycles(), res.Cycles)
	}
	if len(m.Samples()) == 0 {
		t.Error("no time-series samples recorded")
	}
}

// TestScriptedUtilizationWindow: regression for the measurement-window
// bug where scripted runs had to temporarily overwrite
// cfg.MeasureCycles so hottestChannel divided by the right window.
// Scripted utilization must be positive, at most 1.0 (a channel cannot
// carry more than one flit per cycle), and exactly consistent with a
// Forward-event recount; replaying a recorded stream workload must
// report nearly the same peak utilization as the stream run.
func TestScriptedUtilizationWindow(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	streamCfg := Config{
		Algorithm:     routing.NewDimensionOrder(topo),
		Pattern:       traffic.NewMeshTranspose(topo),
		OfferedLoad:   2.0,
		WarmupCycles:  500,
		MeasureCycles: 4000,
		Seed:          17,
	}
	stream, err := Run(streamCfg)
	if err != nil {
		t.Fatal(err)
	}
	msgs, err := RecordWorkload(streamCfg, 4500)
	if err != nil {
		t.Fatal(err)
	}
	occ := NewChannelOccupancy(topo)
	scripted, err := Run(Config{
		Algorithm:         routing.NewDimensionOrder(topo),
		Script:            msgs,
		DeadlockThreshold: 100000,
		DrainDeadline:     1 << 20,
		Observer:          occ.Observer(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if scripted.Deadlocked {
		t.Fatalf("replay deadlocked: %+v", scripted)
	}
	if scripted.MaxChannelUtilization <= 0 || scripted.MaxChannelUtilization > 1 {
		t.Errorf("scripted utilization %v out of (0,1]", scripted.MaxChannelUtilization)
	}
	if stream.MaxChannelUtilization <= 0 || stream.MaxChannelUtilization > 1 {
		t.Errorf("stream utilization %v out of (0,1]", stream.MaxChannelUtilization)
	}
	// The scripted run measures from cycle zero, so utilization *
	// cycles must equal the hottest channel's exact flit count.
	_, hotCount := occ.Hottest()
	if got := scripted.MaxChannelUtilization * float64(scripted.Cycles); int64(got+0.5) != hotCount {
		t.Errorf("scripted utilization*cycles = %.1f, observer counted %d flits", got, hotCount)
	}
	// Stream and replay drive the same workload. Their measurement
	// windows differ slightly (the scripted run also counts drain
	// cycles), so the argmax channel can flip between near-ties, but
	// the peak utilization must agree closely. Before the window fix
	// a scripted run divided by the wrong denominator, so this ratio
	// was off by the run-length/measure-window factor.
	if d := math.Abs(stream.MaxChannelUtilization - scripted.MaxChannelUtilization); d > 0.1 {
		t.Errorf("peak utilization differs by %.3f: stream %.3f, scripted %.3f",
			d, stream.MaxChannelUtilization, scripted.MaxChannelUtilization)
	}
	// And the stream's own hottest channel must be roughly as busy in
	// the replay as the stream run claims.
	if got := float64(occ.Count(stream.HottestChannel)) / float64(scripted.Cycles); math.Abs(got-stream.MaxChannelUtilization) > 0.1 {
		t.Errorf("stream hottest channel %v replayed at utilization %.3f, stream measured %.3f",
			stream.HottestChannel, got, stream.MaxChannelUtilization)
	}
}
