package sim

// Switching selects the flow control technique. The paper's introduction
// contrasts wormhole routing with store-and-forward and virtual
// cut-through (Kermani & Kleinrock): "In the absence of contention, the
// latencies for store-and-forward are proportional to the product of
// packet length and distance to travel. The latencies for wormhole
// routing [and] virtual cut-through ... are proportional to the sum of
// packet length and distance to travel." The simulator implements all
// three so that claim is reproducible (see the "intro" experiment):
//
//   - Wormhole: flit buffers (BufferDepth, default one flit); a blocked
//     packet's flits wait in place across multiple routers.
//   - StoreAndForward: every router buffers the entire packet before
//     forwarding its first flit; buffers are packet-sized.
//   - VirtualCutThrough: packet-sized buffers, but the header is
//     forwarded as soon as it arrives; a blocked packet collapses into
//     one router instead of stalling across the path.
//
// For StoreAndForward and VirtualCutThrough the per-input buffer
// capacity is the maximum packet length (BufferDepth is ignored) —
// precisely the "enough buffer space to store an entire packet for each
// channel" cost the paper cites as wormhole routing's advantage.
type Switching int

const (
	// Wormhole is the paper's switching technique (default).
	Wormhole Switching = iota
	// StoreAndForward buffers whole packets at every hop.
	StoreAndForward
	// VirtualCutThrough forwards headers immediately but gives every
	// input a whole-packet buffer.
	VirtualCutThrough
)

func (s Switching) String() string {
	switch s {
	case StoreAndForward:
		return "store-and-forward"
	case VirtualCutThrough:
		return "virtual-cut-through"
	default:
		return "wormhole"
	}
}

// maxLength returns the largest configured packet length.
func (c *Config) maxLength() int {
	m := 0
	for _, l := range c.Lengths {
		if l > m {
			m = l
		}
	}
	if m == 0 {
		m = 200
	}
	return m
}

// effectiveDepth returns the input buffer capacity implied by the
// switching technique.
func (c *Config) effectiveDepth() int {
	switch c.Switching {
	case StoreAndForward, VirtualCutThrough:
		return c.maxLength()
	default:
		return c.BufferDepth
	}
}

// holdsWholePacket reports whether a buffer must contain a packet's
// every flit before the front flit may leave (store-and-forward's rule).
// The injection buffer is exempt: the source queue plays the role of the
// source node's packet buffer.
func (c *Config) holdsWholePacket() bool { return c.Switching == StoreAndForward }

// MoveMode reports how the configuration's move phase executes:
// "sharded" when the conflict-partitioned parallel move is engaged, or
// "serial" when the engine resolves to a single shard (Shards <= 1, a
// network too small for the configured count, or a randomized
// allocation policy that pins the whole cycle to one goroutine). Since
// the conflict-partitioned move covers every switching class, the mode
// depends only on the resolved shard count, never on Switching or the
// VC width — but callers (cmd/benchjson records each entry's move_mode)
// should query rather than re-derive the resolution rules. It builds
// and discards an engine, so it also surfaces any configuration error.
func MoveMode(cfg Config) (string, error) {
	e, err := New(cfg)
	if err != nil {
		return "", err
	}
	defer e.Close()
	if e.moveSharded {
		return "sharded", nil
	}
	return "serial", nil
}
