package sim

import (
	"fmt"

	"turnmodel/internal/topology"
)

// Result summarizes one simulation run. Latencies are in microseconds
// and throughput in flits delivered per microsecond network-wide, the
// units of Figures 13-16.
type Result struct {
	// Config echoes the run parameters.
	Algorithm string
	Pattern   string
	// OfferedLoad is the applied load in flits/us/node.
	OfferedLoad float64

	// Throughput is the measured network throughput in flits/us
	// delivered during the measurement window.
	Throughput float64
	// AvgLatency is the mean message latency in us from generation
	// (including source queueing) to tail delivery.
	AvgLatency float64
	// AvgNetLatency is the mean latency from header injection to tail
	// delivery.
	AvgNetLatency float64
	// MaxLatency is the largest message latency observed, in us.
	MaxLatency float64
	// LatencyP50, LatencyP95 and LatencyP99 are latency percentiles in
	// us over the measurement window.
	LatencyP50, LatencyP95, LatencyP99 float64
	// AvgHops is the mean number of network channels traversed.
	AvgHops float64

	// PacketsDelivered and PacketsGenerated count packets in the
	// measurement window.
	PacketsDelivered int64
	PacketsGenerated int64

	// Sustainable reports the paper's criterion: the number of packets
	// queued at their source processors stays small and bounded. It is
	// true when the source backlog grew by no more than 5% of the flits
	// generated during measurement and the run did not deadlock.
	Sustainable bool
	// BacklogGrowth is the growth of queued source flits over the
	// measurement window.
	BacklogGrowth int64

	// Stopped reports that Config.Stop ended the run before its
	// configured window completed; the measurements cover only the
	// cycles that ran and should be treated as partial.
	Stopped bool

	// Deadlocked reports that no flit moved for DeadlockThreshold cycles
	// while traffic was in flight. With recovery enabled
	// (Config.RecoveryThreshold > 0) stalled worms are aborted and
	// retried instead, so deadlock becomes one outcome among recovered,
	// dropped and delivered; even then a deadlocked result remains
	// possible (e.g. a retry backoff longer than the deadlock threshold
	// on an otherwise idle network).
	Deadlocked bool
	// DeadlockCycle is the cycle deadlock was declared, if any.
	DeadlockCycle int64

	// Recoveries counts worms the recovery watchdog aborted
	// regressively, Retries the re-injections released after backoff,
	// PacketsDropped the packets whose retry budget ran out, and
	// FlitsDrained the flits recovery removed from network buffers. All
	// zero when recovery is disabled.
	Recoveries     int64
	Retries        int64
	PacketsDropped int64
	FlitsDrained   int64

	// StrandedFlits counts flits still sitting in network buffers when
	// the run ended — nonzero for deadlocked or deadline-capped runs,
	// where it measures how much traffic died in the network.
	StrandedFlits int64

	// PacketsGeneratedTotal and PacketsDeliveredTotal count generations
	// and deliveries over the whole run, not just the measurement
	// window, and PacketsInFlight the packets generated but neither
	// delivered nor dropped by the end. Together with PacketsDropped
	// they account for every generated packet:
	// PacketsGeneratedTotal == PacketsDeliveredTotal + PacketsDropped +
	// PacketsInFlight.
	PacketsGeneratedTotal int64
	PacketsDeliveredTotal int64
	PacketsInFlight       int64

	// InvariantViolation holds the first structural invariant violation
	// detected when Config.CheckInvariants was set, or "" for a clean
	// run (and always "" when the checker was off).
	InvariantViolation string

	// Cycles is the total number of simulated cycles.
	Cycles int64

	// MaxChannelUtilization is the busiest network channel's fraction of
	// cycles carrying a flit during the measurement window, and
	// HottestChannel identifies it. Ejection channels are excluded.
	MaxChannelUtilization float64
	HottestChannel        topology.Channel
}

func (r Result) String() string {
	status := "sustainable"
	if r.Deadlocked {
		status = fmt.Sprintf("DEADLOCK@%d", r.DeadlockCycle)
	} else if !r.Sustainable {
		status = "saturated"
	}
	if r.Recoveries > 0 || r.PacketsDropped > 0 {
		status += fmt.Sprintf(" recoveries=%d retries=%d dropped=%d", r.Recoveries, r.Retries, r.PacketsDropped)
	}
	if r.InvariantViolation != "" {
		status += " INVARIANT-VIOLATION"
	}
	return fmt.Sprintf("%s/%s offered=%.2f flits/us/node: throughput=%.1f flits/us latency=%.2f us (net %.2f) hops=%.2f [%s]",
		r.Algorithm, r.Pattern, r.OfferedLoad, r.Throughput, r.AvgLatency, r.AvgNetLatency, r.AvgHops, status)
}

// step advances the simulation by one cycle's phases: fault-plan
// application and deadlock recovery (both usually disabled and then
// free), message generation, output allocation, link reset, and flit
// movement. The caller owns the cycle counter (it increments e.cycle
// afterwards). Faults and recovery run first — serially, before any
// shard worker exists this cycle — so allocation always sees a
// consistent fault set and drained buffers, and recovery observer
// events precede every other event of the same cycle.
func (e *Engine) step() {
	if e.faults != nil {
		e.advanceFaults()
	}
	if e.cfg.RecoveryThreshold > 0 {
		e.recoverStep()
	}
	e.generate()
	e.allocate()
	// Reset only the link and injection usage flags set last cycle.
	for _, i := range e.dirtyLinks {
		e.linkUsed[i] = false
	}
	e.dirtyLinks = e.dirtyLinks[:0]
	for _, i := range e.dirtyInj {
		e.injUsed[i] = false
	}
	e.dirtyInj = e.dirtyInj[:0]
	e.move()
	if e.m != nil {
		e.m.EndCycle()
		// The backlog scan is deferred behind SampleDue so it runs only
		// at the sampling cadence, not every cycle.
		if e.m.SampleDue(e.cycle) {
			e.m.TakeSample(e.cycle, int64(e.inFlight), e.backlogFlits())
		}
	}
}

// Run executes the configured simulation to completion and returns its
// measurements.
func Run(cfg Config) (Result, error) {
	e, err := New(cfg)
	if err != nil {
		return Result{}, err
	}
	defer e.Close() // release the shard workers, if any were started
	return e.run(), nil
}

func (e *Engine) run() Result {
	// The engine's owner closes the worker pool: run itself leaves it
	// warm, so an engine driven through multiple runs or step sequences
	// reuses the same goroutines instead of respawning them per run.
	defer e.restoreFaults() // heal whatever the fault plan left disabled
	res := Result{
		Algorithm:   e.alg.Name(),
		OfferedLoad: e.cfg.OfferedLoad,
	}
	if e.cfg.Pattern != nil {
		res.Pattern = e.cfg.Pattern.Name()
	} else {
		res.Pattern = "scripted"
	}

	end := e.cfg.WarmupCycles + e.cfg.MeasureCycles
	scripted := e.script != nil
	if scripted {
		// Scripted runs measure everything from cycle zero.
		e.stats.measuring = true
	}
	for {
		if e.cfg.Stop != nil && e.cycle&1023 == 0 && e.cfg.Stop() {
			res.Stopped = true
			break
		}
		if scripted {
			done := e.scriptAt == len(e.script) && e.inFlight == 0
			if done || e.cycle >= e.cfg.DrainDeadline {
				break
			}
		} else {
			if e.cycle >= end {
				break
			}
			if e.cycle == e.cfg.WarmupCycles {
				e.stats.measuring = true
				e.stats.windowStart = e.cycle
				e.stats.backlogStartFlits = e.backlogFlits()
				e.stats.backlogStartValid = true
			}
		}

		e.step()

		if e.cfg.CheckInvariants && e.cycle%1024 == 1023 {
			e.checkInvariantsNow("periodic")
		}
		if e.inFlight > 0 && e.cycle-e.lastMove >= e.cfg.DeadlockThreshold {
			res.Deadlocked = true
			res.DeadlockCycle = e.cycle
			break
		}
		e.cycle++
	}

	res.Cycles = e.cycle
	s := &e.stats
	if e.cfg.CheckInvariants {
		e.checkInvariantsNow("end of run")
	}
	res.Recoveries = e.recov.recoveries
	res.Retries = e.recov.retries
	res.PacketsDropped = e.recov.drops
	res.FlitsDrained = e.recov.flitsDrained
	res.StrandedFlits = e.flitsInjectedEver - e.flitsDeliveredEver - e.flitsDrainedEver
	res.PacketsGeneratedTotal = e.nextPktID
	res.PacketsDeliveredTotal = s.totalDeliveredEver
	res.PacketsInFlight = int64(e.inFlight)
	res.InvariantViolation = e.invariantErr
	if scripted {
		res.PacketsGenerated = s.packetsGenerated
		res.PacketsDelivered = s.totalDeliveredEver
		res.Sustainable = !res.Deadlocked
		if s.packetsDelivered > 0 {
			res.AvgLatency = s.sumLatency / float64(s.packetsDelivered) / CyclesPerMicrosecond
			res.AvgNetLatency = s.sumNetLatency / float64(s.packetsDelivered) / CyclesPerMicrosecond
			res.AvgHops = s.sumHops / float64(s.packetsDelivered)
			res.MaxLatency = s.maxLatency / CyclesPerMicrosecond
			res.LatencyP50 = s.latencies.Percentile(0.50) / CyclesPerMicrosecond
			res.LatencyP95 = s.latencies.Percentile(0.95) / CyclesPerMicrosecond
			res.LatencyP99 = s.latencies.Percentile(0.99) / CyclesPerMicrosecond
		}
		if e.cycle > 0 {
			res.Throughput = float64(s.flitsDelivered) / (float64(e.cycle) / CyclesPerMicrosecond)
			// Scripted runs measure from cycle zero, so the whole run is
			// the utilization window.
			res.MaxChannelUtilization, res.HottestChannel = e.hottestChannel(e.cycle)
		}
		return res
	}
	// Deadlocked (or otherwise truncated) runs measure over the cycles
	// actually simulated inside the window, so their partial throughput
	// and utilization are meaningful instead of diluted by the cycles
	// that never ran. Completed runs see exactly MeasureCycles here.
	window := e.cfg.MeasureCycles
	if res.Deadlocked && s.measuring {
		if w := e.cycle - s.windowStart; w > 0 && w < window {
			window = w
		}
	}
	measureUs := float64(window) / CyclesPerMicrosecond
	res.Throughput = float64(s.flitsDelivered) / measureUs
	if s.packetsDelivered > 0 {
		res.AvgLatency = s.sumLatency / float64(s.packetsDelivered) / CyclesPerMicrosecond
		res.AvgNetLatency = s.sumNetLatency / float64(s.packetsDelivered) / CyclesPerMicrosecond
		res.AvgHops = s.sumHops / float64(s.packetsDelivered)
		res.MaxLatency = s.maxLatency / CyclesPerMicrosecond
		res.LatencyP50 = s.latencies.Percentile(0.50) / CyclesPerMicrosecond
		res.LatencyP95 = s.latencies.Percentile(0.95) / CyclesPerMicrosecond
		res.LatencyP99 = s.latencies.Percentile(0.99) / CyclesPerMicrosecond
	}
	res.PacketsDelivered = s.packetsDelivered
	res.PacketsGenerated = s.packetsGenerated
	res.MaxChannelUtilization, res.HottestChannel = e.hottestChannel(window)
	res.BacklogGrowth = e.backlogFlits() - s.backlogStartFlits
	genFlits := s.flitsGenMeasure
	res.Sustainable = !res.Deadlocked && float64(res.BacklogGrowth) <= 0.05*float64(genFlits)+float64(2*e.topo.Nodes())
	return res
}
