package sim

import "math/bits"

// bitset is a fixed-size set of small non-negative integers, used for
// the engine's worklists: one bit per input buffer (the movement
// worklist seed) or per router (the allocation worklist). Enumeration
// is in ascending order, which the engine relies on for deterministic
// scheduling.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int32)      { b[i>>6] |= 1 << (uint(i) & 63) }
func (b bitset) clear(i int32)    { b[i>>6] &^= 1 << (uint(i) & 63) }
func (b bitset) get(i int32) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// setAll sets bits 0..n-1.
func (b bitset) setAll(n int) {
	for i := range b {
		b[i] = ^uint64(0)
	}
	if rem := n & 63; rem != 0 {
		b[len(b)-1] = 1<<uint(rem) - 1
	}
}

// appendTo appends every set bit to dst in ascending order and returns
// the extended slice. It is forEach without the per-bit indirect call,
// for per-cycle hot paths that materialize the set into a worklist
// (the conflict-partitioned move's seed-order build).
func (b bitset) appendTo(dst []int32) []int32 {
	for w, word := range b {
		base := int32(w << 6)
		for word != 0 {
			dst = append(dst, base+int32(bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
	return dst
}

// forEach calls fn for every set bit in ascending order. fn may clear
// bits; clears within the word being visited do not affect the current
// enumeration pass.
func (b bitset) forEach(fn func(i int32)) {
	for w, word := range b {
		for word != 0 {
			fn(int32(w<<6 + bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
}

// forEachIn calls fn for every set bit i with lo <= i < hi, in
// ascending order. It reads each word once up front, so it tolerates
// concurrent range enumerations of disjoint [lo, hi) windows as long as
// no bit is mutated during the pass (the sharded allocation phase's
// contract: shard workers only read the worklists and defer updates to
// the serial commit).
func (b bitset) forEachIn(lo, hi int32, fn func(i int32)) {
	if lo >= hi {
		return
	}
	wlo, whi := int(lo>>6), int((hi-1)>>6)
	for w := wlo; w <= whi; w++ {
		word := b[w]
		if w == wlo {
			word &= ^uint64(0) << (uint(lo) & 63)
		}
		if w == whi {
			if rem := uint(hi) & 63; rem != 0 {
				word &= 1<<rem - 1
			}
		}
		for word != 0 {
			fn(int32(w<<6 + bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
}
