package sim

import (
	"testing"

	"turnmodel/internal/routing"
	"turnmodel/internal/topology"
	"turnmodel/internal/traffic"
)

// TestInputPolicies: every input selection policy delivers traffic;
// local FCFS and port-order are deterministic.
func TestInputPolicies(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	for _, pol := range []InputPolicy{LocalFCFS, PortOrder, RandomInput} {
		cfg := Config{
			Algorithm: routing.NewWestFirst(topo), Pattern: traffic.NewUniform(topo),
			OfferedLoad: 2, WarmupCycles: 1000, MeasureCycles: 4000, Seed: 11, Input: pol,
		}
		a, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if a.PacketsDelivered == 0 || a.Deadlocked {
			t.Errorf("%v: bad run %+v", pol, a)
		}
		b, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("%v: nondeterministic across identical seeds", pol)
		}
		if pol.String() == "" {
			t.Error("empty policy name")
		}
	}
}

// TestPortOrderUnfairness: with port-order arbitration a later header on
// a lower port index beats an earlier header on a higher port — the
// unfairness the paper's FCFS policy exists to prevent.
func TestPortOrderUnfairness(t *testing.T) {
	topo := topology.NewMesh(3, 3)
	dst := topo.ID(topology.Coord{1, 2})
	// Port indices at router (1,1): west input = port of direction east?
	// Arrivals: from (0,1) the packet travels east (arrives on the east
	// direction's index, 1); from (2,1) it travels west (index 0). The
	// west-travelling packet has the lower port index.
	early := topo.ID(topology.Coord{0, 1}) // arrives on port 1, injected first
	late := topo.ID(topology.Coord{2, 1})  // arrives on port 0, injected later
	mid := topo.ID(topology.Coord{1, 1})
	// The blocker occupies (1,1)'s north channel while both competing
	// headers arrive, so arbitration happens when it releases.
	script := []ScriptedMessage{
		{Cycle: 0, Src: mid, Dst: dst, Length: 40},
		{Cycle: 0, Src: early, Dst: dst, Length: 30},
		{Cycle: 1, Src: late, Dst: dst, Length: 30},
	}
	order := func(pol InputPolicy) topology.NodeID {
		e, err := New(Config{Algorithm: routing.NewFullyAdaptive(topo), Script: script, Input: pol})
		if err != nil {
			t.Fatal(err)
		}
		var first topology.NodeID = -1
		mid := topo.ID(topology.Coord{1, 1})
		e.onDeliver = func(p *packet) {
			if first < 0 && p.src != mid {
				first = p.src
			}
		}
		if res := e.run(); res.Deadlocked {
			t.Fatalf("%v: deadlock", pol)
		}
		return first
	}
	if got := order(LocalFCFS); got != early {
		t.Errorf("FCFS delivered %d first, want the earlier header %d", got, early)
	}
	if got := order(PortOrder); got != late {
		t.Errorf("port-order delivered %d first, want the lower-port header %d", got, late)
	}
}

// TestOutputPolicyNames.
func TestOutputPolicyNames(t *testing.T) {
	for _, p := range []OutputPolicy{LowestDimension, HighestDimension, RandomPolicy} {
		if p.String() == "" {
			t.Error("empty output policy name")
		}
	}
}

// TestLatencyPercentiles: percentiles are ordered and bracket the mean.
func TestLatencyPercentiles(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	res, err := Run(Config{
		Algorithm: routing.NewNegativeFirst(topo), Pattern: traffic.NewUniform(topo),
		OfferedLoad: 2, WarmupCycles: 1000, MeasureCycles: 6000, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !(res.LatencyP50 <= res.LatencyP95 && res.LatencyP95 <= res.LatencyP99) {
		t.Errorf("percentiles out of order: %v %v %v", res.LatencyP50, res.LatencyP95, res.LatencyP99)
	}
	if res.LatencyP99 > res.MaxLatency+0.06 {
		t.Errorf("p99 %.2f exceeds max %.2f", res.LatencyP99, res.MaxLatency)
	}
	if res.LatencyP50 <= 0 {
		t.Error("p50 should be positive")
	}
}
