package sim

import (
	"turnmodel/internal/routing"
	"turnmodel/internal/topology"
)

// This file implements the deterministic sharded allocation phase:
// Config.Shards > 1 partitions the routers into contiguous shards and
// runs allocateRouter for each shard on its own worker goroutine.
// Allocation is router-local — a router only ever grants its own
// outputs and touches its own input buffers and metrics counters — so
// the only cross-shard state is the worklist bitsets (shared 64-bit
// words span shard boundaries), the observer callback order, and the
// shared random stream. The first two are deferred into per-shard logs
// and committed serially in ascending shard order, which is exactly
// the serial engine's ascending-router order, so results are
// bit-identical; configurations that consume the random stream during
// allocation (RandomInput, RandomPolicy) fall back to serial execution
// (see initShards). DESIGN.md, "Deterministic sharded allocation",
// derives the invariants.

// allocState is one shard's allocation scratch: the reusable buffers
// allocateRouter needs plus, when deferred commits are on, the logs the
// serial commit replays. A serial engine owns a single allocState with
// deferred == false, in which case setFlowing and observeAllocate
// apply immediately and the logs stay empty.
type allocState struct {
	deferred bool

	// Per-router scratch, reused across routers and cycles.
	waiting   []int32                    // inputs with an eligible header, len vport
	rawCands  []routing.VirtualDirection // CandidatesVC result buffer
	freeCands []routing.Candidate        // candidates whose output is free
	profCands []routing.Candidate        // distance-reducing subset

	// Deferred-commit logs, truncated each cycle and grown to their
	// high-water mark, so steady state appends without allocating.
	flowSets     []int32      // inputs to mark flowing
	clearRouters []int32      // routers to drop from the allocation worklist
	events       []allocEvent // observer Allocate calls, in grant order
}

// allocEvent is one deferred Observer.Allocate call.
type allocEvent struct {
	at    topology.NodeID
	dir   topology.Direction
	vc    int32
	eject bool
}

// setFlowing marks input in as flowing: immediately when serial,
// deferred to the commit when sharded (the bitset's words are shared
// across shard boundaries).
func (st *allocState) setFlowing(e *Engine, in int32) {
	if st.deferred {
		st.flowSets = append(st.flowSets, in)
		return
	}
	e.flowing.set(in)
}

// observeAllocate reports a grant to the configured observer:
// immediately when serial, deferred when sharded so callbacks arrive in
// the serial engine's ascending-router order. Only called when
// e.cfg.Observer != nil.
func (st *allocState) observeAllocate(e *Engine, at topology.NodeID, dir topology.Direction, vc int, eject bool) {
	if st.deferred {
		st.events = append(st.events, allocEvent{at: at, dir: dir, vc: int32(vc), eject: eject})
		return
	}
	e.cfg.Observer.Allocate(e.cycle, at, dir, vc, eject)
}

// initShards resolves the configured shard count and builds the
// per-shard scratch. The effective count is clamped to the router
// count, and configurations whose allocation consumes the shared
// random stream per visited router (RandomInput arbitration,
// RandomPolicy output selection) force serial execution: any partition
// of those draws would reorder the stream and change results.
func (e *Engine) initShards(n, ndim2 int) {
	ns := e.cfg.Shards
	if ns > n {
		ns = n
	}
	if ns < 1 || e.cfg.Input == RandomInput || e.cfg.Policy == RandomPolicy {
		ns = 1
	}
	e.nshards = ns
	if ns == 1 {
		e.shards = e.oneShard[:]
	} else {
		e.shards = make([]allocState, ns)
	}
	for s := range e.shards {
		e.shards[s] = allocState{
			deferred:  ns > 1,
			waiting:   make([]int32, e.vport),
			rawCands:  make([]routing.VirtualDirection, 0, ndim2*e.vcs),
			freeCands: make([]routing.Candidate, 0, ndim2*e.vcs),
			profCands: make([]routing.Candidate, 0, ndim2*e.vcs),
		}
	}
	if e.cfg.StrictAdvance {
		e.lenStart = make([]int32, n*e.vport)
	}
	if ns > 1 {
		e.shardLo = make([]int32, ns+1)
		for s := 0; s <= ns; s++ {
			e.shardLo[s] = int32(n * s / ns)
		}
		if e.cfg.holdsWholePacket() {
			e.readyBits = make([]bool, n*e.vport)
		}
	}
}

// allocateSharded runs one allocation phase across the worker pool:
// propose in parallel, commit serially.
func (e *Engine) allocateSharded(epoch int32) {
	if !e.poolOn {
		e.startPool()
	}
	e.poolWG.Add(e.nshards - 1)
	for s := 1; s < e.nshards; s++ {
		e.poolStart[s] <- epoch
	}
	e.runShard(0, epoch)
	e.poolWG.Wait()
	// Serial commit. Ascending shard order is ascending router order
	// (shards are contiguous), so worklist updates and observer events
	// replay exactly as the serial engine would have produced them.
	for s := range e.shards {
		st := &e.shards[s]
		for _, in := range st.flowSets {
			e.flowing.set(in)
		}
		for _, v := range st.clearRouters {
			e.allocWork.clear(v)
		}
	}
	if obs := e.cfg.Observer; obs != nil {
		for s := range e.shards {
			for i := range e.shards[s].events {
				ev := &e.shards[s].events[i]
				obs.Allocate(e.cycle, ev.at, ev.dir, int(ev.vc), ev.eject)
			}
		}
	}
}

// runShard proposes grants for every worklisted router in shard s, then
// runs the shard's slice of the move pre-pass: the strict-advance
// buffer-length snapshot and the store-and-forward readiness memo.
// Both are exact — no queue changes between generation and movement —
// and touch only the shard's own index range, so the pre-pass rides
// the same barrier as allocation for free.
func (e *Engine) runShard(s int, epoch int32) {
	st := &e.shards[s]
	st.flowSets = st.flowSets[:0]
	st.clearRouters = st.clearRouters[:0]
	st.events = st.events[:0]
	lo, hi := e.shardLo[s], e.shardLo[s+1]
	e.allocWork.forEachIn(lo, hi, func(v int32) {
		if !e.allocateRouter(int(v), epoch, st) {
			st.clearRouters = append(st.clearRouters, v)
		}
	})
	inLo, inHi := int32(int(lo)*e.vport), int32(int(hi)*e.vport)
	if e.cfg.StrictAdvance {
		for i := inLo; i < inHi; i++ {
			e.lenStart[i] = int32(len(e.inbufs[i].q))
		}
	}
	if e.readyBits != nil {
		// Refresh the memo for inputs that were already flowing; inputs
		// granted this cycle keep a cleared bit and fall back to the
		// scan (sound either way — see readyToForward).
		e.flowing.forEachIn(inLo, inHi, func(in int32) {
			b := &e.inbufs[in]
			if int(b.port) != e.vport-1 && len(b.q) > 0 {
				e.readyBits[in] = e.tailAtFront(b)
			}
		})
	}
}

// startPool launches the worker goroutines for shards 1..nshards-1
// (shard zero runs on the stepping goroutine). Each worker parks on
// its start channel between cycles; the channel send publishes the
// fault epoch and everything the stepping goroutine wrote before it.
func (e *Engine) startPool() {
	e.poolStart = make([]chan int32, e.nshards)
	for s := 1; s < e.nshards; s++ {
		ch := make(chan int32, 1)
		e.poolStart[s] = ch
		go func(s int, ch chan int32) {
			for epoch := range ch {
				e.runShard(s, epoch)
				e.poolWG.Done()
			}
		}(s, ch)
	}
	e.poolOn = true
}

// Close releases the shard worker goroutines. It is a no-op for serial
// engines and engines that never stepped; Run calls it on exit. Tests
// that drive a sharded engine through step directly should defer it.
// The engine remains usable after Close — the next sharded cycle
// restarts the pool.
func (e *Engine) Close() {
	if !e.poolOn {
		return
	}
	for s := 1; s < e.nshards; s++ {
		close(e.poolStart[s])
	}
	e.poolStart = nil
	e.poolOn = false
}
