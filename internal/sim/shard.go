package sim

import (
	"runtime"
	"sync"
	"sync/atomic"

	"turnmodel/internal/routing"
	"turnmodel/internal/topology"
)

// This file implements the deterministic sharded phases: Config.Shards
// > 1 partitions the routers into contiguous shards and runs the two
// parallelizable per-cycle regions — allocation propose (plus the move
// pre-pass) and the conflict-partitioned move drain — on a persistent
// worker pool, one goroutine per shard. Allocation follows a
// propose/commit discipline: workers only read shared engine state and
// write per-shard scratch, and a serial commit applies every shared
// mutation, observer callback and metric in the serial engine's order.
// The move phase is partitioned by conflict instead: each cycle a
// union-find over the input channels groups the flowing worms into
// independent components (per-link virtual-channel wait chains, feeder
// cascades, destination couplings), whole components are handed to
// shards, and each shard replays the serial drain schedule on its
// components — mutating buffers and channel holds in place, logging
// every cross-component side effect — while a serial commit replays the
// logs in the serial engine's exact order. Results are bit-identical at
// any shard count for every switching class (multi-VC and chained
// store-and-forward included; no serial fallback remains in the move
// phase). Configurations that consume the random stream during
// allocation (RandomInput, RandomPolicy) still fall back to fully
// serial execution (see initShards). DESIGN.md, "Deterministic sharded
// execution", derives the invariants.

// ShardsAuto is the Config.Shards value that sizes the shard count
// automatically: min(GOMAXPROCS, routers/64), at least one. The /64
// floor keeps shards coarse enough that the per-cycle barrier cost is
// amortized over a useful amount of per-shard work.
const ShardsAuto = -1

// Gate phase tags: which parallel region a release starts.
const (
	phaseExit  int32 = -1 // workers return (Close)
	phaseAlloc int32 = 0  // allocation propose + move pre-pass
	phaseMove  int32 = 1  // conflict-partitioned move drain
)

// moveOp kinds: the entries of the per-shard move logs the serial
// commit replays. moChunk is a marker, not an effect: it opens the run
// of ops one seed's drain produced, so the commit can interleave chunks
// from different shards in the serial engine's seed order.
const (
	moChunk   uint8 = iota // a = seed ordinal; starts that seed's op run
	moInject               // a = injection input, p = packet
	moForward              // a = input, b = output
	moEject                // a = input, b = output, p = delivered packet
)

// moveOp bundle flags, capturing post-mutation facts at log time so the
// replay is state-free. fWakeSelf folds the release wake-up and the
// new-front-header wake-up together — both target the moving input's
// own router, and the allocation worklist bit is idempotent.
const (
	fHead      uint8 = 1 << iota // the moved flit was a header
	fTail                        // the moved flit was a tail (deliver/release)
	fFlowSet                     // set the destination's flowing bit
	fFlowClear                   // clear the source's flowing bit
	fWakeSelf                    // wake the source router's allocation scan
	fWakeDest                    // wake the destination router's allocation scan
)

// moveOp is one logged move-phase effect. 16 bytes + the packet pointer;
// per-shard logs are truncated each cycle and grown to their high-water
// mark, so steady state appends without allocating.
type moveOp struct {
	kind uint8
	flag uint8
	a    int32
	b    int32
	p    *packet
}

// shardGate is the per-cycle barrier between the stepping goroutine
// (the coordinator, which doubles as shard zero's worker) and the
// shard workers. It replaces the previous per-cycle channel round
// trips with a sense-reversing spin/park protocol:
//
//   - Release: the coordinator publishes the phase tag and fault epoch,
//     resets the outstanding-worker count, then bumps seq. Workers spin
//     on seq briefly and park on a condvar when the release doesn't
//     arrive in time; the coordinator always broadcasts under the
//     mutex, and parked workers re-check seq under the same mutex, so
//     a wake-up can never be missed.
//   - Join: each worker decrements done; the last one signals the
//     coordinator if (and only if) it observes the coordinator's
//     parked marker and wins the CompareAndSwap that clears it. The
//     coordinator spins on done, then publishes the marker, re-checks
//     done, and either un-publishes the marker itself or receives the
//     signal — both sides race through the same CAS, so exactly one
//     of them consumes each park. The marker is the region's sequence
//     number, not a boolean: a straggling finish from region N that
//     executes its CAS inside region N+1's park window must not be
//     able to deposit a bogus wake-up, and CAS(N -> 0) cannot match a
//     marker holding N+1.
//
// All atomics are sequentially consistent, which is what makes the
// marker/count re-check pairs race-free. The spin budget is zero when
// GOMAXPROCS is 1: spinning can only steal time from the goroutine
// that would satisfy the wait.
type shardGate struct {
	mu   sync.Mutex
	cond *sync.Cond

	seq   atomic.Uint64 // release sequence number, starts at 1
	phase atomic.Int32  // region to run, published before seq
	epoch atomic.Int32  // fault epoch argument (phaseAlloc)
	done  atomic.Int32  // workers still inside the current region

	parked atomic.Uint64 // region seq the coordinator parked in, 0 = none
	joinCh chan struct{} // buffered(1): last worker -> coordinator

	spin int            // spin iterations before parking
	wg   sync.WaitGroup // worker lifetime, for Close
}

func newShardGate(workers int) *shardGate {
	g := &shardGate{joinCh: make(chan struct{}, 1)}
	g.cond = sync.NewCond(&g.mu)
	if runtime.GOMAXPROCS(0) > 1 {
		g.spin = 4096
	}
	g.wg.Add(workers)
	return g
}

// release starts one parallel region on every worker.
func (g *shardGate) release(ph, epoch, workers int32) {
	g.phase.Store(ph)
	g.epoch.Store(epoch)
	g.done.Store(workers)
	g.seq.Add(1)
	g.mu.Lock()
	g.cond.Broadcast()
	g.mu.Unlock()
}

// awaitRelease blocks a worker until the release after last, returning
// the new sequence number.
func (g *shardGate) awaitRelease(last uint64) uint64 {
	for i := 0; i < g.spin; i++ {
		if s := g.seq.Load(); s != last {
			return s
		}
		if i&63 == 63 {
			runtime.Gosched()
		}
	}
	g.mu.Lock()
	for g.seq.Load() == last {
		g.cond.Wait()
	}
	s := g.seq.Load()
	g.mu.Unlock()
	return s
}

// finish marks the calling worker done with region seq and wakes the
// coordinator if it parked in that same region and this was the last
// worker. The seq match is what keeps a straggling finish — preempted
// here after its decrement, resuming cycles later — from consuming a
// later region's park.
func (g *shardGate) finish(seq uint64) {
	if g.done.Add(-1) == 0 {
		if g.parked.CompareAndSwap(seq, 0) {
			g.joinCh <- struct{}{}
		}
	}
}

// awaitDone blocks the coordinator until every worker finished the
// current region.
func (g *shardGate) awaitDone() {
	for i := 0; i < g.spin; i++ {
		if g.done.Load() == 0 {
			return
		}
		if i&63 == 63 {
			runtime.Gosched()
		}
	}
	seq := g.seq.Load() // only the coordinator bumps seq: this is current
	g.parked.Store(seq)
	if g.done.Load() == 0 {
		// The workers may all have finished before the marker was
		// visible. Whoever wins the CAS owns the park: winning here
		// means no worker signalled (or will), losing means the signal
		// is in flight.
		if g.parked.CompareAndSwap(seq, 0) {
			return
		}
	}
	<-g.joinCh
}

// allocState is one shard's scratch: the reusable buffers
// allocateRouter needs plus, when deferred commits are on, the logs the
// serial commit replays — allocation's flow/worklist/observer logs and
// the move drain's op logs. A serial engine owns a single allocState
// with deferred == false, in which case setFlowing, observeAllocate,
// logInject and logMove apply immediately and the logs stay empty.
type allocState struct {
	deferred bool

	// Per-router scratch, reused across routers and cycles.
	waiting   []int32                    // inputs with an eligible header, len vport
	rawCands  []routing.VirtualDirection // CandidatesVC result buffer
	freeCands []routing.Candidate        // candidates whose output is free
	profCands []routing.Candidate        // distance-reducing subset

	// Deferred-commit logs, truncated each cycle and grown to their
	// high-water mark, so steady state appends without allocating.
	flowSets     []int32      // inputs to mark flowing
	clearRouters []int32      // routers to drop from the allocation worklist
	events       []allocEvent // observer Allocate calls, in grant order

	// Conflict-partitioned move drain state. work is the shard's LIFO
	// movement worklist (the serial engine uses shard zero's). seedIdx
	// holds the ordinals (into Engine.seedOrder) of the seeds whose
	// components this shard drains; injNodes the nodes whose injection
	// sweep it owns. injLog collects the sweep injections' deferred
	// effects, chunkLog the per-seed drain runs delimited by moChunk
	// markers; cur points at whichever of the two the drain is filling.
	work     []int32
	seedIdx  []int32
	injNodes []int32
	injLog   []moveOp
	chunkLog []moveOp
	cur      *[]moveOp
}

// allocEvent is one deferred Observer.Allocate call.
type allocEvent struct {
	at    topology.NodeID
	dir   topology.Direction
	vc    int32
	eject bool
}

// setFlowing marks input in as flowing: immediately when serial,
// deferred to the commit when sharded (the bitset's words are shared
// across shard boundaries).
func (st *allocState) setFlowing(e *Engine, in int32) {
	if st.deferred {
		st.flowSets = append(st.flowSets, in)
		return
	}
	e.flowing.set(in)
}

// observeAllocate reports a grant to the configured observer:
// immediately when serial, deferred when sharded so callbacks arrive in
// the serial engine's ascending-router order. Only called when
// e.cfg.Observer != nil.
func (st *allocState) observeAllocate(e *Engine, at topology.NodeID, dir topology.Direction, vc int, eject bool) {
	if st.deferred {
		st.events = append(st.events, allocEvent{at: at, dir: dir, vc: int32(vc), eject: eject})
		return
	}
	e.cfg.Observer.Allocate(e.cycle, at, dir, vc, eject)
}

// logInject records one injection's shared-state effects: applied
// immediately when serial, appended to the active move log when the
// drain runs sharded (the commit replays sweep injections in ascending
// node order, cascade injections inside their chunk).
func (st *allocState) logInject(e *Engine, in int32, p *packet, flag uint8) {
	if st.deferred {
		*st.cur = append(*st.cur, moveOp{kind: moInject, flag: flag, a: in, p: p})
		return
	}
	e.applyInject(in, p, flag)
}

// logMove records one forward/eject move's shared-state effects:
// applied immediately when serial, appended to the chunk log when the
// drain runs sharded.
func (st *allocState) logMove(e *Engine, kind uint8, in, out int32, flag uint8, p *packet) {
	if st.deferred {
		*st.cur = append(*st.cur, moveOp{kind: kind, flag: flag, a: in, b: out, p: p})
		return
	}
	if kind == moEject {
		e.applyEject(in, out, flag, p)
	} else {
		e.applyForward(in, out, flag)
	}
}

// initShards resolves the configured shard count and builds the
// per-shard scratch. ShardsAuto picks min(GOMAXPROCS, routers/64); the
// effective count is clamped to the router count, and configurations
// whose allocation consumes the shared random stream per visited router
// (RandomInput arbitration, RandomPolicy output selection) force serial
// execution: any partition of those draws would reorder the stream and
// change results.
func (e *Engine) initShards(n, ndim2 int) {
	ns := e.cfg.Shards
	if ns == ShardsAuto {
		ns = runtime.GOMAXPROCS(0)
		if coarse := n / 64; ns > coarse {
			ns = coarse
		}
	}
	if ns > n {
		ns = n
	}
	if ns < 1 || e.cfg.Input == RandomInput || e.cfg.Policy == RandomPolicy {
		ns = 1
	}
	e.nshards = ns
	if ns == 1 {
		e.shards = e.oneShard[:]
	} else {
		e.shards = make([]allocState, ns)
	}
	for s := range e.shards {
		e.shards[s] = allocState{
			deferred:  ns > 1,
			waiting:   make([]int32, e.vport),
			rawCands:  make([]routing.VirtualDirection, 0, ndim2*e.vcs),
			freeCands: make([]routing.Candidate, 0, ndim2*e.vcs),
			profCands: make([]routing.Candidate, 0, ndim2*e.vcs),
		}
	}
	if e.cfg.StrictAdvance {
		e.lenStart = make([]int32, n*e.vport)
	}
	if ns > 1 {
		e.shardLo = make([]int32, ns+1)
		for s := 0; s <= ns; s++ {
			e.shardLo[s] = int32(n * s / ns)
		}
		if e.cfg.holdsWholePacket() {
			e.readyBits = make([]bool, n*e.vport)
		}
		// Every sharded engine runs the conflict-partitioned move drain:
		// component independence, not switching-class structure, is what
		// makes the parallel schedule exact, so no class is excluded.
		e.moveSharded = true
		e.shardOf = make([]int32, n)
		for s := 0; s < ns; s++ {
			for v := e.shardLo[s]; v < e.shardLo[s+1]; v++ {
				e.shardOf[v] = int32(s)
			}
		}
		nin := n * e.vport
		e.mvParent = make([]int32, nin)
		e.mvSize = make([]int32, nin)
		e.compShard = make([]int32, nin)
		e.mvEnum = make([]bool, nin)
		e.shardLoad = make([]int32, ns)
		e.mergeCur = make([]int32, ns)
	}
}

// runRegion runs one parallel region across the pool: release the
// workers, run shard zero's slice on the calling (stepping) goroutine,
// and join. The pool is started lazily at the first sharded cycle and
// stays warm until Close. The whole region runs under gateMu so a
// concurrent Close can never inject a phaseExit release mid-region
// (which would corrupt the done count) — it blocks until the region's
// join, detaches the pool, and the next region transparently starts a
// fresh one.
func (e *Engine) runRegion(ph, epoch int32) {
	e.gateMu.Lock()
	if e.gate == nil {
		e.startPool()
	}
	g := e.gate
	g.release(ph, epoch, int32(e.nshards-1))
	if ph == phaseAlloc {
		e.runShard(0, epoch)
	} else {
		e.runMoveShardDrain(0)
	}
	g.awaitDone()
	e.gateMu.Unlock()
}

// allocateSharded runs one allocation phase across the worker pool:
// propose in parallel, commit serially.
func (e *Engine) allocateSharded(epoch int32) {
	e.runRegion(phaseAlloc, epoch)
	// Serial commit. Ascending shard order is ascending router order
	// (shards are contiguous), so worklist updates and observer events
	// replay exactly as the serial engine would have produced them.
	for s := range e.shards {
		st := &e.shards[s]
		for _, in := range st.flowSets {
			e.flowing.set(in)
		}
		for _, v := range st.clearRouters {
			e.allocWork.clear(v)
		}
	}
	if obs := e.cfg.Observer; obs != nil {
		for s := range e.shards {
			for i := range e.shards[s].events {
				ev := &e.shards[s].events[i]
				obs.Allocate(e.cycle, ev.at, ev.dir, int(ev.vc), ev.eject)
			}
		}
	}
}

// runShard proposes grants for every worklisted router in shard s, then
// runs the shard's slice of the move pre-pass: the strict-advance
// buffer-length snapshot and the store-and-forward readiness memo.
// Both are exact — no queue changes between generation and movement —
// and touch only the shard's own index range, so the pre-pass rides
// the same barrier as allocation for free.
func (e *Engine) runShard(s int, epoch int32) {
	st := &e.shards[s]
	st.flowSets = st.flowSets[:0]
	st.clearRouters = st.clearRouters[:0]
	st.events = st.events[:0]
	lo, hi := e.shardLo[s], e.shardLo[s+1]
	e.allocWork.forEachIn(lo, hi, func(v int32) {
		if !e.allocateRouter(int(v), epoch, st) {
			st.clearRouters = append(st.clearRouters, v)
		}
	})
	inLo, inHi := int32(int(lo)*e.vport), int32(int(hi)*e.vport)
	if e.cfg.StrictAdvance {
		for i := inLo; i < inHi; i++ {
			e.lenStart[i] = int32(len(e.inbufs[i].q))
		}
	}
	if e.readyBits != nil {
		// Refresh the memo for inputs that were already flowing; inputs
		// granted this cycle keep a cleared bit and fall back to the
		// scan (sound either way — see readyToForward).
		e.flowing.forEachIn(inLo, inHi, func(in int32) {
			b := &e.inbufs[in]
			if int(b.port) != e.vport-1 && len(b.q) > 0 {
				e.readyBits[in] = e.tailAtFront(b)
			}
		})
	}
}

// moveParallel is the sharded move phase: discover this cycle's
// conflict components serially (cheap pointer-chasing over flat arrays,
// zero-alloc), hand whole components to shards, drain them in parallel
// behind the existing gate, and replay the deferred side-effect logs in
// the serial engine's order. Determinism rests on two facts derived in
// DESIGN.md, "Conflict-partitioned movement":
//
//   - Components are closed under every drain-time interaction. All
//     state a drain touches — queues it pops or appends, channel holds
//     it releases, link-usage slots it claims, cascade targets it
//     pushes, injections it attempts — belongs to inputs reachable from
//     its seeds through the dest/feeder/link-sibling edges, all of
//     which the discovery walk expands. Channel holds only get
//     released during movement, never acquired, so edges computed
//     before the drain cannot appear mid-drain.
//   - Inside one component, each shard replays the serial schedule
//     exactly: seeds are drained in descending seed-order (the serial
//     LIFO pop order), pending seeds are pre-marked in-work so cascade
//     pushes skip them just as the serial stack does, and each seed's
//     cascade subtree runs to exhaustion before the next seed — which
//     is precisely what the serial LIFO does, because cascades only
//     push component-local inputs.
func (e *Engine) moveParallel() {
	e.buildSeedOrder()
	e.buildMoveComponents()
	e.assignMoveWork()
	e.runRegion(phaseMove, 0)
	e.commitMoves()
}

// mvVisit enumerates input in as a member of this cycle's dependency
// structure: a fresh singleton union-find node, queued for edge
// expansion.
func (e *Engine) mvVisit(in int32) {
	if e.mvEnum[in] {
		return
	}
	e.mvEnum[in] = true
	e.mvParent[in] = in
	e.mvSize[in] = 1
	e.compShard[in] = -1
	e.mvTouched = append(e.mvTouched, in)
	e.mvStack = append(e.mvStack, in)
}

// mvFind returns in's component root, with path halving.
func (e *Engine) mvFind(in int32) int32 {
	for e.mvParent[in] != in {
		e.mvParent[in] = e.mvParent[e.mvParent[in]]
		in = e.mvParent[in]
	}
	return in
}

// mvUnion merges the components of a and b, by size.
func (e *Engine) mvUnion(a, b int32) {
	ra, rb := e.mvFind(a), e.mvFind(b)
	if ra == rb {
		return
	}
	if e.mvSize[ra] < e.mvSize[rb] {
		ra, rb = rb, ra
	}
	e.mvParent[rb] = ra
	e.mvSize[ra] += e.mvSize[rb]
}

// buildMoveComponents enumerates every channel holder reachable from
// this cycle's flowing inputs and unions the ones that can interact
// during the drain. A holder is an input whose packet holds an output
// channel (allocOut >= 0); empty-buffer holders (worm bubbles) matter
// too, because a cascade can hand them a flit and move it on in the
// same cycle. Three edge kinds cover every drain-time interaction:
//
//   - dest: in forwards into d = outDest[allocOut]; if d itself holds a
//     channel, in's append races d's pops (and, chained, d's pop is
//     what unblocks in), so they must drain on one shard.
//   - feeder: the holder of in's upstream output cascades into in (and
//     its same-cycle tail arrival flips store-and-forward readiness).
//   - link siblings (vcs > 1): every holder of a virtual channel on
//     in's output's physical link arbitrates for the same linkUsed
//     slot, in seed-rotation order.
//
// The edge relation is symmetric (dest and feeder are the two readings
// of the same busyBy/outDest pair; link siblings are mutual), and the
// walk expands the edges of every enumerated holder — not just seeds —
// so enumeration is closed under reachability: anything a component's
// drain can touch is in the component.
func (e *Engine) buildMoveComponents() {
	for _, i := range e.mvTouched {
		e.mvEnum[i] = false
	}
	e.mvTouched = e.mvTouched[:0]
	e.mvStack = e.mvStack[:0]
	for _, in := range e.seedOrder {
		e.mvVisit(in)
	}
	for len(e.mvStack) > 0 {
		in := e.mvStack[len(e.mvStack)-1]
		e.mvStack = e.mvStack[:len(e.mvStack)-1]
		out := e.inbufs[in].allocOut
		if d := e.outDest[out]; d >= 0 && e.inbufs[d].allocOut >= 0 {
			e.mvVisit(d)
			e.mvUnion(in, d)
		}
		if up := e.upOut[in]; up >= 0 {
			if f := e.busyBy[up]; f >= 0 {
				e.mvVisit(f)
				e.mvUnion(in, f)
			}
		}
		if e.vcs > 1 {
			if p := int(out) % e.vport; p != e.vport-1 {
				dirBase := out - int32(p%e.vcs)
				for c := int32(0); c < int32(e.vcs); c++ {
					if h := e.busyBy[dirBase+c]; h >= 0 && h != in {
						e.mvVisit(h)
						e.mvUnion(in, h)
					}
				}
			}
		}
	}
}

// assignMoveWork distributes whole components across the shards (seeds
// of one component always land together, least-loaded shard wins ties
// toward lower indices — all deterministic) and partitions the
// injection sweep: a node whose injection input belongs to a component
// is swept by that component's shard (its drain may race the sweep for
// the injection buffer); every other node stays with its contiguous
// range owner.
func (e *Engine) assignMoveWork() {
	for s := range e.shards {
		st := &e.shards[s]
		st.seedIdx = st.seedIdx[:0]
		st.injNodes = st.injNodes[:0]
		e.shardLoad[s] = 0
	}
	e.seedShard = e.seedShard[:0]
	for k, in := range e.seedOrder {
		r := e.mvFind(in)
		s := e.compShard[r]
		if s < 0 {
			s = 0
			for t := int32(1); t < int32(e.nshards); t++ {
				if e.shardLoad[t] < e.shardLoad[s] {
					s = t
				}
			}
			e.compShard[r] = s
		}
		e.shardLoad[s]++
		e.seedShard = append(e.seedShard, s)
		e.shards[s].seedIdx = append(e.shards[s].seedIdx, int32(k))
	}
	for v := range e.queues {
		if e.queues[v].len() == 0 {
			continue
		}
		inj := e.injectionIn(topology.NodeID(v))
		var s int32
		if e.mvEnum[inj] {
			// Every enumerated input is union-connected to a seed (the
			// walk starts at seeds and unions on visit), so its component
			// root was assigned a shard above; the fallback is defensive.
			s = e.compShard[e.mvFind(inj)]
			if s < 0 {
				s = e.shardOf[v]
			}
		} else {
			s = e.shardOf[v]
		}
		e.shards[s].injNodes = append(e.shards[s].injNodes, int32(v))
	}
}

// runMoveShardDrain runs shard s's slice of the move phase: its owned
// injection sweeps in ascending node order, then its components in the
// serial engine's seed order, logging every shared-state effect for the
// ordered commit. All in-place mutations (buffers, channel holds,
// link-usage slots, packet bookkeeping, the inWork bytes) are component-
// local, so shards never write the same memory.
func (e *Engine) runMoveShardDrain(s int) {
	st := &e.shards[s]
	st.injLog = st.injLog[:0]
	st.chunkLog = st.chunkLog[:0]
	st.work = st.work[:0]
	// Pre-mark every owned seed: a cascade reaching a seed not yet
	// drained must be skipped (the serial LIFO pop would find it already
	// on the stack), while one reaching an already-drained seed re-runs
	// it inside the current chunk (the serial stack would have re-pushed
	// it). The pre-mark makes both fall out of the inWork check.
	for _, k := range st.seedIdx {
		e.inWork[e.seedOrder[k]] = true
	}
	st.cur = &st.injLog
	for _, v := range st.injNodes {
		e.tryInject(topology.NodeID(v), st)
	}
	st.cur = &st.chunkLog
	for i := len(st.seedIdx) - 1; i >= 0; i-- {
		k := st.seedIdx[i]
		st.chunkLog = append(st.chunkLog, moveOp{kind: moChunk, a: k})
		seed := e.seedOrder[k]
		e.inWork[seed] = false
		e.moveOne(seed, st)
		for len(st.work) > 0 {
			in := st.work[len(st.work)-1]
			st.work = st.work[:len(st.work)-1]
			e.inWork[in] = false
			e.moveOne(in, st)
		}
	}
}

// commitMoves replays the per-shard move logs in the serial engine's
// order: first every sweep injection in ascending node order (a k-way
// merge over the shards' injection logs, which are each ascending),
// then every seed's chunk in descending seed order — the serial LIFO's
// pop order — pulling each chunk from its owning shard's log. Within a
// chunk the ops replay in drain order, which is the serial schedule of
// that seed's cascade subtree.
func (e *Engine) commitMoves() {
	for s := range e.mergeCur {
		e.mergeCur[s] = 0
	}
	for {
		best := -1
		var bestIn int32
		for s := 0; s < e.nshards; s++ {
			if int(e.mergeCur[s]) < len(e.shards[s].injLog) {
				in := e.shards[s].injLog[e.mergeCur[s]].a
				if best < 0 || in < bestIn {
					best, bestIn = s, in
				}
			}
		}
		if best < 0 {
			break
		}
		op := &e.shards[best].injLog[e.mergeCur[best]]
		e.mergeCur[best]++
		e.applyInject(op.a, op.p, op.flag)
	}
	for s := range e.mergeCur {
		e.mergeCur[s] = 0
	}
	for k := len(e.seedOrder) - 1; k >= 0; k-- {
		s := e.seedShard[k]
		log := e.shards[s].chunkLog
		c := int(e.mergeCur[s])
		if log[c].kind != moChunk || log[c].a != int32(k) {
			panic("sim: move chunk log out of order")
		}
		c++
		for c < len(log) && log[c].kind != moChunk {
			op := &log[c]
			switch op.kind {
			case moInject:
				e.applyInject(op.a, op.p, op.flag)
			case moForward:
				e.applyForward(op.a, op.b, op.flag)
			case moEject:
				e.applyEject(op.a, op.b, op.flag, op.p)
			}
			c++
		}
		e.mergeCur[s] = int32(c)
	}
}

// startPool launches the worker goroutines for shards 1..nshards-1
// (shard zero runs on the stepping goroutine). Workers park on the
// gate between regions; the pool stays warm across the engine's whole
// life — repeated run/step sequences reuse it — until Close. Called
// with gateMu held; the gate is passed to each worker explicitly so a
// late-starting goroutine never reads e.gate concurrently with a
// Close that detaches it.
func (e *Engine) startPool() {
	e.gate = newShardGate(e.nshards - 1)
	for s := 1; s < e.nshards; s++ {
		go e.shardWorker(s, e.gate)
	}
}

// shardWorker is the loop of one pool goroutine: wait for a release,
// run the published region's slice, report done; exit on phaseExit.
func (e *Engine) shardWorker(s int, g *shardGate) {
	defer g.wg.Done()
	last := uint64(0)
	for {
		last = g.awaitRelease(last)
		switch g.phase.Load() {
		case phaseAlloc:
			e.runShard(s, g.epoch.Load())
		case phaseMove:
			e.runMoveShardDrain(s)
		default:
			return
		}
		g.finish(last)
	}
}

// Close releases the shard worker goroutines. It is a no-op for serial
// engines and engines that never stepped; Run (the package function)
// closes the engine it creates. Tests that drive a sharded engine
// through step directly should defer it. The engine remains usable
// after Close — the next sharded cycle restarts the pool.
//
// Close is idempotent and safe for concurrent use, including against a
// run in flight on another goroutine (the turnserver cancels jobs
// mid-run): it waits for any in-flight parallel region, detaches the
// pool under gateMu, and tears it down outside the lock. Concurrent
// callers race to detach; every loser sees nil and returns, and a
// region that starts after the detach builds a fresh pool.
func (e *Engine) Close() {
	e.gateMu.Lock()
	g := e.gate
	e.gate = nil
	e.gateMu.Unlock()
	if g == nil {
		return
	}
	g.release(phaseExit, 0, 0)
	g.wg.Wait()
}
