package sim

import (
	"runtime"
	"sync"
	"sync/atomic"

	"turnmodel/internal/routing"
	"turnmodel/internal/topology"
)

// This file implements the deterministic sharded phases: Config.Shards
// > 1 partitions the routers into contiguous shards and runs the two
// parallelizable per-cycle regions — allocation propose (plus the move
// pre-pass) and the move-verdict propose — on a persistent worker pool,
// one goroutine per shard. Both regions follow the same discipline:
// workers only read shared engine state and write per-shard scratch,
// and a serial commit applies every shared mutation, observer callback
// and metric in the serial engine's order, so results are bit-identical
// at any shard count. Configurations that consume the random stream
// during allocation (RandomInput, RandomPolicy) fall back to serial
// execution (see initShards); configurations whose move schedule cannot
// be predicted from start-of-phase state (multiple virtual channels,
// chained store-and-forward) keep the move propose off and run the
// serial move phase unchanged (see moveShardable). DESIGN.md,
// "Deterministic sharded execution", derives the invariants.

// ShardsAuto is the Config.Shards value that sizes the shard count
// automatically: min(GOMAXPROCS, routers/64), at least one. The /64
// floor keeps shards coarse enough that the per-cycle barrier cost is
// amortized over a useful amount of per-shard work.
const ShardsAuto = -1

// Gate phase tags: which parallel region a release starts.
const (
	phaseExit  int32 = -1 // workers return (Close)
	phaseAlloc int32 = 0  // allocation propose + move pre-pass
	phaseMove  int32 = 1  // move-verdict propose
)

// Move-verdict memo states. vUnknown entries were never evaluated by
// the propose phase (the input was not flowing when it ran); the
// commit falls back to the serial live checks for them, so a skipped
// or partial propose degrades to exact serial behavior, never to a
// wrong result.
const (
	vUnknown int8 = iota
	vInProgress
	vYes
	vNo
)

// shardGate is the per-cycle barrier between the stepping goroutine
// (the coordinator, which doubles as shard zero's worker) and the
// shard workers. It replaces the previous per-cycle channel round
// trips with a sense-reversing spin/park protocol:
//
//   - Release: the coordinator publishes the phase tag and fault epoch,
//     resets the outstanding-worker count, then bumps seq. Workers spin
//     on seq briefly and park on a condvar when the release doesn't
//     arrive in time; the coordinator always broadcasts under the
//     mutex, and parked workers re-check seq under the same mutex, so
//     a wake-up can never be missed.
//   - Join: each worker decrements done; the last one signals the
//     coordinator if (and only if) it observes the coordinator's
//     parked marker and wins the CompareAndSwap that clears it. The
//     coordinator spins on done, then publishes the marker, re-checks
//     done, and either un-publishes the marker itself or receives the
//     signal — both sides race through the same CAS, so exactly one
//     of them consumes each park. The marker is the region's sequence
//     number, not a boolean: a straggling finish from region N that
//     executes its CAS inside region N+1's park window must not be
//     able to deposit a bogus wake-up, and CAS(N -> 0) cannot match a
//     marker holding N+1.
//
// All atomics are sequentially consistent, which is what makes the
// marker/count re-check pairs race-free. The spin budget is zero when
// GOMAXPROCS is 1: spinning can only steal time from the goroutine
// that would satisfy the wait.
type shardGate struct {
	mu   sync.Mutex
	cond *sync.Cond

	seq   atomic.Uint64 // release sequence number, starts at 1
	phase atomic.Int32  // region to run, published before seq
	epoch atomic.Int32  // fault epoch argument (phaseAlloc)
	done  atomic.Int32  // workers still inside the current region

	parked atomic.Uint64 // region seq the coordinator parked in, 0 = none
	joinCh chan struct{} // buffered(1): last worker -> coordinator

	spin int            // spin iterations before parking
	wg   sync.WaitGroup // worker lifetime, for Close
}

func newShardGate(workers int) *shardGate {
	g := &shardGate{joinCh: make(chan struct{}, 1)}
	g.cond = sync.NewCond(&g.mu)
	if runtime.GOMAXPROCS(0) > 1 {
		g.spin = 4096
	}
	g.wg.Add(workers)
	return g
}

// release starts one parallel region on every worker.
func (g *shardGate) release(ph, epoch, workers int32) {
	g.phase.Store(ph)
	g.epoch.Store(epoch)
	g.done.Store(workers)
	g.seq.Add(1)
	g.mu.Lock()
	g.cond.Broadcast()
	g.mu.Unlock()
}

// awaitRelease blocks a worker until the release after last, returning
// the new sequence number.
func (g *shardGate) awaitRelease(last uint64) uint64 {
	for i := 0; i < g.spin; i++ {
		if s := g.seq.Load(); s != last {
			return s
		}
		if i&63 == 63 {
			runtime.Gosched()
		}
	}
	g.mu.Lock()
	for g.seq.Load() == last {
		g.cond.Wait()
	}
	s := g.seq.Load()
	g.mu.Unlock()
	return s
}

// finish marks the calling worker done with region seq and wakes the
// coordinator if it parked in that same region and this was the last
// worker. The seq match is what keeps a straggling finish — preempted
// here after its decrement, resuming cycles later — from consuming a
// later region's park.
func (g *shardGate) finish(seq uint64) {
	if g.done.Add(-1) == 0 {
		if g.parked.CompareAndSwap(seq, 0) {
			g.joinCh <- struct{}{}
		}
	}
}

// awaitDone blocks the coordinator until every worker finished the
// current region.
func (g *shardGate) awaitDone() {
	for i := 0; i < g.spin; i++ {
		if g.done.Load() == 0 {
			return
		}
		if i&63 == 63 {
			runtime.Gosched()
		}
	}
	seq := g.seq.Load() // only the coordinator bumps seq: this is current
	g.parked.Store(seq)
	if g.done.Load() == 0 {
		// The workers may all have finished before the marker was
		// visible. Whoever wins the CAS owns the park: winning here
		// means no worker signalled (or will), losing means the signal
		// is in flight.
		if g.parked.CompareAndSwap(seq, 0) {
			return
		}
	}
	<-g.joinCh
}

// allocState is one shard's scratch: the reusable buffers
// allocateRouter needs plus, when deferred commits are on, the logs the
// serial commit replays and the move-verdict memo. A serial engine owns
// a single allocState with deferred == false, in which case setFlowing
// and observeAllocate apply immediately and the logs stay empty.
type allocState struct {
	deferred bool

	// Per-router scratch, reused across routers and cycles.
	waiting   []int32                    // inputs with an eligible header, len vport
	rawCands  []routing.VirtualDirection // CandidatesVC result buffer
	freeCands []routing.Candidate        // candidates whose output is free
	profCands []routing.Candidate        // distance-reducing subset

	// Deferred-commit logs, truncated each cycle and grown to their
	// high-water mark, so steady state appends without allocating.
	flowSets     []int32      // inputs to mark flowing
	clearRouters []int32      // routers to drop from the allocation worklist
	events       []allocEvent // observer Allocate calls, in grant order

	// Move-verdict memo (moveShardable engines only): one entry per
	// input buffer, reset lazily via mvTouched at the start of each
	// propose. Each shard owns a full-size memo — chain walks cross
	// shard boundaries read-only, so shards memoize foreign inputs
	// privately rather than sharing words.
	mvVerdict []int8
	mvTouched []int32
}

// allocEvent is one deferred Observer.Allocate call.
type allocEvent struct {
	at    topology.NodeID
	dir   topology.Direction
	vc    int32
	eject bool
}

// setFlowing marks input in as flowing: immediately when serial,
// deferred to the commit when sharded (the bitset's words are shared
// across shard boundaries).
func (st *allocState) setFlowing(e *Engine, in int32) {
	if st.deferred {
		st.flowSets = append(st.flowSets, in)
		return
	}
	e.flowing.set(in)
}

// observeAllocate reports a grant to the configured observer:
// immediately when serial, deferred when sharded so callbacks arrive in
// the serial engine's ascending-router order. Only called when
// e.cfg.Observer != nil.
func (st *allocState) observeAllocate(e *Engine, at topology.NodeID, dir topology.Direction, vc int, eject bool) {
	if st.deferred {
		st.events = append(st.events, allocEvent{at: at, dir: dir, vc: int32(vc), eject: eject})
		return
	}
	e.cfg.Observer.Allocate(e.cycle, at, dir, vc, eject)
}

// moveShardable reports whether the move phase's outcome can be
// predicted per input from start-of-phase state, the precondition for
// the parallel verdict propose:
//
//   - One virtual channel per direction: each physical link then has a
//     single possible holder, so link arbitration degenerates to "did
//     this input already move", and every input buffer has exactly one
//     feeder — the dependency graph is a set of disjoint chains whose
//     fixed point the propose can evaluate.
//   - Store-and-forward only under StrictAdvance: chained
//     store-and-forward readiness can flip mid-drain when a cascade
//     retry lands after a same-cycle tail arrival, which only a full
//     schedule replay could predict. Strict mode runs a single
//     descending pass, where a same-cycle tail is visible exactly when
//     the feeder's index is higher than the receiver's.
func (e *Engine) moveShardable() bool {
	if e.vcs != 1 {
		return false
	}
	if e.cfg.holdsWholePacket() && !e.cfg.StrictAdvance {
		return false
	}
	return true
}

// initShards resolves the configured shard count and builds the
// per-shard scratch. ShardsAuto picks min(GOMAXPROCS, routers/64); the
// effective count is clamped to the router count, and configurations
// whose allocation consumes the shared random stream per visited router
// (RandomInput arbitration, RandomPolicy output selection) force serial
// execution: any partition of those draws would reorder the stream and
// change results.
func (e *Engine) initShards(n, ndim2 int) {
	ns := e.cfg.Shards
	if ns == ShardsAuto {
		ns = runtime.GOMAXPROCS(0)
		if coarse := n / 64; ns > coarse {
			ns = coarse
		}
	}
	if ns > n {
		ns = n
	}
	if ns < 1 || e.cfg.Input == RandomInput || e.cfg.Policy == RandomPolicy {
		ns = 1
	}
	e.nshards = ns
	if ns == 1 {
		e.shards = e.oneShard[:]
	} else {
		e.shards = make([]allocState, ns)
	}
	for s := range e.shards {
		e.shards[s] = allocState{
			deferred:  ns > 1,
			waiting:   make([]int32, e.vport),
			rawCands:  make([]routing.VirtualDirection, 0, ndim2*e.vcs),
			freeCands: make([]routing.Candidate, 0, ndim2*e.vcs),
			profCands: make([]routing.Candidate, 0, ndim2*e.vcs),
		}
	}
	if e.cfg.StrictAdvance {
		e.lenStart = make([]int32, n*e.vport)
	}
	if ns > 1 {
		e.shardLo = make([]int32, ns+1)
		for s := 0; s <= ns; s++ {
			e.shardLo[s] = int32(n * s / ns)
		}
		if e.cfg.holdsWholePacket() {
			e.readyBits = make([]bool, n*e.vport)
		}
		if e.moveShardable() {
			e.moveSharded = true
			e.shardOf = make([]int32, n)
			for s := 0; s < ns; s++ {
				for v := e.shardLo[s]; v < e.shardLo[s+1]; v++ {
					e.shardOf[v] = int32(s)
				}
			}
			for s := range e.shards {
				e.shards[s].mvVerdict = make([]int8, n*e.vport)
			}
		}
	}
}

// runRegion runs one parallel region across the pool: release the
// workers, run shard zero's slice on the calling (stepping) goroutine,
// and join. The pool is started lazily at the first sharded cycle and
// stays warm until Close. The whole region runs under gateMu so a
// concurrent Close can never inject a phaseExit release mid-region
// (which would corrupt the done count) — it blocks until the region's
// join, detaches the pool, and the next region transparently starts a
// fresh one.
func (e *Engine) runRegion(ph, epoch int32) {
	e.gateMu.Lock()
	if e.gate == nil {
		e.startPool()
	}
	g := e.gate
	g.release(ph, epoch, int32(e.nshards-1))
	if ph == phaseAlloc {
		e.runShard(0, epoch)
	} else {
		e.runMoveShard(0)
	}
	g.awaitDone()
	e.gateMu.Unlock()
}

// allocateSharded runs one allocation phase across the worker pool:
// propose in parallel, commit serially.
func (e *Engine) allocateSharded(epoch int32) {
	e.runRegion(phaseAlloc, epoch)
	// Serial commit. Ascending shard order is ascending router order
	// (shards are contiguous), so worklist updates and observer events
	// replay exactly as the serial engine would have produced them.
	for s := range e.shards {
		st := &e.shards[s]
		for _, in := range st.flowSets {
			e.flowing.set(in)
		}
		for _, v := range st.clearRouters {
			e.allocWork.clear(v)
		}
	}
	if obs := e.cfg.Observer; obs != nil {
		for s := range e.shards {
			for i := range e.shards[s].events {
				ev := &e.shards[s].events[i]
				obs.Allocate(e.cycle, ev.at, ev.dir, int(ev.vc), ev.eject)
			}
		}
	}
}

// runShard proposes grants for every worklisted router in shard s, then
// runs the shard's slice of the move pre-pass: the strict-advance
// buffer-length snapshot and the store-and-forward readiness memo.
// Both are exact — no queue changes between generation and movement —
// and touch only the shard's own index range, so the pre-pass rides
// the same barrier as allocation for free.
func (e *Engine) runShard(s int, epoch int32) {
	st := &e.shards[s]
	st.flowSets = st.flowSets[:0]
	st.clearRouters = st.clearRouters[:0]
	st.events = st.events[:0]
	lo, hi := e.shardLo[s], e.shardLo[s+1]
	e.allocWork.forEachIn(lo, hi, func(v int32) {
		if !e.allocateRouter(int(v), epoch, st) {
			st.clearRouters = append(st.clearRouters, v)
		}
	})
	inLo, inHi := int32(int(lo)*e.vport), int32(int(hi)*e.vport)
	if e.cfg.StrictAdvance {
		for i := inLo; i < inHi; i++ {
			e.lenStart[i] = int32(len(e.inbufs[i].q))
		}
	}
	if e.readyBits != nil {
		// Refresh the memo for inputs that were already flowing; inputs
		// granted this cycle keep a cleared bit and fall back to the
		// scan (sound either way — see readyToForward).
		e.flowing.forEachIn(inLo, inHi, func(in int32) {
			b := &e.inbufs[in]
			if int(b.port) != e.vport-1 && len(b.q) > 0 {
				e.readyBits[in] = e.tailAtFront(b)
			}
		})
	}
}

// proposeMoves runs the move-verdict region: every shard computes, for
// its flowing inputs, whether the front flit will leave this cycle.
// The region is read-only on shared state — each shard memoizes into
// its own verdict array, including for cross-shard chain nodes — and
// runs after the allocation commit, so it sees this cycle's grants.
func (e *Engine) proposeMoves() {
	e.runRegion(phaseMove, 0)
}

// runMoveShard computes shard s's slice of the move verdicts.
func (e *Engine) runMoveShard(s int) {
	st := &e.shards[s]
	for _, i := range st.mvTouched {
		st.mvVerdict[i] = vUnknown
	}
	st.mvTouched = st.mvTouched[:0]
	inLo := int32(int(e.shardLo[s]) * e.vport)
	inHi := int32(int(e.shardLo[s+1]) * e.vport)
	e.flowing.forEachIn(inLo, inHi, func(in int32) {
		e.moveVerdict(st, in)
	})
}

// moveVerdict resolves (and memoizes) whether input in's front flit
// leaves its buffer this cycle, assuming start-of-move-phase state.
// Chain walks may cross shard boundaries; they only read shared state
// and write the calling shard's memo.
func (e *Engine) moveVerdict(st *allocState, in int32) int8 {
	switch st.mvVerdict[in] {
	case vYes, vNo:
		return st.mvVerdict[in]
	case vInProgress:
		// Dependency cycle: a ring of full buffers each waiting for the
		// next to pop. No first pop can ever happen (every member is
		// blocked, and retries fire only on a pop inside the ring), so
		// nothing in the ring moves this cycle — the serial engine's
		// deadlock-ring outcome.
		return vNo
	}
	st.mvVerdict[in] = vInProgress
	st.mvTouched = append(st.mvTouched, in)
	v := e.moveVerdictEval(st, in)
	st.mvVerdict[in] = v
	return v
}

// moveVerdictEval is moveVerdict's uncached body: the fixed-point rules
// that predict the serial move phase's outcome for one input. The
// determinism argument lives in DESIGN.md, "Sharding the move phase";
// in short, with one virtual channel every buffer has a unique feeder
// and every link a unique holder, so whether an input moves depends
// only on its own readiness and on whether its destination buffer has
// — or makes — space, never on how the serial worklist interleaves
// unrelated inputs.
func (e *Engine) moveVerdictEval(st *allocState, in int32) int8 {
	b := &e.inbufs[in]
	if len(b.q) == 0 || b.allocOut < 0 {
		return vNo
	}
	if e.cfg.holdsWholePacket() && int(b.port) != e.vport-1 {
		// Store-and-forward readiness. Sharded move requires
		// StrictAdvance here (see moveShardable), so the phase is a
		// single descending-index pass with no retries: a tail that
		// arrives this cycle is visible to in exactly when the feeder's
		// index is higher than in's — the feeder then moved first.
		if !(e.readyBits != nil && e.readyBits[in]) && !e.tailAtFront(b) {
			up := e.upOut[in]
			if up < 0 {
				return vNo
			}
			f := e.busyBy[up]
			if f <= in {
				return vNo
			}
			fb := &e.inbufs[f]
			if len(fb.q) == 0 || !fb.q[0].tail || fb.q[0].p != b.q[0].p {
				return vNo
			}
			if e.moveVerdict(st, f) != vYes {
				return vNo
			}
		}
	}
	dest := e.outDest[b.allocOut]
	if dest < 0 {
		// Ejection: the processor consumes immediately, and the
		// ejection channel's only possible holder is this input.
		return vYes
	}
	if e.cfg.StrictAdvance {
		// Only space present at the start of the cycle counts, and the
		// destination's unique feeder is this input, so the snapshot is
		// the whole answer.
		if int(e.lenStart[dest]) < e.depth {
			return vYes
		}
		return vNo
	}
	if len(e.inbufs[dest].q) < e.depth {
		return vYes
	}
	// Chained advance into a full buffer: the move happens iff the
	// destination's own front flit leaves this cycle (the cascade retry
	// then lands this input's flit in the freed slot).
	return e.moveVerdict(st, dest)
}

// verdictFor returns input in's move verdict from its owning shard's
// memo. vUnknown means the propose never evaluated it (the input was
// not flowing then — e.g. a bubble-collapse mover whose flit arrived
// mid-drain); the caller falls back to the serial live checks.
func (e *Engine) verdictFor(in int32) int8 {
	return e.shards[e.shardOf[int(in)/e.vport]].mvVerdict[in]
}

// startPool launches the worker goroutines for shards 1..nshards-1
// (shard zero runs on the stepping goroutine). Workers park on the
// gate between regions; the pool stays warm across the engine's whole
// life — repeated run/step sequences reuse it — until Close. Called
// with gateMu held; the gate is passed to each worker explicitly so a
// late-starting goroutine never reads e.gate concurrently with a
// Close that detaches it.
func (e *Engine) startPool() {
	e.gate = newShardGate(e.nshards - 1)
	for s := 1; s < e.nshards; s++ {
		go e.shardWorker(s, e.gate)
	}
}

// shardWorker is the loop of one pool goroutine: wait for a release,
// run the published region's slice, report done; exit on phaseExit.
func (e *Engine) shardWorker(s int, g *shardGate) {
	defer g.wg.Done()
	last := uint64(0)
	for {
		last = g.awaitRelease(last)
		switch g.phase.Load() {
		case phaseAlloc:
			e.runShard(s, g.epoch.Load())
		case phaseMove:
			e.runMoveShard(s)
		default:
			return
		}
		g.finish(last)
	}
}

// Close releases the shard worker goroutines. It is a no-op for serial
// engines and engines that never stepped; Run (the package function)
// closes the engine it creates. Tests that drive a sharded engine
// through step directly should defer it. The engine remains usable
// after Close — the next sharded cycle restarts the pool.
//
// Close is idempotent and safe for concurrent use, including against a
// run in flight on another goroutine (the turnserver cancels jobs
// mid-run): it waits for any in-flight parallel region, detaches the
// pool under gateMu, and tears it down outside the lock. Concurrent
// callers race to detach; every loser sees nil and returns, and a
// region that starts after the detach builds a fresh pool.
func (e *Engine) Close() {
	e.gateMu.Lock()
	g := e.gate
	e.gate = nil
	e.gateMu.Unlock()
	if g == nil {
		return
	}
	g.release(phaseExit, 0, 0)
	g.wg.Wait()
}
