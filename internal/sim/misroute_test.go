package sim

import (
	"testing"

	"turnmodel/internal/core"
	"turnmodel/internal/routing"
	"turnmodel/internal/topology"
	"turnmodel/internal/traffic"
)

// TestMisrouteAroundFault: with a faulty channel on its only minimal
// row, a packet under the nonminimal west-first relation detours and is
// delivered; the minimal relation cannot inject it at all (the paper's
// fault-tolerance argument for nonminimal routing, live).
func TestMisrouteAroundFault(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	broken := topology.Channel{From: topo.ID(topology.Coord{3, 3}), Dir: topology.Direction{Dim: 0, Pos: true}}
	topo.DisableChannel(broken)
	defer topo.EnableChannel(broken)

	script := []ScriptedMessage{{
		Src: topo.ID(topology.Coord{1, 3}), Dst: topo.ID(topology.Coord{6, 3}), Length: 10,
	}}
	nonmin := routing.NewTurnGraphRouting(topo, core.WestFirstSet(), false)
	e, err := New(Config{
		Algorithm:         nonmin,
		Script:            script,
		MisrouteAfter:     4,
		DeadlockThreshold: 2000,
		DrainDeadline:     50000,
	})
	if err != nil {
		t.Fatal(err)
	}
	var hops int
	e.onDeliver = func(p *packet) { hops = p.hops }
	res := e.run()
	if res.Deadlocked || res.PacketsDelivered != 1 {
		t.Fatalf("nonminimal west-first should deliver around the fault: %+v", res)
	}
	if hops <= 5 {
		t.Errorf("detour took %d hops; the minimal distance 5 is impossible with the fault", hops)
	}
}

// TestMisroutePatience: at low load with a healthy network, misroute
// patience never triggers, so paths stay minimal even on a nonminimal
// relation.
func TestMisroutePatience(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	nonmin := routing.NewTurnGraphRouting(topo, core.NegativeFirstSet(2), false)
	e, err := New(Config{
		Algorithm:     nonmin,
		Pattern:       traffic.NewUniform(topo),
		OfferedLoad:   0.3,
		WarmupCycles:  500,
		MeasureCycles: 4000,
		Seed:          31,
		MisrouteAfter: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	minimalCount, total := 0, 0
	e.onDeliver = func(p *packet) {
		total++
		if p.hops == topo.Distance(p.src, p.dst) {
			minimalCount++
		}
	}
	res := e.run()
	if res.Deadlocked || total == 0 {
		t.Fatalf("bad run: %+v", res)
	}
	if frac := float64(minimalCount) / float64(total); frac < 0.98 {
		t.Errorf("only %.0f%% of packets took minimal paths at light load", frac*100)
	}
}

// TestMisrouteUnderHotspot: with heavy congestion, patience runs out and
// some packets do take detours — the adaptive escape the paper
// advertises.
func TestMisrouteUnderHotspot(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	nonmin := routing.NewTurnGraphRouting(topo, core.NegativeFirstSet(2), false)
	e, err := New(Config{
		Algorithm:     nonmin,
		Pattern:       traffic.NewHotspot(topo, topo.ID(topology.Coord{4, 4}), 0.4),
		OfferedLoad:   3,
		WarmupCycles:  1000,
		MeasureCycles: 8000,
		Seed:          32,
		MisrouteAfter: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	detours, total := 0, 0
	e.onDeliver = func(p *packet) {
		total++
		if p.hops > topo.Distance(p.src, p.dst) {
			detours++
		}
	}
	res := e.run()
	if res.Deadlocked || total == 0 {
		t.Fatalf("bad run: %+v", res)
	}
	if detours == 0 {
		t.Error("no packet ever misrouted under hotspot congestion")
	}
	// Detours come in pairs of extra hops: lengths stay even-offset.
	// (Implicitly checked by delivery: the turn relation cannot revisit
	// channels, so the run terminating at all bounds the detours.)
}

// TestMisrouteStochasticFaults: a faulty mesh under stochastic traffic:
// the nonminimal relation with patience delivers traffic from every
// node that remains connected.
func TestMisrouteStochasticFaults(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	faults := []topology.Channel{
		{From: topo.ID(topology.Coord{2, 2}), Dir: topology.Direction{Dim: 0, Pos: true}},
		{From: topo.ID(topology.Coord{5, 5}), Dir: topology.Direction{Dim: 1, Pos: true}},
		{From: topo.ID(topology.Coord{4, 1}), Dir: topology.Direction{Dim: 1}},
	}
	for _, f := range faults {
		topo.DisableChannel(f)
	}
	defer func() {
		for _, f := range faults {
			topo.EnableChannel(f)
		}
	}()
	nonmin := routing.NewTurnGraphRouting(topo, core.WestFirstSet(), false)
	res, err := Run(Config{
		Algorithm:     nonmin,
		Pattern:       traffic.NewUniform(topo),
		OfferedLoad:   0.5,
		WarmupCycles:  1000,
		MeasureCycles: 8000,
		Seed:          33,
		MisrouteAfter: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocked {
		t.Fatalf("deadlock on faulty mesh: %+v", res)
	}
	if !res.Sustainable || res.PacketsDelivered == 0 {
		t.Errorf("faulty mesh should still sustain light load: %+v", res)
	}
}
