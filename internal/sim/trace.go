package sim

import (
	"bufio"
	"fmt"
	"io"

	"turnmodel/internal/topology"
)

// Workload traces. The paper closes on "the identification of realistic
// workload distributions, so that the results of future simulations can
// be more meaningful" — traces are the mechanism: a run can record the
// exact message workload it generated, and later runs can replay it,
// pinning the workload while the routing algorithm varies (common
// random numbers, the variance-reduction discipline behind the paper's
// figure comparisons).
//
// The format is one line per message: "cycle src dst length", plain
// decimal, ordered by cycle.

// WriteTrace serializes messages to w in trace format.
func WriteTrace(w io.Writer, msgs []ScriptedMessage) error {
	bw := bufio.NewWriter(w)
	for _, m := range msgs {
		if _, err := fmt.Fprintf(bw, "%d %d %d %d\n", m.Cycle, m.Src, m.Dst, m.Length); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses a trace into scripted messages.
func ReadTrace(r io.Reader) ([]ScriptedMessage, error) {
	var msgs []ScriptedMessage
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		var cycle int64
		var src, dst, length int
		if _, err := fmt.Sscanf(text, "%d %d %d %d", &cycle, &src, &dst, &length); err != nil {
			return nil, fmt.Errorf("sim: trace line %d: %v", line, err)
		}
		if length < 1 || src == dst {
			return nil, fmt.Errorf("sim: trace line %d: invalid message (src=%d dst=%d len=%d)", line, src, dst, length)
		}
		msgs = append(msgs, ScriptedMessage{
			Cycle: cycle, Src: topology.NodeID(src), Dst: topology.NodeID(dst), Length: length,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return msgs, nil
}

// RecordWorkload generates the message workload a configuration would
// produce over the given horizon — the same stochastic process the
// simulator drives — without simulating the network. The result can be
// replayed via Config.Script against any algorithm on the same
// topology.
func RecordWorkload(cfg Config, horizon int64) ([]ScriptedMessage, error) {
	e, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if e.script != nil {
		return nil, fmt.Errorf("sim: RecordWorkload requires a stochastic configuration, not a script")
	}
	var msgs []ScriptedMessage
	for e.cycle = 0; e.cycle < horizon; e.cycle++ {
		e.generate()
		for v := range e.queues {
			q := &e.queues[v]
			for q.len() > 0 {
				p := q.pop()
				msgs = append(msgs, ScriptedMessage{
					Cycle: p.genCycle, Src: p.src, Dst: p.dst, Length: p.length,
				})
				e.releasePacket(p)
			}
		}
	}
	return msgs, nil
}
