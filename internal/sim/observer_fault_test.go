package sim

import (
	"testing"

	"turnmodel/internal/core"
	"turnmodel/internal/routing"
	"turnmodel/internal/topology"
)

// TestObserverEventsUnderFault: the Observer event stream stays
// well-formed and conservative when a channel fails mid-run. The fault
// lands while a header that needs the broken channel is in flight, so
// the engine's fault-epoch check must invalidate its cached candidates
// and the allocation rescan must reroute it — all of which the event
// stream has to reflect: cycles never go backwards, phases within a
// cycle follow allocate < move, every network-grant matches
// a head forward and every ejection-grant a delivery, no flit crosses
// the disabled channel after the fault, and the blocked packet's
// Deliver event reports a detour.
func TestObserverEventsUnderFault(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	broken := topology.Channel{From: topo.ID(topology.Coord{3, 3}), Dir: topology.Direction{Dim: 0, Pos: true}}
	defer topo.EnableChannel(broken)

	// Unique (src,dst) pairs so Deliver events correlate with Inject
	// events exactly. The first message's only minimal path runs east
	// along row 3, straight over the channel that will fail.
	blockedSrc := topo.ID(topology.Coord{1, 3})
	blockedDst := topo.ID(topology.Coord{6, 3})
	script := []ScriptedMessage{
		{Cycle: 0, Src: blockedSrc, Dst: blockedDst, Length: 8},
		{Cycle: 0, Src: topo.ID(topology.Coord{0, 0}), Dst: topo.ID(topology.Coord{5, 6}), Length: 6},
		{Cycle: 2, Src: topo.ID(topology.Coord{7, 1}), Dst: topo.ID(topology.Coord{2, 5}), Length: 6},
		{Cycle: 4, Src: topo.ID(topology.Coord{6, 7}), Dst: topo.ID(topology.Coord{0, 2}), Length: 6},
		{Cycle: 6, Src: topo.ID(topology.Coord{4, 4}), Dst: topo.ID(topology.Coord{4, 0}), Length: 6},
	}
	const faultCycle = 2

	type pkt struct {
		injectCycle  int64
		injects      int
		delivers     int
		deliverCycle int64
		hops         int
	}
	pkts := map[[2]topology.NodeID]*pkt{}
	for _, m := range script {
		pkts[[2]topology.NodeID{m.Src, m.Dst}] = &pkt{}
	}

	var lastCycle int64
	lastPhase := -1
	// Phases within a cycle: 0 allocate (Allocate events), 1 move
	// (Inject fires from tryInject during movement, interleaved with
	// Forward and Deliver per channel).
	phase := func(cycle int64, p int, what string) {
		if cycle < lastCycle {
			t.Fatalf("%s event at cycle %d after cycle %d", what, cycle, lastCycle)
		}
		if cycle > lastCycle {
			lastCycle, lastPhase = cycle, -1
		}
		if p < lastPhase {
			t.Fatalf("cycle %d: %s event out of phase order (%d after %d)", cycle, what, p, lastPhase)
		}
		lastPhase = p
	}
	var netGrants, ejectGrants, headForwards, forwards, delivers int
	obs := ObserverFuncs{
		InjectFn: func(cycle int64, src, dst topology.NodeID, length int) {
			phase(cycle, 1, "Inject")
			p, ok := pkts[[2]topology.NodeID{src, dst}]
			if !ok {
				t.Fatalf("Inject for unknown packet %d->%d", src, dst)
			}
			p.injects++
			p.injectCycle = cycle
		},
		AllocateFn: func(cycle int64, at topology.NodeID, dir topology.Direction, vc int, eject bool) {
			phase(cycle, 0, "Allocate")
			if vc != 0 {
				t.Errorf("single-channel run allocated vc %d", vc)
			}
			if eject {
				ejectGrants++
			} else {
				netGrants++
				if cycle > faultCycle && at == broken.From && dir == broken.Dir {
					t.Errorf("cycle %d: allocated the disabled channel %v", cycle, broken)
				}
			}
		},
		ForwardFn: func(cycle int64, ch topology.Channel, vc int, head, tail bool) {
			phase(cycle, 1, "Forward")
			forwards++
			if head {
				headForwards++
			}
			if cycle > faultCycle && ch == broken {
				t.Errorf("cycle %d: flit crossed the disabled channel %v", cycle, broken)
			}
		},
		DeliverFn: func(cycle int64, src, dst topology.NodeID, lat int64, hops int) {
			phase(cycle, 1, "Deliver")
			delivers++
			p, ok := pkts[[2]topology.NodeID{src, dst}]
			if !ok {
				t.Fatalf("Deliver for unknown packet %d->%d", src, dst)
			}
			p.delivers++
			p.deliverCycle = cycle
			p.hops = hops
			if lat <= 0 || cycle <= p.injectCycle {
				t.Errorf("packet %d->%d: deliver at cycle %d (inject %d), latency %d", src, dst, cycle, p.injectCycle, lat)
			}
		},
	}

	nonmin := routing.NewTurnGraphRouting(topo, core.WestFirstSet(), false)
	e, err := New(Config{
		Algorithm:         nonmin,
		Script:            script,
		MisrouteAfter:     4,
		DeadlockThreshold: 2000,
		Observer:          obs,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Drive the engine by hand so the fault lands mid-run, after the
	// blocked header is already in the network with cached candidates.
	for e.scriptAt < len(e.script) || e.inFlight > 0 {
		if e.cycle == faultCycle {
			topo.DisableChannel(broken)
		}
		e.step()
		e.cycle++
		if e.cycle > 50000 {
			t.Fatal("run did not drain")
		}
	}

	if delivers != len(script) {
		t.Fatalf("delivered %d of %d packets", delivers, len(script))
	}
	for key, p := range pkts {
		if p.injects != 1 || p.delivers != 1 {
			t.Errorf("packet %d->%d: %d injects, %d delivers, want 1 each", key[0], key[1], p.injects, p.delivers)
		}
		if p.hops < 1 {
			t.Errorf("packet %d->%d delivered with %d hops", key[0], key[1], p.hops)
		}
	}
	// Conservation: one network grant per head crossing, one ejection
	// grant per delivery, and total forwards = sum of length*hops.
	if netGrants != headForwards {
		t.Errorf("network grants %d != head forwards %d", netGrants, headForwards)
	}
	if ejectGrants != delivers {
		t.Errorf("ejection grants %d != delivers %d", ejectGrants, delivers)
	}
	wantForwards := 0
	for _, m := range script {
		wantForwards += m.Length * pkts[[2]topology.NodeID{m.Src, m.Dst}].hops
	}
	if forwards != wantForwards {
		t.Errorf("forward events %d, want sum length*hops %d", forwards, wantForwards)
	}
	// The rerouted packet must have detoured: with its row cut it
	// cannot make the minimal 5-hop distance.
	if got := pkts[[2]topology.NodeID{blockedSrc, blockedDst}].hops; got <= topo.Distance(blockedSrc, blockedDst) {
		t.Errorf("blocked packet delivered in %d hops; the fault makes the minimal %d impossible",
			got, topo.Distance(blockedSrc, blockedDst))
	}
}
