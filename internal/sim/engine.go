package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"turnmodel/internal/fault"
	"turnmodel/internal/metrics"
	"turnmodel/internal/routing"
	"turnmodel/internal/stats"
	"turnmodel/internal/topology"
)

// packet is an in-flight message. The paper divides messages into
// packets and packets into flits; as in its experiments every message is
// a single packet.
type packet struct {
	id     int64
	src    topology.NodeID
	dst    topology.NodeID
	length int
	// firstDir restricts the first hop (scripted scenarios only).
	firstDir *topology.Direction

	genCycle     int64 // message created at the source processor
	injectCycle  int64 // header flit entered the source router
	deliverCycle int64 // tail flit consumed at the destination

	flitsSent      int // flits that have left the source queue
	flitsDelivered int
	hops           int // network channels traversed by the header

	// lastProgress is the cycle any flit of this packet last advanced
	// (injection or link traversal); the recovery watchdog's staleness
	// key. retries counts regressive aborts of this packet. Both are
	// bookkeeping stores only — with recovery disabled nothing reads
	// them, so results are bit-identical either way.
	lastProgress int64
	retries      int32
}

// flit is one flow control digit.
type flit struct {
	p    *packet
	head bool
	tail bool
}

// pktChunk is the packet freelist's refill granularity: a cache miss
// allocates this many packets in one block.
const pktChunk = 64

// flitArenaMaxFlits caps the preallocated flit-buffer arena. Whole-
// packet buffers (store-and-forward, virtual cut-through) on large
// multi-VC topologies would reserve tens of megabytes up front; such
// configurations keep the lazily grown per-buffer slices instead.
const flitArenaMaxFlits = 1 << 20

// inbuf is the buffer of one router input channel (one per virtual
// channel of each physical input, plus the injection channel).
type inbuf struct {
	q []flit
	// allocOut is the global output index held by the packet currently
	// flowing through this input, or -1.
	allocOut int32
	// port is the virtual port index of this buffer within its router
	// (vport-1 is the injection channel).
	port int32
	// headArrival is the cycle the current header flit arrived, the key
	// of the local first-come-first-served input selection policy.
	headArrival int64

	// cands is the filtered routing candidate list for the header at the
	// front of this buffer: a read-only slice into the compiled route
	// table's arena when one applies, or a view of own otherwise. It is
	// valid while candPkt matches that header's packet and candEpoch
	// matches the topology fault epoch; a new header (new packet id) or
	// a fault-state change invalidates it.
	cands     []routing.Candidate
	candPkt   int64
	candEpoch int32
	// own is the buffer-owned candidate storage for the direct
	// evaluation fallback. The fallback must never build into cands
	// in place: cands may alias the shared table arena.
	own []routing.Candidate
}

// Engine runs one simulation. Construct with New, then call Run.
//
// Port layout: each router has 2n physical network directions with vcs
// virtual channels each, plus one injection input and one ejection
// output. Virtual port index p encodes direction d and virtual channel
// c as p = d.Index()*vcs + c; the injection/ejection port is the last
// (index 2n*vcs). Each physical link (and the ejection channel) carries
// at most one flit per cycle regardless of how many virtual channels
// share it.
type Engine struct {
	cfg   Config
	topo  *topology.Topology
	alg   routing.VCAlgorithm
	rng   *rand.Rand
	vcs   int // virtual channels per physical direction
	vport int // virtual ports per router: 2n*vcs + 1
	nphys int // physical links per router incl. ejection: 2n + 1
	depth int // effective input buffer capacity in flits

	// table is the compiled route table for alg at the current fault
	// epoch, or nil when the relation is not compilable (or tables are
	// disabled). With a table, fillCandCache is a slice reference into
	// the table arena; without, it evaluates the relation directly.
	table *routing.Table

	// Flat state, indexed router*vport+port unless noted.
	inbufs   []inbuf
	busyBy   []int32 // virtual output port -> input index holding it, or -1
	linkUsed []bool  // physical link used this cycle, router*nphys+phys
	outDest  []int32 // virtual output port -> downstream input index, -1 ejection
	upOut    []int32 // input index -> upstream virtual output index, -1 injection
	physOf   []int32 // virtual output port -> physical link slot in linkUsed

	queues   []pktRing // per-node source queues
	nextGen  []float64 // per-node next generation time in cycles
	genRate  float64   // messages per cycle per node
	lenCum   []float64 // cumulative packet-length weights
	lenTotal float64   // total packet-length weight
	script   []ScriptedMessage
	scriptAt int

	// freePkts recycles delivered packet structs: deliver pushes (after
	// every consumer — observers, metrics, stats — has read the packet)
	// and generate pops, resetting at acquisition so stale pointers held
	// by tests after a run keep their final values. Refills allocate
	// pktChunk packets at a time, so steady state stops allocating once
	// the pool covers the in-flight peak.
	freePkts []*packet

	cycle     int64
	lastMove  int64
	nextPktID int64
	inFlight  int // packets generated but not yet fully delivered

	// movement worklist membership (the worklists themselves live in the
	// per-shard allocState scratch)
	inWork  []bool
	injUsed []bool // injection channel used this cycle, per injection input

	// flowing marks the inputs the movement phase must attempt: a queued
	// flit with an allocated output. Maintained incrementally so move
	// seeds its worklist from active inputs instead of scanning every
	// buffer (see DESIGN.md, "Performance architecture").
	flowing bitset

	// allocWork marks routers that may hold a header awaiting output
	// allocation. Bits are set when a header reaches the front of an
	// input buffer and when one of the router's outputs is released, and
	// cleared when a visit finds nothing that could allocate before the
	// next such event.
	allocWork bitset
	// lastFaultEpoch detects mid-run fault-state changes, which force a
	// full allocation rescan and invalidate candidate caches.
	lastFaultEpoch int32

	// dirtyLinks and dirtyInj record which linkUsed/injUsed entries were
	// set this cycle, so the per-cycle reset touches only those.
	dirtyLinks []int32
	dirtyInj   []int32

	// shards holds the allocation-phase scratch, one entry per shard and
	// reused every cycle so the steady-state hot path performs no heap
	// allocations. Serial engines (nshards == 1) use shards[0] with
	// deferred commits disabled; sharded engines partition routers into
	// contiguous ranges [shardLo[s], shardLo[s+1]) and run one worker
	// per shard (see shard.go).
	shards      []allocState
	oneShard    [1]allocState // backing for the serial case: no extra slice allocation per Run
	nshards     int
	shardLo     []int32
	seedScratch []int32 // move seeding order buffer (vcs > 1)

	// moveSharded marks engines whose move phase runs the conflict-
	// partitioned parallel drain (every sharded engine: no switching
	// class falls back to serial anymore). shardOf maps a router to its
	// owning shard, the fallback owner for injection sweeps whose
	// injection input is not part of any move component.
	moveSharded bool
	shardOf     []int32

	// Conflict-partitioned move scratch (sharded engines only), all
	// persistent and reset via dirty lists so steady state allocates
	// nothing. seedOrder is the cycle's flowing inputs in the serial
	// engine's worklist push order; seedShard maps each seed ordinal to
	// the shard that drains its component. mvParent/mvSize are the
	// union-find over input channels (valid only for mvEnum inputs,
	// reset via mvTouched); mvStack is the component-discovery worklist;
	// compShard maps a component root to its assigned shard (-1 until
	// assignment); shardLoad counts seeds per shard for the balance
	// heuristic; mergeCur is the commit's per-shard log cursor.
	seedOrder []int32
	seedShard []int32
	mvParent  []int32
	mvSize    []int32
	mvTouched []int32
	mvStack   []int32
	compShard []int32
	shardLoad []int32
	mergeCur  []int32
	mvEnum    []bool

	// lenStart snapshots each buffer's length at the start of the move
	// phase (strict-advance mode only, nil otherwise). Sharded engines
	// fill it in the parallel pre-pass — buffer lengths cannot change
	// between generation and movement — serial engines at the top of
	// move.
	lenStart []int32
	// readyBits memoizes readyToForward for store-and-forward runs under
	// sharding: readyBits[in] == true guarantees the front packet's tail
	// has arrived at input in. Every queue mutation clears the bit, so a
	// set bit is always current; a clear bit falls back to the scan. The
	// sharded pre-pass refreshes the bits for flowing inputs in parallel.
	readyBits []bool

	// gate coordinates the worker pool for sharded execution: one
	// goroutine per shard above zero (shard zero runs on the stepping
	// goroutine), started lazily at the first sharded cycle and parked
	// on the gate between parallel regions. The pool stays warm across
	// repeated runs; Close releases it. gateMu serializes pool
	// start/teardown with region execution, making Close idempotent and
	// safe to call concurrently with a run (see shard.go). Serial
	// engines never touch either.
	gateMu sync.Mutex
	gate   *shardGate

	// linkFlits counts flits carried per physical link during the
	// measurement window, for utilization reporting.
	linkFlits []int64

	// faults replays cfg.FaultPlan as cycles advance, or nil. It runs at
	// the top of step, before generation and allocation, so a cycle's
	// routing decisions always see a consistent fault set.
	faults *fault.Driver

	// recov is the deadlock-recovery state: the retry queue, the
	// watchdog's scan cadence and victim scratch, and the recovery
	// counters. Unused (and cost-free) when cfg.RecoveryThreshold == 0.
	recov recoveryState

	// recObs is cfg.Observer's RecoveryObserver extension, type-asserted
	// once at construction, or nil.
	recObs RecoveryObserver

	// Whole-run flit conservation counters, maintained unconditionally:
	// flits that entered the network (left a source queue), flits
	// consumed at destinations, and flits removed by recovery drains.
	// The invariant checker's conservation law is
	// injected == delivered + drained + (flits sitting in buffers).
	flitsInjectedEver  int64
	flitsDeliveredEver int64
	flitsDrainedEver   int64

	// invariantErr records the first invariant violation found when
	// cfg.CheckInvariants is set ("" = none so far).
	invariantErr string

	stats runStats

	// m is the attached metrics collector, or nil. Every hot-path hook
	// is guarded by one nil check, so a run without metrics pays
	// nothing else (see TestAllocateZeroAllocs).
	m *metrics.Collector

	// onDeliver, when set (tests), observes every delivered packet.
	onDeliver func(*packet)
}

type runStats struct {
	measuring          bool
	windowStart        int64
	flitsDelivered     int64
	packetsDelivered   int64
	packetsGenerated   int64
	flitsGenerated     int64
	flitsGenMeasure    int64
	sumLatency         float64 // cycles, generation -> tail delivery
	sumNetLatency      float64 // cycles, injection -> tail delivery
	sumHops            float64
	maxLatency         float64
	backlogStartFlits  int64
	backlogStartValid  bool
	totalDeliveredEver int64
	latencies          *stats.Histogram
}

// New validates cfg and builds an engine.
func New(cfg Config) (*Engine, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	alg := c.vcAlgorithm()
	t := alg.Topology()
	vcs := alg.NumVCs()
	if vcs < 1 {
		return nil, fmt.Errorf("sim: algorithm reports %d virtual channels", vcs)
	}
	if err := c.validateAgainst(t); err != nil {
		return nil, err
	}
	ndim2 := 2 * t.NumDims()
	vport := ndim2*vcs + 1
	n := t.Nodes()
	e := &Engine{
		cfg:            c,
		topo:           t,
		alg:            alg,
		rng:            rand.New(rand.NewSource(c.Seed)),
		vcs:            vcs,
		vport:          vport,
		nphys:          ndim2 + 1,
		depth:          c.effectiveDepth(),
		inbufs:         make([]inbuf, n*vport),
		busyBy:         make([]int32, n*vport),
		linkUsed:       make([]bool, n*(ndim2+1)),
		linkFlits:      make([]int64, n*(ndim2+1)),
		outDest:        make([]int32, n*vport),
		upOut:          make([]int32, n*vport),
		physOf:         make([]int32, n*vport),
		queues:         make([]pktRing, n),
		injUsed:        make([]bool, n*vport),
		nextGen:        make([]float64, n),
		inWork:         make([]bool, n*vport),
		flowing:        newBitset(n * vport),
		allocWork:      newBitset(n),
		lastFaultEpoch: int32(t.FaultEpoch()),
		script:         c.Script,
	}
	e.initShards(n, ndim2)
	// Precompute the packet-length distribution's cumulative weights so
	// drawLength no longer sums the weight vector per draw.
	e.lenCum = make([]float64, len(c.LengthWeights))
	for i, w := range c.LengthWeights {
		e.lenTotal += w
		e.lenCum[i] = e.lenTotal
	}
	if !c.DisableRouteTable {
		// Compile (or fetch the cached compilation of) the routing
		// relation into a flat (node, dst) candidate table. The table's
		// Candidate.Out indices use routing.OutIndex, which is exactly
		// this engine's port layout. nil means the relation is not
		// compilable; fillCandCache then evaluates it directly.
		e.table = routing.TableFor(alg)
	}
	if slots := n * vport * e.depth; slots <= flitArenaMaxFlits {
		// One arena backs every input buffer: each buffer gets a
		// zero-length slice with capacity depth, and since hasSpace
		// bounds every append by depth, no buffer ever escapes its
		// segment. This removes the per-buffer lazy grow allocations.
		arena := make([]flit, slots)
		for i := range e.inbufs {
			off := i * e.depth
			e.inbufs[i].q = arena[off : off : off+e.depth]
		}
	}
	for i := range e.busyBy {
		e.busyBy[i] = -1
		e.outDest[i] = -1
		e.upOut[i] = -1
		e.physOf[i] = e.physIndex(int32(i))
		b := &e.inbufs[i]
		b.allocOut = -1
		b.port = int32(i % vport)
		b.candPkt = -1
	}
	for v := 0; v < n; v++ {
		for di := 0; di < ndim2; di++ {
			d := topology.DirectionFromIndex(di)
			ch := topology.Channel{From: topology.NodeID(v), Dir: d}
			if !t.HasChannel(ch.From, d) {
				continue
			}
			to := t.ChannelTo(ch)
			for vc := 0; vc < vcs; vc++ {
				p := di*vcs + vc
				out := int32(v*vport + p)
				in := int32(int(to)*vport + p)
				e.outDest[out] = in
				e.upOut[in] = out
			}
		}
	}
	if c.Metrics != nil {
		e.m = c.Metrics
		e.m.Bind(t, e.nphys)
	}
	if c.FaultPlan != nil && len(c.FaultPlan.Events) > 0 {
		d, err := fault.NewDriver(t, c.FaultPlan)
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		e.faults = d
	}
	if c.RecoveryThreshold > 0 {
		e.recov.every = c.RecoveryThreshold / 4
		if e.recov.every < 1 {
			e.recov.every = 1
		}
	}
	e.recObs, _ = c.Observer.(RecoveryObserver)
	if e.script == nil {
		// OfferedLoad flits/us/node = rate msgs/cycle * meanLen flits/msg
		// * 20 cycles/us.
		e.genRate = c.OfferedLoad / CyclesPerMicrosecond / c.MeanLength()
		for v := range e.nextGen {
			e.nextGen[v] = e.rng.ExpFloat64() / e.genRate
		}
	} else {
		s := append([]ScriptedMessage(nil), e.script...)
		sort.SliceStable(s, func(i, j int) bool { return s[i].Cycle < s[j].Cycle })
		e.script = s
	}
	return e, nil
}

// injectionIn returns the global input index of router v's injection
// channel buffer; the same port index is the ejection output.
func (e *Engine) injectionIn(v topology.NodeID) int32 { return int32(int(v)*e.vport + e.vport - 1) }

// ejectionOut returns the global output index of router v's ejection
// channel.
func (e *Engine) ejectionOut(v topology.NodeID) int32 { return e.injectionIn(v) }

// physIndex maps a global virtual output index to its physical link slot
// in linkUsed. New precomputes it into physOf; the hot path uses that.
func (e *Engine) physIndex(out int32) int32 {
	r := int(out) / e.vport
	p := int(out) % e.vport
	if p == e.vport-1 {
		return int32(r*e.nphys + e.nphys - 1) // ejection channel
	}
	return int32(r*e.nphys + p/e.vcs)
}

// newPacket pops a recycled packet from the freelist, or allocates a
// fresh block. The packet is reset here, at acquisition — not at
// release — so pointers observers keep past delivery retain their final
// values until the struct is reissued.
func (e *Engine) newPacket() *packet {
	if n := len(e.freePkts); n > 0 {
		p := e.freePkts[n-1]
		e.freePkts = e.freePkts[:n-1]
		*p = packet{}
		return p
	}
	block := make([]packet, pktChunk)
	for i := 1; i < pktChunk; i++ {
		e.freePkts = append(e.freePkts, &block[i])
	}
	return &block[0]
}

// releasePacket returns a fully delivered packet to the freelist. The
// caller guarantees no flit or queue still references it.
func (e *Engine) releasePacket(p *packet) {
	e.freePkts = append(e.freePkts, p)
}

func (e *Engine) generate() {
	if e.script != nil {
		for e.scriptAt < len(e.script) && e.script[e.scriptAt].Cycle <= e.cycle {
			m := e.script[e.scriptAt]
			e.scriptAt++
			p := e.newPacket()
			p.id, p.src, p.dst, p.length = e.nextPktID, m.Src, m.Dst, m.Length
			p.firstDir, p.genCycle = m.FirstDir, e.cycle
			e.nextPktID++
			e.queues[m.Src].push(p)
			e.stats.packetsGenerated++
			e.stats.flitsGenerated += int64(p.length)
			e.inFlight++
		}
		return
	}
	now := float64(e.cycle)
	for v := range e.queues {
		for e.nextGen[v] <= now {
			gen := e.nextGen[v]
			e.nextGen[v] += e.rng.ExpFloat64() / e.genRate
			src := topology.NodeID(v)
			dst := e.cfg.Pattern.Dest(src, e.rng)
			if dst == src {
				continue // the pattern sends no traffic from this node
			}
			p := e.newPacket()
			p.id, p.src, p.dst = e.nextPktID, src, dst
			p.length = e.drawLength()
			p.genCycle = int64(gen)
			e.nextPktID++
			e.queues[v].push(p)
			e.stats.packetsGenerated++
			e.stats.flitsGenerated += int64(p.length)
			if e.stats.measuring {
				e.stats.flitsGenMeasure += int64(p.length)
			}
			e.inFlight++
		}
	}
}

// drawLength samples the packet-length distribution from the cumulative
// weight table New precomputed; one uniform draw, no per-draw summing.
func (e *Engine) drawLength() int {
	if len(e.cfg.Lengths) == 1 {
		return e.cfg.Lengths[0]
	}
	r := e.rng.Float64() * e.lenTotal
	for i, c := range e.lenCum {
		if r < c {
			return e.cfg.Lengths[i]
		}
	}
	return e.cfg.Lengths[len(e.cfg.Lengths)-1]
}

// allocate runs the routing and output allocation phase: every waiting
// header flit requests a virtual output channel; per router, headers are
// served in the input selection policy's order and pick among the
// still-free permitted outputs with the output selection policy.
//
// Only routers on the allocation worklist are visited. A router leaves
// the worklist when none of its headers could possibly allocate before
// the next wake-up event (header arrival or output release at that
// router); see DESIGN.md, "Performance architecture", for the exact
// invariants.
func (e *Engine) allocate() {
	epoch := int32(e.topo.FaultEpoch())
	if epoch != e.lastFaultEpoch {
		// Fault state changed mid-run: every blocked header may have
		// gained or lost candidates, so rescan everything once. The
		// per-buffer candidate caches self-invalidate via candEpoch, and
		// the compiled route table is recompiled at the new epoch (nil
		// if compilation now fails — direct evaluation takes over).
		e.allocWork.setAll(e.topo.Nodes())
		e.lastFaultEpoch = epoch
		if e.table != nil {
			e.table = routing.TableFor(e.alg)
		}
	}
	if e.nshards > 1 {
		e.allocateSharded(epoch)
		return
	}
	st := &e.shards[0]
	e.allocWork.forEach(func(v int32) {
		if !e.allocateRouter(int(v), epoch, st) {
			e.allocWork.clear(v)
		}
	})
}

// allocateRouter serves router v's waiting headers and reports whether
// the router must stay on the allocation worklist (a pending header
// whose eligibility or patience is time-driven, or — under the
// random-input policy — any unallocated header, so the arbitration
// random stream matches a full rescan exactly). st is the calling
// shard's scratch; allocation touches only router-local state (busyBy
// and inbufs entries of v's own ports, v's metrics counters), and
// anything shared — worklist bitsets, observer callbacks — goes through
// st, which defers it to the serial commit when the engine is sharded.
func (e *Engine) allocateRouter(v int, epoch int32, st *allocState) bool {
	base := v * e.vport
	nw := 0
	keep := false
	for p := 0; p < e.vport; p++ {
		b := &e.inbufs[base+p]
		if b.allocOut >= 0 || len(b.q) == 0 || !b.q[0].head {
			continue
		}
		if e.cycle-b.headArrival > e.cfg.RouterDelay {
			st.waiting[nw] = int32(base + p)
			nw++
		} else {
			keep = true // header present, router delay not yet expired
		}
	}
	if nw == 0 {
		return keep
	}
	w := st.waiting[:nw]
	switch e.cfg.Input {
	case LocalFCFS:
		// Stable insertion sort by arrival time: ties keep ascending
		// port order, matching the paper's local FCFS with port-index
		// tie-break. Inline to keep the hot path allocation-free.
		for i := 1; i < nw; i++ {
			x := w[i]
			key := e.inbufs[x].headArrival
			j := i
			for j > 0 && e.inbufs[w[j-1]].headArrival > key {
				w[j] = w[j-1]
				j--
			}
			w[j] = x
		}
	case RandomInput:
		e.rng.Shuffle(nw, func(i, j int) { w[i], w[j] = w[j], w[i] })
	case PortOrder:
		// Already in ascending port order.
	}
	blocked := 0
	for _, in := range w {
		b := &e.inbufs[in]
		pkt := b.q[0].p
		if pkt.dst == topology.NodeID(v) {
			out := e.ejectionOut(topology.NodeID(v))
			if e.busyBy[out] < 0 {
				e.busyBy[out] = in
				b.allocOut = out
				st.setFlowing(e, in)
				if e.m != nil {
					e.m.Grants[v]++
					e.m.WaitCycles[v] += e.cycle - b.headArrival
				}
				if e.cfg.Observer != nil {
					st.observeAllocate(e, topology.NodeID(v), topology.Direction{}, 0, true)
				}
			} else {
				blocked++
				if e.m != nil {
					e.m.Denials[v]++
				}
			}
			continue
		}
		if b.candPkt != pkt.id || b.candEpoch != epoch {
			e.fillCandCache(v, b, pkt, epoch, st)
		}
		// Keep only candidates whose virtual output channel is free;
		// existence, virtual-channel validity and fault state were
		// filtered into the cache.
		free := st.freeCands[:0]
		for i := range b.cands {
			if e.busyBy[b.cands[i].Out] < 0 {
				free = append(free, b.cands[i])
			}
		}
		if len(free) == 0 {
			blocked++
			if e.m != nil {
				e.m.Denials[v]++
			}
			continue
		}
		// With misroute patience configured, prefer distance-reducing
		// ("profitable") outputs and permit a detour only after the
		// header has waited long enough.
		pick := free
		if e.cfg.MisrouteAfter > 0 {
			prof := st.profCands[:0]
			for i := range free {
				if free[i].Prof {
					prof = append(prof, free[i])
				}
			}
			if len(prof) > 0 {
				pick = prof
			} else if e.cycle-b.headArrival < e.cfg.MisrouteAfter {
				keep = true // wait for the patience to run out
				continue
			}
		}
		var c routing.Candidate
		switch e.cfg.Policy {
		case LowestDimension:
			c = pick[0] // candidates arrive in ascending dimension order
		case HighestDimension:
			c = pick[len(pick)-1]
		default:
			c = pick[e.rng.Intn(len(pick))]
		}
		e.busyBy[c.Out] = in
		b.allocOut = c.Out
		st.setFlowing(e, in)
		if e.m != nil {
			e.m.Grants[v]++
			e.m.WaitCycles[v] += e.cycle - b.headArrival
			if !c.Prof {
				// Candidate profitability is precomputed (route table) or
				// computed whenever a collector is attached (fallback), so
				// this counts true detours.
				e.m.Misroutes[v]++
			}
		}
		if e.cfg.Observer != nil {
			st.observeAllocate(e, topology.NodeID(v), c.Direction(), int(c.VC), false)
		}
	}
	if blocked > 0 && e.cfg.Input == RandomInput {
		// The random-input arbitration consumes one shuffle per visited
		// router with waiting headers per cycle; keep visiting so the
		// random stream is identical to a full rescan.
		keep = true
	}
	return keep
}

// fillCandCache refreshes the filtered routing candidate list for the
// header of packet pkt waiting at the front of input buffer b of router
// v. With a compiled route table this is a slice reference into the
// table's arena; otherwise (arrival-dependent relations, scripted
// first-hop restrictions, tables disabled) the relation is evaluated
// directly into the buffer-owned fallback storage. Either way the list
// keeps every candidate that exists, has a valid virtual channel, and
// is not faulty; per-cycle allocation then only checks output busyness.
func (e *Engine) fillCandCache(v int, b *inbuf, pkt *packet, epoch int32, st *allocState) {
	injected := int(b.port) == e.vport-1
	cur := topology.NodeID(v)
	if e.table != nil && !(injected && pkt.firstDir != nil) {
		b.cands = e.table.Lookup(cur, pkt.dst, injected)
		b.candPkt = pkt.id
		b.candEpoch = epoch
		return
	}
	var inp routing.VCInPort
	if injected {
		inp = routing.VCInjected
	} else {
		inp = routing.VCInPort{
			Dir: topology.DirectionFromIndex(int(b.port) / e.vcs),
			VC:  int(b.port) % e.vcs,
		}
	}
	raw := e.alg.CandidatesVC(cur, pkt.dst, inp, st.rawCands[:0])
	st.rawCands = raw[:0]
	if inp.Injected && pkt.firstDir != nil {
		// Scripted first hop: honor it when offered.
		kept := raw[:0]
		for _, vd := range raw {
			if vd.Dir == *pkt.firstDir {
				kept = append(kept, vd)
			}
		}
		if len(kept) > 0 {
			raw = kept
		}
	}
	base := v * e.vport
	// Profitability (does this output reduce the distance?) feeds the
	// misroute-patience discipline and, when a collector is attached,
	// the misroute counter. Computing it unconditionally in the
	// metrics case is behavior-neutral: allocation consults Prof only
	// when MisrouteAfter > 0.
	needProf := e.cfg.MisrouteAfter > 0 || e.m != nil
	baseDist := 0
	if needProf {
		baseDist = e.topo.Distance(cur, pkt.dst)
	}
	own := b.own[:0]
	for _, vd := range raw {
		if vd.VC < 0 || vd.VC >= e.vcs {
			continue
		}
		out := int32(base + vd.Dir.Index()*e.vcs + vd.VC)
		if e.outDest[out] < 0 {
			continue
		}
		if !e.topo.Enabled(topology.Channel{From: cur, Dir: vd.Dir}) {
			continue
		}
		prof := false
		if needProf {
			if next, ok := e.topo.Neighbor(cur, vd.Dir); ok && e.topo.Distance(next, pkt.dst) < baseDist {
				prof = true
			}
		}
		own = append(own, routing.Candidate{
			Out:  out,
			Dir:  uint8(vd.Dir.Index()),
			VC:   uint8(vd.VC),
			Prof: prof,
		})
	}
	b.own = own
	b.cands = own
	b.candPkt = pkt.id
	b.candEpoch = epoch
}

// pushWork schedules input buffer in for a movement attempt this cycle
// on the calling shard's worklist. Sharded drains only ever push inputs
// of their own components (cascade targets are component-local by
// construction, see shard.go), so the shared inWork bytes have a single
// writer per cycle.
func (e *Engine) pushWork(in int32, st *allocState) {
	if in >= 0 && !e.inWork[in] {
		e.inWork[in] = true
		st.work = append(st.work, in)
	}
}

// pushAllocWork wakes router r's allocation scan: a header reached the
// front of one of its input buffers, or one of its outputs was released.
func (e *Engine) pushAllocWork(r int32) { e.allocWork.set(r) }

// seedMoveWork pushes every flowing input onto the movement worklist in
// the fixed arbitration order: routers ascending, physical directions
// ascending, injection channel last. Within each physical direction the
// preferred virtual channel is pushed last (the worklist pops LIFO) and
// the preference rotates with the cycle, a round-robin that prevents one
// virtual channel from starving the other.
func (e *Engine) seedMoveWork(st *allocState) {
	if e.vcs == 1 {
		// One virtual channel: ascending input order is exactly the
		// arbitration order.
		e.flowing.forEach(func(i int32) { e.pushWork(i, st) })
		return
	}
	e.buildSeedOrder()
	for _, i := range e.seedOrder {
		e.pushWork(i, st)
	}
}

// buildSeedOrder fills e.seedOrder with the cycle's flowing inputs in
// worklist push order: routers ascending, physical directions ascending,
// injection channel last, and within each physical direction the virtual
// channels in the cycle-rotated round-robin order (the preferred channel
// last, because the drain pops LIFO).
func (e *Engine) buildSeedOrder() {
	if e.vcs == 1 {
		e.seedOrder = e.flowing.appendTo(e.seedOrder[:0])
		return
	}
	e.seedOrder = e.seedOrder[:0]
	buf := e.flowing.appendTo(e.seedScratch[:0])
	e.seedScratch = buf[:0]
	rot := int(e.cycle) % e.vcs
	for idx := 0; idx < len(buf); {
		i := buf[idx]
		port := int(i) % e.vport
		if port == e.vport-1 {
			e.seedOrder = append(e.seedOrder, i)
			idx++
			continue
		}
		// Gather this physical direction's flowing virtual channels
		// (consecutive indices) and push them in rotated order.
		dirBase := i - int32(port%e.vcs)
		end := idx
		for end < len(buf) && buf[end] < dirBase+int32(e.vcs) {
			end++
		}
		for k := e.vcs - 1; k >= 0; k-- {
			want := dirBase + int32((rot+k)%e.vcs)
			for g := idx; g < end; g++ {
				if buf[g] == want {
					e.seedOrder = append(e.seedOrder, want)
					break
				}
			}
		}
		idx = end
	}
}

// move runs the switch/link traversal phase. Each physical link carries
// at most one flit per cycle; virtual channels sharing a link are served
// in an order that rotates with the cycle count. In chained mode,
// freeing a buffer slot immediately lets the upstream flit advance into
// it (the worm moves as a synchronized train); in strict mode only space
// available at the start of the cycle counts. Sharded engines run the
// conflict-partitioned parallel drain (shard.go) for every switching
// class; results are bit-identical to this serial path.
func (e *Engine) move() {
	if e.cfg.StrictAdvance && e.nshards <= 1 {
		// Sharded engines fill the snapshot in the parallel pre-pass
		// (buffer lengths cannot change between generation and movement);
		// serial engines do it here.
		for i := range e.inbufs {
			e.lenStart[i] = int32(len(e.inbufs[i].q))
		}
	}
	if e.nshards > 1 {
		e.moveParallel()
		return
	}
	st := &e.shards[0]
	// inWork is all-false here: the previous drain popped (and cleared)
	// every entry it pushed.
	st.work = st.work[:0]
	e.seedMoveWork(st)
	// Source-queue injections are attempted for every nonempty queue.
	for v := range e.queues {
		if e.queues[v].len() > 0 {
			e.tryInject(topology.NodeID(v), st)
		}
	}
	for len(st.work) > 0 {
		in := st.work[len(st.work)-1]
		st.work = st.work[:len(st.work)-1]
		e.inWork[in] = false
		e.moveOne(in, st)
	}
}

// tryInject moves the next flit of the source queue's head packet into
// the injection buffer, modeling the processor-to-router channel
// (bandwidth one flit per cycle). Buffer and queue mutations happen
// immediately; everything shared across components — bitsets, dirty
// lists, metrics, observer callbacks, global counters — goes through
// st.logInject, which applies it inline when serial and defers it to
// the ordered commit when the drain runs sharded.
func (e *Engine) tryInject(v topology.NodeID, st *allocState) {
	q := &e.queues[v]
	if q.len() == 0 {
		return
	}
	in := e.injectionIn(v)
	if e.injUsed[in] {
		return
	}
	b := &e.inbufs[in]
	if !e.hasSpace(in, b) {
		return
	}
	p := q.front()
	f := flit{p: p, head: p.flitsSent == 0, tail: p.flitsSent == p.length-1}
	b.q = append(b.q, f)
	var flag uint8
	if b.allocOut >= 0 {
		flag |= fFlowSet
	}
	if f.head {
		flag |= fHead
		b.headArrival = e.cycle
		p.injectCycle = e.cycle
		if len(b.q) == 1 {
			flag |= fWakeSelf
		}
	}
	p.flitsSent++
	p.lastProgress = e.cycle
	e.injUsed[in] = true
	if f.tail {
		q.pop()
	}
	st.logInject(e, in, p, flag)
}

// applyInject performs the shared-state side of one injection: metrics,
// the flowing bit, the allocation wake-up, the observer callback and the
// global counters, in the serial engine's order. Serial engines call it
// inline from tryInject; sharded drains log the call and the commit
// replays it in ascending node order.
func (e *Engine) applyInject(in int32, p *packet, flag uint8) {
	if e.m != nil {
		e.m.Occupancy[int(in)/e.vport]++
		e.m.InjectedFlits++
	}
	if flag&fFlowSet != 0 {
		e.flowing.set(in)
	}
	if flag&fHead != 0 {
		if flag&fWakeSelf != 0 {
			e.pushAllocWork(int32(int(in) / e.vport))
		}
		if e.cfg.Observer != nil {
			e.cfg.Observer.Inject(e.cycle, p.src, p.dst, p.length)
		}
	}
	e.flitsInjectedEver++
	e.dirtyInj = append(e.dirtyInj, in)
	e.lastMove = e.cycle
}

func (e *Engine) hasSpace(in int32, b *inbuf) bool {
	if e.cfg.StrictAdvance {
		return int(e.lenStart[in]) < e.depth && len(b.q) < e.depth
	}
	return len(b.q) < e.depth
}

// readyToForward applies the switching technique's forwarding rule to
// the front flit of a network input buffer: store-and-forward holds a
// packet until its tail flit has arrived; wormhole and virtual
// cut-through forward immediately. Injection buffers are exempt (the
// source queue is the source node's packet store). Sharded engines
// consult the readyBits memo first: a set bit was computed by the
// pre-pass against the exact same queue contents (every mutation
// clears it), skipping the tail scan.
func (e *Engine) readyToForward(in int32, b *inbuf) bool {
	if !e.cfg.holdsWholePacket() || int(b.port) == e.vport-1 {
		return true
	}
	if e.readyBits != nil && e.readyBits[in] {
		return true
	}
	return e.tailAtFront(b)
}

// tailAtFront scans a nonempty buffer for the front packet's tail flit.
func (e *Engine) tailAtFront(b *inbuf) bool {
	front := b.q[0].p
	for i := len(b.q) - 1; i >= 0; i-- {
		if b.q[i].p == front {
			return b.q[i].tail
		}
	}
	return false
}

// moveOne attempts to advance the front flit of input buffer in. Like
// tryInject, it mutates buffers, channel holds and packet bookkeeping in
// place and routes every cross-component side effect through st.logMove:
// serial engines apply the shared-state bundle inline at the same point
// in the schedule, sharded drains defer it to the ordered commit. The
// bundle flags capture post-mutation facts (queue emptied, head/tail,
// wake-ups due), so the replay needs no access to drain-time state.
func (e *Engine) moveOne(in int32, st *allocState) {
	b := &e.inbufs[in]
	if len(b.q) == 0 || b.allocOut < 0 {
		return
	}
	out := b.allocOut
	phys := e.physOf[out]
	if e.linkUsed[phys] {
		return
	}
	if !e.readyToForward(in, b) {
		return
	}
	f := b.q[0]
	dest := e.outDest[out]
	if dest < 0 {
		// Ejection: the destination processor consumes immediately.
		e.linkUsed[phys] = true
		var flag uint8
		if e.popFrontQ(in, b) {
			flag |= fFlowClear
		}
		f.p.flitsDelivered++
		f.p.lastProgress = e.cycle
		if f.tail {
			// The tail passed: deliver the packet, free the ejection
			// channel, and wake the router's allocation scan (the release
			// always wakes it; a new front header would only wake the
			// same router again).
			flag |= fTail | fFlowClear | fWakeSelf
			e.releaseCh(in, out)
		}
		st.logMove(e, moEject, in, out, flag, f.p)
		e.cascade(in, b, st)
		return
	}
	db := &e.inbufs[dest]
	if !e.hasSpace(dest, db) {
		return
	}
	e.linkUsed[phys] = true
	var flag uint8
	if f.head {
		flag |= fHead
	}
	if e.popFrontQ(in, b) {
		flag |= fFlowClear
	}
	db.q = append(db.q, f)
	if e.readyBits != nil {
		e.readyBits[dest] = false
	}
	if db.allocOut >= 0 {
		flag |= fFlowSet
	}
	f.p.lastProgress = e.cycle
	if f.head {
		db.headArrival = e.cycle
		f.p.hops++
		if len(db.q) == 1 {
			flag |= fWakeDest
		}
	}
	if f.tail {
		flag |= fTail | fFlowClear | fWakeSelf
		e.releaseCh(in, out)
	}
	st.logMove(e, moForward, in, out, flag, nil)
	e.cascade(in, b, st)
}

// applyEject performs the shared-state side of one ejection move:
// metrics, link accounting, delivery finalization, the flowing bit and
// the wake-up, in the serial engine's order.
func (e *Engine) applyEject(in, out int32, flag uint8, p *packet) {
	phys := e.physOf[out]
	e.dirtyLinks = append(e.dirtyLinks, phys)
	if e.stats.measuring {
		e.linkFlits[phys]++
	}
	if e.m != nil {
		r := int(in) / e.vport
		e.m.ChannelFlits[phys]++
		e.m.RouterFlits[r]++
		e.m.Occupancy[r]--
		e.m.DeliveredFlits++
	}
	e.flitsDeliveredEver++
	e.lastMove = e.cycle
	if flag&fFlowClear != 0 {
		e.flowing.clear(in)
	}
	if flag&fTail != 0 {
		e.deliver(p)
	}
	if flag&fWakeSelf != 0 {
		e.pushAllocWork(int32(int(in) / e.vport))
	}
	e.countDeliveredFlit()
}

// applyForward performs the shared-state side of one link traversal:
// metrics, the observer callback, both flowing bits and the wake-ups,
// in the serial engine's order. dest and phys are recomputed from the
// static topology arrays, so the op log carries only (in, out, flags).
func (e *Engine) applyForward(in, out int32, flag uint8) {
	phys := e.physOf[out]
	dest := e.outDest[out]
	e.dirtyLinks = append(e.dirtyLinks, phys)
	if e.stats.measuring {
		e.linkFlits[phys]++
	}
	if e.m != nil {
		e.m.ChannelFlits[phys]++
		e.m.RouterFlits[int(in)/e.vport]++
		e.m.Occupancy[int(in)/e.vport]--
		e.m.Occupancy[int(dest)/e.vport]++
	}
	if e.cfg.Observer != nil {
		p := int(out) % e.vport
		e.cfg.Observer.Forward(e.cycle, topology.Channel{
			From: topology.NodeID(int(out) / e.vport),
			Dir:  topology.DirectionFromIndex(p / e.vcs),
		}, p%e.vcs, flag&fHead != 0, flag&fTail != 0)
	}
	if flag&fFlowClear != 0 {
		e.flowing.clear(in)
	}
	if flag&fFlowSet != 0 {
		e.flowing.set(dest)
	}
	e.lastMove = e.cycle
	if flag&fWakeDest != 0 {
		e.pushAllocWork(int32(int(dest) / e.vport))
	}
	if flag&fWakeSelf != 0 {
		e.pushAllocWork(int32(int(in) / e.vport))
	}
}

// popFrontQ removes the front flit of input buffer in and reports
// whether the buffer is now empty (the caller folds that into the
// bundle's flowing-clear flag).
func (e *Engine) popFrontQ(in int32, b *inbuf) bool {
	copy(b.q, b.q[1:])
	b.q = b.q[:len(b.q)-1]
	if e.readyBits != nil {
		e.readyBits[in] = false
	}
	return len(b.q) == 0
}

// releaseCh frees the virtual output channel held through input in after
// the tail flit passed. The flowing clear and the allocation wake-up
// ride the move bundle's flags.
func (e *Engine) releaseCh(in, out int32) {
	e.busyBy[out] = -1
	e.inbufs[in].allocOut = -1
}

// cascade schedules the feeder of input buffer in, which may now have
// space to receive a flit (chained advance). Under a sharded drain both
// targets are component-local: the feeder held its channel when the
// components were built (channel holds only get released, never
// acquired, during movement), so the feeder edge put it in in's
// component, and the injection path touches only in's own router.
func (e *Engine) cascade(in int32, b *inbuf, st *allocState) {
	if e.cfg.StrictAdvance {
		return
	}
	if int(b.port) == e.vport-1 {
		// Injection buffer freed: the source queue may inject.
		v := topology.NodeID(int(in) / e.vport)
		e.tryInject(v, st)
		return
	}
	up := e.upOut[in]
	if up < 0 {
		return
	}
	feeder := e.busyBy[up]
	if feeder >= 0 {
		e.pushWork(feeder, st)
	}
}

// deliver finalizes a packet whose tail was consumed.
func (e *Engine) deliver(p *packet) {
	p.deliverCycle = e.cycle
	e.inFlight--
	if e.onDeliver != nil {
		e.onDeliver(p)
	}
	if e.cfg.Observer != nil {
		e.cfg.Observer.Deliver(e.cycle, p.src, p.dst, p.deliverCycle-p.genCycle, p.hops)
	}
	e.stats.totalDeliveredEver++
	if e.m != nil {
		e.m.RecordLatency(float64(p.deliverCycle - p.genCycle))
		if e.faults != nil {
			// Attribute the delivery to the current fault epoch, so
			// campaigns can compare latency across fault-set changes.
			e.m.RecordEpochLatency(int(e.lastFaultEpoch), float64(p.deliverCycle-p.genCycle))
		}
	}
	if e.stats.measuring {
		e.stats.packetsDelivered++
		lat := float64(p.deliverCycle - p.genCycle)
		if e.stats.latencies == nil {
			// One-cycle (0.05 us) buckets keep percentiles sharp.
			e.stats.latencies = stats.NewHistogram(1)
		}
		e.stats.latencies.Add(lat)
		e.stats.sumLatency += lat
		e.stats.sumNetLatency += float64(p.deliverCycle - p.injectCycle)
		e.stats.sumHops += float64(p.hops)
		if lat > e.stats.maxLatency {
			e.stats.maxLatency = lat
		}
	}
	// Every consumer — observer callbacks, metrics, stats — has read the
	// packet; recycle it. Its flits are all consumed (the tail is the
	// last), so nothing in the network still points at it.
	e.releasePacket(p)
}

func (e *Engine) countDeliveredFlit() {
	if e.stats.measuring {
		e.stats.flitsDelivered++
	}
}

// backlogFlits returns the flits waiting in source queues (including the
// un-injected remainder of partially injected packets).
func (e *Engine) backlogFlits() int64 {
	var total int64
	for i := range e.queues {
		q := &e.queues[i]
		for j := 0; j < q.len(); j++ {
			p := q.at(j)
			total += int64(p.length - p.flitsSent)
		}
	}
	return total
}

// hottestChannel returns the network channel that carried the most
// flits during measurement and its utilization (flits per cycle).
// window is the measurement-window length the counts were collected
// over: cfg.MeasureCycles for stream runs, the full run length for
// scripted runs (which measure from cycle zero).
func (e *Engine) hottestChannel(window int64) (float64, topology.Channel) {
	var best int64 = -1
	bestIdx := -1
	for i, f := range e.linkFlits {
		if i%e.nphys == e.nphys-1 {
			continue // ejection channel
		}
		if f > best {
			best, bestIdx = f, i
		}
	}
	if bestIdx < 0 || window <= 0 {
		return 0, topology.Channel{}
	}
	ch := topology.Channel{
		From: topology.NodeID(bestIdx / e.nphys),
		Dir:  topology.DirectionFromIndex(bestIdx % e.nphys),
	}
	return float64(best) / float64(window), ch
}
