package sim

import (
	"sync"
	"sync/atomic"
	"testing"

	"turnmodel/internal/routing"
	"turnmodel/internal/topology"
	"turnmodel/internal/traffic"
)

// closeTestEngine builds a small sharded engine with enough traffic
// that the worker pool actually spins up.
func closeTestEngine(t *testing.T) *Engine {
	t.Helper()
	topo := topology.NewMesh(4, 4)
	e, err := New(Config{
		Algorithm:     routing.NewWestFirst(topo),
		Pattern:       traffic.NewUniform(topo),
		OfferedLoad:   1.5,
		WarmupCycles:  1 << 30,
		MeasureCycles: 1,
		Seed:          7,
		Shards:        4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestShardCloseRepeated: Close must be idempotent — before any cycle,
// after stepping, twice in a row, and again after the pool restarted.
func TestShardCloseRepeated(t *testing.T) {
	e := closeTestEngine(t)
	e.Close() // never stepped: no pool yet
	for i := 0; i < 64; i++ {
		e.step()
		e.cycle++
	}
	e.Close()
	e.Close() // second Close sees no pool
	for i := 0; i < 64; i++ {
		e.step()
		e.cycle++
	}
	e.Close()
	e.Close()
}

// TestShardCloseDuringRun: the turnserver cancels jobs while their
// engines are mid-run, so Close must be safe to call from another
// goroutine while the stepping goroutine is inside (or between)
// parallel regions — including many times, concurrently, while the
// pool keeps restarting. Run under -race this is the lifecycle's main
// correctness test.
func TestShardCloseDuringRun(t *testing.T) {
	e := closeTestEngine(t)
	const cycles = 4000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < cycles; i++ {
			e.step()
			e.cycle++
		}
	}()
	var wg sync.WaitGroup
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
					e.Close()
				}
			}
		}()
	}
	<-done
	wg.Wait()
	e.Close()
	if e.stats.totalDeliveredEver == 0 {
		t.Fatal("no deliveries; the close stress would be vacuous")
	}
}

// TestStopEndsRunEarly: Config.Stop is the cooperative cancellation
// hook; a run whose Stop fires must end promptly with Result.Stopped
// and still release its worker pool (Run defers Close).
func TestStopEndsRunEarly(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	var polls atomic.Int64
	r, err := Run(Config{
		Algorithm:     routing.NewWestFirst(topo),
		Pattern:       traffic.NewUniform(topo),
		OfferedLoad:   1.0,
		WarmupCycles:  1 << 30, // would run forever without Stop
		MeasureCycles: 1,
		Seed:          3,
		Shards:        2,
		Stop:          func() bool { return polls.Add(1) > 4 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Stopped {
		t.Fatal("run completed without Stopped despite Stop firing")
	}
	if r.Cycles > 64*1024 {
		t.Fatalf("stopped run still simulated %d cycles", r.Cycles)
	}
}
