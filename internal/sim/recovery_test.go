package sim

import (
	"strings"
	"testing"

	"turnmodel/internal/fault"
	"turnmodel/internal/routing"
	"turnmodel/internal/topology"
	"turnmodel/internal/traffic"
)

// deadlockScript floods a 5-node ring so no-VC torus DOR closes its
// all-wait cycle — the TestTorusDORDeadlocksLive scenario.
func deadlockScript(topo *topology.Topology) []ScriptedMessage {
	var script []ScriptedMessage
	for round := 0; round < 20; round++ {
		for v := 0; v < topo.Nodes(); v++ {
			script = append(script, ScriptedMessage{
				Cycle:  int64(round),
				Src:    topology.NodeID(v),
				Dst:    topology.NodeID((v + 2) % topo.Nodes()),
				Length: 50,
			})
		}
	}
	return script
}

// TestRecoveryBreaksTorusDORDeadlock: the scenario that deadlocks in
// TestTorusDORDeadlocksLive completes under the recovery watchdog —
// stalled worms are aborted regressively, retried from the source, and
// every packet ends up delivered or dropped with the books balanced.
func TestRecoveryBreaksTorusDORDeadlock(t *testing.T) {
	topo := topology.NewTorus(5, 1)
	script := deadlockScript(topo)
	res, err := Run(Config{
		Algorithm:         routing.NewTorusDOR(topo),
		Script:            script,
		DeadlockThreshold: 1000,
		DrainDeadline:     200000,
		RecoveryThreshold: 200,
		RetryLimit:        16,
		CheckInvariants:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocked {
		t.Fatalf("deadlocked despite recovery: %+v", res)
	}
	if res.Recoveries == 0 {
		t.Fatal("scenario completed without any recovery aborts; the test is vacuous")
	}
	if res.InvariantViolation != "" {
		t.Fatalf("invariant violation: %s", res.InvariantViolation)
	}
	if got := res.PacketsDeliveredTotal + res.PacketsDropped; got != int64(len(script)) {
		t.Errorf("delivered %d + dropped %d = %d packets, want %d accounted",
			res.PacketsDeliveredTotal, res.PacketsDropped, got, len(script))
	}
	if res.PacketsInFlight != 0 {
		t.Errorf("%d packets still in flight after the run drained", res.PacketsInFlight)
	}
	if res.PacketsGeneratedTotal != int64(len(script)) {
		t.Errorf("generated %d packets, want %d", res.PacketsGeneratedTotal, len(script))
	}
	// Flit books: everything injected was delivered or drained.
	if res.StrandedFlits != 0 {
		t.Errorf("%d flits stranded in network buffers", res.StrandedFlits)
	}
	// Deadlocked-run partial stats (satellite): the run delivered
	// packets, so latency stats must be populated.
	if res.PacketsDeliveredTotal > 0 && res.AvgLatency == 0 {
		t.Error("delivered packets but AvgLatency is zero")
	}
}

// TestRecoveryDeterministic: recovery-enabled runs are a deterministic
// function of the seed — two identical runs agree bit for bit, including
// the recovery counters.
func TestRecoveryDeterministic(t *testing.T) {
	mk := func() Config {
		topo := topology.NewTorus(5, 1)
		return Config{
			Algorithm:         routing.NewTorusDOR(topo),
			Script:            deadlockScript(topo),
			DeadlockThreshold: 1000,
			DrainDeadline:     200000,
			RecoveryThreshold: 200,
			RetryLimit:        16,
		}
	}
	a, err := Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(mk())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("recovery runs diverged:\n a: %+v\n b: %+v", a, b)
	}
}

// TestRecoveryRetryBudget: a negative RetryLimit drops every aborted
// worm on its first abort — no retries, only drops — and the books
// still balance.
func TestRecoveryRetryBudget(t *testing.T) {
	topo := topology.NewTorus(5, 1)
	script := deadlockScript(topo)
	res, err := Run(Config{
		Algorithm:         routing.NewTorusDOR(topo),
		Script:            script,
		DeadlockThreshold: 1000,
		DrainDeadline:     200000,
		RecoveryThreshold: 200,
		RetryLimit:        -1,
		CheckInvariants:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.InvariantViolation != "" {
		t.Fatalf("invariant violation: %s", res.InvariantViolation)
	}
	if res.Recoveries == 0 || res.PacketsDropped == 0 {
		t.Fatalf("expected aborts and drops, got recoveries=%d dropped=%d", res.Recoveries, res.PacketsDropped)
	}
	if res.Retries != 0 {
		t.Errorf("RetryLimit<0 must never retry, got %d retries", res.Retries)
	}
	if got := res.PacketsDeliveredTotal + res.PacketsDropped; got != int64(len(script)) {
		t.Errorf("delivered %d + dropped %d != %d generated", res.PacketsDeliveredTotal, res.PacketsDropped, len(script))
	}
}

// TestRecoveryObserverConservation: the RecoveryObserver extension sees
// every abort with exact drain counts, abort events precede the same
// cycle's allocation events, and the flit books close across deliveries
// and drains — TestObserverEventsUnderFault's conservation argument
// extended to aborted worms.
func TestRecoveryObserverConservation(t *testing.T) {
	topo := topology.NewTorus(5, 1)
	script := deadlockScript(topo)

	var lastCycle int64
	lastPhase := -2
	// Phases within a cycle: -1 recovery aborts, 0 allocate, 1 move.
	phase := func(cycle int64, p int, what string) {
		if cycle < lastCycle {
			t.Fatalf("%s event at cycle %d after cycle %d", what, cycle, lastCycle)
		}
		if cycle > lastCycle {
			lastCycle, lastPhase = cycle, -2
		}
		if p < lastPhase {
			t.Fatalf("cycle %d: %s event out of phase order (%d after %d)", cycle, what, p, lastPhase)
		}
		lastPhase = p
	}
	var aborts, drops, delivers int
	var drainedFlits int64
	obs := ObserverFuncs{
		AbortFn: func(cycle int64, src, dst topology.NodeID, flitsDrained, channelsReleased, retry int, dropped bool) {
			phase(cycle, -1, "Abort")
			aborts++
			drainedFlits += int64(flitsDrained)
			if dropped {
				drops++
			}
			if flitsDrained < 0 || channelsReleased < 0 || retry < 1 {
				t.Errorf("malformed abort event: drained=%d released=%d retry=%d", flitsDrained, channelsReleased, retry)
			}
		},
		AllocateFn: func(cycle int64, at topology.NodeID, dir topology.Direction, vc int, eject bool) {
			phase(cycle, 0, "Allocate")
		},
		DeliverFn: func(cycle int64, src, dst topology.NodeID, lat int64, hops int) {
			phase(cycle, 1, "Deliver")
			delivers++
		},
	}
	res, err := Run(Config{
		Algorithm:         routing.NewTorusDOR(topo),
		Script:            script,
		DeadlockThreshold: 1000,
		DrainDeadline:     200000,
		RecoveryThreshold: 200,
		RetryLimit:        16,
		CheckInvariants:   true,
		Observer:          obs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.InvariantViolation != "" {
		t.Fatalf("invariant violation: %s", res.InvariantViolation)
	}
	if int64(aborts) != res.Recoveries {
		t.Errorf("observer saw %d aborts, result counted %d", aborts, res.Recoveries)
	}
	if drainedFlits != res.FlitsDrained {
		t.Errorf("observer summed %d drained flits, result counted %d", drainedFlits, res.FlitsDrained)
	}
	if int64(drops) != res.PacketsDropped {
		t.Errorf("observer saw %d drops, result counted %d", drops, res.PacketsDropped)
	}
	if int64(delivers) != res.PacketsDeliveredTotal {
		t.Errorf("observer saw %d delivers, result counted %d", delivers, res.PacketsDeliveredTotal)
	}
}

// TestCheckInvariantsCleanRun: the structural checker passes on an
// ordinary faultless stochastic run, periodically and at the end.
func TestCheckInvariantsCleanRun(t *testing.T) {
	topo := topology.NewMesh(6, 6)
	res, err := Run(Config{
		Algorithm:       routing.NewWestFirst(topo),
		Pattern:         traffic.NewUniform(topo),
		OfferedLoad:     2.0,
		WarmupCycles:    1000,
		MeasureCycles:   3000,
		Seed:            3,
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.InvariantViolation != "" {
		t.Fatalf("invariant violation on a clean run: %s", res.InvariantViolation)
	}
	if res.Recoveries != 0 || res.PacketsDropped != 0 || res.FlitsDrained != 0 {
		t.Errorf("recovery counters nonzero with recovery disabled: %+v", res)
	}
}

// TestRecoveryConfigValidation: the new knobs are validated at
// configuration time.
func TestRecoveryConfigValidation(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	base := func() Config {
		return Config{
			Algorithm:     routing.NewWestFirst(topo),
			Pattern:       traffic.NewUniform(topo),
			OfferedLoad:   1.0,
			WarmupCycles:  10,
			MeasureCycles: 10,
		}
	}
	neg := base()
	neg.RecoveryThreshold = -1
	if _, err := New(neg); err == nil {
		t.Error("negative RecoveryThreshold accepted")
	}
	tooSmall := base()
	tooSmall.RouterDelay = 10
	tooSmall.RecoveryThreshold = 5
	if _, err := New(tooSmall); err == nil {
		t.Error("RecoveryThreshold <= RouterDelay accepted")
	}
	negBackoff := base()
	negBackoff.RecoveryThreshold = 100
	negBackoff.RetryBackoff = -1
	if _, err := New(negBackoff); err == nil {
		t.Error("negative RetryBackoff accepted")
	}
	badScript := base()
	badScript.Pattern = nil
	badScript.OfferedLoad = 0
	badScript.WarmupCycles = 0
	badScript.MeasureCycles = 0
	badScript.Script = []ScriptedMessage{{Cycle: 0, Src: 0, Dst: 99, Length: 4}}
	if _, err := New(badScript); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("script with an out-of-range destination accepted (err=%v)", badScript)
	}
	selfScript := base()
	selfScript.Pattern = nil
	selfScript.OfferedLoad = 0
	selfScript.WarmupCycles = 0
	selfScript.MeasureCycles = 0
	selfScript.Script = []ScriptedMessage{{Cycle: 0, Src: 3, Dst: 3, Length: 4}}
	if _, err := New(selfScript); err == nil {
		t.Error("script with src == dst accepted")
	}
	badPlan := base()
	var plan fault.Plan
	plan.AddChannelFault(topology.Channel{From: 99, Dir: topology.Direction{Dim: 0, Pos: true}}, 5, 10)
	badPlan.FaultPlan = &plan
	if _, err := New(badPlan); err == nil {
		t.Error("fault plan naming an out-of-range node accepted")
	}
}

// TestTransientFaultCampaignRun: a seeded random campaign with repairs
// runs end to end under recovery; the topology is fully healed after the
// run (the engine resets its fault driver), and the result is a
// deterministic function of the seed.
func TestTransientFaultCampaignRun(t *testing.T) {
	mk := func() (Config, *topology.Topology) {
		topo := topology.NewMesh(8, 8)
		plan, err := fault.NewCampaign(topo, fault.Campaign{Seed: 7, Horizon: 4000, Rate: 4, MTTR: 500})
		if err != nil {
			t.Fatal(err)
		}
		if len(plan.Events) == 0 {
			t.Fatal("campaign generated no events")
		}
		return Config{
			Algorithm:         routing.NewWestFirst(topo),
			Pattern:           traffic.NewUniform(topo),
			OfferedLoad:       2.0,
			WarmupCycles:      1000,
			MeasureCycles:     3000,
			Seed:              7,
			FaultPlan:         plan,
			RecoveryThreshold: 256,
			CheckInvariants:   true,
		}, topo
	}
	cfg, topo := mk()
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.InvariantViolation != "" {
		t.Fatalf("invariant violation: %s", a.InvariantViolation)
	}
	// The run's deferred fault-driver reset must leave the topology
	// healthy for the next run.
	healthy := true
	topo.Channels(func(ch topology.Channel) {
		if !topo.Enabled(ch) {
			healthy = false
		}
	})
	if !healthy {
		t.Error("topology left with disabled channels after the run")
	}
	if got := a.PacketsDeliveredTotal + a.PacketsDropped + a.PacketsInFlight; got != a.PacketsGeneratedTotal {
		t.Errorf("packet books broken: delivered %d + dropped %d + in-flight %d != generated %d",
			a.PacketsDeliveredTotal, a.PacketsDropped, a.PacketsInFlight, a.PacketsGeneratedTotal)
	}
	cfg2, _ := mk()
	b, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("campaign runs diverged:\n a: %+v\n b: %+v", a, b)
	}
}
