package sim

import (
	"testing"

	"turnmodel/internal/routing"
	"turnmodel/internal/topology"
	"turnmodel/internal/traffic"
)

// deliveryEvent is one delivered packet as the Observer sees it; equal
// streams mean the two runs delivered the same packets at the same
// cycles along paths of the same length.
type deliveryEvent struct {
	cycle    int64
	src, dst topology.NodeID
	lat      int64
	hops     int
}

func recordDeliveries(dst *[]deliveryEvent) Observer {
	return ObserverFuncs{DeliverFn: func(cycle int64, src, dst2 topology.NodeID, lat int64, hops int) {
		*dst = append(*dst, deliveryEvent{cycle, src, dst2, lat, hops})
	}}
}

// runAB runs the same configuration with compiled route tables on and
// off and asserts bit-identical Results and delivery event streams.
func runAB(t *testing.T, mk func() Config) {
	t.Helper()
	var events [2][]deliveryEvent
	var results [2]Result
	for i, disable := range []bool{false, true} {
		cfg := mk()
		cfg.DisableRouteTable = disable
		cfg.Observer = recordDeliveries(&events[i])
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		results[i] = res
	}
	if results[0] != results[1] {
		t.Errorf("results differ:\n tables: %+v\n direct: %+v", results[0], results[1])
	}
	if len(events[0]) != len(events[1]) {
		t.Fatalf("delivery counts differ: tables %d, direct %d", len(events[0]), len(events[1]))
	}
	for i := range events[0] {
		if events[0][i] != events[1][i] {
			t.Fatalf("delivery %d differs: tables %+v, direct %+v", i, events[0][i], events[1][i])
		}
	}
}

// TestTableABDeterminism: compiled route tables are an optimization,
// not a behavior change — every configuration class the engine
// distinguishes (stochastic single-VC, random policy with misrouting,
// multi-VC dateline torus routing, scripted first-hop restrictions)
// produces bit-identical results with tables on and off.
func TestTableABDeterminism(t *testing.T) {
	t.Run("stochastic-mesh", func(t *testing.T) {
		runAB(t, func() Config {
			topo := topology.NewMesh(8, 8)
			return Config{
				Algorithm:     routing.NewWestFirst(topo),
				Pattern:       traffic.NewUniform(topo),
				OfferedLoad:   3.0,
				WarmupCycles:  500,
				MeasureCycles: 1500,
				Seed:          11,
			}
		})
	})
	// RandomPolicy draws from the shared RNG per routed header and
	// MisrouteAfter reads the candidates' profitability bits, so this
	// covers RNG-stream identity and the Prof field.
	t.Run("random-policy-misroute", func(t *testing.T) {
		runAB(t, func() Config {
			topo := topology.NewMesh(6, 6)
			return Config{
				Algorithm:     routing.NewFullyAdaptive(topo),
				Pattern:       traffic.NewMeshTranspose(topo),
				OfferedLoad:   4.0,
				Policy:        RandomPolicy,
				MisrouteAfter: 3,
				WarmupCycles:  500,
				MeasureCycles: 1500,
				Seed:          5,
			}
		})
	})
	t.Run("dateline-torus-vc", func(t *testing.T) {
		runAB(t, func() Config {
			topo := topology.NewTorus(6, 2)
			return Config{
				VCAlgorithm:   routing.NewDatelineDOR(topo),
				Pattern:       traffic.NewUniform(topo),
				OfferedLoad:   3.0,
				WarmupCycles:  500,
				MeasureCycles: 1500,
				Seed:          9,
			}
		})
	})
	// FirstDir headers bypass the table at injection (the restriction is
	// per-packet, not per-pair), then use it downstream.
	t.Run("scripted-first-dir", func(t *testing.T) {
		east := topology.Direction{Dim: 0, Pos: true}
		north := topology.Direction{Dim: 1, Pos: true}
		runAB(t, func() Config {
			topo := topology.NewMesh(5, 5)
			return Config{
				Algorithm: routing.NewFullyAdaptive(topo),
				Script: []ScriptedMessage{
					{Cycle: 0, Src: topo.ID(topology.Coord{0, 0}), Dst: topo.ID(topology.Coord{4, 4}), Length: 12, FirstDir: &north},
					{Cycle: 0, Src: topo.ID(topology.Coord{0, 4}), Dst: topo.ID(topology.Coord{4, 0}), Length: 12, FirstDir: &east},
					{Cycle: 3, Src: topo.ID(topology.Coord{2, 2}), Dst: topo.ID(topology.Coord{0, 0}), Length: 20},
				},
			}
		})
	})
}

// TestTableABDeterminismUnderFault: a channel failure mid-run triggers
// the fault-epoch invalidation (recompile on the table path, candidate
// cache flush on both), and the two paths must still agree cycle for
// cycle.
func TestTableABDeterminismUnderFault(t *testing.T) {
	const (
		cycles     = 2000
		faultCycle = 300
	)
	var events [2][]deliveryEvent
	var delivered [2]int64
	for i, disable := range []bool{false, true} {
		topo := topology.NewMesh(8, 8)
		broken := topology.Channel{From: topo.ID(topology.Coord{4, 4}), Dir: topology.Direction{Dim: 1, Pos: true}}
		e, err := New(Config{
			Algorithm:         routing.NewNegativeFirst(topo),
			Pattern:           traffic.NewUniform(topo),
			OfferedLoad:       2.0,
			WarmupCycles:      1 << 30,
			MeasureCycles:     1,
			Seed:              17,
			DisableRouteTable: disable,
			Observer:          recordDeliveries(&events[i]),
		})
		if err != nil {
			t.Fatal(err)
		}
		for e.cycle < cycles {
			if e.cycle == faultCycle {
				topo.DisableChannel(broken)
			}
			e.step()
			e.cycle++
		}
		delivered[i] = e.stats.totalDeliveredEver
		topo.EnableChannel(broken)
	}
	if delivered[0] == 0 {
		t.Fatal("no deliveries; test would be vacuous")
	}
	if delivered[0] != delivered[1] {
		t.Fatalf("delivered counts differ: tables %d, direct %d", delivered[0], delivered[1])
	}
	if len(events[0]) != len(events[1]) {
		t.Fatalf("delivery streams differ in length: %d vs %d", len(events[0]), len(events[1]))
	}
	for i := range events[0] {
		if events[0][i] != events[1][i] {
			t.Fatalf("delivery %d differs: tables %+v, direct %+v", i, events[0][i], events[1][i])
		}
	}
}
