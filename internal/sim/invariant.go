package sim

import (
	"fmt"
)

// CheckInvariants verifies the engine's structural invariants and
// returns the first violation found, or nil. It is safe to call between
// cycles (not from inside a phase). The laws checked:
//
//   - channel-hold bijection: busyBy[out] == in iff inbufs[in].allocOut
//     == out, and every held input has flits or a grant in progress;
//   - buffer bounds: no input buffer exceeds the configured depth;
//   - flowing consistency: an input is marked flowing iff it holds a
//     flit and an allocated output;
//   - flit conservation: flits injected == flits delivered + flits
//     drained by recovery + flits currently sitting in buffers;
//   - packet conservation: the set of distinct packets in source
//     queues, network buffers and the retry queue is exactly the
//     engine's in-flight count.
//
// Config.CheckInvariants runs this periodically during Run and once at
// the end, recording the first violation in Result.InvariantViolation;
// tests and the cmd-level -check flags call it directly.
func (e *Engine) CheckInvariants() error {
	for out := range e.busyBy {
		in := e.busyBy[out]
		if in < 0 {
			continue
		}
		if int(in) >= len(e.inbufs) {
			return fmt.Errorf("busyBy[%d] = %d out of range", out, in)
		}
		if got := e.inbufs[in].allocOut; got != int32(out) {
			return fmt.Errorf("busyBy[%d] = %d but inbufs[%d].allocOut = %d", out, in, in, got)
		}
	}
	var buffered int64
	live := make(map[*packet]bool)
	for in := range e.inbufs {
		b := &e.inbufs[in]
		if len(b.q) > e.depth {
			return fmt.Errorf("input %d holds %d flits, depth %d", in, len(b.q), e.depth)
		}
		buffered += int64(len(b.q))
		for i := range b.q {
			live[b.q[i].p] = true
		}
		if b.allocOut >= 0 {
			if int(b.allocOut) >= len(e.busyBy) {
				return fmt.Errorf("inbufs[%d].allocOut = %d out of range", in, b.allocOut)
			}
			if got := e.busyBy[b.allocOut]; got != int32(in) {
				return fmt.Errorf("inbufs[%d].allocOut = %d but busyBy[%d] = %d", in, b.allocOut, b.allocOut, got)
			}
		}
		wantFlowing := b.allocOut >= 0 && len(b.q) > 0
		if got := e.flowing.get(int32(in)); got != wantFlowing {
			return fmt.Errorf("input %d: flowing = %v, want %v (allocOut %d, %d flits)",
				in, got, wantFlowing, b.allocOut, len(b.q))
		}
	}
	if e.flitsInjectedEver != e.flitsDeliveredEver+e.flitsDrainedEver+buffered {
		return fmt.Errorf("flit conservation: injected %d != delivered %d + drained %d + buffered %d",
			e.flitsInjectedEver, e.flitsDeliveredEver, e.flitsDrainedEver, buffered)
	}
	for i := range e.queues {
		q := &e.queues[i]
		for j := 0; j < q.len(); j++ {
			live[q.at(j)] = true
		}
	}
	for _, en := range e.recov.pending {
		live[en.p] = true
	}
	if len(live) != e.inFlight {
		return fmt.Errorf("packet conservation: %d distinct live packets, in-flight count %d",
			len(live), e.inFlight)
	}
	return nil
}

// checkInvariantsNow runs the checker and records the first violation
// in invariantErr, tagged with where in the run it was found.
func (e *Engine) checkInvariantsNow(when string) {
	if e.invariantErr != "" {
		return
	}
	if err := e.CheckInvariants(); err != nil {
		e.invariantErr = fmt.Sprintf("%s: %v", when, err)
	}
}
