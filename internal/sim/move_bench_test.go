package sim

import (
	"testing"

	"turnmodel/internal/routing"
	"turnmodel/internal/topology"
	"turnmodel/internal/traffic"
)

// Per-class move-phase micro-benchmarks. Each benchmark isolates the
// move phase of a warmed-up steady-state engine: the generation and
// allocation phases (and the link-usage resets between them) run with
// the timer stopped, so ns/op measures exactly one conflict-partitioned
// (or serial) move. The serial/sharded pairs make the parallel-move win
// per switching class visible in isolation, where whole-run benches
// blend it with the allocation phase and statistics.
func benchMovePhase(b *testing.B, mk func() Config) {
	for _, bc := range []struct {
		name   string
		shards int
	}{
		{"serial", 0},
		{"sharded", 4},
	} {
		b.Run(bc.name, func(b *testing.B) {
			cfg := mk()
			cfg.Shards = bc.shards
			// Never start measuring: the latency histogram may grow, and
			// this bench wants the pure steady-state move cost.
			cfg.WarmupCycles = 1 << 30
			cfg.MeasureCycles = 1
			e, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			for i := 0; i < 2000; i++ {
				e.step()
				e.cycle++
			}
			if e.inFlight == 0 {
				b.Fatal("no traffic in flight after warmup; benchmark would be vacuous")
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.StopTimer()
			for i := 0; i < b.N; i++ {
				// Pre-move phases of a real cycle, untimed (mirrors step).
				e.generate()
				e.allocate()
				for _, idx := range e.dirtyLinks {
					e.linkUsed[idx] = false
				}
				e.dirtyLinks = e.dirtyLinks[:0]
				for _, idx := range e.dirtyInj {
					e.injUsed[idx] = false
				}
				e.dirtyInj = e.dirtyInj[:0]
				b.StartTimer()
				e.move()
				b.StopTimer()
				e.cycle++
			}
		})
	}
}

// BenchmarkMoveWormhole: the baseline single-VC wormhole class, sharded
// since PR 6.
func BenchmarkMoveWormhole(b *testing.B) {
	benchMovePhase(b, func() Config {
		topo := topology.NewMesh(8, 8)
		return Config{
			Algorithm:   routing.NewNegativeFirst(topo),
			Pattern:     traffic.NewUniform(topo),
			OfferedLoad: 2.0,
			Seed:        3,
		}
	})
}

// BenchmarkMoveMultiVC: dateline virtual channels on a torus — one of
// the two classes the conflict-partitioned move newly parallelizes
// (per-link VC wait chains couple the channels of one physical link).
func BenchmarkMoveMultiVC(b *testing.B) {
	benchMovePhase(b, func() Config {
		topo := topology.NewTorus(8, 2)
		return Config{
			VCAlgorithm: routing.NewDatelineDOR(topo),
			Pattern:     traffic.NewUniform(topo),
			OfferedLoad: 2.0,
			Seed:        3,
		}
	})
}

// BenchmarkMoveStrictSAF: store-and-forward with strict advance, whose
// lenStart snapshot kept it shardable before conflict partitioning.
func BenchmarkMoveStrictSAF(b *testing.B) {
	benchMovePhase(b, func() Config {
		topo := topology.NewMesh(8, 8)
		return Config{
			Algorithm:     routing.NewNegativeFirst(topo),
			Pattern:       traffic.NewUniform(topo),
			OfferedLoad:   2.0,
			Switching:     StoreAndForward,
			StrictAdvance: true,
			Lengths:       []int{6, 12},
			Seed:          3,
		}
	})
}

// BenchmarkMoveChainedSAF: chained store-and-forward — the other newly
// parallelized class (same-cycle cascades form cross-router SAF
// dependency chains).
func BenchmarkMoveChainedSAF(b *testing.B) {
	benchMovePhase(b, func() Config {
		topo := topology.NewMesh(8, 8)
		return Config{
			Algorithm:   routing.NewNegativeFirst(topo),
			Pattern:     traffic.NewUniform(topo),
			OfferedLoad: 2.0,
			Switching:   StoreAndForward,
			Lengths:     []int{6, 12},
			Seed:        3,
		}
	})
}
