package sim

import (
	"fmt"

	"turnmodel/internal/topology"
)

// This file implements engine-level deadlock recovery: a per-worm
// progress watchdog that regressively aborts packets that have made no
// progress for Config.RecoveryThreshold cycles — draining their
// in-network flits and releasing the output channels they hold — and
// re-injects them at the source with exponential backoff and a bounded
// retry budget. With recovery, a would-be Deadlocked run becomes a run
// whose packets are each Delivered, retried-and-Delivered, or Dropped,
// with full accounting in Result. See DESIGN.md, "Deadlock recovery".
//
// Recovery runs in the serial pre-generate phase of step, so it is
// shard-safe by construction: shard workers only run inside the
// allocate and move propose regions, both later in the cycle.

// retryEntry is one aborted packet waiting out its backoff.
type retryEntry struct {
	due int64 // cycle the packet may re-enter its source queue
	p   *packet
}

// recoveryState is the engine's recovery bookkeeping. The zero value is
// valid for runs with recovery disabled.
type recoveryState struct {
	every   int64        // watchdog scan cadence in cycles (threshold/4)
	pending []retryEntry // aborted packets waiting out their backoff
	victims []int32      // scan scratch: header buffer indices to abort

	// Counters for Result and metrics.
	recoveries   int64 // worms aborted
	retries      int64 // re-injections released into source queues
	drops        int64 // packets whose retry budget ran out
	flitsDrained int64 // flits removed from buffers by aborts
}

// recoverStep runs once per cycle before generation when recovery is
// enabled: it releases retry-queue packets whose backoff expired back
// into their source queues, and — at the watchdog cadence — scans for
// stalled worms and aborts them. Victims are snapshotted before any
// abort mutates buffer state, so a drain that exposes a new header
// never cascades into aborting a packet that was not itself stale.
func (e *Engine) recoverStep() {
	r := &e.recov
	if len(r.pending) > 0 {
		kept := r.pending[:0]
		for _, en := range r.pending {
			if en.due <= e.cycle {
				e.queues[en.p.src].push(en.p)
				r.retries++
				if e.m != nil {
					e.m.Retries++
				}
				// A release is engine-driven liveness: don't let a long
				// backoff with an otherwise idle network read as deadlock.
				e.lastMove = e.cycle
			} else {
				kept = append(kept, en)
			}
		}
		r.pending = kept
	}
	if e.cycle == 0 || e.cycle%r.every != 0 {
		return
	}
	victims := r.victims[:0]
	for in := range e.inbufs {
		b := &e.inbufs[in]
		if b.allocOut >= 0 || len(b.q) == 0 || !b.q[0].head {
			continue
		}
		if e.cycle-b.q[0].p.lastProgress >= e.cfg.RecoveryThreshold {
			victims = append(victims, int32(in))
		}
	}
	r.victims = victims
	for _, in := range victims {
		e.abortWorm(in)
	}
	if len(victims) > 0 && e.cfg.CheckInvariants {
		e.checkInvariantsNow("after recovery drain")
	}
}

// abortWorm regressively aborts the worm whose (stalled, unallocated)
// header flit sits at the front of input buffer hin: every flit of the
// packet is drained from the buffer chain back toward the source, every
// output channel the worm holds is released and the routers woken, and
// the packet is either scheduled for re-injection after its backoff or
// dropped when the retry budget is exhausted.
func (e *Engine) abortWorm(hin int32) {
	hb := &e.inbufs[hin]
	// Revalidate against the snapshot: an earlier abort this scan cannot
	// have granted this header an output (allocation only runs later in
	// the cycle), but defensive staleness checks are cheap.
	if len(hb.q) == 0 || !hb.q[0].head || hb.allocOut >= 0 {
		return
	}
	p := hb.q[0].p
	if e.cycle-p.lastProgress < e.cfg.RecoveryThreshold {
		return
	}
	inNet := p.flitsSent - p.flitsDelivered // header worms have flitsDelivered == 0
	drained := 0
	released := 0
	cur := hin
	// Walk the buffer chain from the header back toward the source. The
	// worm's flits are contiguous at the front of each buffer on the
	// chain (FIFO buffers, and the header is the oldest flit), so each
	// step drains a prefix, then follows the upstream output that feeds
	// cur — releasing it — to the buffer holding it.
	for hop := 0; hop <= len(e.inbufs); hop++ {
		cb := &e.inbufs[cur]
		k := 0
		for k < len(cb.q) && cb.q[k].p == p {
			k++
		}
		if k > 0 {
			rest := len(cb.q) - k
			copy(cb.q, cb.q[k:])
			cb.q = cb.q[:rest]
			drained += k
			if e.readyBits != nil {
				e.readyBits[cur] = false
			}
			router := int(cur) / e.vport
			if e.m != nil {
				e.m.Occupancy[router] -= int32(k)
			}
			if rest == 0 {
				e.flowing.clear(cur)
			} else if cb.q[0].head {
				// The drain exposed a queued header: wake allocation.
				// Its headArrival was recorded on arrival and stands.
				e.pushAllocWork(int32(router))
			}
		}
		if int(cb.port) == e.vport-1 {
			break // injection buffer: the chain ends at the source
		}
		if drained == inNet && p.flitsSent == p.length {
			break // tail drained and fully injected: nothing upstream
		}
		up := e.upOut[cur]
		if up < 0 {
			break
		}
		feeder := e.busyBy[up]
		if feeder < 0 {
			break // channel free: the worm's tail already crossed it
		}
		e.busyBy[up] = -1
		e.inbufs[feeder].allocOut = -1
		e.flowing.clear(feeder)
		e.pushAllocWork(int32(int(up) / e.vport))
		released++
		cur = feeder
	}
	if p.flitsSent < p.length {
		// Partially injected: the un-sent remainder still heads the
		// source queue; remove it so the retry starts from scratch.
		q := &e.queues[p.src]
		if q.len() > 0 && q.front() == p {
			q.pop()
		} else if e.invariantErr == "" {
			e.invariantErr = "recovery: partially injected packet missing from source queue head"
		}
	}
	if drained != inNet && e.invariantErr == "" {
		e.invariantErr = fmt.Sprintf("recovery: drained %d flits of packet %d, expected %d",
			drained, p.id, inNet)
	}
	r := &e.recov
	r.recoveries++
	r.flitsDrained += int64(drained)
	e.flitsDrainedEver += int64(drained)
	if e.m != nil {
		e.m.Recoveries++
		e.m.DrainedFlits += int64(drained)
	}
	// The abort itself is progress in the liveness sense.
	e.lastMove = e.cycle

	p.flitsSent = 0
	p.flitsDelivered = 0
	p.hops = 0
	p.retries++
	dropped := e.cfg.RetryLimit < 0 || int(p.retries) > e.cfg.RetryLimit
	if e.recObs != nil {
		e.recObs.Abort(e.cycle, p.src, p.dst, drained, released, int(p.retries), dropped)
	}
	if dropped {
		r.drops++
		if e.m != nil {
			e.m.PacketsDropped++
		}
		e.inFlight--
		e.releasePacket(p)
		return
	}
	shift := uint(p.retries - 1)
	if shift > 3 {
		shift = 3 // cap the exponential backoff at 8x the base
	}
	r.pending = append(r.pending, retryEntry{due: e.cycle + e.cfg.RetryBackoff<<shift, p: p})
}

// advanceFaults applies the fault plan's events due at the current
// cycle. Plan events were validated at construction, so an error here
// is a programming bug; it is recorded as an invariant violation rather
// than silently dropped.
func (e *Engine) advanceFaults() {
	if _, err := e.faults.Advance(e.cycle); err != nil && e.invariantErr == "" {
		e.invariantErr = "fault driver: " + err.Error()
	}
}

// restoreFaults re-enables every channel the fault driver still holds
// disabled, restoring the topology's pre-run fault state; run defers it
// so a shared topology can host subsequent runs.
func (e *Engine) restoreFaults() {
	if e.faults == nil {
		return
	}
	if err := e.faults.Reset(); err != nil && e.invariantErr == "" {
		e.invariantErr = "fault driver reset: " + err.Error()
	}
}

// RecoveryObserver extends Observer with recovery events. A
// Config.Observer that also implements it receives an Abort callback
// whenever the watchdog regressively aborts a worm; aborts fire in the
// pre-generate phase, so within a cycle they strictly precede every
// Inject, Allocate, Forward and Deliver event.
type RecoveryObserver interface {
	Observer
	// Abort fires when a stalled worm is aborted: flitsDrained flits
	// were removed from network buffers, channelsReleased held output
	// channels were freed, retry is the abort count for this packet so
	// far, and dropped reports that the retry budget is exhausted (the
	// packet will not be re-injected).
	Abort(cycle int64, src, dst topology.NodeID, flitsDrained, channelsReleased, retry int, dropped bool)
}
