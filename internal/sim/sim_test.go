package sim

import (
	"math"
	"testing"

	"turnmodel/internal/routing"
	"turnmodel/internal/topology"
	"turnmodel/internal/traffic"
)

func mesh8() *topology.Topology { return topology.NewMesh(8, 8) }

// TestSinglePacketLatency: on an idle network a wormhole packet's
// latency is (hops + length) cycles plus a small constant — the paper's
// "proportional to the sum of packet length and distance" property.
func TestSinglePacketLatency(t *testing.T) {
	topo := mesh8()
	src := topo.ID(topology.Coord{0, 0})
	dst := topo.ID(topology.Coord{5, 3})
	length := 20
	e, err := New(Config{
		Algorithm: routing.NewDimensionOrder(topo),
		Script: []ScriptedMessage{
			{Cycle: 0, Src: src, Dst: dst, Length: length},
		},
		Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var delivered *packet
	e.onDeliver = func(p *packet) { delivered = p }
	res := e.run()
	if res.Deadlocked || delivered == nil {
		t.Fatalf("packet not delivered: %+v", res)
	}
	hops := topo.Distance(src, dst)
	if delivered.hops != hops {
		t.Errorf("hops = %d, want %d", delivered.hops, hops)
	}
	lat := delivered.deliverCycle - delivered.genCycle
	ideal := int64(hops + length)
	// Allow a small constant for injection/ejection pipeline stages.
	if lat < ideal || lat > ideal+6 {
		t.Errorf("latency = %d cycles, want about %d (hops=%d + length=%d)", lat, ideal, hops, length)
	}
}

// TestLatencyScalesWithSumNotProduct: doubling the packet length should
// add ~length cycles (wormhole), not multiply the latency by the
// distance (store-and-forward).
func TestLatencyScalesWithSumNotProduct(t *testing.T) {
	topo := mesh8()
	src := topo.ID(topology.Coord{0, 0})
	dst := topo.ID(topology.Coord{7, 7})
	lat := func(length int) int64 {
		e, err := New(Config{
			Algorithm: routing.NewDimensionOrder(topo),
			Script:    []ScriptedMessage{{Cycle: 0, Src: src, Dst: dst, Length: length}},
		})
		if err != nil {
			t.Fatal(err)
		}
		var got int64
		e.onDeliver = func(p *packet) { got = p.deliverCycle - p.genCycle }
		e.run()
		return got
	}
	l10, l20 := lat(10), lat(20)
	if d := l20 - l10; d != 10 {
		t.Errorf("latency delta for +10 flits = %d cycles, want 10", d)
	}
}

// TestFlitConservation: in a finite scripted run, every generated flit
// is delivered exactly once.
func TestFlitConservation(t *testing.T) {
	topo := mesh8()
	var script []ScriptedMessage
	total := 0
	for i := 0; i < 40; i++ {
		src := topology.NodeID(i % topo.Nodes())
		dst := topology.NodeID((i*7 + 13) % topo.Nodes())
		if src == dst {
			continue
		}
		l := 5 + i%17
		total += l
		script = append(script, ScriptedMessage{Cycle: int64(i * 3), Src: src, Dst: dst, Length: l})
	}
	e, err := New(Config{Algorithm: routing.NewNegativeFirst(topo), Script: script, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	deliveredFlits := 0
	e.onDeliver = func(p *packet) {
		if p.flitsDelivered != p.length {
			t.Errorf("packet %d delivered %d of %d flits", p.id, p.flitsDelivered, p.length)
		}
		deliveredFlits += p.length
	}
	res := e.run()
	if res.Deadlocked {
		t.Fatal("unexpected deadlock")
	}
	if res.PacketsDelivered != int64(len(script)) {
		t.Fatalf("delivered %d of %d packets", res.PacketsDelivered, len(script))
	}
	if deliveredFlits != total {
		t.Errorf("delivered %d flits, generated %d", deliveredFlits, total)
	}
}

// TestMinimalHopsInvariant: under stochastic load, every delivered
// packet of a minimal algorithm travels exactly its minimal distance.
func TestMinimalHopsInvariant(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	for _, alg := range []routing.Algorithm{
		routing.NewDimensionOrder(topo),
		routing.NewWestFirst(topo),
		routing.NewNorthLast(topo),
		routing.NewNegativeFirst(topo),
	} {
		e, err := New(Config{
			Algorithm:     alg,
			Pattern:       traffic.NewUniform(topo),
			OfferedLoad:   1.5,
			WarmupCycles:  500,
			MeasureCycles: 3000,
			Seed:          3,
		})
		if err != nil {
			t.Fatal(err)
		}
		checked := 0
		e.onDeliver = func(p *packet) {
			if p.hops != topo.Distance(p.src, p.dst) {
				t.Errorf("%s: packet %d->%d took %d hops, want %d", alg.Name(), p.src, p.dst, p.hops, topo.Distance(p.src, p.dst))
			}
			checked++
		}
		e.run()
		if checked == 0 {
			t.Fatalf("%s: no packets delivered", alg.Name())
		}
	}
}

// TestDeterminism: identical configurations produce identical results.
func TestDeterminism(t *testing.T) {
	topo := mesh8()
	cfg := Config{
		Algorithm:     routing.NewWestFirst(topo),
		Pattern:       traffic.NewUniform(topo),
		OfferedLoad:   2.0,
		WarmupCycles:  1000,
		MeasureCycles: 4000,
		Seed:          17,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("identical seeds produced different results:\n%+v\n%+v", a, b)
	}
	cfg.Seed = 18
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different seeds produced identical results (suspicious)")
	}
}

// TestFigure1Deadlock: the four-packet left-turn scenario deadlocks
// under the unrestricted relation and completes under west-first.
func TestFigure1DeadlockScenario(t *testing.T) {
	topo := topology.NewMesh(2, 2)
	east := topology.Direction{Dim: 0, Pos: true}
	west := topology.Direction{Dim: 0}
	north := topology.Direction{Dim: 1, Pos: true}
	south := topology.Direction{Dim: 1}
	at := func(x, y int) topology.NodeID { return topo.ID(topology.Coord{x, y}) }
	script := []ScriptedMessage{
		{Src: at(0, 0), Dst: at(1, 1), Length: 4, FirstDir: &east},
		{Src: at(1, 0), Dst: at(0, 1), Length: 4, FirstDir: &north},
		{Src: at(1, 1), Dst: at(0, 0), Length: 4, FirstDir: &west},
		{Src: at(0, 1), Dst: at(1, 0), Length: 4, FirstDir: &south},
	}
	res, err := Run(Config{
		Algorithm:         routing.NewFullyAdaptive(topo),
		Script:            script,
		DeadlockThreshold: 200,
		DrainDeadline:     50000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deadlocked {
		t.Errorf("fully adaptive should deadlock in the Figure 1 scenario: %+v", res)
	}
	res2, err := Run(Config{
		Algorithm:         routing.NewWestFirst(topo),
		Script:            script,
		DeadlockThreshold: 200,
		DrainDeadline:     50000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Deadlocked || res2.PacketsDelivered != 4 {
		t.Errorf("west-first should deliver all four packets: %+v", res2)
	}
}

// TestFullyAdaptiveDeadlocksUnderLoad: stochastic traffic on a small
// mesh with the unrestricted relation reaches deadlock; the runtime
// detector fires.
func TestFullyAdaptiveDeadlocksUnderLoad(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	res, err := Run(Config{
		Algorithm:         routing.NewFullyAdaptive(topo),
		Pattern:           traffic.NewUniform(topo),
		OfferedLoad:       8,
		WarmupCycles:      30000,
		MeasureCycles:     30000,
		Seed:              5,
		Policy:            RandomPolicy,
		DeadlockThreshold: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deadlocked {
		t.Skip("no deadlock materialized with this seed; the property is probabilistic")
	}
}

// TestSustainabilityFlag: light load is sustainable, heavy load is not.
func TestSustainabilityFlag(t *testing.T) {
	topo := mesh8()
	light, err := Run(Config{
		Algorithm: routing.NewDimensionOrder(topo), Pattern: traffic.NewUniform(topo),
		OfferedLoad: 0.5, WarmupCycles: 1000, MeasureCycles: 5000, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !light.Sustainable {
		t.Errorf("light load should be sustainable: %+v", light)
	}
	heavy, err := Run(Config{
		Algorithm: routing.NewDimensionOrder(topo), Pattern: traffic.NewUniform(topo),
		OfferedLoad: 15, WarmupCycles: 1000, MeasureCycles: 5000, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if heavy.Sustainable {
		t.Errorf("heavy load should not be sustainable: %+v", heavy)
	}
	if heavy.Throughput <= light.Throughput {
		t.Errorf("heavy load should still deliver more flits: %v vs %v", heavy.Throughput, light.Throughput)
	}
}

// TestThroughputMatchesOfferedAtLowLoad: far below saturation, accepted
// throughput equals offered load (within stochastic tolerance).
func TestThroughputMatchesOfferedAtLowLoad(t *testing.T) {
	topo := mesh8()
	offered := 0.5 // flits/us/node -> 32 flits/us network-wide
	res, err := Run(Config{
		Algorithm: routing.NewWestFirst(topo), Pattern: traffic.NewUniform(topo),
		OfferedLoad: offered, WarmupCycles: 4000, MeasureCycles: 20000, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := offered * float64(topo.Nodes())
	if math.Abs(res.Throughput-want)/want > 0.15 {
		t.Errorf("throughput %.1f, want about %.1f flits/us", res.Throughput, want)
	}
}

// TestBufferDepthReducesLatency: deeper input buffers cannot hurt and
// typically help at moderate load.
func TestBufferDepthReducesLatency(t *testing.T) {
	topo := mesh8()
	run := func(depth int) Result {
		res, err := Run(Config{
			Algorithm: routing.NewDimensionOrder(topo), Pattern: traffic.NewUniform(topo),
			OfferedLoad: 2.5, WarmupCycles: 2000, MeasureCycles: 10000, Seed: 8,
			BufferDepth: depth,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	d1, d4 := run(1), run(4)
	if d4.AvgLatency > d1.AvgLatency*1.1 {
		t.Errorf("depth-4 buffers should not be much worse: depth1=%.2f depth4=%.2f", d1.AvgLatency, d4.AvgLatency)
	}
}

// TestStrictAdvanceIsSlower: without chained advance a compressed worm
// moves every other cycle, so latency grows.
func TestStrictAdvanceIsSlower(t *testing.T) {
	topo := mesh8()
	src := topo.ID(topology.Coord{0, 0})
	dst := topo.ID(topology.Coord{7, 0})
	lat := func(strict bool) int64 {
		e, err := New(Config{
			Algorithm:     routing.NewDimensionOrder(topo),
			Script:        []ScriptedMessage{{Cycle: 0, Src: src, Dst: dst, Length: 30}},
			StrictAdvance: strict,
		})
		if err != nil {
			t.Fatal(err)
		}
		var got int64
		e.onDeliver = func(p *packet) { got = p.deliverCycle - p.genCycle }
		e.run()
		return got
	}
	chained, strict := lat(false), lat(true)
	if strict <= chained {
		t.Errorf("strict advance (%d cycles) should be slower than chained (%d)", strict, chained)
	}
}

// TestScriptedFirstDirFallsBack: a FirstDir the relation does not offer
// is ignored rather than wedging the packet.
func TestScriptedFirstDirFallsBack(t *testing.T) {
	topo := mesh8()
	north := topology.Direction{Dim: 1, Pos: true}
	// Destination is due south; forcing north is not offered by a
	// minimal relation and must be ignored.
	res, err := Run(Config{
		Algorithm: routing.NewDimensionOrder(topo),
		Script: []ScriptedMessage{
			{Src: topo.ID(topology.Coord{4, 6}), Dst: topo.ID(topology.Coord{4, 1}), Length: 6, FirstDir: &north},
		},
		DeadlockThreshold: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PacketsDelivered != 1 || res.Deadlocked {
		t.Errorf("packet should be delivered ignoring the bogus FirstDir: %+v", res)
	}
}

// TestLocalFCFSInputSelection: when two headers compete for one output,
// the one whose header arrived first wins. Two packets are aimed at the
// same output channel with staggered injection.
func TestLocalFCFSInputSelection(t *testing.T) {
	topo := topology.NewMesh(3, 3)
	dst := topo.ID(topology.Coord{1, 2}) // both routes turn north at (1,1)
	a := topo.ID(topology.Coord{0, 1})   // arrives at mid travelling east
	b := topo.ID(topology.Coord{2, 1})   // arrives at mid travelling west
	// Packet A is injected first and must win the north channel; B waits
	// for A's 30-flit worm to pass.
	e, err := New(Config{
		Algorithm: routing.NewFullyAdaptive(topo),
		Script: []ScriptedMessage{
			{Cycle: 0, Src: a, Dst: dst, Length: 30},
			{Cycle: 1, Src: b, Dst: dst, Length: 30},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var order []topology.NodeID
	e.onDeliver = func(p *packet) { order = append(order, p.src) }
	res := e.run()
	if res.Deadlocked || len(order) != 2 {
		t.Fatalf("bad run: %+v", res)
	}
	if order[0] != a {
		t.Errorf("first-come-first-served violated: %v delivered first", order[0])
	}
}

// TestConfigValidation covers the error paths.
func TestConfigValidation(t *testing.T) {
	topo := mesh8()
	alg := routing.NewDimensionOrder(topo)
	pat := traffic.NewUniform(topo)
	bad := []Config{
		{},
		{Algorithm: alg},
		{Algorithm: alg, Pattern: pat},
		{Algorithm: alg, Pattern: pat, OfferedLoad: -1, WarmupCycles: 1, MeasureCycles: 1},
		{Algorithm: alg, Pattern: pat, OfferedLoad: 1},
		{Algorithm: alg, Pattern: pat, OfferedLoad: 1, WarmupCycles: 100, MeasureCycles: 100, Lengths: []int{0}},
		{Algorithm: alg, Pattern: pat, OfferedLoad: 1, WarmupCycles: 100, MeasureCycles: 100, Lengths: []int{5}, LengthWeights: []float64{1, 2}},
		{Algorithm: alg, Pattern: pat, OfferedLoad: 1, WarmupCycles: 100, MeasureCycles: 100, BufferDepth: -2},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("config %d should fail validation", i)
		}
	}
}

// TestMeanLength: the default bimodal 10/200 mix averages 105 flits.
func TestMeanLength(t *testing.T) {
	c := Config{}
	if got := c.MeanLength(); got != 105 {
		t.Errorf("default mean length = %v, want 105", got)
	}
	c = Config{Lengths: []int{8}, LengthWeights: []float64{1}}
	if got := c.MeanLength(); got != 8 {
		t.Errorf("single length mean = %v, want 8", got)
	}
	c = Config{Lengths: []int{10, 30}, LengthWeights: []float64{3, 1}}
	if got := c.MeanLength(); got != 15 {
		t.Errorf("weighted mean = %v, want 15", got)
	}
}

// TestPacketLengthDistribution: drawn lengths follow the configured
// weights.
func TestPacketLengthDistribution(t *testing.T) {
	topo := mesh8()
	e, err := New(Config{
		Algorithm: routing.NewDimensionOrder(topo), Pattern: traffic.NewUniform(topo),
		OfferedLoad: 1, WarmupCycles: 10, MeasureCycles: 10, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for i := 0; i < 10000; i++ {
		counts[e.drawLength()]++
	}
	if len(counts) != 2 || counts[10] == 0 || counts[200] == 0 {
		t.Fatalf("unexpected lengths: %v", counts)
	}
	ratio := float64(counts[10]) / float64(counts[10]+counts[200])
	if math.Abs(ratio-0.5) > 0.03 {
		t.Errorf("length split %.3f, want about 0.5", ratio)
	}
}

// TestEjectionBandwidth: a node can absorb at most 20 flits/us (one
// flit per cycle); two simultaneous senders to one destination halve
// each other's rate rather than violating the channel model.
func TestEjectionBandwidth(t *testing.T) {
	topo := topology.NewMesh(3, 3)
	dst := topo.ID(topology.Coord{1, 1})
	var script []ScriptedMessage
	for i := 0; i < 10; i++ {
		script = append(script,
			ScriptedMessage{Cycle: int64(i), Src: topo.ID(topology.Coord{0, 1}), Dst: dst, Length: 50},
			ScriptedMessage{Cycle: int64(i), Src: topo.ID(topology.Coord{2, 1}), Dst: dst, Length: 50},
		)
	}
	e, err := New(Config{Algorithm: routing.NewDimensionOrder(topo), Script: script})
	if err != nil {
		t.Fatal(err)
	}
	res := e.run()
	if res.Deadlocked || res.PacketsDelivered != 20 {
		t.Fatalf("bad run: %+v", res)
	}
	// 20 packets x 50 flits through one ejection channel needs at least
	// 1000 cycles.
	if res.Cycles < 1000 {
		t.Errorf("run finished in %d cycles; ejection channel must carry at most 1 flit/cycle", res.Cycles)
	}
}

// TestHypercubeSimulation: the 8-cube with e-cube routing delivers
// sensibly under uniform traffic.
func TestHypercubeSimulation(t *testing.T) {
	topo := topology.NewHypercube(8)
	res, err := Run(Config{
		Algorithm: routing.NewDimensionOrder(topo), Pattern: traffic.NewUniform(topo),
		OfferedLoad: 1, WarmupCycles: 1000, MeasureCycles: 4000, Seed: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PacketsDelivered == 0 || res.Deadlocked {
		t.Fatalf("bad run: %+v", res)
	}
	if math.Abs(res.AvgHops-4.0) > 0.3 {
		t.Errorf("uniform 8-cube average hops %.2f, want about 4.0", res.AvgHops)
	}
}
