package sim

import (
	"reflect"
	"testing"
)

// TestBitsetForEachIn: forEachIn backs both sharded phases' range
// enumerations, so its word-boundary masking must be exact. Each case
// is checked against a reference scan over get().
func TestBitsetForEachIn(t *testing.T) {
	const n = 300 // several words plus a partial tail word
	b := newBitset(n)
	// A pattern that straddles every boundary class: word edges, both
	// sides of them, mid-word runs, and the last partial word.
	for _, i := range []int32{0, 1, 62, 63, 64, 65, 100, 126, 127, 128, 191, 192, 255, 256, 298, 299} {
		b.set(i)
	}
	ref := func(lo, hi int32) []int32 {
		var out []int32
		for i := lo; i < hi; i++ {
			if i >= 0 && int(i) < n && b.get(i) {
				out = append(out, i)
			}
		}
		return out
	}
	cases := []struct {
		name   string
		lo, hi int32
	}{
		{"full-range", 0, n},
		{"empty-window", 100, 100},
		{"inverted-window", 200, 100},
		{"single-bit-window", 63, 64},
		{"single-clear-window", 40, 41},
		{"mid-word-both-ends", 10, 50},
		{"mid-word-across-boundary", 62, 66},
		{"aligned-lo", 64, 100},
		{"aligned-hi", 100, 128},
		{"aligned-both", 64, 192},
		{"word-exact", 128, 192},
		{"tail-partial-word", 256, n},
		{"hi-at-last-bit", 290, 299},
		{"hi-past-last-set", 299, n},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var got []int32
			b.forEachIn(tc.lo, tc.hi, func(i int32) { got = append(got, i) })
			want := ref(tc.lo, tc.hi)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("forEachIn(%d, %d) = %v, want %v", tc.lo, tc.hi, got, want)
			}
		})
	}
	// Disjoint windows must tile exactly to a full enumeration — the
	// sharded phases' partition contract.
	var tiled []int32
	for _, edge := range [][2]int32{{0, 37}, {37, 64}, {64, 65}, {65, 192}, {192, n}} {
		b.forEachIn(edge[0], edge[1], func(i int32) { tiled = append(tiled, i) })
	}
	var full []int32
	b.forEach(func(i int32) { full = append(full, i) })
	if !reflect.DeepEqual(tiled, full) {
		t.Errorf("tiled windows enumerate %v, full scan %v", tiled, full)
	}
}

// TestBitsetAppendTo: appendTo is forEach flattened into a slice
// append — the conflict-partitioned move builds its seed order with it
// every cycle, so it must agree with forEach exactly and respect the
// destination's existing contents.
func TestBitsetAppendTo(t *testing.T) {
	const n = 300
	b := newBitset(n)
	for _, i := range []int32{0, 1, 63, 64, 127, 128, 200, 298, 299} {
		b.set(i)
	}
	var want []int32
	b.forEach(func(i int32) { want = append(want, i) })
	got := b.appendTo(nil)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("appendTo(nil) = %v, want %v", got, want)
	}
	pre := b.appendTo([]int32{-7})
	if len(pre) != len(want)+1 || pre[0] != -7 || !reflect.DeepEqual(pre[1:], want) {
		t.Errorf("appendTo kept-prefix = %v, want [-7 %v]", pre, want)
	}
	if out := newBitset(n).appendTo(nil); len(out) != 0 {
		t.Errorf("appendTo on empty set = %v, want none", out)
	}
}
