package sim

import (
	"testing"

	"turnmodel/internal/metrics"
	"turnmodel/internal/routing"
	"turnmodel/internal/topology"
	"turnmodel/internal/traffic"
)

// TestAllocateZeroAllocs: the allocation phase must perform zero heap
// allocations per cycle in steady state — candidate caches, the waiting
// buffer and the filter scratch are all engine-owned and reused. The
// worklist is forced full each run so the measurement covers the
// worst-case full scan, not just the event-driven fast path. The
// invariant holds both without metrics (the production hot path pays
// only nil checks) and with a collector attached (counters are
// preallocated slices, incremented in place).
func TestAllocateZeroAllocs(t *testing.T) {
	for _, tc := range []struct {
		name   string
		m      *metrics.Collector
		shards int
	}{
		{"metrics-disabled", nil, 0},
		{"metrics-enabled", metrics.New(metrics.Config{Interval: 100}), 0},
		// The sharded phase must stay allocation-free too: per-shard
		// scratch and commit logs are reused, and the worker pool is
		// persistent (no goroutine spawns per cycle).
		{"metrics-enabled-sharded", metrics.New(metrics.Config{Interval: 100}), 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			topo := topology.NewMesh(8, 8)
			e, err := New(Config{
				Algorithm:     routing.NewNegativeFirst(topo),
				Pattern:       traffic.NewUniform(topo),
				OfferedLoad:   2.0,
				WarmupCycles:  1 << 30, // never start measuring: histograms may allocate
				MeasureCycles: 1,
				Seed:          3,
				Metrics:       tc.m,
				Shards:        tc.shards,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			for i := 0; i < 2000; i++ {
				e.step()
				e.cycle++
			}
			if e.inFlight == 0 {
				t.Fatal("no traffic in flight after warmup; test would be vacuous")
			}
			avg := testing.AllocsPerRun(200, func() {
				e.allocWork.setAll(e.topo.Nodes())
				e.allocate()
			})
			if avg != 0 {
				t.Errorf("allocate() performs %.2f heap allocations per cycle, want 0", avg)
			}
		})
	}
}

// TestWholeRunZeroAllocs extends the per-phase guard to entire cycles:
// once warmed up, full simulation steps — generation, allocation,
// movement, delivery, statistics — run allocation-free in steady state.
// Packet recycling, the source-queue rings, the compiled route table
// and the precomputed length table remove the per-message and
// per-header allocations; what remains is rare amortized growth (a new
// latency-histogram bucket, a metrics time-series append, a freelist
// refill after a new in-flight high-water mark), so the guard allows a
// small epsilon per batch instead of demanding exactly zero.
func TestWholeRunZeroAllocs(t *testing.T) {
	for _, tc := range []struct {
		name   string
		m      *metrics.Collector
		shards int
		multVC bool
	}{
		{"metrics-disabled", nil, 0, false},
		{"metrics-enabled", metrics.New(metrics.Config{Interval: 100}), 0, false},
		// Sharded steady state must hold the same bound: the worker pool
		// parks between cycles instead of respawning, and the deferred
		// commit logs grow to their high-water mark then stop.
		{"metrics-enabled-sharded", metrics.New(metrics.Config{Interval: 100}), 3, false},
		// Multi-VC sharded: the conflict-partitioned move's union-find,
		// seed order, component assignment and op logs are all persistent
		// scratch reset via dirty lists — steady state must not allocate.
		{"multi-vc-sharded", nil, 3, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{
				OfferedLoad:   2.0,
				WarmupCycles:  1,
				MeasureCycles: 1 << 30,
				Seed:          3,
				Metrics:       tc.m,
				Shards:        tc.shards,
			}
			if tc.multVC {
				topo := topology.NewTorus(8, 2)
				cfg.VCAlgorithm = routing.NewDatelineDOR(topo)
				cfg.Pattern = traffic.NewUniform(topo)
			} else {
				topo := topology.NewMesh(8, 8)
				cfg.Algorithm = routing.NewNegativeFirst(topo)
				cfg.Pattern = traffic.NewUniform(topo)
			}
			e, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			// Mirror the run loop's measurement-window switch, then warm
			// until the histogram buckets, ring high-water marks and
			// freelist cover the steady state.
			e.stats.measuring = true
			e.stats.windowStart = e.cycle
			e.stats.backlogStartFlits = e.backlogFlits()
			e.stats.backlogStartValid = true
			for i := 0; i < 3000; i++ {
				e.step()
				e.cycle++
			}
			if e.inFlight == 0 {
				t.Fatal("no traffic in flight after warmup; test would be vacuous")
			}
			const batch = 50
			avg := testing.AllocsPerRun(20, func() {
				for i := 0; i < batch; i++ {
					e.step()
					e.cycle++
				}
			})
			// The pre-arena engine allocated on every generated message
			// and routed header — thousands per batch at this load;
			// steady state now costs at most a couple of amortized
			// growth events.
			if avg > 2 {
				t.Errorf("warmed-up run performs %.2f heap allocations per %d-cycle batch, want <= 2", avg, batch)
			}
		})
	}
}

// fanVC widens a single-VC relation to vcs virtual channels per
// direction, enough to push an 8-cube past 64 virtual ports per router.
type fanVC struct {
	routing.Algorithm
	vcs int
}

func (f fanVC) NumVCs() int { return f.vcs }

func (f fanVC) CandidatesVC(cur, dst topology.NodeID, in routing.VCInPort, buf []routing.VirtualDirection) []routing.VirtualDirection {
	var ip routing.InPort
	if in.Injected {
		ip = routing.Injected
	} else {
		ip = routing.Arrived(in.Dir)
	}
	var tmp [16]topology.Direction
	for _, d := range f.Algorithm.Candidates(cur, dst, ip, tmp[:0]) {
		for vc := 0; vc < f.vcs; vc++ {
			buf = append(buf, routing.VirtualDirection{Dir: d, VC: vc})
		}
	}
	return buf
}

// TestManyVirtualPorts: an 8-cube with 4 virtual channels has
// 2·8·4+1 = 65 virtual ports per router, which overflowed the engine's
// old fixed-size 64-entry waiting buffer (the engine refused such
// configurations). The waiting set is now sized from vport.
func TestManyVirtualPorts(t *testing.T) {
	topo := topology.NewHypercube(8)
	res, err := Run(Config{
		VCAlgorithm: fanVC{routing.NewDimensionOrder(topo), 4},
		Script: []ScriptedMessage{
			{Cycle: 0, Src: 0, Dst: 255, Length: 20},
			{Cycle: 0, Src: 255, Dst: 0, Length: 20},
			{Cycle: 5, Src: 3, Dst: 252, Length: 20},
		},
	})
	if err != nil {
		t.Fatalf("New rejected a 65-virtual-port configuration: %v", err)
	}
	if res.Deadlocked || res.PacketsDelivered != 3 {
		t.Errorf("bad 65-port run: %+v", res)
	}
}
