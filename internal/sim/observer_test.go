package sim

import (
	"testing"

	"turnmodel/internal/routing"
	"turnmodel/internal/topology"
	"turnmodel/internal/traffic"
)

// TestObserverEventConsistency: events reconcile with the run's results
// — one Inject and one Deliver per packet, Forward counts equal to the
// flits' total hop work, and the occupancy recorder's hottest channel
// agrees with the engine's.
func TestObserverEventConsistency(t *testing.T) {
	topo := topology.NewMesh(6, 6)
	occ := NewChannelOccupancy(topo)
	var injects, delivers, forwards, headForwards int
	var hopSum int
	obs := ObserverFuncs{
		InjectFn: func(_ int64, src, dst topology.NodeID, length int) {
			injects++
			if src == dst || length < 1 {
				t.Error("bad inject event")
			}
		},
		AllocateFn: occ.Observer().(ObserverFuncs).AllocateFn, // nil is fine
		ForwardFn: func(cycle int64, ch topology.Channel, vc int, head, tail bool) {
			forwards++
			if head {
				headForwards++
			}
			if vc != 0 {
				t.Error("single-channel run produced a nonzero VC event")
			}
			occ.Observer().(ObserverFuncs).ForwardFn(cycle, ch, vc, head, tail)
		},
		DeliverFn: func(_ int64, _, _ topology.NodeID, lat int64, hops int) {
			delivers++
			hopSum += hops
			if lat <= 0 {
				t.Error("nonpositive latency event")
			}
		},
	}
	var script []ScriptedMessage
	total := 0
	for i := 0; i < 30; i++ {
		src := topology.NodeID((i * 7) % topo.Nodes())
		dst := topology.NodeID((i*11 + 5) % topo.Nodes())
		if src == dst {
			continue
		}
		script = append(script, ScriptedMessage{Cycle: int64(i), Src: src, Dst: dst, Length: 6})
		total++
	}
	res, err := Run(Config{
		Algorithm: routing.NewWestFirst(topo),
		Script:    script,
		Observer:  obs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocked {
		t.Fatal("deadlock")
	}
	if injects != total || delivers != total {
		t.Errorf("injects=%d delivers=%d, want %d", injects, delivers, total)
	}
	// Every flit of every packet crosses each network channel of its
	// path exactly once: forwards = sum over packets of length*hops.
	wantForwards := 0
	for _, m := range script {
		wantForwards += m.Length * topo.Distance(m.Src, m.Dst)
	}
	if forwards != wantForwards {
		t.Errorf("forward events %d, want %d", forwards, wantForwards)
	}
	if hopSum*6 != wantForwards {
		t.Errorf("delivered hop sum inconsistent: %d", hopSum)
	}
	if headForwards*6 != wantForwards {
		t.Errorf("head forwards %d inconsistent", headForwards)
	}
	if occ.Total() != int64(wantForwards) {
		t.Errorf("occupancy total %d, want %d", occ.Total(), wantForwards)
	}
	_, hottestCount := occ.Hottest()
	if hottestCount <= 0 {
		t.Error("no hottest channel recorded")
	}
}

// TestObserverMatchesAnalyticHotChannel: with an occupancy observer on
// transpose traffic, the recorded flit distribution's hottest channel
// carries a count close to utilization * cycles reported by the engine.
func TestObserverUtilizationAgreement(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	occ := NewChannelOccupancy(topo)
	res, err := Run(Config{
		Algorithm:     routing.NewDimensionOrder(topo),
		Pattern:       traffic.NewMeshTranspose(topo),
		OfferedLoad:   1.5,
		WarmupCycles:  1000,
		MeasureCycles: 5000,
		Seed:          91,
		Observer:      occ.Observer(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// The observer sees warmup too, so its count is at least the
	// measurement-window count implied by the utilization.
	_, count := occ.Hottest()
	implied := res.MaxChannelUtilization * 5000
	if float64(count) < implied {
		t.Errorf("observer hottest count %d below measured-window flits %.0f", count, implied)
	}
}
