package cli

import (
	"strings"
	"testing"

	"turnmodel/internal/sim"
)

func TestParseTopology(t *testing.T) {
	good := map[string]string{
		"mesh16x16": "16x16 mesh",
		"mesh3x4x5": "3x4x5 mesh",
		"cube8":     "binary 8-cube",
		"torus8x2":  "8-ary 2-cube",
	}
	for spec, want := range good {
		topo, err := ParseTopology(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if topo.String() != want {
			t.Errorf("%s parsed to %v, want %s", spec, topo, want)
		}
	}
	for _, bad := range []string{"", "grid4x4", "mesh", "meshAxB", "mesh1x4", "cube0", "cubeX", "torus4", "torus4x4x4"} {
		if _, err := ParseTopology(bad); err == nil {
			t.Errorf("%q should fail", bad)
		}
	}
}

func TestParseAlgorithm(t *testing.T) {
	mesh, _ := ParseTopology("mesh8x8")
	for _, name := range []string{"xy", "west-first", "nl", "negative-first", "abonf", "abopl", "fully-adaptive"} {
		alg, err := ParseAlgorithm(mesh, name)
		if err != nil || alg == nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := ParseAlgorithm(mesh, "bogus"); err == nil || !strings.Contains(err.Error(), "known:") {
		t.Errorf("unknown algorithm should list the options, got %v", err)
	}
	// Constructor panics surface as errors, not crashes.
	mesh3, _ := ParseTopology("mesh4x4x4")
	if _, err := ParseAlgorithm(mesh3, "west-first"); err == nil {
		t.Error("west-first on a 3D mesh should error")
	}
	torus, _ := ParseTopology("torus8x2")
	if _, err := ParseAlgorithm(mesh, "negative-first-torus"); err == nil {
		t.Error("negative-first-torus on a mesh should error")
	}
	if _, err := ParseAlgorithm(torus, "negative-first-torus"); err != nil {
		t.Errorf("negative-first-torus on a torus: %v", err)
	}
}

func TestParseVCAlgorithm(t *testing.T) {
	torus, _ := ParseTopology("torus8x2")
	mesh, _ := ParseTopology("mesh8x8")
	if v, err := ParseVCAlgorithm(torus, "dateline-dor"); err != nil || v.NumVCs() != 2 {
		t.Errorf("dateline: %v %v", v, err)
	}
	if v, err := ParseVCAlgorithm(mesh, "double-y"); err != nil || v.NumVCs() != 2 {
		t.Errorf("double-y: %v %v", v, err)
	}
	if _, err := ParseVCAlgorithm(mesh, "dateline-dor"); err == nil {
		t.Error("dateline on a mesh should error")
	}
	if v, err := ParseVCAlgorithm(mesh, "west-first"); err != nil || v.NumVCs() != 1 {
		t.Errorf("plain algorithm should adapt to one VC: %v %v", v, err)
	}
}

func TestParseTraffic(t *testing.T) {
	mesh, _ := ParseTopology("mesh16x16")
	cube, _ := ParseTopology("cube8")
	for _, name := range []string{"uniform", "transpose", "bit-complement", "hotspot", "tornado"} {
		if _, err := ParseTraffic(mesh, name); err != nil {
			t.Errorf("%s on mesh: %v", name, err)
		}
	}
	for _, name := range []string{"reverse-flip", "bit-reversal", "shuffle", "matrix-transpose"} {
		if _, err := ParseTraffic(cube, name); err != nil {
			t.Errorf("%s on cube: %v", name, err)
		}
	}
	if _, err := ParseTraffic(mesh, "nonsense"); err == nil {
		t.Error("unknown pattern should fail")
	}
	// Transpose dispatches by topology kind.
	p, _ := ParseTraffic(cube, "transpose")
	if p.Name() != "matrix-transpose" {
		t.Errorf("cube transpose resolved to %s", p.Name())
	}
}

func TestParseLoads(t *testing.T) {
	loads, err := ParseLoads("0.5:2.0:0.5")
	if err != nil || len(loads) != 4 || loads[0] != 0.5 || loads[3] != 2.0 {
		t.Errorf("range parse: %v %v", loads, err)
	}
	loads, err = ParseLoads("1, 2.5, 3")
	if err != nil || len(loads) != 3 || loads[1] != 2.5 {
		t.Errorf("list parse: %v %v", loads, err)
	}
	for _, bad := range []string{"", "1:2", "2:1:0.5", "1:2:-1", "0:1:0.5", "a,b", "-1"} {
		if _, err := ParseLoads(bad); err == nil {
			t.Errorf("%q should fail", bad)
		}
	}
}

func TestParsePolicies(t *testing.T) {
	if p, err := ParsePolicy("xy"); err != nil || p != sim.LowestDimension {
		t.Errorf("xy policy: %v %v", p, err)
	}
	if p, err := ParsePolicy("random"); err != nil || p != sim.RandomPolicy {
		t.Errorf("random policy: %v %v", p, err)
	}
	if _, err := ParsePolicy("zigzag"); err == nil {
		t.Error("unknown output policy should fail")
	}
	if p, err := ParseInputPolicy("fcfs"); err != nil || p != sim.LocalFCFS {
		t.Errorf("fcfs: %v %v", p, err)
	}
	if p, err := ParseInputPolicy("port"); err != nil || p != sim.PortOrder {
		t.Errorf("port: %v %v", p, err)
	}
	if _, err := ParseInputPolicy("psychic"); err == nil {
		t.Error("unknown input policy should fail")
	}
}

func TestAlgorithmNamesAllParse(t *testing.T) {
	mesh, _ := ParseTopology("mesh8x8")
	torus, _ := ParseTopology("torus8x2")
	for _, name := range AlgorithmNames() {
		if _, errMesh := ParseAlgorithm(mesh, name); errMesh != nil {
			if _, errTorus := ParseAlgorithm(torus, name); errTorus != nil {
				t.Errorf("%s parses on neither mesh nor torus: %v / %v", name, errMesh, errTorus)
			}
		}
	}
}
