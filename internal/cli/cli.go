// Package cli parses the shared command-line vocabulary of the cmd/
// tools: topology specs, algorithm names, traffic patterns and load
// ranges.
package cli

import (
	"fmt"
	"strconv"
	"strings"

	"turnmodel/internal/routing"
	"turnmodel/internal/sim"
	"turnmodel/internal/topology"
	"turnmodel/internal/traffic"
)

// ParseTopology parses "meshAxB[xC...]", "cubeN" (binary N-cube) or
// "torusKxN" (k-ary n-cube).
func ParseTopology(s string) (*topology.Topology, error) {
	switch {
	case strings.HasPrefix(s, "mesh"):
		dims, err := parseDims(s[4:])
		if err != nil {
			return nil, err
		}
		return topology.NewMesh(dims...), nil
	case strings.HasPrefix(s, "cube"):
		n, err := strconv.Atoi(s[4:])
		if err != nil || n < 1 {
			return nil, fmt.Errorf("cli: bad hypercube spec %q", s)
		}
		return topology.NewHypercube(n), nil
	case strings.HasPrefix(s, "torus"):
		dims, err := parseDims(s[5:])
		if err != nil || len(dims) != 2 {
			return nil, fmt.Errorf("cli: torus spec must be torusKxN (k-ary n-cube), got %q", s)
		}
		return topology.NewTorus(dims[0], dims[1]), nil
	}
	return nil, fmt.Errorf("cli: unknown topology %q", s)
}

func parseDims(s string) ([]int, error) {
	var dims []int
	for _, p := range strings.Split(s, "x") {
		v, err := strconv.Atoi(p)
		if err != nil || v < 2 {
			return nil, fmt.Errorf("cli: bad dimension %q", p)
		}
		dims = append(dims, v)
	}
	if len(dims) == 0 {
		return nil, fmt.Errorf("cli: no dimensions in %q", s)
	}
	return dims, nil
}

// AlgorithmNames lists the accepted -alg values.
func AlgorithmNames() []string {
	return []string{
		"xy", "e-cube", "dor", "dimension-order",
		"west-first", "wf", "north-last", "nl",
		"negative-first", "nf", "p-cube",
		"abonf", "abopl",
		"negative-first-torus", "wrap-first-hop-nf", "torus-dor",
		"fully-adaptive",
	}
}

// capture converts constructor panics (e.g. west-first on a 3D mesh)
// into errors.
func capture[T any](fn func() T) (out T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("cli: %v", r)
		}
	}()
	return fn(), nil
}

// ParseAlgorithm resolves an algorithm name on t.
func ParseAlgorithm(t *topology.Topology, s string) (routing.Algorithm, error) {
	return capture(func() routing.Algorithm { return mustAlgorithm(t, s) })
}

func mustAlgorithm(t *topology.Topology, s string) routing.Algorithm {
	switch s {
	case "xy", "e-cube", "dor", "dimension-order":
		return routing.NewDimensionOrder(t)
	case "west-first", "wf":
		return routing.NewWestFirst(t)
	case "north-last", "nl":
		return routing.NewNorthLast(t)
	case "negative-first", "nf", "p-cube":
		return routing.NewNegativeFirst(t)
	case "abonf":
		return routing.NewABONF(t, t.NumDims()-1)
	case "abopl":
		return routing.NewABOPL(t, 0)
	case "negative-first-torus":
		return routing.NewNegativeFirstTorus(t)
	case "wrap-first-hop-nf":
		return routing.NewWrapFirstHop(routing.NewNegativeFirst(t))
	case "torus-dor":
		return routing.NewTorusDOR(t)
	case "fully-adaptive":
		return routing.NewFullyAdaptive(t)
	}
	panic(fmt.Sprintf("unknown algorithm %q (known: %s)", s, strings.Join(AlgorithmNames(), ", ")))
}

// ParseVCAlgorithm resolves names that denote virtual-channel relations
// ("dateline-dor", "double-y"), or falls back to ParseAlgorithm wrapped
// with a single virtual channel.
func ParseVCAlgorithm(t *topology.Topology, s string) (routing.VCAlgorithm, error) {
	switch s {
	case "dateline-dor":
		return capture(func() routing.VCAlgorithm { return routing.NewDatelineDOR(t) })
	case "double-y":
		return capture(func() routing.VCAlgorithm { return routing.NewDoubleY(t) })
	}
	alg, err := ParseAlgorithm(t, s)
	if err != nil {
		return nil, err
	}
	return routing.AsVC(alg), nil
}

// ParseTraffic resolves a traffic pattern name on t.
func ParseTraffic(t *topology.Topology, s string) (traffic.Pattern, error) {
	switch s {
	case "uniform":
		return traffic.NewUniform(t), nil
	case "transpose", "matrix-transpose":
		if t.IsHypercube() {
			return traffic.NewHypercubeTranspose(t), nil
		}
		return traffic.NewMeshTranspose(t), nil
	case "reverse-flip":
		return traffic.NewReverseFlip(t), nil
	case "bit-complement":
		return traffic.NewBitComplement(t), nil
	case "hotspot":
		return traffic.NewHotspot(t, 0, 0.1), nil
	case "tornado":
		return traffic.NewTornado(t), nil
	case "bit-reversal":
		return traffic.NewBitReversal(t), nil
	case "shuffle":
		return traffic.NewShuffle(t), nil
	}
	return nil, fmt.Errorf("cli: unknown traffic pattern %q", s)
}

// ParseLoads parses "lo:hi:step" or a comma-separated list of offered
// loads in flits/us/node.
func ParseLoads(s string) ([]float64, error) {
	if strings.Contains(s, ":") {
		parts := strings.Split(s, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("cli: range must be lo:hi:step, got %q", s)
		}
		lo, err1 := strconv.ParseFloat(parts[0], 64)
		hi, err2 := strconv.ParseFloat(parts[1], 64)
		step, err3 := strconv.ParseFloat(parts[2], 64)
		if err1 != nil || err2 != nil || err3 != nil || step <= 0 || hi < lo || lo <= 0 {
			return nil, fmt.Errorf("cli: bad load range %q", s)
		}
		var loads []float64
		for l := lo; l <= hi+1e-9; l += step {
			loads = append(loads, l)
		}
		return loads, nil
	}
	var loads []float64
	for _, p := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("cli: bad load %q", p)
		}
		loads = append(loads, v)
	}
	return loads, nil
}

// ParsePolicy resolves an output selection policy name.
func ParsePolicy(s string) (sim.OutputPolicy, error) {
	switch s {
	case "xy", "lowest":
		return sim.LowestDimension, nil
	case "high", "highest":
		return sim.HighestDimension, nil
	case "random":
		return sim.RandomPolicy, nil
	}
	return 0, fmt.Errorf("cli: unknown output policy %q", s)
}

// ParseInputPolicy resolves an input selection policy name.
func ParseInputPolicy(s string) (sim.InputPolicy, error) {
	switch s {
	case "fcfs", "local-fcfs":
		return sim.LocalFCFS, nil
	case "port", "port-order":
		return sim.PortOrder, nil
	case "random":
		return sim.RandomInput, nil
	}
	return 0, fmt.Errorf("cli: unknown input policy %q", s)
}
