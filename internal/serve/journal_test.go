package serve

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"turnmodel/internal/exp"
)

// journalCfg is the fast-replay store configuration used by the
// journal tests: single worker, millisecond backoff.
func journalCfg(path string) Config {
	return Config{Jobs: 1, QueueDepth: 8, JournalPath: path, RetryBackoff: time.Millisecond}
}

// keyAndID computes the content address the store would assign req.
func keyAndID(t *testing.T, req JobRequest) (string, string) {
	t.Helper()
	f, err := req.validate()
	if err != nil {
		t.Fatal(err)
	}
	key := exp.CacheKey(f, req.options())
	return key, jobID(key)
}

// TestJournalReplayServesCompletedResult: a job completed under one
// store is served byte-identically — status, result and SSE stream —
// by a second store replaying the same journal, without running a
// single leaf.
func TestJournalReplayServesCompletedResult(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	store1 := newTestStore(t, journalCfg(path))
	ts1 := httptest.NewServer(NewServer(store1, nil, nil))
	defer ts1.Close()

	req := quickReq(2001)
	sr, resp := postJob(t, ts1, req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	waitState(t, ts1, sr.ID, StateDone)
	want := getBody(t, ts1, sr.ResultURL)
	store1.Close()

	store2 := newTestStore(t, journalCfg(path))
	ts2 := httptest.NewServer(NewServer(store2, nil, nil))
	defer ts2.Close()
	st := waitState(t, ts2, sr.ID, StateDone)
	if !st.Replayed {
		t.Errorf("replayed job not flagged: %+v", st)
	}
	if st.LeavesRun != 0 {
		t.Errorf("replayed result ran %d leaves, want 0", st.LeavesRun)
	}
	if got := getBody(t, ts2, sr.ResultURL); !bytes.Equal(got, want) {
		t.Errorf("replayed result differs:\nreplayed: %s\noriginal: %s", got, want)
	}
	if n := store2.replayedResults.Load(); n != 1 {
		t.Errorf("replayedResults = %d, want 1", n)
	}

	// The SSE stream of a replayed job still ends in the identical
	// result event.
	streamResp, err := http.Get(ts2.URL + "/v1/jobs/" + sr.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	stream, _ := io.ReadAll(streamResp.Body)
	streamResp.Body.Close()
	if got := extractSSEResult(t, string(stream)); got != string(want) {
		t.Errorf("replayed stream result differs from original:\n%q\n%q", got, want)
	}

	// Resubmitting the same body dedups onto the replayed done job.
	again, resp2 := postJob(t, ts2, req)
	if resp2.StatusCode != http.StatusOK || !again.Existing || again.ID != sr.ID {
		t.Errorf("resubmit after replay = %d %+v, want 200/existing/%s", resp2.StatusCode, again, sr.ID)
	}
}

// getBody fetches a URL off the test server and returns the body.
func getBody(t *testing.T, ts *httptest.Server, url string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestJournalReplayRequeuesInterruptedJob is the in-process half of the
// crash contract (cmd/servestorm SIGKILLs a real process): a journal
// snapshot taken mid-run — submit and start entries, no terminal —
// replays as a re-queued job whose re-run produces figure JSON
// byte-identical to an uninterrupted in-process render.
func TestJournalReplayRequeuesInterruptedJob(t *testing.T) {
	dir := t.TempDir()
	livePath := filepath.Join(dir, "live.jsonl")
	snapPath := filepath.Join(dir, "snapshot.jsonl")

	store1, err := NewStore(journalCfg(livePath))
	if err != nil {
		t.Fatal(err)
	}
	// The hook stalls the job mid-execution (after the start entry hit
	// the journal) until the "crash snapshot" is copied.
	snapped := make(chan struct{})
	proceed := make(chan struct{})
	store1.testHook = func(j *Job) {
		close(snapped)
		<-proceed
	}
	req := quickReq(2002)
	j, _, err := store1.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	<-snapped
	data, err := os.ReadFile(livePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snapPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	// Let the original run die as a cancel so its result never lands
	// in the process-global sweep cache (the replayed run below must
	// really re-run its leaves).
	store1.Cancel(j.ID)
	close(proceed)
	store1.Close()

	store2 := newTestStore(t, journalCfg(snapPath))
	ts := httptest.NewServer(NewServer(store2, nil, nil))
	defer ts.Close()
	st := waitState(t, ts, j.ID, StateDone)
	if !st.Replayed || st.Attempt != 2 {
		t.Errorf("replayed re-run status = %+v, want replayed attempt 2", st)
	}
	if st.LeavesRun == 0 {
		t.Errorf("replayed re-run served from cache; want a genuine re-run")
	}
	if n := store2.replayedJobs.Load(); n != 1 {
		t.Errorf("replayedJobs = %d, want 1", n)
	}
	if n := store2.retries.Load(); n != 1 {
		t.Errorf("retries = %d, want 1", n)
	}

	// Byte-identity with an uninterrupted render of the same config.
	f, _ := req.validate()
	sweeps, err := exp.RunFigure(f, req.options())
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := exp.WriteFigureJSON(&want, f, sweeps); err != nil {
		t.Fatal(err)
	}
	if got := getBody(t, ts, "/v1/jobs/"+j.ID+"/result"); !bytes.Equal(got, want.Bytes()) {
		t.Errorf("re-run result differs from uninterrupted render:\ngot:  %s\nwant: %s", got, want.Bytes())
	}
}

// TestJournalPoisonedNeverReruns: a poisoned entry quarantines the job
// across restarts — replay neither re-queues nor re-executes it, and a
// resubmission of the same configuration returns the poisoned job.
func TestJournalPoisonedNeverReruns(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	store1, err := NewStore(journalCfg(path))
	if err != nil {
		t.Fatal(err)
	}
	store1.testHook = func(j *Job) { panic("poisoned input") }
	req := quickReq(2003)
	j, _, err := store1.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitJobState(t, j, StatePoisoned)
	store1.Close()

	store2, err := NewStore(journalCfg(path))
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	executed := false
	store2.testHook = func(*Job) { executed = true }
	got, ok := store2.Get(j.ID)
	if !ok {
		t.Fatal("poisoned job missing after replay")
	}
	st := got.Status()
	if st.State != StatePoisoned || !st.Replayed {
		t.Fatalf("replayed poisoned status = %+v", st)
	}
	if !strings.Contains(st.Error, "panic: poisoned input") || !strings.Contains(st.Stack, "goroutine") {
		t.Errorf("poisoned job lost its panic record: %+v", st)
	}
	// The quarantine is sticky: same body, same (poisoned) job.
	again, existing, err := store2.Submit(req)
	if err != nil || !existing || again.ID != j.ID {
		t.Fatalf("resubmit of poisoned config = (%v, %v, %v), want existing poisoned job", again, existing, err)
	}
	time.Sleep(50 * time.Millisecond) // a re-run would start by now
	if executed {
		t.Error("poisoned job was re-executed")
	}
	if n := store2.replayedJobs.Load(); n != 0 {
		t.Errorf("poisoned job was re-queued: replayedJobs = %d", n)
	}
}

// waitJobState polls a job directly (no HTTP) until it reaches want.
func waitJobState(t *testing.T, j *Job, want JobState) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for j.State() != want {
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s waiting for %s", j.ID, j.State(), want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestJournalRetryBudgetExhausted: a job whose journal already records
// RetryLimit interrupted executions is marked failed at replay instead
// of re-queued — the crash-loop bound — and the failure itself is
// journaled so the next replay agrees without re-deciding.
func TestJournalRetryBudgetExhausted(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	req := quickReq(2004)
	key, id := keyAndID(t, req)
	jl, _, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	jl.append(journalEntry{Type: "submit", ID: id, Key: key, Req: &req, Time: time.Now().UTC().Format(time.RFC3339Nano)})
	for a := 1; a <= 3; a++ {
		jl.append(journalEntry{Type: "start", ID: id, Attempt: a})
	}
	jl.Close()

	store := newTestStore(t, journalCfg(path))
	j, ok := store.Get(id)
	if !ok {
		t.Fatal("job missing after replay")
	}
	st := j.Status()
	if st.State != StateFailed || !strings.Contains(st.Error, "crash-replay budget exhausted") {
		t.Fatalf("over-budget job status = %+v, want failed", st)
	}
	if n := store.replayedJobs.Load(); n != 0 {
		t.Errorf("over-budget job still re-queued: replayedJobs = %d", n)
	}
	store.Close()

	// The failed terminal entry persisted: a third replay sees a
	// terminal job, not another budget decision.
	entries, err := readJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	_, states := foldJournal(entries)
	if got := states[id].State; got != StateFailed {
		t.Errorf("journal after budget exhaustion folds to %s, want failed", got)
	}
}

// TestJournalTornTailTolerated: a process killed mid-append leaves a
// torn (unterminated, unparsable) final line. Replay skips it, the
// interrupted job re-runs, and subsequent appends land on a fresh line
// rather than corrupting the torn one.
func TestJournalTornTailTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	req := quickReq(2005)
	key, id := keyAndID(t, req)
	jl, _, err := openJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	jl.append(journalEntry{Type: "submit", ID: id, Key: key, Req: &req, Time: time.Now().UTC().Format(time.RFC3339Nano)})
	jl.append(journalEntry{Type: "start", ID: id, Attempt: 1})
	jl.Close()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// The torn write: half a done entry, no newline.
	f.WriteString(`{"type":"done","id":"` + id + `","result":"{\"trunca`)
	f.Close()

	store := newTestStore(t, journalCfg(path))
	j, ok := store.Get(id)
	if !ok {
		t.Fatal("job missing after torn-tail replay")
	}
	waitJobState(t, j, StateDone)
	store.Close()

	// Every line after the torn one must still parse: the fold ends
	// terminal done with a genuine (non-truncated) result.
	entries, err := readJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	_, states := foldJournal(entries)
	st := states[id]
	if st.State != StateDone || !strings.HasSuffix(st.Result, "\n") || strings.Contains(st.Result, "trunca") {
		t.Errorf("fold after torn tail = state %s, result %q…", st.State, st.Result[:min(40, len(st.Result))])
	}
}

// TestSubmitRejectedNotJournaled: a 429'd submission must leave no
// journal trace — otherwise replay would resurrect a job whose client
// was told to retry elsewhere.
func TestSubmitRejectedNotJournaled(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	store := newTestStore(t, Config{Jobs: 1, QueueDepth: 1, JournalPath: path})
	a, _, err := store.Submit(longReq(2006))
	if err != nil {
		t.Fatal(err)
	}
	waitJobState(t, a, StateRunning)
	if _, _, err := store.Submit(longReq(2007)); err != nil { // queued
		t.Fatal(err)
	}
	rejected := longReq(2008)
	if _, _, err := store.Submit(rejected); err != ErrQueueFull {
		t.Fatalf("overflow submit err = %v, want ErrQueueFull", err)
	}
	store.Close()

	_, rejectedID := keyAndID(t, rejected)
	entries, err := readJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.ID == rejectedID {
			t.Fatalf("rejected submission reached the journal: %+v", e)
		}
	}
}
