package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"turnmodel/internal/metrics"
)

// Server is the HTTP face of a Store: the /v1/jobs API (submit,
// status, result, SSE stream, cancel), /metrics via a shared
// metrics.Registry, and the /healthz (liveness) and /readyz
// (readiness + load shedding) probes. It applies recovery and
// access-log middleware around every handler.
type Server struct {
	store *Store
	reg   *metrics.Registry
	mux   *http.ServeMux
	log   io.Writer
}

// NewServer wires a Store and a metrics registry into an http.Handler.
// The store's own counters are registered on reg (created when nil);
// logw receives one access-log line per request (nil disables).
func NewServer(store *Store, reg *metrics.Registry, logw io.Writer) *Server {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	reg.Register(store.WriteMetrics)
	s := &Server{store: store, reg: reg, mux: http.NewServeMux(), log: logw}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	// /healthz is pure liveness: the process serves HTTP. /readyz adds
	// readiness — journal replayed and the queue below the shed
	// threshold — flipping 503 before admission control starts handing
	// out hard 429s, so a load balancer drains a saturated instance
	// early.
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	s.mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		ok, reason := store.Ready()
		if !ok {
			errorJSON(w, http.StatusServiceUnavailable, reason)
			return
		}
		io.WriteString(w, "ok\n")
	})
	return s
}

// statusWriter captures the response code for the access log while
// forwarding Flush (SSE needs it).
type statusWriter struct {
	http.ResponseWriter
	code int
}

// WriteHeader records the status code.
func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying flusher, if any.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// ServeHTTP applies the middleware stack: panic recovery, then
// routing, then one access-log line.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
	defer func() {
		if p := recover(); p != nil {
			// Best effort: if the handler already wrote, the client sees
			// a truncated body instead.
			http.Error(sw, "internal error", http.StatusInternalServerError)
			if s.log != nil {
				fmt.Fprintf(s.log, "panic serving %s %s: %v\n", r.Method, r.URL.Path, p)
			}
		}
	}()
	s.mux.ServeHTTP(sw, r)
	if s.log != nil {
		fmt.Fprintf(s.log, "%s %s %d\n", r.Method, r.URL.Path, sw.code)
	}
}

// writeJSON renders v with a status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// errorJSON is the uniform error body.
func errorJSON(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// submitResponse is the POST /v1/jobs body.
type submitResponse struct {
	// ID is the content-addressed job ID; Existing marks a submission
	// answered with an already-known job for the same configuration.
	ID       string   `json:"id"`
	State    JobState `json:"state"`
	Existing bool     `json:"existing,omitempty"`
	// StreamURL and ResultURL are the follow-up endpoints.
	StreamURL string `json:"stream_url"`
	ResultURL string `json:"result_url"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		errorJSON(w, http.StatusBadRequest, "bad job body: "+err.Error())
		return
	}
	j, existing, err := s.store.Submit(req)
	switch {
	case err == ErrQueueFull:
		w.Header().Set("Retry-After", strconv.Itoa(s.store.RetryAfterSeconds()))
		errorJSON(w, http.StatusTooManyRequests, "job queue full; retry later")
		return
	case err == ErrClosed:
		errorJSON(w, http.StatusServiceUnavailable, "server shutting down")
		return
	case errors.Is(err, ErrJournal):
		// The write-ahead log is the durability contract; a request the
		// journal cannot record is a server fault, not a bad request.
		errorJSON(w, http.StatusInternalServerError, err.Error())
		return
	case err != nil:
		errorJSON(w, http.StatusBadRequest, err.Error())
		return
	}
	code := http.StatusAccepted
	if existing {
		code = http.StatusOK
	}
	writeJSON(w, code, submitResponse{
		ID:        j.ID,
		State:     j.State(),
		Existing:  existing,
		StreamURL: "/v1/jobs/" + j.ID + "/stream",
		ResultURL: "/v1/jobs/" + j.ID + "/result",
	})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.store.Jobs()})
}

// job resolves the {id} path value, writing the 404 itself.
func (s *Server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, ok := s.store.Get(r.PathValue("id"))
	if !ok {
		errorJSON(w, http.StatusNotFound, "unknown job "+r.PathValue("id"))
	}
	return j, ok
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	res, done := j.Result()
	if !done {
		st := j.Status()
		errorJSON(w, http.StatusConflict, fmt.Sprintf("job %s has no result: state=%s %s", j.ID, st.State, st.Error))
		return
	}
	// The stored bytes are exactly exp.WriteFigureJSON's output, so
	// HTTP clients get byte-identical results to an in-process run.
	w.Header().Set("Content-Type", "application/json")
	w.Write(res)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	s.store.Cancel(j.ID)
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// The registry buffers the whole exposition before writing, so a
	// failing exporter yields a clean 500 instead of a torn scrape that
	// Prometheus would half-ingest.
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := s.reg.WritePrometheus(w); err != nil {
		if s.log != nil {
			fmt.Fprintf(s.log, "metrics scrape: %v\n", err)
		}
		errorJSON(w, http.StatusInternalServerError, "metrics scrape failed: "+err.Error())
	}
}

// handleStream serves the job's event log as Server-Sent Events: every
// past event replays immediately, new ones stream as they happen, and
// a done job is followed by one "result" event carrying the full
// figure JSON. The stream ends at the terminal event, so a plain
// `curl -N` returns once the job finishes.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	fl, canFlush := w.(http.Flusher)
	if !canFlush {
		errorJSON(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	ctx := r.Context()
	// next selects on the request context directly, so a slow or
	// vanished client can never strand a waiter or leak a watcher
	// goroutine: when the connection drops, the wait unblocks and the
	// handler returns.
	idx := 0
	for {
		evs, complete := j.next(idx, ctx.Done())
		if ctx.Err() != nil {
			return
		}
		for _, ev := range evs {
			data, _ := json.Marshal(ev)
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
			if ev.Type == string(StateDone) {
				if res, ok := j.Result(); ok {
					writeSSEResult(w, res)
				}
			}
		}
		fl.Flush()
		idx += len(evs)
		if complete {
			return
		}
	}
}

// writeSSEResult emits the figure JSON as one SSE "result" event. SSE
// data may span lines via repeated data: fields; clients reassemble
// them joined with newlines.
func writeSSEResult(w io.Writer, res []byte) {
	io.WriteString(w, "event: result\n")
	for _, line := range strings.Split(strings.TrimRight(string(res), "\n"), "\n") {
		fmt.Fprintf(w, "data: %s\n", line)
	}
	io.WriteString(w, "\n")
}
