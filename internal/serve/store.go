package serve

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"turnmodel/internal/exp"
)

// ErrQueueFull is returned by Submit when the bounded job queue cannot
// admit another job; the HTTP layer maps it to 429 + Retry-After.
var ErrQueueFull = errors.New("serve: job queue full")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("serve: store closed")

// ErrJournal wraps journal write failures surfaced by Submit; the HTTP
// layer maps it to 500 rather than blaming the request.
var ErrJournal = errors.New("serve: journal write failed")

// errPanicked marks a run already recorded as poisoned by the panic
// quarantine; the caller must not add another terminal state.
var errPanicked = errors.New("serve: job panicked")

// Config sizes the job store.
type Config struct {
	// QueueDepth bounds the jobs admitted but not yet running; beyond
	// it Submit returns ErrQueueFull (HTTP 429). Default 16.
	QueueDepth int
	// Jobs is the number of jobs run concurrently. Default 1: a single
	// figure sweep already fans out across every core, so running jobs
	// serially maximizes per-job latency without idling the machine.
	Jobs int
	// Workers is the total leaf-simulation concurrency budget shared by
	// all running jobs (each job gets Workers/Jobs, and internal/exp
	// further clamps Workers x Shards to GOMAXPROCS). Default
	// GOMAXPROCS.
	Workers int
	// JournalPath, when non-empty, makes the store crash-safe: every
	// job transition is appended to this JSONL write-ahead log, and
	// NewStore replays it — completed results are served from the
	// journal, jobs that were queued or running at crash time are
	// re-queued, and poisoned jobs stay quarantined. Empty keeps the
	// store purely in-memory.
	JournalPath string
	// JobTimeout bounds every job's execution (requests can only
	// tighten it via timeout_seconds). Past the deadline the job stops
	// at its next cancellation poll and reports state "timeout". Zero
	// means no server-side bound.
	JobTimeout time.Duration
	// RetryLimit caps the total execution attempts of one job across
	// crash replays: a job whose attempt count reaches it is marked
	// failed at replay instead of re-queued — the bound on a job that
	// crashes the whole process deterministically. Default 3.
	RetryLimit int
	// RetryBackoff is the base of the capped exponential delay before
	// a crash-replayed job re-runs (base << (attempt-1), capped at
	// 30s). Default 500ms.
	RetryBackoff time.Duration
	// ShedThreshold is the queued-job count at which Ready flips false
	// (/readyz 503) so load balancers drain traffic before the queue
	// hard-fills into 429s. Default 3/4 of QueueDepth, minimum 1.
	ShedThreshold int
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.Jobs <= 0 {
		c.Jobs = 1
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.RetryLimit <= 0 {
		c.RetryLimit = 3
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 500 * time.Millisecond
	}
	if c.ShedThreshold <= 0 {
		c.ShedThreshold = max(1, c.QueueDepth*3/4)
	}
	return c
}

// Store owns the job table, the bounded admission queue and the worker
// pool that drains it. Jobs are content-addressed: submitting a body
// whose canonical configuration matches an existing non-replaceable
// job returns that job instead of creating one, and completed results
// are additionally backed by the internal/exp sweep cache and (when
// configured) the on-disk journal, so even a fresh Store re-serves
// known configurations without re-running leaf simulations.
type Store struct {
	cfg     Config
	perJob  int // leaf workers per running job
	queue   chan *Job
	stop    chan struct{}
	wg      sync.WaitGroup
	mu      sync.Mutex
	jobs    map[string]*Job
	closed  bool
	journal *journal
	ready   atomic.Bool
	// testHook, when non-nil, runs inside the panic quarantine before
	// the job executes; tests use it to inject panics and stalls.
	testHook func(*Job)

	running         atomic.Int64
	submitted       atomic.Int64 // admissions, deduped included
	deduped         atomic.Int64 // submissions answered with an existing job
	rejected        atomic.Int64 // ErrQueueFull admissions
	done            atomic.Int64
	failed          atomic.Int64
	canceled        atomic.Int64
	timeouts        atomic.Int64 // jobs that exceeded their deadline
	poisoned        atomic.Int64 // jobs quarantined after a panic
	replayedJobs    atomic.Int64 // interrupted jobs re-queued at startup
	replayedResults atomic.Int64 // completed results restored from the journal
	retries         atomic.Int64 // crash-replay re-runs (attempt > 1)
	cacheHits       atomic.Int64 // jobs completed without running any leaf
	leavesRun       atomic.Int64 // leaf simulations executed
	packetsDel      atomic.Int64 // packets delivered across completed jobs
}

// NewStore builds the store, replays the journal (when configured) and
// starts the job workers. Jobs interrupted by a crash are re-queued in
// their original submission order, with capped exponential backoff on
// repeated crashes and a hard attempt cap (Config.RetryLimit) so a job
// that deterministically kills the process cannot crash-loop forever.
func NewStore(cfg Config) (*Store, error) {
	cfg = cfg.withDefaults()
	s := &Store{
		cfg:    cfg,
		perJob: max(1, cfg.Workers/cfg.Jobs),
		stop:   make(chan struct{}),
		jobs:   make(map[string]*Job),
	}
	var requeue []*Job
	if cfg.JournalPath != "" {
		jl, entries, err := openJournal(cfg.JournalPath)
		if err != nil {
			return nil, err
		}
		s.journal = jl
		order, states := foldJournal(entries)
		for _, id := range order {
			st := states[id]
			j := restoredJob(id, st)
			s.jobs[id] = j
			switch {
			case j.State() == StateDone:
				s.replayedResults.Add(1)
			case !j.State().terminal():
				requeue = append(requeue, j)
			}
		}
	}
	// The queue must absorb every replayed job even when the backlog
	// exceeds the configured depth; fresh admissions still cap at
	// QueueDepth via Submit's explicit length check.
	s.queue = make(chan *Job, max(cfg.QueueDepth, len(requeue)))
	now := time.Now()
	for _, j := range requeue {
		if j.attempt >= cfg.RetryLimit {
			// The journal records RetryLimit interrupted executions:
			// treat the configuration as deterministically fatal to the
			// process and stop retrying.
			s.terminalize(j, StateFailed,
				fmt.Sprintf("crash-replay budget exhausted after %d attempts", j.attempt), "")
			s.failed.Add(1)
			continue
		}
		if j.attempt > 0 {
			j.notBefore = now.Add(replayBackoff(cfg.RetryBackoff, j.attempt))
			s.retries.Add(1)
		}
		s.replayedJobs.Add(1)
		s.queue <- j
	}
	s.wg.Add(cfg.Jobs)
	for i := 0; i < cfg.Jobs; i++ {
		go s.worker()
	}
	s.ready.Store(true)
	return s, nil
}

// replayBackoff is the delay before a job's attempt-th re-run:
// base << (attempt-1), capped at 30 seconds.
func replayBackoff(base time.Duration, attempt int) time.Duration {
	const cap = 30 * time.Second
	if attempt > 8 {
		return cap
	}
	d := base << (attempt - 1)
	if d > cap {
		return cap
	}
	return d
}

// Ready reports whether the store should receive traffic, with a
// reason when not: the journal must have replayed (NewStore returned)
// and the queue must sit below the shed threshold. Flipping not-ready
// at the threshold lets load balancers drain a saturated instance
// before submissions start bouncing off the hard QueueDepth 429s.
func (s *Store) Ready() (bool, string) {
	if !s.ready.Load() {
		return false, "store not accepting jobs"
	}
	if n := len(s.queue); n >= s.cfg.ShedThreshold {
		return false, fmt.Sprintf("shedding load: %d queued >= threshold %d", n, s.cfg.ShedThreshold)
	}
	return true, "ok"
}

// journalAppend forwards to the journal (a nil journal is a no-op).
func (s *Store) journalAppend(e journalEntry) error {
	return s.journal.append(e)
}

// Submit validates and admits a job. The bool reports whether the
// returned job already existed (dedup or finished result); a false
// return means a fresh job was queued. ErrQueueFull means the caller
// should retry later; ErrJournal wraps a write-ahead-log failure; any
// other error is a bad request.
func (s *Store) Submit(req JobRequest) (*Job, bool, error) {
	f, err := req.validate()
	if err != nil {
		return nil, false, err
	}
	key := exp.CacheKey(f, req.options())
	id := jobID(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false, ErrClosed
	}
	s.submitted.Add(1)
	if j, ok := s.jobs[id]; ok {
		// Replaceable terminal states (failed, canceled, timeout) give
		// way so a transient outcome is not sticky; anything else —
		// queued, running, done, poisoned — is the authoritative job
		// for this configuration.
		if !j.State().replaceable() {
			s.deduped.Add(1)
			return j, true, nil
		}
	}
	// Reserve queue room before journaling: every sender holds mu and
	// workers only drain, so a measured vacancy cannot vanish before
	// the send below, and the journal never records a submission the
	// client was told to retry.
	if len(s.queue) >= s.cfg.QueueDepth {
		s.rejected.Add(1)
		return nil, false, ErrQueueFull
	}
	j := newJob(req, key)
	if err := s.journalAppend(journalEntry{
		Type: "submit", ID: j.ID, Key: key, Req: &req,
		Time: j.submitted.UTC().Format(time.RFC3339Nano),
	}); err != nil {
		return nil, false, fmt.Errorf("%w: %v", ErrJournal, err)
	}
	s.queue <- j
	s.jobs[id] = j
	return j, false, nil
}

// Get looks a job up by ID.
func (s *Store) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs snapshots every job's status, newest submission first.
func (s *Store) Jobs() []Status {
	s.mu.Lock()
	all := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		all = append(all, j)
	}
	s.mu.Unlock()
	out := make([]Status, len(all))
	for i, j := range all {
		out[i] = j.Status()
	}
	sort.SliceStable(out, func(i, k int) bool { return out[i].SubmittedAt > out[k].SubmittedAt })
	return out
}

// Cancel requests cancellation of a job. Queued jobs transition to
// canceled immediately; running jobs stop at their next cancellation
// poll (skipping unstarted leaves, aborting in-flight engines, and
// freeing the worker slot). Returns false for unknown IDs.
func (s *Store) Cancel(id string) bool {
	j, ok := s.Get(id)
	if !ok {
		return false
	}
	j.mu.Lock()
	if j.state.terminal() {
		j.mu.Unlock()
		return true
	}
	if !j.stopped {
		j.stopped = true
		close(j.cancel)
	}
	wasQueued := j.state == StateQueued
	if wasQueued {
		j.state = StateCanceled
		j.events = append(j.events, Event{Type: string(StateCanceled)})
		j.notifyLocked()
		s.canceled.Add(1)
	}
	j.mu.Unlock()
	if wasQueued {
		s.journalAppend(journalEntry{Type: string(StateCanceled), ID: j.ID})
	}
	return true
}

// RetryAfterSeconds estimates when a rejected submitter should retry:
// one second per job ahead of it, at least one.
func (s *Store) RetryAfterSeconds() int {
	return max(1, len(s.queue)+int(s.running.Load()))
}

// Close stops admission, cancels every queued and running job, waits
// for the workers to exit, and closes the journal. Canceled jobs are
// journaled as canceled — a graceful shutdown does not re-run them on
// restart; only jobs lost to a crash replay. Idempotent.
func (s *Store) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.ready.Store(false)
	ids := make([]string, 0, len(s.jobs))
	for id := range s.jobs {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	sort.Strings(ids) // deterministic cancel (and journal) order
	for _, id := range ids {
		s.Cancel(id)
	}
	close(s.stop)
	s.wg.Wait()
	// Workers are gone: no append can race the close.
	s.journal.Close()
}

// worker drains the admission queue until Close, honoring crash-replay
// backoff delays.
func (s *Store) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case j := <-s.queue:
			if wait := time.Until(j.notBefore); wait > 0 {
				t := time.NewTimer(wait)
				select {
				case <-t.C:
				case <-s.stop:
					t.Stop()
					return
				}
			}
			s.run(j)
		}
	}
}

// terminalize moves a job into a terminal state with one event and a
// matching journal entry. It is the single writer of terminal
// transitions, so the in-memory log, the SSE stream and the journal
// always agree.
func (s *Store) terminalize(j *Job, state JobState, errMsg, stack string) {
	j.mu.Lock()
	j.errMsg = errMsg
	j.stack = stack
	j.state = state
	j.events = append(j.events, Event{Type: string(state), Error: errMsg, Stack: stack})
	j.notifyLocked()
	j.mu.Unlock()
	s.journalAppend(journalEntry{Type: string(state), ID: j.ID, Error: errMsg, Stack: stack})
}

// execute runs the job body inside the panic quarantine: a panic on
// this goroutine marks the job poisoned (never re-run on replay) and
// lets the worker survive. Panics on engine worker goroutines cannot
// be recovered here and still kill the process — the journal turns
// those into bounded crash replays instead (RetryLimit), so either way
// a poisoned input cannot take the service down forever.
func (s *Store) execute(j *Job, f exp.FigureSpec, o exp.Options) (sweeps []exp.Sweep, err error) {
	defer func() {
		if p := recover(); p != nil {
			s.poisoned.Add(1)
			s.terminalize(j, StatePoisoned, fmt.Sprintf("panic: %v", p), string(debug.Stack()))
			err = errPanicked
		}
	}()
	if s.testHook != nil {
		s.testHook(j)
	}
	return exp.RunFigure(f, o)
}

// run executes one dequeued job end to end.
func (s *Store) run(j *Job) {
	j.mu.Lock()
	if j.state != StateQueued { // canceled while queued
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.attempt++
	attempt := j.attempt
	j.events = append(j.events, Event{Type: string(StateRunning), Attempt: attempt})
	j.notifyLocked()
	j.mu.Unlock()
	s.journalAppend(journalEntry{Type: "start", ID: j.ID, Attempt: attempt})
	s.running.Add(1)
	defer s.running.Add(-1)

	f, err := j.Req.validate() // re-resolve the figure spec
	if err != nil {
		s.fail(j, err)
		return
	}
	o := j.Req.options()
	o.Workers = s.perJob
	o.Cancel = j.cancel
	timeout := s.cfg.JobTimeout
	if r := time.Duration(j.Req.TimeoutSeconds * float64(time.Second)); r > 0 && (timeout == 0 || r < timeout) {
		timeout = r
	}
	if timeout > 0 {
		o.Deadline = time.Now().Add(timeout)
	}
	o.OnProgress = func(ev exp.ProgressEvent) {
		s.leavesRun.Add(1)
		j.mu.Lock()
		j.leaves++
		j.events = append(j.events, Event{Type: "progress", Label: ev.Label, Done: ev.Done, Total: ev.Total})
		j.notifyLocked()
		j.mu.Unlock()
	}
	sweeps, err := s.execute(j, f, o)
	switch {
	case errors.Is(err, errPanicked):
		// Quarantined and journaled already; the worker lives on.
	case errors.Is(err, exp.ErrDeadlineExceeded):
		s.timeouts.Add(1)
		s.terminalize(j, StateTimeout, fmt.Sprintf("deadline exceeded after %v", timeout), "")
	case errors.Is(err, exp.ErrCanceled):
		s.canceled.Add(1)
		s.terminalize(j, StateCanceled, "", "")
	case err != nil:
		s.fail(j, err)
	default:
		var buf bytes.Buffer
		// The stored bytes are exactly exp.WriteFigureJSON's, so an HTTP
		// result is byte-identical to an in-process render.
		if err := exp.WriteFigureJSON(&buf, f, sweeps); err != nil {
			s.fail(j, err)
			return
		}
		var delivered int64
		for _, sw := range sweeps {
			for _, p := range sw.Points {
				delivered += p.Result.PacketsDelivered
			}
		}
		s.packetsDel.Add(delivered)
		s.done.Add(1)
		j.mu.Lock()
		hit := j.leaves == 0
		j.mu.Unlock()
		// Journal before announcing done: a client that observes the
		// terminal state can rely on the result surviving a crash.
		s.journalAppend(journalEntry{Type: string(StateDone), ID: j.ID, Result: buf.String(), CacheHit: hit})
		j.mu.Lock()
		j.result = buf.Bytes()
		j.cacheHit = hit
		if hit {
			s.cacheHits.Add(1)
		}
		j.state = StateDone
		j.events = append(j.events, Event{Type: string(StateDone), CacheHit: hit})
		j.notifyLocked()
		j.mu.Unlock()
	}
}

// fail records a terminal failure.
func (s *Store) fail(j *Job, err error) {
	s.failed.Add(1)
	s.terminalize(j, StateFailed, err.Error(), "")
}

// WriteMetrics emits the store's counters in the Prometheus text
// exposition format; the server registers it on the shared
// metrics.Registry behind /metrics.
func (s *Store) WriteMetrics(w io.Writer) error {
	s.mu.Lock()
	queued := 0
	for _, j := range s.jobs {
		if j.State() == StateQueued {
			queued++
		}
	}
	s.mu.Unlock()
	ready := 0
	if ok, _ := s.Ready(); ok {
		ready = 1
	}
	counters := []struct {
		name, help string
		v          int64
	}{
		{"turnserver_jobs_submitted_total", "Job submissions admitted, deduplicated included.", s.submitted.Load()},
		{"turnserver_jobs_deduped_total", "Submissions answered with an existing content-addressed job.", s.deduped.Load()},
		{"turnserver_jobs_rejected_total", "Submissions rejected with 429 by admission control.", s.rejected.Load()},
		{"turnserver_jobs_done_total", "Jobs completed successfully.", s.done.Load()},
		{"turnserver_jobs_failed_total", "Jobs that ended in an error.", s.failed.Load()},
		{"turnserver_jobs_canceled_total", "Jobs canceled before completing.", s.canceled.Load()},
		{"turnserver_jobs_timeout_total", "Jobs that exceeded their deadline.", s.timeouts.Load()},
		{"turnserver_jobs_poisoned_total", "Jobs quarantined after a panic.", s.poisoned.Load()},
		{"turnserver_jobs_replayed_total", "Interrupted jobs re-queued by journal replay at startup.", s.replayedJobs.Load()},
		{"turnserver_journal_results_replayed_total", "Completed results restored from the journal at startup.", s.replayedResults.Load()},
		{"turnserver_job_retries_total", "Crash-replay re-runs admitted with backoff.", s.retries.Load()},
		{"turnserver_job_cache_hits_total", "Completed jobs served entirely from the sweep cache.", s.cacheHits.Load()},
		{"turnserver_sim_leaves_run_total", "Leaf simulations executed on behalf of jobs.", s.leavesRun.Load()},
		{"turnserver_sim_packets_delivered_total", "Packets delivered across completed jobs' measurement windows.", s.packetsDel.Load()},
	}
	for _, c := range counters {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", c.name, c.help, c.name, c.name, c.v); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# HELP turnserver_jobs_queued Jobs admitted and waiting to run.\n# TYPE turnserver_jobs_queued gauge\nturnserver_jobs_queued %d\n# HELP turnserver_jobs_running Jobs currently executing.\n# TYPE turnserver_jobs_running gauge\nturnserver_jobs_running %d\n# HELP turnserver_ready Whether the store is ready for traffic (journal replayed, queue below shed threshold).\n# TYPE turnserver_ready gauge\nturnserver_ready %d\n", queued, s.running.Load(), ready)
	return err
}
