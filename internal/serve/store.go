package serve

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"turnmodel/internal/exp"
)

// ErrQueueFull is returned by Submit when the bounded job queue cannot
// admit another job; the HTTP layer maps it to 429 + Retry-After.
var ErrQueueFull = errors.New("serve: job queue full")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("serve: store closed")

// Config sizes the job store.
type Config struct {
	// QueueDepth bounds the jobs admitted but not yet running; beyond
	// it Submit returns ErrQueueFull (HTTP 429). Default 16.
	QueueDepth int
	// Jobs is the number of jobs run concurrently. Default 1: a single
	// figure sweep already fans out across every core, so running jobs
	// serially maximizes per-job latency without idling the machine.
	Jobs int
	// Workers is the total leaf-simulation concurrency budget shared by
	// all running jobs (each job gets Workers/Jobs, and internal/exp
	// further clamps Workers x Shards to GOMAXPROCS). Default
	// GOMAXPROCS.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.Jobs <= 0 {
		c.Jobs = 1
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Store owns the job table, the bounded admission queue and the worker
// pool that drains it. Jobs are content-addressed: submitting a body
// whose canonical configuration matches an existing non-failed job
// returns that job instead of creating one, and completed results are
// additionally backed by the internal/exp sweep cache, so even a fresh
// Store (or a replaced job) re-serves known configurations without
// re-running leaf simulations.
type Store struct {
	cfg        Config
	perJob     int // leaf workers per running job
	queue      chan *Job
	stop       chan struct{}
	wg         sync.WaitGroup
	mu         sync.Mutex
	jobs       map[string]*Job
	closed     bool
	running    atomic.Int64
	submitted  atomic.Int64 // admissions, deduped included
	deduped    atomic.Int64 // submissions answered with an existing job
	rejected   atomic.Int64 // ErrQueueFull admissions
	done       atomic.Int64
	failed     atomic.Int64
	canceled   atomic.Int64
	cacheHits  atomic.Int64 // jobs completed without running any leaf
	leavesRun  atomic.Int64 // leaf simulations executed
	packetsDel atomic.Int64 // packets delivered across completed jobs
}

// NewStore builds the store and starts its job workers.
func NewStore(cfg Config) *Store {
	cfg = cfg.withDefaults()
	s := &Store{
		cfg:    cfg,
		perJob: max(1, cfg.Workers/cfg.Jobs),
		queue:  make(chan *Job, cfg.QueueDepth),
		stop:   make(chan struct{}),
		jobs:   make(map[string]*Job),
	}
	s.wg.Add(cfg.Jobs)
	for i := 0; i < cfg.Jobs; i++ {
		go s.worker()
	}
	return s
}

// Submit validates and admits a job. The bool reports whether the
// returned job already existed (dedup or finished result); a false
// return means a fresh job was queued. ErrQueueFull means the caller
// should retry later; any other error is a bad request.
func (s *Store) Submit(req JobRequest) (*Job, bool, error) {
	f, err := req.validate()
	if err != nil {
		return nil, false, err
	}
	key := exp.CacheKey(f, req.options())
	id := jobID(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false, ErrClosed
	}
	s.submitted.Add(1)
	if j, ok := s.jobs[id]; ok {
		// Failed and canceled jobs are replaced so a transient failure
		// is not sticky; anything else — queued, running, done — is the
		// authoritative job for this configuration.
		if st := j.State(); st != StateFailed && st != StateCanceled {
			s.deduped.Add(1)
			return j, true, nil
		}
	}
	j := newJob(req, key)
	select {
	case s.queue <- j:
		s.jobs[id] = j
		return j, false, nil
	default:
		s.rejected.Add(1)
		return nil, false, ErrQueueFull
	}
}

// Get looks a job up by ID.
func (s *Store) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs snapshots every job's status, newest submission first.
func (s *Store) Jobs() []Status {
	s.mu.Lock()
	all := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		all = append(all, j)
	}
	s.mu.Unlock()
	out := make([]Status, len(all))
	for i, j := range all {
		out[i] = j.Status()
	}
	sort.SliceStable(out, func(i, k int) bool { return out[i].SubmittedAt > out[k].SubmittedAt })
	return out
}

// Cancel requests cancellation of a job. Queued jobs transition to
// canceled immediately; running jobs stop at their next cancellation
// poll (skipping unstarted leaves, aborting in-flight engines, and
// freeing the worker slot). Returns false for unknown IDs.
func (s *Store) Cancel(id string) bool {
	j, ok := s.Get(id)
	if !ok {
		return false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.terminal() {
		return true
	}
	if !j.stopped {
		j.stopped = true
		close(j.cancel)
	}
	if j.state == StateQueued {
		j.state = StateCanceled
		j.events = append(j.events, Event{Type: string(StateCanceled)})
		j.cond.Broadcast()
		s.canceled.Add(1)
	}
	return true
}

// RetryAfterSeconds estimates when a rejected submitter should retry:
// one second per job ahead of it, at least one.
func (s *Store) RetryAfterSeconds() int {
	return max(1, len(s.queue)+int(s.running.Load()))
}

// Close stops admission, cancels every queued and running job, and
// waits for the workers to exit. Idempotent.
func (s *Store) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	ids := make([]string, 0, len(s.jobs))
	for id := range s.jobs {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	for _, id := range ids {
		s.Cancel(id)
	}
	close(s.stop)
	s.wg.Wait()
}

// worker drains the admission queue until Close.
func (s *Store) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case j := <-s.queue:
			s.run(j)
		}
	}
}

// run executes one dequeued job end to end.
func (s *Store) run(j *Job) {
	j.mu.Lock()
	if j.state != StateQueued { // canceled while queued
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.events = append(j.events, Event{Type: string(StateRunning)})
	j.cond.Broadcast()
	j.mu.Unlock()
	s.running.Add(1)
	defer s.running.Add(-1)

	f, err := j.Req.validate() // re-resolve the figure spec
	if err != nil {
		s.fail(j, err)
		return
	}
	o := j.Req.options()
	o.Workers = s.perJob
	o.Cancel = j.cancel
	o.OnProgress = func(ev exp.ProgressEvent) {
		s.leavesRun.Add(1)
		j.mu.Lock()
		j.leaves++
		j.events = append(j.events, Event{Type: "progress", Label: ev.Label, Done: ev.Done, Total: ev.Total})
		j.cond.Broadcast()
		j.mu.Unlock()
	}
	sweeps, err := exp.RunFigure(f, o)
	switch {
	case errors.Is(err, exp.ErrCanceled):
		s.canceled.Add(1)
		j.append(StateCanceled, Event{Type: string(StateCanceled)})
	case err != nil:
		s.fail(j, err)
	default:
		var buf bytes.Buffer
		// The stored bytes are exactly exp.WriteFigureJSON's, so an HTTP
		// result is byte-identical to an in-process render.
		if err := exp.WriteFigureJSON(&buf, f, sweeps); err != nil {
			s.fail(j, err)
			return
		}
		var delivered int64
		for _, sw := range sweeps {
			for _, p := range sw.Points {
				delivered += p.Result.PacketsDelivered
			}
		}
		s.packetsDel.Add(delivered)
		s.done.Add(1)
		j.mu.Lock()
		j.result = buf.Bytes()
		j.cacheHit = j.leaves == 0
		if j.cacheHit {
			s.cacheHits.Add(1)
		}
		j.state = StateDone
		j.events = append(j.events, Event{Type: string(StateDone), CacheHit: j.cacheHit})
		j.cond.Broadcast()
		j.mu.Unlock()
	}
}

// fail records a terminal failure.
func (s *Store) fail(j *Job, err error) {
	s.failed.Add(1)
	j.mu.Lock()
	j.errMsg = err.Error()
	j.state = StateFailed
	j.events = append(j.events, Event{Type: string(StateFailed), Error: j.errMsg})
	j.cond.Broadcast()
	j.mu.Unlock()
}

// WriteMetrics emits the store's counters in the Prometheus text
// exposition format; the server registers it on the shared
// metrics.Registry behind /metrics.
func (s *Store) WriteMetrics(w io.Writer) error {
	s.mu.Lock()
	queued := 0
	for _, j := range s.jobs {
		if j.State() == StateQueued {
			queued++
		}
	}
	s.mu.Unlock()
	counters := []struct {
		name, help string
		v          int64
	}{
		{"turnserver_jobs_submitted_total", "Job submissions admitted, deduplicated included.", s.submitted.Load()},
		{"turnserver_jobs_deduped_total", "Submissions answered with an existing content-addressed job.", s.deduped.Load()},
		{"turnserver_jobs_rejected_total", "Submissions rejected with 429 by admission control.", s.rejected.Load()},
		{"turnserver_jobs_done_total", "Jobs completed successfully.", s.done.Load()},
		{"turnserver_jobs_failed_total", "Jobs that ended in an error.", s.failed.Load()},
		{"turnserver_jobs_canceled_total", "Jobs canceled before completing.", s.canceled.Load()},
		{"turnserver_job_cache_hits_total", "Completed jobs served entirely from the sweep cache.", s.cacheHits.Load()},
		{"turnserver_sim_leaves_run_total", "Leaf simulations executed on behalf of jobs.", s.leavesRun.Load()},
		{"turnserver_sim_packets_delivered_total", "Packets delivered across completed jobs' measurement windows.", s.packetsDel.Load()},
	}
	for _, c := range counters {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", c.name, c.help, c.name, c.name, c.v); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# HELP turnserver_jobs_queued Jobs admitted and waiting to run.\n# TYPE turnserver_jobs_queued gauge\nturnserver_jobs_queued %d\n# HELP turnserver_jobs_running Jobs currently executing.\n# TYPE turnserver_jobs_running gauge\nturnserver_jobs_running %d\n", queued, s.running.Load())
	return err
}
