package serve

import (
	"bufio"
	"encoding/json"
	"os"
	"strings"
	"sync"
	"time"
)

// The job journal is the store's write-ahead log: one JSON object per
// line, append-only, recording every lifecycle transition of every
// admitted job. It follows the torn-line-tolerant checkpoint pattern of
// internal/explore's campaign log — a process killed mid-write leaves
// at most one unparsable final line, which replay skips — so a SIGKILL
// at any point lets the next start converge to the same terminal state
// an uninterrupted server would have reached:
//
//   - submit + no terminal entry  -> the job is re-queued and re-run
//     (the engine is deterministic, so the re-run's figure JSON is
//     byte-identical to what the killed run would have produced);
//   - done                        -> the result is served from the
//     journal without running a single leaf;
//   - poisoned                    -> the job is quarantined and never
//     re-executed (the crash-loop guard for panicking inputs);
//   - failed / canceled / timeout -> the job stays terminal; only a
//     fresh submission replaces it.
type journalEntry struct {
	// Type is "submit", "start", or a terminal state: "done",
	// "failed", "canceled", "timeout", "poisoned".
	Type string `json:"type"`
	// ID is the content-addressed job ID every entry is keyed by.
	ID string `json:"id"`
	// Submit entries carry the request, its canonical cache key and
	// the admission timestamp (RFC 3339 with nanoseconds).
	Req  *JobRequest `json:"req,omitempty"`
	Key  string      `json:"key,omitempty"`
	Time string      `json:"time,omitempty"`
	// Start entries carry the 1-based execution attempt, counting
	// crash replays.
	Attempt int `json:"attempt,omitempty"`
	// Done entries carry the figure JSON verbatim. It is stored as a
	// JSON string — newlines escape to \n — so the entry stays one
	// line and the bytes round-trip exactly.
	Result   string `json:"result,omitempty"`
	CacheHit bool   `json:"cache_hit,omitempty"`
	// Terminal failures carry the error; poisoned entries also carry
	// the panic stack.
	Error string `json:"error,omitempty"`
	Stack string `json:"stack,omitempty"`
}

// journal is the append-only on-disk log. A nil *journal is a valid
// no-op journal (the store without a JournalPath).
type journal struct {
	mu sync.Mutex
	f  *os.File
}

// openJournal reads the existing log tolerantly and opens it for
// appending. A missing file is an empty journal. If the file does not
// end in a newline (the previous process died mid-write), a newline is
// appended first so the torn tail stays an isolated garbage line
// instead of corrupting the next entry.
func openJournal(path string) (*journal, []journalEntry, error) {
	entries, err := readJournal(path)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	if st, err := f.Stat(); err == nil && st.Size() > 0 {
		tail := make([]byte, 1)
		if _, err := f.ReadAt(tail, st.Size()-1); err == nil && tail[0] != '\n' {
			f.Write([]byte{'\n'})
		}
	}
	return &journal{f: f}, entries, nil
}

// readJournal parses the log, skipping blank and torn lines.
func readJournal(path string) ([]journalEntry, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []journalEntry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var e journalEntry
		if err := json.Unmarshal([]byte(line), &e); err != nil || e.ID == "" {
			continue // torn write from a killed process
		}
		out = append(out, e)
	}
	return out, sc.Err()
}

// append writes one entry and syncs it to disk, so a terminal state
// acknowledged to a client survives even a machine crash.
func (jl *journal) append(e journalEntry) error {
	if jl == nil {
		return nil
	}
	b, err := json.Marshal(e)
	if err != nil {
		return err
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	if _, err := jl.f.Write(append(b, '\n')); err != nil {
		return err
	}
	return jl.f.Sync()
}

// Close closes the underlying file. The store calls it only after its
// workers have exited, so no append races the close.
func (jl *journal) Close() error {
	if jl == nil {
		return nil
	}
	jl.mu.Lock()
	defer jl.mu.Unlock()
	return jl.f.Close()
}

// replayState is one job's folded journal state at startup.
type replayState struct {
	Req       JobRequest
	Key       string
	Submitted time.Time
	// Attempts counts start entries since the last submit: how many
	// times execution began, including runs lost to crashes.
	Attempts int
	// State is the folded lifecycle position: StateQueued or
	// StateRunning for a job the crash interrupted, or a terminal
	// state.
	State    JobState
	Result   string
	CacheHit bool
	Error    string
	Stack    string
}

// foldJournal reduces the entry sequence to per-job replay states,
// returning the job IDs in first-submission order (the deterministic
// re-queue order) alongside. A submit entry over a replaceable
// terminal state (failed, canceled, timeout) starts a fresh
// incarnation, mirroring Store.Submit's replacement rule; done and
// poisoned are never replaced.
func foldJournal(entries []journalEntry) ([]string, map[string]*replayState) {
	var order []string
	states := map[string]*replayState{}
	for _, e := range entries {
		st := states[e.ID]
		switch e.Type {
		case "submit":
			if st != nil && (st.State == StateDone || st.State == StatePoisoned) {
				continue // authoritative result; Submit would have deduped
			}
			fresh := replayState{Key: e.Key, State: StateQueued}
			if e.Req != nil {
				fresh.Req = *e.Req
			}
			if t, err := time.Parse(time.RFC3339Nano, e.Time); err == nil {
				fresh.Submitted = t
			}
			if st == nil {
				order = append(order, e.ID)
				states[e.ID] = &fresh
			} else {
				*st = fresh
			}
		case "start":
			if st == nil || st.State.terminal() {
				continue
			}
			st.Attempts++
			st.State = StateRunning
		case string(StateDone):
			if st == nil || st.State.terminal() {
				continue
			}
			st.State, st.Result, st.CacheHit = StateDone, e.Result, e.CacheHit
		case string(StateFailed), string(StateCanceled), string(StateTimeout), string(StatePoisoned):
			if st == nil || st.State.terminal() {
				continue
			}
			st.State, st.Error, st.Stack = JobState(e.Type), e.Error, e.Stack
		}
	}
	return order, states
}
