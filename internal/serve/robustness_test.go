package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"turnmodel/internal/metrics"
)

// TestJobTimeoutPerRequest: a request-level timeout_seconds bound moves
// the job to state "timeout" promptly (the engine polls cancellation
// every 1024 cycles), increments the timeout counter, and — because a
// timeout is a transient operational outcome — a resubmission replaces
// the job rather than being deduped onto it.
func TestJobTimeoutPerRequest(t *testing.T) {
	store := newTestStore(t, Config{})
	ts := httptest.NewServer(NewServer(store, metrics.NewRegistry(), nil))
	defer ts.Close()

	req := longReq(3001)
	req.TimeoutSeconds = 0.2
	sr, resp := postJob(t, ts, req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	begin := time.Now()
	st := waitState(t, ts, sr.ID, StateTimeout)
	if elapsed := time.Since(begin); elapsed > 10*time.Second {
		t.Errorf("timeout took %v; want well under the poll budget", elapsed)
	}
	if !strings.Contains(st.Error, "deadline exceeded") {
		t.Errorf("timeout status error = %q", st.Error)
	}
	if n := store.timeouts.Load(); n != 1 {
		t.Errorf("timeouts counter = %d, want 1", n)
	}
	if !scrapeContains(t, ts, "turnserver_jobs_timeout_total 1") {
		t.Error("metrics scrape missing the timeout counter")
	}

	// Timeout is replaceable: the same body admits a fresh job.
	again, resp2 := postJob(t, ts, req)
	if resp2.StatusCode != http.StatusAccepted || again.Existing {
		t.Fatalf("resubmit after timeout = %d %+v, want a fresh 202", resp2.StatusCode, again)
	}
	waitState(t, ts, again.ID, StateTimeout)
}

// TestJobTimeoutServerDefault: the server-wide JobTimeout applies when
// the request does not set one, and requests can only tighten it.
func TestJobTimeoutServerDefault(t *testing.T) {
	store := newTestStore(t, Config{JobTimeout: 200 * time.Millisecond})
	ts := httptest.NewServer(NewServer(store, nil, nil))
	defer ts.Close()

	sr, _ := postJob(t, ts, longReq(3002))
	waitState(t, ts, sr.ID, StateTimeout)

	// A looser request timeout does not widen the server bound.
	req := longReq(3003)
	req.TimeoutSeconds = 3600
	sr2, _ := postJob(t, ts, req)
	begin := time.Now()
	waitState(t, ts, sr2.ID, StateTimeout)
	if elapsed := time.Since(begin); elapsed > 10*time.Second {
		t.Errorf("server bound not enforced: took %v", elapsed)
	}
}

// scrapeContains fetches /metrics and reports whether it contains want.
func scrapeContains(t *testing.T, ts *httptest.Server, want string) bool {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return strings.Contains(string(b), want)
}

// TestPanicQuarantine: a panicking job is marked poisoned with its
// stack in the status and the terminal SSE event, the worker survives
// to run the next job, and resubmitting the poisoned configuration
// returns the quarantined job instead of re-running it.
func TestPanicQuarantine(t *testing.T) {
	store := newTestStore(t, Config{Jobs: 1})
	store.testHook = func(j *Job) {
		if j.Req.Seed == 3004 {
			panic("injected failure")
		}
	}
	ts := httptest.NewServer(NewServer(store, metrics.NewRegistry(), nil))
	defer ts.Close()

	bad, _ := postJob(t, ts, quickReq(3004))
	st := waitState(t, ts, bad.ID, StatePoisoned)
	if !strings.Contains(st.Error, "panic: injected failure") {
		t.Errorf("poisoned error = %q", st.Error)
	}
	if !strings.Contains(st.Stack, "goroutine") {
		t.Errorf("poisoned status carries no stack: %q", st.Stack)
	}

	// The worker survived the panic: an untainted job still completes.
	good, _ := postJob(t, ts, quickReq(3005))
	waitState(t, ts, good.ID, StateDone)

	// The quarantine is sticky in-process too.
	again, resp := postJob(t, ts, quickReq(3004))
	if resp.StatusCode != http.StatusOK || !again.Existing || again.ID != bad.ID {
		t.Fatalf("resubmit of poisoned config = %d %+v, want the quarantined job", resp.StatusCode, again)
	}
	if !scrapeContains(t, ts, "turnserver_jobs_poisoned_total 1") {
		t.Error("metrics scrape missing the poisoned counter")
	}

	// The poisoned job's stream terminates with the poisoned event (and
	// its stack) rather than hanging.
	resp2, err := http.Get(ts.URL + "/v1/jobs/" + bad.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	stream, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if !strings.Contains(string(stream), "event: poisoned") {
		t.Errorf("stream missing poisoned event:\n%s", stream)
	}
}

// TestHealthzReadyzShedding: /healthz is pure liveness (always 200 on
// a serving process) while /readyz flips 503 once the queue crosses the
// shed threshold — before admissions start bouncing with 429 — and
// recovers when the queue drains.
func TestHealthzReadyzShedding(t *testing.T) {
	store := newTestStore(t, Config{Jobs: 1, QueueDepth: 4, ShedThreshold: 2})
	ts := httptest.NewServer(NewServer(store, nil, nil))
	defer ts.Close()

	statusOf := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := statusOf("/healthz"); got != http.StatusOK {
		t.Fatalf("/healthz = %d", got)
	}
	if got := statusOf("/readyz"); got != http.StatusOK {
		t.Fatalf("idle /readyz = %d", got)
	}

	// One running + two queued reaches the shed threshold.
	a, _ := postJob(t, ts, longReq(3006))
	waitState(t, ts, a.ID, StateRunning)
	var queued []submitResponse
	for seed := int64(3007); seed <= 3008; seed++ {
		sr, resp := postJob(t, ts, longReq(seed))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("queue fill submit = %d", resp.StatusCode)
		}
		queued = append(queued, sr)
	}
	if got := statusOf("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("saturated /readyz = %d, want 503", got)
	}
	// Shedding is advisory: liveness stays green and admissions below
	// the hard QueueDepth still succeed.
	if got := statusOf("/healthz"); got != http.StatusOK {
		t.Fatalf("/healthz under shed = %d", got)
	}
	extra, resp := postJob(t, ts, longReq(3009))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit while shedding = %d, want 202", resp.StatusCode)
	}
	queued = append(queued, extra)

	// Drain: cancel everything; canceled queue entries are skimmed off
	// by the worker, so readiness recovers.
	store.Cancel(a.ID)
	for _, sr := range queued {
		store.Cancel(sr.ID)
	}
	deadline := time.Now().Add(30 * time.Second)
	for statusOf("/readyz") != http.StatusOK {
		if time.Now().After(deadline) {
			t.Fatal("/readyz never recovered after draining the queue")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The readiness reason is machine-readable JSON.
	store2 := newTestStore(t, Config{})
	store2.Close()
	srv2 := httptest.NewServer(NewServer(store2, nil, nil))
	defer srv2.Close()
	r2, err := http.Get(srv2.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(r2.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if r2.StatusCode != http.StatusServiceUnavailable || body.Error == "" {
		t.Fatalf("closed-store /readyz = %d %+v", r2.StatusCode, body)
	}
}

// TestStreamDisconnectReleasesGoroutines is the goroutine-lifetime
// regression test for the SSE tail: subscribers that vanish mid-stream
// must not leave watcher goroutines (or blocked writers) behind. The
// wait is channel-based, so the count must return to its pre-stream
// baseline while the job is still running.
func TestStreamDisconnectReleasesGoroutines(t *testing.T) {
	store := newTestStore(t, Config{})
	ts := httptest.NewServer(NewServer(store, nil, nil))
	defer ts.Close()

	sr, _ := postJob(t, ts, longReq(3010))
	waitState(t, ts, sr.ID, StateRunning)
	runtime.GC()
	baseline := runtime.NumGoroutine()

	const streams = 8
	var wg sync.WaitGroup
	cancels := make([]context.CancelFunc, 0, streams)
	for i := 0; i < streams; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancels = append(cancels, cancel)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/jobs/"+sr.ID+"/stream", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		// Read until the stream has demonstrably started (the replayed
		// running event arrived), then keep the body open.
		buf := make([]byte, 1)
		if _, err := io.ReadFull(resp.Body, buf); err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			io.Copy(io.Discard, resp.Body) // unblocks on cancel
			resp.Body.Close()
		}()
	}
	// All 8 streams are live against a job that will not finish.
	for _, cancel := range cancels {
		cancel()
	}
	wg.Wait()

	deadline := time.Now().Add(15 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines after stream disconnects = %d, baseline %d: SSE tail leaked", n, baseline)
		}
		time.Sleep(50 * time.Millisecond)
	}
	store.Cancel(sr.ID)
	waitState(t, ts, sr.ID, StateCanceled)
}

// TestCloseConcurrentWithTraffic hammers one store with concurrent
// Submit, stream-follow, Cancel and metrics traffic while Close runs —
// the shutdown race the -race CI job exists to catch. After Close every
// job must be terminal and further submissions refused.
func TestCloseConcurrentWithTraffic(t *testing.T) {
	for round := 0; round < 3; round++ {
		store, err := NewStore(Config{Jobs: 2, QueueDepth: 16})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		stop := make(chan struct{})
		var jobs sync.Map
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					j, _, err := store.Submit(longReq(int64(4000 + round*100 + g*10 + i%8)))
					if err != nil {
						if err == ErrClosed {
							return
						}
						continue // queue full: keep hammering
					}
					jobs.Store(j.ID, j)
					if i%3 == 0 {
						store.Cancel(j.ID)
					}
				}
			}(g)
		}
		// Stream followers ride the jobs the submitters create.
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					jobs.Range(func(_, v any) bool {
						j := v.(*Job)
						from := 0
						for {
							events, complete := j.next(from, stop)
							from += len(events)
							if complete || events == nil {
								return true // next job
							}
						}
					})
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					store.WriteMetrics(io.Discard)
					store.Jobs()
				}
			}
		}()

		time.Sleep(50 * time.Millisecond)
		store.Close()
		close(stop)
		wg.Wait()

		jobs.Range(func(_, v any) bool {
			j := v.(*Job)
			if !j.State().terminal() {
				t.Errorf("round %d: job %s left in %s after Close", round, j.ID, j.State())
			}
			return true
		})
		if _, _, err := store.Submit(quickReq(int64(4900 + round))); err != ErrClosed {
			t.Errorf("round %d: Submit after Close = %v, want ErrClosed", round, err)
		}
	}
}

// TestMetricsEndpointFailure: a failing exporter turns the scrape into
// a 500 with nothing written — Prometheus must never ingest a torn
// exposition.
func TestMetricsEndpointFailure(t *testing.T) {
	store := newTestStore(t, Config{})
	reg := metrics.NewRegistry()
	reg.Register(func(w io.Writer) error {
		fmt.Fprintln(w, "partial_metric 1")
		return fmt.Errorf("exporter exploded")
	})
	ts := httptest.NewServer(NewServer(store, reg, nil))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("/metrics with failing exporter = %d, want 500", resp.StatusCode)
	}
	if strings.Contains(string(body), "partial_metric") {
		t.Fatalf("torn scrape leaked partial output: %s", body)
	}
}
