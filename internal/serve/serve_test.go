package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"turnmodel/internal/exp"
)

// newTestStore builds a store, failing the test on error and closing
// it at cleanup.
func newTestStore(t *testing.T, cfg Config) *Store {
	t.Helper()
	s, err := NewStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// quickReq builds a tiny fig13 job (one load point, short window) that
// still runs every algorithm line. Distinct seeds keep tests from
// colliding in the process-global sweep cache.
func quickReq(seed int64) JobRequest {
	return JobRequest{
		Figure:        "fig13",
		Quick:         true,
		Seed:          seed,
		Loads:         []float64{0.5},
		WarmupCycles:  200,
		MeasureCycles: 500,
	}
}

// longReq builds a job that runs until canceled (the cancellation
// poll fires every 1024 cycles, so teardown stays prompt).
func longReq(seed int64) JobRequest {
	return JobRequest{
		Figure:        "fig13",
		Seed:          seed,
		Loads:         []float64{0.5},
		WarmupCycles:  1 << 30,
		MeasureCycles: 1,
	}
}

// postJob submits a request and decodes the response envelope.
func postJob(t *testing.T, ts *httptest.Server, req JobRequest) (submitResponse, *http.Response) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr submitResponse
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
	}
	return sr, resp
}

// waitState polls a job's status endpoint until it reaches want.
func waitState(t *testing.T, ts *httptest.Server, id string, want ...JobState) Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st Status
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		for _, w := range want {
			if st.State == w {
				return st
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s waiting for %v", id, st.State, want)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestSubmitStreamResultByteIdentical is the acceptance happy path: a
// Quick fig13 job submitted over HTTP streams progress plus a result
// event, and both the streamed and GET result bodies are byte-identical
// to an in-process exp.RunFigure + WriteFigureJSON render.
func TestSubmitStreamResultByteIdentical(t *testing.T) {
	store := newTestStore(t, Config{})
	ts := httptest.NewServer(NewServer(store, nil, nil))
	defer ts.Close()

	req := quickReq(1001)
	sr, resp := postJob(t, ts, req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}

	// The stream replays queued/running, carries per-leaf progress, and
	// ends with done + the result event.
	streamResp, err := http.Get(ts.URL + sr.StreamURL)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := io.ReadAll(streamResp.Body)
	streamResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(stream)
	for _, want := range []string{"event: queued", "event: running", "event: progress", "event: done", "event: result"} {
		if !strings.Contains(text, want) {
			t.Errorf("stream missing %q:\n%s", want, text)
		}
	}

	// In-process render of the same configuration.
	f, ok := exp.FigureByID(req.Figure)
	if !ok {
		t.Fatal("fig13 missing")
	}
	sweeps, err := exp.RunFigure(f, req.options())
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := exp.WriteFigureJSON(&want, f, sweeps); err != nil {
		t.Fatal(err)
	}

	// GET /result must be byte-identical.
	res, err := http.Get(ts.URL + sr.ResultURL)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Errorf("HTTP result differs from in-process render:\nhttp: %s\nexp:  %s", got, want.Bytes())
	}

	// The streamed result event reassembles to the same bytes.
	if streamed := extractSSEResult(t, text); streamed != want.String() {
		t.Errorf("streamed result differs from in-process render:\nsse: %q\nexp: %q", streamed, want.String())
	}
}

// extractSSEResult reassembles the data lines of the result event.
func extractSSEResult(t *testing.T, stream string) string {
	t.Helper()
	_, after, found := strings.Cut(stream, "event: result\n")
	if !found {
		t.Fatal("no result event in stream")
	}
	var lines []string
	for _, line := range strings.Split(after, "\n") {
		if line == "" {
			break
		}
		data, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			t.Fatalf("malformed SSE line %q", line)
		}
		lines = append(lines, data)
	}
	return strings.Join(lines, "\n") + "\n"
}

// TestResubmitServedFromCache: the same body resubmitted to the same
// store returns the existing job; submitted to a fresh store (new job
// table, same process-global sweep cache) it completes as a cache hit
// without running a single leaf simulation.
func TestResubmitServedFromCache(t *testing.T) {
	store := newTestStore(t, Config{})
	ts := httptest.NewServer(NewServer(store, nil, nil))
	defer ts.Close()

	req := quickReq(1002)
	first, resp := postJob(t, ts, req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	st := waitState(t, ts, first.ID, StateDone)
	if st.CacheHit || st.LeavesRun == 0 {
		t.Fatalf("first run should execute leaves: %+v", st)
	}

	// Same store: content-addressed dedup answers with the same job.
	again, resp2 := postJob(t, ts, req)
	if resp2.StatusCode != http.StatusOK || !again.Existing || again.ID != first.ID {
		t.Fatalf("resubmit = %d %+v, want 200/existing/same id %s", resp2.StatusCode, again, first.ID)
	}

	// Fresh store: a new job, but the sweep cache serves it with zero
	// leaf runs.
	store2 := newTestStore(t, Config{})
	ts2 := httptest.NewServer(NewServer(store2, nil, nil))
	defer ts2.Close()
	fresh, _ := postJob(t, ts2, req)
	if fresh.Existing {
		t.Fatalf("fresh store claims an existing job")
	}
	st2 := waitState(t, ts2, fresh.ID, StateDone)
	if !st2.CacheHit || st2.LeavesRun != 0 {
		t.Fatalf("resubmission ran leaves instead of hitting the cache: %+v", st2)
	}

	// Byte-identity across the cache path too.
	read := func(ts *httptest.Server, url string) []byte {
		resp, err := http.Get(ts.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return b
	}
	if a, b := read(ts, first.ResultURL), read(ts2, fresh.ResultURL); !bytes.Equal(a, b) {
		t.Error("cached result differs from the original run")
	}
}

// TestQueueOverflowReturns429: with one worker slot and a queue depth
// of one, a third concurrent job is rejected with 429 + Retry-After
// while the in-flight jobs are left alone.
func TestQueueOverflowReturns429(t *testing.T) {
	store := newTestStore(t, Config{Jobs: 1, QueueDepth: 1})
	ts := httptest.NewServer(NewServer(store, nil, nil))
	defer ts.Close()

	a, _ := postJob(t, ts, longReq(1003))
	waitState(t, ts, a.ID, StateRunning) // worker slot taken, queue empty
	b, resp := postJob(t, ts, longReq(1004))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit = %d", resp.StatusCode)
	}
	_, resp = postJob(t, ts, longReq(1005))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	// The rejected submission must not have disturbed the in-flight
	// jobs.
	if st := waitState(t, ts, a.ID, StateRunning); st.State != StateRunning {
		t.Fatalf("running job disturbed: %+v", st)
	}
	if st := waitState(t, ts, b.ID, StateQueued); st.State != StateQueued {
		t.Fatalf("queued job disturbed: %+v", st)
	}

	// Cancel the runner: the slot frees and the queued job starts.
	del, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+a.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := http.DefaultClient.Do(del); err != nil {
		t.Fatal(err)
	}
	waitState(t, ts, a.ID, StateCanceled)
	waitState(t, ts, b.ID, StateRunning)
	store.Cancel(b.ID)
	waitState(t, ts, b.ID, StateCanceled)
}

// TestCancelQueuedJob: canceling a job that never started transitions
// it straight to canceled and its stream terminates.
func TestCancelQueuedJob(t *testing.T) {
	store := newTestStore(t, Config{Jobs: 1, QueueDepth: 2})
	ts := httptest.NewServer(NewServer(store, nil, nil))
	defer ts.Close()

	a, _ := postJob(t, ts, longReq(1006))
	waitState(t, ts, a.ID, StateRunning)
	b, _ := postJob(t, ts, longReq(1007))
	store.Cancel(b.ID)
	waitState(t, ts, b.ID, StateCanceled)

	// The canceled job's stream ends immediately with the terminal
	// event rather than hanging.
	resp, err := http.Get(ts.URL + b.StreamURL)
	if err != nil {
		t.Fatal(err)
	}
	stream, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(stream), "event: canceled") {
		t.Fatalf("stream missing canceled event:\n%s", stream)
	}
	store.Cancel(a.ID)
	waitState(t, ts, a.ID, StateCanceled)
}

// TestMetricsEndpoint: /metrics scrapes the shared registry, so the
// store counters show up after a job runs.
func TestMetricsEndpoint(t *testing.T) {
	store := newTestStore(t, Config{})
	ts := httptest.NewServer(NewServer(store, nil, nil))
	defer ts.Close()

	j, _ := postJob(t, ts, quickReq(1008))
	waitState(t, ts, j.ID, StateDone)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{"turnserver_jobs_submitted_total 1", "turnserver_jobs_done_total 1", "turnserver_sim_leaves_run_total"} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics scrape missing %q:\n%s", want, text)
		}
	}
}

// TestBadRequests: unknown figures, malformed bodies and unknown job
// IDs are 4xx, not 5xx.
func TestBadRequests(t *testing.T) {
	store := newTestStore(t, Config{})
	ts := httptest.NewServer(NewServer(store, nil, nil))
	defer ts.Close()

	_, resp := postJob(t, ts, JobRequest{Figure: "no-such-figure"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown figure = %d, want 400", resp.StatusCode)
	}
	raw, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(`{"figure": 12}`))
	if err != nil {
		t.Fatal(err)
	}
	raw.Body.Close()
	if raw.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body = %d, want 400", raw.StatusCode)
	}
	missing, err := http.Get(ts.URL + "/v1/jobs/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	missing.Body.Close()
	if missing.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job = %d, want 404", missing.StatusCode)
	}
	pending, _ := postJob(t, ts, longReq(1009))
	res, err := http.Get(ts.URL + pending.ResultURL)
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusConflict {
		t.Errorf("result of unfinished job = %d, want 409", res.StatusCode)
	}
	store.Cancel(pending.ID)
	waitState(t, ts, pending.ID, StateCanceled)
}

// TestStoreClose: Close cancels everything, further submissions are
// refused, and Close is idempotent.
func TestStoreClose(t *testing.T) {
	store := newTestStore(t, Config{Jobs: 1, QueueDepth: 4})
	j, _, err := store.Submit(longReq(1010))
	if err != nil {
		t.Fatal(err)
	}
	q, _, err := store.Submit(longReq(1011))
	if err != nil {
		t.Fatal(err)
	}
	store.Close()
	store.Close()
	for _, jb := range []*Job{j, q} {
		if st := jb.State(); st != StateCanceled {
			t.Errorf("job %s state after Close = %s, want canceled", jb.ID, st)
		}
	}
	if _, _, err := store.Submit(quickReq(1012)); err != ErrClosed {
		t.Errorf("Submit after Close = %v, want ErrClosed", err)
	}
}
