// Package serve turns the figure harness into a long-running service:
// a job store with admission control runs figure sweeps on a bounded
// worker pool, content-addresses every job by its canonical
// configuration (so identical submissions collapse onto one job and
// the internal/exp sweep cache serves repeats instantly), and an HTTP
// layer exposes submission, status, per-leaf progress streaming (SSE),
// cancellation and a shared Prometheus /metrics endpoint. cmd/turnserver
// is the binary wrapper.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"turnmodel/internal/exp"
)

// JobState is a job's position in its lifecycle. Transitions are
// queued -> running -> one of done/failed/canceled, except that a job
// canceled while still queued goes straight to canceled.
type JobState string

// The job lifecycle states.
const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// terminal reports whether no further transition can happen.
func (s JobState) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// JobRequest is the POST /v1/jobs body: one figure sweep, mapping onto
// exp.Options plus the figure identity. Concurrency is the server's
// business — there is deliberately no workers field; Shards is honored
// because internal/exp clamps Workers x Shards to the machine budget.
type JobRequest struct {
	// Figure is the sweep to run, e.g. "fig13" (see exp.Figures).
	Figure string `json:"figure"`
	// Quick trades fidelity for speed, as in exp.Options.
	Quick bool `json:"quick,omitempty"`
	// Seed makes the stochastic sweeps reproducible.
	Seed int64 `json:"seed,omitempty"`
	// Loads overrides the sweep's offered-load points (flits/us/node).
	Loads []float64 `json:"loads,omitempty"`
	// WarmupCycles and MeasureCycles override the simulation window.
	WarmupCycles  int64 `json:"warmup_cycles,omitempty"`
	MeasureCycles int64 `json:"measure_cycles,omitempty"`
	// Shards is the per-engine shard count (0 serial, -1 auto).
	Shards int `json:"shards,omitempty"`
	// DisableRouteTables forces direct routing-relation evaluation, for
	// A/B comparisons over HTTP.
	DisableRouteTables bool `json:"disable_route_tables,omitempty"`
}

// options maps the request onto exp.Options. The result carries no
// concurrency or progress hooks; the store adds those per run.
func (r JobRequest) options() exp.Options {
	return exp.Options{
		Quick:              r.Quick,
		Seed:               r.Seed,
		Loads:              r.Loads,
		Warmup:             r.WarmupCycles,
		Measure:            r.MeasureCycles,
		Shards:             r.Shards,
		DisableRouteTables: r.DisableRouteTables,
	}
}

// validate resolves the figure and rejects nonsense parameters.
func (r JobRequest) validate() (exp.FigureSpec, error) {
	f, ok := exp.FigureByID(r.Figure)
	if !ok {
		return exp.FigureSpec{}, fmt.Errorf("unknown figure %q", r.Figure)
	}
	if r.WarmupCycles < 0 || r.MeasureCycles < 0 {
		return exp.FigureSpec{}, fmt.Errorf("negative simulation window")
	}
	if r.Shards < -1 {
		return exp.FigureSpec{}, fmt.Errorf("bad shard count %d", r.Shards)
	}
	for _, l := range r.Loads {
		if l <= 0 {
			return exp.FigureSpec{}, fmt.Errorf("non-positive load %v", l)
		}
	}
	return f, nil
}

// Event is one entry of a job's ordered event log, streamed to SSE
// subscribers and replayed to late joiners. Progress events carry the
// exp.ProgressEvent fields; terminal events carry the error, if any.
type Event struct {
	// Type is "queued", "running", "progress", or a terminal state.
	Type string `json:"type"`
	// Label, Done and Total are set on progress events.
	Label string `json:"label,omitempty"`
	Done  int    `json:"done,omitempty"`
	Total int    `json:"total,omitempty"`
	// CacheHit marks a terminal done event served from the sweep cache.
	CacheHit bool `json:"cache_hit,omitempty"`
	// Error is set on failed events.
	Error string `json:"error,omitempty"`
}

// Job is one submitted figure sweep. The ID is the content address of
// the canonical configuration: resubmitting the same body yields the
// same job. All mutable state is guarded by mu; cond broadcasts every
// event append so stream subscribers can wait without polling.
type Job struct {
	// ID is the content-addressed job identifier (hex, 16 bytes of the
	// SHA-256 of the exp cache key).
	ID string
	// Key is the underlying exp.CacheKey.
	Key string
	// Req echoes the submitted request.
	Req JobRequest

	mu      sync.Mutex
	cond    *sync.Cond
	state   JobState
	events  []Event
	result  []byte // exp.WriteFigureJSON bytes, set when state == done
	errMsg  string
	cancel  chan struct{}
	stopped bool // cancel already closed
	// cacheHit records that the run completed without running a single
	// leaf simulation: every sweep came from the exp cache.
	cacheHit bool
	// leaves counts leaf simulations this job actually ran.
	leaves int

	submitted time.Time
}

// jobID derives the content-addressed identifier from the canonical
// cache key.
func jobID(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:16])
}

// newJob builds a queued job for a validated request.
func newJob(req JobRequest, key string) *Job {
	j := &Job{
		ID:        jobID(key),
		Key:       key,
		Req:       req,
		state:     StateQueued,
		cancel:    make(chan struct{}),
		submitted: time.Now(),
	}
	j.cond = sync.NewCond(&j.mu)
	j.events = append(j.events, Event{Type: string(StateQueued)})
	return j
}

// append adds an event (and optional state transition) and wakes every
// stream subscriber. Pass "" to keep the current state.
func (j *Job) append(state JobState, ev Event) {
	j.mu.Lock()
	if state != "" {
		j.state = state
	}
	j.events = append(j.events, ev)
	j.cond.Broadcast()
	j.mu.Unlock()
}

// requestCancel closes the cancel channel once. It does not transition
// the state: the runner (or the store, for queued jobs) observes the
// closed channel and records the canceled event in its own order.
func (j *Job) requestCancel() {
	j.mu.Lock()
	if !j.stopped {
		j.stopped = true
		close(j.cancel)
	}
	j.mu.Unlock()
}

// State returns the current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Result returns the finished figure JSON (byte-identical to
// exp.WriteFigureJSON on the same configuration) and whether it is
// available yet.
func (j *Job) Result() ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.state == StateDone
}

// next blocks until the event log grows past from, the job reaches a
// terminal state, or stop fires (stream client gone; whoever closes
// stop must also broadcast the condvar). It returns the new events
// plus whether the log is complete: a terminal state with every event
// consumed returns (nil, true).
func (j *Job) next(from int, stop <-chan struct{}) ([]Event, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for len(j.events) <= from && !j.state.terminal() && !fired(stop) {
		j.cond.Wait()
	}
	if len(j.events) > from {
		out := append([]Event(nil), j.events[from:]...)
		return out, j.state.terminal() && from+len(out) == len(j.events)
	}
	return nil, true
}

// fired reports whether a (possibly nil) channel is closed.
func fired(c <-chan struct{}) bool {
	if c == nil {
		return false
	}
	select {
	case <-c:
		return true
	default:
		return false
	}
}

// Status is the JSON shape of GET /v1/jobs/{id} and of job listings.
type Status struct {
	// ID and Figure identify the job; State its lifecycle position.
	ID     string   `json:"id"`
	Figure string   `json:"figure"`
	State  JobState `json:"state"`
	// Done and Total report leaf-simulation progress while running.
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
	// CacheHit marks a completed job served entirely from the sweep
	// cache; LeavesRun counts the leaf simulations it actually ran.
	CacheHit  bool `json:"cache_hit,omitempty"`
	LeavesRun int  `json:"leaves_run,omitempty"`
	// Error is the failure message of a failed job.
	Error string `json:"error,omitempty"`
	// SubmittedAt is the admission timestamp, RFC 3339.
	SubmittedAt string `json:"submitted_at"`
}

// Status snapshots the job for the status and list endpoints.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Status{
		ID:          j.ID,
		Figure:      j.Req.Figure,
		State:       j.state,
		CacheHit:    j.cacheHit,
		LeavesRun:   j.leaves,
		Error:       j.errMsg,
		SubmittedAt: j.submitted.UTC().Format(time.RFC3339),
	}
	for i := len(j.events) - 1; i >= 0; i-- {
		if j.events[i].Type == "progress" {
			s.Done, s.Total = j.events[i].Done, j.events[i].Total
			break
		}
	}
	return s
}
