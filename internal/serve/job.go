// Package serve turns the figure harness into a long-running service:
// a job store with admission control runs figure sweeps on a bounded
// worker pool, content-addresses every job by its canonical
// configuration (so identical submissions collapse onto one job and
// the internal/exp sweep cache serves repeats instantly), and an HTTP
// layer exposes submission, status, per-leaf progress streaming (SSE),
// cancellation, liveness/readiness probes and a shared Prometheus
// /metrics endpoint. With a journal configured the store is
// crash-safe: every lifecycle transition lands in an append-only JSONL
// write-ahead log, and a restart replays it — re-queueing interrupted
// jobs, serving completed results without re-running, and quarantining
// jobs that panicked. cmd/turnserver is the binary wrapper;
// cmd/servestorm is the kill/restart chaos harness.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"turnmodel/internal/exp"
)

// JobState is a job's position in its lifecycle. Transitions are
// queued -> running -> one of done/failed/canceled/timeout/poisoned,
// except that a job canceled while still queued goes straight to
// canceled, and journal replay can move a crashed running job back to
// queued.
type JobState string

// The job lifecycle states.
const (
	StateQueued  JobState = "queued"
	StateRunning JobState = "running"
	StateDone    JobState = "done"
	StateFailed  JobState = "failed"
	// StateCanceled is a job stopped by an explicit cancel (or server
	// shutdown) before completing.
	StateCanceled JobState = "canceled"
	// StateTimeout is a job that exceeded its deadline (the request's
	// timeout_seconds or the server's -job-timeout). Deadlines are
	// deterministic for a given configuration, so timed-out jobs are
	// never retried; a fresh submission replaces them.
	StateTimeout JobState = "timeout"
	// StatePoisoned is a job whose execution panicked. Poisoned jobs
	// are quarantined: journal replay never re-runs them and
	// resubmissions of the same configuration return the poisoned job
	// (the crash-loop guard). Clearing the journal lifts the
	// quarantine.
	StatePoisoned JobState = "poisoned"
)

// terminal reports whether no further transition can happen.
func (s JobState) terminal() bool {
	switch s {
	case StateDone, StateFailed, StateCanceled, StateTimeout, StatePoisoned:
		return true
	}
	return false
}

// replaceable reports whether a fresh submission of the same
// configuration replaces a job in this terminal state instead of
// returning it: transient outcomes (failure, cancellation, timeout)
// are not sticky, while done results and poisoned quarantines are.
func (s JobState) replaceable() bool {
	return s == StateFailed || s == StateCanceled || s == StateTimeout
}

// JobRequest is the POST /v1/jobs body: one figure sweep, mapping onto
// exp.Options plus the figure identity. Concurrency is the server's
// business — there is deliberately no workers field; Shards is honored
// because internal/exp clamps Workers x Shards to the machine budget.
type JobRequest struct {
	// Figure is the sweep to run, e.g. "fig13" (see exp.Figures).
	Figure string `json:"figure"`
	// Quick trades fidelity for speed, as in exp.Options.
	Quick bool `json:"quick,omitempty"`
	// Seed makes the stochastic sweeps reproducible.
	Seed int64 `json:"seed,omitempty"`
	// Loads overrides the sweep's offered-load points (flits/us/node).
	Loads []float64 `json:"loads,omitempty"`
	// WarmupCycles and MeasureCycles override the simulation window.
	WarmupCycles  int64 `json:"warmup_cycles,omitempty"`
	MeasureCycles int64 `json:"measure_cycles,omitempty"`
	// Shards is the per-engine shard count (0 serial, -1 auto).
	Shards int `json:"shards,omitempty"`
	// DisableRouteTables forces direct routing-relation evaluation, for
	// A/B comparisons over HTTP.
	DisableRouteTables bool `json:"disable_route_tables,omitempty"`
	// TimeoutSeconds bounds the job's execution; past it the job stops
	// at its next cancellation poll and reports state "timeout". Zero
	// means the server's -job-timeout (if any) applies; the effective
	// deadline is the tighter of the two. The timeout is operational,
	// not part of the result's content, so it does not enter the job's
	// content address: submissions differing only in timeout collapse
	// onto one job, which keeps the first request's timeout.
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
}

// options maps the request onto exp.Options. The result carries no
// concurrency, deadline or progress hooks; the store adds those per
// run.
func (r JobRequest) options() exp.Options {
	return exp.Options{
		Quick:              r.Quick,
		Seed:               r.Seed,
		Loads:              r.Loads,
		Warmup:             r.WarmupCycles,
		Measure:            r.MeasureCycles,
		Shards:             r.Shards,
		DisableRouteTables: r.DisableRouteTables,
	}
}

// validate resolves the figure and rejects nonsense parameters.
func (r JobRequest) validate() (exp.FigureSpec, error) {
	f, ok := exp.FigureByID(r.Figure)
	if !ok {
		return exp.FigureSpec{}, fmt.Errorf("unknown figure %q", r.Figure)
	}
	if r.WarmupCycles < 0 || r.MeasureCycles < 0 {
		return exp.FigureSpec{}, fmt.Errorf("negative simulation window")
	}
	if r.Shards < -1 {
		return exp.FigureSpec{}, fmt.Errorf("bad shard count %d", r.Shards)
	}
	if r.TimeoutSeconds < 0 {
		return exp.FigureSpec{}, fmt.Errorf("negative timeout %v", r.TimeoutSeconds)
	}
	for _, l := range r.Loads {
		if l <= 0 {
			return exp.FigureSpec{}, fmt.Errorf("non-positive load %v", l)
		}
	}
	return f, nil
}

// Event is one entry of a job's ordered event log, streamed to SSE
// subscribers and replayed to late joiners. Progress events carry the
// exp.ProgressEvent fields; terminal events carry the error, if any.
type Event struct {
	// Type is "queued", "running", "progress", or a terminal state.
	Type string `json:"type"`
	// Label, Done and Total are set on progress events.
	Label string `json:"label,omitempty"`
	Done  int    `json:"done,omitempty"`
	Total int    `json:"total,omitempty"`
	// CacheHit marks a terminal done event served from the sweep cache.
	CacheHit bool `json:"cache_hit,omitempty"`
	// Error is set on failed, timeout and poisoned events.
	Error string `json:"error,omitempty"`
	// Stack is the panic stack of a poisoned event.
	Stack string `json:"stack,omitempty"`
	// Attempt is the 1-based execution attempt on running events; past
	// 1 it marks a crash-replay re-run.
	Attempt int `json:"attempt,omitempty"`
	// Replayed marks events reconstructed from the journal at startup
	// rather than observed live.
	Replayed bool `json:"replayed,omitempty"`
}

// Job is one submitted figure sweep. The ID is the content address of
// the canonical configuration: resubmitting the same body yields the
// same job. All mutable state is guarded by mu; notify is closed and
// replaced on every event append so stream subscribers can wait
// without polling and without per-subscriber goroutines.
type Job struct {
	// ID is the content-addressed job identifier (hex, 16 bytes of the
	// SHA-256 of the exp cache key).
	ID string
	// Key is the underlying exp.CacheKey.
	Key string
	// Req echoes the submitted request.
	Req JobRequest

	mu      sync.Mutex
	notify  chan struct{} // closed + replaced on every append
	state   JobState
	events  []Event
	result  []byte // exp.WriteFigureJSON bytes, set when state == done
	errMsg  string
	stack   string // panic stack, set when state == poisoned
	cancel  chan struct{}
	stopped bool // cancel already closed
	// cacheHit records that the run completed without running a single
	// leaf simulation: every sweep came from the exp cache.
	cacheHit bool
	// leaves counts leaf simulations this job actually ran.
	leaves int
	// attempt counts executions begun, including runs lost to crashes
	// (restored from the journal's start entries on replay).
	attempt int
	// notBefore delays a crash-replayed job's re-run (capped
	// exponential backoff); the worker honors it before starting.
	notBefore time.Time
	// replayed marks a job reconstructed from the journal.
	replayed bool

	submitted time.Time
}

// jobID derives the content-addressed identifier from the canonical
// cache key.
func jobID(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:16])
}

// newJob builds a queued job for a validated request.
func newJob(req JobRequest, key string) *Job {
	j := &Job{
		ID:        jobID(key),
		Key:       key,
		Req:       req,
		state:     StateQueued,
		notify:    make(chan struct{}),
		cancel:    make(chan struct{}),
		submitted: time.Now(),
	}
	j.events = append(j.events, Event{Type: string(StateQueued)})
	return j
}

// restoredJob rebuilds a job from its folded journal state, with a
// synthetic event log marked Replayed.
func restoredJob(id string, st *replayState) *Job {
	j := &Job{
		ID:        id,
		Key:       st.Key,
		Req:       st.Req,
		notify:    make(chan struct{}),
		cancel:    make(chan struct{}),
		submitted: st.Submitted,
		replayed:  true,
		attempt:   st.Attempts,
	}
	j.events = append(j.events, Event{Type: string(StateQueued), Replayed: true, Attempt: st.Attempts})
	switch {
	case st.State == StateDone:
		j.state = StateDone
		j.result = []byte(st.Result)
		j.cacheHit = st.CacheHit
		j.events = append(j.events,
			Event{Type: string(StateRunning), Replayed: true},
			Event{Type: string(StateDone), Replayed: true, CacheHit: st.CacheHit})
	case st.State.terminal():
		j.state = st.State
		j.errMsg = st.Error
		j.stack = st.Stack
		if st.Attempts > 0 {
			j.events = append(j.events, Event{Type: string(StateRunning), Replayed: true, Attempt: st.Attempts})
		}
		j.events = append(j.events, Event{Type: string(st.State), Replayed: true, Error: st.Error, Stack: st.Stack})
	default:
		// Queued or running at crash time: back to the queue. The
		// store decides backoff and the retry budget.
		j.state = StateQueued
	}
	return j
}

// notifyLocked wakes every stream waiter; callers hold mu.
func (j *Job) notifyLocked() {
	close(j.notify)
	j.notify = make(chan struct{})
}

// State returns the current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Result returns the finished figure JSON (byte-identical to
// exp.WriteFigureJSON on the same configuration) and whether it is
// available yet.
func (j *Job) Result() ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.state == StateDone
}

// next blocks until the event log grows past from, the job reaches a
// terminal state, or done fires (the stream client disconnected). It
// returns the new events plus whether the log is complete: a terminal
// state with every event consumed returns (nil, true), and a fired
// done channel returns (nil, false) — the caller distinguishes via its
// request context. Waiting is channel-based (no condvar), so a
// vanished client can never strand a waiter: the select observes the
// disconnect directly.
func (j *Job) next(from int, done <-chan struct{}) ([]Event, bool) {
	for {
		j.mu.Lock()
		if len(j.events) > from {
			out := append([]Event(nil), j.events[from:]...)
			complete := j.state.terminal() && from+len(out) == len(j.events)
			j.mu.Unlock()
			return out, complete
		}
		if j.state.terminal() {
			j.mu.Unlock()
			return nil, true
		}
		ch := j.notify
		j.mu.Unlock()
		select {
		case <-ch:
		case <-done:
			return nil, false
		}
	}
}

// Status is the JSON shape of GET /v1/jobs/{id} and of job listings.
type Status struct {
	// ID and Figure identify the job; State its lifecycle position.
	ID     string   `json:"id"`
	Figure string   `json:"figure"`
	State  JobState `json:"state"`
	// Done and Total report leaf-simulation progress while running.
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
	// CacheHit marks a completed job served entirely from the sweep
	// cache; LeavesRun counts the leaf simulations it actually ran.
	CacheHit  bool `json:"cache_hit,omitempty"`
	LeavesRun int  `json:"leaves_run,omitempty"`
	// Attempt counts executions begun, including runs lost to crashes.
	Attempt int `json:"attempt,omitempty"`
	// Replayed marks a job reconstructed from the journal at startup.
	Replayed bool `json:"replayed,omitempty"`
	// Error is the failure message of a failed, timed-out or poisoned
	// job; Stack is the panic stack of a poisoned one.
	Error string `json:"error,omitempty"`
	Stack string `json:"stack,omitempty"`
	// SubmittedAt is the admission timestamp, RFC 3339.
	SubmittedAt string `json:"submitted_at"`
}

// Status snapshots the job for the status and list endpoints.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Status{
		ID:          j.ID,
		Figure:      j.Req.Figure,
		State:       j.state,
		CacheHit:    j.cacheHit,
		LeavesRun:   j.leaves,
		Attempt:     j.attempt,
		Replayed:    j.replayed,
		Error:       j.errMsg,
		Stack:       j.stack,
		SubmittedAt: j.submitted.UTC().Format(time.RFC3339),
	}
	for i := len(j.events) - 1; i >= 0; i-- {
		if j.events[i].Type == "progress" {
			s.Done, s.Total = j.events[i].Done, j.events[i].Total
			break
		}
	}
	return s
}
