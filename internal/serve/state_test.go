package serve

import (
	"testing"
)

// TestJobStatePredicates pins the lifecycle taxonomy: which states are
// terminal, and which terminals a fresh submission may replace.
func TestJobStatePredicates(t *testing.T) {
	cases := []struct {
		state       JobState
		terminal    bool
		replaceable bool
	}{
		{StateQueued, false, false},
		{StateRunning, false, false},
		{StateDone, true, false},     // authoritative result
		{StateFailed, true, true},    // transient: retry by resubmitting
		{StateCanceled, true, true},  // transient: operator's choice
		{StateTimeout, true, true},   // transient: raise the budget and retry
		{StatePoisoned, true, false}, // quarantined: never auto-replaced
		{JobState("bogus"), false, false},
	}
	for _, c := range cases {
		if got := c.state.terminal(); got != c.terminal {
			t.Errorf("%s.terminal() = %v, want %v", c.state, got, c.terminal)
		}
		if got := c.state.replaceable(); got != c.replaceable {
			t.Errorf("%s.replaceable() = %v, want %v", c.state, got, c.replaceable)
		}
	}
}

// ent abbreviates journal entries in the fold tables below.
func ent(typ, id string) journalEntry { return journalEntry{Type: typ, ID: id} }

// TestFoldJournalTransitions is the table-driven replay state machine:
// each case is a journal entry sequence for one job and the folded
// state replay must reconstruct, including the crash edges (start with
// no terminal), the replacement rule (submit over a replaceable
// terminal starts a fresh incarnation) and the stickiness of done and
// poisoned.
func TestFoldJournalTransitions(t *testing.T) {
	const id = "job1"
	submit := journalEntry{Type: "submit", ID: id, Key: "k", Req: &JobRequest{Figure: "fig13"}}
	start := func(a int) journalEntry { return journalEntry{Type: "start", ID: id, Attempt: a} }
	cases := []struct {
		name     string
		entries  []journalEntry
		state    JobState
		attempts int
	}{
		{"submit only -> queued (crash before start)",
			[]journalEntry{submit}, StateQueued, 0},
		{"submit+start -> running (crash mid-run)",
			[]journalEntry{submit, start(1)}, StateRunning, 1},
		{"full happy path -> done",
			[]journalEntry{submit, start(1), ent("done", id)}, StateDone, 1},
		{"failure -> failed",
			[]journalEntry{submit, start(1), ent("failed", id)}, StateFailed, 1},
		{"cancel while running -> canceled",
			[]journalEntry{submit, start(1), ent("canceled", id)}, StateCanceled, 1},
		{"cancel while queued -> canceled, no attempt",
			[]journalEntry{submit, ent("canceled", id)}, StateCanceled, 0},
		{"deadline exceeded -> timeout",
			[]journalEntry{submit, start(1), ent("timeout", id)}, StateTimeout, 1},
		{"panic -> poisoned",
			[]journalEntry{submit, start(1), ent("poisoned", id)}, StatePoisoned, 1},
		{"two crashes -> running with two attempts",
			[]journalEntry{submit, start(1), start(2)}, StateRunning, 2},
		{"resubmit over failed -> fresh queued incarnation",
			[]journalEntry{submit, start(1), ent("failed", id), submit}, StateQueued, 0},
		{"resubmit over timeout -> fresh queued incarnation",
			[]journalEntry{submit, start(1), ent("timeout", id), submit}, StateQueued, 0},
		{"resubmit over done -> done stays authoritative",
			[]journalEntry{submit, start(1), ent("done", id), submit}, StateDone, 1},
		{"resubmit over poisoned -> quarantine stays",
			[]journalEntry{submit, start(1), ent("poisoned", id), submit}, StatePoisoned, 1},
		{"events after a terminal are ignored",
			[]journalEntry{submit, start(1), ent("done", id), ent("canceled", id), start(9)}, StateDone, 1},
		{"terminal for an unsubmitted job is ignored",
			[]journalEntry{ent("done", id)}, JobState(""), 0},
		{"start for an unsubmitted job is ignored",
			[]journalEntry{start(1)}, JobState(""), 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, states := foldJournal(c.entries)
			st := states[id]
			if st == nil {
				if c.state != JobState("") {
					t.Fatalf("fold dropped the job, want state %s", c.state)
				}
				return
			}
			if c.state == JobState("") {
				t.Fatalf("fold kept an unsubmitted job: %+v", st)
			}
			if st.State != c.state || st.Attempts != c.attempts {
				t.Errorf("fold = state %s attempts %d, want %s/%d", st.State, st.Attempts, c.state, c.attempts)
			}
		})
	}
}

// TestFoldJournalOrder: the returned ID order is first-submission
// order — the deterministic re-queue order after a crash — and a
// resubmission does not move a job to the back.
func TestFoldJournalOrder(t *testing.T) {
	sub := func(id string) journalEntry {
		return journalEntry{Type: "submit", ID: id, Req: &JobRequest{Figure: "fig13"}}
	}
	order, _ := foldJournal([]journalEntry{
		sub("a"), sub("b"), ent("failed", "a"), sub("c"), sub("a"),
	})
	if got, want := len(order), 3; got != want {
		t.Fatalf("order = %v, want 3 ids", order)
	}
	for i, want := range []string{"a", "b", "c"} {
		if order[i] != want {
			t.Fatalf("order = %v, want [a b c]", order)
		}
	}
}

// TestRestoredJobEventLogs: the synthetic event logs of replayed jobs
// mirror the live ones — a stream subscriber cannot tell a replayed
// terminal from one it watched happen, except for the Replayed mark.
func TestRestoredJobEventLogs(t *testing.T) {
	cases := []struct {
		name   string
		st     replayState
		state  JobState
		events []string // expected event type sequence
	}{
		{"done", replayState{State: StateDone, Result: "{}\n", Attempts: 1},
			StateDone, []string{"queued", "running", "done"}},
		{"poisoned", replayState{State: StatePoisoned, Error: "panic: x", Stack: "st", Attempts: 1},
			StatePoisoned, []string{"queued", "running", "poisoned"}},
		{"canceled while queued", replayState{State: StateCanceled},
			StateCanceled, []string{"queued", "canceled"}},
		{"interrupted -> requeued", replayState{State: StateRunning, Attempts: 2},
			StateQueued, []string{"queued"}},
		{"never started -> requeued", replayState{State: StateQueued},
			StateQueued, []string{"queued"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			st := c.st
			j := restoredJob("id", &st)
			if got := j.State(); got != c.state {
				t.Fatalf("restored state = %s, want %s", got, c.state)
			}
			events, complete := j.next(0, nil)
			if complete != c.state.terminal() {
				t.Errorf("next complete = %v, want %v", complete, c.state.terminal())
			}
			if len(events) != len(c.events) {
				t.Fatalf("events = %+v, want types %v", events, c.events)
			}
			for i, want := range c.events {
				if events[i].Type != want {
					t.Fatalf("event[%d] = %+v, want type %s", i, events[i], want)
				}
				if !events[i].Replayed {
					t.Errorf("event[%d] not marked replayed: %+v", i, events[i])
				}
			}
			if c.state == StateDone {
				if res, ok := j.Result(); !ok || string(res) != "{}\n" {
					t.Errorf("restored result = %q, %v", res, ok)
				}
			}
		})
	}
}

// TestReplayBackoff pins the capped exponential schedule.
func TestReplayBackoff(t *testing.T) {
	const base = 500 // milliseconds
	cases := []struct{ attempt, wantMS int }{
		{1, 500}, {2, 1000}, {3, 2000}, {4, 4000},
		{7, 30000}, // 32s caps at 30s
		{100, 30000},
	}
	for _, c := range cases {
		if got := replayBackoff(base*1e6, c.attempt); got.Milliseconds() != int64(c.wantMS) {
			t.Errorf("replayBackoff(500ms, %d) = %v, want %dms", c.attempt, got, c.wantMS)
		}
	}
}
