package exp

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"turnmodel/internal/routing"
	"turnmodel/internal/topology"
	"turnmodel/internal/traffic"
)

// TestSweepMetricsCollection: with metrics enabled, every sweep point
// carries a collector summary whose totals look like a real run, the
// written dump round-trips as JSON, and the measured Results are
// identical to a metrics-free sweep (the determinism invariant at the
// harness level).
func TestSweepMetricsCollection(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	alg := routing.NewWestFirst(topo)
	pat := traffic.NewUniform(topo)
	loads := []float64{0.5, 1.0}
	base := Options{Seed: 5, Warmup: 500, Measure: 2000}

	plain, err := RunSweep(alg, pat, loads, base)
	if err != nil {
		t.Fatal(err)
	}
	withM := base
	withM.MetricsInterval = 500
	metered, err := RunSweep(alg, pat, loads, withM)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.Points {
		if plain.Points[i].Result != metered.Points[i].Result {
			t.Errorf("load %v: metrics perturbed the result", plain.Points[i].Offered)
		}
		m := metered.Points[i].Metrics
		if m == nil {
			t.Fatalf("load %v: no metrics summary", metered.Points[i].Offered)
		}
		if m.Cycles != 2500 || m.DeliveredFlits == 0 || m.Grants == 0 || m.Samples == 0 {
			t.Errorf("load %v: implausible summary %+v", metered.Points[i].Offered, m)
		}
		if plain.Points[i].Metrics != nil {
			t.Error("metrics-free sweep carries a summary")
		}
	}

	dir := t.TempDir()
	if err := WriteSweepMetrics(dir, "testsweep", withM, []Sweep{metered}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "testsweep.metrics.json"))
	if err != nil {
		t.Fatal(err)
	}
	var dump SweepMetrics
	if err := json.Unmarshal(data, &dump); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if dump.ID != "testsweep" || len(dump.Series) != 1 || len(dump.Series[0].Points) != len(loads) {
		t.Errorf("dump shape wrong: %+v", dump)
	}
	if dump.SampleIntervalCycles != 500 {
		t.Errorf("dump interval = %d, want 500", dump.SampleIntervalCycles)
	}
}

// TestProgressLines: the tracker emits a final 100% line with the
// configured label, and a nil tracker (progress off) is inert.
func TestProgressLines(t *testing.T) {
	var buf bytes.Buffer
	p := newProgress(Options{Progress: &buf}, "figX", 3)
	for i := 0; i < 3; i++ {
		p.tick()
	}
	out := buf.String()
	if !strings.Contains(out, "figX: 3/3 sims (100%)") {
		t.Errorf("missing final progress line in %q", out)
	}
	var nilP *progress
	nilP.tick() // must not panic
	if p := newProgress(Options{}, "off", 3); p != nil {
		t.Error("progress tracker created without a writer")
	}
}

// TestFigureMetricsCacheSplit: a metrics-enabled figure run must not
// reuse cached metrics-free sweeps (which carry no summaries).
func TestFigureMetricsCacheSplit(t *testing.T) {
	f := Figures[0]
	plain := Options{Quick: true, Seed: 9, Loads: []float64{0.5}, Warmup: 200, Measure: 500}
	metered := plain
	metered.MetricsInterval = 250
	if cacheKey(f, plain) == cacheKey(f, metered) {
		t.Error("metrics-enabled and metrics-free runs share a cache key")
	}
}
