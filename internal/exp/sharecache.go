package exp

// Cross-leaf compile cache. A wide sweep runs dozens of leaf
// simulations over a handful of distinct (topology, algorithm) pairs,
// and each distinct pair costs a topology construction plus a route-
// table compilation (quadratic in the node count). Interning the
// instances here makes every leaf of every sweep in the process share
// one topology, one relation and — via routing's per-instance table
// cache — one compiled table per distinct (topology, algorithm, fault
// epoch), instead of paying the setup per leaf or per sweep.
//
// Ownership rules:
//
//   - Shared instances are PRISTINE. A caller must never attach a
//     fault plan to, or otherwise mutate, a shared topology: the
//     instances are served concurrently to every sweep in the process,
//     and a fault epoch bump would invalidate every sharer's table
//     mid-run. Fault-mutating runs (degrade's campaign rows,
//     faultstorm-style chaos drivers) construct private copies — the
//     fault driver heals them afterwards, but even transient mutation
//     disqualifies an instance from sharing.
//   - The intern key includes the topology's fault epoch, so even if a
//     shared topology were mutated in violation of the rule above, a
//     later SharedAlgorithm call would intern (and compile) a fresh
//     instance rather than serve a relation whose table is stale.
//   - Shared relations' table-cache entries are pinned
//     (routing.PinTable) for the life of the process: the table cache's
//     size-cap eviction is meant for test-suite churn through
//     short-lived instances, not for the handful of relations the sweep
//     layer deliberately keeps warm.

import (
	"fmt"
	"sync"

	"turnmodel/internal/routing"
	"turnmodel/internal/topology"
)

var (
	sharedMu    sync.Mutex
	sharedTopos = map[string]*topology.Topology{}
	sharedAlgs  = map[string]routing.Algorithm{}
)

// SharedTopology interns the topology mk builds under its canonical
// name (e.g. "mesh16x16"): the first caller's instance is kept and
// every later caller with a structurally identical topology gets it
// back. Shared topologies must stay pristine — see the ownership rules
// above.
func SharedTopology(mk func() *topology.Topology) *topology.Topology {
	t := mk()
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if got, ok := sharedTopos[t.String()]; ok {
		return got
	}
	sharedTopos[t.String()] = t
	return t
}

// SharedAlgorithm interns the relation mk builds on t under (topology,
// algorithm name, fault epoch) and pins its compiled table. Relation
// names are parameter-qualified (e.g. "abonf(excl 2)",
// "turns(west-first,minimal)"), so the name distinguishes differently
// parameterized instances of one constructor. t should itself be a
// SharedTopology instance; interning a relation on a private topology
// would leak the private instance into every later sharer.
func SharedAlgorithm(t *topology.Topology, mk func(*topology.Topology) routing.Algorithm) routing.Algorithm {
	return internAlg(t, mk(t))
}

// SharedAlgorithms interns every relation of algs (all built on t), in
// order. It is the slice form of SharedAlgorithm for FigureSpec.Algs
// sets.
func SharedAlgorithms(t *topology.Topology, algs []routing.Algorithm) []routing.Algorithm {
	out := make([]routing.Algorithm, len(algs))
	for i, a := range algs {
		out[i] = internAlg(t, a)
	}
	return out
}

func internAlg(t *topology.Topology, alg routing.Algorithm) routing.Algorithm {
	key := fmt.Sprintf("%s@%d/%s", t.String(), t.FaultEpoch(), alg.Name())
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if got, ok := sharedAlgs[key]; ok {
		return got
	}
	// Pin under the engine's cache key: the simulator compiles through
	// routing.AsVC(alg), and AsVC is stable — equal inputs yield equal
	// (map-comparable) wrapper values. The pin is held for the process
	// lifetime, like the interned instance itself.
	routing.PinTable(routing.AsVC(alg))
	sharedAlgs[key] = alg
	return alg
}
