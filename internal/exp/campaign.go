package exp

import "sync"

// RunFigureSet runs a batch of figure specs through one shared worker
// pool — the PrefetchFigures fan-out — and invokes onDone serially as
// each figure completes, in completion order. Cached figures complete
// immediately (still through onDone), so a caller that checkpoints
// completed figures can resume an interrupted batch and see every
// figure exactly once. Figures that fail (including cancellation via
// Options.Cancel) do not reach onDone; the first error is returned
// after the whole batch has drained.
//
// onDone is called with the pool's slots still busy on other figures,
// so it should be brief (append a log record, update a counter); it
// never needs its own locking.
func RunFigureSet(figs []FigureSpec, o Options, onDone func(FigureSpec, []Sweep)) error {
	var doneMu sync.Mutex
	emit := func(f FigureSpec, s []Sweep) {
		if onDone == nil {
			return
		}
		doneMu.Lock()
		defer doneMu.Unlock()
		onDone(f, s)
	}

	// Split cached from pending first, so an auto shard request resolves
	// against the true parallelism of the work that will actually run.
	type pending struct {
		i   int
		f   FigureSpec
		key string
	}
	var todo []pending
	leaves := 0
	for i, f := range figs {
		key := cacheKey(f, o)
		sweepMu.Lock()
		s, cached := sweepCache[key]
		sweepMu.Unlock()
		if cached {
			emit(f, s)
			continue
		}
		todo = append(todo, pending{i, f, key})
		leaves += figureLeaves(f, o)
	}
	ro := o.resolveShards(leaves)
	sem := make(chan struct{}, ro.workers())
	errs := make([]error, len(figs))
	var wg sync.WaitGroup
	for _, p := range todo {
		wg.Add(1)
		go func(p pending) {
			defer wg.Done()
			sweeps, err := runFigure(p.f, ro, sem)
			if err != nil {
				errs[p.i] = err
				return
			}
			sweepMu.Lock()
			sweepCache[p.key] = sweeps
			sweepMu.Unlock()
			emit(p.f, sweeps)
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
