package exp

import (
	"fmt"
	"io"

	"turnmodel/internal/analytic"
	"turnmodel/internal/routing"
	"turnmodel/internal/stats"
	"turnmodel/internal/topology"
	"turnmodel/internal/traffic"
)

func init() {
	register(Experiment{
		ID:    "analytic",
		Title: "Section 1 (text): topology figures of merit and channel-load saturation bounds",
		Run:   runAnalytic,
	})
}

// runAnalytic prints the Section 1 low- versus high-dimension comparison
// (channels, bisection, diameter) and the flow-based channel-load
// analysis that explains the Section 6 results: the busiest channel's
// load caps sustainable throughput, and the transpose pattern loads xy's
// busiest channel far more than negative-first's.
func runAnalytic(_ Options, w io.Writer) error {
	tbl := stats.NewTable("topology", "nodes", "channels", "bisection", "diameter", "avg hops (uniform)")
	for _, t := range []*topology.Topology{
		topology.NewMesh(16, 16),
		topology.NewTorus(16, 2),
		topology.NewHypercube(8),
	} {
		s := analytic.Summarize(t)
		tbl.AddRow(t.String(), s.Nodes, s.Channels, s.BisectionChannels, s.Diameter, fmt.Sprintf("%.2f", s.AvgMinimalHops))
	}
	fmt.Fprintf(w, "256-node topologies (Section 1's scalability comparison):\n%s\n", tbl)

	mesh := topology.NewMesh(16, 16)
	tbl2 := stats.NewTable("pattern", "algorithm", "max channel load", "saturation bound (flits/us/node)")
	type cfg struct {
		pattern string
		alg     routing.Algorithm
		loads   []float64
	}
	var rows []cfg
	for _, alg := range []routing.Algorithm{routing.NewDimensionOrder(mesh), routing.NewNegativeFirst(mesh), routing.NewWestFirst(mesh)} {
		rows = append(rows,
			cfg{"uniform", alg, analytic.UniformChannelLoads(alg)},
			cfg{"matrix-transpose", alg, analytic.ChannelLoads(alg, traffic.NewMeshTranspose(mesh))},
		)
	}
	for _, r := range rows {
		maxLoad, _ := analytic.MaxLoad(mesh, r.loads)
		tbl2.AddRow(r.pattern, r.alg.Name(), fmt.Sprintf("%.3f", maxLoad), fmt.Sprintf("%.2f", analytic.SaturationBound(maxLoad)))
	}
	fmt.Fprintf(w, "16x16 mesh channel loads (flow split evenly among candidates):\n%s\n", tbl2)
	fmt.Fprintf(w, "the transpose rows explain Figure 14 analytically: xy concentrates the\ntranspose flows onto few channels while negative-first's adaptive branch\nspreads them, so its saturation bound — and measured throughput — is higher\n")
	return nil
}
