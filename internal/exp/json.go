package exp

import (
	"encoding/json"
	"io"

	"turnmodel/internal/sim"
)

// FigureJSON is the machine-readable form of a regenerated figure, for
// downstream plotting.
type FigureJSON struct {
	ID     string       `json:"id"`
	Title  string       `json:"title"`
	Series []SeriesJSON `json:"series"`
}

// SeriesJSON is one algorithm's curve.
type SeriesJSON struct {
	Algorithm string      `json:"algorithm"`
	Points    []PointJSON `json:"points"`
	// MaxSustainableThroughput is the paper's summary statistic, in
	// flits/us.
	MaxSustainableThroughput float64 `json:"max_sustainable_throughput"`
}

// PointJSON is one load point.
type PointJSON struct {
	OfferedLoad   float64 `json:"offered_load_flits_per_us_per_node"`
	Throughput    float64 `json:"throughput_flits_per_us"`
	AvgLatencyUs  float64 `json:"avg_latency_us"`
	NetLatencyUs  float64 `json:"net_latency_us"`
	P99LatencyUs  float64 `json:"p99_latency_us"`
	AvgHops       float64 `json:"avg_hops"`
	Sustainable   bool    `json:"sustainable"`
	BacklogGrowth int64   `json:"backlog_growth_flits"`
}

// ToJSON converts a figure's sweeps to the JSON form.
func ToJSON(f FigureSpec, sweeps []Sweep) FigureJSON {
	out := FigureJSON{ID: f.ID, Title: f.Title}
	for _, s := range sweeps {
		sj := SeriesJSON{Algorithm: s.Algorithm}
		sj.MaxSustainableThroughput, _ = s.MaxSustainable()
		for _, p := range s.Points {
			sj.Points = append(sj.Points, pointJSON(p.Offered, p.Result))
		}
		out.Series = append(out.Series, sj)
	}
	return out
}

func pointJSON(offered float64, r sim.Result) PointJSON {
	return PointJSON{
		OfferedLoad:   offered,
		Throughput:    r.Throughput,
		AvgLatencyUs:  r.AvgLatency,
		NetLatencyUs:  r.AvgNetLatency,
		P99LatencyUs:  r.LatencyP99,
		AvgHops:       r.AvgHops,
		Sustainable:   r.Sustainable,
		BacklogGrowth: r.BacklogGrowth,
	}
}

// WriteFigureJSON writes a figure's series as indented JSON.
func WriteFigureJSON(w io.Writer, f FigureSpec, sweeps []Sweep) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ToJSON(f, sweeps))
}
