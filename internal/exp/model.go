package exp

import (
	"fmt"
	"io"
	"math/big"

	"turnmodel/internal/adapt"
	"turnmodel/internal/core"
	"turnmodel/internal/deadlock"
	"turnmodel/internal/routing"
	"turnmodel/internal/sim"
	"turnmodel/internal/stats"
	"turnmodel/internal/topology"
	"turnmodel/internal/traffic"
)

// Figure1Script returns the paper's Figure 1 scenario: four packets on a
// 2x2 mesh, each trying to turn left, injected simultaneously. Under an
// unrestricted (fully adaptive) relation they enter a circular wait.
func Figure1Script() []sim.ScriptedMessage {
	t := topology.NewMesh(2, 2)
	east := topology.Direction{Dim: 0, Pos: true}
	west := topology.Direction{Dim: 0}
	north := topology.Direction{Dim: 1, Pos: true}
	south := topology.Direction{Dim: 1}
	at := func(x, y int) topology.NodeID { return t.ID(topology.Coord{x, y}) }
	return []sim.ScriptedMessage{
		{Src: at(0, 0), Dst: at(1, 1), Length: 4, FirstDir: &east},
		{Src: at(1, 0), Dst: at(0, 1), Length: 4, FirstDir: &north},
		{Src: at(1, 1), Dst: at(0, 0), Length: 4, FirstDir: &west},
		{Src: at(0, 1), Dst: at(1, 0), Length: 4, FirstDir: &south},
	}
}

// RunFigure1 simulates the Figure 1 scenario under alg and reports the
// outcome. The scripted first hops steer each packet into the left-turn
// pattern when the relation offers them.
func RunFigure1(alg routing.Algorithm, seed int64) (sim.Result, error) {
	return sim.Run(sim.Config{
		Algorithm:         alg,
		Script:            Figure1Script(),
		Seed:              seed,
		DeadlockThreshold: 500,
		DrainDeadline:     100000,
	})
}

func init() {
	register(Experiment{
		ID:    "fig1",
		Title: "Figure 1: a wormhole deadlock involving four routers and four packets",
		Run: func(o Options, w io.Writer) error {
			t := topology.NewMesh(2, 2)
			full := routing.NewFullyAdaptive(t)
			r, err := RunFigure1(full, o.Seed)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "four packets, each turning left, under %s routing:\n  deadlocked=%v delivered=%d/%d\n",
				full.Name(), r.Deadlocked, r.PacketsDelivered, r.PacketsGenerated)
			wf := routing.NewWestFirst(t)
			r2, err := RunFigure1(wf, o.Seed)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "same scenario under %s (two turns prohibited):\n  deadlocked=%v delivered=%d/%d\n",
				wf.Name(), r2.Deadlocked, r2.PacketsDelivered, r2.PacketsGenerated)
			return nil
		},
	})

	register(Experiment{
		ID:    "fig2",
		Title: "Figure 2: the possible abstract cycles and turns in a 2D mesh",
		Run: func(_ Options, w io.Writer) error {
			turns := core.AllTurns(2)
			fmt.Fprintf(w, "90-degree turns in a 2D mesh: %d (4n(n-1) with n=2)\n", len(turns))
			for _, c := range core.AbstractCycles(2) {
				fmt.Fprintf(w, "  %v\n", c)
			}
			return nil
		},
	})

	register(Experiment{
		ID:    "fig3",
		Title: "Figure 3: only four turns are allowed in the xy routing algorithm",
		Run: func(_ Options, w io.Writer) error {
			set := core.DimensionOrderSet(2)
			fmt.Fprintf(w, "xy allowed turns: %d of %d\nprohibited: %v\n",
				set.NumAllowed(), len(core.AllTurns(2)), set.Prohibited())
			t := topology.NewMesh(8, 8)
			res := deadlock.Check(routing.NewDimensionOrder(t))
			fmt.Fprintf(w, "xy on %v: %v\n", t, res)
			// No adaptiveness: every pair has exactly one path.
			xy := routing.NewDimensionOrder(t)
			one := big.NewInt(1)
			for src := topology.NodeID(0); src < topology.NodeID(t.Nodes()); src++ {
				for dst := topology.NodeID(0); dst < topology.NodeID(t.Nodes()); dst++ {
					if src == dst {
						continue
					}
					if adapt.CountShortestPaths(xy, src, dst).Cmp(one) != 0 {
						return fmt.Errorf("xy offered multiple paths for %d->%d", src, dst)
					}
				}
			}
			fmt.Fprintf(w, "every source-destination pair has exactly 1 path (no adaptiveness)\n")
			return nil
		},
	})

	register(Experiment{
		ID:    "fig4",
		Title: "Figure 4: six turns that complete the abstract cycles and allow deadlock",
		Run: func(_ Options, w io.Writer) error {
			set := core.Figure4Set()
			ok, _ := set.BreaksAllAbstractCycles()
			fmt.Fprintf(w, "%v\nprohibits one turn from each abstract cycle: %v\n", set, ok)
			t := topology.NewMesh(4, 4)
			res := deadlock.CheckTurnSet(t, set)
			fmt.Fprintf(w, "turn-relation channel dependency graph on %v: %v\n", t, res)
			if res.DeadlockFree {
				return fmt.Errorf("figure 4 set unexpectedly deadlock free")
			}
			fmt.Fprintf(w, "the three allowed left turns compose to the prohibited right\nturn (and vice versa), so both cycles still exist\n")
			return nil
		},
	})

	registerTurnSetFigure("fig5", "Figure 5: the west-first routing algorithm for 2D meshes",
		core.WestFirstSet, func(t *topology.Topology) routing.Algorithm { return routing.NewWestFirst(t) })
	registerTurnSetFigure("fig9", "Figure 9: the north-last routing algorithm for 2D meshes",
		core.NorthLastSet, func(t *topology.Topology) routing.Algorithm { return routing.NewNorthLast(t) })
	registerTurnSetFigure("fig10", "Figure 10: the negative-first routing algorithm for 2D meshes",
		func() *core.Set { return core.NegativeFirstSet(2) },
		func(t *topology.Topology) routing.Algorithm { return routing.NewNegativeFirst(t) })

	register(Experiment{
		ID:    "thm1",
		Title: "Theorems 1 & 6: a quarter of the turns must and may be prohibited",
		Run: func(_ Options, w io.Writer) error {
			tbl := stats.NewTable("n", "turns 4n(n-1)", "abstract cycles n(n-1)", "minimum prohibited", "negative-first prohibits")
			for n := 2; n <= 6; n++ {
				nf := core.NegativeFirstSet(n)
				tbl.AddRow(n, core.NumTurns(n), core.NumAbstractCycles(n),
					core.MinimumProhibited(n), len(nf.Prohibited()))
			}
			fmt.Fprint(w, tbl)
			fmt.Fprintf(w, "\nsufficiency witness: negative-first prohibits exactly n(n-1) turns and is deadlock free (thm5)\n")
			return nil
		},
	})

	register(Experiment{
		ID:    "thm2",
		Title: "Theorem 2 (Figures 6-8): west-first is deadlock free, via strictly decreasing channel numbers",
		Run: func(_ Options, w io.Writer) error {
			for _, dims := range [][2]int{{4, 4}, {8, 8}, {16, 16}, {5, 9}} {
				t := topology.NewMesh(dims[0], dims[1])
				alg := routing.NewWestFirst(t)
				g := deadlock.BuildCDG(alg)
				viol := deadlock.VerifyMonotone(g, deadlock.WestFirstNumbering(t), deadlock.Decreasing)
				fmt.Fprintf(w, "%v: %d dependency edges, numbering violations: %d, acyclic: %v\n",
					t, g.NumEdges(), len(viol), g.Acyclic())
				if len(viol) > 0 || !g.Acyclic() {
					return fmt.Errorf("west-first failed deadlock-freedom verification on %v", t)
				}
			}
			return nil
		},
	})

	register(Experiment{
		ID:    "thm3",
		Title: "Theorem 3: north-last is deadlock free (rotated west-first numbering, strictly increasing)",
		Run: func(_ Options, w io.Writer) error {
			for _, dims := range [][2]int{{4, 4}, {8, 8}, {16, 16}, {9, 5}} {
				t := topology.NewMesh(dims[0], dims[1])
				alg := routing.NewNorthLast(t)
				g := deadlock.BuildCDG(alg)
				viol := deadlock.VerifyMonotone(g, deadlock.NorthLastNumbering(t), deadlock.Increasing)
				fmt.Fprintf(w, "%v: %d dependency edges, numbering violations: %d, acyclic: %v\n",
					t, g.NumEdges(), len(viol), g.Acyclic())
				if len(viol) > 0 || !g.Acyclic() {
					return fmt.Errorf("north-last failed deadlock-freedom verification on %v", t)
				}
			}
			return nil
		},
	})

	register(Experiment{
		ID:    "thm5",
		Title: "Theorems 4 & 5: negative-first is deadlock free in n dimensions (K-n+-X numbering, strictly increasing)",
		Run: func(_ Options, w io.Writer) error {
			tops := []*topology.Topology{
				topology.NewMesh(16, 16),
				topology.NewMesh(4, 4, 4),
				topology.NewMesh(3, 4, 5, 2),
				topology.NewHypercube(8),
			}
			for _, t := range tops {
				alg := routing.NewNegativeFirst(t)
				g := deadlock.BuildCDG(alg)
				viol := deadlock.VerifyMonotone(g, deadlock.NegativeFirstNumbering(t), deadlock.Increasing)
				fmt.Fprintf(w, "%v: %d dependency edges, numbering violations: %d, acyclic: %v\n",
					t, g.NumEdges(), len(viol), g.Acyclic())
				if len(viol) > 0 || !g.Acyclic() {
					return fmt.Errorf("negative-first failed deadlock-freedom verification on %v", t)
				}
			}
			return nil
		},
	})

	register(Experiment{
		ID:    "turnpairs",
		Title: "Section 3: of 16 ways to prohibit one turn per cycle, 12 prevent deadlock, 3 unique under symmetry",
		Run: func(_ Options, w io.Writer) error {
			t := topology.NewMesh(6, 6)
			var free, dead int
			tbl := stats.NewTable("prohibited pair", "deadlock free")
			var freeSets []*core.Set
			for _, set := range core.OneTurnPerCyclePairs2D() {
				res := deadlock.CheckTurnSet(t, set)
				verdict := "yes"
				if res.DeadlockFree {
					free++
					freeSets = append(freeSets, set)
				} else {
					dead++
					verdict = "NO (cycle remains)"
				}
				tbl.AddRow(fmt.Sprint(set.Prohibited()), verdict)
			}
			fmt.Fprint(w, tbl)
			classes := SymmetryClasses2D(freeSets)
			fmt.Fprintf(w, "\n%d of 16 prevent deadlock; %d allow it; %d unique classes under mesh symmetry\n",
				free, dead, classes)
			if free != 12 || classes != 3 {
				return fmt.Errorf("expected 12 deadlock-free pairs in 3 classes, got %d in %d", free, classes)
			}
			return nil
		},
	})

	register(Experiment{
		ID:    "adapt",
		Title: "Sections 3.4 & 4.1: degree of adaptiveness S_p/S_f",
		Run: func(o Options, w io.Writer) error {
			t := topology.NewMesh(16, 16)
			tbl := stats.NewTable("algorithm", "mean S_p/S_f", "fraction of pairs with S_p=1")
			for _, e := range []struct {
				name string
				fn   adapt.SFunc
			}{
				{"fully adaptive", func(s, d topology.NodeID) *big.Int { return adapt.SFull(t, s, d) }},
				{"west-first", func(s, d topology.NodeID) *big.Int { return adapt.SWestFirst(t, s, d) }},
				{"north-last", func(s, d topology.NodeID) *big.Int { return adapt.SNorthLast(t, s, d) }},
				{"negative-first", func(s, d topology.NodeID) *big.Int { return adapt.SNegativeFirst(t, s, d) }},
			} {
				r := adapt.AverageRatio(t, e.fn)
				tbl.AddRow(e.name, fmt.Sprintf("%.4f", r.MeanRatio), fmt.Sprintf("%.4f", r.FractionSingle))
			}
			fmt.Fprintf(w, "16x16 mesh (%d ordered pairs):\n%s", 256*255, tbl)
			fmt.Fprintf(w, "\nSection 3.4: averaged across all pairs, S_p/S_f > 1/2 for each partially adaptive algorithm\n")

			h := topology.NewHypercube(8)
			tbl2 := stats.NewTable("algorithm", "mean S_p/S_f")
			rNF := adapt.AverageRatio(h, func(s, d topology.NodeID) *big.Int { return adapt.SNegativeFirst(h, s, d) })
			tbl2.AddRow("p-cube (8-cube)", fmt.Sprintf("%.4f", rNF.MeanRatio))
			fmt.Fprintf(w, "\nbinary 8-cube:\n%s", tbl2)
			fmt.Fprintf(w, "\nSection 4.1: the ratio decreases with n but stays above 1/2^(n-1) = %.6f\n",
				1.0/float64(int(1)<<7))
			return nil
		},
	})

	register(Experiment{
		ID:    "pcube10",
		Title: "Section 5 table: p-cube routing choices from 1011010100 to 0010111001 in a 10-cube",
		Run: func(_ Options, w io.Writer) error {
			t := topology.NewHypercube(10)
			src := topology.NodeID(0b1011010100)
			dst := topology.NodeID(0b0010111001)
			rows := adapt.PCubeWalkChoices(t, src, dst, []int{2, 9, 6, 5, 0, 3})
			tbl := stats.NewTable("address", "choices", "dimension taken", "comment")
			for i, r := range rows {
				comment := ""
				switch {
				case i == 0:
					comment = "source"
				case i == len(rows)-1:
					comment = "destination"
				case r.Phase == 1:
					comment = "phase 1"
				default:
					comment = "phase 2"
				}
				choices, dim := "", ""
				if i < len(rows)-1 {
					choices = fmt.Sprint(r.Choices)
					if r.NonminimalChoices > 0 {
						choices = fmt.Sprintf("%d(+%d)", r.Choices, r.NonminimalChoices)
					}
					dim = fmt.Sprint(r.DimensionTaken)
				}
				tbl.AddRow(fmt.Sprintf("%010b", uint(r.Node)), choices, dim, comment)
			}
			fmt.Fprint(w, tbl)
			sp := routing.NumShortestPCube(routing.AddrOf(src), routing.AddrOf(dst))
			sf := routing.NumShortestFullHypercube(routing.AddrOf(src), routing.AddrOf(dst))
			fmt.Fprintf(w, "\nS_p-cube = h1! * h0! = %d of S_f = h! = %d shortest paths (h=6, h0=3, h1=3)\n", sp, sf)
			return nil
		},
	})

	register(Experiment{
		ID:    "pathlen",
		Title: "Section 6 (text): average path lengths per traffic pattern",
		Run: func(_ Options, w io.Writer) error {
			mesh := topology.NewMesh(16, 16)
			cube := topology.NewHypercube(8)
			tbl := stats.NewTable("topology", "pattern", "average path length (hops)", "paper")
			tbl.AddRow(mesh.String(), "uniform", fmt.Sprintf("%.2f", traffic.AverageUniformPathLength(mesh)), "10.61")
			tbl.AddRow(mesh.String(), "matrix-transpose", fmt.Sprintf("%.2f", traffic.AveragePathLength(mesh, traffic.NewMeshTranspose(mesh))), "11.34")
			tbl.AddRow(cube.String(), "uniform", fmt.Sprintf("%.2f", traffic.AverageUniformPathLength(cube)), "4.01")
			tbl.AddRow(cube.String(), "matrix-transpose", fmt.Sprintf("%.2f", traffic.AveragePathLength(cube, traffic.NewHypercubeTranspose(cube))), "(n/a)")
			tbl.AddRow(cube.String(), "reverse-flip", fmt.Sprintf("%.2f", traffic.AveragePathLength(cube, traffic.NewReverseFlip(cube))), "4.27")
			fmt.Fprint(w, tbl)
			return nil
		},
	})

	register(Experiment{
		ID:    "claims",
		Title: "Section 6: sustainable-throughput ratio claims",
		Run:   runClaims,
	})
}

// registerTurnSetFigure registers the pattern shared by Figures 5, 9 and
// 10: print the allowed turn set, verify deadlock freedom, and show
// example paths in an 8x8 mesh.
func registerTurnSetFigure(id, title string, set func() *core.Set, mk func(*topology.Topology) routing.Algorithm) {
	register(Experiment{
		ID:    id,
		Title: title,
		Run: func(_ Options, w io.Writer) error {
			s := set()
			fmt.Fprintf(w, "%v\nallowed 90-degree turns: %d of 8\n", s, s.NumAllowed())
			fmt.Fprint(w, routing.RenderTurns(func(from, to topology.Direction) bool {
				return s.Allowed(core.Turn{From: from, To: to})
			}))
			t := topology.NewMesh(8, 8)
			alg := mk(t)
			res := deadlock.Check(alg)
			fmt.Fprintf(w, "%s on %v: %v\n\nexample paths:\n", alg.Name(), t, res)
			if !res.DeadlockFree {
				return fmt.Errorf("%s unexpectedly not deadlock free", alg.Name())
			}
			pairs := [][2]topology.Coord{
				{{6, 1}, {1, 6}},
				{{1, 2}, {6, 6}},
				{{5, 6}, {2, 0}},
			}
			for _, pr := range pairs {
				src, dst := t.ID(pr[0]), t.ID(pr[1])
				path, err := routing.Walk(alg, src, dst, nil)
				if err != nil {
					return err
				}
				fmt.Fprintf(w, "  %v\n", routing.FormatPath(t, path))
				for _, line := range splitLines(routing.RenderPathGrid(t, path)) {
					fmt.Fprintf(w, "    %s\n", line)
				}
			}
			// The figures' gray bars: block a channel on the default
			// route and show the adaptive alternative (the turn-set
			// relation honors faults).
			src, dst := t.ID(pairs[1][0]), t.ID(pairs[1][1])
			rel := routing.NewTurnGraphRouting(t, s, true)
			path, err := routing.Walk(rel, src, dst, nil)
			if err != nil {
				return err
			}
			blocked := topology.Channel{From: path[1], Dir: dirBetween(t, path[1], path[2])}
			if err := t.DisableChannel(blocked); err != nil {
				return err
			}
			alt, altErr := routing.Walk(rel, src, dst, nil)
			if err := t.EnableChannel(blocked); err != nil {
				return err
			}
			if altErr != nil {
				// The paper's dashed lines: no allowed alternative, the
				// packet waits for the blocked channel.
				fmt.Fprintf(w, "\nwith channel %v blocked (the figures' gray bars), this relation\noffers no alternative turn here: the packet must wait (the figures'\ndashed lines)\n", blocked)
				return nil
			}
			fmt.Fprintf(w, "\nwith channel %v blocked (the figures' gray bars), the relation\nadapts onto an alternative shortest path:\n  %v\n", blocked, routing.FormatPath(t, alt))
			return nil
		},
	})
}

// dirBetween returns the direction of the channel from a to its
// neighbor b.
func dirBetween(t *topology.Topology, a, b topology.NodeID) topology.Direction {
	for i := 0; i < 2*t.NumDims(); i++ {
		d := topology.DirectionFromIndex(i)
		if next, ok := t.Neighbor(a, d); ok && next == b {
			return d
		}
	}
	panic("exp: nodes are not neighbors")
}

// SymmetryClasses2D counts equivalence classes of 2D turn sets under the
// eight symmetries of the square (rotations and reflections), the sense
// in which Section 3 calls three of the twelve deadlock-free
// prohibitions unique. Classes are keyed by core.CanonicalKey2D, the
// same canonicalization the exhaustive explorer deduplicates with.
func SymmetryClasses2D(sets []*core.Set) int {
	canon := map[uint16]bool{}
	for _, s := range sets {
		canon[core.CanonicalKey2D(s.Key())] = true
	}
	return len(canon)
}

// ClaimResult records one Section 6 ratio claim against its measurement.
type ClaimResult struct {
	Name     string
	Paper    float64
	Measured float64
}

// RunClaims computes the Section 6 sustainable-throughput ratios from
// the figure sweeps.
func RunClaims(o Options) ([]ClaimResult, error) {
	claimFigs := []string{"fig13", "fig14", "fig15", "fig16", "fig13c"}
	// Warm the figure cache with every claim figure in one parallel
	// batch; the RunFigure calls below then hit the cache.
	var specs []FigureSpec
	for _, id := range claimFigs {
		f, _ := FigureByID(id)
		specs = append(specs, f)
	}
	if err := PrefetchFigures(o, specs...); err != nil {
		return nil, err
	}
	best := map[string]map[string]float64{} // figID -> alg -> max sustainable
	for _, id := range claimFigs {
		f, _ := FigureByID(id)
		sweeps, err := RunFigure(f, o)
		if err != nil {
			return nil, err
		}
		m := map[string]float64{}
		for _, s := range sweeps {
			thr, _ := s.MaxSustainable()
			m[s.Algorithm] = thr
		}
		best[id] = m
	}
	bestPA := func(fig string) float64 {
		var b float64
		for alg, thr := range best[fig] {
			if alg != "xy" && alg != "e-cube" && thr > b {
				b = thr
			}
		}
		return b
	}
	return []ClaimResult{
		{"mesh transpose: best PA / xy", 2.0, ratio(bestPA("fig14"), best["fig14"]["xy"])},
		{"cube transpose: best PA / e-cube", 2.0, ratio(bestPA("fig15"), best["fig15"]["e-cube"])},
		{"cube reverse-flip: best PA / e-cube", 4.0, ratio(bestPA("fig16"), best["fig16"]["e-cube"])},
		{"negative-first transpose / xy uniform (mesh)", 1.3, ratio(best["fig14"]["negative-first"], best["fig13"]["xy"])},
		{"PA reverse-flip / e-cube uniform (cube)", 1.5, ratio(bestPA("fig16"), best["fig13c"]["e-cube"])},
	}, nil
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func runClaims(o Options, w io.Writer) error {
	claims, err := RunClaims(o)
	if err != nil {
		return err
	}
	tbl := stats.NewTable("claim", "paper ratio", "measured ratio")
	for _, c := range claims {
		tbl.AddRow(c.Name, fmt.Sprintf("%.1fx", c.Paper), fmt.Sprintf("%.2fx", c.Measured))
	}
	fmt.Fprint(w, tbl)
	return nil
}
