package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"turnmodel/internal/metrics"
)

// metricsInterval is the time-series sampling cadence for experiment
// collectors, honoring the Options override.
func (o Options) metricsInterval() int64 {
	if o.MetricsInterval > 0 {
		return o.MetricsInterval
	}
	return 1000
}

// metricsEnabled reports whether sweeps should attach collectors.
func (o Options) metricsEnabled() bool {
	return o.MetricsDir != "" || o.MetricsInterval > 0
}

// progress reports completed simulations, for long sweeps run
// interactively (throttled ETA lines on Options.Progress) or embedded
// in a service (one Options.OnProgress event per leaf). A nil
// *progress is inert, so callers thread it through unconditionally.
type progress struct {
	mu    sync.Mutex
	w     io.Writer
	cb    func(ProgressEvent)
	label string
	total int
	done  int
	start time.Time
	last  time.Time
}

// newProgress returns a tracker feeding o.Progress and o.OnProgress,
// or nil when progress reporting is off.
func newProgress(o Options, label string, total int) *progress {
	if (o.Progress == nil && o.OnProgress == nil) || total == 0 {
		return nil
	}
	now := time.Now()
	return &progress{w: o.Progress, cb: o.OnProgress, label: label, total: total, start: now, last: now}
}

// tick records one completed simulation: every tick reaches the
// structured callback, while writer lines carry elapsed time and a
// linear-extrapolation ETA and are throttled to one per second (the
// final tick always prints).
func (p *progress) tick() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	if p.cb != nil {
		p.cb(ProgressEvent{Label: p.label, Done: p.done, Total: p.total})
	}
	if p.w == nil {
		return
	}
	now := time.Now()
	if p.done < p.total && now.Sub(p.last) < time.Second {
		return
	}
	p.last = now
	elapsed := now.Sub(p.start)
	line := fmt.Sprintf("%s: %d/%d sims (%d%%) in %v", p.label, p.done, p.total,
		100*p.done/p.total, elapsed.Round(time.Second))
	if p.done < p.total && p.done > 0 {
		eta := time.Duration(float64(elapsed) / float64(p.done) * float64(p.total-p.done))
		line += fmt.Sprintf(", eta %v", eta.Round(time.Second))
	}
	fmt.Fprintln(p.w, line)
}

// SweepMetrics is the machine-readable per-figure metric dump: one
// summary block per (algorithm, offered load) simulation.
type SweepMetrics struct {
	// ID names the figure or sweep the dump belongs to.
	ID string `json:"id"`
	// SampleIntervalCycles echoes the collectors' sampling cadence.
	SampleIntervalCycles int64 `json:"sample_interval_cycles"`
	// Series holds one entry per algorithm curve.
	Series []SeriesMetrics `json:"series"`
}

// SeriesMetrics is one algorithm's metric summaries across the sweep.
type SeriesMetrics struct {
	// Algorithm names the routing algorithm.
	Algorithm string `json:"algorithm"`
	// Points holds one summary per offered-load simulation.
	Points []PointMetrics `json:"points"`
}

// PointMetrics pairs an offered load with its run's metric summary.
type PointMetrics struct {
	// OfferedLoad is in flits/us/node.
	OfferedLoad float64 `json:"offered_load_flits_per_us_per_node"`
	// Summary is the collector's network-wide totals for the run.
	Summary metrics.Summary `json:"summary"`
}

// buildSweepMetrics assembles the dump from sweeps whose points carry
// collector summaries; points without metrics are skipped.
func buildSweepMetrics(id string, o Options, sweeps []Sweep) SweepMetrics {
	out := SweepMetrics{ID: id, SampleIntervalCycles: o.metricsInterval()}
	for _, s := range sweeps {
		sm := SeriesMetrics{Algorithm: s.Algorithm}
		for _, p := range s.Points {
			if p.Metrics == nil {
				continue
			}
			sm.Points = append(sm.Points, PointMetrics{OfferedLoad: p.Offered, Summary: *p.Metrics})
		}
		out.Series = append(out.Series, sm)
	}
	return out
}

// WriteSweepMetrics writes the per-figure metric dump as
// <dir>/<id>.metrics.json, creating dir if needed.
func WriteSweepMetrics(dir, id string, o Options, sweeps []Sweep) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, id+".metrics.json"))
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(buildSweepMetrics(id, o, sweeps)); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
