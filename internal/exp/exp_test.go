package exp

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"turnmodel/internal/core"
	"turnmodel/internal/deadlock"
	"turnmodel/internal/routing"
	"turnmodel/internal/topology"
	"turnmodel/internal/traffic"
)

// TestRegistryComplete: every figure and table of the paper has an
// experiment.
func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig9", "fig10",
		"thm1", "thm2", "thm3", "thm5",
		"turnpairs", "adapt", "pcube10", "pathlen", "claims",
		"fig13", "fig14", "fig15", "fig16", "fig13c",
		"intro", "hotspot", "torus", "faults", "analytic", "fully",
		"mesh3d", "mesh3dc", "hex", "tornado", "sens14",
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Errorf("duplicate experiment ID %q", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete", e.ID)
		}
	}
	if _, ok := ByID("nonsense"); ok {
		t.Error("ByID should miss unknown IDs")
	}
}

// TestModelExperimentsRun: every non-simulation experiment runs cleanly
// and produces output. These are the exact paper-artifact checks (they
// fail internally if a reproduced number is off).
func TestModelExperimentsRun(t *testing.T) {
	ids := []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig9", "fig10",
		"thm1", "thm2", "thm3", "thm5", "turnpairs", "pcube10", "pathlen"}
	for _, id := range ids {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		var buf bytes.Buffer
		if err := e.Run(Options{Seed: 1}, &buf); err != nil {
			t.Errorf("%s: %v", id, err)
		}
		if buf.Len() == 0 {
			t.Errorf("%s produced no output", id)
		}
	}
}

// TestAdaptExperiment runs the Section 3.4 experiment (slower: full
// 16x16 ratio averages).
func TestAdaptExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	e, _ := ByID("adapt")
	var buf bytes.Buffer
	if err := e.Run(Options{}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "S_p/S_f") {
		t.Error("missing ratio table")
	}
}

// TestSymmetryClasses: the 12 deadlock-free one-turn-per-cycle sets fall
// into exactly 3 classes under the symmetries of the square (west-first,
// north-last and negative-first families).
func TestSymmetryClasses(t *testing.T) {
	var free []*core.Set
	for _, set := range core.OneTurnPerCyclePairs2D() {
		p := set.Prohibited()
		if p[0].From == p[1].To && p[0].To == p[1].From {
			continue // the four deadlocking reverse pairs
		}
		free = append(free, set)
	}
	if len(free) != 12 {
		t.Fatalf("%d deadlock-free pairs, want 12", len(free))
	}
	if got := SymmetryClasses2D(free); got != 3 {
		t.Errorf("%d symmetry classes, want 3", got)
	}
	// The canonical three algorithms land in distinct classes.
	named := []*core.Set{core.WestFirstSet(), core.NorthLastSet(), core.NegativeFirstSet(2)}
	if got := SymmetryClasses2D(named); got != 3 {
		t.Errorf("the three named algorithms should be inequivalent, got %d classes", got)
	}
}

// TestRunSweepAndCache: a small sweep produces monotone offered loads
// and the figure cache returns identical results.
func TestRunSweepAndCache(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	alg := routing.NewWestFirst(topo)
	opts := Options{Seed: 2, Warmup: 500, Measure: 2000}
	sw, err := RunSweep(alg, traffic.NewUniform(topo), []float64{0.5, 1.5}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Points) != 2 || sw.Algorithm != "west-first" {
		t.Fatalf("bad sweep: %+v", sw)
	}
	if sw.Points[0].Result.Throughput <= 0 {
		t.Error("zero throughput at light load")
	}
	thr, load := sw.MaxSustainable()
	if thr <= 0 || load <= 0 {
		t.Errorf("no sustainable point: thr=%v load=%v", thr, load)
	}

	f, ok := FigureByID("fig13")
	if !ok {
		t.Fatal("fig13 missing")
	}
	o := Options{Quick: true, Seed: 3, Warmup: 300, Measure: 1000, Loads: []float64{0.5}}
	a, err := RunFigure(f, o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFigure(f, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 4 || len(b) != 4 {
		t.Fatalf("expected 4 sweeps, got %d and %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Points[0].Result != b[i].Points[0].Result {
			t.Error("cache returned different results")
		}
	}
	var buf bytes.Buffer
	WriteFigure(&buf, f, a)
	if !strings.Contains(buf.String(), "maximum sustainable throughput") {
		t.Error("figure output missing summary")
	}
}

// TestQuickLoads: quick mode subsamples but keeps the last point.
func TestQuickLoads(t *testing.T) {
	o := Options{Quick: true}
	full := []float64{1, 2, 3, 4, 5, 6, 7}
	q := o.loads(full)
	if q[len(q)-1] != 7 {
		t.Errorf("quick loads should keep the endpoint: %v", q)
	}
	if len(q) >= len(full) {
		t.Errorf("quick loads should subsample: %v", q)
	}
	o2 := Options{Loads: []float64{9}}
	if got := o2.loads(full); len(got) != 1 || got[0] != 9 {
		t.Errorf("override ignored: %v", got)
	}
}

// TestFigure1Experiment: the scripted Figure 1 scenario behaves as the
// paper describes under both relations.
func TestFigure1Experiment(t *testing.T) {
	topo := topology.NewMesh(2, 2)
	res, err := RunFigure1(routing.NewFullyAdaptive(topo), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deadlocked {
		t.Error("figure 1 scenario should deadlock under fully adaptive routing")
	}
	res2, err := RunFigure1(routing.NewNegativeFirst(topo), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Deadlocked || res2.PacketsDelivered != 4 {
		t.Errorf("negative-first should deliver all packets: %+v", res2)
	}
}

// TestIntroExperiment: the switching-technique scaling table asserts its
// own classifications.
func TestIntroExperiment(t *testing.T) {
	e, ok := ByID("intro")
	if !ok {
		t.Fatal("missing intro")
	}
	var buf bytes.Buffer
	if err := e.Run(Options{}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "~ L + D") || !strings.Contains(out, "~ L * D") {
		t.Errorf("scaling classification missing:\n%s", out)
	}
}

// TestTorusExperiment: the Section 4.2 comparison runs and finds the
// expected verdicts.
func TestTorusExperiment(t *testing.T) {
	e, ok := ByID("torus")
	if !ok {
		t.Fatal("missing torus")
	}
	var buf bytes.Buffer
	if err := e.Run(Options{Quick: true, Seed: 1}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "NOT deadlock free") {
		t.Error("torus-dor should be flagged")
	}
	if strings.Count(out, "deadlock free (") < 3 {
		t.Error("the three safe schemes should verify")
	}
}

// TestHotspotExperiment (slower).
func TestHotspotExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	e, _ := ByID("hotspot")
	var buf bytes.Buffer
	if err := e.Run(Options{Quick: true, Seed: 1}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "negative-first") {
		t.Error("missing algorithm rows")
	}
}

// TestClaimsQuickShape: a coarse, fast rendition of the Section 6
// sustainable-throughput claims — the directional orderings must hold
// even with short windows and subsampled loads.
func TestClaimsQuickShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := Options{Quick: true, Seed: 5, Warmup: 1500, Measure: 5000}
	claims, err := RunClaims(o)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, c := range claims {
		byName[c.Name] = c.Measured
	}
	if r := byName["mesh transpose: best PA / xy"]; r < 1.15 {
		t.Errorf("mesh transpose PA/xy = %.2f, want comfortably above 1", r)
	}
	if r := byName["cube transpose: best PA / e-cube"]; r < 1.5 {
		t.Errorf("cube transpose PA/e-cube = %.2f, want >= 1.5", r)
	}
	if r := byName["cube reverse-flip: best PA / e-cube"]; r < 2 {
		t.Errorf("reverse-flip PA/e-cube = %.2f, want >= 2", r)
	}
}

// TestFig13UniformShape: under uniform traffic the nonadaptive
// algorithm's maximum sustainable throughput is at least the partially
// adaptive algorithms' (the Figure 13 direction), in quick mode.
func TestFig13UniformShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f, _ := FigureByID("fig13")
	sweeps, err := RunFigure(f, Options{Quick: true, Seed: 5, Warmup: 1500, Measure: 5000})
	if err != nil {
		t.Fatal(err)
	}
	var xy, bestPA float64
	for _, s := range sweeps {
		thr, _ := s.MaxSustainable()
		if s.Algorithm == "xy" {
			xy = thr
		} else if thr > bestPA {
			bestPA = thr
		}
	}
	if xy < bestPA*0.95 {
		t.Errorf("uniform traffic: xy (%.0f) should not lose to partially adaptive (%.0f)", xy, bestPA)
	}
}

// TestPaperOrderCoversRegistry: every registered experiment has a place
// in the presentation order.
func TestPaperOrderCoversRegistry(t *testing.T) {
	rank := map[string]bool{}
	for _, id := range paperOrder {
		rank[id] = true
	}
	for _, e := range All() {
		if !rank[e.ID] {
			t.Errorf("experiment %q missing from paperOrder", e.ID)
		}
	}
}

// TestFigureJSON: the machine-readable rendering round-trips through
// encoding/json with the expected fields.
func TestFigureJSON(t *testing.T) {
	f, _ := FigureByID("fig13")
	o := Options{Quick: true, Seed: 3, Warmup: 300, Measure: 1000, Loads: []float64{0.5}}
	sweeps, err := RunFigure(f, o)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFigureJSON(&buf, f, sweeps); err != nil {
		t.Fatal(err)
	}
	var back FigureJSON
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.ID != "fig13" || len(back.Series) != 4 {
		t.Fatalf("bad JSON figure: %+v", back)
	}
	for _, s := range back.Series {
		if len(s.Points) != 1 || s.Points[0].Throughput <= 0 {
			t.Errorf("series %s malformed: %+v", s.Algorithm, s.Points)
		}
	}
}

// TestSymmetryInvariance: applying any symmetry of the square to a
// one-turn-per-cycle prohibition preserves its deadlock-freedom verdict
// — the formal backing for counting "unique" prohibitions up to
// symmetry.
func TestSymmetryInvariance(t *testing.T) {
	topo := topology.NewMesh(5, 5)
	for _, set := range core.OneTurnPerCyclePairs2D() {
		want := deadlock.CheckTurnSet(topo, set).DeadlockFree
		for _, sy := range core.Symmetries2D() {
			if got := deadlock.CheckTurnSet(topo, sy.Set(set)).DeadlockFree; got != want {
				t.Fatalf("%s changed the verdict for %v", sy.Name(), set)
			}
		}
	}
}

// TestFindSaturation: the bisection lands between a clearly sustainable
// and a clearly saturated load, and its edge throughput is at least the
// grid estimate at the floor.
func TestFindSaturation(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	topo := topology.NewMesh(8, 8)
	alg := routing.NewDimensionOrder(topo)
	o := Options{Seed: 6, Warmup: 1000, Measure: 5000}
	sat, err := FindSaturation(alg, traffic.NewUniform(topo), 0.5, 12, 6, o)
	if err != nil {
		t.Fatal(err)
	}
	if sat.Load < 0.5 || sat.Load >= 12 {
		t.Errorf("saturation load %.2f out of the probed range", sat.Load)
	}
	if sat.Throughput <= 0 || !sat.Result.Sustainable {
		t.Errorf("edge measurement invalid: %+v", sat.Result)
	}
	// A floor that already saturates reports zero.
	zero, err := FindSaturation(alg, traffic.NewUniform(topo), 50, 60, 3, o)
	if err != nil {
		t.Fatal(err)
	}
	if zero.Load != 0 {
		t.Errorf("unsustainable floor should report zero, got %+v", zero)
	}
}
