// Package exp defines the reproduction experiments: one entry per figure
// and table of the paper, each regenerating the corresponding rows or
// series. The cmd/experiments binary and the repository benchmarks are
// thin wrappers over this package.
package exp

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"reflect"
	"runtime"
	"sort"
	"sync"

	"time"

	"turnmodel/internal/metrics"
	"turnmodel/internal/routing"
	"turnmodel/internal/sim"
	"turnmodel/internal/stats"
	"turnmodel/internal/topology"
	"turnmodel/internal/traffic"
)

// Options tune experiment fidelity.
type Options struct {
	// Quick trades fidelity for speed: shorter simulations and coarser
	// load sweeps. Used by tests and benchmarks.
	Quick bool
	// Seed makes the stochastic experiments reproducible.
	Seed int64
	// Loads overrides the sweep's offered loads (flits/us/node).
	Loads []float64
	// Warmup and Measure override the simulation window in cycles.
	Warmup, Measure int64
	// Workers bounds the simulations run concurrently across figures,
	// algorithm lines and load points (0 means GOMAXPROCS). Results are
	// bit-identical for any value: every simulation has its own seeded
	// generator and lands in a preassigned slot.
	//
	// Workers and Shards share one concurrency budget: with Shards > 1
	// each leaf simulation runs Shards goroutines of its own, so the
	// effective worker count is capped at GOMAXPROCS / Shards (minimum
	// one) — including explicit Workers values — keeping
	// Workers × Shards from oversubscribing the machine.
	Workers int
	// Shards forwards sim.Config.Shards to every sweep simulation:
	// the parallelizable phases of each cycle are split across that
	// many worker goroutines inside the engine. 0 or 1 is serial.
	// sim.ShardsAuto (-1) resolves automatically — and at the sweep
	// level auto prefers whole-simulation batching (full sweep
	// parallelism, serial engines) whenever a sweep offers at least
	// GOMAXPROCS independent simulations, because batching scales
	// linearly with zero synchronization while per-engine sharding
	// pays a phase barrier every cycle. Results are bit-identical for
	// any value.
	Shards int
	// MetricsDir, when set, attaches a metrics collector to every
	// simulation and writes a per-figure summary dump
	// (<dir>/<id>.metrics.json) next to each figure run. Attaching
	// collectors never changes results.
	MetricsDir string
	// MetricsInterval is the collectors' time-series sampling cadence
	// in cycles (0 picks a default). Setting it without MetricsDir
	// attaches collectors and exposes summaries on SweepPoint.Metrics
	// without writing files.
	MetricsInterval int64
	// Progress, when non-nil, receives progress/ETA lines as sweep
	// simulations complete (typically os.Stderr for long runs).
	Progress io.Writer
	// OnProgress, when non-nil, is called once per completed leaf
	// simulation with the enclosing sweep's cumulative progress. It is
	// the structured form of Progress for embedding callers — the
	// turnserver streams these events to HTTP clients. Leaves complete
	// on worker goroutines, so the callback must be safe for concurrent
	// use; it is never called for cached sweeps (a cache hit runs no
	// leaves).
	OnProgress func(ProgressEvent)
	// Cancel, when non-nil, aborts the run when closed: leaves not yet
	// started are skipped, in-flight simulations stop at their next
	// cancellation poll (sim.Config.Stop), and the entry points return
	// ErrCanceled. A canceled run is never cached.
	Cancel <-chan struct{}
	// Deadline, when non-zero, aborts the run once the wall clock
	// passes it, through the same cooperative path as Cancel: leaves
	// not yet started are skipped, in-flight simulations stop at their
	// next cancellation poll, and the entry points return
	// ErrDeadlineExceeded. Like Cancel, an expired run is never cached.
	// The turnserver derives it from its per-job timeout.
	Deadline time.Time
	// DisableRouteTables forwards sim.Config.DisableRouteTable to the
	// figure-sweep simulations: routing relations are evaluated
	// directly per header instead of through compiled route tables.
	// Results are bit-identical either way; the switch exists for A/B
	// verification and diagnosis.
	DisableRouteTables bool
}

// ProgressEvent reports one completed leaf simulation to
// Options.OnProgress. Done counts completed leaves of the Total in the
// sweep unit named by Label (a figure ID or algorithm name).
type ProgressEvent struct {
	Label string `json:"label"`
	Done  int    `json:"done"`
	Total int    `json:"total"`
}

// ErrCanceled is returned by the sweep entry points when
// Options.Cancel fired before the run completed.
var ErrCanceled = errors.New("exp: run canceled")

// ErrDeadlineExceeded is returned by the sweep entry points when
// Options.Deadline passed before the run completed.
var ErrDeadlineExceeded = errors.New("exp: run deadline exceeded")

// expired reports whether Options.Deadline has passed.
func (o Options) expired() bool {
	return !o.Deadline.IsZero() && !time.Now().Before(o.Deadline)
}

// canceled reports whether Options.Cancel has fired.
func (o Options) canceled() bool {
	if o.Cancel == nil {
		return false
	}
	select {
	case <-o.Cancel:
		return true
	default:
		return false
	}
}

func (o Options) workers() int {
	if o.Shards == sim.ShardsAuto {
		// Unresolved auto: each engine may claim up to GOMAXPROCS
		// shard workers of its own, so run one simulation at a time.
		// The sweep entry points resolve auto via resolveShards before
		// sizing their semaphores, so this branch is only a safety net
		// for direct callers.
		return 1
	}
	if o.Shards > 1 {
		// Each leaf simulation runs o.Shards goroutines, so the sweep
		// budget shrinks to keep Workers × Shards within GOMAXPROCS.
		// Explicit Workers values are clamped too: the shard workers
		// are not optional once Shards is set.
		max := runtime.GOMAXPROCS(0) / o.Shards
		if max < 1 {
			max = 1
		}
		if o.Workers > 0 && o.Workers < max {
			return o.Workers
		}
		return max
	}
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// resolveShards returns a copy of o with an auto shard request
// (sim.ShardsAuto) resolved against the sweep's shape; leaves is the
// number of independent leaf simulations about to run. Batching whole
// simulations per core scales linearly with zero synchronization,
// while per-engine sharding pays a phase barrier every cycle and
// rarely clears a 1.2x speedup per added core — so auto keeps engines
// serial whenever there are enough leaves to occupy the machine with
// batching alone, and only falls back to per-engine auto shards
// (resolved inside the engine) when the sweep is too small.
func (o Options) resolveShards(leaves int) Options {
	if o.Shards != sim.ShardsAuto {
		return o
	}
	if leaves >= runtime.GOMAXPROCS(0) {
		o.Shards = 0
	}
	return o
}

// figureLeaves counts the independent leaf simulations of a figure
// sweep: one per (algorithm line, load point) pair.
func figureLeaves(f FigureSpec, o Options) int {
	return len(f.Algs(f.Topology())) * len(o.loads(f.Loads))
}

func (o Options) warmup() int64 {
	if o.Warmup > 0 {
		return o.Warmup
	}
	if o.Quick {
		return 2000
	}
	return 10000
}

func (o Options) measure() int64 {
	if o.Measure > 0 {
		return o.Measure
	}
	if o.Quick {
		return 8000
	}
	return 40000
}

func (o Options) loads(full []float64) []float64 {
	if len(o.Loads) > 0 {
		return o.Loads
	}
	if !o.Quick {
		return full
	}
	// Quick mode: every third point plus the last.
	var q []float64
	for i := 0; i < len(full); i += 3 {
		q = append(q, full[i])
	}
	if q[len(q)-1] != full[len(full)-1] {
		q = append(q, full[len(full)-1])
	}
	return q
}

// Experiment reproduces one figure or table.
type Experiment struct {
	// ID is the index key, e.g. "fig14" or "pcube10".
	ID string
	// Title describes the paper artifact.
	Title string
	// Run writes the regenerated rows/series to w.
	Run func(o Options, w io.Writer) error
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// paperOrder fixes the presentation order: the paper's artifacts first,
// section by section, then the extensions. Experiments not listed sort
// after, in registration order.
var paperOrder = []string{
	"intro",
	"fig1", "fig2", "fig3", "fig4",
	"fig5", "thm2", "fig9", "thm3", "fig10",
	"thm1", "thm5", "turnpairs", "adapt",
	"torus", "pcube10",
	"pathlen", "fig13", "fig14", "fig15", "fig16", "fig13c", "claims",
	"analytic", "hotspot", "faults", "degrade", "fully", "tornado", "mesh3d", "mesh3dc", "hex", "sens14",
}

// All returns every experiment in paper order.
func All() []Experiment {
	rank := make(map[string]int, len(paperOrder))
	for i, id := range paperOrder {
		rank[id] = i
	}
	out := append([]Experiment(nil), registry...)
	sort.SliceStable(out, func(i, j int) bool {
		ri, iok := rank[out[i].ID]
		rj, jok := rank[out[j].ID]
		switch {
		case iok && jok:
			return ri < rj
		case iok:
			return true
		case jok:
			return false
		default:
			return false
		}
	})
	return out
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// SweepPoint is one offered-load measurement of a latency/throughput
// curve.
type SweepPoint struct {
	Offered float64
	Result  sim.Result
	// Metrics is the run's collector summary, present only when the
	// sweep ran with Options metrics enabled.
	Metrics *metrics.Summary
}

// Sweep is one algorithm's curve in a figure.
type Sweep struct {
	Algorithm string
	Points    []SweepPoint
}

// MaxSustainable returns the highest measured throughput among
// sustainable points, the paper's "maximum sustainable throughput", and
// the offered load it occurred at. It returns zeros when no point is
// sustainable.
func (s Sweep) MaxSustainable() (thr, load float64) {
	for _, p := range s.Points {
		if p.Result.Sustainable && p.Result.Throughput > thr {
			thr, load = p.Result.Throughput, p.Offered
		}
	}
	return thr, load
}

// RunSweep measures one latency-throughput curve. The load points are
// independent simulations and run in parallel, bounded by
// Options.Workers; results are deterministic regardless (each point has
// its own seeded generator).
func RunSweep(alg routing.Algorithm, pat traffic.Pattern, loads []float64, o Options) (Sweep, error) {
	o = o.resolveShards(len(loads))
	prog := newProgress(o, alg.Name(), len(loads))
	return runSweep(alg, pat, loads, o, make(chan struct{}, o.workers()), prog)
}

// runSweep measures one curve with concurrency bounded by sem. The
// semaphore is acquired only around each leaf simulation — never by a
// goroutine that waits on other goroutines — so a single semaphore can
// be shared across nested figure/algorithm/load fan-out without
// deadlock.
func runSweep(alg routing.Algorithm, pat traffic.Pattern, loads []float64, o Options, sem chan struct{}, prog *progress) (Sweep, error) {
	s := Sweep{Algorithm: alg.Name(), Points: make([]SweepPoint, len(loads))}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for i, load := range loads {
		wg.Add(1)
		go func(i int, load float64) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if o.canceled() || o.expired() {
				// Leaves not yet started are skipped outright; the slot
				// frees immediately for whoever shares the semaphore.
				mu.Lock()
				defer mu.Unlock()
				if firstErr == nil {
					if o.expired() {
						firstErr = ErrDeadlineExceeded
					} else {
						firstErr = ErrCanceled
					}
				}
				return
			}
			cfg := sim.Config{
				Algorithm:         alg,
				Pattern:           pat,
				OfferedLoad:       load,
				WarmupCycles:      o.warmup(),
				MeasureCycles:     o.measure(),
				Seed:              o.Seed + int64(load*1000),
				DisableRouteTable: o.DisableRouteTables,
				Shards:            o.Shards,
			}
			if o.Cancel != nil || !o.Deadline.IsZero() {
				cfg.Stop = func() bool { return o.canceled() || o.expired() }
			}
			// One collector per simulation: collectors are not safe to
			// share across concurrent runs, and attaching them never
			// changes results.
			var m *metrics.Collector
			if o.metricsEnabled() {
				m = metrics.New(metrics.Config{Interval: o.metricsInterval()})
				cfg.Metrics = m
			}
			r, err := sim.Run(cfg)
			if err == nil && r.Stopped {
				// An in-flight simulation aborted by cancellation or an
				// expired deadline: its partial measurements must never
				// land in the cache.
				if o.expired() {
					err = ErrDeadlineExceeded
				} else {
					err = ErrCanceled
				}
			} else {
				prog.tick()
			}
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstErr == nil {
				firstErr = err
			}
			s.Points[i] = SweepPoint{Offered: load, Result: r}
			if m != nil && err == nil {
				sum := m.Summarize()
				s.Points[i].Metrics = &sum
			}
		}(i, load)
	}
	wg.Wait()
	return s, firstErr
}

// FigureSpec describes one simulation figure: a topology, traffic
// pattern, algorithm set and load range.
type FigureSpec struct {
	ID, Title string
	Topology  func() *topology.Topology
	Pattern   func(*topology.Topology) traffic.Pattern
	Algs      func(*topology.Topology) []routing.Algorithm
	Loads     []float64
}

// meshLoads and cubeLoads are the full sweep ranges, in flits/us/node,
// bracketing every algorithm's saturation point.
var meshLoads = []float64{0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0, 2.25, 2.5, 2.75, 3.0}
var cubeLoads = []float64{0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 5.0, 6.0, 7.0, 8.0, 10.0, 12.0}

func meshAlgs(t *topology.Topology) []routing.Algorithm {
	return []routing.Algorithm{
		routing.NewDimensionOrder(t),
		routing.NewWestFirst(t),
		routing.NewNorthLast(t),
		routing.NewNegativeFirst(t),
	}
}

func cubeAlgs(t *topology.Topology) []routing.Algorithm {
	return []routing.Algorithm{
		routing.NewDimensionOrder(t),       // e-cube
		routing.NewABONF(t, t.NumDims()-1), // all-but-one-negative-first
		routing.NewABOPL(t, 0),             // all-but-one-positive-last
		routing.NewNegativeFirst(t),        // p-cube
	}
}

// Figures lists the four simulation figures of Section 6 plus the
// hypercube uniform-traffic companion the section's text discusses.
var Figures = []FigureSpec{
	{
		ID: "fig13", Title: "Figure 13: uniform traffic in a 16x16 mesh",
		Topology: func() *topology.Topology { return topology.NewMesh(16, 16) },
		Pattern:  func(t *topology.Topology) traffic.Pattern { return traffic.NewUniform(t) },
		Algs:     meshAlgs, Loads: meshLoads,
	},
	{
		ID: "fig14", Title: "Figure 14: matrix-transpose traffic in a 16x16 mesh",
		Topology: func() *topology.Topology { return topology.NewMesh(16, 16) },
		Pattern:  func(t *topology.Topology) traffic.Pattern { return traffic.NewMeshTranspose(t) },
		Algs:     meshAlgs, Loads: meshLoads,
	},
	{
		ID: "fig15", Title: "Figure 15: matrix-transpose traffic in an 8-cube",
		Topology: func() *topology.Topology { return topology.NewHypercube(8) },
		Pattern:  func(t *topology.Topology) traffic.Pattern { return traffic.NewHypercubeTranspose(t) },
		Algs:     cubeAlgs, Loads: cubeLoads,
	},
	{
		ID: "fig16", Title: "Figure 16: reverse-flip traffic in an 8-cube",
		Topology: func() *topology.Topology { return topology.NewHypercube(8) },
		Pattern:  func(t *topology.Topology) traffic.Pattern { return traffic.NewReverseFlip(t) },
		Algs:     cubeAlgs, Loads: cubeLoads,
	},
	{
		ID: "fig13c", Title: "Section 6 (text): uniform traffic in an 8-cube",
		Topology: func() *topology.Topology { return topology.NewHypercube(8) },
		Pattern:  func(t *topology.Topology) traffic.Pattern { return traffic.NewUniform(t) },
		Algs:     cubeAlgs, Loads: cubeLoads,
	},
	{
		ID: "mesh3d", Title: "Extension ([19]'s study): uniform traffic in an 8x8x4 mesh",
		Topology: func() *topology.Topology { return topology.NewMesh(8, 8, 4) },
		Pattern:  func(t *topology.Topology) traffic.Pattern { return traffic.NewUniform(t) },
		Algs:     mesh3dAlgs, Loads: mesh3dLoads,
	},
	{
		ID: "mesh3dc", Title: "Extension ([19]'s study): bit-complement traffic in an 8x8x4 mesh",
		Topology: func() *topology.Topology { return topology.NewMesh(8, 8, 4) },
		Pattern:  func(t *topology.Topology) traffic.Pattern { return traffic.NewBitComplement(t) },
		Algs:     mesh3dAlgs, Loads: mesh3dLoads,
	},
}

// mesh3dLoads spans the 3D mesh's saturation range.
var mesh3dLoads = []float64{0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0}

func mesh3dAlgs(t *topology.Topology) []routing.Algorithm {
	return []routing.Algorithm{
		routing.NewDimensionOrder(t),
		routing.NewNegativeFirst(t),
		routing.NewABONF(t, t.NumDims()-1),
		routing.NewABOPL(t, 0),
	}
}

// FigureByID finds a simulation figure spec.
func FigureByID(id string) (FigureSpec, bool) {
	for _, f := range Figures {
		if f.ID == id {
			return f, true
		}
	}
	return FigureSpec{}, false
}

// figure sweep results are cached per (figure, seed, quick) within a
// process, so the claims experiment can reuse the figure runs.
var (
	sweepMu    sync.Mutex
	sweepCache = map[string][]Sweep{}
)

// cacheNeutralOptionFields lists the Options fields that can never
// change a figure's cached sweep content: concurrency knobs and
// side-channel hooks. Every other field is serialized into the cache
// key automatically by reflection, so adding a result-affecting
// Options field (fault knobs, new sweep parameters) can never silently
// alias cache entries — the new field is keyed the moment it exists.
// TestCacheKeyCoversOptions fails if this list drifts from the struct.
var cacheNeutralOptionFields = map[string]string{
	"Workers":    "results are bit-identical for any worker count",
	"Progress":   "stderr progress lines never affect results",
	"OnProgress": "structured progress callbacks never affect results",
	"Cancel":     "canceled runs return ErrCanceled and are never cached",
	"Deadline":   "expired runs return ErrDeadlineExceeded and are never cached",
}

// cacheKey canonically serializes the figure identity plus every
// result-affecting option into the sweep cache's key. Fields marshal
// as a JSON object with sorted keys, so the key is canonical; neutral
// fields (cacheNeutralOptionFields) are skipped. The metrics
// parameters ARE present: cached sweeps run without collectors carry
// no summaries, so a metrics-enabled request must not reuse them (and
// vice versa) — though for MetricsDir only the enabled-ness is keyed,
// not the path dumps land at. DisableRouteTables and Shards are
// present even though results are bit-identical either way, so the A/B
// determinism tests compare two genuine runs rather than one run
// against its own cache entry.
func cacheKey(f FigureSpec, o Options) string {
	fields := map[string]any{"figure": f.ID}
	v := reflect.ValueOf(o)
	for i := 0; i < v.NumField(); i++ {
		name := v.Type().Field(i).Name
		if _, neutral := cacheNeutralOptionFields[name]; neutral {
			continue
		}
		val := v.Field(i).Interface()
		if name == "MetricsDir" {
			val = o.MetricsDir != ""
		}
		fields["opt:"+name] = val
	}
	b, err := json.Marshal(fields)
	if err != nil {
		// Every keyed field must serialize; a new unserializable field
		// must either be listed cache-neutral or made marshalable.
		panic(fmt.Sprintf("exp: cache key not serializable: %v", err))
	}
	return string(b)
}

// CacheKey returns the canonical content address of a figure run: two
// (figure, Options) pairs share a key exactly when RunFigure would
// serve them from the same cache entry. The turnserver uses it to
// content-address jobs, so identical submissions collapse onto one job
// and one cached result.
func CacheKey(f FigureSpec, o Options) string { return cacheKey(f, o) }

// RunFigure runs (or returns cached) sweeps for a figure spec. With
// Options.MetricsDir set it also writes the figure's metric dump
// (<dir>/<id>.metrics.json), whether the sweeps were cached or fresh.
func RunFigure(f FigureSpec, o Options) ([]Sweep, error) {
	key := cacheKey(f, o)
	sweepMu.Lock()
	s, cached := sweepCache[key]
	sweepMu.Unlock()
	if !cached {
		// The cache key keeps the caller's (possibly auto) shard
		// request; resolution only picks how the identical results are
		// computed.
		ro := o.resolveShards(figureLeaves(f, o))
		var err error
		s, err = runFigure(f, ro, make(chan struct{}, ro.workers()))
		if err != nil {
			return nil, err
		}
		sweepMu.Lock()
		sweepCache[key] = s
		sweepMu.Unlock()
	}
	if o.MetricsDir != "" {
		if err := WriteSweepMetrics(o.MetricsDir, f.ID, o, s); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// runFigure measures every algorithm line of a figure, uncached. The
// lines run in parallel, each fanning out over its load points; sem
// bounds the total number of concurrent simulations. Topology and
// relations come from the cross-leaf compile cache (sharecache.go):
// figure leaves never mutate the fault set, so every sweep of the same
// figure — and every figure sharing a topology — reuses one topology
// instance and one compiled route table per relation.
func runFigure(f FigureSpec, o Options, sem chan struct{}) ([]Sweep, error) {
	t := SharedTopology(f.Topology)
	pat := f.Pattern(t)
	loads := o.loads(f.Loads)
	algs := SharedAlgorithms(t, f.Algs(t))
	prog := newProgress(o, f.ID, len(algs)*len(loads))
	sweeps := make([]Sweep, len(algs))
	errs := make([]error, len(algs))
	var wg sync.WaitGroup
	for i, alg := range algs {
		wg.Add(1)
		go func(i int, alg routing.Algorithm) {
			defer wg.Done()
			sweeps[i], errs[i] = runSweep(alg, pat, loads, o, sem, prog)
		}(i, alg)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return sweeps, nil
}

// PrefetchFigures runs several figures concurrently — figures, algorithm
// lines and load points all fan out over one worker pool of
// o.workers() simulations — and fills the figure cache, so subsequent
// RunFigure calls return instantly. Results are bit-identical to
// sequential RunFigure calls.
func PrefetchFigures(o Options, figs ...FigureSpec) error {
	// Collect the uncached figures first, so an auto shard request is
	// resolved against the true amount of sweep-level parallelism
	// available across every figure about to run. Cache keys keep the
	// caller's original options.
	type pending struct {
		i   int
		f   FigureSpec
		key string
	}
	var todo []pending
	leaves := 0
	for i, f := range figs {
		key := cacheKey(f, o)
		sweepMu.Lock()
		_, cached := sweepCache[key]
		sweepMu.Unlock()
		if cached {
			continue
		}
		todo = append(todo, pending{i, f, key})
		leaves += figureLeaves(f, o)
	}
	ro := o.resolveShards(leaves)
	sem := make(chan struct{}, ro.workers())
	errs := make([]error, len(figs))
	var wg sync.WaitGroup
	for _, p := range todo {
		wg.Add(1)
		go func(p pending) {
			defer wg.Done()
			sweeps, err := runFigure(p.f, ro, sem)
			if err != nil {
				errs[p.i] = err
				return
			}
			sweepMu.Lock()
			sweepCache[p.key] = sweeps
			sweepMu.Unlock()
		}(p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteFigure renders a figure's series in the paper's axes: average
// latency (us) against measured throughput (flits/us), one series per
// algorithm, followed by the maximum sustainable throughput summary.
func WriteFigure(w io.Writer, f FigureSpec, sweeps []Sweep) {
	fmt.Fprintf(w, "%s\n", f.Title)
	fmt.Fprintf(w, "(series: measured throughput in flits/us vs average latency in us;\n")
	fmt.Fprintf(w, " S marks points sustainable under the bounded-source-queue criterion)\n\n")
	for _, s := range sweeps {
		fmt.Fprintf(w, "  %s:\n", s.Algorithm)
		tbl := stats.NewTable("offered(flits/us/node)", "throughput(flits/us)", "latency(us)", "net-latency(us)", "hops", "sustainable")
		for _, p := range s.Points {
			sus := "S"
			if !p.Result.Sustainable {
				sus = "-"
			}
			tbl.AddRow(p.Offered, p.Result.Throughput, p.Result.AvgLatency, p.Result.AvgNetLatency, p.Result.AvgHops, sus)
		}
		for _, line := range splitLines(tbl.String()) {
			fmt.Fprintf(w, "    %s\n", line)
		}
	}
	// The paper's figure form: latency (y) against measured throughput
	// (x), one marker per algorithm.
	plot := stats.NewPlot("throughput (flits/us)", "avg latency (us)")
	for _, s := range sweeps {
		var xs, ys []float64
		for _, pt := range s.Points {
			if pt.Result.PacketsDelivered == 0 {
				continue
			}
			xs = append(xs, pt.Result.Throughput)
			ys = append(ys, pt.Result.AvgLatency)
		}
		plot.Add(s.Algorithm, xs, ys, 0)
	}
	for _, line := range splitLines(plot.String()) {
		fmt.Fprintf(w, "  %s\n", line)
	}
	fmt.Fprintf(w, "  maximum sustainable throughput:\n")
	type maxRow struct {
		alg  string
		thr  float64
		load float64
	}
	var rows []maxRow
	for _, s := range sweeps {
		thr, load := s.MaxSustainable()
		rows = append(rows, maxRow{s.Algorithm, thr, load})
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].thr > rows[j].thr })
	tbl := stats.NewTable("algorithm", "max sustainable (flits/us)", "at offered load")
	for _, r := range rows {
		tbl.AddRow(r.alg, r.thr, r.load)
	}
	for _, line := range splitLines(tbl.String()) {
		fmt.Fprintf(w, "    %s\n", line)
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func init() {
	for i := range Figures {
		f := Figures[i]
		register(Experiment{
			ID:    f.ID,
			Title: f.Title,
			Run: func(o Options, w io.Writer) error {
				sweeps, err := RunFigure(f, o)
				if err != nil {
					return err
				}
				WriteFigure(w, f, sweeps)
				return nil
			},
		})
	}
}
