package exp

import (
	"fmt"
	"io"

	"turnmodel/internal/core"
	"turnmodel/internal/fault"
	"turnmodel/internal/routing"
	"turnmodel/internal/sim"
	"turnmodel/internal/stats"
	"turnmodel/internal/topology"
	"turnmodel/internal/traffic"
)

func init() {
	register(Experiment{
		ID:    "degrade",
		Title: "Extension: graceful degradation — delivered fraction and tail latency under random fault campaigns with deadlock recovery",
		Run:   runDegrade,
	})
}

// runDegrade sweeps the transient-fault rate of a random campaign on a
// 16x16 mesh (8x8 in quick mode) and measures how west-first routing
// degrades: the minimal relation loses connectivity and leans on the
// recovery watchdog's abort/retry/drop path, while the nonminimal
// relation detours around faults and keeps its delivered fraction high.
// Faults follow a seeded Poisson process with exponential repair times
// (the campaign's MTTR), so every row is reproducible.
func runDegrade(o Options, w io.Writer) error {
	side := 16
	if o.Quick {
		side = 8
	}
	rates := []float64{0, 0.5, 1, 2, 4}
	if o.Quick {
		rates = []float64{0, 1, 4}
	}
	horizon := o.warmup() + o.measure()
	tbl := stats.NewTable("faults/kcycle", "relation", "delivered", "p50 (us)", "p99 (us)",
		"recoveries", "retries", "dropped")
	for _, rate := range rates {
		for _, minimal := range []bool{true, false} {
			// Ownership split (sharecache.go): fault-free rows share the
			// process-wide topology and compiled table, while campaign
			// rows build private copies — the fault driver mutates the
			// topology, which must never happen to a shared instance.
			var topo *topology.Topology
			var alg routing.Algorithm
			if rate == 0 {
				topo = SharedTopology(func() *topology.Topology { return topology.NewMesh(side, side) })
				min := minimal
				alg = SharedAlgorithm(topo, func(t *topology.Topology) routing.Algorithm {
					return routing.NewTurnGraphRouting(t, core.WestFirstSet(), min)
				})
			} else {
				topo = topology.NewMesh(side, side)
				alg = routing.NewTurnGraphRouting(topo, core.WestFirstSet(), minimal)
			}
			name := "west-first (minimal)"
			var patience int64
			if !minimal {
				name = "west-first (nonminimal)"
				patience = 8
			}
			var plan *fault.Plan
			if rate > 0 {
				var err error
				plan, err = fault.NewCampaign(topo, fault.Campaign{
					Seed:    o.Seed + 1,
					Horizon: horizon,
					Rate:    rate,
					MTTR:    2000,
				})
				if err != nil {
					return err
				}
			}
			res, err := sim.Run(sim.Config{
				Algorithm:         alg,
				Pattern:           traffic.NewUniform(topo),
				OfferedLoad:       1.0,
				WarmupCycles:      o.warmup(),
				MeasureCycles:     o.measure(),
				Seed:              o.Seed,
				MisrouteAfter:     patience,
				Shards:            o.Shards,
				FaultPlan:         plan,
				RecoveryThreshold: 2000,
				RetryLimit:        8,
			})
			if err != nil {
				return err
			}
			// The delivered fraction accounts for every packet generated
			// over the whole run: delivered-ever over delivered + dropped
			// + still in flight at the end.
			total := res.PacketsDeliveredTotal + res.PacketsDropped + res.PacketsInFlight
			frac := 1.0
			if total > 0 {
				frac = float64(res.PacketsDeliveredTotal) / float64(total)
			}
			tbl.AddRow(fmt.Sprintf("%.1f", rate), name, fmt.Sprintf("%.4f", frac),
				res.LatencyP50, res.LatencyP99,
				fmt.Sprint(res.Recoveries), fmt.Sprint(res.Retries), fmt.Sprint(res.PacketsDropped))
		}
	}
	fmt.Fprintf(w, "%dx%d mesh, uniform traffic at 1.0 flits/us/node, random transient channel\nfaults (MTTR 2000 cycles), recovery threshold 2000 cycles, retry budget 8:\n%s", side, side, tbl)
	fmt.Fprintf(w, "\nthe minimal relation leans on the recovery watchdog as the fault rate grows —\npairs whose only west-first paths cross a fault stall until aborted and\nretried, inflating the latency tail — while the nonminimal relation detours\naround faults and degrades far more gracefully (fewer aborts, flatter p99)\n")
	return nil
}
