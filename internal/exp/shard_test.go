package exp

import (
	"bytes"
	"reflect"
	"runtime"
	"testing"

	"turnmodel/internal/sim"
)

// TestWorkerShardBudget: Workers and engine shards share one
// concurrency budget — the effective sweep worker count must shrink so
// Workers × Shards never exceeds GOMAXPROCS (floored at one worker so
// progress is always possible).
func TestWorkerShardBudget(t *testing.T) {
	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)
	for _, tc := range []struct {
		name            string
		workers, shards int
		want            int
	}{
		{"default-serial", 0, 0, 8},
		{"explicit-serial", 3, 0, 3},
		{"default-sharded", 0, 4, 2},
		{"explicit-under-budget", 1, 4, 1},
		{"explicit-over-budget-clamped", 8, 4, 2},
		{"shards-exceed-procs", 0, 16, 1},
		{"explicit-over-with-huge-shards", 6, 16, 1},
		{"auto-unresolved", 0, sim.ShardsAuto, 1},
		{"auto-unresolved-explicit-workers", 5, sim.ShardsAuto, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			o := Options{Workers: tc.workers, Shards: tc.shards}
			got := o.workers()
			if got != tc.want {
				t.Errorf("Options{Workers: %d, Shards: %d}.workers() = %d, want %d (GOMAXPROCS 8)",
					tc.workers, tc.shards, got, tc.want)
			}
			if tc.shards > 1 && got*tc.shards > 8 && got > 1 {
				t.Errorf("budget violated: %d workers x %d shards > GOMAXPROCS 8", got, tc.shards)
			}
		})
	}
}

// TestAutoShardResolution: an auto shard request resolves against the
// sweep shape — whole-simulation batching (serial engines, full sweep
// parallelism) when the sweep has at least GOMAXPROCS leaves, per-
// engine auto shards otherwise.
func TestAutoShardResolution(t *testing.T) {
	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)

	o := Options{Shards: sim.ShardsAuto}
	wide := o.resolveShards(48)
	if wide.Shards != 0 {
		t.Errorf("resolveShards(48 leaves) kept Shards %d, want 0 (batching)", wide.Shards)
	}
	if got := wide.workers(); got != 8 {
		t.Errorf("batched auto workers() = %d, want GOMAXPROCS 8", got)
	}
	narrow := o.resolveShards(3)
	if narrow.Shards != sim.ShardsAuto {
		t.Errorf("resolveShards(3 leaves) = Shards %d, want %d (per-engine auto)", narrow.Shards, sim.ShardsAuto)
	}
	if got := narrow.workers(); got != 1 {
		t.Errorf("per-engine auto workers() = %d, want 1", got)
	}
	explicit := Options{Shards: 4}.resolveShards(48)
	if explicit.Shards != 4 {
		t.Errorf("resolveShards must not touch explicit Shards, got %d", explicit.Shards)
	}

	f, ok := FigureByID("fig13")
	if !ok {
		t.Fatal("fig13 spec missing")
	}
	// fig13 quick: 4 algorithms x 5 loads = 20 leaves.
	if got := figureLeaves(f, Options{Quick: true}); got != 20 {
		t.Errorf("figureLeaves(fig13, quick) = %d, want 20", got)
	}
	base := Options{Quick: true, Seed: 7, Warmup: 800, Measure: 2400}
	auto := base
	auto.Shards = sim.ShardsAuto
	if cacheKey(f, base) == cacheKey(f, auto) {
		t.Fatal("cache key must distinguish auto shards from serial")
	}
}

// TestShardedFigureDeterminism: engine sharding must be invisible at
// the figure level too. The same figure sweep run serially and with
// sharded engines must agree byte for byte, both as raw Sweep values
// and as rendered golden-figure output. The cache key includes the
// shard count, so both runs genuinely simulate.
func TestShardedFigureDeterminism(t *testing.T) {
	f, ok := FigureByID("fig13")
	if !ok {
		t.Fatal("fig13 spec missing")
	}
	base := Options{Quick: true, Seed: 7, Warmup: 800, Measure: 2400}

	serial := base
	sharded := base
	sharded.Shards = 3
	if cacheKey(f, serial) == cacheKey(f, sharded) {
		t.Fatal("cache key must distinguish the shard count")
	}

	sweepsSer, err := runFigure(f, serial, make(chan struct{}, serial.workers()))
	if err != nil {
		t.Fatal(err)
	}
	sweepsShd, err := runFigure(f, sharded, make(chan struct{}, sharded.workers()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sweepsSer, sweepsShd) {
		t.Fatalf("sharded sweep results diverge from serial:\nserial: %+v\nsharded: %+v", sweepsSer, sweepsShd)
	}
	auto := base
	auto.Shards = sim.ShardsAuto
	ra := auto.resolveShards(figureLeaves(f, auto))
	sweepsAuto, err := runFigure(f, ra, make(chan struct{}, ra.workers()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sweepsSer, sweepsAuto) {
		t.Fatal("auto-shard sweep results diverge from serial")
	}
	var bufSer, bufShd bytes.Buffer
	WriteFigure(&bufSer, f, sweepsSer)
	WriteFigure(&bufShd, f, sweepsShd)
	if !bytes.Equal(bufSer.Bytes(), bufShd.Bytes()) {
		t.Fatal("rendered figure output differs between shard counts")
	}
}
