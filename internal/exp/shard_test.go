package exp

import (
	"bytes"
	"reflect"
	"runtime"
	"testing"
)

// TestWorkerShardBudget: Workers and engine shards share one
// concurrency budget — the effective sweep worker count must shrink so
// Workers × Shards never exceeds GOMAXPROCS (floored at one worker so
// progress is always possible).
func TestWorkerShardBudget(t *testing.T) {
	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)
	for _, tc := range []struct {
		name            string
		workers, shards int
		want            int
	}{
		{"default-serial", 0, 0, 8},
		{"explicit-serial", 3, 0, 3},
		{"default-sharded", 0, 4, 2},
		{"explicit-under-budget", 1, 4, 1},
		{"explicit-over-budget-clamped", 8, 4, 2},
		{"shards-exceed-procs", 0, 16, 1},
		{"explicit-over-with-huge-shards", 6, 16, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			o := Options{Workers: tc.workers, Shards: tc.shards}
			got := o.workers()
			if got != tc.want {
				t.Errorf("Options{Workers: %d, Shards: %d}.workers() = %d, want %d (GOMAXPROCS 8)",
					tc.workers, tc.shards, got, tc.want)
			}
			if tc.shards > 1 && got*tc.shards > 8 && got > 1 {
				t.Errorf("budget violated: %d workers x %d shards > GOMAXPROCS 8", got, tc.shards)
			}
		})
	}
}

// TestShardedFigureDeterminism: engine sharding must be invisible at
// the figure level too. The same figure sweep run serially and with
// sharded engines must agree byte for byte, both as raw Sweep values
// and as rendered golden-figure output. The cache key includes the
// shard count, so both runs genuinely simulate.
func TestShardedFigureDeterminism(t *testing.T) {
	f, ok := FigureByID("fig13")
	if !ok {
		t.Fatal("fig13 spec missing")
	}
	base := Options{Quick: true, Seed: 7, Warmup: 800, Measure: 2400}

	serial := base
	sharded := base
	sharded.Shards = 3
	if cacheKey(f, serial) == cacheKey(f, sharded) {
		t.Fatal("cache key must distinguish the shard count")
	}

	sweepsSer, err := runFigure(f, serial, make(chan struct{}, serial.workers()))
	if err != nil {
		t.Fatal(err)
	}
	sweepsShd, err := runFigure(f, sharded, make(chan struct{}, sharded.workers()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sweepsSer, sweepsShd) {
		t.Fatalf("sharded sweep results diverge from serial:\nserial: %+v\nsharded: %+v", sweepsSer, sweepsShd)
	}
	var bufSer, bufShd bytes.Buffer
	WriteFigure(&bufSer, f, sweepsSer)
	WriteFigure(&bufShd, f, sweepsShd)
	if !bytes.Equal(bufSer.Bytes(), bufShd.Bytes()) {
		t.Fatal("rendered figure output differs between shard counts")
	}
}
