package exp

import (
	"testing"

	"turnmodel/internal/routing"
)

// TestSweepCompileSharing pins the cross-leaf compile cache's whole
// point: a figure sweep compiles at most one route table per distinct
// relation — never one per leaf — and a second sweep of the same figure
// (fresh seed, so the sweep result cache cannot serve it) compiles
// nothing at all, because the shared instances and their pinned tables
// persist across sweeps.
func TestSweepCompileSharing(t *testing.T) {
	f, ok := FigureByID("fig13")
	if !ok {
		t.Fatal("fig13 missing")
	}
	o := Options{Quick: true, Seed: 987001, Loads: []float64{0.5, 1.0}, Warmup: 64, Measure: 128}
	algs := len(f.Algs(f.Topology()))
	leaves := algs * len(o.Loads)
	if leaves <= algs {
		t.Fatalf("test needs more leaves (%d) than relations (%d) to distinguish per-leaf from per-relation compilation", leaves, algs)
	}
	c0 := routing.CompileCount()
	if _, err := RunFigure(f, o); err != nil {
		t.Fatal(err)
	}
	c1 := routing.CompileCount()
	// At most one compile per relation; possibly fewer when an earlier
	// test already interned some of fig13's relations.
	if d := c1 - c0; d > int64(algs) {
		t.Errorf("first sweep compiled %d tables over %d leaves, want at most one per relation (%d)", d, leaves, algs)
	}
	o.Seed = 987002 // new sweep-cache key: the leaves genuinely rerun
	if _, err := RunFigure(f, o); err != nil {
		t.Fatal(err)
	}
	if d := routing.CompileCount() - c1; d != 0 {
		t.Errorf("second sweep of the same figure compiled %d tables, want 0 (shared across sweeps)", d)
	}
}

// BenchmarkSweepCompiles measures a one-point figure sweep per op and
// reports compiles/op: with the cross-leaf cache the counter moves only
// on the first op (one compile per distinct relation), so the metric
// tends to zero instead of tracking the leaf count.
func BenchmarkSweepCompiles(b *testing.B) {
	f, ok := FigureByID("fig13")
	if !ok {
		b.Fatal("fig13 missing")
	}
	c0 := routing.CompileCount()
	for i := 0; i < b.N; i++ {
		o := Options{Quick: true, Seed: int64(990001 + i), Loads: []float64{0.75}, Warmup: 64, Measure: 128}
		if _, err := RunFigure(f, o); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(routing.CompileCount()-c0)/float64(b.N), "compiles/op")
}
