package exp

import (
	"bytes"
	"reflect"
	"testing"
)

// TestParallelFigureDeterminism: the parallel harness must be invisible
// in the results. One figure sweep run through the worker pool and the
// same sweep with workers forced to 1 (sequential order) must agree
// byte for byte, both as raw Sweep values and as rendered output.
func TestParallelFigureDeterminism(t *testing.T) {
	f, ok := FigureByID("fig13")
	if !ok {
		t.Fatal("fig13 spec missing")
	}
	base := Options{Quick: true, Seed: 7, Warmup: 1000, Measure: 3000}

	seq := base
	seq.Workers = 1
	par := base
	par.Workers = 8

	// runFigure bypasses the sweep cache, so both runs really simulate.
	sweepsSeq, err := runFigure(f, seq, make(chan struct{}, seq.workers()))
	if err != nil {
		t.Fatal(err)
	}
	sweepsPar, err := runFigure(f, par, make(chan struct{}, par.workers()))
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(sweepsSeq, sweepsPar) {
		t.Fatalf("parallel sweep results diverge from sequential:\nseq: %+v\npar: %+v", sweepsSeq, sweepsPar)
	}
	var bufSeq, bufPar bytes.Buffer
	WriteFigure(&bufSeq, f, sweepsSeq)
	WriteFigure(&bufPar, f, sweepsPar)
	if !bytes.Equal(bufSeq.Bytes(), bufPar.Bytes()) {
		t.Fatal("rendered figure output differs between worker counts")
	}

	// PrefetchFigures must produce the identical cached result.
	sweepCacheReset(t, f, par)
	if err := PrefetchFigures(par, f); err != nil {
		t.Fatal(err)
	}
	cached, err := RunFigure(f, par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sweepsSeq, cached) {
		t.Fatal("prefetched figure results diverge from sequential run")
	}
}

// TestRouteTableFigureDeterminism: compiled route tables must be
// invisible in the results too. The same figure sweep with tables on
// (the default) and off must agree byte for byte, as raw Sweep values
// and as rendered figure output. The cache key includes the flag, so
// both runs genuinely simulate.
func TestRouteTableFigureDeterminism(t *testing.T) {
	f, ok := FigureByID("fig13")
	if !ok {
		t.Fatal("fig13 spec missing")
	}
	base := Options{Quick: true, Seed: 7, Warmup: 1000, Measure: 3000}

	tables := base
	direct := base
	direct.DisableRouteTables = true
	if cacheKey(f, tables) == cacheKey(f, direct) {
		t.Fatal("cache key must distinguish the route-table flag")
	}

	sweepsTab, err := runFigure(f, tables, make(chan struct{}, tables.workers()))
	if err != nil {
		t.Fatal(err)
	}
	sweepsDir, err := runFigure(f, direct, make(chan struct{}, direct.workers()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sweepsTab, sweepsDir) {
		t.Fatalf("route-table sweep results diverge from direct evaluation:\ntables: %+v\ndirect: %+v", sweepsTab, sweepsDir)
	}
	var bufTab, bufDir bytes.Buffer
	WriteFigure(&bufTab, f, sweepsTab)
	WriteFigure(&bufDir, f, sweepsDir)
	if !bytes.Equal(bufTab.Bytes(), bufDir.Bytes()) {
		t.Fatal("rendered figure output differs between route-table modes")
	}
}

// sweepCacheReset clears any cache entry for (f, o) so the next run
// actually simulates.
func sweepCacheReset(t *testing.T, f FigureSpec, o Options) {
	t.Helper()
	sweepMu.Lock()
	delete(sweepCache, cacheKey(f, o))
	sweepMu.Unlock()
}
