package exp

import (
	"fmt"
	"io"

	"turnmodel/internal/hexmesh"
	"turnmodel/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "hex",
		Title: "Section 7 (future work): the turn model on hexagonal meshes — non-90-degree turns, non-4-turn cycles",
		Run:   runHex,
	})
}

// runHex reproduces the future-work claim: on the hexagonal mesh the
// turns are 60 and 120 degrees, the abstract cycles are triangles of
// three turns and hexagons of six, they still partition the turn set,
// the quarter-prohibition minimum still holds, and the negative-first
// construction (with the Theorem 5 numbering) still yields a
// deadlock-free, partially adaptive algorithm.
func runHex(_ Options, w io.Writer) error {
	fmt.Fprintf(w, "hexagonal mesh turn structure:\n")
	tbl := stats.NewTable("quantity", "value", "orthogonal 2D analogue")
	tbl.AddRow("directions", 6, 4)
	tbl.AddRow("turns", hexmesh.NumTurns(), 8)
	tbl.AddRow("abstract cycles", hexmesh.NumAbstractCycles(), 2)
	tbl.AddRow("cycle shapes", "4 triangles (120-deg turns) + 2 hexagons (60-deg)", "2 squares of four 90-deg turns")
	tbl.AddRow("minimum prohibited", fmt.Sprintf("%d (a quarter)", hexmesh.MinimumProhibited()), "2 (a quarter)")
	fmt.Fprint(w, tbl)

	fmt.Fprintf(w, "\nabstract cycles:\n")
	for _, c := range hexmesh.AbstractCycles() {
		fmt.Fprintf(w, "  %v\n", c)
	}

	set := hexmesh.NegativeFirstSet()
	ok, _ := set.BreaksAllAbstractCycles()
	fmt.Fprintf(w, "\nhex negative-first prohibits %v\nbreaks all abstract cycles: %v\n", set.Prohibited(), ok)

	m := hexmesh.NewMesh(8, 8)
	nf := hexmesh.BuildCDG(hexmesh.NewNegativeFirst(m))
	full := hexmesh.BuildCDG(hexmesh.NewFullyAdaptive(m))
	fmt.Fprintf(w, "\n8x8 hexagonal mesh dependency analysis:\n")
	fmt.Fprintf(w, "  negative-first: %d edges, acyclic=%v, numbering violations=%d\n",
		nf.NumEdges(), nf.Acyclic(), nf.VerifyMonotone(m.NegativeFirstNumber))
	cyc := full.FindCycle()
	fmt.Fprintf(w, "  fully adaptive: %d edges, acyclic=%v (witness length %d: a lattice triangle family)\n",
		full.NumEdges(), full.Acyclic(), len(cyc))
	if !nf.Acyclic() || full.Acyclic() {
		return fmt.Errorf("hexagonal verification failed")
	}
	return nil
}
