package exp

import (
	"fmt"
	"io"

	"turnmodel/internal/core"
	"turnmodel/internal/deadlock"
	"turnmodel/internal/routing"
	"turnmodel/internal/sim"
	"turnmodel/internal/stats"
	"turnmodel/internal/topology"
	"turnmodel/internal/traffic"
)

// This file registers the experiments that go beyond the paper's
// figures: the introduction's switching-technique latency comparison,
// and the hot-spot study the introduction motivates adaptive routing
// with ("adaptiveness ... provides alternative paths for packets that
// encounter ... hot spots in traffic patterns").

func init() {
	register(Experiment{
		ID:    "intro",
		Title: "Section 1 (text): switching-technique latency — wormhole/VCT scale with L+D, store-and-forward with L*D",
		Run:   runIntro,
	})
	register(Experiment{
		ID:    "hotspot",
		Title: "Extension: hot-spot traffic — adaptive routing spreads load around the hot node",
		Run:   runHotspot,
	})
}

// runIntro measures the uncontended latency of one packet as a function
// of distance for each switching technique, reproducing the
// introduction's scaling comparison.
func runIntro(_ Options, w io.Writer) error {
	topo := topology.NewMesh(16, 2)
	alg := routing.NewDimensionOrder(topo)
	const length = 32
	distances := []int{2, 4, 8, 12}
	tbl := stats.NewTable("switching", "D=2", "D=4", "D=8", "D=12", "scaling")
	for _, sw := range []sim.Switching{sim.Wormhole, sim.VirtualCutThrough, sim.StoreAndForward} {
		row := []interface{}{sw.String()}
		var lats []float64
		for _, d := range distances {
			res, err := sim.Run(sim.Config{
				Algorithm: alg,
				Script: []sim.ScriptedMessage{{
					Src:    topo.ID(topology.Coord{0, 0}),
					Dst:    topo.ID(topology.Coord{d, 0}),
					Length: length,
				}},
				Switching: sw,
			})
			if err != nil {
				return err
			}
			lat := float64(res.Cycles) / sim.CyclesPerMicrosecond
			lats = append(lats, lat)
			row = append(row, fmt.Sprintf("%.2f us", lat))
		}
		// Classify the scaling by the marginal cost of extra distance:
		// about one cycle per hop for L+D, about L cycles per hop for
		// L*D.
		perHop := (lats[len(lats)-1] - lats[0]) / float64(distances[len(distances)-1]-distances[0]) * sim.CyclesPerMicrosecond
		scaling := "~ L + D"
		if perHop > float64(length)/2 {
			scaling = "~ L * D"
		}
		row = append(row, fmt.Sprintf("%s (%.1f cycles/hop)", scaling, perHop))
		tbl.AddRow(row...)
	}
	fmt.Fprintf(w, "single %d-flit packet, no contention, 16x2 mesh (latency = run cycles / 20):\n%s", length, tbl)
	return nil
}

// runHotspot compares xy and negative-first under increasing hot-spot
// intensity at a fixed moderate background load.
func runHotspot(o Options, w io.Writer) error {
	topo := topology.NewMesh(16, 16)
	hot := topo.ID(topology.Coord{8, 8})
	tbl := stats.NewTable("hot fraction", "algorithm", "throughput (flits/us)", "latency (us)", "p99 (us)", "sustainable")
	for _, frac := range []float64{0, 0.05, 0.10} {
		for _, alg := range []routing.Algorithm{routing.NewDimensionOrder(topo), routing.NewNegativeFirst(topo)} {
			res, err := sim.Run(sim.Config{
				Algorithm:     alg,
				Pattern:       traffic.NewHotspot(topo, hot, frac),
				OfferedLoad:   1.0,
				WarmupCycles:  o.warmup(),
				MeasureCycles: o.measure(),
				Seed:          o.Seed,
			})
			if err != nil {
				return err
			}
			sus := "yes"
			if !res.Sustainable {
				sus = "no"
			}
			tbl.AddRow(fmt.Sprintf("%.0f%%", frac*100), alg.Name(), res.Throughput, res.AvgLatency, res.LatencyP99, sus)
		}
	}
	fmt.Fprintf(w, "16x16 mesh, offered 1.0 flits/us/node, fraction of traffic aimed at node (8,8):\n%s", tbl)
	fmt.Fprintf(w, "\nnote: the single ejection channel at the hot node (20 flits/us) bounds every\nalgorithm equally; the adaptive advantage shows in the latency of the\nbackground traffic routed around the congested region\n")
	return nil
}

func init() {
	register(Experiment{
		ID:    "torus",
		Title: "Section 4.2: k-ary n-cube routing — wraparound extensions vs minimal routing with virtual channels",
		Run:   runTorus,
	})
}

// runTorus contrasts the Section 4.2 positions: minimal dimension-order
// torus routing without extra channels is not deadlock free; the paper's
// wraparound extensions (first-hop wraparounds, classified-channel
// negative-first) are deadlock free but strictly nonminimal; and the
// Dally-Seitz dateline scheme buys minimality with two virtual channels.
func runTorus(o Options, w io.Writer) error {
	topo := topology.NewTorus(8, 2)
	tbl := stats.NewTable("algorithm", "channels", "deadlock free", "minimal", "avg hops (uniform sim)")

	type row struct {
		name    string
		check   string
		minimal string
		cfg     sim.Config
	}
	rows := []row{
		{
			name:    "torus-dor (no extra channels)",
			check:   deadlock.Check(routing.NewTorusDOR(topo)).String(),
			minimal: "yes",
			// Simulating it would deadlock; skip.
		},
		{
			name:    "wrap-first-hop(negative-first)",
			check:   deadlock.Check(routing.NewWrapFirstHop(routing.NewNegativeFirst(topo))).String(),
			minimal: "no (first-hop wrap only)",
			cfg: sim.Config{
				Algorithm: routing.NewWrapFirstHop(routing.NewNegativeFirst(topo)),
			},
		},
		{
			name:    "negative-first-torus (classified)",
			check:   deadlock.Check(routing.NewNegativeFirstTorus(topo)).String(),
			minimal: "no (strictly nonminimal)",
			cfg: sim.Config{
				Algorithm: routing.NewNegativeFirstTorus(topo),
			},
		},
		{
			name:    "dateline-dor (2 virtual channels)",
			check:   deadlock.CheckVC(routing.NewDatelineDOR(topo)).String(),
			minimal: "yes",
			cfg: sim.Config{
				VCAlgorithm: routing.NewDatelineDOR(topo),
			},
		},
	}
	for _, r := range rows {
		hops := "(not simulated: would deadlock)"
		free := "yes"
		if len(r.check) > 3 && r.check[:3] == "NOT" {
			free = "NO"
		}
		if free == "yes" && (r.cfg.Algorithm != nil || r.cfg.VCAlgorithm != nil) {
			cfg := r.cfg
			cfg.Pattern = traffic.NewUniform(topo)
			cfg.OfferedLoad = 1.0
			cfg.WarmupCycles = o.warmup()
			cfg.MeasureCycles = o.measure()
			cfg.Seed = o.Seed
			res, err := sim.Run(cfg)
			if err != nil {
				return err
			}
			hops = fmt.Sprintf("%.2f (min avg %.2f)", res.AvgHops, traffic.AverageUniformPathLength(topo))
		}
		channels := "1 per direction"
		if r.name == "dateline-dor (2 virtual channels)" {
			channels = "2 per direction"
		}
		tbl.AddRow(r.name, channels, free, r.minimal, hops)
	}
	fmt.Fprintf(w, "8-ary 2-cube:\n%s", tbl)
	fmt.Fprintf(w, "\ndependency checks:\n")
	fmt.Fprintf(w, "  torus-dor:            %v\n", deadlock.Check(routing.NewTorusDOR(topo)))
	fmt.Fprintf(w, "  wrap-first-hop(nf):   %v\n", deadlock.Check(routing.NewWrapFirstHop(routing.NewNegativeFirst(topo))))
	fmt.Fprintf(w, "  negative-first-torus: %v\n", deadlock.Check(routing.NewNegativeFirstTorus(topo)))
	fmt.Fprintf(w, "  dateline-dor:         %v\n", deadlock.CheckVC(routing.NewDatelineDOR(topo)))
	return nil
}

func init() {
	register(Experiment{
		ID:    "faults",
		Title: "Extension: fault tolerance — nonminimal turn-model routing around broken channels",
		Run:   runFaults,
	})
}

// runFaults injects a growing number of channel faults into an 8x8 mesh
// and compares the minimal west-first relation (which loses
// connectivity) with the nonminimal one under misroute patience (which
// keeps delivering) — the fault-tolerance case the paper makes for
// nonminimal routing.
func runFaults(o Options, w io.Writer) error {
	faultSets := [][]topology.Channel{
		{},
		{
			{From: 8*3 + 3, Dir: topology.Direction{Dim: 0, Pos: true}},
		},
		{
			{From: 8*3 + 3, Dir: topology.Direction{Dim: 0, Pos: true}},
			{From: 8*5 + 2, Dir: topology.Direction{Dim: 1, Pos: true}},
			{From: 8*1 + 6, Dir: topology.Direction{Dim: 1}},
		},
	}
	tbl := stats.NewTable("faults", "relation", "deadlock free", "unroutable pairs", "stranded flits", "latency (us)")
	for _, faults := range faultSets {
		topo := topology.NewMesh(8, 8)
		for _, f := range faults {
			if err := topo.DisableChannel(topology.Channel{From: f.From, Dir: f.Dir}); err != nil {
				return err
			}
		}
		for _, minimal := range []bool{true, false} {
			alg := routing.NewTurnGraphRouting(topo, core.WestFirstSet(), minimal)
			name := "west-first (minimal)"
			var patience int64
			if !minimal {
				name = "west-first (nonminimal)"
				patience = 8
			}
			// Unroutable pairs are a deterministic connectivity metric:
			// sources from which the relation cannot reach a destination
			// at all.
			unroutable := routing.UnroutablePairs(alg)
			check := deadlock.Check(alg)
			res, err := sim.Run(sim.Config{
				Algorithm:     alg,
				Pattern:       traffic.NewUniform(topo),
				OfferedLoad:   1.0,
				WarmupCycles:  o.warmup(),
				MeasureCycles: o.measure(),
				Seed:          o.Seed,
				MisrouteAfter: patience,
			})
			if err != nil {
				return err
			}
			free := "yes"
			if !check.DeadlockFree {
				free = "NO"
			}
			tbl.AddRow(fmt.Sprint(len(faults)), name, free, unroutable, fmt.Sprint(res.BacklogGrowth), res.AvgLatency)
		}
	}
	fmt.Fprintf(w, "8x8 mesh, uniform traffic at 1.0 flits/us/node, growing fault sets:\n%s", tbl)
	fmt.Fprintf(w, "\nthe minimal relation strands every pair whose shortest west-first paths\nall cross a fault (its backlog grows without bound); the nonminimal\nrelation detours using only allowed turns, so deadlock freedom persists\n")
	return nil
}

func init() {
	register(Experiment{
		ID:    "fully",
		Title: "Extension ([18]'s program): fully adaptive routing with an extra y channel vs the paper's channel-free algorithms",
		Run:   runFully,
	})
}

// runFully compares, under transpose traffic, nonadaptive xy, the
// paper's partially adaptive negative-first (no extra channels), and
// the fully adaptive double-y relation (one extra y channel per link) —
// the trade the paper frames in its introduction: "an advantage of
// adding virtual or physical channels, however, is that they can
// support routing algorithms with a high degree of adaptiveness."
func runFully(o Options, w io.Writer) error {
	topo := topology.NewMesh(16, 16)
	fmt.Fprintf(w, "double-y dependency check: %v\n\n", deadlock.CheckVC(routing.NewDoubleY(topo)))
	tbl := stats.NewTable("pattern", "algorithm", "extra channels", "throughput (flits/us)", "latency (us)", "sustainable")
	type entry struct {
		name  string
		extra string
		cfg   sim.Config
	}
	mk := func(pat traffic.Pattern) []entry {
		return []entry{
			{"xy", "none", sim.Config{Algorithm: routing.NewDimensionOrder(topo), Pattern: pat}},
			{"negative-first", "none", sim.Config{Algorithm: routing.NewNegativeFirst(topo), Pattern: pat}},
			{"double-y (fully adaptive)", "+1 y channel", sim.Config{VCAlgorithm: routing.NewDoubleY(topo), Pattern: pat}},
		}
	}
	for _, pat := range []traffic.Pattern{traffic.NewMeshTranspose(topo), traffic.NewUniform(topo)} {
		for _, en := range mk(pat) {
			cfg := en.cfg
			cfg.OfferedLoad = 1.75
			cfg.WarmupCycles = o.warmup()
			cfg.MeasureCycles = o.measure()
			cfg.Seed = o.Seed
			res, err := sim.Run(cfg)
			if err != nil {
				return err
			}
			sus := "yes"
			if !res.Sustainable {
				sus = "no"
			}
			tbl.AddRow(pat.Name(), en.name, en.extra, res.Throughput, res.AvgLatency, sus)
		}
	}
	fmt.Fprintf(w, "16x16 mesh at offered 1.75 flits/us/node:\n%s", tbl)
	return nil
}

func init() {
	register(Experiment{
		ID:    "tornado",
		Title: "Extension: tornado traffic on an 8-ary 2-cube — the wraparound stress test",
		Run:   runTornado,
	})
}

// runTornado drives the k-ary n-cube adversary (every node sends just
// under half way around both rings) against the Section 4.2 options.
// Tornado is why torus routing is hard: all traffic circulates the same
// way, so the no-extra-channel minimal relation would deadlock, the
// paper's nonminimal extensions survive by detouring, and the dateline
// scheme survives with its second virtual channel.
func runTornado(o Options, w io.Writer) error {
	topo := topology.NewTorus(8, 2)
	pat := traffic.NewTornado(topo)
	tbl := stats.NewTable("algorithm", "throughput (flits/us)", "latency (us)", "avg hops", "sustainable")
	cfgs := []struct {
		name string
		cfg  sim.Config
	}{
		{"wrap-first-hop(negative-first)", sim.Config{Algorithm: routing.NewWrapFirstHop(routing.NewNegativeFirst(topo))}},
		{"negative-first-torus", sim.Config{Algorithm: routing.NewNegativeFirstTorus(topo)}},
		{"dateline-dor (2 VCs)", sim.Config{VCAlgorithm: routing.NewDatelineDOR(topo)}},
	}
	for _, c := range cfgs {
		cfg := c.cfg
		cfg.Pattern = pat
		cfg.OfferedLoad = 1.0
		cfg.WarmupCycles = o.warmup()
		cfg.MeasureCycles = o.measure()
		cfg.Seed = o.Seed
		res, err := sim.Run(cfg)
		if err != nil {
			return err
		}
		sus := "yes"
		if !res.Sustainable {
			sus = "no"
		}
		if res.Deadlocked {
			sus = "DEADLOCK"
		}
		tbl.AddRow(c.name, res.Throughput, res.AvgLatency, res.AvgHops, sus)
	}
	fmt.Fprintf(w, "8-ary 2-cube, tornado traffic (per-ring offset 3, minimal distance 6), offered 1.0 flits/us/node:\n%s", tbl)
	fmt.Fprintf(w, "\n(torus-dor is omitted: its dependency graph is cyclic and the run would deadlock;\nsee the 'torus' experiment for the verifier's witness)\n")
	return nil
}
