package exp

import (
	"io"
	"reflect"
	"testing"
	"time"
)

// nonZeroValue fills v with a non-zero value of its type, so the cache
// key test can perturb every Options field generically. It fails the
// test on kinds it has never seen: a new field of a new kind must be
// added here (and either keyed or listed neutral).
func nonZeroValue(t *testing.T, v reflect.Value, name string) {
	t.Helper()
	switch v.Kind() {
	case reflect.Bool:
		v.SetBool(true)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(7)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(7)
	case reflect.Float32, reflect.Float64:
		v.SetFloat(7.5)
	case reflect.String:
		v.SetString("nonzero")
	case reflect.Slice:
		s := reflect.MakeSlice(v.Type(), 1, 1)
		nonZeroValue(t, s.Index(0), name)
		v.Set(s)
	case reflect.Func:
		v.Set(reflect.MakeFunc(v.Type(), func(args []reflect.Value) []reflect.Value {
			out := make([]reflect.Value, v.Type().NumOut())
			for i := range out {
				out[i] = reflect.Zero(v.Type().Out(i))
			}
			return out
		}))
	case reflect.Chan:
		v.Set(reflect.ValueOf(make(chan struct{})).Convert(v.Type()))
	case reflect.Struct:
		if v.Type() == reflect.TypeOf(time.Time{}) {
			v.Set(reflect.ValueOf(time.Unix(1, 0)))
			return
		}
		t.Fatalf("field %s: no non-zero recipe for struct %v — extend nonZeroValue", name, v.Type())
	case reflect.Interface:
		if v.Type() == reflect.TypeOf((*io.Writer)(nil)).Elem() {
			v.Set(reflect.ValueOf(io.Discard))
			return
		}
		t.Fatalf("field %s: no non-zero recipe for interface %v — extend nonZeroValue", name, v.Type())
	default:
		t.Fatalf("field %s: no non-zero recipe for kind %v — extend nonZeroValue", name, v.Kind())
	}
}

// TestCacheKeyCoversOptions guards the sweep cache against silent
// aliasing: every Options field must either be listed in
// cacheNeutralOptionFields (documented result-neutral) or perturb the
// cache key when set. A new result-affecting field that someone forgot
// to think about fails the non-neutral leg; a renamed or removed field
// fails the staleness leg.
func TestCacheKeyCoversOptions(t *testing.T) {
	typ := reflect.TypeOf(Options{})
	fieldNames := map[string]bool{}
	for i := 0; i < typ.NumField(); i++ {
		fieldNames[typ.Field(i).Name] = true
	}
	for name := range cacheNeutralOptionFields {
		if !fieldNames[name] {
			t.Errorf("cacheNeutralOptionFields lists %q, which is not an Options field", name)
		}
	}

	f := Figures[0]
	base := cacheKey(f, Options{})
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		var o Options
		nonZeroValue(t, reflect.ValueOf(&o).Elem().Field(i), name)
		got := cacheKey(f, o)
		if _, neutral := cacheNeutralOptionFields[name]; neutral {
			if got != base {
				t.Errorf("neutral field %s changed the cache key; drop it from cacheNeutralOptionFields or fix cacheKey", name)
			}
			continue
		}
		if got == base {
			t.Errorf("setting Options.%s did not change the cache key: key the field in cacheKey or document it in cacheNeutralOptionFields", name)
		}
	}
}

// TestCacheKeyDistinguishesFigures: the figure identity itself must be
// part of the key.
func TestCacheKeyDistinguishesFigures(t *testing.T) {
	if cacheKey(Figures[0], Options{}) == cacheKey(Figures[1], Options{}) {
		t.Fatal("two different figures share a cache key")
	}
}
