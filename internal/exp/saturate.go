package exp

import (
	"turnmodel/internal/routing"
	"turnmodel/internal/sim"
	"turnmodel/internal/traffic"
)

// Saturation is the result of a bisection search for the sustainability
// boundary — a sharper estimate of the paper's "maximum sustainable
// throughput" than reading it off a load grid.
type Saturation struct {
	// Load is the highest offered load (flits/us/node) found
	// sustainable.
	Load float64
	// Throughput is the measured network throughput at that load.
	Throughput float64
	// Result is the full measurement at the sustainable edge.
	Result sim.Result
}

// FindSaturation bisects the offered load between lo and hi (flits/us/
// node) for the largest sustainable point, running iters rounds. lo must
// be sustainable and is re-measured if the first probe refutes hi being
// the only unsustainable bound; if even lo is unsustainable the zero
// Saturation is returned.
func FindSaturation(alg routing.Algorithm, pat traffic.Pattern, lo, hi float64, iters int, o Options) (Saturation, error) {
	run := func(load float64) (sim.Result, error) {
		return sim.Run(sim.Config{
			Algorithm:     alg,
			Pattern:       pat,
			OfferedLoad:   load,
			WarmupCycles:  o.warmup(),
			MeasureCycles: o.measure(),
			Seed:          o.Seed + int64(load*10000),
			Shards:        o.Shards,
		})
	}
	best := Saturation{}
	r, err := run(lo)
	if err != nil {
		return best, err
	}
	if r.Sustainable {
		best = Saturation{Load: lo, Throughput: r.Throughput, Result: r}
	} else {
		return best, nil // even the floor saturates; report zero
	}
	for i := 0; i < iters && hi-lo > 1e-3; i++ {
		mid := (lo + hi) / 2
		r, err := run(mid)
		if err != nil {
			return best, err
		}
		if r.Sustainable {
			lo = mid
			if r.Throughput > best.Throughput {
				best = Saturation{Load: mid, Throughput: r.Throughput, Result: r}
			}
		} else {
			hi = mid
		}
	}
	return best, nil
}
