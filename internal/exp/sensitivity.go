package exp

import (
	"fmt"
	"io"

	"turnmodel/internal/routing"
	"turnmodel/internal/sim"
	"turnmodel/internal/stats"
	"turnmodel/internal/topology"
	"turnmodel/internal/traffic"
)

func init() {
	register(Experiment{
		ID:    "sens14",
		Title: "Sensitivity: the Figure 14 adaptive advantage under different output selection policies",
		Run:   runSens14,
	})
}

// runSens14 probes the one magnitude deviation recorded in
// EXPERIMENTS.md: our measured mesh-transpose best-PA/xy ratio is about
// 1.6x against the paper's "twice". The likeliest unspecified knob is
// router behaviour around output selection, so this experiment bisects
// the exact sustainable edge of xy and negative-first under each output
// selection policy. xy has a single candidate everywhere, so its edge is
// policy-invariant; negative-first's edge moves with how eagerly the
// policy exploits its choices.
func runSens14(o Options, w io.Writer) error {
	// Shared instances: the bisection runs 7 probes per (policy,
	// relation) pair, and nothing here touches the fault set, so every
	// probe — across all three policies — shares one topology and one
	// compiled table per relation.
	topo := SharedTopology(func() *topology.Topology { return topology.NewMesh(16, 16) })
	xyAlg := SharedAlgorithm(topo, func(t *topology.Topology) routing.Algorithm { return routing.NewDimensionOrder(t) })
	nfAlg := SharedAlgorithm(topo, func(t *topology.Topology) routing.Algorithm { return routing.NewNegativeFirst(t) })
	pat := traffic.NewMeshTranspose(topo)
	pols := []sim.OutputPolicy{sim.LowestDimension, sim.HighestDimension, sim.RandomPolicy}
	tbl := stats.NewTable("output policy", "xy edge (flits/us)", "negative-first edge (flits/us)", "ratio")
	for _, pol := range pols {
		edge := func(alg routing.Algorithm) (float64, error) {
			// A policy-aware bisection (FindSaturation hard-codes the
			// default policy, so inline the probe here).
			lo, hi := 0.25, 4.0
			var best float64
			for i := 0; i < 7; i++ {
				mid := (lo + hi) / 2
				r, err := sim.Run(sim.Config{
					Algorithm: alg, Pattern: pat, OfferedLoad: mid,
					WarmupCycles: o.warmup(), MeasureCycles: o.measure(),
					Seed: o.Seed + int64(mid*10000), Policy: pol,
				})
				if err != nil {
					return 0, err
				}
				if r.Sustainable {
					lo = mid
					if r.Throughput > best {
						best = r.Throughput
					}
				} else {
					hi = mid
				}
			}
			return best, nil
		}
		xy, err := edge(xyAlg)
		if err != nil {
			return err
		}
		nf, err := edge(nfAlg)
		if err != nil {
			return err
		}
		tbl.AddRow(pol.String(), xy, nf, fmt.Sprintf("%.2fx", nf/xy))
	}
	fmt.Fprintf(w, "16x16 mesh, matrix transpose, bisected sustainable edges:\n%s", tbl)
	fmt.Fprintf(w, "\npaper reference: the partially adaptive maximum sustainable throughput is\n\"twice that of the nonadaptive algorithms\" (Section 6)\n")
	return nil
}
