package exp

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden experiment outputs")

// goldenIDs lists the experiments whose output is fully deterministic
// (model-level computations and fixed scripted scenarios), pinned
// against accidental regressions.
var goldenIDs = []string{
	"fig1", "fig2", "fig3", "fig4", "fig5", "fig9", "fig10",
	"thm1", "thm2", "thm3", "thm5",
	"turnpairs", "pcube10", "pathlen", "intro", "hex",
}

// TestGoldenOutputs compares each deterministic experiment's output to
// its checked-in golden file. Run with -update-golden after an
// intentional change.
func TestGoldenOutputs(t *testing.T) {
	for _, id := range goldenIDs {
		id := id
		t.Run(id, func(t *testing.T) {
			e, ok := ByID(id)
			if !ok {
				t.Fatalf("unknown experiment %s", id)
			}
			var buf bytes.Buffer
			if err := e.Run(Options{Seed: 1}, &buf); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "golden", id+".txt")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run go test ./internal/exp -run TestGolden -update-golden): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("output differs from %s;\n---- got ----\n%s\n---- want ----\n%s", path, buf.Bytes(), want)
			}
		})
	}
}
