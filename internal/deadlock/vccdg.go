package deadlock

import (
	"fmt"

	"turnmodel/internal/routing"
	"turnmodel/internal/topology"
)

// Virtual-channel dependency analysis: Step 1 of the turn model treats
// the v channels of a physical direction as v distinct virtual
// directions, and deadlock freedom is then a property of the VIRTUAL
// channel dependency graph — one vertex per (physical channel, virtual
// channel) pair. This is how the Dally-Seitz dateline scheme proves
// minimal torus routing deadlock free even though the physical channels
// of each ring form a cycle.

// VChannel names one virtual channel.
type VChannel struct {
	Ch topology.Channel
	VC int
}

func (v VChannel) String() string { return fmt.Sprintf("%v/vc%d", v.Ch, v.VC) }

// VCGraph is a dependency graph over virtual channels.
type VCGraph struct {
	topo    *topology.Topology
	vcs     int
	adj     [][]int32
	present []bool
	edges   int
}

// NumEdges returns the number of dependency edges.
func (g *VCGraph) NumEdges() int { return g.edges }

func (g *VCGraph) id(c topology.Channel, vc int) int {
	return g.topo.ChannelID(c)*g.vcs + vc
}

func (g *VCGraph) vchannel(id int) VChannel {
	return VChannel{Ch: g.topo.ChannelFromID(id / g.vcs), VC: id % g.vcs}
}

// BuildVCCDG constructs the virtual channel dependency graph of a
// VC-aware routing relation, by the same feasible-state propagation as
// BuildCDG.
func BuildVCCDG(alg routing.VCAlgorithm) *VCGraph {
	t := alg.Topology()
	v := alg.NumVCs()
	n := t.NumChannelIDs() * v
	g := &VCGraph{topo: t, vcs: v, adj: make([][]int32, n), present: make([]bool, n)}
	t.Channels(func(c topology.Channel) {
		for vc := 0; vc < v; vc++ {
			g.present[g.id(c, vc)] = true
		}
	})
	addEdge := func(c1, c2 int) {
		for _, e := range g.adj[c1] {
			if int(e) == c2 {
				return
			}
		}
		g.adj[c1] = append(g.adj[c1], int32(c2))
		g.edges++
	}
	reachable := make([]bool, n)
	queue := make([]int, 0, n)
	var buf []routing.VirtualDirection
	for dst := topology.NodeID(0); dst < topology.NodeID(t.Nodes()); dst++ {
		for i := range reachable {
			reachable[i] = false
		}
		queue = queue[:0]
		for src := topology.NodeID(0); src < topology.NodeID(t.Nodes()); src++ {
			if src == dst {
				continue
			}
			buf = alg.CandidatesVC(src, dst, routing.VCInjected, buf[:0])
			for _, vd := range buf {
				ch := topology.Channel{From: src, Dir: vd.Dir}
				if !t.Enabled(ch) {
					continue
				}
				id := g.id(ch, vd.VC)
				if !reachable[id] {
					reachable[id] = true
					queue = append(queue, id)
				}
			}
		}
		for len(queue) > 0 {
			id := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			vch := g.vchannel(id)
			node := t.ChannelTo(vch.Ch)
			if node == dst {
				continue
			}
			in := routing.VCInPort{Dir: vch.Ch.Dir, VC: vch.VC}
			buf = alg.CandidatesVC(node, dst, in, buf[:0])
			for _, vd := range buf {
				ch := topology.Channel{From: node, Dir: vd.Dir}
				if !t.Enabled(ch) {
					continue
				}
				id2 := g.id(ch, vd.VC)
				addEdge(id, id2)
				if !reachable[id2] {
					reachable[id2] = true
					queue = append(queue, id2)
				}
			}
		}
	}
	return g
}

// FindCycle returns a dependency cycle over virtual channels, or nil.
func (g *VCGraph) FindCycle() []VChannel {
	ids := findCycleIDs(g.adj, g.present)
	if ids == nil {
		return nil
	}
	out := make([]VChannel, len(ids))
	for i, id := range ids {
		out[i] = g.vchannel(id)
	}
	return out
}

// Acyclic reports whether the graph has no cycles.
func (g *VCGraph) Acyclic() bool { return g.FindCycle() == nil }

// VCResult summarizes a virtual-channel deadlock check.
type VCResult struct {
	DeadlockFree    bool
	Cycle           []VChannel
	VirtualChannels int
	Edges           int
}

func (r VCResult) String() string {
	if r.DeadlockFree {
		return fmt.Sprintf("deadlock free (%d virtual channels, %d dependency edges, acyclic)", r.VirtualChannels, r.Edges)
	}
	return fmt.Sprintf("NOT deadlock free: virtual-channel dependency cycle of length %d: %v", len(r.Cycle), r.Cycle)
}

// CheckVC builds the virtual channel dependency graph of alg and
// reports whether it is acyclic.
func CheckVC(alg routing.VCAlgorithm) VCResult {
	g := BuildVCCDG(alg)
	cyc := g.FindCycle()
	return VCResult{
		DeadlockFree:    cyc == nil,
		Cycle:           cyc,
		VirtualChannels: alg.Topology().NumChannels() * alg.NumVCs(),
		Edges:           g.NumEdges(),
	}
}

// findCycleIDs is the iterative white/gray/black DFS shared by Graph and
// VCGraph; it returns vertex IDs along a cycle in waiting order, or nil.
func findCycleIDs(adj [][]int32, present []bool) []int {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	n := len(adj)
	color := make([]int8, n)
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = -1
	}
	type frame struct {
		node int
		edge int
	}
	var stack []frame
	for start := 0; start < n; start++ {
		if color[start] != white || !present[start] {
			continue
		}
		color[start] = gray
		stack = append(stack[:0], frame{node: start})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.edge < len(adj[f.node]) {
				next := int(adj[f.node][f.edge])
				f.edge++
				switch color[next] {
				case white:
					color[next] = gray
					parent[next] = int32(f.node)
					stack = append(stack, frame{node: next})
				case gray:
					var cyc []int
					for v := f.node; ; v = int(parent[v]) {
						cyc = append(cyc, v)
						if v == next {
							break
						}
					}
					for i, j := 0, len(cyc)-1; i < j; i, j = i+1, j-1 {
						cyc[i], cyc[j] = cyc[j], cyc[i]
					}
					return cyc
				}
			} else {
				color[f.node] = black
				stack = stack[:len(stack)-1]
			}
		}
	}
	return nil
}
