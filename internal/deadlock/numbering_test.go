package deadlock

import (
	"testing"

	"turnmodel/internal/routing"
	"turnmodel/internal/topology"
)

// TestWestFirstNumberingDecreases mechanizes the proof of Theorem 2: the
// explicit channel numbering strictly decreases along every dependency
// of the west-first relation, on square and non-square meshes.
func TestWestFirstNumberingDecreases(t *testing.T) {
	for _, dims := range [][2]int{{2, 2}, {4, 4}, {16, 16}, {3, 9}, {9, 3}} {
		topo := topology.NewMesh(dims[0], dims[1])
		g := BuildCDG(routing.NewWestFirst(topo))
		if v := VerifyMonotone(g, WestFirstNumbering(topo), Decreasing); len(v) > 0 {
			SortViolations(v)
			t.Errorf("%v: %d violations, first: %v", topo, len(v), v[0])
		}
	}
}

// TestNorthLastNumberingIncreases mechanizes Theorem 3: "rotate Figures
// 6 and 7 counterclockwise 90 degrees, and reverse the directions of the
// channels" — the transformed west-first numbering strictly increases
// along every north-last dependency.
func TestNorthLastNumberingIncreases(t *testing.T) {
	for _, dims := range [][2]int{{2, 2}, {4, 4}, {16, 16}, {3, 9}, {9, 3}} {
		topo := topology.NewMesh(dims[0], dims[1])
		g := BuildCDG(routing.NewNorthLast(topo))
		if v := VerifyMonotone(g, NorthLastNumbering(topo), Increasing); len(v) > 0 {
			SortViolations(v)
			t.Errorf("%v: %d violations, first: %v", topo, len(v), v[0])
		}
	}
}

// TestNegativeFirstNumberingIncreases mechanizes the proof of Theorem 5:
// positive channels numbered K-n+X and negative channels K-n-X strictly
// increase along every negative-first dependency, in any dimension.
func TestNegativeFirstNumberingIncreases(t *testing.T) {
	tops := []*topology.Topology{
		topology.NewMesh(4, 4),
		topology.NewMesh(16, 16),
		topology.NewMesh(3, 4, 5),
		topology.NewMesh(2, 3, 2, 3),
		topology.NewHypercube(7),
	}
	for _, topo := range tops {
		g := BuildCDG(routing.NewNegativeFirst(topo))
		if v := VerifyMonotone(g, NegativeFirstNumbering(topo), Increasing); len(v) > 0 {
			SortViolations(v)
			t.Errorf("%v: %d violations, first: %v", topo, len(v), v[0])
		}
	}
}

// TestNumberingFromCDG: a topological numbering derived from any acyclic
// CDG certifies deadlock freedom (the Section 2 argument that breaking
// all cycles admits a strictly decreasing numbering).
func TestNumberingFromCDG(t *testing.T) {
	topo := topology.NewMesh(6, 6)
	for _, alg := range []routing.Algorithm{
		routing.NewDimensionOrder(topo),
		routing.NewWestFirst(topo),
		routing.NewNorthLast(topo),
		routing.NewNegativeFirst(topo),
	} {
		g := BuildCDG(alg)
		num := NumberingFromCDG(g)
		if v := VerifyMonotone(g, num, Decreasing); len(v) > 0 {
			t.Errorf("%s: topological numbering violated %d times", alg.Name(), len(v))
		}
	}
}

// TestNumberingFromCDGPanicsOnCycle: a cyclic graph has no numbering.
func TestNumberingFromCDGPanicsOnCycle(t *testing.T) {
	g := BuildCDG(routing.NewFullyAdaptive(topology.NewMesh(3, 3)))
	defer func() {
		if recover() == nil {
			t.Error("expected panic for cyclic graph")
		}
	}()
	NumberingFromCDG(g)
}

// TestVerifyMonotoneDetectsViolations: a constant numbering violates
// every edge under either order.
func TestVerifyMonotoneDetectsViolations(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	g := BuildCDG(routing.NewDimensionOrder(topo))
	constant := func(topology.Channel) int { return 7 }
	if v := VerifyMonotone(g, constant, Decreasing); len(v) != g.NumEdges() {
		t.Errorf("constant numbering: %d violations, want %d", len(v), g.NumEdges())
	}
	if v := VerifyMonotone(g, constant, Increasing); len(v) != g.NumEdges() {
		t.Errorf("constant numbering increasing: %d violations, want %d", len(v), g.NumEdges())
	}
}

// TestNumberingPanics on wrong topologies.
func TestNumberingPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"wf 3D":    func() { WestFirstNumbering(topology.NewMesh(3, 3, 3)) },
		"wf torus": func() { WestFirstNumbering(topology.NewTorus(4, 2)) },
		"nl 3D":    func() { NorthLastNumbering(topology.NewMesh(3, 3, 3)) },
		"nf torus": func() { NegativeFirstNumbering(topology.NewTorus(4, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
