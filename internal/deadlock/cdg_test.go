package deadlock

import (
	"testing"

	"turnmodel/internal/core"
	"turnmodel/internal/routing"
	"turnmodel/internal/topology"
)

// TestTheoremAlgorithmsDeadlockFree: every turn-model algorithm of the
// paper has an acyclic channel dependency graph (Theorems 2-5 and the
// Section 4 claims), on meshes, non-square meshes, higher-dimensional
// meshes, hypercubes and tori.
func TestTheoremAlgorithmsDeadlockFree(t *testing.T) {
	mesh2 := topology.NewMesh(6, 6)
	mesh2r := topology.NewMesh(4, 7)
	mesh3 := topology.NewMesh(3, 4, 5)
	cube := topology.NewHypercube(6)
	torus := topology.NewTorus(5, 2)

	algs := []routing.Algorithm{
		routing.NewDimensionOrder(mesh2),
		routing.NewWestFirst(mesh2),
		routing.NewNorthLast(mesh2),
		routing.NewNegativeFirst(mesh2),
		routing.NewWestFirst(mesh2r),
		routing.NewNorthLast(mesh2r),
		routing.NewDimensionOrder(mesh3),
		routing.NewNegativeFirst(mesh3),
		routing.NewABONF(mesh3, 2),
		routing.NewABONF(mesh3, 0),
		routing.NewABOPL(mesh3, 0),
		routing.NewABOPL(mesh3, 1),
		routing.NewDimensionOrder(cube),
		routing.NewNegativeFirst(cube),
		routing.NewPCube(cube),
		routing.NewABONF(cube, 5),
		routing.NewABOPL(cube, 0),
		routing.NewNegativeFirstTorus(torus),
		routing.NewWrapFirstHop(routing.NewNegativeFirst(torus)),
		routing.NewWrapFirstHop(routing.NewABONF(torus, 1)),
	}
	for _, alg := range algs {
		res := Check(alg)
		if !res.DeadlockFree {
			t.Errorf("%s on %v: %v", alg.Name(), alg.Topology(), res)
		}
	}
}

// TestFullyAdaptiveDeadlocks: without extra channels the fully adaptive
// relation has a cyclic dependency graph on any mesh with a 2x2
// sub-plane — the reason the turn model exists.
func TestFullyAdaptiveDeadlocks(t *testing.T) {
	for _, topo := range []*topology.Topology{
		topology.NewMesh(2, 2),
		topology.NewMesh(6, 6),
		topology.NewHypercube(4),
		topology.NewMesh(3, 3, 3),
	} {
		res := Check(routing.NewFullyAdaptive(topo))
		if res.DeadlockFree {
			t.Errorf("fully adaptive on %v should not be deadlock free", topo)
		}
		if len(res.Cycle) < 4 {
			t.Errorf("witness cycle too short: %v", res.Cycle)
		}
	}
}

// TestWitnessCycleIsValid: a reported cycle must consist of channels
// where each channel's head node is the next channel's source, closing
// on itself, with each edge present in the graph.
func TestWitnessCycleIsValid(t *testing.T) {
	topo := topology.NewMesh(5, 5)
	g := BuildCDG(routing.NewFullyAdaptive(topo))
	cyc := g.FindCycle()
	if cyc == nil {
		t.Fatal("expected a cycle")
	}
	for i, c := range cyc {
		next := cyc[(i+1)%len(cyc)]
		if topo.ChannelTo(c) != next.From {
			t.Fatalf("cycle not connected at %d: %v -> %v", i, c, next)
		}
		found := false
		g.Edges(func(from, to topology.Channel) {
			if from == c && to == next {
				found = true
			}
		})
		if !found {
			t.Fatalf("cycle edge %v -> %v not in graph", c, next)
		}
	}
}

// TestTwelveOfSixteenTurnPairs reproduces the Section 3 claim: of the 16
// ways to prohibit one turn from each abstract cycle, exactly 12 prevent
// deadlock, and the four that fail are the reverse pairs illustrated by
// Figure 4.
func TestTwelveOfSixteenTurnPairs(t *testing.T) {
	topo := topology.NewMesh(6, 6)
	free := 0
	for _, set := range core.OneTurnPerCyclePairs2D() {
		res := CheckTurnSet(topo, set)
		p := set.Prohibited()
		isReverse := p[0].From == p[1].To && p[0].To == p[1].From
		if res.DeadlockFree {
			free++
		}
		if res.DeadlockFree == isReverse {
			t.Errorf("%v: deadlockFree=%v but isReverse=%v", set, res.DeadlockFree, isReverse)
		}
	}
	if free != 12 {
		t.Errorf("%d of 16 deadlock free, want 12", free)
	}
}

// TestFigure4SetDeadlocks: the Figure 4 set breaks both abstract cycles
// yet its turn relation is cyclic.
func TestFigure4SixTurnDeadlock(t *testing.T) {
	set := core.Figure4Set()
	if ok, _ := set.BreaksAllAbstractCycles(); !ok {
		t.Fatal("Figure 4 set must prohibit one turn per abstract cycle")
	}
	res := CheckTurnSet(topology.NewMesh(4, 4), set)
	if res.DeadlockFree {
		t.Fatal("Figure 4 set must allow deadlock")
	}
}

// TestNamedTurnSetsAcyclic: the turn relations (destination-free) of the
// named algorithms are acyclic, a stronger statement than the routed
// CDG check.
func TestNamedTurnSetsAcyclic(t *testing.T) {
	topo := topology.NewMesh(5, 5)
	for _, set := range []*core.Set{
		core.WestFirstSet(),
		core.NorthLastSet(),
		core.NegativeFirstSet(2),
		core.DimensionOrderSet(2),
	} {
		if res := CheckTurnSet(topo, set); !res.DeadlockFree {
			t.Errorf("%v: %v", set, res)
		}
	}
	mesh3 := topology.NewMesh(3, 3, 3)
	for _, set := range []*core.Set{
		core.NegativeFirstSet(3),
		core.AllButOneNegativeFirstSet(3, 2),
		core.AllButOnePositiveLastSet(3, 0),
		core.DimensionOrderSet(3),
	} {
		if res := CheckTurnSet(mesh3, set); !res.DeadlockFree {
			t.Errorf("%v on 3D: %v", set, res)
		}
	}
	if res := CheckTurnSet(topo, core.FullyAdaptiveSet(2)); res.DeadlockFree {
		t.Error("the all-turns-allowed relation must be cyclic")
	}
}

// TestCDGEdgesAreFeasible: every dependency edge of a routed CDG joins
// channels that share an intermediate node.
func TestCDGEdgesAreFeasible(t *testing.T) {
	topo := topology.NewMesh(5, 5)
	g := BuildCDG(routing.NewWestFirst(topo))
	g.Edges(func(from, to topology.Channel) {
		if topo.ChannelTo(from) != to.From {
			t.Fatalf("edge %v -> %v does not share a node", from, to)
		}
	})
	if g.NumEdges() == 0 {
		t.Fatal("west-first CDG has no edges")
	}
}

// TestCDGRespectsFaults: dependencies never involve disabled channels.
func TestCDGRespectsFaults(t *testing.T) {
	topo := topology.NewMesh(5, 5)
	bad := topology.Channel{From: topo.ID(topology.Coord{2, 2}), Dir: topology.Direction{Dim: 0, Pos: true}}
	topo.DisableChannel(bad)
	defer topo.EnableChannel(bad)
	alg := routing.NewTurnGraphRouting(topo, core.WestFirstSet(), true)
	g := BuildCDG(alg)
	g.Edges(func(from, to topology.Channel) {
		if from == bad || to == bad {
			t.Fatalf("dependency involves disabled channel: %v -> %v", from, to)
		}
	})
}

// TestXYHasNoYToXDependencies: the xy CDG must contain no edge from a y
// channel to an x channel (Figure 3's prohibition, visible in the
// dependency graph).
func TestXYHasNoYToXDependencies(t *testing.T) {
	topo := topology.NewMesh(6, 6)
	g := BuildCDG(routing.NewDimensionOrder(topo))
	g.Edges(func(from, to topology.Channel) {
		if from.Dir.Dim == 1 && to.Dir.Dim == 0 {
			t.Fatalf("xy dependency from y to x: %v -> %v", from, to)
		}
	})
}
