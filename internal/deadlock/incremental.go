package deadlock

// Incremental maintenance of the turn-induced channel dependency graph.
//
// BuildTurnCDG reconstructs the whole graph for every set it is asked
// about; screening the full 2D design space that way rebuilds 256
// nearly identical graphs, each rebuild paying allocation and a
// per-edge map lookup into the turn set. The structure below exploits
// what actually varies between sets: the turn CDG's edge set is the
// union of fixed per-direction-pair edge families (one family per
// (arrival, departure) pair, enumerable once from the topology), and a
// turn set merely selects which families are present. Walking the
// design space in Gray-code order (core.GrayKey2D) makes consecutive
// sets differ by a single family, so each screening step is one add-
// or remove-family delta against maintained state instead of a
// rebuild.
//
// What is maintained incrementally: the family edge lists and the
// static per-vertex adjacency (built once), the active-family bits,
// the per-vertex in-degree profile of the active subgraph (adjusted
// edge by edge as families toggle), and the active edge count. The
// acyclicity verdict is certified lazily: the first Acyclic() after a
// delta runs one allocation-free Kahn peel over the maintained
// structure — O(channels + edge slots) with preallocated scratch —
// and the verdict is then cached until the next delta.
//
// A Pearce-Kelly dynamic topological order ("A Dynamic Topological
// Sort Algorithm for Directed Acyclic Graphs", JEA 2006) was the
// natural first cut and is strictly better when deltas are single
// edges. Here it loses: one turn family is an eighth of the graph's
// edge slots, so a family toggle triggers hundreds of edge
// insertions whose affected-region discoveries and reorders each
// touch large fractions of the order — profiled at 3x slower than
// rebuild-per-set, with region sorting dominating. The linear
// re-certification costs one predictable pass regardless of how
// scrambled the delta left the order, and the maintained in-degrees
// and adjacency are exactly the parts a rebuild pays for over and
// over. The formal-verification treatment of deadlock detection under
// change (arXiv 1110.4677) takes the same view: re-verify against
// maintained state, not a reconstructed world.

import (
	"fmt"

	"turnmodel/internal/core"
	"turnmodel/internal/topology"
)

// iedge is one dependency edge in dense channel-ID space.
type iedge struct{ from, to int32 }

// famTo is one out-edge slot in the static adjacency: the target
// channel and the family the slot belongs to.
type famTo struct {
	to  int32
	fam int16
}

// IncrementalTurn maintains the destination-free turn CDG of a
// topology (the graph BuildTurnCDG constructs) under allow/prohibit
// deltas: each delta adjusts maintained in-degrees and edge counts in
// time proportional to the toggled family, and the acyclicity verdict
// is re-certified lazily with one linear peel over the maintained
// structure.
//
// The zero value is not usable; construct with NewIncrementalTurn. The
// checker snapshots the topology's channel/fault structure at
// construction time; fault changes made afterwards are not tracked.
// Not safe for concurrent use.
type IncrementalTurn struct {
	topo *topology.Topology
	w    int // 2 * dims
	nv   int // dense channel ID space size
	// families[fi*w+ti] lists the edges whose source channel travels
	// DirectionFromIndex(fi) and whose target travels
	// DirectionFromIndex(ti). active records which families are in the
	// graph.
	families [][]iedge
	active   []bool
	// out is the static per-vertex adjacency over every family; the
	// active bits filter it during certification.
	out [][]famTo
	// indeg[v] counts active edges into v, maintained per delta.
	indeg []int32
	// edges counts active edges.
	edges int

	// Cached verdict, recomputed on demand after deltas.
	verdict bool
	dirty   bool

	// Scratch for the certification peel, reused across calls.
	scratch []int32
	queue   []int32
}

// NewIncrementalTurn builds the checker over t's enabled channels and
// synchronizes it to set (nil means the fully adaptive default of
// core.NewSet: all 90-degree turns allowed, no reversals).
func NewIncrementalTurn(t *topology.Topology, set *core.Set) *IncrementalTurn {
	if set == nil {
		set = core.NewSet(t.NumDims())
	}
	if set.Dims() != t.NumDims() {
		panic(fmt.Sprintf("deadlock: turn set has %d dims, topology has %d", set.Dims(), t.NumDims()))
	}
	w := 2 * t.NumDims()
	n := t.NumChannelIDs()
	ic := &IncrementalTurn{
		topo:     t,
		w:        w,
		nv:       n,
		families: make([][]iedge, w*w),
		active:   make([]bool, w*w),
		out:      make([][]famTo, n),
		indeg:    make([]int32, n),
		scratch:  make([]int32, n),
		queue:    make([]int32, 0, n),
		dirty:    true,
	}
	t.Channels(func(c1 topology.Channel) {
		if !t.Enabled(c1) {
			return
		}
		v := t.ChannelTo(c1)
		id1 := int32(t.ChannelID(c1))
		for i := 0; i < w; i++ {
			c2 := topology.Channel{From: v, Dir: topology.DirectionFromIndex(i)}
			if !t.Enabled(c2) {
				continue
			}
			p := c1.Dir.Index()*w + i
			id2 := int32(t.ChannelID(c2))
			ic.families[p] = append(ic.families[p], iedge{id1, id2})
			ic.out[id1] = append(ic.out[id1], famTo{to: id2, fam: int16(p)})
		}
	})
	ic.Sync(set)
	return ic
}

// Topology returns the topology the checker was built over.
func (ic *IncrementalTurn) Topology() *topology.Topology { return ic.topo }

// NumEdges returns the number of dependency edges currently in the
// graph, matching BuildTurnCDG's count for the same set.
func (ic *IncrementalTurn) NumEdges() int { return ic.edges }

// SetAllowed applies one delta: turn t becomes allowed or prohibited.
// The delta costs O(edges of the toggled family); redundant updates
// (already in the requested state) are free.
func (ic *IncrementalTurn) SetAllowed(t core.Turn, allowed bool) {
	ic.toggle(t.From.Index()*ic.w+t.To.Index(), allowed)
}

// Sync reconciles the checker with set: every direction pair whose
// allowed-ness differs is toggled. A jump between distant sets costs
// the sum of its family deltas plus one re-certification, however
// many turns changed.
func (ic *IncrementalTurn) Sync(set *core.Set) {
	if set.Dims() != ic.topo.NumDims() {
		panic(fmt.Sprintf("deadlock: turn set has %d dims, topology has %d", set.Dims(), ic.topo.NumDims()))
	}
	for fi := 0; fi < ic.w; fi++ {
		for ti := 0; ti < ic.w; ti++ {
			p := fi*ic.w + ti
			ic.toggle(p, set.Allowed(core.Turn{From: topology.DirectionFromIndex(fi), To: topology.DirectionFromIndex(ti)}))
		}
	}
}

// toggle sets family p's presence, maintaining in-degrees and the edge
// count.
func (ic *IncrementalTurn) toggle(p int, want bool) {
	if p >= len(ic.active) || ic.active[p] == want {
		return
	}
	ic.active[p] = want
	fam := ic.families[p]
	if want {
		for _, e := range fam {
			ic.indeg[e.to]++
		}
		ic.edges += len(fam)
	} else {
		for _, e := range fam {
			ic.indeg[e.to]--
		}
		ic.edges -= len(fam)
	}
	ic.dirty = true
}

// Acyclic reports whether the current turn CDG has no cycles. After a
// delta the first call re-certifies with one linear peel; subsequent
// calls return the cached verdict.
func (ic *IncrementalTurn) Acyclic() bool {
	if !ic.dirty {
		return ic.verdict
	}
	// Kahn peel over the maintained in-degrees: repeatedly remove
	// vertices with no remaining active in-edges. Everything peels off
	// exactly when the active subgraph is acyclic.
	copy(ic.scratch, ic.indeg)
	q := ic.queue[:0]
	for v := 0; v < ic.nv; v++ {
		if ic.scratch[v] == 0 {
			q = append(q, int32(v))
		}
	}
	peeled := 0
	for len(q) > 0 {
		v := q[len(q)-1]
		q = q[:len(q)-1]
		peeled++
		for _, ft := range ic.out[v] {
			if !ic.active[ft.fam] {
				continue
			}
			ic.scratch[ft.to]--
			if ic.scratch[ft.to] == 0 {
				q = append(q, ft.to)
			}
		}
	}
	ic.queue = q[:0]
	ic.verdict = peeled == ic.nv
	ic.dirty = false
	return ic.verdict
}
