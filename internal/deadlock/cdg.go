// Package deadlock analyzes routing algorithms for deadlock freedom
// using channel dependency graphs, the Dally-Seitz framework the paper's
// proofs (Theorems 2-5) build on.
//
// A channel dependency graph (CDG) has one vertex per network channel
// and an edge c1 -> c2 whenever the routing relation can route some
// packet that holds c1 into c2, so that c1 waits on c2 in wormhole
// routing. The relation is deadlock free if and only if the CDG is
// acyclic, equivalently if the channels can be numbered so every
// transition is strictly monotone. The package provides both checks:
// cycle detection with witness extraction, and verification of explicit
// numbering schemes, including the ones used in the paper's proofs of
// Theorems 2 and 5.
package deadlock

import (
	"fmt"

	"turnmodel/internal/core"
	"turnmodel/internal/routing"
	"turnmodel/internal/topology"
)

// Graph is a channel dependency graph over a topology's dense channel ID
// space.
type Graph struct {
	topo *topology.Topology
	// adj[c1] lists channel IDs c2 with an edge c1 -> c2, deduplicated.
	adj [][]int32
	// present marks channel IDs that exist in the topology.
	present []bool
	edges   int
}

// Topology returns the topology the graph was built over.
func (g *Graph) Topology() *topology.Topology { return g.topo }

// NumEdges returns the number of distinct dependency edges.
func (g *Graph) NumEdges() int { return g.edges }

// Edges calls fn for every dependency edge.
func (g *Graph) Edges(fn func(from, to topology.Channel)) {
	for c1, outs := range g.adj {
		for _, c2 := range outs {
			fn(g.topo.ChannelFromID(c1), g.topo.ChannelFromID(int(c2)))
		}
	}
}

func newGraph(t *topology.Topology) *Graph {
	n := t.NumChannelIDs()
	g := &Graph{topo: t, adj: make([][]int32, n), present: make([]bool, n)}
	t.Channels(func(c topology.Channel) { g.present[t.ChannelID(c)] = true })
	return g
}

// BuildCDG constructs the channel dependency graph of a routing
// algorithm. For every destination it walks the set of channels a packet
// bound for that destination can occupy (starting from injection at any
// source) and records, for each occupied channel entering a node, the
// output channels the relation permits next.
func BuildCDG(alg routing.Algorithm) *Graph {
	t := alg.Topology()
	g := newGraph(t)
	n := t.NumChannelIDs()
	// Edge lists stay short (at most 2n per channel), so linear-scan
	// deduplication is cheap and avoids per-pair bitmaps.
	addEdge := func(c1, c2 int) {
		for _, e := range g.adj[c1] {
			if int(e) == c2 {
				return
			}
		}
		g.adj[c1] = append(g.adj[c1], int32(c2))
		g.edges++
	}

	reachable := make([]bool, n)
	queue := make([]int, 0, n)
	var buf []topology.Direction
	for dst := topology.NodeID(0); dst < topology.NodeID(t.Nodes()); dst++ {
		for i := range reachable {
			reachable[i] = false
		}
		queue = queue[:0]
		// Seed: channels a packet to dst can take from injection at any
		// source node.
		for src := topology.NodeID(0); src < topology.NodeID(t.Nodes()); src++ {
			if src == dst {
				continue
			}
			buf = alg.Candidates(src, dst, routing.Injected, buf[:0])
			for _, d := range buf {
				ch := topology.Channel{From: src, Dir: d}
				if !t.Enabled(ch) {
					continue
				}
				id := t.ChannelID(ch)
				if !reachable[id] {
					reachable[id] = true
					queue = append(queue, id)
				}
			}
		}
		// Propagate: from each reachable channel, the permitted next
		// channels are both dependency edges and newly reachable.
		for len(queue) > 0 {
			id := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			c1 := t.ChannelFromID(id)
			v := t.ChannelTo(c1)
			if v == dst {
				continue
			}
			buf = alg.Candidates(v, dst, routing.Arrived(c1.Dir), buf[:0])
			for _, d := range buf {
				ch := topology.Channel{From: v, Dir: d}
				if !t.Enabled(ch) {
					continue
				}
				id2 := t.ChannelID(ch)
				addEdge(id, id2)
				if !reachable[id2] {
					reachable[id2] = true
					queue = append(queue, id2)
				}
			}
		}
	}
	return g
}

// BuildTurnCDG constructs the channel dependency graph induced by a turn
// set alone, with no routing function: an edge c1 -> c2 exists whenever
// c2 leaves the node c1 enters and the turn from c1's direction to c2's
// is allowed. This captures the full (nonminimal, destination-free)
// relation of the turn model, the notion under which Figure 4's six-turn
// set "allows deadlock" even though its minimal relation is
// disconnected for some pairs.
func BuildTurnCDG(t *topology.Topology, set *core.Set) *Graph {
	if set.Dims() != t.NumDims() {
		panic(fmt.Sprintf("deadlock: turn set has %d dims, topology has %d", set.Dims(), t.NumDims()))
	}
	g := newGraph(t)
	t.Channels(func(c1 topology.Channel) {
		if !t.Enabled(c1) {
			return
		}
		v := t.ChannelTo(c1)
		id1 := t.ChannelID(c1)
		for i := 0; i < 2*t.NumDims(); i++ {
			d := topology.DirectionFromIndex(i)
			if !set.Allowed(core.Turn{From: c1.Dir, To: d}) {
				continue
			}
			c2 := topology.Channel{From: v, Dir: d}
			if !t.Enabled(c2) {
				continue
			}
			g.adj[id1] = append(g.adj[id1], int32(t.ChannelID(c2)))
			g.edges++
		}
	})
	return g
}

// FindCycle returns a cycle in the graph as a sequence of channels
// (each waiting on the next, the last waiting on the first), or nil if
// the graph is acyclic. Acyclicity of the CDG is Dally and Seitz's
// necessary and sufficient condition for deadlock freedom.
func (g *Graph) FindCycle() []topology.Channel {
	ids := findCycleIDs(g.adj, g.present)
	if ids == nil {
		return nil
	}
	out := make([]topology.Channel, len(ids))
	for i, id := range ids {
		out[i] = g.topo.ChannelFromID(id)
	}
	return out
}

// Acyclic reports whether the graph has no cycles.
func (g *Graph) Acyclic() bool { return g.FindCycle() == nil }

// Result summarizes a deadlock-freedom check.
type Result struct {
	// DeadlockFree is true when the channel dependency graph is acyclic.
	DeadlockFree bool
	// Cycle is a witness dependency cycle when DeadlockFree is false.
	Cycle []topology.Channel
	// Channels and Edges describe the analyzed graph.
	Channels, Edges int
}

func (r Result) String() string {
	if r.DeadlockFree {
		return fmt.Sprintf("deadlock free (%d channels, %d dependency edges, acyclic)", r.Channels, r.Edges)
	}
	return fmt.Sprintf("NOT deadlock free: dependency cycle of length %d: %v", len(r.Cycle), r.Cycle)
}

// Check builds the CDG of alg and reports whether it is acyclic.
func Check(alg routing.Algorithm) Result {
	g := BuildCDG(alg)
	cyc := g.FindCycle()
	return Result{
		DeadlockFree: cyc == nil,
		Cycle:        cyc,
		Channels:     alg.Topology().NumChannels(),
		Edges:        g.NumEdges(),
	}
}

// CheckTurnSet builds the destination-free turn CDG of set on t and
// reports whether it is acyclic. The witness cycle, if any, is returned
// in a deterministic rotation — the channel with the lowest dense ID
// first — so logs and golden outputs keyed on the witness are stable
// regardless of the traversal order that discovered it.
func CheckTurnSet(t *topology.Topology, set *core.Set) Result {
	g := BuildTurnCDG(t, set)
	cyc := rotateMinFirst(t, g.FindCycle())
	return Result{
		DeadlockFree: cyc == nil,
		Cycle:        cyc,
		Channels:     t.NumChannels(),
		Edges:        g.NumEdges(),
	}
}

// rotateMinFirst rotates a dependency cycle in place so the channel
// with the smallest dense ID comes first. A cycle has no intrinsic
// starting point; picking the minimum makes the reported witness a
// canonical function of the cycle itself rather than of DFS entry
// order.
func rotateMinFirst(t *topology.Topology, cyc []topology.Channel) []topology.Channel {
	if len(cyc) == 0 {
		return cyc
	}
	min := 0
	for i := 1; i < len(cyc); i++ {
		if t.ChannelID(cyc[i]) < t.ChannelID(cyc[min]) {
			min = i
		}
	}
	if min == 0 {
		return cyc
	}
	rotated := make([]topology.Channel, 0, len(cyc))
	rotated = append(rotated, cyc[min:]...)
	rotated = append(rotated, cyc[:min]...)
	return rotated
}
