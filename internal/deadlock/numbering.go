package deadlock

import (
	"fmt"
	"sort"

	"turnmodel/internal/topology"
)

// Numbering assigns every channel an integer. A routing relation is
// deadlock free if a numbering exists under which every dependency
// (every CDG edge) strictly decreases — or strictly increases — the
// number (Dally and Seitz; the proof technique of Theorems 2, 3 and 5).
type Numbering func(topology.Channel) int

// Order is the monotonicity direction a numbering must satisfy.
type Order int

const (
	// Decreasing requires num(to) < num(from) on every dependency.
	Decreasing Order = iota
	// Increasing requires num(to) > num(from) on every dependency.
	Increasing
)

// Violation describes a dependency edge that breaks monotonicity.
type Violation struct {
	From, To       topology.Channel
	FromNum, ToNum int
}

func (v Violation) Error() string {
	return fmt.Sprintf("deadlock: dependency %v(#%d) -> %v(#%d) violates monotonicity",
		v.From, v.FromNum, v.To, v.ToNum)
}

// VerifyMonotone checks that every dependency edge of g is strictly
// monotone under num, returning all violations (nil means the numbering
// certifies deadlock freedom).
func VerifyMonotone(g *Graph, num Numbering, order Order) []Violation {
	var out []Violation
	g.Edges(func(from, to topology.Channel) {
		a, b := num(from), num(to)
		bad := b >= a
		if order == Increasing {
			bad = b <= a
		}
		if bad {
			out = append(out, Violation{From: from, To: to, FromNum: a, ToNum: b})
		}
	})
	return out
}

// WestFirstNumbering returns the Theorem 2 style numbering for the
// west-first algorithm on an m x n 2D mesh: westward channels receive
// the highest numbers, lower the farther west they are; eastward,
// northward, and southward channels receive still lower numbers, lower
// the farther east they are. Every transition the west-first relation
// permits strictly decreases the number.
//
// The numbering is expressed as a two-digit number (a, b): a encodes the
// west-to-east progression and b the within-column progression, exactly
// in the spirit of Figures 6 and 7 (the paper uses base
// r = max(3m-2, n-1); any base large enough to keep the digits separate
// works, and we use a sufficiently large power of two).
func WestFirstNumbering(t *topology.Topology) Numbering {
	if t.NumDims() != 2 || t.Kind() != topology.KindMesh {
		panic("deadlock: west-first numbering requires a 2D mesh")
	}
	m, n := t.Dims()[0], t.Dims()[1]
	// b digits: 0 for east, 1..n for north/south chains.
	base := 2*n + 2
	return func(c topology.Channel) int {
		x := t.CoordOf(c.From, 0)
		y := t.CoordOf(c.From, 1)
		var a, b int
		switch {
		case c.Dir.Dim == 0 && !c.Dir.Pos: // west
			a, b = m+x, 0
		case c.Dir.Dim == 0: // east
			a, b = m-1-x, 0
		case c.Dir.Pos: // north
			a, b = m-1-x, 1+(n-1-y)
		default: // south
			a, b = m-1-x, 1+y
		}
		return a*base + b
	}
}

// NegativeFirstNumbering returns the Theorem 5 numbering for the
// negative-first algorithm on an n-dimensional mesh: with K the sum of
// the k_i and X the coordinate sum of the channel's source node, each
// positive channel is numbered K - n + X and each negative channel
// K - n - X. The negative-first relation routes every packet along
// strictly increasing numbers.
func NegativeFirstNumbering(t *topology.Topology) Numbering {
	if t.Kind() != topology.KindMesh {
		panic("deadlock: negative-first numbering requires a mesh")
	}
	k := 0
	for _, ki := range t.Dims() {
		k += ki
	}
	n := t.NumDims()
	return func(c topology.Channel) int {
		x := 0
		for dim := 0; dim < n; dim++ {
			x += t.CoordOf(c.From, dim)
		}
		if c.Dir.Pos {
			return k - n + x
		}
		return k - n - x
	}
}

// NorthLastNumbering returns the Theorem 3 numbering for the north-last
// algorithm on a 2D mesh, constructed exactly as the paper's proof
// prescribes: "Rotate Figures 6 and 7 counterclockwise 90 degrees, and
// reverse the directions of the channels. The figures now show that
// north-last routes every packet along channels with strictly INCREASING
// numbers." Each north-last channel is mapped to the west-first channel
// it becomes under that transformation and inherits its west-first
// number; use VerifyMonotone with Order Increasing.
func NorthLastNumbering(t *topology.Topology) Numbering {
	if t.NumDims() != 2 || t.Kind() != topology.KindMesh {
		panic("deadlock: north-last numbering requires a 2D mesh")
	}
	m, n := t.Dims()[0], t.Dims()[1]
	// The west-first mesh is the n x m grid whose counterclockwise
	// rotation is this north-last mesh. Mapping back (the inverse,
	// clockwise rotation): point (x, y) here corresponds to (y, m-1-x)
	// there, and directions map north->east, west->north, south->west,
	// east->south.
	wfMesh := topology.NewMesh(n, m)
	wf := WestFirstNumbering(wfMesh)
	unrotPoint := func(id topology.NodeID) topology.NodeID {
		x, y := t.CoordOf(id, 0), t.CoordOf(id, 1)
		return wfMesh.ID(topology.Coord{y, m - 1 - x})
	}
	unrotDir := func(d topology.Direction) topology.Direction {
		if d.Dim == 1 {
			// north -> east, south -> west
			return topology.Direction{Dim: 0, Pos: d.Pos}
		}
		// east -> south, west -> north
		return topology.Direction{Dim: 1, Pos: !d.Pos}
	}
	return func(c topology.Channel) int {
		// Map the channel onto the west-first mesh, then reverse it: the
		// reversed channel leaves the image of c's destination in the
		// opposite image direction.
		to := t.ChannelTo(c)
		rev := topology.Channel{From: unrotPoint(to), Dir: unrotDir(c.Dir).Opposite()}
		return wf(rev)
	}
}

// NumberingFromCDG returns a numbering derived from a topological sort
// of an acyclic dependency graph: it certifies deadlock freedom for any
// relation whose CDG is acyclic, mechanizing the general claim of
// Section 2 that breaking all cycles admits a strictly decreasing
// numbering. It panics if g is cyclic.
func NumberingFromCDG(g *Graph) Numbering {
	n := len(g.adj)
	order := make([]int, 0, n)
	state := make([]int8, n)
	var visit func(int)
	visit = func(u int) {
		switch state[u] {
		case 1:
			panic("deadlock: NumberingFromCDG called on cyclic graph")
		case 2:
			return
		}
		state[u] = 1
		for _, v := range g.adj[u] {
			visit(int(v))
		}
		state[u] = 2
		order = append(order, u)
	}
	for u := 0; u < n; u++ {
		if g.present[u] && state[u] == 0 {
			visit(u)
		}
	}
	// order is a reverse topological order: dependencies appear before
	// their dependents, so number by position: num(from) > num(to) for
	// every edge (a decreasing numbering along routes).
	num := make([]int, n)
	for i, u := range order {
		num[u] = i
	}
	return func(c topology.Channel) int {
		return num[g.topo.ChannelID(c)]
	}
}

// SortViolations orders violations deterministically for reporting.
func SortViolations(vs []Violation) {
	sort.Slice(vs, func(i, j int) bool {
		a, b := vs[i], vs[j]
		if a.From != b.From {
			return a.From.From*100+topology.NodeID(a.From.Dir.Index()) <
				b.From.From*100+topology.NodeID(b.From.Dir.Index())
		}
		return a.To.From*100+topology.NodeID(a.To.Dir.Index()) <
			b.To.From*100+topology.NodeID(b.To.Dir.Index())
	})
}
