package deadlock

import (
	"math/rand"
	"testing"
	"testing/quick"

	"turnmodel/internal/core"
	"turnmodel/internal/routing"
	"turnmodel/internal/topology"
)

// randomSet builds a 2D turn set with a random subset of turns
// prohibited.
func randomSet(rng *rand.Rand, maxProhibit int) *core.Set {
	s := core.NewSet(2).WithName("random")
	turns := core.AllTurns(2)
	rng.Shuffle(len(turns), func(i, j int) { turns[i], turns[j] = turns[j], turns[i] })
	n := rng.Intn(maxProhibit + 1)
	for _, t := range turns[:n] {
		s.Prohibit(t)
	}
	return s
}

// TestPropertyAcyclicTurnSetsAdmitNumbering: for random turn sets, the
// destination-free relation is acyclic exactly when a topological
// numbering exists — and then the minimal routed relation is also
// acyclic (it is a sub-relation).
func TestPropertyAcyclicTurnSetsAdmitNumbering(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	rng := rand.New(rand.NewSource(99))
	f := func() bool {
		set := randomSet(rng, 5)
		g := BuildTurnCDG(topo, set)
		if g.Acyclic() {
			// Numbering exists and certifies it.
			num := NumberingFromCDG(g)
			if len(VerifyMonotone(g, num, Decreasing)) != 0 {
				return false
			}
			// The minimal routed relation is a sub-relation of the turn
			// relation, so it must be acyclic too.
			alg := routing.NewTurnGraphRouting(topo, set, true)
			return BuildCDG(alg).Acyclic()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestPropertyRoutedCDGSubsetOfTurnCDG: every dependency the routed
// (minimal) relation realizes is permitted by the raw turn relation.
func TestPropertyRoutedCDGSubsetOfTurnCDG(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	rng := rand.New(rand.NewSource(100))
	f := func() bool {
		set := randomSet(rng, 4)
		turnEdges := map[[2]topology.Channel]bool{}
		BuildTurnCDG(topo, set).Edges(func(from, to topology.Channel) {
			turnEdges[[2]topology.Channel{from, to}] = true
		})
		ok := true
		BuildCDG(routing.NewTurnGraphRouting(topo, set, true)).Edges(func(from, to topology.Channel) {
			if !turnEdges[[2]topology.Channel{from, to}] {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestPropertyFaultsOnlyShrinkCDG: disabling channels never adds
// dependencies, so deadlock freedom survives any fault set (the
// monotonicity behind the fault-tolerance story).
func TestPropertyFaultsOnlyShrinkCDG(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	f := func() bool {
		topo := topology.NewMesh(5, 5)
		alg := routing.NewTurnGraphRouting(topo, core.WestFirstSet(), false)
		base := BuildCDG(alg).NumEdges()
		// Disable up to three random existing channels.
		var all []topology.Channel
		topo.Channels(func(c topology.Channel) { all = append(all, c) })
		for i := 0; i < 1+rng.Intn(3); i++ {
			topo.DisableChannel(all[rng.Intn(len(all))])
		}
		g := BuildCDG(alg)
		return g.Acyclic() && g.NumEdges() <= base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyWalksFollowCDG: every transition taken by a random minimal
// walk appears as a dependency edge of the algorithm's CDG.
func TestPropertyWalksFollowCDG(t *testing.T) {
	topo := topology.NewMesh(5, 5)
	alg := routing.NewNegativeFirst(topo)
	edges := map[[2]topology.Channel]bool{}
	BuildCDG(alg).Edges(func(from, to topology.Channel) {
		edges[[2]topology.Channel{from, to}] = true
	})
	rng := rand.New(rand.NewSource(102))
	sel := func(_, _ topology.NodeID, cands []topology.Direction) topology.Direction {
		return cands[rng.Intn(len(cands))]
	}
	f := func(a, b uint8) bool {
		src := topology.NodeID(int(a) % topo.Nodes())
		dst := topology.NodeID(int(b) % topo.Nodes())
		if src == dst {
			return true
		}
		path, err := routing.Walk(alg, src, dst, sel)
		if err != nil {
			return false
		}
		for i := 0; i+2 < len(path); i++ {
			c1 := channelBetween(topo, path[i], path[i+1])
			c2 := channelBetween(topo, path[i+1], path[i+2])
			if !edges[[2]topology.Channel{c1, c2}] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func channelBetween(t *topology.Topology, a, b topology.NodeID) topology.Channel {
	for i := 0; i < 2*t.NumDims(); i++ {
		d := topology.DirectionFromIndex(i)
		if next, ok := t.Neighbor(a, d); ok && next == b {
			return topology.Channel{From: a, Dir: d}
		}
	}
	panic("not neighbors")
}
