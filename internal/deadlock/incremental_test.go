package deadlock

import (
	"math/rand"
	"testing"

	"turnmodel/internal/core"
	"turnmodel/internal/topology"
)

// TestIncrementalGrayWalkAgreesWithRebuild walks the entire 2D design
// space in Gray-code order, toggling one turn family per step, and
// checks at every step that the incremental verdict and edge count
// match a from-scratch BuildTurnCDG of the same set.
func TestIncrementalGrayWalkAgreesWithRebuild(t *testing.T) {
	topo := topology.NewMesh(6, 6)
	ic := NewIncrementalTurn(topo, core.SetFromKey2D(core.GrayKey2D(0)))
	turns := core.AllTurns(2)
	prev := core.GrayKey2D(0)
	for i := 0; i < core.NumSets2D; i++ {
		key := core.GrayKey2D(i)
		if i > 0 {
			diff := key ^ prev
			bit := 0
			for diff>>uint(bit) != 1 {
				bit++
			}
			ic.SetAllowed(turns[bit], key&(1<<uint(bit)) == 0)
		}
		prev = key
		set := core.SetFromKey2D(key)
		want := CheckTurnSet(topo, set)
		if got := ic.Acyclic(); got != want.DeadlockFree {
			t.Fatalf("key %#02x: incremental acyclic=%v, rebuild says %v", key, got, want.DeadlockFree)
		}
		if got := ic.NumEdges(); got != want.Edges {
			t.Fatalf("key %#02x: incremental has %d edges, rebuild has %d", key, got, want.Edges)
		}
	}
}

// TestIncrementalRandomToggles applies a long random sequence of
// single-turn toggles (not restricted to Gray adjacency, so arbitrary
// jumps between cyclic and acyclic states) and cross-checks the verdict
// against a rebuild at every step.
func TestIncrementalRandomToggles(t *testing.T) {
	topo := topology.NewMesh(5, 4)
	rng := rand.New(rand.NewSource(9))
	turns := core.AllTurns(2)
	key := uint16(0)
	ic := NewIncrementalTurn(topo, core.SetFromKey2D(key))
	for step := 0; step < 2000; step++ {
		bit := rng.Intn(8)
		key ^= 1 << uint(bit)
		ic.SetAllowed(turns[bit], key&(1<<uint(bit)) == 0)
		want := CheckTurnSet(topo, core.SetFromKey2D(key))
		if got := ic.Acyclic(); got != want.DeadlockFree {
			t.Fatalf("step %d key %#02x: incremental acyclic=%v, rebuild says %v", step, key, got, want.DeadlockFree)
		}
		if got := ic.NumEdges(); got != want.Edges {
			t.Fatalf("step %d key %#02x: %d edges, rebuild has %d", step, key, got, want.Edges)
		}
	}
}

// TestIncrementalSync jumps directly between distant sets (multi-turn
// deltas in one call) and checks each landing state, including the
// named sets and the fully prohibited extreme.
func TestIncrementalSync(t *testing.T) {
	topo := topology.NewMesh(6, 6)
	ic := NewIncrementalTurn(topo, nil)
	jumps := []*core.Set{
		core.WestFirstSet(),
		core.SetFromKey2D(0xff),
		core.Figure4Set(),
		core.FullyAdaptiveSet(2),
		core.DimensionOrderSet(2),
		core.NegativeFirstSet(2),
		core.SetFromKey2D(0x0f),
		core.NorthLastSet(),
	}
	for _, set := range jumps {
		ic.Sync(set)
		want := CheckTurnSet(topo, set)
		if got := ic.Acyclic(); got != want.DeadlockFree {
			t.Fatalf("%s: incremental acyclic=%v, rebuild says %v", set.Name(), got, want.DeadlockFree)
		}
		if got := ic.NumEdges(); got != want.Edges {
			t.Fatalf("%s: %d edges, rebuild has %d", set.Name(), got, want.Edges)
		}
	}
}

// TestIncrementalRedundantUpdates: re-applying the current state is a
// no-op and keeps counts consistent.
func TestIncrementalRedundantUpdates(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	set := core.WestFirstSet()
	ic := NewIncrementalTurn(topo, set)
	base := ic.NumEdges()
	for _, tn := range core.AllTurns(2) {
		ic.SetAllowed(tn, set.Allowed(tn))
	}
	ic.Sync(set)
	if ic.NumEdges() != base {
		t.Fatalf("redundant updates changed edge count: %d -> %d", base, ic.NumEdges())
	}
	if !ic.Acyclic() {
		t.Fatal("west-first must stay acyclic")
	}
}

// TestCheckTurnSetWitnessRotation: the witness cycle starts at the
// channel with the lowest dense ID, and the result is stable across
// repeated checks despite map-iteration nondeterminism upstream.
func TestCheckTurnSetWitnessRotation(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	set := core.Figure4Set()
	first := CheckTurnSet(topo, set)
	if first.DeadlockFree {
		t.Fatal("figure-4 set must deadlock")
	}
	minID := topo.ChannelID(first.Cycle[0])
	for _, c := range first.Cycle {
		if topo.ChannelID(c) < minID {
			t.Fatalf("witness does not start at its lowest channel ID: %v", first.Cycle)
		}
	}
	for i := 0; i < 5; i++ {
		again := CheckTurnSet(topo, set)
		if len(again.Cycle) != len(first.Cycle) {
			t.Fatalf("witness length changed: %d vs %d", len(again.Cycle), len(first.Cycle))
		}
		for j := range again.Cycle {
			if again.Cycle[j] != first.Cycle[j] {
				t.Fatalf("witness not deterministic at position %d: %v vs %v", j, again.Cycle, first.Cycle)
			}
		}
	}
}
