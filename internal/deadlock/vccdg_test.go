package deadlock

import (
	"testing"

	"turnmodel/internal/routing"
	"turnmodel/internal/topology"
)

// TestTorusDORDeadlocks: minimal dimension-order routing on a k-ary
// n-cube WITHOUT virtual channels has a cyclic channel dependency graph
// — the Section 4.2 impossibility ("for k-ary n-cubes with k > 4, it is
// impossible to construct deadlock-free routing algorithms that are
// minimal without adding extra channels"; the ring cycles appear for
// every k > 4, and already at k = 5 here).
func TestTorusDORDeadlocks(t *testing.T) {
	for _, topo := range []*topology.Topology{topology.NewTorus(5, 1), topology.NewTorus(5, 2), topology.NewTorus(8, 2)} {
		res := Check(routing.NewTorusDOR(topo))
		if res.DeadlockFree {
			t.Errorf("torus DOR on %v should not be deadlock free", topo)
		}
	}
}

// TestDatelineDORDeadlockFree: with two virtual channels and the
// dateline discipline, the VIRTUAL channel dependency graph is acyclic —
// the extra-channel approach of Dally and Seitz the paper contrasts the
// turn model with.
func TestDatelineDORDeadlockFree(t *testing.T) {
	for _, topo := range []*topology.Topology{topology.NewTorus(5, 1), topology.NewTorus(5, 2), topology.NewTorus(8, 2), topology.NewTorus(4, 3)} {
		res := CheckVC(routing.NewDatelineDOR(topo))
		if !res.DeadlockFree {
			t.Errorf("dateline DOR on %v: %v", topo, res)
		}
		if res.Edges == 0 {
			t.Errorf("dateline DOR on %v: empty dependency graph", topo)
		}
	}
}

// TestVCCDGMatchesCDGForSingleVC: for a single-virtual-channel relation
// the virtual CDG is the plain CDG.
func TestVCCDGMatchesCDGForSingleVC(t *testing.T) {
	topo := topology.NewMesh(5, 5)
	alg := routing.NewWestFirst(topo)
	plain := BuildCDG(alg)
	virtual := BuildVCCDG(routing.AsVC(alg))
	if plain.NumEdges() != virtual.NumEdges() {
		t.Errorf("edge counts differ: %d vs %d", plain.NumEdges(), virtual.NumEdges())
	}
	if virtual.Acyclic() != plain.Acyclic() {
		t.Error("acyclicity differs")
	}
	// Fully adaptive stays cyclic through the adapter.
	if CheckVC(routing.AsVC(routing.NewFullyAdaptive(topo))).DeadlockFree {
		t.Error("fully adaptive should be cyclic under the VC view too")
	}
}

// TestVCWitnessCycleValid: a virtual-channel witness cycle is connected
// through the topology.
func TestVCWitnessCycleValid(t *testing.T) {
	topo := topology.NewTorus(6, 1)
	g := BuildVCCDG(routing.AsVC(routing.NewTorusDOR(topo)))
	cyc := g.FindCycle()
	if cyc == nil {
		t.Fatal("expected a cycle in the 6-ring")
	}
	for i, vc := range cyc {
		next := cyc[(i+1)%len(cyc)]
		if topo.ChannelTo(vc.Ch) != next.Ch.From {
			t.Fatalf("cycle not connected at %d: %v -> %v", i, vc, next)
		}
	}
	// In a single ring the minimal DOR cycle is the whole ring's worth
	// of channels in one direction.
	if len(cyc) != 6 {
		t.Errorf("ring dependency cycle length %d, want 6", len(cyc))
	}
}

// TestVCResultString.
func TestVCResultString(t *testing.T) {
	topo := topology.NewTorus(5, 1)
	good := CheckVC(routing.NewDatelineDOR(topo))
	bad := CheckVC(routing.AsVC(routing.NewTorusDOR(topo)))
	if good.String() == "" || bad.String() == "" {
		t.Error("empty result strings")
	}
	if good.String() == bad.String() {
		t.Error("result strings should differ")
	}
}

// TestDoubleYDeadlockFree: the fully adaptive double-y-channel relation
// of [18]'s program — every profitable direction always offered — has an
// acyclic VIRTUAL channel dependency graph, while the same adaptiveness
// without the extra channel (FullyAdaptive) is cyclic. The turn model's
// extra-channel premise, verified.
func TestDoubleYDeadlockFree(t *testing.T) {
	for _, dims := range [][2]int{{4, 4}, {8, 8}, {5, 9}} {
		topo := topology.NewMesh(dims[0], dims[1])
		res := CheckVC(routing.NewDoubleY(topo))
		if !res.DeadlockFree {
			t.Errorf("double-y on %v: %v", topo, res)
		}
		if CheckVC(routing.AsVC(routing.NewFullyAdaptive(topo))).DeadlockFree {
			t.Errorf("fully adaptive without extra channels must stay cyclic on %v", topo)
		}
	}
}
