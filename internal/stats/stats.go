// Package stats provides the small statistical toolkit the simulator
// and experiment harness use: streaming mean/variance accumulators,
// histograms, and series/table formatting helpers.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Accumulator computes streaming count, mean, variance, min and max with
// Welford's algorithm.
type Accumulator struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// N returns the number of observations.
func (a *Accumulator) N() int64 { return a.n }

// Mean returns the sample mean (0 with no observations).
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the unbiased sample variance.
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Min returns the smallest observation, or NaN with no observations —
// distinguishable from a genuine 0 observation, unlike a zero default.
func (a *Accumulator) Min() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.min
}

// Max returns the largest observation, or NaN with no observations.
func (a *Accumulator) Max() float64 {
	if a.n == 0 {
		return math.NaN()
	}
	return a.max
}

// StdErr returns the standard error of the mean.
func (a *Accumulator) StdErr() float64 {
	if a.n == 0 {
		return 0
	}
	return a.StdDev() / math.Sqrt(float64(a.n))
}

// String summarizes the accumulator; an empty one renders as "n=0"
// rather than a row of spurious zeros.
func (a *Accumulator) String() string {
	if a.n == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g", a.n, a.Mean(), a.StdDev(), a.Min(), a.Max())
}

// Histogram counts observations in fixed-width buckets.
type Histogram struct {
	width   float64
	buckets map[int]int64
	acc     Accumulator
}

// NewHistogram returns a histogram with the given bucket width.
func NewHistogram(width float64) *Histogram {
	if width <= 0 {
		panic("stats: histogram width must be positive")
	}
	return &Histogram{width: width, buckets: make(map[int]int64)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.buckets[int(math.Floor(x/h.width))]++
	h.acc.Add(x)
}

// N returns the number of observations.
func (h *Histogram) N() int64 { return h.acc.N() }

// Mean returns the sample mean.
func (h *Histogram) Mean() float64 { return h.acc.Mean() }

// Percentile returns the q-quantile of the recorded observations,
// linearly interpolated within the covering bucket (so a single-bucket
// histogram no longer collapses every quantile to the bucket's upper
// bound). q outside [0, 1] (or NaN) is clamped: q <= 0 returns the
// lower bound of the first occupied bucket, q >= 1 the upper bound of
// the last. An empty histogram returns 0.
func (h *Histogram) Percentile(q float64) float64 {
	n := h.acc.N()
	if n == 0 {
		return 0
	}
	if math.IsNaN(q) || q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	keys := make([]int, 0, len(h.buckets))
	for k := range h.buckets {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	if q == 0 {
		return float64(keys[0]) * h.width
	}
	target := q * float64(n)
	var cum float64
	for _, k := range keys {
		c := float64(h.buckets[k])
		if cum+c >= target {
			// Interpolate within bucket k, which spans
			// [k*width, (k+1)*width).
			return (float64(k) + (target-cum)/c) * h.width
		}
		cum += c
	}
	return float64(keys[len(keys)-1]+1) * h.width
}

// Table renders aligned text tables for experiment output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable returns a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
