package stats

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve of a Plot.
type Series struct {
	Name   string
	Marker byte
	X, Y   []float64
}

// Plot renders an ASCII scatter plot of several series, in the spirit
// of the paper's latency-versus-throughput figures. Width and height
// are the interior plot dimensions in characters.
type Plot struct {
	XLabel, YLabel string
	Width, Height  int
	series         []Series
}

// NewPlot returns a plot with the given axis labels and a default
// 64x20 interior.
func NewPlot(xlabel, ylabel string) *Plot {
	return &Plot{XLabel: xlabel, YLabel: ylabel, Width: 64, Height: 20}
}

// Add appends a series; when marker is 0 one is assigned from 1-9a-z.
func (p *Plot) Add(name string, x, y []float64, marker byte) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("stats: series %q has %d x values but %d y values", name, len(x), len(y)))
	}
	if marker == 0 {
		markers := "1234567890abcdefghij"
		marker = markers[len(p.series)%len(markers)]
	}
	p.series = append(p.series, Series{Name: name, Marker: marker, X: x, Y: y})
}

// heatRamp orders cell characters by intensity; index 0 is zero.
const heatRamp = " .:-=+*#%@"

// Heatmap renders a rows x cols grid of nonnegative intensities as an
// ASCII density map: each cell's value (from cell(r, c)) is normalized
// to the grid maximum and drawn with a ten-step character ramp. Row 0
// prints at the top. A legend line gives the ramp and the maximum.
func Heatmap(rows, cols int, cell func(r, c int) float64) string {
	if rows <= 0 || cols <= 0 {
		return "(empty heatmap)\n"
	}
	max := 0.0
	vals := make([]float64, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := cell(r, c)
			if v < 0 || math.IsNaN(v) {
				v = 0
			}
			vals[r*cols+c] = v
			if v > max {
				max = v
			}
		}
	}
	var b strings.Builder
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			ch := byte(' ')
			if max > 0 {
				idx := int(vals[r*cols+c] / max * float64(len(heatRamp)-1))
				if idx >= len(heatRamp) {
					idx = len(heatRamp) - 1
				}
				ch = heatRamp[idx]
			}
			b.WriteByte(ch)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "scale: %q = 0..%.4g\n", heatRamp, max)
	return b.String()
}

// String renders the plot.
func (p *Plot) String() string {
	if len(p.series) == 0 {
		return "(empty plot)\n"
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range p.series {
		for i := range s.X {
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
			points++
		}
	}
	if points == 0 {
		return "(empty plot)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, p.Height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", p.Width))
	}
	for _, s := range p.series {
		for i := range s.X {
			cx := int(math.Round((s.X[i] - minX) / (maxX - minX) * float64(p.Width-1)))
			cy := int(math.Round((s.Y[i] - minY) / (maxY - minY) * float64(p.Height-1)))
			row := p.Height - 1 - cy
			if grid[row][cx] != ' ' && grid[row][cx] != s.Marker {
				grid[row][cx] = '*' // overlapping series
			} else {
				grid[row][cx] = s.Marker
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", p.YLabel)
	for i, row := range grid {
		label := "        "
		switch i {
		case 0:
			label = fmt.Sprintf("%7.1f ", maxY)
		case p.Height - 1:
			label = fmt.Sprintf("%7.1f ", minY)
		}
		fmt.Fprintf(&b, "%s|%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "        +%s\n", strings.Repeat("-", p.Width))
	fmt.Fprintf(&b, "        %-10.1f%*s\n", minX, p.Width-2, fmt.Sprintf("%.1f", maxX))
	fmt.Fprintf(&b, "        %s\n", p.XLabel)
	for _, s := range p.series {
		fmt.Fprintf(&b, "        %c = %s\n", s.Marker, s.Name)
	}
	return b.String()
}
