package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Errorf("N = %d", a.N())
	}
	if math.Abs(a.Mean()-5) > 1e-12 {
		t.Errorf("mean = %v, want 5", a.Mean())
	}
	// Sample (unbiased) variance of this classic data set is 32/7.
	if math.Abs(a.Variance()-32.0/7) > 1e-12 {
		t.Errorf("variance = %v, want %v", a.Variance(), 32.0/7)
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Errorf("min/max = %v/%v", a.Min(), a.Max())
	}
	if a.StdErr() <= 0 {
		t.Error("stderr should be positive")
	}
	if a.String() == "" {
		t.Error("empty String")
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.Variance() != 0 || a.StdErr() != 0 {
		t.Error("empty accumulator should be all zeros")
	}
}

// TestAccumulatorMatchesNaive: Welford agrees with the two-pass formula.
func TestAccumulatorMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(n uint8) bool {
		size := int(n)%50 + 2
		xs := make([]float64, size)
		var a Accumulator
		for i := range xs {
			xs[i] = rng.NormFloat64()*10 + 5
			a.Add(xs[i])
		}
		var mean float64
		for _, x := range xs {
			mean += x
		}
		mean /= float64(size)
		var v float64
		for _, x := range xs {
			v += (x - mean) * (x - mean)
		}
		v /= float64(size - 1)
		return math.Abs(a.Mean()-mean) < 1e-9 && math.Abs(a.Variance()-v) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(1.0)
	for i := 1; i <= 100; i++ {
		h.Add(float64(i))
	}
	if h.N() != 100 {
		t.Errorf("N = %d", h.N())
	}
	if p := h.Percentile(0.5); math.Abs(p-51) > 1.5 {
		t.Errorf("p50 = %v, want about 51", p)
	}
	if p := h.Percentile(0.99); p < 98 || p > 101 {
		t.Errorf("p99 = %v", p)
	}
	if math.Abs(h.Mean()-50.5) > 1e-9 {
		t.Errorf("mean = %v", h.Mean())
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(2)
	if h.Percentile(0.5) != 0 {
		t.Error("empty histogram percentile should be 0")
	}
}

func TestHistogramBadWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewHistogram(0)
}

func TestTable(t *testing.T) {
	tbl := NewTable("name", "value")
	tbl.AddRow("alpha", 1.5)
	tbl.AddRow("beta-long-name", 22)
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "name") || !strings.Contains(lines[0], "value") {
		t.Errorf("bad header: %q", lines[0])
	}
	if !strings.Contains(lines[2], "1.50") {
		t.Errorf("float not formatted: %q", lines[2])
	}
	// Columns align: the separator row is as wide as the widest cell.
	if len(lines[1]) < len("beta-long-name") {
		t.Errorf("separator too short: %q", lines[1])
	}
}

func TestPlot(t *testing.T) {
	p := NewPlot("throughput", "latency")
	p.Add("xy", []float64{100, 200, 300}, []float64{5, 10, 50}, 0)
	p.Add("nf", []float64{100, 300, 500}, []float64{5, 8, 20}, 0)
	out := p.String()
	if !strings.Contains(out, "1 = xy") || !strings.Contains(out, "2 = nf") {
		t.Errorf("missing legend:\n%s", out)
	}
	if !strings.Contains(out, "throughput") || !strings.Contains(out, "latency") {
		t.Error("missing axis labels")
	}
	if !strings.Contains(out, "50.0") {
		t.Error("missing y max label")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 24 {
		t.Errorf("plot too short: %d lines", len(lines))
	}
}

func TestPlotEmpty(t *testing.T) {
	p := NewPlot("x", "y")
	if got := p.String(); got != "(empty plot)\n" {
		t.Errorf("empty plot rendered %q", got)
	}
	p.Add("none", nil, nil, 0)
	if got := p.String(); got != "(empty plot)\n" {
		t.Errorf("pointless series rendered %q", got)
	}
}

func TestPlotMismatchedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewPlot("x", "y").Add("bad", []float64{1}, []float64{1, 2}, 0)
}
