package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Errorf("N = %d", a.N())
	}
	if math.Abs(a.Mean()-5) > 1e-12 {
		t.Errorf("mean = %v, want 5", a.Mean())
	}
	// Sample (unbiased) variance of this classic data set is 32/7.
	if math.Abs(a.Variance()-32.0/7) > 1e-12 {
		t.Errorf("variance = %v, want %v", a.Variance(), 32.0/7)
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Errorf("min/max = %v/%v", a.Min(), a.Max())
	}
	if a.StdErr() <= 0 {
		t.Error("stderr should be positive")
	}
	if a.String() == "" {
		t.Error("empty String")
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.Variance() != 0 || a.StdErr() != 0 {
		t.Error("empty accumulator should be all zeros")
	}
	// Min/Max are NaN when empty so a real 0 observation is
	// distinguishable from "no data".
	if !math.IsNaN(a.Min()) || !math.IsNaN(a.Max()) {
		t.Errorf("empty Min/Max = %v/%v, want NaN/NaN", a.Min(), a.Max())
	}
	if a.String() != "n=0" {
		t.Errorf("empty String = %q, want \"n=0\"", a.String())
	}
	a.Add(0)
	if a.Min() != 0 || a.Max() != 0 {
		t.Errorf("Min/Max after observing 0 = %v/%v, want 0/0", a.Min(), a.Max())
	}
}

// TestAccumulatorMatchesNaive: Welford agrees with the two-pass formula.
func TestAccumulatorMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(n uint8) bool {
		size := int(n)%50 + 2
		xs := make([]float64, size)
		var a Accumulator
		for i := range xs {
			xs[i] = rng.NormFloat64()*10 + 5
			a.Add(xs[i])
		}
		var mean float64
		for _, x := range xs {
			mean += x
		}
		mean /= float64(size)
		var v float64
		for _, x := range xs {
			v += (x - mean) * (x - mean)
		}
		v /= float64(size - 1)
		return math.Abs(a.Mean()-mean) < 1e-9 && math.Abs(a.Variance()-v) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(1.0)
	for i := 1; i <= 100; i++ {
		h.Add(float64(i))
	}
	if h.N() != 100 {
		t.Errorf("N = %d", h.N())
	}
	if p := h.Percentile(0.5); math.Abs(p-51) > 1.5 {
		t.Errorf("p50 = %v, want about 51", p)
	}
	if p := h.Percentile(0.99); p < 98 || p > 101 {
		t.Errorf("p99 = %v", p)
	}
	if math.Abs(h.Mean()-50.5) > 1e-9 {
		t.Errorf("mean = %v", h.Mean())
	}
}

// TestPercentileTable pins the interpolated percentile semantics:
// clamped q, exact interpolation within buckets, negative observations
// and single-bucket histograms.
func TestPercentileTable(t *testing.T) {
	uniform100 := func() *Histogram {
		h := NewHistogram(1.0)
		for i := 1; i <= 100; i++ {
			h.Add(float64(i))
		}
		return h
	}
	single := func() *Histogram {
		h := NewHistogram(10.0)
		for i := 0; i < 4; i++ {
			h.Add(2.5) // all four land in bucket [0,10)
		}
		return h
	}
	negatives := func() *Histogram {
		h := NewHistogram(1.0)
		for _, x := range []float64{-3.5, -2.5, -1.5, -0.5} {
			h.Add(x)
		}
		return h
	}
	cases := []struct {
		name string
		h    *Histogram
		q    float64
		want float64
	}{
		{"q0 is the first bucket lower bound", uniform100(), 0, 1},
		{"q1 is the last bucket upper bound", uniform100(), 1, 101},
		{"negative q clamps to 0", uniform100(), -0.5, 1},
		{"q above 1 clamps to 1", uniform100(), 2, 101},
		{"NaN q clamps to 0", uniform100(), math.NaN(), 1},
		{"median interpolates", uniform100(), 0.5, 51},
		{"p25 interpolates", uniform100(), 0.25, 26},
		{"single bucket q0", single(), 0, 0},
		{"single bucket median interpolates within", single(), 0.5, 5},
		{"single bucket q1", single(), 1, 10},
		{"negative observations q0", negatives(), 0, -4},
		{"negative observations median", negatives(), 0.5, -2},
		{"negative observations q1", negatives(), 1, 0},
	}
	for _, c := range cases {
		if got := c.h.Percentile(c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: Percentile(%v) = %v, want %v", c.name, c.q, got, c.want)
		}
	}
	// Quantiles are monotone in q.
	h := uniform100()
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		p := h.Percentile(q)
		if p < prev {
			t.Fatalf("Percentile not monotone: q=%v gives %v after %v", q, p, prev)
		}
		prev = p
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(2)
	if h.Percentile(0.5) != 0 {
		t.Error("empty histogram percentile should be 0")
	}
}

func TestHistogramBadWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewHistogram(0)
}

func TestTable(t *testing.T) {
	tbl := NewTable("name", "value")
	tbl.AddRow("alpha", 1.5)
	tbl.AddRow("beta-long-name", 22)
	out := tbl.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "name") || !strings.Contains(lines[0], "value") {
		t.Errorf("bad header: %q", lines[0])
	}
	if !strings.Contains(lines[2], "1.50") {
		t.Errorf("float not formatted: %q", lines[2])
	}
	// Columns align: the separator row is as wide as the widest cell.
	if len(lines[1]) < len("beta-long-name") {
		t.Errorf("separator too short: %q", lines[1])
	}
}

func TestPlot(t *testing.T) {
	p := NewPlot("throughput", "latency")
	p.Add("xy", []float64{100, 200, 300}, []float64{5, 10, 50}, 0)
	p.Add("nf", []float64{100, 300, 500}, []float64{5, 8, 20}, 0)
	out := p.String()
	if !strings.Contains(out, "1 = xy") || !strings.Contains(out, "2 = nf") {
		t.Errorf("missing legend:\n%s", out)
	}
	if !strings.Contains(out, "throughput") || !strings.Contains(out, "latency") {
		t.Error("missing axis labels")
	}
	if !strings.Contains(out, "50.0") {
		t.Error("missing y max label")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 24 {
		t.Errorf("plot too short: %d lines", len(lines))
	}
}

func TestPlotEmpty(t *testing.T) {
	p := NewPlot("x", "y")
	if got := p.String(); got != "(empty plot)\n" {
		t.Errorf("empty plot rendered %q", got)
	}
	p.Add("none", nil, nil, 0)
	if got := p.String(); got != "(empty plot)\n" {
		t.Errorf("pointless series rendered %q", got)
	}
}

func TestPlotMismatchedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewPlot("x", "y").Add("bad", []float64{1}, []float64{1, 2}, 0)
}
