// Package turnmodel is a Go implementation of the turn model for
// adaptive routing (Glass & Ni), together with everything needed to
// reproduce the paper: mesh, torus and hypercube topologies; the
// nonadaptive xy/e-cube baselines; the partially adaptive west-first,
// north-last, negative-first, ABONF, ABOPL and p-cube algorithms; a
// channel-dependency-graph deadlock verifier; a cycle-accurate flit-level
// wormhole simulator; the paper's traffic patterns; and adaptiveness
// analysis.
//
// This root package is a facade re-exporting the library surface from
// the internal packages. Typical use:
//
//	mesh := turnmodel.NewMesh(16, 16)
//	alg := turnmodel.NewNegativeFirst(mesh)
//	fmt.Println(turnmodel.CheckDeadlockFree(alg))
//	res, _ := turnmodel.Simulate(turnmodel.SimConfig{
//		Algorithm:   alg,
//		Pattern:     turnmodel.NewMeshTranspose(mesh),
//		OfferedLoad: 1.5, WarmupCycles: 10000, MeasureCycles: 40000,
//	})
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record.
package turnmodel

import (
	"io"

	"turnmodel/internal/adapt"
	"turnmodel/internal/analytic"
	"turnmodel/internal/core"
	"turnmodel/internal/deadlock"
	"turnmodel/internal/routing"
	"turnmodel/internal/sim"
	"turnmodel/internal/topology"
	"turnmodel/internal/traffic"
)

// Topologies.

// Topology is an n-dimensional mesh or k-ary n-cube; see NewMesh,
// NewTorus and NewHypercube.
type Topology = topology.Topology

// NodeID identifies a node.
type NodeID = topology.NodeID

// Coord is a coordinate vector.
type Coord = topology.Coord

// Direction is a movement along one dimension.
type Direction = topology.Direction

// Channel is a unidirectional network channel.
type Channel = topology.Channel

// NewMesh returns an n-dimensional mesh with the given side lengths.
func NewMesh(dims ...int) *Topology { return topology.NewMesh(dims...) }

// NewTorus returns a k-ary n-cube.
func NewTorus(k, n int) *Topology { return topology.NewTorus(k, n) }

// NewHypercube returns a binary n-cube.
func NewHypercube(n int) *Topology { return topology.NewHypercube(n) }

// Routing algorithms.

// Algorithm is a routing relation bound to a topology.
type Algorithm = routing.Algorithm

// InPort describes how a packet arrived at a router.
type InPort = routing.InPort

// NewDimensionOrder returns nonadaptive dimension-order routing: the xy
// algorithm on 2D meshes, e-cube on hypercubes.
func NewDimensionOrder(t *Topology) Algorithm { return routing.NewDimensionOrder(t) }

// NewWestFirst returns the west-first algorithm for 2D meshes
// (Section 3.1).
func NewWestFirst(t *Topology) Algorithm { return routing.NewWestFirst(t) }

// NewNorthLast returns the north-last algorithm for 2D meshes
// (Section 3.2).
func NewNorthLast(t *Topology) Algorithm { return routing.NewNorthLast(t) }

// NewNegativeFirst returns the negative-first algorithm for
// n-dimensional meshes (Section 3.3 and 4.1); on hypercubes it is the
// p-cube algorithm of Section 5.
func NewNegativeFirst(t *Topology) Algorithm { return routing.NewNegativeFirst(t) }

// NewABONF returns the all-but-one-negative-first algorithm
// (Section 4.1) excluding the given dimension from the first phase.
func NewABONF(t *Topology, excluded int) Algorithm { return routing.NewABONF(t, excluded) }

// NewABOPL returns the all-but-one-positive-last algorithm
// (Section 4.1) with the given special dimension.
func NewABOPL(t *Topology, special int) Algorithm { return routing.NewABOPL(t, special) }

// NewPCube returns the minimal p-cube algorithm in its bitwise Figure 11
// form (equivalent to NewNegativeFirst on the same hypercube).
func NewPCube(t *Topology) Algorithm { return routing.NewPCube(t) }

// NewFullyAdaptive returns the minimal fully adaptive relation — NOT
// deadlock free without extra channels; the adaptiveness reference.
func NewFullyAdaptive(t *Topology) Algorithm { return routing.NewFullyAdaptive(t) }

// NewWrapFirstHop extends a mesh algorithm to a k-ary n-cube, allowing
// wraparound channels only on the first hop (Section 4.2).
func NewWrapFirstHop(inner Algorithm) Algorithm { return routing.NewWrapFirstHop(inner) }

// NewNegativeFirstTorus returns negative-first routing on a torus with
// wraparound channels classified by routing direction (Section 4.2).
func NewNegativeFirstTorus(t *Topology) Algorithm { return routing.NewNegativeFirstTorus(t) }

// NewTurnSetRouting returns the routing relation induced by an arbitrary
// turn set — the general construction of Section 2. With minimal=false
// the relation is nonminimal: more adaptive and fault tolerant.
func NewTurnSetRouting(t *Topology, set *TurnSet, minimal bool) Algorithm {
	return routing.NewTurnGraphRouting(t, set, minimal)
}

// Walk traces one packet's route; sel nil uses the paper's
// lowest-dimension output selection.
func Walk(alg Algorithm, src, dst NodeID, sel Selector) ([]NodeID, error) {
	return routing.Walk(alg, src, dst, sel)
}

// Selector picks one candidate direction during a Walk.
type Selector = routing.Selector

// GreedySelector prefers profitable candidates; useful with nonminimal
// relations.
func GreedySelector(t *Topology) Selector { return routing.GreedySelector(t) }

// FormatPath renders a node path with coordinates.
func FormatPath(t *Topology, path []NodeID) string { return routing.FormatPath(t, path) }

// Turn model.

// TurnSet records which turns are allowed in an n-dimensional mesh.
type TurnSet = core.Set

// Turn is an ordered pair of directions.
type Turn = core.Turn

// NewTurnSet returns a set with every 90-degree turn allowed.
func NewTurnSet(n int) *TurnSet { return core.NewSet(n) }

// WestFirstTurns, NorthLastTurns and NegativeFirstTurns are the
// allowed-turn sets of Figures 5a, 9a and 10a.
func WestFirstTurns() *TurnSet { return core.WestFirstSet() }

// NorthLastTurns returns the north-last turn set (Figure 9a).
func NorthLastTurns() *TurnSet { return core.NorthLastSet() }

// NegativeFirstTurns returns the negative-first turn set for n
// dimensions (Figure 10a for n=2).
func NegativeFirstTurns(n int) *TurnSet { return core.NegativeFirstSet(n) }

// AbstractCycles enumerates the n(n-1) abstract turn cycles of an
// n-dimensional mesh (Figure 2).
func AbstractCycles(n int) []core.Cycle { return core.AbstractCycles(n) }

// Deadlock analysis.

// DeadlockResult summarizes a deadlock-freedom check.
type DeadlockResult = deadlock.Result

// CheckDeadlockFree builds the channel dependency graph of alg and
// reports whether it is acyclic (Dally-Seitz condition).
func CheckDeadlockFree(alg Algorithm) DeadlockResult { return deadlock.Check(alg) }

// CheckTurnSetDeadlockFree checks the destination-free relation induced
// by a turn set, the sense in which Figure 4's six turns allow deadlock.
func CheckTurnSetDeadlockFree(t *Topology, set *TurnSet) DeadlockResult {
	return deadlock.CheckTurnSet(t, set)
}

// Simulation.

// SimConfig parameterizes a wormhole simulation run (Section 6 model).
type SimConfig = sim.Config

// SimResult is a run's measurements.
type SimResult = sim.Result

// ScriptedMessage injects one specific message in a scripted run.
type ScriptedMessage = sim.ScriptedMessage

// Simulate runs one wormhole simulation.
func Simulate(cfg SimConfig) (SimResult, error) { return sim.Run(cfg) }

// Traffic patterns.

// Pattern selects message destinations.
type Pattern = traffic.Pattern

// NewUniform returns the uniform pattern.
func NewUniform(t *Topology) Pattern { return traffic.NewUniform(t) }

// NewMeshTranspose returns the matrix-transpose pattern for square 2D
// meshes.
func NewMeshTranspose(t *Topology) Pattern { return traffic.NewMeshTranspose(t) }

// NewHypercubeTranspose returns the paper's embedded matrix-transpose
// pattern for hypercubes.
func NewHypercubeTranspose(t *Topology) Pattern { return traffic.NewHypercubeTranspose(t) }

// NewReverseFlip returns the reverse-flip pattern for hypercubes.
func NewReverseFlip(t *Topology) Pattern { return traffic.NewReverseFlip(t) }

// NewBitComplement returns the coordinate-complement pattern.
func NewBitComplement(t *Topology) Pattern { return traffic.NewBitComplement(t) }

// NewHotspot returns a pattern directing fraction p of traffic at hot.
func NewHotspot(t *Topology, hot NodeID, p float64) Pattern { return traffic.NewHotspot(t, hot, p) }

// Adaptiveness analysis.

// CountShortestPaths exhaustively counts the shortest paths a relation
// allows between two nodes (S_algorithm of Section 3.4).
func CountShortestPaths(alg Algorithm, src, dst NodeID) int64 {
	return adapt.CountShortestPaths(alg, src, dst).Int64()
}

// Virtual channels (Step 1 of the turn model treats multiple channels
// per physical direction as distinct virtual directions).

// VCAlgorithm is a routing relation over virtual channels.
type VCAlgorithm = routing.VCAlgorithm

// VirtualDirection is one virtual channel of a physical direction.
type VirtualDirection = routing.VirtualDirection

// NewDatelineDOR returns minimal dimension-order torus routing with two
// virtual channels per physical channel, deadlock free by the
// Dally-Seitz dateline discipline — the extra-channel approach the paper
// contrasts the turn model with (Section 4.2).
func NewDatelineDOR(t *Topology) VCAlgorithm { return routing.NewDatelineDOR(t) }

// NewTorusDOR returns minimal dimension-order torus routing WITHOUT
// virtual channels; it is not deadlock free (Section 4.2's
// impossibility) and exists for demonstration.
func NewTorusDOR(t *Topology) Algorithm { return routing.NewTorusDOR(t) }

// VCDeadlockResult summarizes a virtual-channel deadlock check.
type VCDeadlockResult = deadlock.VCResult

// CheckVCDeadlockFree builds the virtual channel dependency graph of a
// VC-aware relation and reports whether it is acyclic.
func CheckVCDeadlockFree(alg VCAlgorithm) VCDeadlockResult { return deadlock.CheckVC(alg) }

// Switching and policy knobs of the simulator.

// Switching selects wormhole, store-and-forward or virtual cut-through
// flow control.
type Switching = sim.Switching

// The switching techniques of the introduction's latency comparison.
const (
	Wormhole          = sim.Wormhole
	StoreAndForward   = sim.StoreAndForward
	VirtualCutThrough = sim.VirtualCutThrough
)

// OutputPolicy selects among available output channels.
type OutputPolicy = sim.OutputPolicy

// InputPolicy arbitrates among waiting header flits.
type InputPolicy = sim.InputPolicy

// Analysis.

// TopologySummary describes a topology's static figures of merit.
type TopologySummary = analytic.Summary

// SummarizeTopology computes channel count, bisection width, diameter
// and average minimal hops (the Section 1 comparison).
func SummarizeTopology(t *Topology) TopologySummary { return analytic.Summarize(t) }

// ChannelLoads computes per-channel expected traversal rates under a
// deterministic pattern with flow split evenly among a relation's
// candidates; see SaturationBound.
func ChannelLoads(alg Algorithm, pat Pattern) []float64 { return analytic.ChannelLoads(alg, pat) }

// UniformChannelLoads is ChannelLoads under uniform traffic.
func UniformChannelLoads(alg Algorithm) []float64 { return analytic.UniformChannelLoads(alg) }

// MaxChannelLoad returns the largest channel load and its channel.
func MaxChannelLoad(t *Topology, loads []float64) (float64, Channel) {
	return analytic.MaxLoad(t, loads)
}

// SaturationBound converts a maximum channel load into an upper bound on
// sustainable injection in flits/us per traffic-generating node.
func SaturationBound(maxLoad float64) float64 { return analytic.SaturationBound(maxLoad) }

// Workload traces: record the stochastic workload once and replay it
// against different algorithms (common random numbers).

// RecordWorkload generates the message workload a configuration would
// produce over the given horizon in cycles, without simulating the
// network; replay it via SimConfig.Script.
func RecordWorkload(cfg SimConfig, horizon int64) ([]ScriptedMessage, error) {
	return sim.RecordWorkload(cfg, horizon)
}

// WriteTrace serializes messages in the one-line-per-message trace
// format; ReadTrace parses it back.
func WriteTrace(w io.Writer, msgs []ScriptedMessage) error { return sim.WriteTrace(w, msgs) }

// ReadTrace parses a workload trace.
func ReadTrace(r io.Reader) ([]ScriptedMessage, error) { return sim.ReadTrace(r) }

// RenderPath draws a route on a 2D mesh as ASCII art in the style of
// the paper's example-path figures.
func RenderPath(t *Topology, path []NodeID) string { return routing.RenderPathGrid(t, path) }

// NewDoubleY returns the fully adaptive double-y-channel relation for
// 2D meshes — the turn model applied to a network with one extra y
// channel (the companion work the paper's Section 2 previews). Verify
// with CheckVCDeadlockFree; simulate via SimConfig.VCAlgorithm.
func NewDoubleY(t *Topology) VCAlgorithm { return routing.NewDoubleY(t) }

// Simulation observation.

// SimObserver receives simulation events for debugging and custom
// measurement; see ObserverFuncs for a field-wise adapter.
type SimObserver = sim.Observer

// ObserverFuncs adapts individual callbacks to SimObserver.
type ObserverFuncs = sim.ObserverFuncs

// ChannelOccupancy accumulates per-channel flit counts from a run.
type ChannelOccupancy = sim.ChannelOccupancy

// NewChannelOccupancy returns an occupancy recorder for t; pass its
// Observer to SimConfig.Observer.
func NewChannelOccupancy(t *Topology) *ChannelOccupancy { return sim.NewChannelOccupancy(t) }
