// Command turnserver runs the figure harness as a long-lived HTTP
// service: clients POST simulation jobs, stream per-leaf progress over
// Server-Sent Events, and fetch results that are byte-identical to the
// in-process `experiments` output. Identical submissions are
// content-addressed onto one job and repeat configurations are served
// from the in-process sweep cache without re-running a single
// simulation.
//
// With -journal the server is crash-safe: every job transition is
// appended to a JSONL write-ahead log, and a restart replays it —
// completed results are served from the journal, jobs interrupted by
// the crash are re-queued (capped exponential backoff across repeated
// crashes), and jobs that panicked stay quarantined as "poisoned".
//
// Start it, then drive it with curl:
//
//	turnserver -addr :8080 -journal /var/lib/turnserver/journal.jsonl \
//	  -job-timeout 10m &
//
//	# Submit a quick Figure 13 sweep (202, or 200 if already known).
//	curl -s localhost:8080/v1/jobs -d '{"figure":"fig13","quick":true}'
//
//	# Follow progress live; the stream ends with the result JSON.
//	curl -N localhost:8080/v1/jobs/<id>/stream
//
//	# Or poll, then fetch the finished figure.
//	curl -s localhost:8080/v1/jobs/<id>
//	curl -s localhost:8080/v1/jobs/<id>/result
//
//	# Cancel, list, scrape, probe.
//	curl -s -X DELETE localhost:8080/v1/jobs/<id>
//	curl -s localhost:8080/v1/jobs
//	curl -s localhost:8080/metrics
//	curl -s localhost:8080/healthz   # liveness
//	curl -s localhost:8080/readyz    # readiness + load shedding
//
// SIGINT/SIGTERM drains cleanly: admission stops, running jobs are
// canceled at their next poll, and the HTTP listener shuts down. A
// SIGKILL (or crash) instead leaves the journal authoritative: the
// next start re-runs what was interrupted and serves what finished.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"turnmodel/internal/metrics"
	"turnmodel/internal/serve"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	queue := flag.Int("queue", 16, "admission queue depth (beyond it submissions get 429)")
	jobs := flag.Int("jobs", 1, "jobs run concurrently (each fans out across the worker budget)")
	workers := flag.Int("workers", 0, "total leaf-simulation worker budget shared by running jobs (0 = GOMAXPROCS)")
	journal := flag.String("journal", "", "JSONL job journal path; enables crash-safe replay on restart (empty = in-memory only)")
	jobTimeout := flag.Duration("job-timeout", 0, "per-job execution deadline; exceeded jobs end in state \"timeout\" (0 = none)")
	shed := flag.Int("shed", 0, "queued-job count at which /readyz flips 503 to shed load (0 = 3/4 of -queue)")
	quiet := flag.Bool("quiet", false, "suppress the per-request access log")
	flag.Parse()

	store, err := serve.NewStore(serve.Config{
		QueueDepth:    *queue,
		Jobs:          *jobs,
		Workers:       *workers,
		JournalPath:   *journal,
		JobTimeout:    *jobTimeout,
		ShedThreshold: *shed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "turnserver: %v\n", err)
		return 1
	}
	var logw io.Writer = os.Stderr
	if *quiet {
		logw = nil
	}
	srv := &http.Server{
		Addr:    *addr,
		Handler: serve.NewServer(store, metrics.NewRegistry(), logw),
	}

	ctx, cancel := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer cancel()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "turnserver listening on %s\n", *addr)

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "turnserver: %v\n", err)
		store.Close()
		return 1
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "turnserver: shutting down")
	shutdownCtx, stop := context.WithTimeout(context.Background(), 10*time.Second)
	defer stop()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "turnserver: shutdown: %v\n", err)
	}
	store.Close()
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "turnserver: %v\n", err)
		return 1
	}
	return 0
}
