// Command turnsim runs a single wormhole-routing simulation and prints
// the measured latency and throughput.
//
// Usage:
//
//	turnsim -topo mesh16x16 -alg negative-first -traffic transpose -load 1.5
//
// Topologies: meshAxB[xC...] (e.g. mesh16x16), cubeN (binary N-cube,
// e.g. cube8), torusKxN (k-ary n-cube, e.g. torus8x2).
//
// Algorithms: xy/e-cube (dimension-order), west-first, north-last,
// negative-first (p-cube on hypercubes), abonf, abopl, the torus
// extensions, dateline-dor and double-y (virtual channels), and
// fully-adaptive (deadlocks!).
//
// Traffic: uniform, transpose, reverse-flip, bit-complement, hotspot,
// tornado, bit-reversal, shuffle.
package main

import (
	"flag"
	"fmt"
	"os"

	"turnmodel/internal/cli"
	"turnmodel/internal/fault"
	"turnmodel/internal/metrics"
	"turnmodel/internal/sim"
)

func main() {
	topoFlag := flag.String("topo", "mesh16x16", "topology: meshAxB[xC...], cubeN, torusKxN")
	algFlag := flag.String("alg", "negative-first", "routing algorithm")
	trafficFlag := flag.String("traffic", "uniform", "traffic pattern")
	load := flag.Float64("load", 1.0, "offered load in flits/us/node")
	warmup := flag.Int64("warmup", 10000, "warmup cycles")
	measure := flag.Int64("measure", 40000, "measurement cycles")
	seed := flag.Int64("seed", 1, "random seed")
	buffer := flag.Int("buffer", 1, "input buffer depth in flits")
	policy := flag.String("policy", "xy", "output selection policy: xy, high, random")
	input := flag.String("input", "fcfs", "input selection policy: fcfs, port, random")
	switching := flag.String("switching", "wormhole", "switching: wormhole, saf, vct")
	misroute := flag.Int64("misroute", 0, "misroute patience in cycles (0 = relation as-is)")
	delay := flag.Int64("delay", 0, "extra router decision delay in cycles")
	shards := flag.Int("shards", 0, "engine shards: split each cycle's parallelizable phases across this many goroutines (0 = serial, -1 = auto from GOMAXPROCS and network size; results identical)")
	verbose := flag.Bool("v", false, "print percentiles and channel utilization")
	record := flag.String("record", "", "record the workload to a trace file and exit (horizon = warmup+measure cycles)")
	replay := flag.String("replay", "", "replay a recorded workload trace instead of generating traffic")
	metricsDir := flag.String("metrics", "", "collect run metrics and write manifest.json, metrics.prom and heatmap.txt to this directory")
	metricsInterval := flag.Int64("metrics-interval", 1000, "metrics time-series sampling cadence in cycles")
	exactLat := flag.Bool("metrics-exact-latencies", false, "record every packet's latency exactly in the metrics manifest (unbounded memory)")
	faultRate := flag.Float64("fault-rate", 0, "random transient channel-fault onsets per 1000 cycles (0 = no faults)")
	faultMTTR := flag.Int64("fault-mttr", 2000, "mean time to repair a transient fault in cycles (0 = permanent faults)")
	recovery := flag.Int64("recovery", 0, "deadlock-recovery watchdog threshold in cycles (0 = recovery off)")
	retryLimit := flag.Int("retry-limit", 0, "recovery retry budget per packet (0 = default 8, negative = drop on first abort)")
	retryBackoff := flag.Int64("retry-backoff", 0, "base recovery retry backoff in cycles (0 = recovery threshold)")
	checkInv := flag.Bool("check", false, "run the structural invariant checker during and after the simulation")
	flag.Parse()

	t, err := cli.ParseTopology(*topoFlag)
	check(err)
	valg, err := cli.ParseVCAlgorithm(t, *algFlag)
	check(err)
	pat, err := cli.ParseTraffic(t, *trafficFlag)
	check(err)
	pol, err := cli.ParsePolicy(*policy)
	check(err)
	inp, err := cli.ParseInputPolicy(*input)
	check(err)

	var sw sim.Switching
	switch *switching {
	case "wormhole":
		sw = sim.Wormhole
	case "saf", "store-and-forward":
		sw = sim.StoreAndForward
	case "vct", "virtual-cut-through":
		sw = sim.VirtualCutThrough
	default:
		check(fmt.Errorf("unknown switching %q", *switching))
	}

	cfg := sim.Config{
		Pattern:       pat,
		OfferedLoad:   *load,
		WarmupCycles:  *warmup,
		MeasureCycles: *measure,
		Seed:          *seed,
		BufferDepth:   *buffer,
		Policy:        pol,
		Input:         inp,
		Switching:     sw,
		MisrouteAfter: *misroute,
		RouterDelay:   *delay,
		Shards:        *shards,

		RecoveryThreshold: *recovery,
		RetryLimit:        *retryLimit,
		RetryBackoff:      *retryBackoff,
		CheckInvariants:   *checkInv,
	}
	if *faultRate > 0 {
		plan, err := fault.NewCampaign(t, fault.Campaign{
			Seed:    *seed + 1,
			Horizon: *warmup + *measure,
			Rate:    *faultRate,
			MTTR:    *faultMTTR,
		})
		check(err)
		cfg.FaultPlan = plan
	}
	// Single-VC relations run through the plain algorithm path so the
	// buffer layout matches the paper's model exactly.
	if valg.NumVCs() == 1 {
		alg, err := cli.ParseAlgorithm(t, *algFlag)
		check(err)
		cfg.Algorithm = alg
	} else {
		cfg.VCAlgorithm = valg
	}

	if *record != "" {
		msgs, err := sim.RecordWorkload(cfg, *warmup+*measure)
		check(err)
		f, err := os.Create(*record)
		check(err)
		check(sim.WriteTrace(f, msgs))
		check(f.Close())
		fmt.Printf("recorded %d messages over %d cycles to %s\n", len(msgs), *warmup+*measure, *record)
		return
	}
	if *replay != "" {
		f, err := os.Open(*replay)
		check(err)
		msgs, err := sim.ReadTrace(f)
		check(err)
		check(f.Close())
		cfg.Pattern = nil
		cfg.OfferedLoad = 0
		cfg.WarmupCycles = 0
		cfg.MeasureCycles = 0
		cfg.Script = msgs
		cfg.DeadlockThreshold = 100000
	}

	var m *metrics.Collector
	if *metricsDir != "" {
		m = metrics.New(metrics.Config{Interval: *metricsInterval, ExactLatencies: *exactLat})
		cfg.Metrics = m
	}

	res, err := sim.Run(cfg)
	check(err)
	fmt.Printf("topology:   %v\n", t)
	fmt.Println(res)
	if m != nil {
		check(m.WriteFiles(*metricsDir))
		sum := m.Summarize()
		fmt.Printf("metrics:    %s, %s, %s written to %s\n",
			metrics.ManifestFile, metrics.PrometheusFile, metrics.HeatmapFile, *metricsDir)
		fmt.Printf("            grants=%d denials=%d misroutes=%d mean-occupancy=%.2f flits/router\n",
			sum.Grants, sum.Denials, sum.Misroutes, sum.MeanOccupancy)
	}
	if *recovery > 0 || *faultRate > 0 {
		fmt.Printf("recovery:   recoveries=%d retries=%d dropped=%d drained-flits=%d stranded-flits=%d\n",
			res.Recoveries, res.Retries, res.PacketsDropped, res.FlitsDrained, res.StrandedFlits)
		fmt.Printf("accounting: delivered-ever=%d dropped=%d in-flight=%d\n",
			res.PacketsDeliveredTotal, res.PacketsDropped, res.PacketsInFlight)
	}
	if res.InvariantViolation != "" {
		fmt.Fprintf(os.Stderr, "turnsim: invariant violation: %s\n", res.InvariantViolation)
		os.Exit(1)
	}
	if *verbose {
		fmt.Printf("latency percentiles: p50=%.2f p95=%.2f p99=%.2f max=%.2f us\n",
			res.LatencyP50, res.LatencyP95, res.LatencyP99, res.MaxLatency)
		fmt.Printf("hottest channel: %v at %.1f%% utilization\n",
			res.HottestChannel, res.MaxChannelUtilization*100)
		fmt.Printf("backlog growth: %d flits over the measurement window\n", res.BacklogGrowth)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "turnsim:", err)
		os.Exit(1)
	}
}
