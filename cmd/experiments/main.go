// Command experiments regenerates every figure and table of the paper.
//
// Usage:
//
//	experiments [-only id[,id...]] [-quick] [-seed N] [-list]
//
// With no flags it runs the full experiment suite in paper order and
// prints each artifact's regenerated rows or series. The full simulation
// figures take several minutes; -quick runs coarser, shorter sweeps.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"turnmodel/internal/exp"
	"turnmodel/internal/prof"
)

func main() {
	os.Exit(run())
}

func run() int {
	only := flag.String("only", "", "comma-separated experiment IDs to run (default: all)")
	quick := flag.Bool("quick", false, "shorter simulations and coarser sweeps")
	seed := flag.Int64("seed", 1, "random seed for the stochastic experiments")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	outDir := flag.String("out", "", "also write each experiment's output to <dir>/<id>.txt")
	jsonDir := flag.String("json", "", "also write simulation figures as <dir>/<id>.json")
	workers := flag.Int("workers", 0, "concurrent simulations across figures and sweeps (0 = GOMAXPROCS; shares a budget with -shards)")
	shards := flag.Int("shards", 0, "engine shards per simulation (0 = serial, -1 = auto: batch whole simulations per core when the sweep is wide enough; results identical)")
	metricsDir := flag.String("metrics", "", "attach metric collectors to every simulation and write per-figure dumps to <dir>/<id>.metrics.json")
	metricsInterval := flag.Int64("metrics-interval", 0, "metrics time-series sampling cadence in cycles (0 = default)")
	progress := flag.Bool("progress", false, "print progress/ETA lines to stderr as sweep simulations complete")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stop, err := prof.Start(*cpuprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		return 1
	}
	defer stop()

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 1
		}
	}

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return 0
	}

	opts := exp.Options{
		Quick: *quick, Seed: *seed, Workers: *workers, Shards: *shards,
		MetricsDir: *metricsDir, MetricsInterval: *metricsInterval,
	}
	if *progress {
		opts.Progress = os.Stderr
	}
	var chosen []exp.Experiment
	if *only == "" {
		chosen = exp.All()
	} else {
		for _, id := range strings.Split(*only, ",") {
			e, ok := exp.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (use -list)\n", id)
				return 2
			}
			chosen = append(chosen, e)
		}
	}

	failed := 0
	// Warm the figure cache for every chosen simulation figure in one
	// parallel batch; each experiment's own RunFigure then hits the
	// cache and only renders.
	var figs []exp.FigureSpec
	for _, e := range chosen {
		if f, ok := exp.FigureByID(e.ID); ok {
			figs = append(figs, f)
		}
	}
	if len(figs) > 1 {
		if err := exp.PrefetchFigures(opts, figs...); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: prefetch: %v\n", err)
			failed++
		}
	}
	for _, e := range chosen {
		fmt.Printf("==== %s: %s ====\n", e.ID, e.Title)
		var w io.Writer = os.Stdout
		var f *os.File
		if *outDir != "" {
			var err error
			f, err = os.Create(filepath.Join(*outDir, e.ID+".txt"))
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				return 1
			}
			w = io.MultiWriter(os.Stdout, f)
		}
		start := time.Now()
		if err := e.Run(opts, w); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s FAILED: %v\n", e.ID, err)
			failed++
		}
		if f != nil {
			f.Close()
		}
		fmt.Printf("---- %s done in %v ----\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return 1
		}
		for _, e := range chosen {
			f, ok := exp.FigureByID(e.ID)
			if !ok {
				continue
			}
			// The sweeps are cached from the run above, so this is cheap.
			sweeps, err := exp.RunFigure(f, opts)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %s json: %v\n", e.ID, err)
				failed++
				continue
			}
			jf, err := os.Create(filepath.Join(*jsonDir, e.ID+".json"))
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				return 1
			}
			if err := exp.WriteFigureJSON(jf, f, sweeps); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %s json: %v\n", e.ID, err)
				failed++
			}
			jf.Close()
		}
	}
	if err := prof.WriteHeap(*memprofile); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		failed++
	}
	if failed > 0 {
		return 1
	}
	return 0
}
