// Command sweep measures one latency-versus-throughput curve — a single
// series of a Section 6 figure — by sweeping the offered load for one
// topology, routing algorithm and traffic pattern.
//
// Usage:
//
//	sweep -topo mesh16x16 -alg xy,west-first -traffic transpose \
//	      -loads 0.25:3.0:0.25
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"turnmodel/internal/cli"
	"turnmodel/internal/exp"
	"turnmodel/internal/prof"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

func run() error {
	topoFlag := flag.String("topo", "mesh16x16", "topology: meshAxB[xC...], cubeN, torusKxN")
	algFlag := flag.String("alg", "xy,west-first,north-last,negative-first", "comma-separated algorithms")
	trafficFlag := flag.String("traffic", "uniform", "traffic pattern")
	loadsFlag := flag.String("loads", "0.25:3.0:0.25", "offered loads: lo:hi:step or comma-separated list (flits/us/node)")
	warmup := flag.Int64("warmup", 10000, "warmup cycles")
	measure := flag.Int64("measure", 40000, "measurement cycles")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS; shares a budget with -shards)")
	shards := flag.Int("shards", 0, "engine shards per simulation (0 = serial, -1 = auto: batch whole simulations per core when the sweep is wide enough; results identical)")
	metricsDir := flag.String("metrics", "", "attach metric collectors and write a per-algorithm dump to <dir>/<alg>.metrics.json")
	metricsInterval := flag.Int64("metrics-interval", 0, "metrics time-series sampling cadence in cycles (0 = default)")
	progress := flag.Bool("progress", false, "print progress/ETA lines to stderr as simulations complete")
	saturate := flag.Bool("saturate", false, "bisect for the exact sustainable edge instead of sweeping the grid")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stop, err := prof.Start(*cpuprofile)
	if err != nil {
		return err
	}
	defer stop()

	t, err := cli.ParseTopology(*topoFlag)
	if err != nil {
		return err
	}
	pat, err := cli.ParseTraffic(t, *trafficFlag)
	if err != nil {
		return err
	}
	loads, err := cli.ParseLoads(*loadsFlag)
	if err != nil {
		return err
	}

	opts := exp.Options{
		Seed: *seed, Warmup: *warmup, Measure: *measure, Workers: *workers, Shards: *shards,
		MetricsDir: *metricsDir, MetricsInterval: *metricsInterval,
	}
	if *progress {
		opts.Progress = os.Stderr
	}
	for _, name := range strings.Split(*algFlag, ",") {
		alg, err := cli.ParseAlgorithm(t, strings.TrimSpace(name))
		if err != nil {
			return err
		}
		if *saturate {
			lo, hi := loads[0], loads[len(loads)-1]
			sat, err := exp.FindSaturation(alg, pat, lo, hi, 8, opts)
			if err != nil {
				return err
			}
			fmt.Printf("# %s on %v, %s traffic: sustainable edge at offered %.3f flits/us/node, throughput %.1f flits/us, latency %.2f us\n",
				alg.Name(), t, pat.Name(), sat.Load, sat.Throughput, sat.Result.AvgLatency)
			continue
		}
		sw, err := exp.RunSweep(alg, pat, loads, opts)
		if err != nil {
			return err
		}
		if *metricsDir != "" {
			if err := exp.WriteSweepMetrics(*metricsDir, alg.Name(), opts, []exp.Sweep{sw}); err != nil {
				return err
			}
		}
		fmt.Printf("# %s on %v, %s traffic\n", alg.Name(), t, pat.Name())
		fmt.Printf("%-10s %-12s %-10s %-12s %-6s %s\n",
			"offered", "throughput", "latency", "net-latency", "hops", "sustainable")
		for _, p := range sw.Points {
			sus := "yes"
			if !p.Result.Sustainable {
				sus = "no"
			}
			fmt.Printf("%-10.2f %-12.1f %-10.2f %-12.2f %-6.2f %s\n",
				p.Offered, p.Result.Throughput, p.Result.AvgLatency,
				p.Result.AvgNetLatency, p.Result.AvgHops, sus)
		}
		thr, at := sw.MaxSustainable()
		fmt.Printf("# max sustainable throughput: %.1f flits/us at offered %.2f\n\n", thr, at)
	}
	return prof.WriteHeap(*memprofile)
}
