// Command turnscan exhaustively explores the 2D turn-set design space:
// all 256 subsets of the eight 90-degree turns, folded into symmetry
// classes, screened for deadlock freedom with the incremental CDG
// checker, and — unless -screen-only — benchmarked per surviving class
// representative across the workload suite.
//
// Usage:
//
//	turnscan [-mesh 8x8] [-screen-only] [-quick] [-seed N]
//	         [-loads 0.5,1.0,...] [-patterns uniform,transpose]
//	         [-workers N] [-shards N] [-log path] [-out path]
//	         [-stop-after N]
//
// The campaign checkpoints every completed figure to the JSONL log
// (keyed by exp.CacheKey), so a killed run resumes where it stopped:
// rerun the same command and only the missing figures are simulated.
// The leaderboard in -out is rebuilt from the log alone and is byte
// identical across resumes. Before anything expensive runs, the
// screening is self-checked against the paper's Section 3 counts (12
// of the 16 one-turn-per-cycle prohibitions deadlock free, folding
// into 3 classes); a mismatch aborts.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"turnmodel/internal/exp"
	"turnmodel/internal/explore"
	"turnmodel/internal/topology"
)

func main() {
	os.Exit(run())
}

func run() int {
	mesh := flag.String("mesh", "8x8", "simulation/screening mesh, e.g. 8x8 or 16x16")
	screenOnly := flag.Bool("screen-only", false, "screen and self-check only; no simulations")
	quick := flag.Bool("quick", false, "shorter simulations and coarser sweeps")
	seed := flag.Int64("seed", 1, "random seed for the stochastic sweeps")
	loads := flag.String("loads", "", "comma-separated offered loads in flits/us/node (default: the campaign sweep)")
	patterns := flag.String("patterns", "uniform,transpose", "comma-separated traffic patterns")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS; shares a budget with -shards)")
	shards := flag.Int("shards", 0, "engine shards per simulation (0 = serial, -1 = auto)")
	logPath := flag.String("log", "results/turnscan.jsonl", "JSONL checkpoint log (appended on resume)")
	outPath := flag.String("out", "results/turnscan.md", "leaderboard output path")
	stopAfter := flag.Int("stop-after", 0, "cancel after N completed figures (kill half of the kill-and-resume test)")
	quiet := flag.Bool("quiet", false, "suppress per-figure progress lines")
	flag.Parse()

	dims, err := parseMesh(*mesh)
	if err != nil {
		fmt.Fprintln(os.Stderr, "turnscan:", err)
		return 1
	}
	t := topology.NewMesh(dims...)
	s := explore.Screen(t)
	if err := s.SelfCheck(); err != nil {
		fmt.Fprintln(os.Stderr, "turnscan: SELF-CHECK FAILED:", err)
		return 1
	}
	cnt := s.Counts()
	fmt.Printf("self-check: 12/16 one-turn-per-cycle sets deadlock free, 3 symmetry classes (paper Section 3)\n")
	fmt.Printf("screening: %d sets -> %d classes; %d deadlock-free sets -> %d classes (%.1fx dedup); %d survivors (connected)\n",
		cnt.Sets, cnt.Classes, cnt.FreeSets, cnt.FreeClasses, cnt.DedupRatio(), cnt.Survivors)
	if *screenOnly {
		return 0
	}

	opts := exp.Options{Quick: *quick, Seed: *seed, Workers: *workers, Shards: *shards}
	if *loads != "" {
		for _, part := range strings.Split(*loads, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "turnscan: bad load %q: %v\n", part, err)
				return 1
			}
			opts.Loads = append(opts.Loads, v)
		}
	}
	c := &explore.Campaign{
		Screen:    s,
		Patterns:  splitList(*patterns),
		Opts:      opts,
		LogPath:   *logPath,
		OutPath:   *outPath,
		StopAfter: *stopAfter,
	}
	if !*quiet {
		c.Verbose = os.Stderr
	}
	if err := c.Run(); err != nil {
		if err == exp.ErrCanceled && *stopAfter > 0 {
			fmt.Printf("stopped after %d figures; rerun to resume from %s\n", *stopAfter, *logPath)
			return 0
		}
		fmt.Fprintln(os.Stderr, "turnscan:", err)
		return 1
	}
	fmt.Printf("leaderboard written to %s (checkpoint log: %s)\n", *outPath, *logPath)
	return 0
}

// parseMesh accepts "8x8", "8,8" or "8 8".
func parseMesh(s string) ([]int, error) {
	fields := strings.FieldsFunc(s, func(r rune) bool { return r == 'x' || r == ',' || r == ' ' })
	var dims []int
	for _, f := range fields {
		v, err := strconv.Atoi(f)
		if err != nil || v < 2 {
			return nil, fmt.Errorf("bad mesh %q: dimensions are integers >= 2", s)
		}
		dims = append(dims, v)
	}
	if len(dims) != 2 {
		return nil, fmt.Errorf("bad mesh %q: the 2D design space needs exactly two dimensions", s)
	}
	return dims, nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
