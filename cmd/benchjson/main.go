// Command benchjson measures the repository's figure benchmarks (the
// single-load-point renditions of the Section 6 figures that
// bench_test.go runs) and writes the results as JSON, one record per
// figure and algorithm with ns/op and allocs/op. The driver writes
// BENCH_<pr>.json files with it so successive changes have a recorded
// performance trajectory; benchjson itself compares each run against
// the most recent of those files and prints the deltas.
//
// Usage:
//
//	benchjson [-o BENCH_4.json] [-benchtime 2s] [-quick]
//	          [-baseline BENCH_3.json|none] [-only substring]
//	          [-max-allocs N] [-shards 0,4] [-cpu N]
//
// With no -baseline, the highest-numbered BENCH_*.json in the current
// directory (other than the -o target) is used when one exists.
// -shards measures each figure benchmark at the listed engine shard
// counts (0 = serial, -1 = auto); every entry records the gomaxprocs
// and shard setting it ran under, and the delta table warns when a
// baseline entry was taken at a different setting instead of silently
// comparing incomparable numbers. -cpu sets GOMAXPROCS for the whole
// run; the report header records both it and the machine's NumCPU, so
// a reader can tell a genuine multi-core measurement from one taken
// on a single-core box. Measuring shards > 1 when either gomaxprocs
// or numcpu is 1 earns a loud warning: the shard workers then
// time-share one core, so such numbers show barrier overhead only.
// -max-allocs turns the run into a regression gate: if any measured
// benchmark allocates more than N allocations per op, benchjson exits
// nonzero. CI runs one quick benchmark under a checked-in ceiling so a
// change that reintroduces per-header or per-message allocation fails
// the build.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"text/tabwriter"

	"turnmodel/internal/core"
	"turnmodel/internal/deadlock"
	"turnmodel/internal/exp"
	"turnmodel/internal/routing"
	"turnmodel/internal/sim"
	"turnmodel/internal/topology"
	"turnmodel/internal/traffic"
)

// freeSets2D is the deadlock-free count over the 256-set 2D design
// space, the screening benchmarks' self-check (see internal/explore).
const freeSets2D = 221

// figureBenches mirrors the Benchmark* figure entries in bench_test.go:
// one moderate load point per figure, every algorithm line.
var figureBenches = []struct {
	Name  string
	FigID string
	Load  float64
}{
	{"Fig13UniformMesh", "fig13", 1.25},
	{"Fig14TransposeMesh", "fig14", 1.75},
	{"Fig15TransposeCube", "fig15", 2.5},
	{"Fig16ReverseFlipCube", "fig16", 2.5},
}

// classBenches covers the switching classes the conflict-partitioned
// move phase parallelizes, one whole-simulation entry per class, so the
// BENCH trajectory records the sharded-move behavior of multi-VC and
// chained store-and-forward configurations — the two classes that fell
// back to serial before PR 8 — alongside the wormhole baseline.
var classBenches = []struct {
	Name string
	Cfg  func() sim.Config
}{
	{"ClassWormhole", func() sim.Config {
		t := topology.NewMesh(16, 16)
		return sim.Config{
			Algorithm:   routing.NewNegativeFirst(t),
			Pattern:     traffic.NewUniform(t),
			OfferedLoad: 1.25,
		}
	}},
	{"ClassMultiVC", func() sim.Config {
		t := topology.NewTorus(8, 2)
		return sim.Config{
			VCAlgorithm: routing.NewDatelineDOR(t),
			Pattern:     traffic.NewUniform(t),
			OfferedLoad: 1.5,
		}
	}},
	{"ClassStrictSAF", func() sim.Config {
		t := topology.NewMesh(16, 16)
		return sim.Config{
			Algorithm:     routing.NewNegativeFirst(t),
			Pattern:       traffic.NewUniform(t),
			OfferedLoad:   1.25,
			Switching:     sim.StoreAndForward,
			StrictAdvance: true,
			Lengths:       []int{6, 12},
		}
	}},
	{"ClassChainedSAF", func() sim.Config {
		t := topology.NewMesh(16, 16)
		return sim.Config{
			Algorithm:   routing.NewNegativeFirst(t),
			Pattern:     traffic.NewUniform(t),
			OfferedLoad: 1.25,
			Switching:   sim.StoreAndForward,
			Lengths:     []int{6, 12},
		}
	}},
}

type record struct {
	Name         string  `json:"name"`
	NsPerOp      int64   `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	Iterations   int     `json:"iterations"`
	AvgLatencyUs float64 `json:"latency_us"`
	Throughput   float64 `json:"tput_flits_per_us"`
	// GoMaxProcs and Shards record the execution environment per entry
	// (older baselines carry neither and report zero; the delta table
	// falls back to the report-level gomaxprocs). Shards is the engine
	// shard count the simulation ran with, 0 for the serial engine.
	GoMaxProcs int `json:"gomaxprocs,omitempty"`
	Shards     int `json:"shards,omitempty"`
	// MoveMode records whether the move phase actually ran sharded or
	// serial for this entry (sim.MoveMode), so BENCH files are
	// self-describing instead of requiring commit archaeology to learn
	// which classes the sharded move covered at the time.
	MoveMode string `json:"move_mode,omitempty"`
}

type report struct {
	Schema     string `json:"schema"`
	GoMaxProcs int    `json:"gomaxprocs"`
	// NumCPU is the machine's logical CPU count, independent of the
	// gomaxprocs the run was paced at. A report with gomaxprocs > numcpu
	// was recorded oversubscribed; one with numcpu = 1 cannot show
	// multi-core speedup at all.
	NumCPU     int      `json:"numcpu,omitempty"`
	Benchmarks []record `json:"benchmarks"`
}

func main() {
	os.Exit(run())
}

func run() int {
	testing.Init() // registers -test.benchtime, which paces testing.Benchmark
	out := flag.String("o", "", "output file (default stdout)")
	benchtime := flag.String("benchtime", "2s", "run time per benchmark: duration or Nx iteration count")
	quick := flag.Bool("quick", false, "run each benchmark exactly twice instead of for -benchtime")
	baseline := flag.String("baseline", "", "previous BENCH_*.json to print deltas against; default: highest-numbered in cwd; 'none' disables")
	only := flag.String("only", "", "run only benchmarks whose name contains this substring")
	maxAllocs := flag.Int64("max-allocs", 0, "fail (exit 1) if any benchmark exceeds this many allocs/op (0 disables)")
	shardsFlag := flag.String("shards", "0", "comma-separated engine shard counts to measure (0 = serial engine, -1 = auto; non-serial counts get a /shards=N name suffix)")
	cpu := flag.Int("cpu", 0, "set GOMAXPROCS for the run (0 keeps the environment's value)")
	flag.Parse()
	if *cpu > 0 {
		runtime.GOMAXPROCS(*cpu)
	}
	var shardCounts []int
	for _, s := range strings.Split(*shardsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || (n < 0 && n != sim.ShardsAuto) {
			fmt.Fprintf(os.Stderr, "benchjson: bad -shards entry %q\n", s)
			return 2
		}
		shardCounts = append(shardCounts, n)
	}
	// One warning per invocation, not one per shard entry: the problem
	// is the machine configuration, not any individual count.
	if cores := min(runtime.GOMAXPROCS(0), runtime.NumCPU()); cores == 1 {
		for _, n := range shardCounts {
			if n > 1 {
				fmt.Fprintf(os.Stderr, "benchjson: WARNING: measuring shards=%d with gomaxprocs=%d, numcpu=%d — the shard workers time-share one core, so these numbers show barrier overhead only; multi-core speedup cannot manifest. Re-run with -cpu N (N >= 2) on a multi-core machine for a meaningful measurement.\n", n, runtime.GOMAXPROCS(0), runtime.NumCPU())
				break
			}
		}
	}
	if *quick {
		*benchtime = "2x"
	}
	if f := flag.Lookup("test.benchtime"); f != nil {
		if err := f.Value.Set(*benchtime); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: bad -benchtime:", err)
			return 2
		}
	}

	rep := report{
		Schema:     "turnmodel-bench-v1: one op = one full simulation at the figure's load point",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	ran := 0
	measure := func(name string, cfg sim.Config, shards int) error {
		// Serial entries keep their historical names so older baselines
		// still match; sharded and auto lines are distinct benchmarks
		// with their own trajectory.
		if shards == sim.ShardsAuto {
			name += "/shards=auto"
		} else if shards > 1 {
			name += fmt.Sprintf("/shards=%d", shards)
		}
		if *only != "" && !strings.Contains(name, *only) {
			return nil
		}
		ran++
		mode, err := sim.MoveMode(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		var last sim.Result
		var simErr error
		bench := func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg.Seed = int64(i + 1)
				r, err := sim.Run(cfg)
				if err != nil {
					simErr = err
					b.FailNow()
				}
				last = r
			}
		}
		fmt.Fprintf(os.Stderr, "benchjson: running %s...\n", name)
		res := testing.Benchmark(bench)
		if simErr != nil {
			return fmt.Errorf("%s: %w", name, simErr)
		}
		rep.Benchmarks = append(rep.Benchmarks, record{
			Name:         name,
			NsPerOp:      res.NsPerOp(),
			AllocsPerOp:  res.AllocsPerOp(),
			BytesPerOp:   res.AllocedBytesPerOp(),
			Iterations:   res.N,
			AvgLatencyUs: last.AvgLatency,
			Throughput:   last.Throughput,
			GoMaxProcs:   rep.GoMaxProcs,
			Shards:       shards,
			MoveMode:     mode,
		})
		return nil
	}
	for _, fb := range figureBenches {
		f, ok := exp.FigureByID(fb.FigID)
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: unknown figure %s\n", fb.FigID)
			return 1
		}
		// The cross-leaf compile cache: figures sharing a topology (the
		// two 8-cube figures) share its instance and one compiled route
		// table per relation, instead of recompiling per figure.
		t := exp.SharedTopology(f.Topology)
		pat := f.Pattern(t)
		for _, alg := range exp.SharedAlgorithms(t, f.Algs(t)) {
			for _, shards := range shardCounts {
				cfg := sim.Config{
					Algorithm:     alg,
					Pattern:       pat,
					OfferedLoad:   fb.Load,
					WarmupCycles:  2000,
					MeasureCycles: 6000,
					Shards:        shards,
				}
				if err := measure(fb.Name+"/"+alg.Name(), cfg, shards); err != nil {
					fmt.Fprintln(os.Stderr, "benchjson:", err)
					return 1
				}
			}
		}
	}
	for _, cb := range classBenches {
		// One config per class, shared across shard counts: the shard
		// variants then reuse the same relation instance and compiled
		// table instead of rebuilding both per entry.
		base := cb.Cfg()
		base.WarmupCycles = 2000
		base.MeasureCycles = 6000
		for _, shards := range shardCounts {
			cfg := base
			cfg.Shards = shards
			if err := measure(cb.Name, cfg, shards); err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				return 1
			}
		}
	}
	// Screening micro-benchmarks: one op = screening the full 256-set 2D
	// design space on a 16x16 mesh, once by rebuilding the turn CDG per
	// set (the pre-explorer approach) and once with the incremental
	// checker walking the sets in Gray-code order (what cmd/turnscan
	// runs). Both verify the deadlock-free count so a wrong answer can
	// never masquerade as a fast one.
	measureRaw := func(name string, fn func(b *testing.B)) int64 {
		if *only != "" && !strings.Contains(name, *only) {
			return 0
		}
		ran++
		fmt.Fprintf(os.Stderr, "benchjson: running %s...\n", name)
		res := testing.Benchmark(fn)
		rep.Benchmarks = append(rep.Benchmarks, record{
			Name:        name,
			NsPerOp:     res.NsPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			Iterations:  res.N,
			GoMaxProcs:  rep.GoMaxProcs,
		})
		return res.NsPerOp()
	}
	screenTopo := topology.NewMesh(16, 16)
	rebuildNs := measureRaw("Screen2DRebuild", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			acyclic := 0
			for key := 0; key < core.NumSets2D; key++ {
				if deadlock.CheckTurnSet(screenTopo, core.SetFromKey2D(uint16(key))).DeadlockFree {
					acyclic++
				}
			}
			if acyclic != freeSets2D {
				b.Fatalf("rebuild screening found %d deadlock-free sets, want %d", acyclic, freeSets2D)
			}
		}
	})
	incNs := measureRaw("Screen2DIncremental", func(b *testing.B) {
		b.ReportAllocs()
		turns := core.AllTurns(2)
		for i := 0; i < b.N; i++ {
			ic := deadlock.NewIncrementalTurn(screenTopo, core.SetFromKey2D(0))
			acyclic := 0
			prev := uint16(0)
			for j := 0; j < core.NumSets2D; j++ {
				key := core.GrayKey2D(j)
				if j > 0 {
					bit := 0
					for (key^prev)>>uint(bit) != 1 {
						bit++
					}
					ic.SetAllowed(turns[bit], key&(1<<uint(bit)) == 0)
				}
				if ic.Acyclic() {
					acyclic++
				}
				prev = key
			}
			if acyclic != freeSets2D {
				b.Fatalf("incremental screening found %d deadlock-free sets, want %d", acyclic, freeSets2D)
			}
		}
	})
	if rebuildNs > 0 && incNs > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: screening speedup: incremental is %.1fx faster than rebuild-per-set\n",
			float64(rebuildNs)/float64(incNs))
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no benchmark matches -only %q\n", *only)
		return 2
	}

	base, err := loadBaseline(*baseline, *out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: baseline:", err)
		return 2
	}
	if base != nil {
		printDeltas(os.Stderr, base, &rep)
	}

	exceeded := false
	if *maxAllocs > 0 {
		for _, r := range rep.Benchmarks {
			if r.AllocsPerOp > *maxAllocs {
				fmt.Fprintf(os.Stderr, "benchjson: %s allocates %d allocs/op, over the -max-allocs ceiling %d\n",
					r.Name, r.AllocsPerOp, *maxAllocs)
				exceeded = true
			}
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 1
	}
	if exceeded {
		return 1
	}
	return 0
}

var benchFileRe = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// loadBaseline resolves and parses the comparison report. No baseline
// at all — "none", or no BENCH_*.json to auto-pick — returns (nil,
// nil); but a baseline that was named (explicitly or by the automatic
// highest-numbered pick, excluding the file this run writes) and then
// fails to read or parse is an error, not a silent skip: deltas the
// caller asked for would otherwise just vanish from the output.
func loadBaseline(path, out string) (*report, error) {
	if path == "none" {
		return nil, nil
	}
	if path == "" {
		best := -1
		matches, _ := filepath.Glob("BENCH_*.json")
		for _, m := range matches {
			sub := benchFileRe.FindStringSubmatch(filepath.Base(m))
			if sub == nil || (out != "" && filepath.Base(m) == filepath.Base(out)) {
				continue
			}
			if n, err := strconv.Atoi(sub[1]); err == nil && n > best {
				best, path = n, m
			}
		}
		if best < 0 {
			return nil, nil
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: deltas vs %s\n", path)
	return &rep, nil
}

// effGoMaxProcs resolves a record's gomaxprocs, falling back to the
// report-level value for baselines written before the per-entry field
// existed.
func effGoMaxProcs(r record, rep *report) int {
	if r.GoMaxProcs > 0 {
		return r.GoMaxProcs
	}
	return rep.GoMaxProcs
}

// printDeltas renders an old->new comparison table for every benchmark
// present in both reports. Entries whose execution environment changed
// — a different gomaxprocs, or a different engine shard count under
// the same name — are flagged with a warning instead of being silently
// compared: ns/op across different parallelism settings measures the
// machine, not the change.
func printDeltas(w *os.File, base, cur *report) {
	old := map[string]record{}
	for _, r := range base.Benchmarks {
		old[r.Name] = r
	}
	for _, r := range cur.Benchmarks {
		o, ok := old[r.Name]
		if !ok {
			continue
		}
		if bg, cg := effGoMaxProcs(o, base), effGoMaxProcs(r, cur); bg != cg {
			fmt.Fprintf(w, "benchjson: WARNING: %s: baseline measured at gomaxprocs=%d, this run at gomaxprocs=%d; deltas compare machines, not changes\n",
				r.Name, bg, cg)
		}
		if o.Shards != r.Shards {
			fmt.Fprintf(w, "benchjson: WARNING: %s: baseline measured with shards=%d, this run with shards=%d; deltas compare configurations, not changes\n",
				r.Name, o.Shards, r.Shards)
		}
	}
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "benchmark\tns/op\tallocs/op\tbytes/op")
	for _, r := range cur.Benchmarks {
		o, ok := old[r.Name]
		if !ok {
			fmt.Fprintf(tw, "%s\t%d (new)\t%d (new)\t%d (new)\n", r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp)
			continue
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", r.Name,
			delta(o.NsPerOp, r.NsPerOp), delta(o.AllocsPerOp, r.AllocsPerOp), delta(o.BytesPerOp, r.BytesPerOp))
	}
	tw.Flush()
}

func delta(old, new int64) string {
	if old == 0 {
		return fmt.Sprintf("%d -> %d", old, new)
	}
	return fmt.Sprintf("%d -> %d (%+.1f%%)", old, new, 100*float64(new-old)/float64(old))
}
